// Package semplar is the public face of the SEMPLAR reproduction: a
// high-performance remote I/O library that layers asynchronous primitives,
// multi-stream striping and on-the-fly compression over an SRB-style
// storage server, as described in "Improving the Performance of Remote I/O
// Using Asynchronous Primitives" (Ali & Lauria, HPDC 2006).
//
// A Client owns the connection recipe to one SRB server; each Open
// establishes the file's TCP streams (MPI_File_open semantics) and returns
// a File whose nonblocking calls (IWrite, IReadAt, ...) are serviced by
// dedicated I/O goroutines exactly as in the paper's Figure 2 design.
//
//	client, _ := semplar.Dial("storage.example.org:5544", semplar.Options{Streams: 2})
//	f, _ := client.Open("/runs/ckpt", semplar.O_RDWR|semplar.O_CREATE)
//	req := f.IWriteAt(buf, 0) // returns immediately
//	compute()                 // overlapped with the transfer
//	n, err := req.Wait()      // MPIO_Wait
package semplar

import (
	"fmt"
	"net"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/mpiio"
	"semplar/internal/srb"
	"semplar/internal/trace"
)

// Open flags (POSIX-like, matching the SRBFS protocol).
const (
	O_RDONLY = adio.O_RDONLY
	O_WRONLY = adio.O_WRONLY
	O_RDWR   = adio.O_RDWR
	O_CREATE = adio.O_CREATE
	O_TRUNC  = adio.O_TRUNC
	O_EXCL   = adio.O_EXCL
	O_APPEND = adio.O_APPEND
)

// Request is the handle of a nonblocking operation; Wait blocks for the
// result (MPIO_Wait) and Test polls it (MPIO_Test).
type Request = core.Request

// DialFunc opens one transport connection to the SRB server. Every stream
// of every open file dials its own connection.
type DialFunc = core.DialFunc

// RetryPolicy configures per-operation deadlines and retry/backoff for
// transient transport failures. The zero value fails fast (no retries,
// no deadline); DefaultRetryPolicy returns production-style settings.
type RetryPolicy = srb.RetryPolicy

// DefaultRetryPolicy returns the recommended fault-tolerance settings:
// four attempts per operation with exponential backoff and jitter, and a
// 30s per-operation deadline.
func DefaultRetryPolicy() RetryPolicy { return srb.DefaultRetryPolicy() }

// FaultStats counts an open file's fault-recovery activity: stream
// reconnects, replayed operations and the remaining reconnect budget.
type FaultStats = core.FaultStats

// Credentials identify a tenant to a multi-tenant server: a tenant ID and
// the shared key whose HMAC proof is presented on every handshake. The key
// itself never crosses the wire. The zero value connects anonymously.
type Credentials = srb.Credentials

// Tracer records end-to-end request traces and metrics: per-request
// lifecycle spans (queued → run → wire), queue-depth and in-flight gauges,
// per-stream byte counters and latency histograms. Export the result with
// WriteChrome (Chrome trace-event JSON for about:tracing / Perfetto) or
// Summary (plain text). A nil Tracer is valid and free: tracing off.
type Tracer = trace.Tracer

// NewTracer returns a wall-clock Tracer ready to pass in Options.
func NewTracer() *Tracer { return trace.New() }

// Options tune a Client.
type Options struct {
	// User identifies the client to the server (default "semplar").
	User string
	// Tenant presents multi-tenant credentials on every handshake. Leave
	// zero for servers without authentication; servers with a tenant
	// registry refuse anonymous connections terminally (ErrAuthFailed).
	Tenant Credentials
	// Resource selects the server storage resource ("" = default).
	Resource string
	// Streams is the default number of concurrent TCP streams per open
	// file (default 1). Per-call OpenOptions can override it.
	Streams int
	// StripeSize is the striping unit across streams (default 1 MiB).
	StripeSize int
	// IOThreads sets each file's asynchronous I/O thread pool
	// (default 1, the paper's configuration; use one per stream to let
	// nonblocking calls drive the streams independently).
	IOThreads int
	// Retry enables fault tolerance on every stream: per-operation
	// deadlines, retry with exponential backoff for transient transport
	// failures, and transparent stream reconnection with replay of the
	// failed explicit-offset operation. The zero value keeps the
	// fail-fast behavior.
	Retry RetryPolicy
	// ReconnectBudget caps stream redials per open file handle
	// (0 = a default of 8 when Retry is enabled; negative disables
	// reconnection while keeping same-connection retries).
	ReconnectBudget int
	// Tracer, when non-nil, records every request's lifecycle across the
	// whole stack (engine queue, wire ops, per-stream bytes, faults). Nil
	// keeps tracing off at near-zero cost.
	Tracer *Tracer
}

// Client is a handle to one SRB server.
type Client struct {
	opts Options
	fs   *core.SRBFS
	reg  *adio.Registry
	dial DialFunc
}

// Dial connects to an SRB server over TCP.
func Dial(addr string, opts Options) (*Client, error) {
	return NewClient(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, opts)
}

// NewClient builds a client over a custom transport — real sockets or the
// simulated WAN testbeds used in the evaluation harness.
func NewClient(dial DialFunc, opts Options) (*Client, error) {
	if dial == nil {
		return nil, fmt.Errorf("semplar: nil dial function")
	}
	if opts.User == "" {
		opts.User = "semplar"
	}
	fs, err := core.NewSRBFS(core.SRBFSConfig{
		Dial:            dial,
		User:            opts.User,
		Tenant:          opts.Tenant,
		Resource:        opts.Resource,
		Streams:         opts.Streams,
		StripeSize:      opts.StripeSize,
		Retry:           opts.Retry,
		ReconnectBudget: opts.ReconnectBudget,
		Tracer:          opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	reg := &adio.Registry{}
	reg.Register(fs)
	return &Client{opts: opts, fs: fs, reg: reg, dial: dial}, nil
}

// OpenOptions override per-file settings.
type OpenOptions struct {
	Streams    int // TCP streams for this file (0 = client default)
	StripeSize int // striping unit (0 = client default)
	IOThreads  int // async I/O threads (0 = client default)
}

// Open opens or creates a remote file with the client defaults.
func (c *Client) Open(path string, flags int) (*File, error) {
	return c.OpenWith(path, flags, OpenOptions{})
}

// OpenWith opens a remote file with per-file overrides.
func (c *Client) OpenWith(path string, flags int, oo OpenOptions) (*File, error) {
	hints := adio.Hints{}
	if oo.Streams > 0 {
		hints["streams"] = fmt.Sprint(oo.Streams)
	}
	if oo.StripeSize > 0 {
		hints["stripe_size"] = fmt.Sprint(oo.StripeSize)
	}
	threads := c.opts.IOThreads
	if oo.IOThreads > 0 {
		threads = oo.IOThreads
	}
	if threads > 0 {
		hints["io_threads"] = fmt.Sprint(threads)
	}
	f, err := mpiio.OpenLocal(c.reg, "srb:"+path, flags, hints)
	if err != nil {
		return nil, err
	}
	if c.opts.Tracer != nil {
		f.SetTracer(c.opts.Tracer)
	}
	return &File{File: f}, nil
}

// admin returns a short-lived control connection. It honors the client's
// retry policy so metadata operations survive transient dial failures just
// like the data streams do.
func (c *Client) admin() (*srb.Conn, error) {
	return srb.DialRetryAuth(c.dial, c.opts.User, c.opts.Tenant, c.opts.Retry)
}

// Remove deletes a remote file.
func (c *Client) Remove(path string) error {
	return c.fs.Delete(path)
}

// Mkdir creates a remote collection.
func (c *Client) Mkdir(path string) error {
	conn, err := c.admin()
	if err != nil {
		return err
	}
	defer conn.Close()
	return conn.Mkdir(path)
}

// Checksum asks the server to compute the SHA-256 of a remote file
// without transferring its bytes, returning the hex digest and the object
// size — the cheap way to verify content after a fault-recovered
// transfer.
func (c *Client) Checksum(path string) (string, int64, error) {
	conn, err := c.admin()
	if err != nil {
		return "", 0, err
	}
	defer conn.Close()
	return conn.Checksum(path)
}

// FileInfo describes a remote file or collection.
type FileInfo struct {
	Path  string
	IsDir bool
	Size  int64
}

// Stat queries a remote path.
func (c *Client) Stat(path string) (*FileInfo, error) {
	conn, err := c.admin()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	fi, err := conn.Stat(path)
	if err != nil {
		return nil, err
	}
	return &FileInfo{Path: fi.Path, IsDir: fi.IsDir, Size: fi.Size}, nil
}

// List enumerates a remote collection.
func (c *Client) List(path string) ([]*FileInfo, error) {
	conn, err := c.admin()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	entries, err := conn.List(path)
	if err != nil {
		return nil, err
	}
	out := make([]*FileInfo, len(entries))
	for i, e := range entries {
		out[i] = &FileInfo{Path: e.Path, IsDir: e.IsDir, Size: e.Size}
	}
	return out, nil
}

// File is an open remote file. It exposes the full MPI-IO-style surface:
// blocking Read/Write/ReadAt/WriteAt, the individual file pointer with
// Seek/Tell, and the asynchronous IRead/IWrite/IReadAt/IWriteAt calls that
// return Requests.
type File struct {
	*mpiio.File
}

// Wait blocks until a nonblocking operation completes (MPIO_Wait).
func Wait(r *Request) (int, error) { return r.Wait() }

// Test polls a nonblocking operation (MPIO_Test).
func Test(r *Request) (n int, err error, done bool) { return r.Test() }

// WaitAll waits for a batch of requests, returning total bytes and the
// first error.
func WaitAll(reqs []*Request) (int, error) { return mpiio.WaitAll(reqs) }

// CompressStats summarizes one compressed transfer.
type CompressStats = core.CompressStats

// WriteCompressed writes data to f at off as framed LZO blocks, pipelining
// compression of block k+1 with the transfer of block k through the file's
// asynchronous engine (the Section 7.3 optimization). blockSize <= 0 uses
// the paper's 1 MB.
func WriteCompressed(f *File, off int64, data []byte, blockSize int) (CompressStats, error) {
	return core.WriteCompressed(fileAdapter{f.File}, off, data, blockSize, f.Engine())
}

// WriteCompressedSync is the unpipelined variant: compression sits on the
// critical path (the baseline the paper's condition inequality describes).
func WriteCompressedSync(f *File, off int64, data []byte, blockSize int) (CompressStats, error) {
	return core.WriteCompressed(fileAdapter{f.File}, off, data, blockSize, nil)
}

// ReadCompressed reads consecutive framed LZO blocks from f starting at
// off, prefetching the next block while the current one decompresses.
func ReadCompressed(f *File, off int64) ([]byte, error) {
	return core.ReadCompressed(fileAdapter{f.File}, off, f.Engine())
}

// fileAdapter exposes the explicit-offset subset of mpiio.File as an
// adio.File for the compression pipeline.
type fileAdapter struct{ f *mpiio.File }

func (a fileAdapter) ReadAt(p []byte, off int64) (int, error)  { return a.f.ReadAt(p, off) }
func (a fileAdapter) WriteAt(p []byte, off int64) (int, error) { return a.f.WriteAt(p, off) }
func (a fileAdapter) Size() (int64, error)                     { return a.f.Size() }
func (a fileAdapter) Truncate(size int64) error                { return a.f.SetSize(size) }
func (a fileAdapter) Sync() error                              { return a.f.Sync() }
func (a fileAdapter) Close() error                             { return a.f.Close() }
