package semplar

// Failure injection through the whole stack: faults planted in the shaped
// transport must surface as clean errors from the public API — including
// through the asynchronous request path — and must never corrupt data that
// was acknowledged before the fault.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

// faultyClient returns a client whose next dialed connection can be
// faulted, plus a handle to arm the fault.
func faultyClient(t *testing.T) (*Client, *srb.Server, *[]*netsim.Conn) {
	t.Helper()
	srv := srb.NewMemServer(storage.DeviceSpec{})
	conns := &[]*netsim.Conn{}
	c, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		*conns = append(*conns, cEnd)
		return cEnd, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, srv, conns
}

func TestWriteFailsCleanlyOnConnDrop(t *testing.T) {
	client, _, conns := faultyClient(t)
	f, err := client.Open("/doomed", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	// Connection dies after ~256 KiB of requests.
	(*conns)[0].FaultAfter(256<<10, netsim.FaultClose)

	_, err = f.WriteAt(make([]byte, 2<<20), 0)
	if err == nil {
		t.Fatal("write across dropped connection succeeded")
	}
	// Follow-up operations fail fast rather than hanging.
	done := make(chan error, 1)
	go func() {
		_, err := f.WriteAt([]byte("x"), 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write on dead connection succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write on dead connection hung")
	}
}

func TestAsyncRequestSurfacesFault(t *testing.T) {
	client, _, conns := faultyClient(t)
	f, err := client.Open("/async-doom", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	(*conns)[0].FaultAfter(64<<10, netsim.FaultClose)

	req := f.IWriteAt(make([]byte, 1<<20), 0)
	n, err := Wait(req)
	if err == nil {
		t.Fatalf("async write across fault reported success (n=%d)", n)
	}
	if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

func TestAcknowledgedDataSurvivesLaterFault(t *testing.T) {
	client, srv, conns := faultyClient(t)
	f, err := client.Open("/partial", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	good := bytes.Repeat([]byte{0x5A}, 64<<10)
	if _, err := f.WriteAt(good, 0); err != nil {
		t.Fatal(err)
	}
	// Now kill the connection and attempt another write.
	(*conns)[0].FaultAfter(0, netsim.FaultClose)
	f.WriteAt(make([]byte, 1<<20), int64(len(good)))

	// The first write's bytes are intact on the server.
	e, err := srv.Catalog().Lookup("/partial")
	if err != nil {
		t.Fatal(err)
	}
	if e.Size < int64(len(good)) {
		t.Fatalf("catalog size %d < acknowledged %d", e.Size, len(good))
	}
	client2, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		return cEnd, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := client2.Open("/partial", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got := make([]byte, len(good))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, good) {
		t.Fatal("acknowledged bytes corrupted by later fault")
	}
}

func TestStripedWriteFaultOnOneStream(t *testing.T) {
	client, _, conns := faultyClient(t)
	f, err := client.OpenWith("/striped", O_RDWR|O_CREATE,
		OpenOptions{Streams: 2, StripeSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Fault only the second stream's connection.
	(*conns)[1].FaultAfter(32<<10, netsim.FaultClose)

	_, err = f.WriteAt(make([]byte, 1<<20), 0)
	if err == nil {
		t.Fatal("striped write with dead stream succeeded")
	}
}

// armoredClient builds a client with the given retry options whose dialed
// connections are recorded under a mutex (reconnects dial from worker
// goroutines, unlike the sequential dials of faultyClient).
func armoredClient(t *testing.T, opts Options) (*Client, *srb.Server, func(i int) *netsim.Conn) {
	t.Helper()
	srv := srb.NewMemServer(storage.DeviceSpec{})
	var mu sync.Mutex
	var conns []*netsim.Conn
	c, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		mu.Lock()
		conns = append(conns, cEnd)
		mu.Unlock()
		return cEnd, nil
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv, func(i int) *netsim.Conn {
		mu.Lock()
		defer mu.Unlock()
		return conns[i]
	}
}

func TestStripedWriteSurvivesMidTransferKill(t *testing.T) {
	// The tentpole scenario: a striped (2-stream) write loses one
	// connection mid-transfer. With the retry policy enabled the
	// transfer completes transparently — reconnect, reopen, replay —
	// and the server-side checksum proves the content is byte-exact.
	pol := RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		OpTimeout:   5 * time.Second,
	}
	client, _, conn := armoredClient(t, Options{Retry: pol})
	f, err := client.OpenWith("/armored", O_RDWR|O_CREATE,
		OpenOptions{Streams: 2, StripeSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Stream 2's connection dies 32 KiB into its first stripe.
	conn(1).FaultAfter(32<<10, netsim.FaultClose)

	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(payload)
	// Drive it through the asynchronous path: the recovered request must
	// report the true byte count at Wait.
	req := f.IWriteAt(payload, 0)
	n, err := Wait(req)
	if err != nil {
		t.Fatalf("async striped write across kill: %v", err)
	}
	if n != len(payload) {
		t.Fatalf("recovered request reported %d bytes, want %d", n, len(payload))
	}
	stats, ok := f.FaultStats()
	if !ok {
		t.Fatal("SRB file does not report fault stats")
	}
	if stats.Reconnects < 1 || stats.RetriedOps < 1 {
		t.Fatalf("recovery not exercised: %+v", stats)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Server-side SHA-256 without moving the bytes back.
	sum := sha256.Sum256(payload)
	digest, size, err := client.Checksum("/armored")
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Fatalf("server object size = %d, want %d", size, len(payload))
	}
	if digest != hex.EncodeToString(sum[:]) {
		t.Fatalf("server checksum %s != local %s", digest, hex.EncodeToString(sum[:]))
	}
}

func TestStripedWriteFailsWithoutRetries(t *testing.T) {
	// The counterfactual for the scenario above: identical fault,
	// retries disabled — the write must fail. Together they prove the
	// fault-tolerance layer is load-bearing.
	client, _, conn := armoredClient(t, Options{})
	f, err := client.OpenWith("/unarmored", O_RDWR|O_CREATE,
		OpenOptions{Streams: 2, StripeSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	conn(1).FaultAfter(32<<10, netsim.FaultClose)

	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(payload)
	if _, err := Wait(f.IWriteAt(payload, 0)); err == nil {
		t.Fatal("striped write across kill succeeded with retries disabled")
	}
	if stats, ok := f.FaultStats(); ok && stats.Reconnects != 0 {
		t.Fatalf("reconnect fired with retries disabled: %+v", stats)
	}
}

func TestStalledStreamRecoversViaOpTimeout(t *testing.T) {
	// A black-holed connection (FaultStall) produces no error at all —
	// only the per-operation deadline can unstick it. The watchdog
	// severs the stalled stream, and reconnection replays the op.
	pol := RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		OpTimeout:   250 * time.Millisecond,
	}
	client, _, conn := armoredClient(t, Options{Retry: pol})
	f, err := client.OpenWith("/unstuck", O_RDWR|O_CREATE,
		OpenOptions{Streams: 2, StripeSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	conn(1).FaultAfter(16<<10, netsim.FaultStall)

	payload := bytes.Repeat([]byte{0x7E}, 512<<10)
	done := make(chan struct{})
	var n int
	var werr error
	go func() {
		n, werr = f.WriteAt(payload, 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("write through black-holed stream hung despite op timeout")
	}
	if werr != nil || n != len(payload) {
		t.Fatalf("write through stalled stream = %d, %v", n, werr)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("content corrupted across stall recovery")
	}
}

func TestServerRestartRecoversData(t *testing.T) {
	// Disk-backed store survives a server "restart" (new Server over the
	// same directory).
	dir := t.TempDir()
	store1, err := storage.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := srb.NewServer()
	srv1.AddResource("disk", "disk", store1)

	c1, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv1.ServeConn(sEnd)
		return cEnd, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c1.Open("/persisted", O_WRONLY|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("durable"), 1000)
	f.WriteAt(payload, 0)
	f.Close()

	// "Restart": a fresh server over the same physical store. The MCAT
	// in this reproduction is in-memory, so the physical object is
	// re-registered (as an SRB admin would re-ingest).
	store2, err := storage.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := store2.Keys()
	if len(keys) != 1 {
		t.Fatalf("physical objects after restart = %v", keys)
	}
	obj, err := store2.Open(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := obj.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across restart")
	}
}
