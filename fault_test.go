package semplar

// Failure injection through the whole stack: faults planted in the shaped
// transport must surface as clean errors from the public API — including
// through the asynchronous request path — and must never corrupt data that
// was acknowledged before the fault.

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

// faultyClient returns a client whose next dialed connection can be
// faulted, plus a handle to arm the fault.
func faultyClient(t *testing.T) (*Client, *srb.Server, *[]*netsim.Conn) {
	t.Helper()
	srv := srb.NewMemServer(storage.DeviceSpec{})
	conns := &[]*netsim.Conn{}
	c, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		*conns = append(*conns, cEnd)
		return cEnd, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, srv, conns
}

func TestWriteFailsCleanlyOnConnDrop(t *testing.T) {
	client, _, conns := faultyClient(t)
	f, err := client.Open("/doomed", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	// Connection dies after ~256 KiB of requests.
	(*conns)[0].FaultAfter(256<<10, netsim.FaultClose)

	_, err = f.WriteAt(make([]byte, 2<<20), 0)
	if err == nil {
		t.Fatal("write across dropped connection succeeded")
	}
	// Follow-up operations fail fast rather than hanging.
	done := make(chan error, 1)
	go func() {
		_, err := f.WriteAt([]byte("x"), 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write on dead connection succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write on dead connection hung")
	}
}

func TestAsyncRequestSurfacesFault(t *testing.T) {
	client, _, conns := faultyClient(t)
	f, err := client.Open("/async-doom", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	(*conns)[0].FaultAfter(64<<10, netsim.FaultClose)

	req := f.IWriteAt(make([]byte, 1<<20), 0)
	n, err := Wait(req)
	if err == nil {
		t.Fatalf("async write across fault reported success (n=%d)", n)
	}
	if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

func TestAcknowledgedDataSurvivesLaterFault(t *testing.T) {
	client, srv, conns := faultyClient(t)
	f, err := client.Open("/partial", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	good := bytes.Repeat([]byte{0x5A}, 64<<10)
	if _, err := f.WriteAt(good, 0); err != nil {
		t.Fatal(err)
	}
	// Now kill the connection and attempt another write.
	(*conns)[0].FaultAfter(0, netsim.FaultClose)
	f.WriteAt(make([]byte, 1<<20), int64(len(good)))

	// The first write's bytes are intact on the server.
	e, err := srv.Catalog().Lookup("/partial")
	if err != nil {
		t.Fatal(err)
	}
	if e.Size < int64(len(good)) {
		t.Fatalf("catalog size %d < acknowledged %d", e.Size, len(good))
	}
	client2, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		return cEnd, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := client2.Open("/partial", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got := make([]byte, len(good))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, good) {
		t.Fatal("acknowledged bytes corrupted by later fault")
	}
}

func TestStripedWriteFaultOnOneStream(t *testing.T) {
	client, _, conns := faultyClient(t)
	f, err := client.OpenWith("/striped", O_RDWR|O_CREATE,
		OpenOptions{Streams: 2, StripeSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Fault only the second stream's connection.
	(*conns)[1].FaultAfter(32<<10, netsim.FaultClose)

	_, err = f.WriteAt(make([]byte, 1<<20), 0)
	if err == nil {
		t.Fatal("striped write with dead stream succeeded")
	}
}

func TestServerRestartRecoversData(t *testing.T) {
	// Disk-backed store survives a server "restart" (new Server over the
	// same directory).
	dir := t.TempDir()
	store1, err := storage.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := srb.NewServer()
	srv1.AddResource("disk", "disk", store1)

	c1, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv1.ServeConn(sEnd)
		return cEnd, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c1.Open("/persisted", O_WRONLY|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("durable"), 1000)
	f.WriteAt(payload, 0)
	f.Close()

	// "Restart": a fresh server over the same physical store. The MCAT
	// in this reproduction is in-memory, so the physical object is
	// re-registered (as an SRB admin would re-ingest).
	store2, err := storage.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := store2.Keys()
	if len(keys) != 1 {
		t.Fatalf("physical objects after restart = %v", keys)
	}
	obj, err := store2.Open(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := obj.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across restart")
	}
}
