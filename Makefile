# Tier-1 verification in one command: `make check`.
GO ?= go

# Every package runs under the race detector; -count=1 defeats test result
# caching so races that depend on scheduling get a fresh chance to appear.
RACE_PKGS = ./...

# Seconds per fuzz target in the smoke pass (full sessions: `go test
# -fuzz <name> ./internal/srb` with no time limit).
FUZZTIME ?= 10s

.PHONY: check vet build test race lint lint-json fuzz-short chaos-short chaos-long bench bench-smoke

check: vet build test race lint fuzz-short chaos-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest-sibling) execution order so
# inter-test state leaks surface instead of hiding behind file order; the
# seed is printed on failure for reproduction with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

# The analyzer corpus line is explicit (not folded into RACE_PKGS) so a
# narrowed RACE_PKGS override still races the analysis engine, whose
# summary cache is the kind of lazily-built shared state -race exists for.
race:
	$(GO) test -race -count=1 -shuffle=on $(RACE_PKGS)
	$(GO) test -race -count=1 ./internal/analysis

# semplarvet: the project's own analyzer suite, ten rules — intraprocedural
# (lockheld, guardedfield, wireproto, errdrop, determinism) plus the
# interprocedural lifecycle/ordering set (pooluse, lockorder, spanbalance,
# retryclass, goexit). Non-zero exit on any finding. Restrict with
# RULES=name1,name2 (`make lint RULES=pooluse,lockorder`); list names with
# `go run ./cmd/semplarvet -list`.
RULES ?=
lint:
	$(GO) run ./cmd/semplarvet $(if $(RULES),-rules $(RULES)) ./...

# Machine-readable findings for CI artifact upload; same exit semantics.
lint-json:
	$(GO) run ./cmd/semplarvet $(if $(RULES),-rules $(RULES)) -json ./... > lint.json

# Short fuzz smoke over the wire-protocol parsers: seeds plus $(FUZZTIME)
# of mutation per target.
fuzz-short:
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzReadRequest -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzReadResponse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzDecodeFileInfo -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzWritevRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzDecodeWritev -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzReadvRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzDecodeReadv -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzDecodeAuth -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzAuthRoundTrip -fuzztime=$(FUZZTIME)

# Seeded chaos smoke: a full workload under connection kills, partitions,
# latency spikes and a server crash/restart, with end-to-end checksum
# verification and leak checks, plus the federated variant (three shards,
# replicated placement, one shard killed mid-write) and the abusive-tenant
# scenario (one flooding tenant shed at its bucket while well-behaved
# neighbors run clean). Deterministic schedules, seconds to run.
chaos-short:
	$(GO) test ./internal/chaos -run 'TestChaosShort|TestChaosFederationShort|TestChaosTenantShort' -count=1

# The full soak (several seeds, every fault class repeatedly); not part of
# `make check`.
chaos-long:
	$(GO) test -tags chaoslong ./internal/chaos -run TestChaosLong -count=1 -v

# Wire hot-path snapshot (pipelining, write coalescing, allocs/op,
# 1-vs-3-server federated striping, strided-read fast paths, fair-share
# p99 under a flooding neighbor): writes $(BENCH_SNAP) for committing
# alongside the change it measures, then runs the paper-figure benchmarks.
BENCH_SNAP ?= BENCH_10.json

bench:
	$(GO) run ./cmd/benchsnap -out $(BENCH_SNAP)
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Tiny benchsnap run (result discarded): proves the measurement harness
# still works, that neither pipelining nor the sieved strided read has
# regressed below its naive baseline, and that a flooding tenant is shed
# at its bucket instead of wrecking its neighbor's p99. Wired into CI.
bench-smoke:
	$(GO) run ./cmd/benchsnap -quick -out -
