# Tier-1 verification in one command: `make check`.
GO ?= go

# Every package runs under the race detector; -count=1 defeats test result
# caching so races that depend on scheduling get a fresh chance to appear.
RACE_PKGS = ./...

# Seconds per fuzz target in the smoke pass (full sessions: `go test
# -fuzz <name> ./internal/srb` with no time limit).
FUZZTIME ?= 10s

.PHONY: check vet build test race lint fuzz-short chaos-short chaos-long bench

check: vet build test race lint fuzz-short chaos-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest-sibling) execution order so
# inter-test state leaks surface instead of hiding behind file order; the
# seed is printed on failure for reproduction with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -count=1 -shuffle=on $(RACE_PKGS)

# semplarvet: the project's own analyzer suite (lockheld, guardedfield,
# wireproto, errdrop, determinism). Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/semplarvet ./...

# Short fuzz smoke over the wire-protocol parsers: seeds plus $(FUZZTIME)
# of mutation per target.
fuzz-short:
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzReadRequest -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzReadResponse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/srb -run=^$$ -fuzz=FuzzDecodeFileInfo -fuzztime=$(FUZZTIME)

# Seeded chaos smoke: a full workload under connection kills, partitions,
# latency spikes and a server crash/restart, with end-to-end checksum
# verification and leak checks. Deterministic schedule, seconds to run.
chaos-short:
	$(GO) test ./internal/chaos -run TestChaosShort -count=1

# The full soak (several seeds, every fault class repeatedly); not part of
# `make check`.
chaos-long:
	$(GO) test -tags chaoslong ./internal/chaos -run TestChaosLong -count=1 -v

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
