# Tier-1 verification in one command: `make check`.
GO ?= go

# Packages where the race detector runs fast and where concurrency is
# hottest (async engine, striped streams, retry/reconnect, wire client,
# fault injection).
RACE_PKGS = ./internal/core ./internal/srb ./internal/mpiio ./internal/netsim

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
