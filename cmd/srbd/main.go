// Command srbd runs a standalone SRB storage server over TCP: the
// simulated counterpart of the SDSC server (orion.sdsc.edu) that SEMPLAR
// clients connect to.
//
// Usage:
//
//	srbd [-listen :5544] [-root DIR] [-read-mbps N] [-write-mbps N]
//
// With -root the server persists objects under DIR; otherwise it serves
// from memory. The rate flags emulate the storage device's sustained
// bandwidth.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

func main() {
	listen := flag.String("listen", ":5544", "TCP listen address")
	root := flag.String("root", "", "persist objects under this directory (default: in-memory)")
	readMBps := flag.Float64("read-mbps", 0, "device read bandwidth in MiB/s (0 = unlimited)")
	writeMBps := flag.Float64("write-mbps", 0, "device write bandwidth in MiB/s (0 = unlimited)")
	statsEvery := flag.Duration("stats", 0, "print server stats at this interval (0 = off)")
	maxConns := flag.Int("max-conns", 0, "cap on concurrently served connections (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrently executing requests (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight operations on shutdown")
	flag.Parse()

	var store storage.Store
	kind := "memory"
	if *root != "" {
		fs, err := storage.NewFileStore(*root)
		if err != nil {
			log.Fatalf("srbd: open store %s: %v", *root, err)
		}
		store = fs
		kind = "disk"
	} else {
		store = storage.NewMemStore()
	}
	if *readMBps > 0 || *writeMBps > 0 {
		store = storage.WithDevice(store, storage.DeviceSpec{
			Name:      "device",
			ReadRate:  *readMBps * netsim.MBps,
			WriteRate: *writeMBps * netsim.MBps,
		})
	}

	srv := srb.NewServer()
	srv.AddResource("default", kind, store)
	srv.SetLimits(srb.Limits{MaxConns: *maxConns, MaxInflight: *maxInflight})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("srbd: listen %s: %v", *listen, err)
	}
	log.Printf("srbd: serving %s storage on %s", kind, l.Addr())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				log.Printf("srbd: conns=%d active=%d reqs=%d in=%dB out=%dB",
					st.Connections, st.ActiveConns, st.Requests,
					st.BytesWritten, st.BytesRead)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println()
		log.Printf("srbd: draining (up to %v for in-flight operations)", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("srbd: drain incomplete: %v", err)
		}
		st := srv.Stats()
		log.Printf("srbd: shut down (served %d connections, %d requests; %d ops drained, %d shed)",
			st.Connections, st.Requests, st.Drained, st.Shed)
		os.Exit(0)
	}()

	err = srv.Serve(l)
	if errors.Is(err, srb.ErrServerClosed) {
		// Shutdown owns the exit path; wait for it to finish logging.
		select {}
	}
	if err != nil {
		log.Fatalf("srbd: %v", err)
	}
}
