// Command srbd runs a standalone SRB storage server over TCP: the
// simulated counterpart of the SDSC server (orion.sdsc.edu) that SEMPLAR
// clients connect to.
//
// Usage:
//
//	srbd [-listen :5544] [-root DIR] [-read-mbps N] [-write-mbps N]
//	srbd -fleet 3 [-name s] [-listen :5544] ...
//	srbd -auth-keys tenants.conf [-tenant-limits ops=500,quota=1e9] [-metrics-addr :9090]
//
// With -root the server persists objects under DIR; otherwise it serves
// from memory. The rate flags emulate the storage device's sustained
// bandwidth.
//
// With -auth-keys the server is multi-tenant: every handshake must carry
// a tenant ID and key proof from the file (one
// '<tenant> <hexkey> [ops=N] [bytes=N] [quota=N] [burst=S]' per line;
// -tenant-limits supplies fleet-wide defaults for fields a line omits).
// Per-tenant token buckets shed excess load with a retryable rate-limit
// status and storage quotas refuse growth terminally.
//
// With -metrics-addr the process serves a Prometheus-text /metrics
// endpoint (server, per-tenant and trace counters); it drains on SIGTERM
// alongside the data listeners.
//
// With -fleet N the process runs N independent server shards for a
// federated deployment: shard i is named <name><i> (matching how an MCAT
// placer registers the fleet), listens on the -listen port plus i, and
// owns its own store — a subdirectory <root>/<name><i> when persisting,
// a private memory store otherwise. Each shard is its own fault domain;
// nothing is shared but the process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"net/http"

	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
	"semplar/internal/tenant"
	"semplar/internal/trace"
)

// shard is one running server of the fleet (the whole deployment when
// -fleet is 1).
type shard struct {
	name string
	srv  *srb.Server
	lis  net.Listener
}

func main() {
	listen := flag.String("listen", ":5544", "TCP listen address (fleet shard i listens on port+i)")
	root := flag.String("root", "", "persist objects under this directory (default: in-memory)")
	readMBps := flag.Float64("read-mbps", 0, "device read bandwidth in MiB/s (0 = unlimited)")
	writeMBps := flag.Float64("write-mbps", 0, "device write bandwidth in MiB/s (0 = unlimited)")
	statsEvery := flag.Duration("stats", 0, "print server stats at this interval (0 = off)")
	maxConns := flag.Int("max-conns", 0, "cap on concurrently served connections (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrently executing requests (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight operations on shutdown")
	fleet := flag.Int("fleet", 1, "number of federated server shards to run")
	name := flag.String("name", "s", "shard name prefix; shard i is <name><i>")
	metricsAddr := flag.String("metrics-addr", "", "serve a Prometheus-text /metrics endpoint on this address (empty = off)")
	authKeys := flag.String("auth-keys", "", "tenant key file; one '<tenant> <hexkey> [ops=N] [bytes=N] [quota=N] [burst=S]' per line. Makes authentication mandatory")
	tenantLimits := flag.String("tenant-limits", "", "default per-tenant limits for -auth-keys tenants, e.g. 'ops=500,bytes=1e8,quota=1e9,burst=2'")
	flag.Parse()

	if *fleet < 1 {
		log.Fatalf("srbd: -fleet must be at least 1")
	}
	var tenants *tenant.Registry
	if *authKeys != "" {
		defaults, err := parseLimits(*tenantLimits)
		if err != nil {
			log.Fatalf("srbd: bad -tenant-limits: %v", err)
		}
		reg, err := loadAuthKeys(*authKeys, defaults)
		if err != nil {
			log.Fatalf("srbd: -auth-keys %s: %v", *authKeys, err)
		}
		tenants = reg
	} else if *tenantLimits != "" {
		log.Fatalf("srbd: -tenant-limits needs -auth-keys")
	}
	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatalf("srbd: bad -listen %s: %v", *listen, err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("srbd: -listen needs a numeric port with -fleet: %v", err)
	}

	limits := srb.Limits{MaxConns: *maxConns, MaxInflight: *maxInflight}
	shards := make([]*shard, *fleet)
	for i := range shards {
		shardName := fmt.Sprintf("%s%d", *name, i)
		var store storage.Store
		kind := "memory"
		if *root != "" {
			dir := *root
			if *fleet > 1 {
				dir = filepath.Join(*root, shardName)
			}
			fs, err := storage.NewFileStore(dir)
			if err != nil {
				log.Fatalf("srbd: open store %s: %v", dir, err)
			}
			store = fs
			kind = "disk"
		} else {
			store = storage.NewMemStore()
		}
		if *readMBps > 0 || *writeMBps > 0 {
			store = storage.WithDevice(store, storage.DeviceSpec{
				Name:      shardName + "-device",
				ReadRate:  *readMBps * netsim.MBps,
				WriteRate: *writeMBps * netsim.MBps,
			})
		}

		srv := srb.NewServer()
		srv.AddResource("default", kind, store)
		srv.SetLimits(limits)
		if tenants != nil {
			// One registry across the fleet: a tenant's buckets meter its
			// aggregate rate through this process, not per shard.
			srv.SetTenants(tenants)
		}

		addr := net.JoinHostPort(host, strconv.Itoa(basePort+i))
		l, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("srbd: listen %s: %v", addr, err)
		}
		shards[i] = &shard{name: shardName, srv: srv, lis: l}
		if *fleet > 1 {
			log.Printf("srbd: shard %s serving %s storage on %s", shardName, kind, l.Addr())
		} else {
			log.Printf("srbd: serving %s storage on %s", kind, l.Addr())
		}
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		// A metrics-only tracer keeps the silent trace counters flowing to
		// the endpoint at O(1) memory — no span events accumulate.
		tr := trace.NewMetricsOnly()
		for _, sh := range shards {
			sh.srv.SetTracer(tr)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsHandler(shards, tr))
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("srbd: metrics listen %s: %v", *metricsAddr, err)
		}
		log.Printf("srbd: metrics on http://%s/metrics", ml.Addr())
		go func() {
			if err := metricsSrv.Serve(ml); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("srbd: metrics server: %v", err)
			}
		}()
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				for _, sh := range shards {
					st := sh.srv.Stats()
					log.Printf("srbd: %s conns=%d active=%d reqs=%d in=%dB out=%dB",
						sh.name, st.Connections, st.ActiveConns, st.Requests,
						st.BytesWritten, st.BytesRead)
				}
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println()
		log.Printf("srbd: draining (up to %v for in-flight operations)", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				if err := sh.srv.Shutdown(ctx); err != nil {
					log.Printf("srbd: %s drain incomplete: %v", sh.name, err)
				}
			}(sh)
		}
		if metricsSrv != nil {
			// The admin endpoint drains with the data listeners so a final
			// scrape can still land during the grace period.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := metricsSrv.Shutdown(ctx); err != nil {
					log.Printf("srbd: metrics drain incomplete: %v", err)
				}
			}()
		}
		wg.Wait()
		var conns, reqs, drained, shed int64
		for _, sh := range shards {
			st := sh.srv.Stats()
			conns += st.Connections
			reqs += st.Requests
			drained += st.Drained
			shed += st.Shed
		}
		log.Printf("srbd: shut down (served %d connections, %d requests; %d ops drained, %d shed)",
			conns, reqs, drained, shed)
		os.Exit(0)
	}()

	errs := make(chan error, len(shards))
	for _, sh := range shards {
		go func(sh *shard) { errs <- sh.srv.Serve(sh.lis) }(sh)
	}
	for range shards {
		err := <-errs
		if errors.Is(err, srb.ErrServerClosed) {
			// Shutdown owns the exit path; wait for it to finish logging.
			select {}
		}
		if err != nil {
			log.Fatalf("srbd: %v", err)
		}
	}
}
