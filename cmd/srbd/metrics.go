package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"

	"semplar/internal/trace"
)

// metricsHandler serves the fleet's counters in Prometheus text
// exposition format: per-shard ServerStats, per-tenant admission and
// usage gauges (when a tenant registry is attached), and the silent
// trace counters (when a tracer is attached).
func metricsHandler(shards []*shard, tr *trace.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, shards, tr)
	})
}

func writeMetrics(w io.Writer, shards []*shard, tr *trace.Tracer) {
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	perShard := func(name string, pick func(*shard) int64) {
		for _, sh := range shards {
			fmt.Fprintf(w, "%s{shard=%q} %d\n", name, sh.name, pick(sh))
		}
	}

	counter("srbd_connections_total", "connections accepted")
	perShard("srbd_connections_total", func(sh *shard) int64 { return sh.srv.Stats().Connections })
	counter("srbd_requests_total", "requests served")
	perShard("srbd_requests_total", func(sh *shard) int64 { return sh.srv.Stats().Requests })
	counter("srbd_bytes_read_total", "data served to clients")
	perShard("srbd_bytes_read_total", func(sh *shard) int64 { return sh.srv.Stats().BytesRead })
	counter("srbd_bytes_written_total", "data committed from clients")
	perShard("srbd_bytes_written_total", func(sh *shard) int64 { return sh.srv.Stats().BytesWritten })
	counter("srbd_protocol_errors_total", "requests failing wire-protocol parsing")
	perShard("srbd_protocol_errors_total", func(sh *shard) int64 { return sh.srv.Stats().ProtocolError })
	counter("srbd_shed_total", "requests refused with server-busy (global overload)")
	perShard("srbd_shed_total", func(sh *shard) int64 { return sh.srv.Stats().Shed })
	counter("srbd_drained_total", "in-flight ops completed during shutdown")
	perShard("srbd_drained_total", func(sh *shard) int64 { return sh.srv.Stats().Drained })
	counter("srbd_rate_limited_total", "requests refused by a tenant bucket (fair-share shed)")
	perShard("srbd_rate_limited_total", func(sh *shard) int64 { return sh.srv.Stats().RateLimited })
	counter("srbd_auth_failed_total", "handshakes refused for bad tenant credentials")
	perShard("srbd_auth_failed_total", func(sh *shard) int64 { return sh.srv.Stats().AuthFailed })
	gauge("srbd_active_conns", "connections currently served")
	perShard("srbd_active_conns", func(sh *shard) int64 { return sh.srv.Stats().ActiveConns })
	gauge("srbd_open_handles", "file handles currently open")
	perShard("srbd_open_handles", func(sh *shard) int64 { return sh.srv.Stats().OpenHandles })

	writeTenantMetrics(w, shards, counter, gauge)

	if tr != nil {
		counter("srbd_trace_counter", "internal trace counters, by name")
		ctrs := tr.Counters()
		names := make([]string, 0, len(ctrs))
		for name := range ctrs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "srbd_trace_counter{name=%q} %d\n", name, ctrs[name])
		}
	}
}

// writeTenantMetrics emits per-tenant admission counters and usage/quota
// gauges for every shard with a tenant registry attached. Tenant names
// come back sorted from the registry, so scrapes are deterministic.
func writeTenantMetrics(w io.Writer, shards []*shard, counter, gauge func(name, help string)) {
	type row struct {
		shard, tenant string
		admitted      int64
		shed          int64
		usage         int64
		quota         int64
	}
	var rows []row
	for _, sh := range shards {
		reg := sh.srv.Tenants()
		if reg == nil {
			continue
		}
		stats := reg.StatsAll()
		usage := sh.srv.Catalog().UsageAll()
		for _, id := range reg.Names() {
			r := row{shard: sh.name, tenant: id,
				admitted: stats[id].Admitted, shed: stats[id].ShedOps, usage: usage[id]}
			if t, ok := reg.Lookup(id); ok {
				r.quota = t.Limits().QuotaBytes
			}
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return
	}
	counter("srbd_tenant_admitted_total", "ops admitted through the tenant's buckets")
	for _, r := range rows {
		fmt.Fprintf(w, "srbd_tenant_admitted_total{shard=%q,tenant=%q} %d\n", r.shard, r.tenant, r.admitted)
	}
	counter("srbd_tenant_shed_total", "ops refused by the tenant's buckets")
	for _, r := range rows {
		fmt.Fprintf(w, "srbd_tenant_shed_total{shard=%q,tenant=%q} %d\n", r.shard, r.tenant, r.shed)
	}
	gauge("srbd_tenant_usage_bytes", "bytes the tenant's files occupy")
	for _, r := range rows {
		fmt.Fprintf(w, "srbd_tenant_usage_bytes{shard=%q,tenant=%q} %d\n", r.shard, r.tenant, r.usage)
	}
	gauge("srbd_tenant_quota_bytes", "tenant storage quota (0 = unlimited)")
	for _, r := range rows {
		fmt.Fprintf(w, "srbd_tenant_quota_bytes{shard=%q,tenant=%q} %d\n", r.shard, r.tenant, r.quota)
	}
}
