package main

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"semplar/internal/tenant"
)

// parseLimits parses a -tenant-limits value: comma-separated k=v pairs
// with keys ops (ops/s), bytes (bytes/s), quota (bytes) and burst
// (seconds). The empty string is the zero Limits (unlimited).
func parseLimits(s string) (tenant.Limits, error) {
	var l tenant.Limits
	if s = strings.TrimSpace(s); s == "" {
		return l, nil
	}
	for _, kv := range strings.Split(s, ",") {
		if err := applyLimitField(&l, strings.TrimSpace(kv)); err != nil {
			return l, err
		}
	}
	return l, nil
}

func applyLimitField(l *tenant.Limits, kv string) error {
	k, v, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("limit %q is not key=value", kv)
	}
	switch k {
	case "ops", "bytes", "burst":
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("limit %s=%q is not a non-negative number", k, v)
		}
		switch k {
		case "ops":
			l.OpsPerSec = f
		case "bytes":
			l.BytesPerSec = f
		case "burst":
			l.Burst = f
		}
	case "quota":
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("limit quota=%q is not a non-negative integer", v)
		}
		l.QuotaBytes = n
	default:
		return fmt.Errorf("unknown limit key %q (want ops, bytes, quota or burst)", k)
	}
	return nil
}

// parseAuthKeys reads a tenant key file into a registry. One tenant per
// line:
//
//	<tenant-id> <hex-key> [ops=N] [bytes=N] [quota=N] [burst=S]
//
// Blank lines and #-comments are skipped. Fields after the key override
// the given default limits for that tenant only.
func parseAuthKeys(r io.Reader, defaults tenant.Limits) (*tenant.Registry, error) {
	reg := tenant.NewRegistry()
	sc := bufio.NewScanner(r)
	lineNo := 0
	seen := make(map[string]bool)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want <tenant> <hexkey> [limits...]", lineNo)
		}
		id := fields[0]
		if seen[id] {
			return nil, fmt.Errorf("line %d: duplicate tenant %q", lineNo, id)
		}
		seen[id] = true
		key, err := hex.DecodeString(fields[1])
		if err != nil || len(key) == 0 {
			return nil, fmt.Errorf("line %d: tenant %s: key is not non-empty hex", lineNo, id)
		}
		limits := defaults
		for _, kv := range fields[2:] {
			if err := applyLimitField(&limits, kv); err != nil {
				return nil, fmt.Errorf("line %d: tenant %s: %v", lineNo, id, err)
			}
		}
		reg.Register(id, key, limits)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return reg, nil
}

// loadAuthKeys parses the -auth-keys file.
func loadAuthKeys(path string, defaults tenant.Limits) (*tenant.Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseAuthKeys(f, defaults)
}
