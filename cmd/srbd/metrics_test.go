package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
	"semplar/internal/tenant"
	"semplar/internal/trace"
)

func TestParseLimits(t *testing.T) {
	l, err := parseLimits(" ops=500, bytes=1e6 ,quota=4096,burst=2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := tenant.Limits{OpsPerSec: 500, BytesPerSec: 1e6, QuotaBytes: 4096, Burst: 2}
	if l != want {
		t.Fatalf("parseLimits = %+v, want %+v", l, want)
	}
	if l, err := parseLimits(""); err != nil || l != (tenant.Limits{}) {
		t.Fatalf("empty limits = %+v, %v", l, err)
	}
	for _, bad := range []string{"ops", "ops=x", "ops=-1", "quota=1.5", "speed=9"} {
		if _, err := parseLimits(bad); err == nil {
			t.Errorf("parseLimits(%q) accepted garbage", bad)
		}
	}
}

func TestParseAuthKeys(t *testing.T) {
	const file = `
# production tenants
acme deadbeef ops=100 quota=1000
zeta c0ffee

bulk 00ff bytes=5e6 burst=4
`
	defaults := tenant.Limits{OpsPerSec: 7, Burst: 2}
	reg, err := parseAuthKeys(strings.NewReader(file), defaults)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 3 {
		t.Fatalf("tenants = %v, want 3", got)
	}
	acme, _ := reg.Lookup("acme")
	if l := acme.Limits(); l.OpsPerSec != 100 || l.QuotaBytes != 1000 || l.Burst != 2 {
		t.Fatalf("acme limits = %+v (overrides on top of defaults)", l)
	}
	zeta, _ := reg.Lookup("zeta")
	if l := zeta.Limits(); l != defaults {
		t.Fatalf("zeta limits = %+v, want defaults %+v", l, defaults)
	}
	bulk, _ := reg.Lookup("bulk")
	if l := bulk.Limits(); l.OpsPerSec != 7 || l.BytesPerSec != 5e6 || l.Burst != 4 {
		t.Fatalf("bulk limits = %+v", l)
	}
	// The registered key must verify real proofs.
	if _, err := reg.Authenticate("acme", "u", tenant.Proof([]byte{0xde, 0xad, 0xbe, 0xef}, "acme", "u")); err != nil {
		t.Fatalf("hex key does not authenticate: %v", err)
	}

	for _, bad := range []string{
		"onlyid",
		"acme nothex",
		"acme ",
		"acme deadbeef ops=x",
		"dup aa\ndup bb",
	} {
		if _, err := parseAuthKeys(strings.NewReader(bad), tenant.Limits{}); err == nil {
			t.Errorf("parseAuthKeys(%q) accepted garbage", bad)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	reg := tenant.NewRegistry()
	key := []byte("metrics-key")
	reg.Register("acme", key, tenant.Limits{QuotaBytes: 1 << 20})
	srv.SetTenants(reg)
	tr := trace.NewMetricsOnly()
	srv.SetTracer(tr)

	// Drive real traffic so the counters move: one authenticated write,
	// one refused anonymous handshake.
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(sEnd)
	conn, err := srb.NewConnAuth(cEnd, "scraper", srb.Credentials{TenantID: "acme", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	f, err := conn.Open("/m", srb.O_RDWR|srb.O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	aEnd, asEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(asEnd)
	if _, err := srb.NewConn(aEnd, "anon"); err == nil {
		t.Fatal("anonymous handshake accepted")
	}

	rec := httptest.NewRecorder()
	metricsHandler([]*shard{{name: "s0", srv: srv}}, tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE srbd_requests_total counter",
		`srbd_auth_failed_total{shard="s0"} 1`,
		`srbd_bytes_written_total{shard="s0"} 100`,
		`srbd_tenant_usage_bytes{shard="s0",tenant="acme"} 100`,
		`srbd_tenant_quota_bytes{shard="s0",tenant="acme"} 1048576`,
		`srbd_tenant_admitted_total{shard="s0",tenant="acme"}`,
		`srbd_tenant_shed_total{shard="s0",tenant="acme"} 0`,
		`srbd_trace_counter{name="srb.server.auth_failed"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	conn.Close()
}
