// Command srbsh is a small SRB shell client in the spirit of the Scommands
// (Sput, Sget, Sls ...): it exercises the full wire protocol against a
// running srbd.
//
// Usage:
//
//	srbsh -server HOST:PORT ls /path
//	srbsh -server HOST:PORT stat /path
//	srbsh -server HOST:PORT mkdir /path
//	srbsh -server HOST:PORT put LOCAL /remote [-streams N]
//	srbsh -server HOST:PORT get /remote LOCAL
//	srbsh -server HOST:PORT rm /remote
//	srbsh -server HOST:PORT sum /remote
//	srbsh -server HOST:PORT replicate /remote RESOURCE
//	srbsh -server HOST:PORT ping
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"semplar"
	"semplar/internal/srb"
)

func main() {
	server := flag.String("server", "127.0.0.1:5544", "SRB server address")
	user := flag.String("user", "srbsh", "user name for the handshake")
	streams := flag.Int("streams", 1, "TCP streams for put/get")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	switch args[0] {
	case "ping":
		conn, err := srb.Dial(*server, *user)
		fatal(err)
		defer conn.Close()
		start := time.Now()
		if _, err := conn.Ping(); err != nil {
			fatal(err)
		}
		fmt.Printf("pong from %s in %v\n", *server, time.Since(start))

	case "ls":
		need(args, 2)
		conn, err := srb.Dial(*server, *user)
		fatal(err)
		defer conn.Close()
		entries, err := conn.List(args[1])
		fatal(err)
		for _, e := range entries {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %12d  %s\n", kind, e.Size, e.Path)
		}

	case "stat":
		need(args, 2)
		conn, err := srb.Dial(*server, *user)
		fatal(err)
		defer conn.Close()
		fi, err := conn.Stat(args[1])
		fatal(err)
		fmt.Printf("path:     %s\ndir:      %v\nsize:     %d\nresource: %s\n",
			fi.Path, fi.IsDir, fi.Size, fi.Resource)

	case "mkdir":
		need(args, 2)
		conn, err := srb.Dial(*server, *user)
		fatal(err)
		defer conn.Close()
		fatal(conn.Mkdir(args[1]))

	case "rm":
		need(args, 2)
		conn, err := srb.Dial(*server, *user)
		fatal(err)
		defer conn.Close()
		fatal(conn.Unlink(args[1]))

	case "sum":
		need(args, 2)
		conn, err := srb.Dial(*server, *user)
		fatal(err)
		defer conn.Close()
		sum, size, err := conn.Checksum(args[1])
		fatal(err)
		fmt.Printf("%s  %d  %s\n", sum, size, args[1])

	case "replicate":
		need(args, 3)
		conn, err := srb.Dial(*server, *user)
		fatal(err)
		defer conn.Close()
		n, err := conn.Replicate(args[1], args[2])
		fatal(err)
		fmt.Printf("replicated %d bytes of %s to %s\n", n, args[1], args[2])

	case "put":
		need(args, 3)
		data, err := os.ReadFile(args[1])
		fatal(err)
		client := dialClient(*server, *user, *streams)
		f, err := client.Open(args[2], semplar.O_WRONLY|semplar.O_CREATE|semplar.O_TRUNC)
		fatal(err)
		start := time.Now()
		_, err = f.WriteAt(data, 0)
		fatal(err)
		fatal(f.Close())
		el := time.Since(start)
		fmt.Printf("put %d bytes in %v (%.2f MB/s, %d streams)\n",
			len(data), el, float64(len(data))/(1<<20)/el.Seconds(), *streams)

	case "get":
		need(args, 3)
		client := dialClient(*server, *user, *streams)
		f, err := client.Open(args[1], semplar.O_RDONLY)
		fatal(err)
		size, err := f.Size()
		fatal(err)
		buf := make([]byte, size)
		start := time.Now()
		_, err = f.ReadAt(buf, 0)
		fatal(err)
		fatal(f.Close())
		el := time.Since(start)
		fatal(os.WriteFile(args[2], buf, 0o644))
		fmt.Printf("got %d bytes in %v (%.2f MB/s, %d streams)\n",
			len(buf), el, float64(len(buf))/(1<<20)/el.Seconds(), *streams)

	default:
		log.Fatalf("srbsh: unknown command %q", args[0])
	}
}

func dialClient(server, user string, streams int) *semplar.Client {
	client, err := semplar.NewClient(func() (net.Conn, error) {
		return net.Dial("tcp", server)
	}, semplar.Options{User: user, Streams: streams})
	fatal(err)
	return client
}

func need(args []string, n int) {
	if len(args) < n {
		log.Fatalf("srbsh: %s needs %d arguments", args[0], n-1)
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatalf("srbsh: %v", err)
	}
}
