// Command semplar-bench regenerates the paper's figures on the simulated
// testbeds and prints the series in tabular form.
//
// Usage:
//
//	semplar-bench [-fig 6|7|8|9|contention|all] [-scale N] [-quick] [-trials N]
//	              [-trace out.json]
//
// With -trace, every request's lifecycle across the selected figures is
// recorded and written as Chrome trace-event JSON — open the file in
// about:tracing or https://ui.perfetto.dev to see queue time vs wire time
// per request. A summary table is printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semplar/internal/harness"
	"semplar/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, contention, all")
	scale := flag.Float64("scale", 10, "testbed acceleration factor")
	quick := flag.Bool("quick", false, "small problem sizes and short sweeps")
	trials := flag.Int("trials", 1, "timed trials per point (minimum kept)")
	csvPath := flag.String("csv", "", "also append every series to this CSV file")
	tracePath := flag.String("trace", "", "record request traces and write Chrome trace-event JSON here")
	flag.Parse()

	opt := harness.Options{Scale: *scale, Quick: *quick, Trials: *trials}
	if *tracePath != "" {
		opt.Trace = trace.New()
	}
	runners := map[string]func(harness.Options) (*harness.Figure, error){
		"6":          harness.RunFig6,
		"7":          harness.RunFig7,
		"8":          harness.RunFig8,
		"9":          harness.RunFig9,
		"contention": harness.RunBusContention,
	}
	order := []string{"6", "7", "8", "9", "contention"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(*fig, ",") {
			if _, ok := runners[f]; !ok {
				fmt.Fprintf(os.Stderr, "unknown figure %q\n", f)
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}

	var csvOut *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "open csv: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	for _, f := range selected {
		result, err := runners[f](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s failed: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Println(result.Render())
		if csvOut != nil {
			if _, err := csvOut.WriteString(result.CSV()); err != nil {
				fmt.Fprintf(os.Stderr, "write csv: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if opt.Trace != nil {
		out, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create trace: %v\n", err)
			os.Exit(1)
		}
		if err := opt.Trace.WriteChrome(out); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "close trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, opt.Trace.Summary())
		fmt.Fprintf(os.Stderr, "trace written to %s (open in about:tracing or ui.perfetto.dev)\n", *tracePath)
	}
}
