// Command benchsnap measures the wire hot path and writes a JSON snapshot
// suitable for committing next to the code it measures (BENCH_<n>.json).
//
// It answers three questions about one SRB connection under simulated
// network latency:
//
//  1. What does pipelining buy? The same batch of small writes is issued
//     strictly serialized (await each response before the next request, the
//     pre-pipelining client behavior) and then with many tagged requests in
//     flight. Latency-bound workloads should approach depth× improvement.
//  2. What does write coalescing buy? A striped SRBFS file is written with
//     vectored-write batching on and off (SRBFSConfig.DisableCoalesce).
//  3. What does buffer pooling buy? Heap allocations per op on the
//     small-op hot path, measured with runtime.MemStats.
//  4. What does federating across servers buy? The same striped write is
//     pushed through the federated driver against one device-metered
//     server and against three, so per-server storage bandwidth — the
//     bottleneck the paper's testbeds hit — is what scales.
//  5. What do the noncontiguous fast paths buy? The same strided view read
//     is issued naively (one round trip per record), data-sieved (windowed
//     contiguous reads), as list I/O (one offset/length vector on the
//     wire), and as a two-phase collective across ranks whose views tile
//     the file.
//  6. What does fair-share admission buy? A well-behaved tenant's p99 op
//     latency is measured alone and with a rate-limited neighbor flooding
//     the same server; per-tenant token buckets should shed the flood
//     before it queues in front of the victim.
//
// Usage:
//
//	benchsnap [-out BENCH_10.json] [-ops 400] [-size 512] [-depth 16]
//	          [-latency 500us] [-quick]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/mcat"
	"semplar/internal/mpi"
	"semplar/internal/mpiio"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
	"semplar/internal/tenant"
)

type result struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	WallNS      int64   `json:"wall_ns"`
	NSPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	P99NS       int64   `json:"p99_ns,omitempty"`
	ShedOps     int64   `json:"shed_ops,omitempty"`
}

type snapshot struct {
	Bench   string   `json:"bench"`
	Tool    string   `json:"tool"`
	Go      string   `json:"go"`
	Config  config   `json:"config"`
	Results []result `json:"results"`
	Derived derived  `json:"derived"`
}

type config struct {
	Ops         int   `json:"ops"`
	OpBytes     int   `json:"op_bytes"`
	OneWayLatNS int64 `json:"one_way_latency_ns"`
	Depth       int   `json:"pipeline_depth"`
	CoalesceOps int   `json:"coalesce_ops"`
	StripeBytes int   `json:"stripe_bytes"`
	Streams     int   `json:"streams"`

	FedBytes       int     `json:"fed_bytes"`
	FedStripeBytes int     `json:"fed_stripe_bytes"`
	FedServers     int     `json:"fed_servers"`
	FedWriteMBps   float64 `json:"fed_write_mbps"`

	StridedRecords     int `json:"strided_records"`
	StridedRecBytes    int `json:"strided_rec_bytes"`
	StridedStrideBytes int `json:"strided_stride_bytes"`
	TwoPhaseRanks      int `json:"two_phase_ranks"`

	FairOps          int     `json:"fair_ops"`
	FairOpBytes      int     `json:"fair_op_bytes"`
	FlooderOpsPerSec float64 `json:"flooder_ops_per_sec"`
}

type derived struct {
	// PipelineSpeedup is serialized wall time over pipelined wall time for
	// the same op batch on one connection.
	PipelineSpeedup float64 `json:"pipeline_speedup"`
	// CoalesceSpeedup is the uncoalesced striped write wall time over the
	// coalesced one.
	CoalesceSpeedup float64 `json:"coalesce_speedup"`
	// FederationSpeedup is the 1-server federated striped write wall time
	// over the FedServers-server one: how much striping across servers
	// buys when per-server storage bandwidth is the bottleneck.
	FederationSpeedup float64 `json:"federation_speedup"`
	// SieveSpeedup is the naive strided read wall time over the data-sieved
	// one: what trading read amplification for round trips buys at WAN
	// latency.
	SieveSpeedup float64 `json:"sieve_speedup"`
	// ListIOSpeedup is the naive strided read wall time over the list-I/O
	// one (offset/length vector on the wire, no amplification).
	ListIOSpeedup float64 `json:"listio_speedup"`
	// TwoPhaseSpeedup is the naive strided read wall time over the
	// two-phase collective read whose ranks' views tile the file. The
	// collective moves TwoPhaseRanks× the data of the naive scenario, so
	// this understates the per-byte win.
	TwoPhaseSpeedup float64 `json:"two_phase_speedup"`
	// FairShareSlowdown is a well-behaved tenant's p99 op latency with a
	// rate-limited neighbor flooding the same server, over its solo p99.
	// Fair-share admission should keep this near 1: the flood is shed at
	// the bucket, not queued in front of the victim.
	FairShareSlowdown float64 `json:"fair_share_slowdown"`
}

func main() {
	out := flag.String("out", "BENCH_10.json", "snapshot output path (- for stdout)")
	ops := flag.Int("ops", 400, "small ops per scenario")
	size := flag.Int("size", 512, "bytes per small op")
	depth := flag.Int("depth", 16, "concurrent in-flight ops in the pipelined scenario")
	latency := flag.Duration("latency", 500*time.Microsecond, "one-way simulated latency")
	quick := flag.Bool("quick", false, "smoke sizes: a few ops, enough to exercise every path")
	flag.Parse()

	fedBytes := 16 << 20
	stridedRecords := 256
	if *quick {
		*ops = 40
		fedBytes = 512 << 10
		stridedRecords = 48
	}
	coalesceOps := *ops
	stripe := 4 << 10
	streams := 2
	fedStripe := 64 << 10
	fedServers := 3
	fedMBps := 128.0
	stridedRec := 512
	stridedStride := 4 << 10 // density 1/8: sparse enough for list I/O
	fairOps := *ops
	floodRate := 50.0

	cfg := config{
		Ops: *ops, OpBytes: *size, OneWayLatNS: int64(*latency), Depth: *depth,
		CoalesceOps: coalesceOps, StripeBytes: stripe, Streams: streams,
		FedBytes: fedBytes, FedStripeBytes: fedStripe, FedServers: fedServers,
		FedWriteMBps:   fedMBps,
		StridedRecords: stridedRecords, StridedRecBytes: stridedRec,
		StridedStrideBytes: stridedStride, TwoPhaseRanks: stridedStride / stridedRec,
		FairOps:          fairOps,
		FairOpBytes:      *size,
		FlooderOpsPerSec: floodRate,
	}

	serialized, err := runSmallWrites(*latency, *ops, *size, 1)
	check(err)
	serialized.Name = "small-writes/serialized"
	pipelined, err := runSmallWrites(*latency, *ops, *size, *depth)
	check(err)
	pipelined.Name = "small-writes/pipelined"

	uncoalesced, err := runStripedWrite(*latency, coalesceOps, stripe, streams, true)
	check(err)
	uncoalesced.Name = "striped-write/coalesce-off"
	coalesced, err := runStripedWrite(*latency, coalesceOps, stripe, streams, false)
	check(err)
	coalesced.Name = "striped-write/coalesce-on"

	fedOne, err := runFederatedWrite(*latency, fedBytes, fedStripe, 1, fedMBps)
	check(err)
	fedOne.Name = "federated-write/1-server"
	fedMany, err := runFederatedWrite(*latency, fedBytes, fedStripe, fedServers, fedMBps)
	check(err)
	fedMany.Name = fmt.Sprintf("federated-write/%d-servers", fedServers)

	naiveStrided, err := runStridedRead(*latency, stridedRecords, stridedRec, stridedStride,
		adio.Hints{"sieve": "off", "listio": "off"})
	check(err)
	naiveStrided.Name = "strided-read/naive"
	sievedStrided, err := runStridedRead(*latency, stridedRecords, stridedRec, stridedStride,
		adio.Hints{"listio": "off"})
	check(err)
	sievedStrided.Name = "strided-read/sieved"
	listioStrided, err := runStridedRead(*latency, stridedRecords, stridedRec, stridedStride,
		adio.Hints{"sieve": "off"})
	check(err)
	listioStrided.Name = "strided-read/listio"
	twoPhase, err := runTwoPhaseRead(*latency, stridedRecords, stridedRec, stridedStride)
	check(err)
	twoPhase.Name = "strided-read/two-phase"

	fairSolo, err := runFairShare(*latency, fairOps, *size, floodRate, false)
	check(err)
	fairSolo.Name = "fair-share/solo"
	fairFlooded, err := runFairShare(*latency, fairOps, *size, floodRate, true)
	check(err)
	fairFlooded.Name = "fair-share/flooded"

	snap := snapshot{
		Bench:  "wire-pipelining",
		Tool:   "cmd/benchsnap",
		Go:     runtime.Version(),
		Config: cfg,
		Results: []result{serialized, pipelined, uncoalesced, coalesced, fedOne, fedMany,
			naiveStrided, sievedStrided, listioStrided, twoPhase, fairSolo, fairFlooded},
		Derived: derived{
			PipelineSpeedup:   ratio(serialized.WallNS, pipelined.WallNS),
			CoalesceSpeedup:   ratio(uncoalesced.WallNS, coalesced.WallNS),
			FederationSpeedup: ratio(fedOne.WallNS, fedMany.WallNS),
			SieveSpeedup:      ratio(naiveStrided.WallNS, sievedStrided.WallNS),
			ListIOSpeedup:     ratio(naiveStrided.WallNS, listioStrided.WallNS),
			TwoPhaseSpeedup:   ratio(naiveStrided.WallNS, twoPhase.WallNS),
			FairShareSlowdown: ratio(fairFlooded.P99NS, fairSolo.P99NS),
		},
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	check(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err := os.Stdout.Write(enc)
		check(err)
	} else {
		check(os.WriteFile(*out, enc, 0o644))
		fmt.Printf("wrote %s: pipeline %.2fx, coalesce %.2fx, federation %.2fx, sieve %.2fx, listio %.2fx, two-phase %.2fx, fair-share p99 %.2fx\n",
			*out, snap.Derived.PipelineSpeedup, snap.Derived.CoalesceSpeedup,
			snap.Derived.FederationSpeedup, snap.Derived.SieveSpeedup,
			snap.Derived.ListIOSpeedup, snap.Derived.TwoPhaseSpeedup,
			snap.Derived.FairShareSlowdown)
	}

	// A snapshot whose headline numbers show no improvement means a hot
	// path regressed; fail loudly so CI smoke catches it.
	if snap.Derived.PipelineSpeedup < 1.0 {
		fmt.Fprintf(os.Stderr, "benchsnap: pipelining slower than serialized (%.2fx)\n",
			snap.Derived.PipelineSpeedup)
		os.Exit(1)
	}
	if snap.Derived.FederationSpeedup < 1.0 {
		fmt.Fprintf(os.Stderr, "benchsnap: %d servers slower than one (%.2fx)\n",
			fedServers, snap.Derived.FederationSpeedup)
		os.Exit(1)
	}
	if snap.Derived.SieveSpeedup < 1.0 {
		fmt.Fprintf(os.Stderr, "benchsnap: sieved strided read slower than naive (%.2fx)\n",
			snap.Derived.SieveSpeedup)
		os.Exit(1)
	}
	// The fair-share gate: the flood must actually have hit the limiter,
	// and shedding it must have protected the neighbor — a generous bound
	// because p99 on a loaded CI box is noisy, but an unprotected server
	// (flood queued in front of the victim) blows well past it.
	if fairFlooded.ShedOps == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: flooding tenant was never rate-limited")
		os.Exit(1)
	}
	if snap.Derived.FairShareSlowdown > 10.0 {
		fmt.Fprintf(os.Stderr, "benchsnap: neighbor flood slowed well-behaved p99 %.2fx\n",
			snap.Derived.FairShareSlowdown)
		os.Exit(1)
	}
}

// stridedFS builds an SRBFS registry over latency-shaped pipes and lays
// down `records` frames of `stride` physical bytes.
func stridedFS(latency time.Duration, records, stride int) (*adio.Registry, error) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	fs, err := core.NewSRBFS(core.SRBFSConfig{
		Dial: func() (net.Conn, error) {
			cEnd, sEnd := netsim.Pipe(latency, nil, nil)
			go srv.ServeConn(sEnd)
			return cEnd, nil
		},
		User:       "bench",
		Streams:    2,
		StripeSize: 64 << 10,
	})
	if err != nil {
		return nil, err
	}
	reg := &adio.Registry{}
	reg.Register(fs)

	prep, err := mpiio.OpenLocal(reg, "srb:/strided.dat", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		return nil, err
	}
	defer prep.Close()
	buf := make([]byte, records*stride)
	for i := range buf {
		buf[i] = byte(i)
	}
	if _, err := prep.WriteAt(buf, 0); err != nil {
		return nil, err
	}
	return reg, nil
}

// runStridedRead reads `records` view frames of recSize bytes spaced stride
// bytes apart through one mpiio handle; hints select naive, sieved, or
// list-I/O dispatch.
func runStridedRead(latency time.Duration, records, recSize, stride int, hints adio.Hints) (result, error) {
	reg, err := stridedFS(latency, records, stride)
	if err != nil {
		return result{}, err
	}
	f, err := mpiio.OpenLocal(reg, "srb:/strided.dat", adio.O_RDONLY, hints)
	if err != nil {
		return result{}, err
	}
	defer f.Close()
	if err := f.SetView(mpiio.View{BlockLen: int64(recSize), Stride: int64(stride)}); err != nil {
		return result{}, err
	}

	out := make([]byte, records*recSize)
	start := time.Now()
	n, err := f.ReadAt(out, 0)
	wall := time.Since(start)
	if err != nil {
		return result{}, err
	}
	if n != len(out) {
		return result{}, fmt.Errorf("strided read got %d of %d bytes", n, len(out))
	}
	return result{
		Ops:     records,
		WallNS:  wall.Nanoseconds(),
		NSPerOp: wall.Nanoseconds() / int64(records),
	}, nil
}

// runTwoPhaseRead reads the same strided file collectively: stride/recSize
// ranks install interleaved views that together tile every byte, so the
// aggregators' coalesced reads are large and contiguous. Note the
// collective moves ranks× the bytes of the single-rank scenarios.
func runTwoPhaseRead(latency time.Duration, records, recSize, stride int) (result, error) {
	np := stride / recSize
	reg, err := stridedFS(latency, records, stride)
	if err != nil {
		return result{}, err
	}
	start := time.Now()
	err = mpi.Run(np, func(c *mpi.Comm) error {
		f, err := mpiio.Open(c, reg, "srb:/strided.dat", adio.O_RDONLY, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		v := mpiio.View{
			Disp:     int64(c.Rank() * recSize),
			BlockLen: int64(recSize),
			Stride:   int64(stride),
		}
		if err := f.SetView(v); err != nil {
			return err
		}
		out := make([]byte, records*recSize)
		n, err := f.ReadAtAll(c, out, 0)
		if err != nil {
			return err
		}
		if n != len(out) {
			return fmt.Errorf("rank %d read %d of %d bytes", c.Rank(), n, len(out))
		}
		return nil
	})
	wall := time.Since(start)
	if err != nil {
		return result{}, err
	}
	return result{
		Ops:     records,
		WallNS:  wall.Nanoseconds(),
		NSPerOp: wall.Nanoseconds() / int64(records),
	}, nil
}

// runSmallWrites issues ops writes of size bytes each over ONE connection
// at the given pipeline depth (1 = strictly serialized) and measures wall
// clock plus heap allocations per op.
func runSmallWrites(latency time.Duration, ops, size, depth int) (result, error) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	cEnd, sEnd := netsim.Pipe(latency, nil, nil)
	go srv.ServeConn(sEnd)
	conn, err := srb.NewConn(cEnd, "bench")
	if err != nil {
		return result{}, err
	}
	defer conn.Close()
	f, err := conn.Open("/bench.dat", srb.O_RDWR|srb.O_CREATE, "")
	if err != nil {
		return result{}, err
	}
	defer f.Close()

	blk := make([]byte, size)
	for i := range blk {
		blk[i] = byte(i)
	}
	// Warm the pools and the file so steady-state allocation is measured.
	if _, err := f.WriteAt(blk, 0); err != nil {
		return result{}, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()

	var firstErr error
	if depth <= 1 {
		for i := 0; i < ops; i++ {
			if _, err := f.WriteAt(blk, int64(i*size)); err != nil {
				firstErr = err
				break
			}
		}
	} else {
		var (
			wg sync.WaitGroup
			mu sync.Mutex
		)
		sem := make(chan struct{}, depth)
		for i := 0; i < ops; i++ {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				if _, err := f.WriteAt(blk, int64(i*size)); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(i)
		}
		wg.Wait()
	}

	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if firstErr != nil {
		return result{}, firstErr
	}
	return result{
		Ops:         ops,
		WallNS:      wall.Nanoseconds(),
		NSPerOp:     wall.Nanoseconds() / int64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
	}, nil
}

// runStripedWrite writes ops stripes through a striped SRBFS handle in one
// WriteAt call, with write coalescing toggled by disable.
func runStripedWrite(latency time.Duration, ops, stripe, streams int, disable bool) (result, error) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	dial := func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(latency, nil, nil)
		go srv.ServeConn(sEnd)
		return cEnd, nil
	}
	fs, err := core.NewSRBFS(core.SRBFSConfig{
		Dial:            dial,
		User:            "bench",
		Streams:         streams,
		StripeSize:      stripe,
		DisableCoalesce: disable,
	})
	if err != nil {
		return result{}, err
	}
	f, err := fs.Open("/striped.dat", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		return result{}, err
	}
	defer f.Close()

	buf := make([]byte, ops*stripe)
	for i := range buf {
		buf[i] = byte(i)
	}

	start := time.Now()
	n, err := f.WriteAt(buf, 0)
	wall := time.Since(start)
	if err != nil {
		return result{}, err
	}
	if n != len(buf) {
		return result{}, fmt.Errorf("striped write wrote %d of %d bytes", n, len(buf))
	}
	return result{
		Ops:     ops,
		WallNS:  wall.Nanoseconds(),
		NSPerOp: wall.Nanoseconds() / int64(ops),
	}, nil
}

// runFederatedWrite pushes one large striped write through the federated
// driver against a fleet of `servers` in-process SRB servers, each behind
// its own device metered at rateMBps — so aggregate storage bandwidth,
// not the wire, bounds throughput, and adding servers adds bandwidth.
// Replication is off (width = fleet, one copy per slot): the comparison
// isolates server-count scaling.
func runFederatedWrite(latency time.Duration, totalBytes, stripe, servers int, rateMBps float64) (result, error) {
	placer := mcat.NewPlacer(1)
	eps := make([]core.Endpoint, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("s%d", i)
		srv := srb.NewMemServer(storage.DeviceSpec{
			Name:      name + "-device",
			ReadRate:  rateMBps * netsim.MBps,
			WriteRate: rateMBps * netsim.MBps,
		})
		placer.AddServer(name)
		eps[i] = core.Endpoint{Name: name, Dial: func() (net.Conn, error) {
			cEnd, sEnd := netsim.Pipe(latency, nil, nil)
			go srv.ServeConn(sEnd)
			return cEnd, nil
		}}
	}
	fs, err := core.NewFedFS(core.FedConfig{
		Endpoints:  eps,
		Placer:     placer,
		Width:      servers,
		User:       "bench",
		Streams:    2,
		StripeSize: stripe,
	})
	if err != nil {
		return result{}, err
	}
	f, err := fs.Open("/fed.dat", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		return result{}, err
	}
	defer f.Close()

	buf := make([]byte, totalBytes)
	for i := range buf {
		buf[i] = byte(i)
	}

	start := time.Now()
	n, err := f.WriteAt(buf, 0)
	wall := time.Since(start)
	if err != nil {
		return result{}, err
	}
	if n != len(buf) {
		return result{}, fmt.Errorf("federated write wrote %d of %d bytes", n, len(buf))
	}
	ops := totalBytes / stripe
	return result{
		Ops:     ops,
		WallNS:  wall.Nanoseconds(),
		NSPerOp: wall.Nanoseconds() / int64(ops),
	}, nil
}

// runFairShare measures a well-behaved tenant's per-op latency on a
// multi-tenant server, alone and (with flood) while an abusive neighbor
// hammers the same server with unpaced single-attempt writes against a
// tight rate limit. The abuser's excess is shed at its token bucket, so
// the victim's p99 should barely move; the shed count comes back so the
// caller can verify the flood actually hit the limiter.
func runFairShare(latency time.Duration, ops, size int, floodRate float64, flood bool) (result, error) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	reg := tenant.NewRegistry()
	victimKey := []byte("bench-victim-key")
	floodKey := []byte("bench-flood-key")
	reg.Register("victim", victimKey, tenant.Limits{OpsPerSec: 1e6, Burst: 1})
	reg.Register("flood", floodKey, tenant.Limits{OpsPerSec: floodRate, Burst: 0.25})
	srv.SetTenants(reg)
	dial := func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(latency, nil, nil)
		go srv.ServeConn(sEnd)
		return cEnd, nil
	}

	stop := make(chan struct{})
	floodDone := make(chan error, 1)
	if flood {
		fconn, err := srb.DialRetryAuth(dial, "bench-flood",
			srb.Credentials{TenantID: "flood", Key: floodKey}, srb.RetryPolicy{})
		if err != nil {
			return result{}, err
		}
		defer fconn.Close()
		ff, err := fconn.Open("/flood.dat", srb.O_RDWR|srb.O_CREATE, "")
		if err != nil {
			return result{}, err
		}
		go func() {
			defer ff.Close()
			blk := make([]byte, 256)
			for {
				select {
				case <-stop:
					floodDone <- nil
					return
				default:
				}
				if _, err := ff.WriteAt(blk, 0); err != nil && !errors.Is(err, srb.ErrRateLimited) {
					floodDone <- err
					return
				}
			}
		}()
	} else {
		close(floodDone)
	}

	conn, err := srb.DialRetryAuth(dial, "bench-victim",
		srb.Credentials{TenantID: "victim", Key: victimKey}, srb.RetryPolicy{})
	if err != nil {
		return result{}, err
	}
	defer conn.Close()
	f, err := conn.Open("/victim.dat", srb.O_RDWR|srb.O_CREATE, "")
	if err != nil {
		return result{}, err
	}
	defer f.Close()

	blk := make([]byte, size)
	for i := range blk {
		blk[i] = byte(i)
	}
	if _, err := f.WriteAt(blk, 0); err != nil {
		return result{}, err
	}

	lats := make([]time.Duration, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		opStart := time.Now()
		if _, err := f.WriteAt(blk, int64(i*size)); err != nil {
			return result{}, fmt.Errorf("victim op %d beside the flood: %w", i, err)
		}
		lats[i] = time.Since(opStart)
	}
	wall := time.Since(start)

	close(stop)
	if err := <-floodDone; err != nil {
		return result{}, fmt.Errorf("flooder: %w", err)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st := reg.StatsAll()["flood"]
	return result{
		Ops:     ops,
		WallNS:  wall.Nanoseconds(),
		NSPerOp: wall.Nanoseconds() / int64(ops),
		P99NS:   lats[ops*99/100].Nanoseconds(),
		ShedOps: st.ShedOps,
	}, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}
