// Command semplarvet runs SEMPLAR's project-specific static analyzers
// over every package in the module and reports diagnostics with file:line
// positions. It exits 1 when there are findings, 2 on load errors, so
// `make lint` (and through it `make check`) gates the tree on the
// concurrency and wire-protocol invariants the analyzers encode.
//
// Usage:
//
//	semplarvet [-rules lockheld,errdrop] [-list] [-json] [dir]
//
// With no directory argument the module containing the working directory
// is analyzed. A "./..." argument is accepted (and means the same thing)
// so the tool slots into vet-style Makefile targets. A directory argument
// restricts the report to findings under that directory; a directory the
// module walk excludes (testdata, vendor) is loaded as a standalone
// stdlib-only package instead, which is how the analyzer corpus under
// internal/analysis/testdata can be inspected by hand.
//
// Deliberate violations are suppressed in the source with
// "//lint:allow <rule> -- reason"; see DESIGN.md section 6.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"semplar/internal/analysis"
)

// jsonDiag is the machine-readable finding shape emitted by -json; CI
// uploads the array as a workflow artifact. Order is deterministic:
// (file, line, col, rule) across all packages.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: semplarvet [-rules r1,r2] [-list] [-json] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}

	selected := all
	if *rules != "" {
		byName := map[string]analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name()] = a
		}
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "semplarvet: unknown rule %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	dir := "."
	wholeModule := true
	if args := flag.Args(); len(args) > 0 && args[0] != "./..." && args[0] != "..." {
		dir = args[0]
		wholeModule = false
	}

	var pkgs []*analysis.Package
	if !wholeModule && walkExcluded(dir) {
		// A testdata/vendor directory never appears in the module walk;
		// load it standalone so the analyzer corpus can be inspected.
		// Absolute so positions line up with the scope filter below.
		if abs, err := filepath.Abs(dir); err == nil {
			dir = abs
		}
		pkg, err := analysis.LoadDir(dir, filepath.ToSlash(dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "semplarvet: %v\n", err)
			os.Exit(2)
		}
		pkgs = []*analysis.Package{pkg}
	} else {
		root, err := analysis.FindModuleRoot(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semplarvet: %v\n", err)
			os.Exit(2)
		}
		pkgs, err = analysis.LoadModule(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semplarvet: %v\n", err)
			os.Exit(2)
		}
	}

	scope := ""
	if !wholeModule {
		if abs, err := filepath.Abs(dir); err == nil {
			scope = abs + string(filepath.Separator)
		}
	}

	cwd, _ := os.Getwd()
	var diags []jsonDiag
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, selected) {
			if scope != "" && !strings.HasPrefix(d.Pos.Filename, scope) {
				continue
			}
			name := d.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
			}
			diags = append(diags, jsonDiag{
				File:    name,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
	}
	// Run sorts within a package; re-sort globally so multi-package output
	// is stable regardless of load order.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})

	if *asJSON {
		out, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "semplarvet: %v\n", err)
			os.Exit(2)
		}
		if diags == nil {
			out = []byte("[]")
		}
		fmt.Printf("%s\n", out)
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "semplarvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// walkExcluded reports whether the module walk would skip dir: any path
// element named testdata or vendor, or starting with "." or "_".
func walkExcluded(dir string) bool {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return false
	}
	for _, part := range strings.Split(filepath.ToSlash(abs), "/") {
		if part == "testdata" || part == "vendor" ||
			(part != "." && part != ".." && strings.HasPrefix(part, ".")) ||
			strings.HasPrefix(part, "_") {
			return true
		}
	}
	return false
}
