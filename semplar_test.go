package semplar

import (
	"bytes"
	"net"
	"testing"
	"time"

	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
	"semplar/internal/workloads/datagen"
)

// simClient wires a client to a fresh in-memory SRB server.
func simClient(t *testing.T, opts Options) (*Client, *srb.Server) {
	t.Helper()
	srv := srb.NewMemServer(storage.DeviceSpec{})
	c, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		return cEnd, nil
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func TestClientOpenWriteRead(t *testing.T) {
	c, _ := simClient(t, Options{})
	f, err := c.Open("/data", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	msg := []byte("public api round trip")
	if _, err := f.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("mismatch")
	}
}

func TestAsyncRequests(t *testing.T) {
	c, _ := simClient(t, Options{IOThreads: 2})
	f, err := c.Open("/async", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var reqs []*Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, f.IWriteAt(bytes.Repeat([]byte{byte(i)}, 256), int64(i*256)))
	}
	if n, err := WaitAll(reqs); err != nil || n != 5*256 {
		t.Fatalf("waitall = %d, %v", n, err)
	}
	req := f.IReadAt(make([]byte, 256), 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, done := Test(req); done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request stuck")
		}
	}
	if n, err := Wait(req); err != nil || n != 256 {
		t.Fatalf("wait = %d, %v", n, err)
	}
}

func TestOpenWithStreams(t *testing.T) {
	c, srv := simClient(t, Options{})
	f, err := c.OpenWith("/striped", O_RDWR|O_CREATE, OpenOptions{Streams: 3, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := srv.Stats().ActiveConns; got != 3 {
		t.Fatalf("streams = %d conns, want 3", got)
	}
	data := bytes.Repeat([]byte("x"), 10_000)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped mismatch")
	}
}

func TestAdminOps(t *testing.T) {
	c, _ := simClient(t, Options{})
	if err := c.Mkdir("/proj"); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/proj/file", O_WRONLY|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("12345"), 0)
	f.Close()

	st, err := c.Stat("/proj/file")
	if err != nil || st.Size != 5 || st.IsDir {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	ls, err := c.List("/proj")
	if err != nil || len(ls) != 1 || ls[0].Path != "/proj/file" {
		t.Fatalf("list = %+v, %v", ls, err)
	}
	if err := c.Remove("/proj/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/proj/file"); err == nil {
		t.Fatal("stat after remove")
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	c, srv := simClient(t, Options{})
	f, err := c.Open("/est", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src := datagen.ESTText(300_000, 3)
	stats, err := WriteCompressed(f, 0, src, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() < 1.5 {
		t.Fatalf("ratio = %.2f", stats.Ratio())
	}
	// The server holds fewer bytes than the application wrote.
	if got := srv.Stats().BytesWritten; got >= int64(len(src)) {
		t.Fatalf("server stored %d bytes for %d input", got, len(src))
	}
	back, err := ReadCompressed(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("compressed round trip mismatch")
	}

	// Sync variant behaves identically on the data path.
	f2, _ := c.Open("/est2", O_RDWR|O_CREATE)
	defer f2.Close()
	if _, err := WriteCompressedSync(f2, 0, src[:100_000], 32<<10); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadCompressed(f2, 0)
	if err != nil || !bytes.Equal(back2, src[:100_000]) {
		t.Fatalf("sync compressed round trip: %v", err)
	}
}

func TestOverlapThroughPublicAPI(t *testing.T) {
	srv := srb.NewMemServer(storage.DeviceSpec{WriteRate: 10 * netsim.MBps})
	c, err := NewClient(func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		return cEnd, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/overlap", O_WRONLY|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	req := f.IWriteAt(make([]byte, 1<<20), 0) // ~100 ms of I/O
	time.Sleep(100 * time.Millisecond)        // 100 ms of compute
	if _, err := Wait(req); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 170*time.Millisecond {
		t.Fatalf("no overlap through public API: %v", el)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(nil, Options{}); err == nil {
		t.Fatal("nil dial accepted")
	}
}

func TestDialUnreachable(t *testing.T) {
	c, err := Dial("127.0.0.1:1", Options{}) // nothing listens on port 1
	if err != nil {
		return // Dial may fail immediately, also fine
	}
	if _, err := c.Open("/x", O_RDONLY); err == nil {
		t.Fatal("open against dead server succeeded")
	}
}
