module semplar

go 1.22
