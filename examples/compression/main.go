// Compression: the Section 7.3 experiment — nucleotide EST text written to
// the remote server either raw (blocking) or as LZO blocks whose
// compression is pipelined with transmission through the asynchronous
// engine. On a slow WAN the compressed pipeline nearly doubles effective
// write bandwidth.
//
//	go run ./examples/compression [-mb 2] [-scale 4]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"semplar"
	"semplar/internal/cluster"
	"semplar/internal/stats"
	"semplar/internal/workloads/datagen"
)

func main() {
	mb := flag.Int("mb", 2, "megabytes of EST text to write")
	scale := flag.Float64("scale", 4, "testbed acceleration")
	flag.Parse()

	src := datagen.ESTText(*mb<<20, 11)
	fmt.Printf("input: %d KiB of synthetic human-EST FASTA text\n\n", len(src)>>10)

	spec := cluster.DAS2().Scaled(*scale)

	newClient := func() *semplar.Client {
		tb := cluster.New(spec, 1)
		client, err := semplar.NewClient(func() (net.Conn, error) {
			c, s := tb.Net.Dial(0)
			go tb.Server.ServeConn(s)
			return c, nil
		}, semplar.Options{User: "compress"})
		if err != nil {
			log.Fatal(err)
		}
		return client
	}

	// Baseline: blocking write of the raw bytes.
	f, err := newClient().Open("/est.raw", semplar.O_WRONLY|semplar.O_CREATE)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := f.WriteAt(src, 0); err != nil {
		log.Fatal(err)
	}
	rawTime := time.Since(start)
	mustClose(f)
	fmt.Printf("raw synchronous write:      %7.3fs  (%6.2f Mb/s effective)\n",
		rawTime.Seconds(), stats.MbPerSec(int64(len(src)), rawTime))

	// On-the-fly LZO, compression pipelined with the transfer.
	f2, err := newClient().Open("/est.lzo", semplar.O_RDWR|semplar.O_CREATE)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	cstats, err := semplar.WriteCompressed(f2, 0, src, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	lzoTime := time.Since(start)
	fmt.Printf("async compressed pipeline:  %7.3fs  (%6.2f Mb/s effective, ratio %.2fx, %d blocks)\n",
		lzoTime.Seconds(), stats.MbPerSec(int64(len(src)), lzoTime),
		cstats.Ratio(), cstats.Blocks)
	fmt.Printf("effective bandwidth gain:   %+.0f%%\n\n",
		(rawTime.Seconds()/lzoTime.Seconds()-1)*100)

	// Round-trip check through the decompressing reader.
	back, err := semplar.ReadCompressed(f2, 0)
	if err != nil {
		log.Fatal(err)
	}
	mustClose(f2)
	if !bytes.Equal(back, src) {
		log.Fatal("decompressed read-back differs from the input")
	}
	fmt.Println("read-back verified: decompressed bytes identical to the input")
}

// mustClose closes f, failing the run on error — Close is where buffered
// asynchronous writes are confirmed, so a dropped error hides data loss.
func mustClose(f *semplar.File) {
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
