// Laplace: the paper's 2D Laplace solver benchmark on a simulated DAS-2
// testbed — a fixed grid solved by Jacobi iteration across MPI ranks,
// checkpointing to the remote SRB server. Compares the synchronous
// baseline, the asynchronous overlap version and the double-connection
// variant (Figure 7).
//
//	go run ./examples/laplace [-np 4] [-n 240] [-scale 20]
package main

import (
	"flag"
	"fmt"
	"log"

	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/workloads/laplace"
)

func main() {
	np := flag.Int("np", 4, "number of MPI ranks")
	n := flag.Int("n", 240, "grid dimension (paper: 3001)")
	scale := flag.Float64("scale", 20, "testbed acceleration")
	flag.Parse()

	spec := cluster.DAS2().Scaled(*scale)
	fmt.Printf("2D Laplace solver, %dx%d grid, %d ranks, %s testbed\n\n",
		*n, *n, *np, spec.Name)

	var syncExec float64
	for _, mode := range []laplace.Mode{laplace.Sync, laplace.Async, laplace.TwoStreams} {
		tb := cluster.New(spec, *np)
		cfg := laplace.Config{
			N: *n, Iters: 9, CheckpointEvery: 3,
			Mode: mode, Path: "srb:/laplace.ckpt",
		}
		var res laplace.Result
		err := mpi.RunOn(*np, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			r, err := laplace.Run(c, reg, cfg)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			log.Fatalf("%v run: %v", mode, err)
		}
		secs := res.Exec.Seconds()
		line := fmt.Sprintf("%-16s exec %6.3fs  (compute %6.3fs, blocking I/O %6.3fs, %d checkpoints, %d KiB)",
			mode, secs, res.Phases.Compute.Seconds(), res.Phases.IO.Seconds(),
			res.Checkpoints, res.Bytes>>10)
		if mode == laplace.Sync {
			syncExec = secs
		} else if syncExec > 0 {
			line += fmt.Sprintf("  -> %.0f%% vs sync", (1-secs/syncExec)*100)
		}
		fmt.Println(line)
	}
	fmt.Println("\nThe checkpoint on the server is bit-identical across all variants.")
}
