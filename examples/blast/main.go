// Blast: the MPI-BLAST benchmark of Figure 5/6 — a master rank hands
// nucleotide queries to workers, each worker searches a shared synthetic
// EST database (k-mer seed and extend) and appends a report per query to
// its own remote file. The asynchronous version overlaps the write of
// query k with the search of query k+1.
//
//	go run ./examples/blast [-np 4] [-queries 16] [-scale 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/workloads/blast"
	"semplar/internal/workloads/datagen"
)

func main() {
	np := flag.Int("np", 4, "ranks (1 master + workers)")
	queries := flag.Int("queries", 16, "query sequences")
	scale := flag.Float64("scale", 20, "testbed acceleration")
	flag.Parse()

	// Synthetic GenBank human-EST stand-in: the paper used 687,158
	// sequences (256 MB) and a 2425-sequence query file.
	db := datagen.NewDatabase(60, 250, 350, 42)
	qs := db.Queries(*queries, 7)
	index := blast.NewIndex(db, 11)
	fmt.Printf("database: %d sequences, %d KiB; %d queries; %d ranks\n\n",
		db.Len(), db.TotalBytes()>>10, len(qs), *np)

	spec := cluster.OSC().Scaled(*scale)
	var syncExec time.Duration
	for _, mode := range []blast.Mode{blast.Sync, blast.Async} {
		tb := cluster.New(spec, *np)
		cfg := blast.Config{
			DB: db, Index: index, Queries: qs,
			ReportSize: 32 << 10,
			ComputePad: 20 * time.Millisecond,
			Mode:       mode, PathPrefix: "srb:/blast-",
		}
		var res blast.Result
		err := mpi.RunOn(*np, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			r, err := blast.Run(c, reg, cfg)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			log.Fatalf("%v run: %v", mode, err)
		}
		line := fmt.Sprintf("%-6s exec %6.3fs  (%d queries, %d alignments, %d KiB of reports)",
			mode, res.Exec.Seconds(), res.Queries, res.Hits, res.Bytes>>10)
		if mode == blast.Sync {
			syncExec = res.Exec
		} else {
			line += fmt.Sprintf("  -> %.0f%% vs sync",
				(1-res.Exec.Seconds()/syncExec.Seconds())*100)
		}
		fmt.Println(line)
	}
}
