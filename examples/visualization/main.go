// Visualization: the read-side workload the paper's introduction
// motivates — a tool that periodically reads large timestep frames from
// remote storage and renders them. The asynchronous primitives prefetch
// frame k+1 (MPI_File_iread_at) while frame k renders, hiding the WAN
// behind the computation.
//
//	go run ./examples/visualization [-np 2] [-frames 6] [-scale 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/workloads/vis"
)

func main() {
	np := flag.Int("np", 2, "MPI ranks")
	frames := flag.Int("frames", 6, "timestep frames")
	scale := flag.Float64("scale", 20, "testbed acceleration")
	flag.Parse()

	spec := cluster.DAS2().Scaled(*scale)
	cfg := vis.Config{
		Frames:     *frames,
		FrameBytes: 256 << 10,
		RenderPad:  30 * time.Millisecond,
		Path:       "srb:/sim/frames",
	}
	fmt.Printf("visualizing %d frames x %d ranks x %d KiB over the %s path\n\n",
		cfg.Frames, *np, cfg.FrameBytes>>10, spec.Name)

	var syncExec time.Duration
	for _, mode := range []vis.Mode{vis.Sync, vis.Prefetch} {
		tb := cluster.New(spec, *np)
		if err := tb.Server.MkdirAll("/sim"); err != nil {
			log.Fatal(err)
		}
		// Stage the dataset (the simulation's prior output).
		if err := vis.WriteDataset(tb.Registry(0, core.SRBFSConfig{}), cfg, *np); err != nil {
			log.Fatal(err)
		}
		c2 := cfg
		c2.Mode = mode
		var res vis.Result
		err := mpi.RunOn(*np, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			r, err := vis.Run(c, reg, c2)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			log.Fatalf("%v run: %v", mode, err)
		}
		line := fmt.Sprintf("%-9s exec %6.3fs  (render %6.3fs, blocked on reads %6.3fs, %d frames verified)",
			mode, res.Exec.Seconds(), res.Phases.Compute.Seconds(),
			res.Phases.IO.Seconds(), res.Frames)
		if mode == vis.Sync {
			syncExec = res.Exec
		} else {
			line += fmt.Sprintf("  -> %.0f%% vs sync",
				(1-res.Exec.Seconds()/syncExec.Seconds())*100)
		}
		fmt.Println(line)
	}
	fmt.Println("\nEvery frame's content is checksum-verified as it renders.")
}
