// Multistream: the split-TCP optimization of Section 7.2, shown both ways
// the paper describes —
//
//  1. the application-level trick: open the same file twice
//     (MPI_File_open called twice) and drive the two descriptors with
//     concurrent asynchronous writes, one I/O thread per connection;
//  2. the library-level version the paper proposes as future work: a
//     single open with Streams=2, striping handled inside SEMPLAR.
//
// On a window-limited WAN path both roughly double the throughput of a
// single TCP stream.
//
//	go run ./examples/multistream [-mb 4] [-scale 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"semplar"
	"semplar/internal/cluster"
	"semplar/internal/stats"
)

func main() {
	mb := flag.Int("mb", 4, "megabytes to transfer")
	scale := flag.Float64("scale", 20, "testbed acceleration")
	flag.Parse()

	spec := cluster.DAS2().Scaled(*scale)
	payload := make([]byte, *mb<<20)
	fmt.Printf("transferring %d MiB over the %s path (per-stream cap = window/RTT)\n\n",
		*mb, spec.Name)

	newClient := func(streams int) *semplar.Client {
		tb := cluster.New(spec, 1)
		client, err := semplar.NewClient(func() (net.Conn, error) {
			c, s := tb.Net.Dial(0)
			go tb.Server.ServeConn(s)
			return c, nil
		}, semplar.Options{User: "multistream", Streams: streams,
			StripeSize: len(payload) / 2})
		if err != nil {
			log.Fatal(err)
		}
		return client
	}

	// Baseline: one connection.
	f, err := newClient(1).Open("/one-stream", semplar.O_WRONLY|semplar.O_CREATE)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := f.WriteAt(payload, 0); err != nil {
		log.Fatal(err)
	}
	one := time.Since(start)
	mustClose(f)
	fmt.Printf("1 TCP stream:                   %7.3fs  (%6.2f Mb/s)\n",
		one.Seconds(), stats.MbPerSec(int64(len(payload)), one))

	// The paper's experiment: the same file opened twice, two
	// descriptors, asynchronous writes advancing on both connections.
	client := newClient(1)
	f1, err := client.Open("/double-open", semplar.O_RDWR|semplar.O_CREATE)
	if err != nil {
		log.Fatal(err)
	}
	f2, err := client.Open("/double-open", semplar.O_RDWR|semplar.O_CREATE)
	if err != nil {
		log.Fatal(err)
	}
	half := len(payload) / 2
	start = time.Now()
	r1 := f1.IWriteAt(payload[:half], 0)
	r2 := f2.IWriteAt(payload[half:], int64(half))
	if _, err := semplar.WaitAll([]*semplar.Request{r1, r2}); err != nil {
		log.Fatal(err)
	}
	double := time.Since(start)
	mustClose(f1)
	mustClose(f2)
	fmt.Printf("2 descriptors + async iwrites:  %7.3fs  (%6.2f Mb/s, %+.0f%%)\n",
		double.Seconds(), stats.MbPerSec(int64(len(payload)), double),
		(one.Seconds()/double.Seconds()-1)*100)

	// Library-level striping: one open, two streams.
	f3, err := newClient(2).Open("/striped", semplar.O_WRONLY|semplar.O_CREATE)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := f3.WriteAt(payload, 0); err != nil {
		log.Fatal(err)
	}
	striped := time.Since(start)
	mustClose(f3)
	fmt.Printf("library-level 2-stream stripe:  %7.3fs  (%6.2f Mb/s, %+.0f%%)\n",
		striped.Seconds(), stats.MbPerSec(int64(len(payload)), striped),
		(one.Seconds()/striped.Seconds()-1)*100)
}

// mustClose closes f, failing the run on error — Close is where buffered
// asynchronous writes are confirmed, so a dropped error hides data loss.
func mustClose(f *semplar.File) {
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
