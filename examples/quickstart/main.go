// Quickstart: bring up an in-process SRB server, connect a SEMPLAR client
// and use the asynchronous primitives to overlap a remote write with
// computation — the paper's core mechanism in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"semplar"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

func main() {
	// An SRB server whose storage device commits at 20 MiB/s, so remote
	// writes take long enough to be worth hiding.
	server := srb.NewMemServer(storage.DeviceSpec{
		Name:      "array",
		WriteRate: 20 * netsim.MBps,
	})

	client, err := semplar.NewClient(func() (net.Conn, error) {
		c, s := netsim.Pipe(2*time.Millisecond, nil, nil)
		go server.ServeConn(s)
		return c, nil
	}, semplar.Options{User: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}

	f, err := client.Open("/quickstart.dat", semplar.O_RDWR|semplar.O_CREATE)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	payload := make([]byte, 2<<20) // ~100 ms of remote I/O
	for i := range payload {
		payload[i] = byte(i)
	}

	// Blocking write: the caller stalls for the whole transfer.
	start := time.Now()
	if _, err := f.WriteAt(payload, 0); err != nil {
		log.Fatal(err)
	}
	syncTime := time.Since(start)

	// Asynchronous write: MPI_File_iwrite semantics. The request is
	// queued on the file's I/O thread and the caller computes while the
	// bytes move.
	start = time.Now()
	req := f.IWriteAt(payload, 0)
	compute(90 * time.Millisecond)
	n, err := semplar.Wait(req)
	if err != nil {
		log.Fatal(err)
	}
	asyncTime := time.Since(start)

	fmt.Printf("wrote %d bytes\n", n)
	fmt.Printf("  blocking write:            %v\n", syncTime)
	fmt.Printf("  async write + computation: %v (compute hidden inside the transfer)\n", asyncTime)

	// Read it back and check.
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		log.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			log.Fatalf("byte %d corrupted", i)
		}
	}
	st, err := client.Stat("/quickstart.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified read-back; server reports %d bytes at %s\n", st.Size, st.Path)
}

// compute stands in for the application's computation phase.
func compute(d time.Duration) { time.Sleep(d) }
