// Benchmarks regenerating the paper's evaluation. One benchmark per figure
// (the same runners cmd/semplar-bench drives) plus ablations for the
// design choices DESIGN.md calls out. Headline numbers are attached as
// custom benchmark metrics so `go test -bench` output records the
// paper-vs-measured comparison.
package semplar_test

import (
	"net"
	"testing"
	"time"

	"semplar"
	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/harness"
	"semplar/internal/mpi"
	"semplar/internal/mpiio"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
	"semplar/internal/workloads/vis"
)

func benchOpts() harness.Options {
	return harness.Options{Scale: 20, Quick: true}
}

// BenchmarkFig6_BLAST regenerates Figure 6: MPI-BLAST execution time,
// synchronous vs asynchronous I/O on the three testbeds.
// Paper: async improves average execution time 20-26%; 92-97% of the
// maximum expected speedup is achieved.
func BenchmarkFig6_BLAST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Metric("DAS-2", "async improvement %"), "das2-improve-%")
		b.ReportMetric(fig.Metric("OSC", "async improvement %"), "osc-improve-%")
		b.ReportMetric(fig.Metric("TG-NCSA", "async improvement %"), "tg-improve-%")
		b.ReportMetric(fig.Metric("DAS-2", "overlap efficiency %"), "das2-overlap-%")
	}
}

// BenchmarkFig7_Laplace regenerates Figure 7: the 2D Laplace solver.
// Paper: async improves 6-9%; two TCP streams cut execution 38% (DAS-2)
// and 23% (TG-NCSA), with the OSC NAT limiting the gain there.
func BenchmarkFig7_Laplace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Metric("DAS-2", "async improvement %"), "das2-async-%")
		b.ReportMetric(fig.Metric("DAS-2", "2stream improvement %"), "das2-2stream-%")
		b.ReportMetric(fig.Metric("TG-NCSA", "2stream improvement %"), "tg-2stream-%")
		b.ReportMetric(fig.Metric("OSC", "2stream improvement %"), "osc-2stream-%")
	}
}

// BenchmarkFig8_Perf regenerates Figure 8: ROMIO perf aggregate bandwidth
// with one vs two TCP streams per node.
// Paper: DAS-2 read +96% / write +43%; TG-NCSA read +75% / write +24%.
func BenchmarkFig8_Perf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Metric("DAS-2", "read gain %"), "das2-read-gain-%")
		b.ReportMetric(fig.Metric("DAS-2", "write gain %"), "das2-write-gain-%")
		b.ReportMetric(fig.Metric("TG-NCSA", "read gain %"), "tg-read-gain-%")
		b.ReportMetric(fig.Metric("TG-NCSA", "write gain %"), "tg-write-gain-%")
	}
}

// BenchmarkFig9_Compression regenerates Figure 9: on-the-fly LZO
// compression pipelined with the transfer vs raw synchronous writes.
// Paper: average aggregate write bandwidth +83% (DAS-2), +84% (TG-NCSA).
func BenchmarkFig9_Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Metric("DAS-2", "compression gain %"), "das2-gain-%")
		b.ReportMetric(fig.Metric("TG-NCSA", "compression gain %"), "tg-gain-%")
	}
}

// BenchmarkAblation_BusContention regenerates the Section 7.1
// counter-intuitive result: under node-bus contention, overlap plus the
// double connection is no better than overlap alone, and moving the wait
// from position 1 to position 2 restores the double-connection win.
func BenchmarkAblation_BusContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunBusContention(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Metric("DAS-2", "2conn wait@1 vs 1conn %"), "2conn-vs-1conn-%")
		b.ReportMetric(fig.Metric("DAS-2", "2conn wait@2 vs wait@1 %"), "wait2-recovery-%")
		b.ReportMetric(fig.Metric("DAS-2", "bus cost on 2conn %"), "bus-cost-%")
	}
}

// BenchmarkAblation_WindowSweep isolates the mechanism behind Figure 8:
// the two-stream gain exists because a single stream is window-limited
// (rate = window/RTT) below the path capacity. With the window raised to
// the bandwidth-delay product the gain collapses.
func BenchmarkAblation_WindowSweep(b *testing.B) {
	run := func(b *testing.B, window int) float64 {
		prof := netsim.DAS2().Scaled(20)
		prof.Window = window
		spec := cluster.Spec{Name: "DAS-2", Profile: prof}
		gain := 0.0
		for i := 0; i < b.N; i++ {
			var times [2]time.Duration
			for k := 1; k <= 2; k++ {
				tb := cluster.New(spec, 1)
				client, err := semplar.NewClient(func() (net.Conn, error) {
					c, s := tb.Net.Dial(0)
					go tb.Server.ServeConn(s)
					return c, nil
				}, semplar.Options{Streams: k, StripeSize: 3 << 20})
				if err != nil {
					b.Fatal(err)
				}
				f, err := client.Open("/w", semplar.O_WRONLY|semplar.O_CREATE)
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				if _, err := f.WriteAt(make([]byte, 6<<20), 0); err != nil {
					b.Fatal(err)
				}
				times[k-1] = time.Since(start)
				f.Close()
			}
			gain = (times[0].Seconds()/times[1].Seconds() - 1) * 100
		}
		return gain
	}
	b.Run("window=64KiB", func(b *testing.B) {
		b.ReportMetric(run(b, 64<<10), "2stream-gain-%")
	})
	b.Run("window=BDP", func(b *testing.B) {
		// At scale 20 the DAS-2 BDP is ~LinkRate*RTT; a 4 MiB window
		// leaves the stream link-limited, not window-limited.
		b.ReportMetric(run(b, 4<<20), "2stream-gain-%")
	})
}

// BenchmarkAblation_IOThreads compares the single-I/O-thread configuration
// (Section 4.3's default) against one thread per connection when driving
// two handles of the same file asynchronously: with a single thread the
// queue serializes the two transfers and the split-TCP benefit is lost.
func BenchmarkAblation_IOThreads(b *testing.B) {
	run := func(b *testing.B, threads int) {
		prof := netsim.DAS2().Scaled(20)
		spec := cluster.Spec{Name: "DAS-2", Profile: prof}
		for i := 0; i < b.N; i++ {
			tb := cluster.New(spec, 1)
			client, err := semplar.NewClient(func() (net.Conn, error) {
				c, s := tb.Net.Dial(0)
				go tb.Server.ServeConn(s)
				return c, nil
			}, semplar.Options{IOThreads: threads})
			if err != nil {
				b.Fatal(err)
			}
			f1, err := client.Open("/dual", semplar.O_RDWR|semplar.O_CREATE)
			if err != nil {
				b.Fatal(err)
			}
			// Both requests go through f1's engine; the second handle
			// provides the second connection.
			f2, err := client.Open("/dual", semplar.O_RDWR|semplar.O_CREATE)
			if err != nil {
				b.Fatal(err)
			}
			const half = 1 << 20
			buf := make([]byte, half)
			r1 := f1.IWriteAt(buf, 0)
			var r2 *semplar.Request
			if threads > 1 {
				r2 = f1.Engine().Submit(func() (int, error) {
					return f2.WriteAt(buf, half)
				})
			} else {
				r2 = f1.IWriteAt(buf, half)
			}
			if _, err := semplar.WaitAll([]*semplar.Request{r1, r2}); err != nil {
				b.Fatal(err)
			}
			f1.Close()
			f2.Close()
		}
		b.SetBytes(2 << 20)
	}
	b.Run("threads=1", func(b *testing.B) { run(b, 1) })
	b.Run("threads=2", func(b *testing.B) { run(b, 2) })
}

// BenchmarkSRBProtocol measures raw request/response throughput of the SRB
// wire protocol over an unshaped pipe (the substrate's own overhead).
func BenchmarkSRBProtocol(b *testing.B) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(sEnd)
	conn, err := srb.NewConn(cEnd, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	f, err := conn.Open("/bench", srb.O_RDWR|srb.O_CREATE, "")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncEngineOverhead measures the per-request cost of the
// asynchronous queue itself (submit + dispatch + wait on a no-op).
func BenchmarkAsyncEngineOverhead(b *testing.B) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	client, err := semplar.NewClient(func() (net.Conn, error) {
		c, s := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(s)
		return c, nil
	}, semplar.Options{})
	if err != nil {
		b.Fatal(err)
	}
	f, err := client.Open("/noop", semplar.O_RDWR|semplar.O_CREATE)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := f.Engine().Submit(func() (int, error) { return 0, nil })
		if _, err := req.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_CollectiveVsIndependent quantifies two-phase
// collective I/O (the paper's future work, implemented here) against
// independent writes for the interleaved-small-record pattern: each rank
// owns record i*np+r of every group. Independent writes pay a WAN round
// trip per record; the collective shuffles over the (fast) interconnect
// and writes a few large extents.
func BenchmarkExtension_CollectiveVsIndependent(b *testing.B) {
	const np = 4
	const rec = 4 << 10
	const groups = 24
	spec := cluster.DAS2().Scaled(20)

	run := func(b *testing.B, collective bool) {
		for i := 0; i < b.N; i++ {
			tb := cluster.New(spec, np)
			err := mpi.RunOn(np, tb.Fabric(), func(c *mpi.Comm) error {
				reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
				f, err := mpiio.Open(c, reg, "srb:/records", adio.O_RDWR|adio.O_CREATE, nil)
				if err != nil {
					return err
				}
				defer f.Close()
				data := make([]byte, rec)
				if collective {
					// One collective call carrying every record
					// this rank owns (derived-datatype style).
					exts := make([]mpiio.FileExtent, groups)
					for g := 0; g < groups; g++ {
						exts[g] = mpiio.FileExtent{
							Off:  int64((g*np + c.Rank()) * rec),
							Data: data,
						}
					}
					_, err := f.WriteExtentsAll(c, exts)
					return err
				}
				// Independent: one WAN round trip per record.
				for g := 0; g < groups; g++ {
					off := int64((g*np + c.Rank()) * rec)
					if _, err := f.WriteAt(data, off); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(np * groups * rec))
	}
	b.Run("independent", func(b *testing.B) { run(b, false) })
	b.Run("collective", func(b *testing.B) { run(b, true) })
}

// BenchmarkExtension_VisPrefetch measures the double-buffered read loop of
// the visualization workload against its synchronous baseline.
func BenchmarkExtension_VisPrefetch(b *testing.B) {
	spec := cluster.DAS2().Scaled(20)
	const np = 2
	cfg := vis.Config{
		Frames:     6,
		FrameBytes: 256 << 10,
		RenderPad:  25 * time.Millisecond,
		Path:       "srb:/frames",
	}
	run := func(b *testing.B, mode vis.Mode) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tb := cluster.New(spec, np)
			if err := vis.WriteDataset(tb.Registry(0, core.SRBFSConfig{}), cfg, np); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			c2 := cfg
			c2.Mode = mode
			err := mpi.RunOn(np, tb.Fabric(), func(c *mpi.Comm) error {
				reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
				_, err := vis.Run(c, reg, c2)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(np) * int64(cfg.Frames) * int64(cfg.FrameBytes))
	}
	b.Run("sync", func(b *testing.B) { run(b, vis.Sync) })
	b.Run("prefetch", func(b *testing.B) { run(b, vis.Prefetch) })
}

// BenchmarkExtension_RedundantRead measures first-stream-wins reads under
// latency jitter against a single-stream baseline (Section 4.1's
// redundancy idea).
func BenchmarkExtension_RedundantRead(b *testing.B) {
	prof := netsim.DAS2().Scaled(50)
	prof.LatencyJitter = prof.OneWay * 12
	spec := cluster.Spec{Name: "DAS-2+jitter", Profile: prof}

	tb := cluster.New(spec, 1)
	client, err := semplar.NewClient(func() (net.Conn, error) {
		c, s := tb.Net.Dial(0)
		go tb.Server.ServeConn(s)
		return c, nil
	}, semplar.Options{Streams: 2})
	if err != nil {
		b.Fatal(err)
	}
	f, err := client.Open("/jittered", semplar.O_RDWR|semplar.O_CREATE)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, 16<<10), 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 16<<10)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.ReadAt(buf, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(16 << 10)
	})
	b.Run("redundant", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.ReadAtRedundant(buf, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(16 << 10)
	})
}
