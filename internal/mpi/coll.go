package mpi

import "fmt"

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (op Op) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", op))
	}
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() {
	w := c.world
	w.barMu.Lock()
	defer w.barMu.Unlock()
	if w.aborted.Load() {
		panic(ErrAborted)
	}
	gen := w.barGen
	w.barCnt++
	if w.barCnt == w.size {
		w.barCnt = 0
		w.barGen++
		w.barC.Broadcast()
		return
	}
	for gen == w.barGen {
		w.barC.Wait()
		if w.aborted.Load() {
			panic(ErrAborted)
		}
	}
}

// nextCollTag returns a fresh collective tag. All ranks must invoke
// collectives in the same order (the standard MPI requirement), which keeps
// the per-rank counters aligned.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return c.collSeq
}

func (c *Comm) collSend(dst, tag int, data []byte) {
	c.world.checkRank(dst)
	c.world.fabric.Transfer(c.rank, dst, len(data))
	buf := make([]byte, len(data))
	copy(buf, data)
	c.world.boxes[dst].put(message{ctx: ctxColl, src: c.rank, tag: tag, data: buf})
}

func (c *Comm) collRecv(src, tag int) []byte {
	m := c.world.boxes[c.rank].take(ctxColl, src, tag)
	return m.data
}

// Bcast distributes root's data to every rank and returns each rank's copy.
// Non-root ranks may pass nil.
func (c *Comm) Bcast(root int, data []byte) []byte {
	c.world.checkRank(root)
	tag := c.nextCollTag()
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.collSend(r, tag, data)
			}
		}
		out := make([]byte, len(data))
		copy(out, data)
		return out
	}
	return c.collRecv(root, tag)
}

// Reduce combines each rank's vector elementwise with op; the result is
// returned at root (nil elsewhere). All vectors must have equal length.
func (c *Comm) Reduce(root int, vals []float64, op Op) []float64 {
	c.world.checkRank(root)
	tag := c.nextCollTag()
	if c.rank != root {
		c.collSend(root, tag, encodeFloat64s(vals))
		return nil
	}
	acc := append([]float64(nil), vals...)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		contrib := decodeFloat64s(c.collRecv(r, tag))
		if len(contrib) != len(acc) {
			panic(fmt.Sprintf("mpi: Reduce length mismatch: %d vs %d", len(contrib), len(acc)))
		}
		for i := range acc {
			acc[i] = op.apply(acc[i], contrib[i])
		}
	}
	return acc
}

// Allreduce combines all ranks' vectors and returns the result everywhere.
func (c *Comm) Allreduce(vals []float64, op Op) []float64 {
	res := c.Reduce(0, vals, op)
	var payload []byte
	if c.rank == 0 {
		payload = encodeFloat64s(res)
	}
	return decodeFloat64s(c.Bcast(0, payload))
}

// Gather collects each rank's data at root, indexed by rank (nil
// elsewhere).
func (c *Comm) Gather(root int, data []byte) [][]byte {
	c.world.checkRank(root)
	tag := c.nextCollTag()
	if c.rank != root {
		c.collSend(root, tag, data)
		return nil
	}
	out := make([][]byte, c.world.size)
	own := make([]byte, len(data))
	copy(own, data)
	out[root] = own
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		out[r] = c.collRecv(r, tag)
	}
	return out
}

// Scatter distributes parts[i] from root to rank i and returns each rank's
// part. Non-root ranks pass nil.
func (c *Comm) Scatter(root int, parts [][]byte) []byte {
	c.world.checkRank(root)
	tag := c.nextCollTag()
	if c.rank == root {
		if len(parts) != c.world.size {
			panic(fmt.Sprintf("mpi: Scatter needs %d parts, got %d", c.world.size, len(parts)))
		}
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.collSend(r, tag, parts[r])
			}
		}
		own := make([]byte, len(parts[root]))
		copy(own, parts[root])
		return own
	}
	return c.collRecv(root, tag)
}

// AllreduceFloat64 is a scalar convenience over Allreduce.
func (c *Comm) AllreduceFloat64(v float64, op Op) float64 {
	return c.Allreduce([]float64{v}, op)[0]
}
