package mpi

import (
	"fmt"
	"testing"
	"time"

	"semplar/internal/netsim"
)

func TestISendIRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.ISend(1, 5, []byte("nonblocking"))
			req.Wait()
			if !req.Done() {
				return fmt.Errorf("Done false after Wait")
			}
			return nil
		}
		req := c.IRecv(0, 5)
		data, src, tag := req.Wait()
		if string(data) != "nonblocking" || src != 0 || tag != 5 {
			return fmt.Errorf("got %q src=%d tag=%d", data, src, tag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestISendBufferReuse(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("original")
			req := c.ISend(1, 1, buf)
			copy(buf, "CLOBBER!") // legal immediately: ISend copies
			req.Wait()
			return nil
		}
		data, _, _ := c.Recv(0, 1)
		if string(data) != "original" {
			return fmt.Errorf("isend aliased buffer: %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIRecvPostedBeforeSend(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.IRecv(1, 9)
			if req.Done() {
				return fmt.Errorf("IRecv done before any send")
			}
			c.Barrier()
			data, _, _ := req.Wait()
			if string(data) != "late" {
				return fmt.Errorf("got %q", data)
			}
			return nil
		}
		c.Barrier()
		c.Send(0, 9, []byte("late"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestISendOverlapsFabricDelay(t *testing.T) {
	// With a slow fabric, ISend returns immediately and overlaps the
	// transfer with local work.
	prof := netsim.Loopback()
	prof.ICRate = 4 * netsim.MBps // 1 MiB -> ~250 ms
	net0 := netsim.NewNetwork(prof, 2)
	err := RunOn(2, net0.Interconnect(), func(c *Comm) error {
		if c.Rank() == 0 {
			start := time.Now()
			req := c.ISend(1, 1, make([]byte, 1<<20))
			if el := time.Since(start); el > 50*time.Millisecond {
				return fmt.Errorf("ISend blocked for %v", el)
			}
			time.Sleep(200 * time.Millisecond) // overlapped work
			req.Wait()
			if total := time.Since(start); total > 400*time.Millisecond {
				return fmt.Errorf("no overlap: %v", total)
			}
			return nil
		}
		c.Recv(0, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingManyInFlight(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const n = 50
		if c.Rank() == 0 {
			var reqs []*SendRequest
			for i := 0; i < n; i++ {
				reqs = append(reqs, c.ISend(1, i, []byte{byte(i)}))
			}
			WaitAllSends(reqs)
			return nil
		}
		// Receive in reverse tag order: all must match correctly.
		for i := n - 1; i >= 0; i-- {
			data, _, _ := c.IRecv(0, i).Wait()
			if data[0] != byte(i) {
				return fmt.Errorf("tag %d got %d", i, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingAbort(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("deliberate failure")
		}
		// These IRecvs never match; Wait must panic with ErrAborted
		// (recovered by Run) instead of hanging.
		c.IRecv(0, 99).Wait()
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}
