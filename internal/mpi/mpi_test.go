package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"semplar/internal/netsim"
)

func TestRunBasics(t *testing.T) {
	var count atomic.Int64
	err := Run(5, func(c *Comm) error {
		if c.Size() != 5 {
			t.Errorf("size = %d", c.Size())
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 5 {
		t.Fatalf("ran %d ranks", count.Load())
	}
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("ping"))
			data, src, tag := c.Recv(1, 8)
			if string(data) != "pong" || src != 1 || tag != 8 {
				return fmt.Errorf("got %q src=%d tag=%d", data, src, tag)
			}
		} else {
			data, _, _ := c.Recv(0, 7)
			if string(data) != "ping" {
				return fmt.Errorf("got %q", data)
			}
			c.Send(0, 8, []byte("pong"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySourceAndTagMatching(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				_, src, _ := c.Recv(Any, 5)
				seen[src] = true
			}
			if len(seen) != 3 {
				return fmt.Errorf("sources %v", seen)
			}
			// Tag-selective receive: tag 9 must arrive even though
			// sent before a pending tag-5 probe would see it.
			data, _, _ := c.Recv(Any, 9)
			if string(data) != "tagged" {
				return fmt.Errorf("tag recv got %q", data)
			}
			return nil
		}
		if c.Rank() == 1 {
			c.Send(0, 9, []byte("tagged"))
		}
		c.Send(0, 5, []byte("hello"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSource(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.SendInt(1, 1, i)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			v, _ := c.RecvInt(0, 1)
			if v != i {
				return fmt.Errorf("got %d want %d", v, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		partner := 1 - c.Rank()
		got := c.SendRecv(partner, 3, []byte{byte(c.Rank())}, partner, 3)
		if got[0] != byte(partner) {
			return fmt.Errorf("rank %d got %d", c.Rank(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedMessages(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendFloat64s(1, 1, []float64{1.5, -2.25, math.Pi})
			c.SendString(1, 2, "text message")
			c.SendInt(1, 3, -42)
			return nil
		}
		vals := c.RecvFloat64s(0, 1)
		if len(vals) != 3 || vals[0] != 1.5 || vals[1] != -2.25 || vals[2] != math.Pi {
			return fmt.Errorf("floats = %v", vals)
		}
		s, _ := c.RecvString(0, 2)
		if s != "text message" {
			return fmt.Errorf("string = %q", s)
		}
		v, _ := c.RecvInt(0, 3)
		if v != -42 {
			return fmt.Errorf("int = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const ranks = 6
	var phase atomic.Int64
	err := Run(ranks, func(c *Comm) error {
		for iter := 0; iter < 20; iter++ {
			phase.Add(1)
			c.Barrier()
			// After the barrier every rank must have bumped phase.
			if got := phase.Load(); got < int64((iter+1)*ranks) {
				return fmt.Errorf("iter %d: phase %d", iter, got)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		var payload []byte
		if c.Rank() == 2 {
			payload = []byte("broadcast payload")
		}
		got := c.Bcast(2, payload)
		if string(got) != "broadcast payload" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		// Mutating the received copy must not affect other ranks.
		got[0] = 'X'
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 7
	err := Run(n, func(c *Comm) error {
		v := float64(c.Rank() + 1)
		sum := c.Reduce(0, []float64{v, -v}, OpSum)
		if c.Rank() == 0 {
			want := float64(n * (n + 1) / 2)
			if sum[0] != want || sum[1] != -want {
				return fmt.Errorf("reduce = %v", sum)
			}
		} else if sum != nil {
			return fmt.Errorf("non-root got %v", sum)
		}
		if got := c.AllreduceFloat64(v, OpMax); got != n {
			return fmt.Errorf("allreduce max = %v", got)
		}
		if got := c.AllreduceFloat64(v, OpMin); got != 1 {
			return fmt.Errorf("allreduce min = %v", got)
		}
		if got := c.AllreduceFloat64(2, OpProd); got != float64(int(1)<<n) {
			return fmt.Errorf("allreduce prod = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		parts := c.Gather(1, []byte{byte(c.Rank() * 10)})
		if c.Rank() == 1 {
			for r, p := range parts {
				if len(p) != 1 || p[0] != byte(r*10) {
					return fmt.Errorf("gather[%d] = %v", r, p)
				}
			}
		} else if parts != nil {
			return errors.New("non-root gather result")
		}

		var scatterParts [][]byte
		if c.Rank() == 0 {
			for r := 0; r < 4; r++ {
				scatterParts = append(scatterParts, bytes.Repeat([]byte{byte(r)}, r+1))
			}
		}
		mine := c.Scatter(0, scatterParts)
		if len(mine) != c.Rank()+1 || (len(mine) > 0 && mine[0] != byte(c.Rank())) {
			return fmt.Errorf("scatter rank %d = %v", c.Rank(), mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesInterleavedWithP2P(t *testing.T) {
	// Collective traffic must not be stolen by wildcard p2p receives.
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			got := c.Bcast(0, []byte("coll"))
			data, _, _ := c.Recv(Any, Any)
			if string(data) != "p2p" || string(got) != "coll" {
				return fmt.Errorf("mixed up: %q %q", got, data)
			}
			return nil
		}
		got := c.Bcast(0, nil)
		if string(got) != "coll" {
			return fmt.Errorf("bcast = %q", got)
		}
		if c.Rank() == 1 {
			c.Send(0, 1, []byte("p2p"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorAbortsWorld(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			return errors.New("rank 0 exploded")
		}
		// These ranks would deadlock waiting forever without abort.
		c.Recv(Any, Any)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 0 exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicAbortsWorld(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			panic("boom")
		}
		c.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestMasterWorkerPattern(t *testing.T) {
	// The MPI-BLAST structure: master hands out work, workers request it.
	const workers = 5
	const jobs = 23
	err := Run(workers+1, func(c *Comm) error {
		const (
			tagRequest = 1
			tagWork    = 2
			tagDone    = 3
		)
		if c.Rank() == 0 {
			next := 0
			doneWorkers := 0
			results := 0
			for doneWorkers < workers {
				_, src, tag := c.Recv(Any, Any)
				switch tag {
				case tagRequest:
					if next < jobs {
						c.SendInt(src, tagWork, next)
						next++
					} else {
						c.SendInt(src, tagWork, -1)
						doneWorkers++
					}
				case tagDone:
					results++
				}
			}
			if results != jobs {
				return fmt.Errorf("results = %d want %d", results, jobs)
			}
			return nil
		}
		for {
			c.Send(0, tagRequest, nil)
			job, _ := c.RecvInt(0, tagWork)
			if job < 0 {
				return nil
			}
			c.Send(0, tagDone, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFabricCharged(t *testing.T) {
	// With a slow fabric, a large message takes measurable time.
	prof := netsim.Loopback()
	prof.ICRate = 4 * netsim.MBps
	prof.ICLatency = 0
	net := netsim.NewNetwork(prof, 2)
	start := time.Now()
	err := RunOn(2, net.Interconnect(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 1<<20)) // 1 MiB at 4 MiB/s ~ 250 ms
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 200*time.Millisecond {
		t.Fatalf("fabric not charged: took %v", el)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("original")
			c.Send(1, 1, buf)
			copy(buf, "CLOBBER!")
			c.Barrier()
			return nil
		}
		c.Barrier()
		data, _, _ := c.Recv(0, 1)
		if string(data) != "original" {
			return fmt.Errorf("send aliased caller buffer: %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
