package mpi

// Nonblocking point-to-point (MPI_Isend / MPI_Irecv). As with the file
// requests, the returned handles are completed by background goroutines
// and reclaimed with Wait.

// SendRequest tracks an MPI_Isend.
type SendRequest struct {
	done    chan struct{}
	aborted bool
}

// Wait blocks until the send has been delivered. It panics with
// ErrAborted if the world aborted while the send was in flight, matching
// the blocking calls' behavior.
func (r *SendRequest) Wait() {
	<-r.done
	if r.aborted {
		panic(ErrAborted)
	}
}

// Done reports completion without blocking.
func (r *SendRequest) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// ISend starts a nonblocking send. The data is copied immediately, so the
// caller may reuse the buffer at once.
func (c *Comm) ISend(dst, tag int, data []byte) *SendRequest {
	c.world.checkRank(dst)
	buf := make([]byte, len(data))
	copy(buf, data)
	req := &SendRequest{done: make(chan struct{})}
	go func() {
		defer close(req.done)
		defer func() {
			if p := recover(); p != nil {
				if p == ErrAborted {
					req.aborted = true
					return
				}
				panic(p)
			}
		}()
		c.world.fabric.Transfer(c.rank, dst, len(buf))
		c.world.boxes[dst].put(message{ctx: ctxP2P, src: c.rank, tag: tag, data: buf})
	}()
	return req
}

// RecvRequest tracks an MPI_Irecv.
type RecvRequest struct {
	done    chan struct{}
	data    []byte
	src     int
	tag     int
	aborted bool
}

// Wait blocks until the receive matches and returns the payload with its
// actual source and tag. Panics with ErrAborted on world abort.
func (r *RecvRequest) Wait() (data []byte, src, tag int) {
	<-r.done
	if r.aborted {
		panic(ErrAborted)
	}
	return r.data, r.src, r.tag
}

// Done reports completion without blocking.
func (r *RecvRequest) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// IRecv starts a nonblocking receive matching src and tag (Any allowed).
func (c *Comm) IRecv(src, tag int) *RecvRequest {
	if src != Any {
		c.world.checkRank(src)
	}
	req := &RecvRequest{done: make(chan struct{})}
	go func() {
		defer close(req.done)
		defer func() {
			if p := recover(); p != nil {
				if p == ErrAborted {
					req.aborted = true
					return
				}
				panic(p)
			}
		}()
		m := c.world.boxes[c.rank].take(ctxP2P, src, tag)
		req.data, req.src, req.tag = m.data, m.src, m.tag
	}()
	return req
}

// WaitAllSends reclaims a batch of send requests.
func WaitAllSends(reqs []*SendRequest) {
	for _, r := range reqs {
		r.Wait()
	}
}
