// Package mpi is a small in-process message-passing runtime standing in
// for mpich-1.2.6: ranks are goroutines, messages are matched on
// (source, tag) in FIFO order, and the usual collectives are provided.
// Interconnect cost is charged through a netsim.Fabric, so MPI traffic can
// contend with remote I/O on the simulated node bus exactly as in the
// paper's Section 7.1 experiment.
package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"semplar/internal/netsim"
)

// Any matches any source rank or any tag in Recv.
const Any = -1

// ErrAborted is the panic value ranks observe when the world aborts
// because another rank failed.
var ErrAborted = errors.New("mpi: world aborted")

// World holds the shared state of one MPI job.
type World struct {
	size    int
	fabric  netsim.Fabric
	boxes   []*mailbox
	aborted atomic.Bool

	barMu  sync.Mutex
	barC   *sync.Cond
	barCnt int
	barGen int
}

// Comm is one rank's communicator handle. It is only valid inside the rank
// function it was passed to.
type Comm struct {
	world   *World
	rank    int
	collSeq int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.size }

// Run executes fn on size ranks with a zero-cost interconnect and blocks
// until all complete. Errors and panics from any rank abort the world and
// are collected into the returned error.
func Run(size int, fn func(*Comm) error) error {
	return RunOn(size, netsim.NullFabric{}, fn)
}

// RunOn is Run with an explicit interconnect fabric.
func RunOn(size int, fabric netsim.Fabric, fn func(*Comm) error) error {
	if size < 1 {
		return fmt.Errorf("mpi: invalid world size %d", size)
	}
	w := &World{size: size, fabric: fabric}
	w.barC = sync.NewCond(&w.barMu)
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}

	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if p == ErrAborted {
						errs[r] = ErrAborted
						return
					}
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v\n%s", r, p, debug.Stack())
					w.abort()
				}
			}()
			if err := fn(&Comm{world: w, rank: r}); err != nil {
				errs[r] = fmt.Errorf("mpi: rank %d: %w", r, err)
				w.abort()
			}
		}(r)
	}
	wg.Wait()

	var first error
	for _, e := range errs {
		if e != nil && e != ErrAborted {
			if first == nil {
				first = e
			}
		}
	}
	if first != nil {
		return first
	}
	// Only secondary abort errors (shouldn't happen without a primary).
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func (w *World) abort() {
	if w.aborted.Swap(true) {
		return
	}
	for _, b := range w.boxes {
		b.abort()
	}
	w.barMu.Lock()
	w.barC.Broadcast()
	w.barMu.Unlock()
}

func (w *World) checkRank(r int) {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, w.size))
	}
}

// message context classes keep collective traffic from matching
// point-to-point receives.
const (
	ctxP2P = iota
	ctxColl
)

type message struct {
	ctx  int
	src  int
	tag  int
	data []byte
}

type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	msgs    []message
	aborted bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(ErrAborted)
	}
	b.msgs = append(b.msgs, m)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// take removes and returns the first message matching (ctx, src, tag),
// blocking until one arrives.
func (b *mailbox) take(ctx, src, tag int) message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.aborted {
			panic(ErrAborted)
		}
		for i, m := range b.msgs {
			if m.ctx != ctx {
				continue
			}
			if src != Any && m.src != src {
				continue
			}
			if tag != Any && m.tag != tag {
				continue
			}
			b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			return m
		}
		b.cond.Wait()
	}
}

func (b *mailbox) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
