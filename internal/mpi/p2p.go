package mpi

import (
	"encoding/binary"
	"math"
)

// Send delivers data to rank dst with the given tag, charging the
// interconnect fabric for the transfer. The slice is copied, so the caller
// may reuse it immediately (MPI_Send semantics).
func (c *Comm) Send(dst, tag int, data []byte) {
	c.world.checkRank(dst)
	if c.world.aborted.Load() {
		panic(ErrAborted)
	}
	c.world.fabric.Transfer(c.rank, dst, len(data))
	buf := make([]byte, len(data))
	copy(buf, data)
	c.world.boxes[dst].put(message{ctx: ctxP2P, src: c.rank, tag: tag, data: buf})
}

// Recv blocks until a message from src (or Any) with tag (or Any) arrives
// and returns its payload along with the actual source and tag.
func (c *Comm) Recv(src, tag int) (data []byte, actualSrc, actualTag int) {
	if src != Any {
		c.world.checkRank(src)
	}
	m := c.world.boxes[c.rank].take(ctxP2P, src, tag)
	return m.data, m.src, m.tag
}

// SendRecv exchanges messages with a partner rank without deadlocking.
func (c *Comm) SendRecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Send(dst, sendTag, data)
	}()
	got, _, _ := c.Recv(src, recvTag)
	<-done
	return got
}

// SendFloat64s sends a float64 vector.
func (c *Comm) SendFloat64s(dst, tag int, vals []float64) {
	c.Send(dst, tag, encodeFloat64s(vals))
}

// RecvFloat64s receives a float64 vector.
func (c *Comm) RecvFloat64s(src, tag int) []float64 {
	data, _, _ := c.Recv(src, tag)
	return decodeFloat64s(data)
}

// SendInt sends a single integer.
func (c *Comm) SendInt(dst, tag, v int) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(int64(v)))
	c.Send(dst, tag, b[:])
}

// RecvInt receives a single integer, returning the value and source rank.
func (c *Comm) RecvInt(src, tag int) (v, actualSrc int) {
	data, s, _ := c.Recv(src, tag)
	if len(data) != 8 {
		panic("mpi: RecvInt on non-int message")
	}
	return int(int64(binary.BigEndian.Uint64(data))), s
}

// SendString sends a string message.
func (c *Comm) SendString(dst, tag int, s string) { c.Send(dst, tag, []byte(s)) }

// RecvString receives a string message and its source.
func (c *Comm) RecvString(src, tag int) (string, int) {
	data, s, _ := c.Recv(src, tag)
	return string(data), s
}

func encodeFloat64s(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func decodeFloat64s(data []byte) []float64 {
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(data[8*i:]))
	}
	return out
}
