package lzo

import (
	"errors"
	"io"
)

// Streaming interfaces over the block format: Writer compresses an
// io.Writer stream block by block; Reader decompresses a stream of framed
// blocks. These wrap the same frames WriteCompressed produces, so a file
// written through the pipeline can be read back as an io.Reader.

// DefaultStreamBlock is the streaming compression unit.
const DefaultStreamBlock = 256 << 10

// Writer compresses written bytes into framed blocks on the underlying
// writer. Close flushes the final partial block.
type Writer struct {
	w       io.Writer
	block   []byte
	fill    int
	err     error
	written int64 // compressed bytes emitted
	input   int64 // raw bytes accepted
}

// NewWriter returns a streaming compressor with the given block size
// (<= 0 uses DefaultStreamBlock).
func NewWriter(w io.Writer, blockSize int) *Writer {
	if blockSize <= 0 {
		blockSize = DefaultStreamBlock
	}
	return &Writer{w: w, block: make([]byte, blockSize)}
}

// Write implements io.Writer.
func (z *Writer) Write(p []byte) (int, error) {
	if z.err != nil {
		return 0, z.err
	}
	total := 0
	for len(p) > 0 {
		n := copy(z.block[z.fill:], p)
		z.fill += n
		p = p[n:]
		total += n
		if z.fill == len(z.block) {
			if err := z.flushBlock(); err != nil {
				return total, err
			}
		}
	}
	z.input += int64(total)
	return total, nil
}

func (z *Writer) flushBlock() error {
	if z.fill == 0 {
		return nil
	}
	frame := EncodeBlock(z.block[:z.fill])
	z.fill = 0
	if _, err := z.w.Write(frame); err != nil {
		z.err = err
		return err
	}
	z.written += int64(len(frame))
	return nil
}

// Close flushes the final partial block. The underlying writer is not
// closed.
func (z *Writer) Close() error {
	if z.err != nil {
		return z.err
	}
	if err := z.flushBlock(); err != nil {
		return err
	}
	z.err = errors.New("lzo: writer closed")
	return nil
}

// Stats returns (raw input bytes, compressed output bytes).
func (z *Writer) Stats() (in, out int64) { return z.input, z.written }

// Reader decompresses a stream of framed blocks.
type Reader struct {
	r    io.Reader
	buf  []byte // decoded bytes not yet delivered
	err  error
	head [BlockHeaderSize]byte
}

// NewReader returns a streaming decompressor.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read implements io.Reader.
func (z *Reader) Read(p []byte) (int, error) {
	for len(z.buf) == 0 {
		if z.err != nil {
			return 0, z.err
		}
		if err := z.nextBlock(); err != nil {
			z.err = err
			if err == io.EOF && len(z.buf) > 0 {
				break
			}
			return 0, err
		}
	}
	n := copy(p, z.buf)
	z.buf = z.buf[n:]
	return n, nil
}

func (z *Reader) nextBlock() error {
	if _, err := io.ReadFull(z.r, z.head[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return ErrCorrupt
		}
		return err
	}
	compLen := int(uint32(z.head[8])<<24 | uint32(z.head[9])<<16 |
		uint32(z.head[10])<<8 | uint32(z.head[11]))
	frame := make([]byte, BlockHeaderSize+compLen)
	copy(frame, z.head[:])
	if _, err := io.ReadFull(z.r, frame[BlockHeaderSize:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrCorrupt
		}
		return err
	}
	orig, _, err := DecodeBlock(frame)
	if err != nil {
		return err
	}
	z.buf = orig
	return nil
}
