// Package lzo implements a fast byte-oriented LZ77 compressor in the style
// of the LZO/LZF family the paper used for on-the-fly compression. The goal
// is the same speed class as miniLZO — a single pass with a small hash
// table, no entropy coding — so that compression time stays roughly two
// orders of magnitude below WAN transmission time, the condition Section
// 7.3 depends on.
//
// Encoded stream grammar (LZF-like):
//
//	ctrl < 0x20:  literal run of ctrl+1 bytes follows
//	ctrl >= 0x20: match; len3 = ctrl>>5, dist = (ctrl&0x1f)<<8 | next byte
//	              if len3 == 7, subsequent bytes extend the length
//	              (each 0xff adds 255, the terminator adds its value);
//	              match length = len3 + 2, distance = dist + 1
//
// Maximum match distance is 8 KiB, minimum match length 3.
package lzo

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch    = 3
	maxDistance = 1 << 13 // 8 KiB window
	hashBits    = 14
	hashSize    = 1 << hashBits
	maxLitRun   = 32
)

// ErrCorrupt is returned when the compressed stream is malformed.
var ErrCorrupt = errors.New("lzo: corrupt compressed data")

func hash3(a, b, c byte) uint32 {
	v := uint32(a) | uint32(b)<<8 | uint32(c)<<16
	return (v * 2654435761) >> (32 - hashBits)
}

// MaxEncodedLen returns the worst-case size of Compress output for n input
// bytes: one control byte per 32 literals, rounded up.
func MaxEncodedLen(n int) int {
	return n + n/maxLitRun + 2
}

// Compress appends the compressed form of src to dst and returns the
// extended slice. Incompressible data expands by at most 1/32 + 2 bytes.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	i := 0
	for i+minMatch <= len(src) {
		h := hash3(src[i], src[i+1], src[i+2])
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) <= maxDistance &&
			src[cand] == src[i] && src[cand+1] == src[i+1] && src[cand+2] == src[i+2] {
			// Flush pending literals.
			dst = emitLiterals(dst, src[litStart:i])
			// Extend the match.
			mlen := minMatch
			for i+mlen < len(src) && src[int(cand)+mlen] == src[i+mlen] {
				mlen++
			}
			dst = emitMatch(dst, i-int(cand)-1, mlen)
			// Index a couple of positions inside the match so long
			// repeats keep finding themselves.
			end := i + mlen
			for j := i + 1; j < end && j+minMatch <= len(src); j += 1 + (mlen >> 4) {
				table[hash3(src[j], src[j+1], src[j+2])] = int32(j)
			}
			i = end
			litStart = i
			continue
		}
		i++
	}
	return emitLiterals(dst, src[litStart:])
}

func emitLiterals(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		if n > maxLitRun {
			n = maxLitRun
		}
		dst = append(dst, byte(n-1))
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

func emitMatch(dst []byte, dist, mlen int) []byte {
	rem := mlen - 2 // len3 payload, >= 1
	len3 := rem
	if len3 > 7 {
		len3 = 7
	}
	dst = append(dst, byte(len3<<5)|byte(dist>>8), byte(dist))
	if rem >= 7 {
		rem -= 7
		for rem >= 255 {
			dst = append(dst, 0xff)
			rem -= 255
		}
		dst = append(dst, byte(rem))
	}
	return dst
}

// Decompress appends the decompressed form of src to dst and returns the
// extended slice.
func Decompress(dst, src []byte) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		ctrl := src[i]
		i++
		if ctrl < 0x20 { // literal run
			n := int(ctrl) + 1
			if i+n > len(src) {
				return dst, ErrCorrupt
			}
			dst = append(dst, src[i:i+n]...)
			i += n
			continue
		}
		if i >= len(src) {
			return dst, ErrCorrupt
		}
		mlen := int(ctrl >> 5) // 1..7
		dist := int(ctrl&0x1f)<<8 | int(src[i])
		i++
		if mlen == 7 {
			for {
				if i >= len(src) {
					return dst, ErrCorrupt
				}
				b := src[i]
				i++
				mlen += int(b)
				if b != 0xff {
					break
				}
			}
		}
		mlen += 2
		start := len(dst) - dist - 1
		if start < base {
			return dst, ErrCorrupt
		}
		// Byte-by-byte copy: matches may overlap their own output.
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	return dst, nil
}

// Block framing: [4B magic][4B origLen][4B compLen][1B stored][payload].
// Stored blocks carry the raw bytes when compression would not shrink them.

const blockMagic = 0x4c5a4f31 // "LZO1"

// BlockHeaderSize is the size of the per-block frame header.
const BlockHeaderSize = 13

// EncodeBlock frames and compresses src, falling back to a stored block
// when compression does not help. The frame is self-describing, so blocks
// can be concatenated into a stream and decoded one at a time.
func EncodeBlock(src []byte) []byte {
	comp := Compress(make([]byte, 0, MaxEncodedLen(len(src))), src)
	stored := byte(0)
	payload := comp
	if len(comp) >= len(src) {
		stored = 1
		payload = src
	}
	out := make([]byte, BlockHeaderSize, BlockHeaderSize+len(payload))
	binary.BigEndian.PutUint32(out[0:], blockMagic)
	binary.BigEndian.PutUint32(out[4:], uint32(len(src)))
	binary.BigEndian.PutUint32(out[8:], uint32(len(payload)))
	out[12] = stored
	return append(out, payload...)
}

// DecodeBlock decodes one framed block from src, returning the original
// bytes and the number of frame bytes consumed.
func DecodeBlock(src []byte) (orig []byte, consumed int, err error) {
	if len(src) < BlockHeaderSize {
		return nil, 0, ErrCorrupt
	}
	if binary.BigEndian.Uint32(src[0:]) != blockMagic {
		return nil, 0, fmt.Errorf("lzo: bad block magic %#x", binary.BigEndian.Uint32(src[0:]))
	}
	origLen := int(binary.BigEndian.Uint32(src[4:]))
	compLen := int(binary.BigEndian.Uint32(src[8:]))
	stored := src[12] == 1
	end := BlockHeaderSize + compLen
	if compLen < 0 || origLen < 0 || end > len(src) {
		return nil, 0, ErrCorrupt
	}
	payload := src[BlockHeaderSize:end]
	if stored {
		if len(payload) != origLen {
			return nil, 0, ErrCorrupt
		}
		out := make([]byte, origLen)
		copy(out, payload)
		return out, end, nil
	}
	out, err := Decompress(make([]byte, 0, origLen), payload)
	if err != nil {
		return nil, 0, err
	}
	if len(out) != origLen {
		return nil, 0, ErrCorrupt
	}
	return out, end, nil
}

// Ratio reports the compression ratio (orig/comp) Compress achieves on src.
func Ratio(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	comp := Compress(nil, src)
	if len(comp) == 0 {
		return 1
	}
	return float64(len(src)) / float64(len(comp))
}
