package lzo

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func streamRoundTrip(t *testing.T, src []byte, blockSize int, writeChunks int) {
	t.Helper()
	var sink bytes.Buffer
	w := NewWriter(&sink, blockSize)
	// Write in irregular chunks.
	rest := src
	for len(rest) > 0 {
		n := writeChunks
		if n <= 0 || n > len(rest) {
			n = len(rest)
		}
		if wn, err := w.Write(rest[:n]); err != nil || wn != n {
			t.Fatalf("write = %d, %v", wn, err)
		}
		rest = rest[n:]
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	in, out := w.Stats()
	if in != int64(len(src)) {
		t.Fatalf("stats in = %d", in)
	}
	if out != int64(sink.Len()) {
		t.Fatalf("stats out = %d vs sink %d", out, sink.Len())
	}

	got, err := io.ReadAll(NewReader(&sink))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("stream round trip mismatch: %d in, %d out", len(src), len(got))
	}
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fasta := make([]byte, 300_000)
	for i := range fasta {
		fasta[i] = "ACGT"[rng.Intn(4)]
	}
	cases := []struct {
		name   string
		src    []byte
		block  int
		chunks int
	}{
		{"empty", nil, 1024, 0},
		{"tiny", []byte("x"), 1024, 0},
		{"exact-block", bytes.Repeat([]byte("ab"), 512), 1024, 0},
		{"fasta-small-chunks", fasta, 64 << 10, 333},
		{"fasta-default-block", fasta, 0, 0},
		{"random", func() []byte { b := make([]byte, 100_000); rng.Read(b); return b }(), 32 << 10, 7777},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			streamRoundTrip(t, c.src, c.block, c.chunks)
		})
	}
}

func TestStreamWriterAfterClose(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, 1024)
	w.Write([]byte("data"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("more")); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := w.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestStreamReaderTruncated(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, 1024)
	w.Write(bytes.Repeat([]byte("data"), 1000))
	w.Close()
	full := sink.Bytes()

	// Truncation mid-header and mid-payload both produce ErrCorrupt.
	for _, cut := range []int{5, BlockHeaderSize + 3} {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := io.ReadAll(r); err == nil {
			t.Fatalf("cut=%d: truncated stream decoded", cut)
		}
	}
}

func TestStreamReaderSmallReads(t *testing.T) {
	var sink bytes.Buffer
	src := bytes.Repeat([]byte("streaming"), 5000)
	w := NewWriter(&sink, 8<<10)
	w.Write(src)
	w.Close()

	r := NewReader(&sink)
	var got []byte
	buf := make([]byte, 7) // deliberately awkward read size
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, src) {
		t.Fatal("small-read decode mismatch")
	}
}

func TestStreamCompressesFASTA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 200_000)
	for i := range src {
		src[i] = "ACGT"[rng.Intn(4)]
	}
	var sink bytes.Buffer
	w := NewWriter(&sink, 0)
	w.Write(src)
	w.Close()
	if sink.Len() >= len(src)*3/4 {
		t.Fatalf("stream did not compress: %d -> %d", len(src), sink.Len())
	}
}
