package lzo

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	comp := Compress(nil, src)
	if len(comp) > MaxEncodedLen(len(src)) {
		t.Fatalf("compressed %d bytes into %d > MaxEncodedLen %d",
			len(src), len(comp), MaxEncodedLen(len(src)))
	}
	got, err := Decompress(nil, comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(got))
	}
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil) }

func TestRoundTripShort(t *testing.T) {
	for _, s := range []string{"a", "ab", "abc", "abcd", "aaaa", "abcabcabc"} {
		roundTrip(t, []byte(s))
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	roundTrip(t, bytes.Repeat([]byte("ACGT"), 10000))
	roundTrip(t, bytes.Repeat([]byte{0}, 100000))
	roundTrip(t, []byte(strings.Repeat("the quick brown fox ", 500)))
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 100, 4096, 1 << 16, 1<<20 + 17} {
		src := make([]byte, n)
		rng.Read(src)
		roundTrip(t, src)
	}
}

func TestRoundTripLongMatches(t *testing.T) {
	// Exercise the length-extension encoding (len3==7 with 0xff chains).
	src := append([]byte("prefix"), bytes.Repeat([]byte{'x'}, 3000)...)
	src = append(src, []byte("suffix")...)
	roundTrip(t, src)
}

func TestRoundTripFarMatches(t *testing.T) {
	// Matches beyond the 8 KiB window must not be used; data repeating at
	// a distance just under and just over the window both round-trip.
	unit := make([]byte, maxDistance-1)
	rand.New(rand.NewSource(7)).Read(unit)
	roundTrip(t, append(append([]byte{}, unit...), unit...))
	unit2 := make([]byte, maxDistance+100)
	rand.New(rand.NewSource(8)).Read(unit2)
	roundTrip(t, append(append([]byte{}, unit2...), unit2...))
}

func TestRoundTripQuick(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(nil, src)
		got, err := Decompress(nil, comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripQuickStructured(t *testing.T) {
	// Random data rarely has matches; build structured inputs too.
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, reps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		unit := make([]byte, r.Intn(300)+1)
		for i := range unit {
			unit[i] = "ACGTN\n>est"[r.Intn(10)]
		}
		src := bytes.Repeat(unit, int(reps%40)+1)
		comp := Compress(nil, src)
		got, err := Decompress(nil, comp)
		return err == nil && bytes.Equal(got, src)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompressesFASTALikeData(t *testing.T) {
	// The paper compresses human EST nucleotide text; our stand-in must
	// actually shrink that class of data meaningfully.
	rng := rand.New(rand.NewSource(1))
	var b bytes.Buffer
	for i := 0; i < 500; i++ {
		b.WriteString(">gi|synthetic est sequence\n")
		for j := 0; j < 8; j++ {
			line := make([]byte, 70)
			for k := range line {
				line[k] = "ACGT"[rng.Intn(4)]
			}
			b.Write(line)
			b.WriteByte('\n')
		}
	}
	r := Ratio(b.Bytes())
	if r < 1.3 {
		t.Fatalf("FASTA-like ratio = %.2f, want >= 1.3", r)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		{0xff},            // match ctrl with no distance byte
		{0x05, 'a'},       // literal run longer than remaining input
		{0x20, 0x10},      // match distance beyond output start
		{0xe0, 0x00},      // len3==7 but no extension byte
		{0x00, 'a', 0xff}, // trailing truncated match
	}
	for i, c := range cases {
		if _, err := Decompress(nil, c); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestDecompressAppends(t *testing.T) {
	comp := Compress(nil, []byte("world"))
	out, err := Decompress([]byte("hello "), comp)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello world" {
		t.Fatalf("got %q", out)
	}
}

func TestEncodeBlockRoundTrip(t *testing.T) {
	srcs := [][]byte{
		nil,
		[]byte("tiny"),
		bytes.Repeat([]byte("ACGT"), 4096),
		func() []byte { b := make([]byte, 4096); rand.New(rand.NewSource(3)).Read(b); return b }(),
	}
	for i, src := range srcs {
		blk := EncodeBlock(src)
		got, n, err := DecodeBlock(blk)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(blk) {
			t.Fatalf("case %d: consumed %d of %d", i, n, len(blk))
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: mismatch", i)
		}
	}
}

func TestEncodeBlockStoredFallback(t *testing.T) {
	src := make([]byte, 1000)
	rand.New(rand.NewSource(5)).Read(src)
	blk := EncodeBlock(src)
	if len(blk) > len(src)+BlockHeaderSize {
		t.Fatalf("incompressible block grew: %d > %d", len(blk), len(src)+BlockHeaderSize)
	}
	if blk[12] != 1 {
		t.Fatal("random data should use a stored block")
	}
}

func TestDecodeBlockStream(t *testing.T) {
	var stream []byte
	var want []byte
	for i := 0; i < 5; i++ {
		part := bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))
		want = append(want, part...)
		stream = append(stream, EncodeBlock(part)...)
	}
	var got []byte
	for len(stream) > 0 {
		part, n, err := DecodeBlock(stream)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, part...)
		stream = stream[n:]
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stream decode mismatch")
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	if _, _, err := DecodeBlock([]byte{1, 2, 3}); err == nil {
		t.Fatal("short block accepted")
	}
	blk := EncodeBlock([]byte("hello hello hello"))
	blk[0] ^= 0xff
	if _, _, err := DecodeBlock(blk); err == nil {
		t.Fatal("bad magic accepted")
	}
	blk2 := EncodeBlock(bytes.Repeat([]byte("xy"), 500))
	blk2[7] ^= 0x01 // corrupt origLen
	if _, _, err := DecodeBlock(blk2); err == nil {
		t.Fatal("bad origLen accepted")
	}
}

func BenchmarkCompressFASTA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 1<<20)
	for i := range src {
		src[i] = "ACGT"[rng.Intn(4)]
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(nil, src)
	}
}

func BenchmarkDecompressFASTA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 1<<20)
	for i := range src {
		src[i] = "ACGT"[rng.Intn(4)]
	}
	comp := Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, comp); err != nil {
			b.Fatal(err)
		}
	}
}
