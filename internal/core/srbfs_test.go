package core

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

// memDialer returns a DialFunc serving a fresh in-memory SRB server over
// unshaped pipes.
func memDialer(srv *srb.Server) DialFunc {
	return func() (net.Conn, error) {
		c, s := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(s)
		return c, nil
	}
}

func newTestFS(t *testing.T, streams int) (*srb.Server, *SRBFS) {
	t.Helper()
	srv := srb.NewMemServer(storage.DeviceSpec{})
	fs, err := NewSRBFS(SRBFSConfig{
		Dial:       memDialer(srv),
		Streams:    streams,
		StripeSize: 1 << 10, // small stripes exercise splitting
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, fs
}

func TestSRBFSSingleStreamRoundTrip(t *testing.T) {
	_, fs := newTestFS(t, 1)
	f, err := fs.Open("/file", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := bytes.Repeat([]byte("semplar"), 999)
	if n, err := f.WriteAt(data, 17); err != nil || n != len(data) {
		t.Fatalf("write = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 17); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

func TestSRBFSMultiStreamRoundTrip(t *testing.T) {
	for _, streams := range []int{2, 3, 5} {
		srv, fs := newTestFS(t, streams)
		f, err := fs.Open("/file", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.(*srbFile).Streams(); got != streams {
			t.Fatalf("streams = %d want %d", got, streams)
		}
		// Server must see one connection per stream.
		if got := srv.Stats().ActiveConns; got != int64(streams) {
			t.Fatalf("server conns = %d want %d", got, streams)
		}
		src := make([]byte, 10240+333) // spans many 1 KiB stripes, unaligned tail
		rand.New(rand.NewSource(int64(streams))).Read(src)
		if n, err := f.WriteAt(src, 500); err != nil || n != len(src) {
			t.Fatalf("write = %d, %v", n, err)
		}
		got := make([]byte, len(src))
		if n, err := f.ReadAt(got, 500); err != nil || n != len(src) {
			t.Fatalf("read = %d, %v", n, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("streams=%d: striped data corrupted", streams)
		}
		if sz, err := f.Size(); err != nil || sz != int64(500+len(src)) {
			t.Fatalf("size = %d, %v", sz, err)
		}
		f.Close()
		// Server-side teardown is asynchronous; allow it to settle.
		deadline := time.Now().Add(2 * time.Second)
		for srv.Stats().ActiveConns != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := srv.Stats().ActiveConns; got != 0 {
			t.Fatalf("connections leaked: %d", got)
		}
	}
}

func TestSRBFSShortRead(t *testing.T) {
	_, fs := newTestFS(t, 2)
	f, _ := fs.Open("/short", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	f.WriteAt(bytes.Repeat([]byte{'z'}, 3000), 0)
	buf := make([]byte, 5000)
	n, err := f.ReadAt(buf, 0)
	if n != 3000 || err != io.EOF {
		t.Fatalf("short read = %d, %v; want 3000, EOF", n, err)
	}
}

func TestSRBFSStreamsHint(t *testing.T) {
	_, fs := newTestFS(t, 1)
	f, err := fs.Open("/hinted", adio.O_RDWR|adio.O_CREATE,
		adio.Hints{"streams": "3", "stripe_size": "512"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sf := f.(*srbFile)
	if sf.Streams() != 3 || sf.stripe != 512 {
		t.Fatalf("streams=%d stripe=%d", sf.Streams(), sf.stripe)
	}
	if _, err := fs.Open("/bad", adio.O_CREATE, adio.Hints{"streams": "zero"}); err == nil {
		t.Fatal("bad streams hint accepted")
	}
	if _, err := fs.Open("/bad", adio.O_CREATE, adio.Hints{"stripe_size": "-1"}); err == nil {
		t.Fatal("bad stripe hint accepted")
	}
}

func TestSRBFSDelete(t *testing.T) {
	_, fs := newTestFS(t, 1)
	f, _ := fs.Open("/doomed", adio.O_WRONLY|adio.O_CREATE, nil)
	f.WriteAt([]byte("x"), 0)
	f.Close()
	if err := fs.Delete("/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/doomed", adio.O_RDONLY, nil); err == nil {
		t.Fatal("open deleted file")
	}
}

func TestSRBFSTruncFlagOnce(t *testing.T) {
	// With multiple streams, only the first open truncates; otherwise
	// stream 2's open would wipe what stream 1 wrote.
	_, fs := newTestFS(t, 1)
	f, _ := fs.Open("/t", adio.O_WRONLY|adio.O_CREATE, nil)
	f.WriteAt([]byte("previous content"), 0)
	f.Close()

	f2, err := fs.Open("/t", adio.O_RDWR|adio.O_TRUNC, adio.Hints{"streams": "3"})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if sz, _ := f2.Size(); sz != 0 {
		t.Fatalf("size after trunc open = %d", sz)
	}
	f2.WriteAt([]byte("new"), 0)
	if sz, _ := f2.Size(); sz != 3 {
		t.Fatalf("size = %d", sz)
	}
}

func TestSRBFSSplitStripes(t *testing.T) {
	f := &srbFile{stripe: 100, streams: make([]*stream, 2)}
	buf := make([]byte, 250)
	ops := f.splitStripes(buf, 50)
	// [50,100) s0, [100,200) s1, [200,300) s0
	want := []struct {
		stream int
		off    int64
		n      int
	}{{0, 50, 50}, {1, 100, 100}, {0, 200, 100}}
	if len(ops) != len(want) {
		t.Fatalf("ops = %d", len(ops))
	}
	for i, w := range want {
		if ops[i].stream != w.stream || ops[i].off != w.off || len(ops[i].buf) != w.n {
			t.Fatalf("op %d = {s%d off%d n%d}, want %+v",
				i, ops[i].stream, ops[i].off, len(ops[i].buf), w)
		}
	}
}

func TestSRBFSConcurrentHandles(t *testing.T) {
	// The paper's double-connection trick: open the same file twice and
	// drive both handles concurrently with async requests.
	srv := srb.NewMemServer(storage.DeviceSpec{})
	fs, _ := NewSRBFS(SRBFSConfig{Dial: memDialer(srv)})
	f1, err := fs.Open("/dual", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs.Open("/dual", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	defer f2.Close()

	eng := NewEngine(2)
	defer eng.Close()
	const half = 64 << 10
	a := bytes.Repeat([]byte{'A'}, half)
	b := bytes.Repeat([]byte{'B'}, half)
	r1 := eng.Submit(func() (int, error) { return f1.WriteAt(a, 0) })
	r2 := eng.Submit(func() (int, error) { return f2.WriteAt(b, half) })
	if _, err := r1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Wait(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*half)
	if _, err := f1.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'A' || got[half] != 'B' || got[2*half-1] != 'B' {
		t.Fatal("dual-handle write corrupted")
	}
}

func TestSRBFSTwoStreamsFasterOnWAN(t *testing.T) {
	// On a window-limited WAN path, two streams must beat one
	// substantially (Figure 8's mechanism).
	if testing.Short() {
		t.Skip("timing test")
	}
	prof := netsim.DAS2().Scaled(40)
	run := func(streams int) float64 {
		net0 := netsim.NewNetwork(prof, 1)
		srv := srb.NewMemServer(storage.DeviceSpec{})
		fs, _ := NewSRBFS(SRBFSConfig{
			Dial: func() (net.Conn, error) {
				c, s := net0.Dial(0)
				go srv.ServeConn(s)
				return c, nil
			},
			Streams: streams,
			// One big write per phase, split across the streams:
			// stripe = transfer size / streams.
			StripeSize: 2 << 20,
		})
		f, err := fs.Open("/wan", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		payload := make([]byte, 4<<20)
		start := time.Now()
		if _, err := f.WriteAt(payload, 0); err != nil {
			t.Fatal(err)
		}
		return float64(len(payload)) / time.Since(start).Seconds()
	}
	one := run(1)
	two := run(2)
	t.Logf("1 stream %.1f MB/s, 2 streams %.1f MB/s", one/(1<<20), two/(1<<20))
	if two < one*14/10 {
		t.Fatalf("2 streams %.0f B/s vs 1 stream %.0f B/s; want ~2x", two, one)
	}
}

func TestSRBFSParallelNodes(t *testing.T) {
	// Several nodes write disjoint stripes of one shared file through
	// separate driver opens (the SEMPLAR cluster pattern).
	srv := srb.NewMemServer(storage.DeviceSpec{})
	fs, _ := NewSRBFS(SRBFSConfig{Dial: memDialer(srv)})
	const nodes = 5
	const chunk = 8 << 10
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f, err := fs.Open("/shared", adio.O_RDWR|adio.O_CREATE, nil)
			if err != nil {
				errs[r] = err
				return
			}
			defer f.Close()
			_, errs[r] = f.WriteAt(bytes.Repeat([]byte{byte('a' + r)}, chunk), int64(r*chunk))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", r, err)
		}
	}
	f, _ := fs.Open("/shared", adio.O_RDONLY, nil)
	defer f.Close()
	buf := make([]byte, nodes*chunk)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for r := 0; r < nodes; r++ {
		if buf[r*chunk] != byte('a'+r) {
			t.Fatalf("node %d stripe corrupted", r)
		}
	}
}
