package core

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

// fastRetry is a test-friendly policy: quick backoff, plenty of attempts.
func fastRetry() srb.RetryPolicy {
	return srb.RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		OpTimeout:   5 * time.Second,
	}
}

// trackingDialer dials fresh pipes against srv and records every client
// endpoint so tests can inject faults on specific connections.
type trackingDialer struct {
	mu       sync.Mutex
	srv      *srb.Server
	conns    []*netsim.Conn
	faultNew func(*netsim.Conn) // guarded by mu; applied to each new conn before use
}

func newTrackingDialer(srv *srb.Server) *trackingDialer {
	return &trackingDialer{srv: srv}
}

func (d *trackingDialer) dial() (net.Conn, error) {
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go d.srv.ServeConn(sEnd)
	d.mu.Lock()
	d.conns = append(d.conns, cEnd)
	fault := d.faultNew
	d.mu.Unlock()
	if fault != nil {
		fault(cEnd)
	}
	return cEnd, nil
}

// faultFuture installs a fault applied to every subsequently dialed
// connection before the client sees it — unlike faulting d.conns in a
// loop, replacements dialed during recovery can never slip through a
// fault-free window.
func (d *trackingDialer) faultFuture(f func(*netsim.Conn)) {
	d.mu.Lock()
	d.faultNew = f
	d.mu.Unlock()
}

func (d *trackingDialer) conn(i int) *netsim.Conn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conns[i]
}

func (d *trackingDialer) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

func faultFS(t *testing.T, cfg SRBFSConfig) (*trackingDialer, *SRBFS) {
	t.Helper()
	srv := srb.NewMemServer(storage.DeviceSpec{})
	d := newTrackingDialer(srv)
	cfg.Dial = d.dial
	if cfg.StripeSize == 0 {
		cfg.StripeSize = 64 << 10
	}
	fs, err := NewSRBFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, fs
}

func TestReconnectReplaysStripedWrite(t *testing.T) {
	d, fs := faultFS(t, SRBFSConfig{Streams: 2, Retry: fastRetry()})
	f, err := fs.Open("/armored", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill stream 1's connection mid-transfer: it dies inside its first
	// 64 KiB stripe.
	d.conn(1).FaultAfter(32<<10, netsim.FaultClose)

	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(payload)
	n, err := f.WriteAt(payload, 0)
	if err != nil {
		t.Fatalf("striped write across killed stream: %v", err)
	}
	if n != len(payload) {
		t.Fatalf("recovered write reported %d bytes, want %d", n, len(payload))
	}
	st := f.(*srbFile).FaultStats()
	if st.Reconnects < 1 {
		t.Fatalf("no reconnect recorded: %+v", st)
	}
	if st.RetriedOps < 1 {
		t.Fatalf("no replayed op recorded: %+v", st)
	}
	if d.count() < 3 {
		t.Fatalf("no replacement connection dialed (%d total)", d.count())
	}
	f.Close()

	// Byte-exact verification through a fresh handle.
	f2, err := fs.Open("/armored", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got := make([]byte, len(payload))
	if n, err := f2.ReadAt(got, 0); err != nil && err != io.EOF || n != len(payload) {
		t.Fatalf("readback = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("recovered file content differs from payload")
	}
}

func TestReconnectReplaysStripedRead(t *testing.T) {
	d, fs := faultFS(t, SRBFSConfig{Streams: 2, Retry: fastRetry()})
	f, err := fs.Open("/readback", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := make([]byte, 512<<10)
	rand.New(rand.NewSource(11)).Read(payload)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	// Reset stream 0 abruptly mid-read (requests are small; a tiny
	// budget kills it on an early read request).
	d.conn(0).FaultAfter(100, netsim.FaultClose)

	got := make([]byte, len(payload))
	n, err := f.ReadAt(got, 0)
	if err != nil && err != io.EOF {
		t.Fatalf("read across killed stream: %v", err)
	}
	if n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("recovered read = %d bytes, corrupted=%v", n, !bytes.Equal(got, payload))
	}
	if st := f.(*srbFile).FaultStats(); st.Reconnects < 1 {
		t.Fatalf("no reconnect recorded: %+v", st)
	}
}

func TestRetryDisabledFailsFast(t *testing.T) {
	d, fs := faultFS(t, SRBFSConfig{Streams: 2}) // zero-value policy
	f, err := fs.Open("/fragile", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d.conn(1).FaultAfter(32<<10, netsim.FaultClose)

	if _, err := f.WriteAt(make([]byte, 1<<20), 0); err == nil {
		t.Fatal("striped write across killed stream succeeded without retries")
	}
	if st := f.(*srbFile).FaultStats(); st.Reconnects != 0 {
		t.Fatalf("reconnect happened with retries disabled: %+v", st)
	}
}

func TestWriteAtErrorReportsContiguousPrefix(t *testing.T) {
	// Stripes land round-robin: with 2 streams and 64 KiB stripes, the
	// write [0, 1M) puts stripes 0,2,4,... on stream 0 and 1,3,5,... on
	// stream 1. Killing stream 0 before any payload moves means stripe 0
	// already failed — so the contiguous confirmed prefix is 0 even
	// though stream 1's stripes may have completed.
	d, fs := faultFS(t, SRBFSConfig{Streams: 2})
	f, err := fs.Open("/prefix", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d.conn(0).FaultAfter(0, netsim.FaultClose)

	n, err := f.WriteAt(make([]byte, 1<<20), 0)
	if err == nil {
		t.Fatal("write with dead first stream succeeded")
	}
	if n != 0 {
		t.Fatalf("contiguous prefix = %d, want 0 (stripe 0 never confirmed)", n)
	}
}

func TestReconnectBudgetExhausted(t *testing.T) {
	pol := fastRetry()
	pol.MaxAttempts = 20 // plenty of attempts; the budget must stop it
	d, fs := faultFS(t, SRBFSConfig{Streams: 2, Retry: pol, ReconnectBudget: 2})
	f, err := fs.Open("/doomed", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Every connection — current and future — dies almost immediately, so
	// each reconnect buys one more failure until the budget runs out. The
	// dial-time hook is what makes this deterministic: a replacement
	// connection is faulted before the client can push a single byte, so
	// the write can never complete no matter how the scheduler interleaves
	// recovery with fault injection.
	kill := func(c *netsim.Conn) { c.FaultAfter(100, netsim.FaultClose) }
	d.faultFuture(kill)
	d.mu.Lock()
	for _, c := range d.conns {
		kill(c)
	}
	d.mu.Unlock()

	_, err = f.WriteAt(make([]byte, 1<<20), 0)
	if err == nil {
		t.Fatal("write against permanently failing streams succeeded")
	}
	st := f.(*srbFile).FaultStats()
	if st.Reconnects == 0 {
		t.Fatalf("budget never consumed: %+v", st)
	}
	if st.Reconnects > 2 {
		t.Fatalf("budget overrun: %d reconnects with budget 2", st.Reconnects)
	}
}

func TestReconnectSurvivesTransientDialFailure(t *testing.T) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	d := newTrackingDialer(srv)
	var gate sync.Mutex
	failing := 0
	dial := func() (net.Conn, error) {
		gate.Lock()
		if failing > 0 {
			failing--
			gate.Unlock()
			return nil, netsim.ErrDialFault
		}
		gate.Unlock()
		return d.dial()
	}
	fs, err := NewSRBFS(SRBFSConfig{
		Dial: dial, Streams: 2, StripeSize: 64 << 10, Retry: fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/flaky-redial", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Kill a stream AND make the next redial attempt fail transiently:
	// recovery must push through both fault layers.
	gate.Lock()
	failing = 1
	gate.Unlock()
	d.conn(1).FaultAfter(32<<10, netsim.FaultClose)

	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(13)).Read(payload)
	n, err := f.WriteAt(payload, 0)
	if err != nil || n != len(payload) {
		t.Fatalf("write across kill + flaky redial = %d, %v", n, err)
	}
	if st := f.(*srbFile).FaultStats(); st.Reconnects < 2 {
		// One burned on the failed dial, one for the successful redial.
		t.Fatalf("expected >= 2 reconnect attempts, got %+v", st)
	}
}

func TestTerminalErrorNotRetried(t *testing.T) {
	d, fs := faultFS(t, SRBFSConfig{Streams: 1, Retry: fastRetry()})
	f, err := fs.Open("/terminal", adio.O_RDONLY|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Writing a read-only handle is a server status error — terminal, no
	// reconnect may fire.
	if _, err := f.WriteAt([]byte("nope"), 0); err == nil {
		t.Fatal("write on read-only handle succeeded")
	}
	if st := f.(*srbFile).FaultStats(); st.Reconnects != 0 {
		t.Fatalf("terminal error triggered reconnect: %+v", st)
	}
	if d.count() != 1 {
		t.Fatalf("extra connections dialed: %d", d.count())
	}
}

func TestCloseDuringReconnectStopsRecovery(t *testing.T) {
	// An op that keeps failing must stop redialing once the handle is
	// closed, even mid-retry-loop.
	pol := fastRetry()
	pol.BaseBackoff = 10 * time.Millisecond
	d, fs := faultFS(t, SRBFSConfig{Streams: 1, Retry: pol})
	f, err := fs.Open("/closing", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.conn(0).FaultAfter(0, netsim.FaultClose)

	done := make(chan error, 1)
	go func() {
		_, err := f.WriteAt(make([]byte, 256<<10), 0)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	f.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write on closed faulted handle succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write kept retrying after Close")
	}
}

func TestReconnectDoesNotTruncate(t *testing.T) {
	// A handle opened with O_TRUNC must NOT truncate again when a stream
	// reconnects — that would wipe acknowledged data.
	d, fs := faultFS(t, SRBFSConfig{Streams: 1, Retry: fastRetry()})
	f, err := fs.Open("/keep", adio.O_RDWR|adio.O_CREATE|adio.O_TRUNC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	first := bytes.Repeat([]byte{0xAB}, 128<<10)
	if _, err := f.WriteAt(first, 0); err != nil {
		t.Fatal(err)
	}
	// Kill the only stream; the next op reconnects.
	d.conn(0).FaultAfter(0, netsim.FaultClose)
	second := bytes.Repeat([]byte{0xCD}, 64<<10)
	if _, err := f.WriteAt(second, int64(len(first))); err != nil {
		t.Fatalf("write after reconnect: %v", err)
	}
	got := make([]byte, len(first)+len(second))
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(first)], first) {
		t.Fatal("reconnect truncated previously acknowledged data")
	}
	if !bytes.Equal(got[len(first):], second) {
		t.Fatal("post-reconnect write corrupted")
	}
}

func TestRedundantReadSurvivesKilledStream(t *testing.T) {
	d, fs := faultFS(t, SRBFSConfig{Streams: 2, Retry: fastRetry()})
	f, err := fs.Open("/redundant", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := bytes.Repeat([]byte("resilient"), 4<<10)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	d.conn(1).FaultAfter(0, netsim.FaultClose)
	got := make([]byte, len(payload))
	n, err := f.(*srbFile).ReadAtRedundant(got, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("redundant read = %d, corrupted=%v", n, !bytes.Equal(got, payload))
	}
}

func TestEngineFailedThenRecoveredReportsTrueCount(t *testing.T) {
	// The whole chain: a request submitted through the async engine whose
	// first attempt dies mid-transfer must complete with the full byte
	// count after reconnect+replay.
	d, fs := faultFS(t, SRBFSConfig{Streams: 2, Retry: fastRetry()})
	f, err := fs.Open("/async-armored", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d.conn(0).FaultAfter(16<<10, netsim.FaultClose)

	eng := NewEngine(1)
	defer eng.Close()
	payload := make([]byte, 768<<10)
	rand.New(rand.NewSource(17)).Read(payload)
	req := eng.Submit(func() (int, error) { return f.WriteAt(payload, 0) })
	n, err := req.Wait()
	if err != nil {
		t.Fatalf("async write across fault: %v", err)
	}
	if n != len(payload) {
		t.Fatalf("async request reported %d bytes, want %d", n, len(payload))
	}
}

func TestRetryableErrorKinds(t *testing.T) {
	if srb.Retryable(errors.New("anything unknown")) != true {
		t.Fatal("unknown errors must default to retryable")
	}
	if srb.Retryable(netsim.ErrReset) != true {
		t.Fatal("connection reset must be retryable")
	}
}

func TestServerBusyRetriesWithoutReconnect(t *testing.T) {
	// A server with one dispatch slot and slow storage: while a hog
	// occupies the slot, everyone else is shed with ErrServerBusy.
	srv := srb.NewMemServer(storage.DeviceSpec{OpLatency: 300 * time.Millisecond})
	srv.SetLimits(srb.Limits{MaxInflight: 1})
	d := newTrackingDialer(srv)
	cfg := SRBFSConfig{
		Dial: d.dial,
		Retry: srb.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
			Multiplier:  2,
			OpTimeout:   5 * time.Second,
		},
	}
	fs, err := NewSRBFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/shed", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// The hog: a raw client whose slow write holds the only slot.
	hogRaw, err := d.dial()
	if err != nil {
		t.Fatal(err)
	}
	hc, err := srb.NewConn(hogRaw, "hog")
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	hf, err := hc.Open("/hog", srb.O_RDWR|srb.O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	hogDone := make(chan error, 1)
	go func() {
		_, werr := hf.WriteAt(make([]byte, 1024), 0)
		hogDone <- werr
	}()
	// Wait until the hog's write request has reached the server (request
	// 5: two per handshake+open for each client), then give dispatch a
	// beat to occupy the slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Requests < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("hog write never arrived; stats %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)

	// The driver's write is shed, backs off, and replays on the SAME
	// connection: busy is a status error, so recovery must not redial or
	// spend reconnect budget.
	if _, err := f.WriteAt([]byte("patience"), 0); err != nil {
		t.Fatalf("write through busy window: %v", err)
	}
	if err := <-hogDone; err != nil {
		t.Fatalf("hog write: %v", err)
	}

	st := f.(*srbFile).FaultStats()
	if st.Reconnects != 0 {
		t.Fatalf("busy retry redialed: %+v", st)
	}
	if st.RetriedOps < 1 {
		t.Fatalf("no retried op recorded: %+v", st)
	}
	if sv := srv.Stats(); sv.Shed < 1 {
		t.Fatalf("server Shed = %d, want >= 1", sv.Shed)
	}
	// Only the driver's one stream and the hog ever dialed.
	if d.count() != 2 {
		t.Fatalf("dial count = %d, want 2", d.count())
	}
}
