package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semplar/internal/trace"
)

// TestEngineTraceStress hammers a traced engine from many goroutines —
// concurrent Submit, Wait, and Drain — while a sampler watches the
// queue-depth and in-flight gauges and the monotonic counters. Run under
// -race this doubles as the data-race check for every instrumentation
// point on the submit/dispatch/complete path.
func TestEngineTraceStress(t *testing.T) {
	const (
		threads      = 4
		submitters   = 8
		perSubmitter = 250
		total        = submitters * perSubmitter
	)
	eng := NewEngine(threads)
	tr := trace.New()
	eng.SetTracer(tr)

	stop := make(chan struct{})
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		var lastSub, lastComp int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if q := tr.Counter(GaugeQueueDepth); q < 0 {
				t.Errorf("queue gauge went negative: %d", q)
			}
			if inf := tr.Counter(GaugeInflight); inf < 0 || inf > threads {
				t.Errorf("inflight gauge out of [0,%d]: %d", threads, inf)
			}
			sub := tr.Counter(CountSubmitted)
			comp := tr.Counter(CountCompleted)
			if sub < lastSub {
				t.Errorf("submitted counter went backwards: %d -> %d", lastSub, sub)
			}
			if comp < lastComp {
				t.Errorf("completed counter went backwards: %d -> %d", lastComp, comp)
			}
			if comp > sub {
				t.Errorf("completed (%d) overtook submitted (%d)", comp, sub)
			}
			lastSub, lastComp = sub, comp
			runtime.Gosched()
		}
	}()

	var done atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			reqs := make([]*Request, 0, perSubmitter)
			for i := 0; i < perSubmitter; i++ {
				reqs = append(reqs, eng.Submit(func() (int, error) {
					if i%16 == 0 {
						runtime.Gosched() // vary interleavings
					}
					done.Add(1)
					return 1, nil
				}))
				if i%32 == 0 {
					// Wait for a slice of our own requests mid-stream so
					// submit and complete phases overlap heavily.
					for _, r := range reqs {
						if _, err := r.Wait(); err != nil {
							t.Errorf("submitter %d: %v", s, err)
						}
					}
					reqs = reqs[:0]
				}
			}
			for _, r := range reqs {
				if _, err := r.Wait(); err != nil {
					t.Errorf("submitter %d: %v", s, err)
				}
			}
		}(s)
	}
	// Concurrent drains must coexist with ongoing submissions.
	var drainWg sync.WaitGroup
	drainWg.Add(1)
	go func() {
		defer drainWg.Done()
		for i := 0; i < 20; i++ {
			eng.Drain()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	drainWg.Wait()
	eng.Drain()
	close(stop)
	samplerWg.Wait()

	if n := done.Load(); n != total {
		t.Fatalf("executed %d tasks, want %d", n, total)
	}
	if got := tr.Counter(CountSubmitted); got != total {
		t.Errorf("submitted counter = %d, want %d", got, total)
	}
	if got := tr.Counter(CountCompleted); got != total {
		t.Errorf("completed counter = %d, want %d", got, total)
	}
	// Quiescent gauges must return exactly to zero.
	if q := tr.Counter(GaugeQueueDepth); q != 0 {
		t.Errorf("queue gauge after drain = %d, want 0", q)
	}
	if inf := tr.Counter(GaugeInflight); inf != 0 {
		t.Errorf("inflight gauge after drain = %d, want 0", inf)
	}

	eng.Close()
	// A rejected post-close submission must not move any metric.
	if _, err := eng.Submit(func() (int, error) { return 0, nil }).Wait(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close submit: %v, want ErrEngineClosed", err)
	}
	if got := tr.Counter(CountSubmitted); got != total {
		t.Errorf("rejected submit moved the submitted counter: %d", got)
	}
}

// submitBatches pushes n trivial tasks through eng in batches, draining
// between batches (outside the timed region when b is non-nil) so neither
// the queue nor the tracer's event buffer grows without bound.
func submitBatches(b *testing.B, eng *Engine, n int, fresh func() *trace.Tracer) {
	fn := func() (int, error) { return 0, nil }
	const batch = 1024
	for i := 0; i < n; i += batch {
		k := batch
		if n-i < k {
			k = n - i
		}
		for j := 0; j < k; j++ {
			eng.Submit(fn)
		}
		if b != nil {
			b.StopTimer()
		}
		eng.Drain()
		if fresh != nil {
			eng.SetTracer(fresh())
		}
		if b != nil {
			b.StartTimer()
		}
	}
}

// BenchmarkTracerDisabled measures the submit path with tracing off — the
// cost every production caller pays. Compare with BenchmarkTracerEnabled:
// the disabled path must stay a small fraction of the enabled one.
func BenchmarkTracerDisabled(b *testing.B) {
	eng := NewEngine(1)
	defer eng.Close()
	b.ResetTimer()
	submitBatches(b, eng, b.N, nil)
}

// BenchmarkTracerEnabled measures the same path with a live tracer
// recording the full request lifecycle.
func BenchmarkTracerEnabled(b *testing.B) {
	eng := NewEngine(1)
	defer eng.Close()
	eng.SetTracer(trace.New())
	b.ResetTimer()
	submitBatches(b, eng, b.N, trace.New)
}

// TestTracerDisabledOverhead pins the tentpole's zero-cost promise: with a
// nil tracer the submit path must be decisively cheaper than with tracing
// on. The ratio is generous (0.8) because the absolute numbers are tiny
// and shared-CI hosts are noisy; several attempts damp scheduler flukes.
// Skipped under -race (instrumentation distorts both sides by different
// factors) and -short.
func TestTracerDisabledOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("timing ratios are meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	const ops = 40_000
	run := func(enabled bool) time.Duration {
		eng := NewEngine(1)
		defer eng.Close()
		var fresh func() *trace.Tracer
		if enabled {
			eng.SetTracer(trace.New())
			fresh = trace.New
		}
		submitBatches(nil, eng, ops/4, fresh) // warm up the pool
		start := time.Now()
		submitBatches(nil, eng, ops, fresh)
		return time.Since(start)
	}
	var disabled, enabled time.Duration
	for attempt := 0; attempt < 5; attempt++ {
		disabled, enabled = run(false), run(true)
		if disabled < enabled*8/10 {
			return
		}
	}
	t.Errorf("disabled tracer path not meaningfully cheaper: disabled=%v enabled=%v", disabled, enabled)
}
