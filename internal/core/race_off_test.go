//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build.
// The tracer-overhead test asserts a timing ratio between the disabled
// and enabled submit paths; race instrumentation inflates both sides by
// different factors, so the ratio assertion is skipped under -race while
// the stress/invariant tests still run.
const raceEnabled = false
