// Package core implements SEMPLAR's contribution as described in the
// paper: asynchronous remote I/O primitives layered over synchronous SRB
// operations, built from a compute-thread/I-O-thread pair sharing a FIFO
// I/O queue (Figure 2); striping of a file handle across multiple
// concurrent TCP streams; and pipelined on-the-fly LZO compression.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"semplar/internal/trace"
)

// ErrEngineClosed is returned by Submit after Close.
var ErrEngineClosed = errors.New("core: async engine closed")

// Request is the handle returned by nonblocking operations — the MPIO
// request object behind MPI_File_iread/iwrite. The compute thread may poll
// it with Test or block in Wait.
type Request struct {
	done chan struct{}
	n    int
	err  error
}

func newRequest() *Request {
	return &Request{done: make(chan struct{})}
}

func (r *Request) complete(n int, err error) {
	r.n = n
	r.err = err
	close(r.done)
}

// Wait blocks until the operation finishes and returns its result
// (MPIO_Wait).
func (r *Request) Wait() (int, error) {
	<-r.done
	return r.n, r.err
}

// Test reports whether the operation has finished without blocking
// (MPIO_Test); n and err are valid only when done is true.
func (r *Request) Test() (n int, err error, done bool) {
	select {
	case <-r.done:
		return r.n, r.err, true
	default:
		return 0, nil, false
	}
}

// Done returns a channel closed on completion, for use with select.
func (r *Request) Done() <-chan struct{} { return r.done }

// completedRequest returns an already-finished request (error path).
func completedRequest(n int, err error) *Request {
	r := newRequest()
	r.complete(n, err)
	return r
}

// FailedRequest returns a request that has already completed with err,
// for layers that must report errors through the nonblocking interface.
func FailedRequest(err error) *Request { return completedRequest(0, err) }

// EngineStats are cumulative counters of one engine's activity.
type EngineStats struct {
	Submitted int64
	Completed int64
	Spawned   int64 // I/O threads created
}

// Engine implements the multi-threaded asynchronous I/O design of Section
// 4.2/4.3: callers enqueue the corresponding synchronous operation as a
// closure; dedicated I/O threads dequeue in FIFO order and execute it. The
// threads suspend on a condition variable when the queue is empty and are
// signaled on enqueue — no busy waiting. Threads are spawned lazily on the
// first asynchronous call, as in SEMPLAR.
type Engine struct {
	mu      sync.Mutex
	cond    *sync.Cond // signals queue/pool changes; immutable after NewEngine
	queue   []*task    // guarded by mu
	threads int        // configured pool size; immutable after NewEngine
	running int        // guarded by mu; spawned threads
	idle    int        // guarded by mu; threads waiting on the condition variable
	active  int        // guarded by mu; tasks executing right now
	closed  bool       // guarded by mu

	submitted atomic.Int64
	completed atomic.Int64
	spawned   atomic.Int64

	tracer *trace.Tracer // guarded by mu; nil = tracing off
}

type task struct {
	fn  func() (int, error)
	req *Request

	// Tracing context, captured at Submit so the I/O thread never reads
	// the engine's tracer field. id is the request's trace lane; queued
	// spans submit → dispatch.
	tr     *trace.Tracer
	id     int64
	queued trace.Span
}

// NewEngine returns an engine with the given I/O-thread pool size.
// threads < 1 is treated as 1 (the single-I/O-thread configuration used
// for the overlap experiments; Figure 8 uses one thread per connection).
func NewEngine(threads int) *Engine {
	if threads < 1 {
		threads = 1
	}
	e := &Engine{threads: threads}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Threads reports the configured pool size.
func (e *Engine) Threads() int { return e.threads }

// Names of the engine's trace metrics. The gauges plot over time in the
// exported trace; the counters are monotonic totals.
const (
	GaugeQueueDepth = "engine.queue"     // requests enqueued, not yet dispatched
	GaugeInflight   = "engine.inflight"  // requests executing right now
	CountSubmitted  = "engine.submitted" // total Submit calls accepted
	CountCompleted  = "engine.completed" // total requests completed
)

// SetTracer installs the request-lifecycle tracer. Call it before the
// first Submit; a nil tracer (the default) records nothing and keeps the
// submit path on its guarded fast path.
func (e *Engine) SetTracer(tr *trace.Tracer) {
	e.mu.Lock()
	e.tracer = tr
	e.mu.Unlock()
}

// Tracer returns the installed tracer (nil when tracing is off or the
// engine itself is nil, as in synchronous compress paths).
func (e *Engine) Tracer() *trace.Tracer {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Submitted: e.submitted.Load(),
		Completed: e.completed.Load(),
		Spawned:   e.spawned.Load(),
	}
}

// Submit enqueues the synchronous operation fn and returns immediately
// with a Request tracking it. fn's (n, error) result becomes the request's
// result.
func (e *Engine) Submit(fn func() (int, error)) *Request {
	req := newRequest()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return completedRequest(0, ErrEngineClosed)
	}
	t := &task{fn: fn, req: req}
	if tr := e.tracer; tr.Enabled() {
		// All submit-side events are recorded under e.mu, so their order in
		// the trace matches queue order exactly.
		t.tr = tr
		t.id = tr.NextID()
		t.queued = tr.Begin("engine", "queued", t.id)
		tr.Gauge(GaugeQueueDepth, 1)
		tr.Count(CountSubmitted, 1)
	}
	e.queue = append(e.queue, t)
	// Lazily grow the pool: spawn another I/O thread only when all
	// existing ones are busy and we are under the configured size.
	if e.running < e.threads && e.idle == 0 {
		e.running++
		e.spawned.Add(1)
		go e.ioThread()
	}
	e.submitted.Add(1)
	// The compute thread signals the I/O threads whenever it places a
	// new request in the queue.
	e.cond.Signal()
	e.mu.Unlock()
	return req
}

func (e *Engine) ioThread() {
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			// Suspend until signaled; avoids polling the queue.
			e.idle++
			e.cond.Wait()
			e.idle--
		}
		if len(e.queue) == 0 && e.closed {
			e.running--
			e.cond.Broadcast()
			e.mu.Unlock()
			return
		}
		t := e.queue[0]
		e.queue[0] = nil
		e.queue = e.queue[1:]
		e.active++
		if t.tr.Enabled() {
			// Dequeue events are recorded under e.mu for the same reason as
			// submit events: dispatch order is trace order.
			t.queued.End()
			t.tr.Gauge(GaugeQueueDepth, -1)
			t.tr.Gauge(GaugeInflight, 1)
		}
		e.mu.Unlock()

		runTask(t)

		e.mu.Lock()
		e.active--
		e.completed.Add(1)
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// runTask executes one queued operation, converting a panic in the
// operation into a failed request instead of killing the I/O thread (which
// would strand the request's waiter forever and shrink the pool).
//
// Trace ordering: the run span ends and the gauges settle strictly before
// req.complete, so a compute thread woken by Wait can never observe (or
// record) events that precede this request's completion events.
func runTask(t *task) {
	sp := t.tr.Begin("engine", "run", t.id)
	defer func() {
		if r := recover(); r != nil {
			finishTask(t, sp, 0, "panic")
			t.req.complete(0, fmt.Errorf("core: async operation panicked: %v", r))
		}
	}()
	n, err := t.fn()
	status := "ok"
	if err != nil {
		status = "error"
	}
	finishTask(t, sp, n, status)
	t.req.complete(n, err)
}

// finishTask records the completion events for one task.
func finishTask(t *task, sp trace.Span, n int, status string) {
	if !t.tr.Enabled() {
		return
	}
	sp.End(trace.Int("n", int64(n)), trace.Str("status", status))
	t.tr.Gauge(GaugeInflight, -1)
	t.tr.Count(CountCompleted, 1)
}

// Drain blocks until every submitted operation has completed.
func (e *Engine) Drain() {
	e.mu.Lock()
	for len(e.queue) > 0 || e.active > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Close drains outstanding work, stops the I/O threads and rejects
// further submissions. It is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		// Still wait for threads to exit.
		for e.running > 0 {
			e.cond.Wait()
		}
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	for len(e.queue) > 0 || e.active > 0 || e.running > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}
