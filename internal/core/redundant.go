package core

import (
	"io"
)

// ReadAtRedundant implements the redundancy use of striping sketched in
// Section 4.1: the same read is issued concurrently on every TCP stream
// and the first completed result is accepted, the others ignored. On paths
// with latency variation (or a stalled stream) this trades bandwidth for
// lower and more predictable read latency.
func (f *srbFile) ReadAtRedundant(p []byte, off int64) (int, error) {
	if len(f.streams) == 1 {
		return f.doOp(f.streams[0], false, p, off)
	}
	type result struct {
		n   int
		err error
		buf []byte
	}
	// Buffered so stragglers can complete and be garbage collected
	// without leaking goroutines.
	ch := make(chan result, len(f.streams))
	for _, s := range f.streams {
		go func(s *stream) {
			buf := make([]byte, len(p))
			n, err := f.doOp(s, false, buf, off)
			ch <- result{n: n, err: err, buf: buf}
		}(s)
	}
	var lastErr error
	for range f.streams {
		r := <-ch
		if r.err == nil || r.err == io.EOF {
			copy(p, r.buf[:r.n])
			return r.n, r.err
		}
		lastErr = r.err
	}
	return 0, lastErr
}

// RedundantReader is implemented by files that can satisfy a read from
// whichever of several redundant streams answers first.
type RedundantReader interface {
	ReadAtRedundant(p []byte, off int64) (int, error)
}

var _ RedundantReader = (*srbFile)(nil)
