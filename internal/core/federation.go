package core

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"semplar/internal/adio"
	"semplar/internal/mcat"
	"semplar/internal/srb"
	"semplar/internal/trace"
)

// This file is the federation routing layer between the ADIO surface and
// the per-server SRB client pools: where SRBFS stripes one file across the
// TCP streams of a single server, FedFS stripes it across N servers, with
// the MCAT's Placer deciding which servers hold which stripe slots and in
// what replica order.
//
// Layout. A file with placement width W and stripe size S is cut into
// global blocks of S bytes; block b belongs to slot b%W, and the blocks of
// one slot pack densely into a per-slot file on each of the slot's
// servers (SlotPath). Global offset g therefore maps to local offset
// (b/W)*S + g%S of slot b%W, b = g/S — RAID-0 addressing. Dense slot
// files make every replica of a slot bit-identical, so the server-side
// Checksum RPC is directly comparable across a replica set.
//
// Consistency. Writes go to every server of a slot's replica set before
// the write returns (sync replication), or to the primary only with
// replicas trailing in the background (async replication; Sync/Close
// drain the backlog and surface the first replication failure). Reads go
// to the primary and fail over through the replicas in placement order on
// any error except io.EOF — EOF from a healthy server is a result, not a
// failure. Each per-server pool is a full SRBFS handle, so cross-server
// failover reuses the single-server retry classification, reconnect
// budgets and write coalescing unchanged: a dead shard is just another
// transient until its budget runs out.

// Endpoint names one SRB server of the federation and how to reach it.
// Name must match the name the Placer knows the server by.
type Endpoint struct {
	Name string
	Dial DialFunc
}

// FedConfig configures the federated ADIO driver.
type FedConfig struct {
	// Endpoints is the server fleet. Every server the Placer may name in
	// a placement must appear here.
	Endpoints []Endpoint
	// Placer is the MCAT placement service directing stripes to servers.
	Placer *mcat.Placer
	// Width is the desired stripe-slot count per file (clamped by the
	// Placer to the fleet size). Default: len(Endpoints).
	Width int
	// Async switches replica writes from synchronous (every replica
	// acknowledged before WriteAt returns) to asynchronous (primary only;
	// replicas catch up in the background, drained by Sync/Close).
	Async bool

	// The remaining fields configure each per-server SRBFS pool; see
	// SRBFSConfig for their semantics.
	User            string
	Tenant          srb.Credentials
	Resource        string
	Streams         int
	StripeSize      int
	Retry           srb.RetryPolicy
	ReconnectBudget int
	Tracer          *trace.Tracer
	DisableCoalesce bool
}

// FedFS is the federated ADIO driver: one SRBFS pool per server endpoint,
// with stripe-slot routing between them.
type FedFS struct {
	cfg    FedConfig
	stripe int64
	subs   map[string]*SRBFS // per-endpoint single-server drivers; immutable
}

var _ adio.Driver = (*FedFS)(nil)

// NewFedFS validates the config and builds the per-endpoint pools.
func NewFedFS(cfg FedConfig) (*FedFS, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("core: FedFS needs at least one endpoint")
	}
	if cfg.Placer == nil {
		return nil, fmt.Errorf("core: FedFS needs a Placer")
	}
	if cfg.Width <= 0 {
		cfg.Width = len(cfg.Endpoints)
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = DefaultStripeSize
	}
	subs := make(map[string]*SRBFS, len(cfg.Endpoints))
	for _, ep := range cfg.Endpoints {
		if ep.Name == "" || ep.Dial == nil {
			return nil, fmt.Errorf("core: federation endpoint needs a name and a dialer")
		}
		if _, dup := subs[ep.Name]; dup {
			return nil, fmt.Errorf("core: duplicate federation endpoint %q", ep.Name)
		}
		sub, err := NewSRBFS(SRBFSConfig{
			Dial:            ep.Dial,
			User:            cfg.User,
			Tenant:          cfg.Tenant,
			Resource:        cfg.Resource,
			Streams:         cfg.Streams,
			StripeSize:      cfg.StripeSize,
			Retry:           cfg.Retry,
			ReconnectBudget: cfg.ReconnectBudget,
			Tracer:          cfg.Tracer,
			DisableCoalesce: cfg.DisableCoalesce,
		})
		if err != nil {
			return nil, err
		}
		subs[ep.Name] = sub
	}
	return &FedFS{cfg: cfg, stripe: int64(cfg.StripeSize), subs: subs}, nil
}

// Name implements adio.Driver.
func (d *FedFS) Name() string { return "srbfed" }

// SlotPath names the per-slot file holding one stripe slot's dense bytes
// on each server of its replica set.
func SlotPath(path string, slot int) string {
	return fmt.Sprintf("%s.s%d", path, slot)
}

// Delete implements adio.Driver: the slot files are unlinked on every
// server of every slot's replica set.
func (d *FedFS) Delete(path string) error {
	slots, ok := d.cfg.Placer.Lookup(path)
	if !ok {
		return fmt.Errorf("%w: no placement for %s", srb.ErrNotFound, path)
	}
	var first error
	for slot, servers := range slots {
		for _, server := range servers {
			err := d.subs[server].Delete(SlotPath(path, slot))
			if err != nil && !errors.Is(err, srb.ErrNotFound) && first == nil {
				first = err
			}
		}
	}
	return first
}

// Open implements adio.Driver. The placement is decided (or recalled) by
// the Placer; per-slot server handles open lazily on first use, except
// that truncating or exclusive opens touch every slot file up front —
// O_TRUNC must empty all slots now, not whenever a slot is next written.
// Supported hints: "streams" and "stripe_size", as for SRBFS.
func (d *FedFS) Open(path string, flags int, hints adio.Hints) (adio.File, error) {
	stripe := d.stripe
	if v := hints.Get("stripe_size", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad stripe_size hint %q", v)
		}
		stripe = int64(n)
	}
	slots, err := d.cfg.Placer.Place(path, d.cfg.Width)
	if err != nil {
		return nil, fmt.Errorf("core: place %s: %w", path, err)
	}
	for _, servers := range slots {
		for _, server := range servers {
			if _, ok := d.subs[server]; !ok {
				return nil, fmt.Errorf("core: placement names unknown endpoint %q for %s", server, path)
			}
		}
	}
	f := &fedFile{
		fs:        d,
		path:      path,
		stripe:    stripe,
		width:     len(slots),
		slots:     slots,
		hints:     hints,
		lazyFlags: flags &^ (adio.O_TRUNC | adio.O_EXCL),
		async:     d.cfg.Async,
		handles:   make(map[handleKey]adio.File),
		repSem:    make(chan struct{}, fedReplicaDepth),
	}
	if flags&(adio.O_TRUNC|adio.O_EXCL) != 0 {
		for slot, servers := range slots {
			for _, server := range servers {
				h, err := d.subs[server].Open(SlotPath(path, slot), flags, hints)
				if err != nil {
					//lint:allow errdrop -- unwinding a partially-opened slot set; the open error is returned
					f.Close()
					return nil, err
				}
				f.handles[handleKey{server, slot}] = h
			}
		}
	}
	return f, nil
}

// handleKey addresses one per-slot file handle on one server.
type handleKey struct {
	server string
	slot   int
}

// fedPipelineDepth bounds concurrent slot-stripe operations in flight per
// federated call — enough to keep every endpoint's pipeline fed without
// unbounded fan-out.
const fedPipelineDepth = 16

// fedReplicaDepth bounds outstanding background replica writes per handle
// in async mode.
const fedReplicaDepth = 16

// fedFile is one open federated handle: a lazily-populated map of
// per-(server, slot) SRBFS handles, RAID-0 offset translation between the
// global file and the dense slot files, and the replication machinery.
type fedFile struct {
	fs        *FedFS
	path      string
	stripe    int64
	width     int
	slots     []mcat.ReplicaSet
	hints     adio.Hints
	lazyFlags int
	async     bool

	mu      sync.Mutex
	closed  bool                    // guarded by mu
	handles map[handleKey]adio.File // guarded by mu; lazily opened

	// Background replication state (async mode): repWG tracks trailing
	// replica writes, repSem bounds them, repErr holds the first failure
	// until Sync or Close surfaces it.
	repWG  sync.WaitGroup
	repSem chan struct{}
	repMu  sync.Mutex
	repErr error // guarded by repMu
}

var _ adio.File = (*fedFile)(nil)
var _ FaultReporter = (*fedFile)(nil)

// getHandle returns the (server, slot) handle, opening it on first use.
// The open happens outside the handle lock; a lost race closes the extra.
func (f *fedFile) getHandle(server string, slot int) (adio.File, error) {
	key := handleKey{server, slot}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: federated handle closed", srb.ErrInvalid)
	}
	if h, ok := f.handles[key]; ok {
		f.mu.Unlock()
		return h, nil
	}
	f.mu.Unlock()
	h, err := f.fs.subs[server].Open(SlotPath(f.path, slot), f.lazyFlags, f.hints)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		//lint:allow errdrop -- the handle raced Close; nothing to report
		h.Close()
		return nil, fmt.Errorf("%w: federated handle closed", srb.ErrInvalid)
	}
	if prev, ok := f.handles[key]; ok {
		f.mu.Unlock()
		//lint:allow errdrop -- a concurrent op opened the same slot handle first
		h.Close()
		return prev, nil
	}
	f.handles[key] = h
	f.mu.Unlock()
	return h, nil
}

// fedOp is one stripe-sized piece of a federated transfer.
type fedOp struct {
	slot int
	gOff int64 // global file offset (error reporting)
	lOff int64 // offset inside the slot file
	buf  []byte
}

// splitFed cuts [off, off+len(p)) on stripe boundaries and translates
// each piece to its slot file: global block b -> slot b%width, local
// offset (b/width)*stripe + in-block remainder.
func (f *fedFile) splitFed(p []byte, off int64) []fedOp {
	var ops []fedOp
	for len(p) > 0 {
		blk := off / f.stripe
		end := (blk + 1) * f.stripe
		take := end - off
		if take > int64(len(p)) {
			take = int64(len(p))
		}
		ops = append(ops, fedOp{
			slot: int(blk % int64(f.width)),
			gOff: off,
			lOff: (blk/int64(f.width))*f.stripe + (off - blk*f.stripe),
			buf:  p[:take],
		})
		p = p[take:]
		off += take
	}
	return ops
}

// slotSpan reports how many bytes of a global prefix [0, size) land on
// one slot — the dense length of that slot's file.
func slotSpan(size, stripe int64, width, slot int) int64 {
	if size <= 0 {
		return 0
	}
	full := size / stripe
	rem := size % stripe
	n := (full / int64(width)) * stripe
	switch at := int(full % int64(width)); {
	case at > slot:
		n += stripe
	case at == slot:
		n += rem
	}
	return n
}

// slotEnd is the inverse: the smallest global size whose slot file holds
// local bytes [0, local).
func slotEnd(local, stripe int64, width, slot int) int64 {
	if local <= 0 {
		return 0
	}
	last := local - 1
	gblk := (last/stripe)*int64(width) + int64(slot)
	return gblk*stripe + last%stripe + 1
}

// WriteAt implements adio.File. Each stripe is written to its slot's
// replica set — every server before returning in sync mode, the primary
// only in async mode with replicas queued behind repWG. On error the
// returned count is the contiguous prefix confirmed on every required
// replica; stripes past the first failure are excluded even if they
// succeeded out of order, the same contract as the single-server path.
func (f *fedFile) WriteAt(p []byte, off int64) (int, error) {
	ops := f.splitFed(p, off)
	// results[i][r]: op i on replica r of its slot (async: primary only).
	results := make([][]opResult, len(ops))
	var wg sync.WaitGroup
	sem := make(chan struct{}, fedPipelineDepth)
	for i, o := range ops {
		servers := f.slots[o.slot]
		syncN := len(servers)
		if f.async {
			syncN = 1
		}
		results[i] = make([]opResult, syncN)
		for r := 0; r < syncN; r++ {
			sem <- struct{}{}
			wg.Add(1)
			go func(i, r int, server string, o fedOp) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i][r] = f.writeOne(server, o)
			}(i, r, servers[r], o)
		}
		if f.async {
			for _, server := range servers[1:] {
				f.queueReplica(server, o)
			}
		}
	}
	wg.Wait()

	total := 0
	for i, o := range ops {
		n := len(o.buf)
		var err error
		for _, r := range results[i] {
			if r.n < n {
				n = r.n
			}
			if r.err != nil && err == nil {
				err = r.err
			}
		}
		total += n
		if err != nil {
			return total, fmt.Errorf("core: federated write at %d (slot %d): %w", o.gOff, o.slot, err)
		}
		if n < len(o.buf) {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// writeOne writes one stripe to one server's slot file.
func (f *fedFile) writeOne(server string, o fedOp) opResult {
	h, err := f.getHandle(server, o.slot)
	if err != nil {
		return opResult{n: 0, err: err}
	}
	n, err := h.WriteAt(o.buf, o.lOff)
	return opResult{n: n, err: err}
}

// queueReplica schedules one trailing replica write (async mode). The
// stripe is copied — the caller owns its buffer again as soon as WriteAt
// returns. Trailing writes of one WriteAt may reorder against another
// in-flight WriteAt; overlapping writers that need ordering use sync
// replication. The first failure is held for Sync/Close.
func (f *fedFile) queueReplica(server string, o fedOp) {
	data := append([]byte(nil), o.buf...)
	f.repSem <- struct{}{}
	f.repWG.Add(1)
	go func() {
		defer f.repWG.Done()
		defer func() { <-f.repSem }()
		h, err := f.getHandle(server, o.slot)
		if err == nil {
			_, err = h.WriteAt(data, o.lOff)
		}
		if err != nil {
			f.repMu.Lock()
			if f.repErr == nil {
				f.repErr = fmt.Errorf("core: async replica %s slot %d at %d: %w",
					server, o.slot, o.gOff, err)
			}
			f.repMu.Unlock()
		}
	}()
}

// ReadAt implements adio.File. Each stripe reads from its slot's primary
// and fails over through the replicas in placement order; a failed-over
// stripe counts fully toward the contiguous prefix. Short reads report
// the contiguous prefix actually available, with io.EOF when it ends
// before len(p).
func (f *fedFile) ReadAt(p []byte, off int64) (int, error) {
	ops := f.splitFed(p, off)
	results := make([]opResult, len(ops))
	var wg sync.WaitGroup
	sem := make(chan struct{}, fedPipelineDepth)
	for i, o := range ops {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, o fedOp) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = f.readOne(o)
		}(i, o)
	}
	wg.Wait()

	total := 0
	for i, r := range results {
		total += r.n
		if r.err != nil && r.err != io.EOF {
			return total, fmt.Errorf("core: federated read at %d (slot %d): %w",
				ops[i].gOff, ops[i].slot, r.err)
		}
		if r.n < len(ops[i].buf) {
			return total, io.EOF
		}
	}
	return total, nil
}

// readOne reads one stripe, failing over across the slot's replica set.
// io.EOF does not fail over: a healthy server saying "the file ends here"
// is a result; shopping the same question to a replica could only return
// stale bytes (async mode) or the same answer (sync mode).
func (f *fedFile) readOne(o fedOp) opResult {
	var lastErr error = errStreamDown
	for _, server := range f.slots[o.slot] {
		h, err := f.getHandle(server, o.slot)
		if err != nil {
			lastErr = err
			continue
		}
		n, err := h.ReadAt(o.buf, o.lOff)
		if err == nil || errors.Is(err, io.EOF) {
			return opResult{n: n, err: err}
		}
		lastErr = err
	}
	return opResult{n: 0, err: lastErr}
}

// Size implements adio.File: the global size is the maximum inverse-mapped
// end across the slot files (each sized via primary-then-replica failover).
func (f *fedFile) Size() (int64, error) {
	var size int64
	for slot := range f.slots {
		local, err := f.slotSize(slot)
		if err != nil {
			return 0, err
		}
		if end := slotEnd(local, f.stripe, f.width, slot); end > size {
			size = end
		}
	}
	return size, nil
}

func (f *fedFile) slotSize(slot int) (int64, error) {
	var lastErr error = errStreamDown
	for _, server := range f.slots[slot] {
		h, err := f.getHandle(server, slot)
		if err != nil {
			lastErr = err
			continue
		}
		n, err := h.Size()
		if err == nil {
			return n, nil
		}
		lastErr = err
	}
	return 0, lastErr
}

// Truncate implements adio.File, cutting every slot file on every replica
// to its share of the new size. The async backlog is drained first so a
// trailing replica write cannot resurrect truncated bytes.
func (f *fedFile) Truncate(size int64) error {
	f.repWG.Wait()
	for slot, servers := range f.slots {
		local := slotSpan(size, f.stripe, f.width, slot)
		for _, server := range servers {
			h, err := f.getHandle(server, slot)
			if err != nil {
				return err
			}
			if err := h.Truncate(local); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync implements adio.File: the async replication backlog is drained,
// the first replication failure (if any) surfaces here, and every open
// slot handle syncs. After a successful Sync the replica sets are
// convergent — the async divergence window is closed.
func (f *fedFile) Sync() error {
	f.repWG.Wait()
	f.repMu.Lock()
	err := f.repErr
	f.repMu.Unlock()
	if err != nil {
		return err
	}
	for _, h := range f.openHandles() {
		if err := h.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// openHandles snapshots the live slot handles.
func (f *fedFile) openHandles() []adio.File {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]adio.File, 0, len(f.handles))
	for _, h := range f.handles {
		out = append(out, h)
	}
	return out
}

// FaultStats implements FaultReporter, aggregating across every slot
// handle's single-server pool.
func (f *fedFile) FaultStats() FaultStats {
	var st FaultStats
	for _, h := range f.openHandles() {
		if fr, ok := h.(FaultReporter); ok {
			sub := fr.FaultStats()
			st.Reconnects += sub.Reconnects
			st.RetriedOps += sub.RetriedOps
			st.BudgetLeft += sub.BudgetLeft
		}
	}
	return st
}

// Close implements adio.File: the async backlog drains, every slot handle
// closes, and the first error — a held replication failure first — is
// returned.
func (f *fedFile) Close() error {
	f.repWG.Wait()
	f.mu.Lock()
	f.closed = true
	handles := f.handles
	f.handles = nil
	f.mu.Unlock()
	f.repMu.Lock()
	first := f.repErr
	f.repMu.Unlock()
	for _, h := range handles {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
