package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"

	"semplar/internal/adio"
	"semplar/internal/mcat"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

// fedCluster is an in-process federation fixture: N independent SRB
// servers, each reachable through a dialer that can be cut (down flag),
// and a placer that knows them as s0..s{N-1}.
type fedCluster struct {
	names   []string
	servers map[string]*srb.Server
	down    map[string]*atomic.Bool
	placer  *mcat.Placer
}

func newFedCluster(n, replicas int) *fedCluster {
	fc := &fedCluster{
		servers: make(map[string]*srb.Server),
		down:    make(map[string]*atomic.Bool),
		placer:  mcat.NewPlacer(replicas),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		fc.names = append(fc.names, name)
		fc.servers[name] = srb.NewMemServer(storage.DeviceSpec{})
		fc.down[name] = &atomic.Bool{}
		fc.placer.AddServer(name)
	}
	return fc
}

func (fc *fedCluster) endpoints() []Endpoint {
	eps := make([]Endpoint, 0, len(fc.names))
	for _, name := range fc.names {
		srv, down := fc.servers[name], fc.down[name]
		eps = append(eps, Endpoint{Name: name, Dial: func() (net.Conn, error) {
			if down.Load() {
				return nil, fmt.Errorf("fedtest: %s unreachable", name)
			}
			c, s := netsim.Pipe(0, nil, nil)
			go srv.ServeConn(s)
			return c, nil
		}})
	}
	return eps
}

func (fc *fedCluster) fs(t *testing.T, cfg FedConfig) *FedFS {
	t.Helper()
	cfg.Endpoints = fc.endpoints()
	cfg.Placer = fc.placer
	fs, err := NewFedFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// mkdirAll creates the collection on every server: slot files of a path
// land under the same parent on each shard that holds a replica.
func (fc *fedCluster) mkdirAll(t *testing.T, dir string) {
	t.Helper()
	for _, name := range fc.names {
		if err := fc.servers[name].Catalog().MkdirAll(dir); err != nil {
			t.Fatalf("mkdir %s on %s: %v", dir, name, err)
		}
	}
}

func TestSlotLayoutMath(t *testing.T) {
	const stripe, width = 4, 3
	f := &fedFile{stripe: stripe, width: width}

	// splitFed tiles [off, off+len) without gaps, round-robins slots, and
	// each op's local offset is exactly the bytes its slot holds before
	// gOff — which is slotSpan of a hypothetical file ending at gOff.
	buf := make([]byte, 37)
	off := int64(2) // straddles the first stripe boundary
	want := off
	for _, o := range f.splitFed(buf, off) {
		if o.gOff != want {
			t.Fatalf("op at %d, want %d", o.gOff, want)
		}
		if got := int((o.gOff / stripe) % width); got != o.slot {
			t.Fatalf("op at %d on slot %d, want %d", o.gOff, o.slot, got)
		}
		if got := slotSpan(o.gOff, stripe, width, o.slot); got != o.lOff {
			t.Fatalf("op at %d: lOff %d, slotSpan %d", o.gOff, o.lOff, got)
		}
		if int64(len(o.buf)) > stripe {
			t.Fatalf("op at %d spans %d bytes, stripe is %d", o.gOff, len(o.buf), stripe)
		}
		want += int64(len(o.buf))
	}
	if want != off+int64(len(buf)) {
		t.Fatalf("ops cover %d bytes, want %d", want-off, len(buf))
	}

	// slotSpan partitions any size across the slots; slotEnd inverts it.
	for size := int64(0); size <= 40; size++ {
		var total int64
		for slot := 0; slot < width; slot++ {
			local := slotSpan(size, stripe, width, slot)
			total += local
			if end := slotEnd(local, stripe, width, slot); end > size {
				t.Fatalf("slotEnd(%d, slot %d) = %d > size %d", local, slot, end, size)
			}
		}
		if total != size {
			t.Fatalf("slotSpan partition of %d sums to %d", size, total)
		}
		// The max inverse across slots recovers the exact size.
		var back int64
		for slot := 0; slot < width; slot++ {
			if end := slotEnd(slotSpan(size, stripe, width, slot), stripe, width, slot); end > back {
				back = end
			}
		}
		if back != size {
			t.Fatalf("size %d inverted to %d", size, back)
		}
	}
}

func TestFedWriteReadRoundTrip(t *testing.T) {
	fc := newFedCluster(3, 2)
	fc.mkdirAll(t, "/fed")
	fs := fc.fs(t, FedConfig{StripeSize: 1 << 10, Streams: 2})

	content := make([]byte, 10<<10+123) // not a stripe multiple
	rand.New(rand.NewSource(8)).Read(content)

	f, err := fs.Open("/fed/data", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.WriteAt(content, 0); err != nil || n != len(content) {
		t.Fatalf("write = %d, %v", n, err)
	}
	if sz, err := f.Size(); err != nil || sz != int64(len(content)) {
		t.Fatalf("size = %d, %v (want %d)", sz, err, len(content))
	}
	got := make([]byte, len(content))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(content) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("round trip corrupted content")
	}
	// An unaligned interior read crossing several slots.
	mid := make([]byte, 3000)
	if n, err := f.ReadAt(mid, 777); err != nil || n != len(mid) {
		t.Fatalf("interior read = %d, %v", n, err)
	}
	if !bytes.Equal(mid, content[777:777+3000]) {
		t.Fatal("interior read corrupted")
	}
	// Reading past the end yields the contiguous prefix and io.EOF.
	over := make([]byte, 4096)
	n, err := f.ReadAt(over, int64(len(content))-100)
	if n != 100 || !errors.Is(err, io.EOF) {
		t.Fatalf("tail read = %d, %v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Every slot file is dense: replica sets hold bit-identical copies,
	// so the placement's servers agree byte-for-byte per slot.
	slots, ok := fc.placer.Lookup("/fed/data")
	if !ok || len(slots) != 3 {
		t.Fatalf("placement = %v, %v", slots, ok)
	}
	for slot, servers := range slots {
		if len(servers) != 2 {
			t.Fatalf("slot %d replica set %v", slot, servers)
		}
		wantLocal := slotSpan(int64(len(content)), 1<<10, 3, slot)
		for _, server := range servers {
			e, err := fc.servers[server].Catalog().Lookup(SlotPath("/fed/data", slot))
			if err != nil {
				t.Fatalf("slot %d missing on %s: %v", slot, server, err)
			}
			if e.Size != wantLocal {
				t.Fatalf("slot %d on %s: size %d, want %d", slot, server, e.Size, wantLocal)
			}
		}
	}

	if err := fs.Delete("/fed/data"); err != nil {
		t.Fatal(err)
	}
	for slot, servers := range slots {
		for _, server := range servers {
			if _, err := fc.servers[server].Catalog().Lookup(SlotPath("/fed/data", slot)); err == nil {
				t.Fatalf("slot %d survived delete on %s", slot, server)
			}
		}
	}
}

// TestFedReadFailoverCountsFullPrefix is the regression for the
// stripe-error aggregation audit: a stripe whose primary is unreachable
// but whose replica serves it must count FULLY toward the contiguous
// prefix — a naive aggregator that charged the primary's failure against
// the prefix would truncate a read that actually succeeded end to end.
func TestFedReadFailoverCountsFullPrefix(t *testing.T) {
	const stripe = 1 << 10
	fc := newFedCluster(3, 2)
	fc.mkdirAll(t, "/fed")
	fs := fc.fs(t, FedConfig{StripeSize: stripe})

	content := make([]byte, 3*stripe)
	rand.New(rand.NewSource(9)).Read(content)
	f, err := fs.Open("/fed/ha", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Cut the middle slot's primary. Its replica — another live server —
	// must serve that stripe transparently.
	slots, _ := fc.placer.Lookup("/fed/ha")
	fc.down[slots[1].Primary()].Store(true)

	r, err := fs.Open("/fed/ha", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, len(content))
	n, err := r.ReadAt(got, 0)
	if err != nil || n != len(content) {
		t.Fatalf("failover read = %d, %v; want full %d", n, err, len(content))
	}
	if !bytes.Equal(got, content) {
		t.Fatal("failover read corrupted content")
	}
}

// TestFedReadPrefixStopsAtFailedStripe pins the other half of the
// contract: when a stripe has NO surviving copy, the reported count is
// the contiguous prefix before it — later stripes that succeeded out of
// order are excluded, exactly as on the single-server path.
func TestFedReadPrefixStopsAtFailedStripe(t *testing.T) {
	const stripe = 1 << 10
	fc := newFedCluster(3, 1) // no replicas: a dead server is a dead slot
	fc.mkdirAll(t, "/fed")
	fs := fc.fs(t, FedConfig{StripeSize: stripe})

	content := make([]byte, 3*stripe)
	rand.New(rand.NewSource(10)).Read(content)
	f, err := fs.Open("/fed/fragile", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	slots, _ := fc.placer.Lookup("/fed/fragile")
	fc.down[slots[1].Primary()].Store(true)

	r, err := fs.Open("/fed/fragile", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, len(content))
	n, err := r.ReadAt(got, 0)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("read with a dead slot succeeded (n=%d, err=%v)", n, err)
	}
	if n != stripe {
		t.Fatalf("prefix = %d, want %d (slot 0 only; slot 2's success must not count)", n, stripe)
	}
	if !bytes.Equal(got[:stripe], content[:stripe]) {
		t.Fatal("surviving prefix corrupted")
	}
}

// TestFedWritePrefixStopsAtFailedStripe: sync replication requires every
// replica; a write whose stripe cannot reach a replica reports the
// contiguous prefix confirmed everywhere before it.
func TestFedWritePrefixStopsAtFailedStripe(t *testing.T) {
	const stripe = 1 << 10
	fc := newFedCluster(3, 2)
	fc.mkdirAll(t, "/fed")
	fs := fc.fs(t, FedConfig{StripeSize: stripe})

	// Decide placement while healthy, then cut one server before writing.
	slots, err := fc.placer.Place("/fed/degraded", 3)
	if err != nil {
		t.Fatal(err)
	}
	dead := slots[1].Primary()
	firstHit := -1
	for slot, servers := range slots {
		for _, s := range servers {
			if s == dead {
				firstHit = slot
				break
			}
		}
		if firstHit >= 0 {
			break
		}
	}
	fc.down[dead].Store(true)

	f, err := fs.Open("/fed/degraded", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	content := make([]byte, 3*stripe)
	n, err := f.WriteAt(content, 0)
	if err == nil {
		t.Fatalf("sync write with a dead replica succeeded (n=%d)", n)
	}
	if want := firstHit * stripe; n != want {
		t.Fatalf("confirmed prefix = %d, want %d (first stripe touching %s)", n, want, dead)
	}
}

func TestFedTruncateAndReopen(t *testing.T) {
	const stripe = 512
	fc := newFedCluster(2, 1)
	fc.mkdirAll(t, "/fed")
	fs := fc.fs(t, FedConfig{StripeSize: stripe})

	content := make([]byte, 4*stripe)
	rand.New(rand.NewSource(11)).Read(content)
	f, err := fs.Open("/fed/t", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(1000); err != nil {
		t.Fatal(err)
	}
	if sz, err := f.Size(); err != nil || sz != 1000 {
		t.Fatalf("size after truncate = %d, %v", sz, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// O_TRUNC empties every slot file eagerly at open.
	f2, err := fs.Open("/fed/t", adio.O_RDWR|adio.O_TRUNC, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sz, err := f2.Size(); err != nil || sz != 0 {
		t.Fatalf("size after O_TRUNC = %d, %v", sz, err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
}
