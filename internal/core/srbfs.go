package core

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"

	"semplar/internal/adio"
	"semplar/internal/srb"
)

// DefaultStripeSize is the striping unit across TCP streams. Each stripe
// is one synchronous SRB request, so stripes must be large enough that the
// per-request WAN round trip is amortized; applications that issue one big
// write per I/O phase (the paper's pattern) want stripe ~ transfer/streams.
const DefaultStripeSize = 1 << 20

// DialFunc opens one new transport connection to the SRB server. Every
// stream of every open file gets its own connection — each with a separate
// endpoint, as in SEMPLAR.
type DialFunc func() (net.Conn, error)

// SRBFSConfig configures the SEMPLAR ADIO driver.
type SRBFSConfig struct {
	Dial     DialFunc
	User     string
	Resource string // server storage resource ("" = server default)
	// Streams is the default number of concurrent TCP streams per open
	// file handle (>= 1). The per-open hint "streams" overrides it.
	Streams int
	// StripeSize is the striping unit across streams; hint
	// "stripe_size" overrides it.
	StripeSize int
}

// SRBFS is the high-performance ADIO implementation for the SRB filesystem
// (Figure 1's SRBFS box). Opening a file establishes its TCP streams;
// closing it tears them down, mirroring MPI_File_open/close semantics.
type SRBFS struct {
	cfg SRBFSConfig
}

// NewSRBFS validates the config and returns the driver.
func NewSRBFS(cfg SRBFSConfig) (*SRBFS, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("core: SRBFS needs a Dial function")
	}
	if cfg.Streams < 1 {
		cfg.Streams = 1
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = DefaultStripeSize
	}
	if cfg.User == "" {
		cfg.User = "semplar"
	}
	return &SRBFS{cfg: cfg}, nil
}

// Name implements adio.Driver.
func (d *SRBFS) Name() string { return "srb" }

// Delete implements adio.Driver.
func (d *SRBFS) Delete(path string) error {
	conn, err := d.connect()
	if err != nil {
		return err
	}
	defer conn.Close()
	return conn.Unlink(path)
}

func (d *SRBFS) connect() (*srb.Conn, error) {
	raw, err := d.cfg.Dial()
	if err != nil {
		return nil, fmt.Errorf("core: dial SRB server: %w", err)
	}
	return srb.NewConn(raw, d.cfg.User)
}

// Open implements adio.Driver. Supported hints: "streams" (int) and
// "stripe_size" (bytes).
func (d *SRBFS) Open(path string, flags int, hints adio.Hints) (adio.File, error) {
	streams := d.cfg.Streams
	if v := hints.Get("streams", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad streams hint %q", v)
		}
		streams = n
	}
	stripe := d.cfg.StripeSize
	if v := hints.Get("stripe_size", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad stripe_size hint %q", v)
		}
		stripe = n
	}

	f := &srbFile{path: path, stripe: int64(stripe)}
	for i := 0; i < streams; i++ {
		conn, err := d.connect()
		if err != nil {
			f.Close()
			return nil, err
		}
		// Only the first stream may truncate or exclusive-create;
		// the rest reopen the now-existing file (O_CREATE is kept so
		// the open cannot race with another node's create).
		sf := flags
		if i > 0 {
			sf &^= adio.O_TRUNC | adio.O_EXCL
		}
		file, err := conn.Open(path, sf, d.cfg.Resource)
		if err != nil {
			conn.Close()
			f.Close()
			return nil, err
		}
		f.streams = append(f.streams, &stream{conn: conn, file: file})
	}
	return f, nil
}

type stream struct {
	conn *srb.Conn
	file *srb.File
}

// srbFile stripes one logical file handle over its TCP streams. With one
// stream it behaves like original SEMPLAR; with more, explicit-offset I/O
// is split on stripe boundaries and the pieces proceed concurrently, one
// goroutine per stream — the split-TCP optimization of Section 7.2.
type srbFile struct {
	path    string
	stripe  int64
	streams []*stream
}

var _ adio.File = (*srbFile)(nil)

// Streams reports how many TCP streams back this handle.
func (f *srbFile) Streams() int { return len(f.streams) }

// op is one contiguous piece of a striped transfer.
type op struct {
	stream int
	off    int64 // file offset
	buf    []byte
}

// splitStripes cuts [off, off+len(p)) on stripe boundaries and assigns
// each piece round-robin to a stream.
func (f *srbFile) splitStripes(p []byte, off int64) []op {
	n := len(f.streams)
	var ops []op
	for len(p) > 0 {
		blk := off / f.stripe
		end := (blk + 1) * f.stripe
		take := end - off
		if take > int64(len(p)) {
			take = int64(len(p))
		}
		ops = append(ops, op{
			stream: int(blk % int64(n)),
			off:    off,
			buf:    p[:take],
		})
		p = p[take:]
		off += take
	}
	return ops
}

// runStriped executes the ops concurrently, one worker per stream, each
// issuing its ops sequentially on its own connection.
func (f *srbFile) runStriped(ops []op, write bool) []opResult {
	results := make([]opResult, len(ops))
	byStream := make([][]int, len(f.streams))
	for i, o := range ops {
		byStream[o.stream] = append(byStream[o.stream], i)
	}
	var wg sync.WaitGroup
	for s, idxs := range byStream {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			file := f.streams[s].file
			for _, i := range idxs {
				o := ops[i]
				var n int
				var err error
				if write {
					n, err = file.WriteAt(o.buf, o.off)
				} else {
					n, err = file.ReadAt(o.buf, o.off)
				}
				results[i] = opResult{n: n, err: err}
			}
		}(s, idxs)
	}
	wg.Wait()
	return results
}

type opResult struct {
	n   int
	err error
}

// WriteAt implements adio.File, striping across the streams.
func (f *srbFile) WriteAt(p []byte, off int64) (int, error) {
	if len(f.streams) == 1 {
		return f.streams[0].file.WriteAt(p, off)
	}
	ops := f.splitStripes(p, off)
	results := f.runStriped(ops, true)
	total := 0
	for i, r := range results {
		total += r.n
		if r.err != nil {
			return total, fmt.Errorf("core: stripe write at %d: %w", ops[i].off, r.err)
		}
	}
	return total, nil
}

// ReadAt implements adio.File. Short reads report the contiguous prefix
// actually available, with io.EOF when it ends before len(p).
func (f *srbFile) ReadAt(p []byte, off int64) (int, error) {
	if len(f.streams) == 1 {
		return f.streams[0].file.ReadAt(p, off)
	}
	ops := f.splitStripes(p, off)
	results := f.runStriped(ops, false)
	// Ops are generated in ascending offset order; accumulate the
	// contiguous prefix.
	total := 0
	for i, r := range results {
		total += r.n
		if r.err != nil && r.err != io.EOF {
			return total, fmt.Errorf("core: stripe read at %d: %w", ops[i].off, r.err)
		}
		if r.n < len(ops[i].buf) {
			return total, io.EOF
		}
	}
	return total, nil
}

// Size implements adio.File.
func (f *srbFile) Size() (int64, error) { return f.streams[0].file.Size() }

// Truncate implements adio.File.
func (f *srbFile) Truncate(size int64) error { return f.streams[0].file.Truncate(size) }

// Sync implements adio.File, syncing every stream.
func (f *srbFile) Sync() error {
	for _, s := range f.streams {
		if err := s.file.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements adio.File, closing every stream's file and connection.
func (f *srbFile) Close() error {
	var first error
	for _, s := range f.streams {
		if s == nil {
			continue
		}
		if s.file != nil {
			if err := s.file.Close(); err != nil && first == nil {
				first = err
			}
		}
		if err := s.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	f.streams = nil
	return first
}
