package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"semplar/internal/adio"
	"semplar/internal/srb"
	"semplar/internal/trace"
)

// DefaultStripeSize is the striping unit across TCP streams. Each stripe
// is one synchronous SRB request, so stripes must be large enough that the
// per-request WAN round trip is amortized; applications that issue one big
// write per I/O phase (the paper's pattern) want stripe ~ transfer/streams.
const DefaultStripeSize = 1 << 20

// DefaultReconnectBudget bounds how many times one open handle may redial
// a dead stream over its lifetime when the retry policy is enabled but no
// explicit budget is configured. The budget is what keeps a hard-down
// server from turning into an unbounded reconnect loop.
const DefaultReconnectBudget = 8

// DialFunc opens one new transport connection to the SRB server. Every
// stream of every open file gets its own connection — each with a separate
// endpoint, as in SEMPLAR.
type DialFunc func() (net.Conn, error)

// SRBFSConfig configures the SEMPLAR ADIO driver.
type SRBFSConfig struct {
	Dial     DialFunc
	User     string
	Resource string // server storage resource ("" = server default)
	// Tenant carries multi-tenant credentials presented on every
	// handshake (initial dials and stream reconnections alike). The zero
	// value connects anonymously — refused by servers that require
	// authentication.
	Tenant srb.Credentials
	// Streams is the default number of concurrent TCP streams per open
	// file handle (>= 1). The per-open hint "streams" overrides it.
	Streams int
	// StripeSize is the striping unit across streams; hint
	// "stripe_size" overrides it.
	StripeSize int
	// Retry governs per-operation deadlines and the retry/reconnect
	// behavior of every stream. The zero value fails fast on the first
	// transport error (the historical behavior).
	Retry srb.RetryPolicy
	// ReconnectBudget caps stream redials per open handle. Zero with an
	// enabled Retry policy means DefaultReconnectBudget; negative
	// disables reconnection while keeping same-connection retries.
	ReconnectBudget int
	// Tracer, when non-nil, records per-stream byte counters, wire-level
	// operation spans and fault-recovery events for every handle this
	// driver opens.
	Tracer *trace.Tracer
	// DisableCoalesce turns off vectored write batching and falls back to
	// one opWrite round trip per stripe (the historical behavior). Reads
	// are unaffected. Exists for A/B benchmarking of the coalescing path.
	DisableCoalesce bool
}

// SRBFS is the high-performance ADIO implementation for the SRB filesystem
// (Figure 1's SRBFS box). Opening a file establishes its TCP streams;
// closing it tears them down, mirroring MPI_File_open/close semantics.
type SRBFS struct {
	cfg SRBFSConfig
}

// NewSRBFS validates the config and returns the driver.
func NewSRBFS(cfg SRBFSConfig) (*SRBFS, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("core: SRBFS needs a Dial function")
	}
	if cfg.Streams < 1 {
		cfg.Streams = 1
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = DefaultStripeSize
	}
	if cfg.User == "" {
		cfg.User = "semplar"
	}
	if cfg.ReconnectBudget == 0 && cfg.Retry.Enabled() {
		cfg.ReconnectBudget = DefaultReconnectBudget
	}
	if cfg.ReconnectBudget < 0 {
		cfg.ReconnectBudget = 0
	}
	return &SRBFS{cfg: cfg}, nil
}

// Name implements adio.Driver.
func (d *SRBFS) Name() string { return "srb" }

// Delete implements adio.Driver.
func (d *SRBFS) Delete(path string) error {
	conn, err := d.connect()
	if err != nil {
		return err
	}
	defer conn.Close()
	return conn.Unlink(path)
}

// connect dials and handshakes one connection, retrying transient dial
// failures under the configured policy and installing its per-operation
// deadline.
func (d *SRBFS) connect() (*srb.Conn, error) {
	conn, err := srb.DialRetryAuth(d.cfg.Dial, d.cfg.User, d.cfg.Tenant, d.cfg.Retry)
	if err != nil {
		return nil, fmt.Errorf("core: dial SRB server: %w", err)
	}
	conn.SetTracer(d.cfg.Tracer)
	return conn, nil
}

// Open implements adio.Driver. Supported hints: "streams" (int) and
// "stripe_size" (bytes).
func (d *SRBFS) Open(path string, flags int, hints adio.Hints) (adio.File, error) {
	streams := d.cfg.Streams
	if v := hints.Get("streams", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad streams hint %q", v)
		}
		streams = n
	}
	stripe := d.cfg.StripeSize
	if v := hints.Get("stripe_size", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad stripe_size hint %q", v)
		}
		stripe = n
	}

	f := &srbFile{
		fs:     d,
		path:   path,
		stripe: int64(stripe),
		// Reconnects must never truncate or exclusive-create: the file
		// exists and holds acknowledged data by the time a stream dies.
		reopenFlags: flags &^ (adio.O_TRUNC | adio.O_EXCL),
		budget:      d.cfg.ReconnectBudget,
		tracer:      d.cfg.Tracer,
	}
	for i := 0; i < streams; i++ {
		// Only the first stream may truncate or exclusive-create;
		// the rest reopen the now-existing file (O_CREATE is kept so
		// the open cannot race with another node's create).
		sf := flags
		if i > 0 {
			sf = f.reopenFlags
		}
		conn, file, err := d.openStream(path, sf)
		if err != nil {
			//lint:allow errdrop -- unwinding a partially-opened stripe set; the open error is returned
			f.Close()
			return nil, err
		}
		f.streams = append(f.streams, &stream{
			conn:     conn,
			file:     file,
			readCtr:  fmt.Sprintf("srbfs.stream%d.read_bytes", i),
			writeCtr: fmt.Sprintf("srbfs.stream%d.write_bytes", i),
		})
	}
	return f, nil
}

// openStream establishes one stream: dial (DialRetry already covers
// transient dial failures) and open the file on the fresh connection. The
// open RPC itself is retried under the same policy — a reset landing in
// the window between a successful handshake and the open reply is as
// transient as a refused dial, and a server shedding load answers the
// open with ErrServerBusy, which deserves the same backed-off replay.
func (d *SRBFS) openStream(path string, flags int) (*srb.Conn, *srb.File, error) {
	attempts := d.cfg.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(d.cfg.Retry.BackoffFor(i-1, lastErr))
		}
		conn, err := d.connect()
		if err != nil {
			return nil, nil, err
		}
		file, err := conn.Open(path, flags, d.cfg.Resource)
		if err == nil {
			return conn, file, nil
		}
		//lint:allow errdrop -- discarding the conn whose open failed; that error decides the retry below
		conn.Close()
		if !srb.Retryable(err) {
			return nil, nil, err
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("core: open %s: giving up after %d attempts: %w", path, attempts, lastErr)
}

// stream is one TCP stream of a striped handle. Its connection and file
// handle are replaced in place by a reconnect; gen counts replacements so
// concurrent workers that observed the same dead connection perform only
// one redial between them.
type stream struct {
	mu   sync.Mutex
	gen  int       // guarded by mu
	conn *srb.Conn // guarded by mu
	file *srb.File // guarded by mu

	// Trace counter names for this stream's traffic; immutable after Open.
	// They are silent counters (aggregate only), so concurrent stripes on
	// different streams never perturb trace event order.
	readCtr  string
	writeCtr string
}

// handle snapshots the stream's current file handle and generation.
func (s *stream) handle() (*srb.File, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.file, s.gen
}

// errStreamDown stands in for an op attempted while a stream has no live
// connection (a previous reconnect attempt failed); it is retryable.
var errStreamDown = errors.New("core: stream disconnected")

// errBudgetExhausted is terminal: the handle spent its reconnect budget.
var errBudgetExhausted = errors.New("core: reconnect budget exhausted")

// FaultStats counts one handle's fault-recovery activity.
type FaultStats struct {
	// Reconnects is the number of stream redials attempted.
	Reconnects int64
	// RetriedOps is the number of operations that failed at least once
	// and were replayed to completion.
	RetriedOps int64
	// BudgetLeft is the remaining reconnect budget.
	BudgetLeft int
}

// FaultReporter is implemented by files that track fault-recovery metrics.
type FaultReporter interface {
	FaultStats() FaultStats
}

// srbFile stripes one logical file handle over its TCP streams. With one
// stream it behaves like original SEMPLAR; with more, explicit-offset I/O
// is split on stripe boundaries and the pieces proceed concurrently, one
// goroutine per stream — the split-TCP optimization of Section 7.2.
//
// When the driver's RetryPolicy is enabled, a stream whose connection dies
// mid-operation is transparently redialed and the failed explicit-offset
// op replayed: ReadAt/WriteAt are idempotent (same bytes, same offsets),
// so a replay after a partially-applied write converges to the same file
// contents. Reconnects draw on a per-handle budget.
type srbFile struct {
	fs          *SRBFS
	path        string
	reopenFlags int
	stripe      int64
	streams     []*stream

	mu     sync.Mutex
	closed bool // guarded by mu
	budget int  // guarded by mu; remaining reconnects

	reconnects atomic.Int64
	retriedOps atomic.Int64

	tracer *trace.Tracer // immutable after Open; nil = tracing off
}

var _ adio.File = (*srbFile)(nil)
var _ adio.VectorIO = (*srbFile)(nil)
var _ FaultReporter = (*srbFile)(nil)

// Streams reports how many TCP streams back this handle.
func (f *srbFile) Streams() int { return len(f.streams) }

// FaultStats implements FaultReporter.
func (f *srbFile) FaultStats() FaultStats {
	f.mu.Lock()
	left := f.budget
	f.mu.Unlock()
	return FaultStats{
		Reconnects: f.reconnects.Load(),
		RetriedOps: f.retriedOps.Load(),
		BudgetLeft: left,
	}
}

// doOp runs one explicit-offset operation on a stream, retrying under the
// driver's policy: a retryable failure (dead connection, timeout) backs
// off, redials the stream, reopens the handle and replays the op. The
// returned byte count always describes the final attempt — a replayed op
// reports its true full count, never partial progress from a dead stream.
func (f *srbFile) doOp(s *stream, write bool, buf []byte, off int64) (int, error) {
	pol := f.fs.cfg.Retry
	var n int
	var err error
	for attempt := 0; ; attempt++ {
		file, gen := s.handle()
		if file == nil {
			n, err = 0, errStreamDown
		} else if write {
			n, err = file.WriteAt(buf, off)
		} else {
			n, err = file.ReadAt(buf, off)
		}
		if err == nil || (!write && errors.Is(err, io.EOF)) {
			if attempt > 0 {
				f.retriedOps.Add(1)
				f.tracer.Count("srbfs.retried_ops", 1)
			}
			if write {
				f.tracer.Count(s.writeCtr, int64(n))
			} else {
				f.tracer.Count(s.readCtr, int64(n))
			}
			return n, err
		}
		if !pol.Enabled() || !srb.Retryable(err) {
			return n, err
		}
		if attempt+1 >= pol.MaxAttempts {
			return n, fmt.Errorf("core: giving up after %d attempts: %w", attempt+1, err)
		}
		time.Sleep(pol.BackoffFor(attempt, err))
		if errors.Is(err, srb.ErrServerBusy) || errors.Is(err, srb.ErrRateLimited) {
			// Overload or fair-share shed: the server is healthy and the
			// connection is fine (both are status replies, not transport
			// failures), so retry on the same stream without burning
			// reconnect budget. BackoffFor already slept at least the
			// rate-limit retry-after hint.
			continue
		}
		if rerr := f.recoverStream(s, gen); rerr != nil {
			if !srb.Retryable(rerr) {
				return n, rerr
			}
			// Transient reconnect failure (e.g. dial): the next
			// attempt will find the stream down and try again.
		}
	}
}

// recoverStream replaces a stream's dead connection with a freshly dialed
// one and reopens the file handle on it. gen is the generation the caller
// observed failing; if another worker already reconnected past it, the
// call is a no-op so one dead connection costs one redial, not one per
// in-flight op. Each attempt — successful or not — consumes one unit of
// the handle's reconnect budget.
func (f *srbFile) recoverStream(s *stream, gen int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != gen {
		return nil // already reconnected by a concurrent op
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("%w: file closed during recovery", srb.ErrInvalid)
	}
	if f.budget <= 0 {
		f.mu.Unlock()
		return fmt.Errorf("%w (%d reconnects): %w", errBudgetExhausted,
			f.reconnects.Load(), srb.ErrIO)
	}
	f.budget--
	f.mu.Unlock()
	f.reconnects.Add(1)
	if f.tracer.Enabled() {
		f.tracer.Count("srbfs.reconnects", 1)
		f.tracer.Instant("fault", "reconnect", 0,
			trace.Str("path", f.path), trace.Int("gen", int64(gen)))
	}

	if s.conn != nil {
		//lint:allow errdrop -- tearing down whatever is left of the dead stream
		s.conn.Close()
	}
	s.conn, s.file = nil, nil

	raw, err := f.fs.cfg.Dial()
	if err != nil {
		return fmt.Errorf("core: reconnect dial: %w", err)
	}
	conn, err := srb.NewConnAuth(raw, f.fs.cfg.User, f.fs.cfg.Tenant)
	if err != nil {
		//lint:allow errdrop -- discarding the transport on a failed handshake; that error is returned
		raw.Close()
		return fmt.Errorf("core: reconnect handshake: %w", err)
	}
	conn.SetOpTimeout(f.fs.cfg.Retry.OpTimeout)
	conn.SetTracer(f.tracer)
	file, err := conn.Open(f.path, f.reopenFlags, f.fs.cfg.Resource)
	if err != nil {
		//lint:allow errdrop -- discarding the fresh connection when the reopen fails; that error is returned
		conn.Close()
		return fmt.Errorf("core: reopen %s: %w", f.path, err)
	}
	s.conn, s.file = conn, file
	s.gen++
	return nil
}

// op is one contiguous piece of a striped transfer.
type op struct {
	stream int
	off    int64 // file offset
	buf    []byte
}

// splitStripes cuts [off, off+len(p)) on stripe boundaries and assigns
// each piece round-robin to a stream.
func (f *srbFile) splitStripes(p []byte, off int64) []op {
	n := len(f.streams)
	var ops []op
	for len(p) > 0 {
		blk := off / f.stripe
		end := (blk + 1) * f.stripe
		take := end - off
		if take > int64(len(p)) {
			take = int64(len(p))
		}
		ops = append(ops, op{
			stream: int(blk % int64(n)),
			off:    off,
			buf:    p[:take],
		})
		p = p[take:]
		off += take
	}
	return ops
}

// runStriped executes the ops concurrently, one worker per stream. Writes
// coalesce a stream's stripes into vectored frames (unless DisableCoalesce)
// so k stripes cost roughly one round trip instead of k; reads exploit
// connection pipelining by keeping several stripes in flight per stream.
func (f *srbFile) runStriped(ops []op, write bool) []opResult {
	results := make([]opResult, len(ops))
	byStream := make([][]int, len(f.streams))
	for i, o := range ops {
		byStream[o.stream] = append(byStream[o.stream], i)
	}
	coalesce := write && !f.fs.cfg.DisableCoalesce
	var wg sync.WaitGroup
	for s, idxs := range byStream {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			st := f.streams[s]
			switch {
			case coalesce && len(idxs) > 1:
				f.writevStream(st, ops, idxs, results)
			case write:
				for _, i := range idxs {
					o := ops[i]
					n, err := f.doOp(st, true, o.buf, o.off)
					results[i] = opResult{n: n, err: err}
				}
			default:
				f.readStream(st, ops, idxs, results)
			}
		}(s, idxs)
	}
	wg.Wait()
	return results
}

// doWritev runs one stream's batch of stripe writes as vectored frames,
// retrying the whole vector under the driver's policy. Every segment is an
// absolute-offset write, so a replay after a mid-vector transport failure
// converges to the same file contents, exactly like a replayed WriteAt.
func (f *srbFile) doWritev(s *stream, segs []srb.WriteSeg) (int, error) {
	pol := f.fs.cfg.Retry
	var n int
	var err error
	for attempt := 0; ; attempt++ {
		file, gen := s.handle()
		if file == nil {
			n, err = 0, errStreamDown
		} else {
			n, err = file.WriteAtVec(segs)
		}
		if err == nil {
			if attempt > 0 {
				f.retriedOps.Add(1)
				f.tracer.Count("srbfs.retried_ops", 1)
			}
			f.tracer.Count(s.writeCtr, int64(n))
			return n, nil
		}
		if !pol.Enabled() || !srb.Retryable(err) {
			return n, err
		}
		if attempt+1 >= pol.MaxAttempts {
			return n, fmt.Errorf("core: giving up after %d attempts: %w", attempt+1, err)
		}
		time.Sleep(pol.BackoffFor(attempt, err))
		if errors.Is(err, srb.ErrServerBusy) || errors.Is(err, srb.ErrRateLimited) {
			continue
		}
		if rerr := f.recoverStream(s, gen); rerr != nil {
			if !srb.Retryable(rerr) {
				return n, rerr
			}
		}
	}
}

// writevStream coalesces one stream's stripes into vectored opWritev
// frames. The server applies segments in order and acknowledges a byte
// total, so results are distributed greedily over the ops in offset order
// and the error (if any) lands on the first op that came up short.
func (f *srbFile) writevStream(st *stream, ops []op, idxs []int, results []opResult) {
	segs := make([]srb.WriteSeg, len(idxs))
	for k, i := range idxs {
		segs[k] = srb.WriteSeg{Off: ops[i].off, Data: ops[i].buf}
	}
	n, err := f.doWritev(st, segs)
	rem := n
	attached := err == nil
	for _, i := range idxs {
		want := len(ops[i].buf)
		got := want
		if rem < got {
			got = rem
		}
		rem -= got
		r := opResult{n: got}
		if got < want && !attached {
			r.err = err
			attached = true
		}
		results[i] = r
	}
	if !attached {
		// Every byte was acknowledged yet the vector still failed (e.g. a
		// transport tear after the last frame's reply was consumed): the
		// error belongs past the end of the run.
		results[idxs[len(idxs)-1]].err = err
	}
}

// readPipelineDepth bounds concurrent explicit-offset reads in flight per
// stream: enough to hide the round trip under WAN-scale latency without
// unbounded read-buffer pressure on the server.
const readPipelineDepth = 8

// readStream issues one stream's stripe reads concurrently, exploiting
// connection pipelining: the stream's round trips overlap instead of
// queueing behind each other.
func (f *srbFile) readStream(st *stream, ops []op, idxs []int, results []opResult) {
	if len(idxs) == 1 {
		i := idxs[0]
		n, err := f.doOp(st, false, ops[i].buf, ops[i].off)
		results[i] = opResult{n: n, err: err}
		return
	}
	sem := make(chan struct{}, readPipelineDepth)
	var wg sync.WaitGroup
	for _, i := range idxs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := f.doOp(st, false, ops[i].buf, ops[i].off)
			results[i] = opResult{n: n, err: err}
			<-sem
		}(i)
	}
	wg.Wait()
}

// doReadv runs one stream's batch of ranges as vectored opReadv frames,
// retrying the whole vector under the driver's policy. A vectored read is
// idempotent, so a replay after a mid-vector transport failure is safe;
// io.EOF is a result, not a failure, and is returned with the prefix count.
func (f *srbFile) doReadv(s *stream, segs []srb.ReadSeg) (int, error) {
	pol := f.fs.cfg.Retry
	var n int
	var err error
	for attempt := 0; ; attempt++ {
		file, gen := s.handle()
		if file == nil {
			n, err = 0, errStreamDown
		} else {
			n, err = file.ReadAtVec(segs)
		}
		if err == nil || errors.Is(err, io.EOF) {
			if attempt > 0 {
				f.retriedOps.Add(1)
				f.tracer.Count("srbfs.retried_ops", 1)
			}
			f.tracer.Count(s.readCtr, int64(n))
			return n, err
		}
		if !pol.Enabled() || !srb.Retryable(err) {
			return n, err
		}
		if attempt+1 >= pol.MaxAttempts {
			return n, fmt.Errorf("core: giving up after %d attempts: %w", attempt+1, err)
		}
		time.Sleep(pol.BackoffFor(attempt, err))
		if errors.Is(err, srb.ErrServerBusy) || errors.Is(err, srb.ErrRateLimited) {
			continue
		}
		if rerr := f.recoverStream(s, gen); rerr != nil {
			if !srb.Retryable(rerr) {
				return n, rerr
			}
		}
	}
}

// readvStream gathers one stream's ranges in one vectored opReadv exchange.
// The server fills ranges in order and stops at the first short one, so
// results distribute greedily over the ops in vector order; a hard error
// lands on the first op that came up short.
func (f *srbFile) readvStream(st *stream, ops []op, idxs []int, results []opResult) {
	segs := make([]srb.ReadSeg, len(idxs))
	for k, i := range idxs {
		segs[k] = srb.ReadSeg{Off: ops[i].off, Buf: ops[i].buf}
	}
	n, err := f.doReadv(st, segs)
	var hardErr error
	if err != nil && err != io.EOF {
		hardErr = err
	}
	rem := n
	attached := hardErr == nil
	for _, i := range idxs {
		want := len(ops[i].buf)
		got := want
		if rem < got {
			got = rem
		}
		rem -= got
		r := opResult{n: got}
		if got < want && !attached {
			r.err = hardErr
			attached = true
		}
		results[i] = r
	}
	if !attached {
		results[idxs[len(idxs)-1]].err = hardErr
	}
}

type opResult struct {
	n   int
	err error
}

// WriteAt implements adio.File, striping across the streams. On error the
// returned count is the contiguous prefix confirmed written — stripes past
// the first failure are excluded even if they succeeded out of order,
// mirroring ReadAt.
func (f *srbFile) WriteAt(p []byte, off int64) (int, error) {
	if len(f.streams) == 1 {
		return f.doOp(f.streams[0], true, p, off)
	}
	ops := f.splitStripes(p, off)
	results := f.runStriped(ops, true)
	total := 0
	for i, r := range results {
		total += r.n
		if r.err != nil {
			return total, fmt.Errorf("core: stripe write at %d: %w", ops[i].off, r.err)
		}
		if r.n < len(ops[i].buf) {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// ReadAt implements adio.File. Short reads report the contiguous prefix
// actually available, with io.EOF when it ends before len(p).
func (f *srbFile) ReadAt(p []byte, off int64) (int, error) {
	if len(f.streams) == 1 {
		return f.doOp(f.streams[0], false, p, off)
	}
	ops := f.splitStripes(p, off)
	results := f.runStriped(ops, false)
	// Ops are generated in ascending offset order; accumulate the
	// contiguous prefix.
	total := 0
	for i, r := range results {
		total += r.n
		if r.err != nil && r.err != io.EOF {
			return total, fmt.Errorf("core: stripe read at %d: %w", ops[i].off, r.err)
		}
		if r.n < len(ops[i].buf) {
			return total, io.EOF
		}
	}
	return total, nil
}

// splitVecs cuts each vector segment on stripe boundaries, preserving
// segment order. With one stream everything lands on stream 0 and the wire
// codec re-merges contiguous pieces, so the split costs table entries only
// when it buys stream parallelism.
func (f *srbFile) splitVecs(vecs []adio.Vec) []op {
	var ops []op
	for _, v := range vecs {
		if len(v.Buf) == 0 {
			continue
		}
		ops = append(ops, f.splitStripes(v.Buf, v.Off)...)
	}
	return ops
}

// ReadAtVec implements adio.VectorIO: the whole scatter list moves in one
// vectored opReadv exchange per stream instead of one round trip per
// extent. Short reads report the contiguous prefix in segment order with
// io.EOF, mirroring ReadAt.
func (f *srbFile) ReadAtVec(vecs []adio.Vec) (int, error) {
	ops := f.splitVecs(vecs)
	if len(ops) == 0 {
		return 0, nil
	}
	results := make([]opResult, len(ops))
	byStream := make([][]int, len(f.streams))
	for i, o := range ops {
		byStream[o.stream] = append(byStream[o.stream], i)
	}
	var wg sync.WaitGroup
	for s, idxs := range byStream {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			f.readvStream(f.streams[s], ops, idxs, results)
		}(s, idxs)
	}
	wg.Wait()
	total := 0
	for i, r := range results {
		total += r.n
		if r.err != nil && r.err != io.EOF {
			return total, fmt.Errorf("core: vector read at %d: %w", ops[i].off, r.err)
		}
		if r.n < len(ops[i].buf) {
			return total, io.EOF
		}
	}
	return total, nil
}

// WriteAtVec implements adio.VectorIO, reusing the striped write machinery:
// each stream's pieces coalesce into vectored opWritev frames. The count on
// error is the contiguous prefix in segment order, mirroring WriteAt.
func (f *srbFile) WriteAtVec(vecs []adio.Vec) (int, error) {
	ops := f.splitVecs(vecs)
	if len(ops) == 0 {
		return 0, nil
	}
	results := f.runStriped(ops, true)
	total := 0
	for i, r := range results {
		total += r.n
		if r.err != nil {
			return total, fmt.Errorf("core: vector write at %d: %w", ops[i].off, r.err)
		}
		if r.n < len(ops[i].buf) {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// metaFile returns the stream-0 file handle for metadata ops.
func (f *srbFile) metaFile() (*srb.File, error) {
	file, _ := f.streams[0].handle()
	if file == nil {
		return nil, errStreamDown
	}
	return file, nil
}

// Size implements adio.File.
func (f *srbFile) Size() (int64, error) {
	file, err := f.metaFile()
	if err != nil {
		return 0, err
	}
	return file.Size()
}

// Truncate implements adio.File.
func (f *srbFile) Truncate(size int64) error {
	file, err := f.metaFile()
	if err != nil {
		return err
	}
	return file.Truncate(size)
}

// Sync implements adio.File, syncing every stream.
func (f *srbFile) Sync() error {
	for _, s := range f.streams {
		file, _ := s.handle()
		if file == nil {
			continue // disconnected stream has nothing buffered
		}
		if err := file.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements adio.File, closing every stream's file and connection.
// It also retires the reconnect budget so no in-flight op redials a
// stream after the handle is gone.
func (f *srbFile) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	var first error
	for _, s := range f.streams {
		if s == nil {
			continue
		}
		s.mu.Lock()
		file, conn := s.file, s.conn
		s.file, s.conn = nil, nil
		s.mu.Unlock()
		if file != nil {
			// The close RPC is best-effort on a dead transport: the
			// server releases a killed connection's handles itself, so a
			// retryable (transport-class) failure here means there is
			// nothing left to release, not a close that went wrong.
			if err := file.Close(); err != nil && first == nil && !srb.Retryable(err) {
				first = err
			}
		}
		if conn != nil {
			if err := conn.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	f.streams = nil
	return first
}
