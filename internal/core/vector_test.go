package core

import (
	"bytes"
	"io"
	"testing"

	"semplar/internal/adio"
)

// TestSRBFSVectorRoundTrip: scattered extents written and read back through
// the VectorIO fast path survive stripe splitting across multiple streams.
func TestSRBFSVectorRoundTrip(t *testing.T) {
	for _, streams := range []int{1, 3} {
		_, fs := newTestFS(t, streams) // 1 KiB stripes force splitting
		f, err := fs.Open("/vec", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			t.Fatal(err)
		}
		vf, ok := f.(adio.VectorIO)
		if !ok {
			t.Fatal("srbFile does not implement adio.VectorIO")
		}

		// Extents chosen to cross stripe boundaries (stripe = 1024).
		mk := func(n int, b byte) []byte { return bytes.Repeat([]byte{b}, n) }
		wvecs := []adio.Vec{
			{Off: 0, Buf: mk(100, 'a')},
			{Off: 1000, Buf: mk(200, 'b')},  // straddles first stripe boundary
			{Off: 5000, Buf: mk(3000, 'c')}, // spans three stripes
			{Off: 9000, Buf: mk(50, 'd')},
		}
		want := 100 + 200 + 3000 + 50
		if n, err := vf.WriteAtVec(wvecs); err != nil || n != want {
			t.Fatalf("streams=%d: WriteAtVec = %d, %v", streams, n, err)
		}

		rvecs := []adio.Vec{
			{Off: 0, Buf: make([]byte, 100)},
			{Off: 1000, Buf: make([]byte, 200)},
			{Off: 5000, Buf: make([]byte, 3000)},
			{Off: 9000, Buf: make([]byte, 50)},
		}
		if n, err := vf.ReadAtVec(rvecs); err != nil || n != want {
			t.Fatalf("streams=%d: ReadAtVec = %d, %v", streams, n, err)
		}
		for i, v := range rvecs {
			if !bytes.Equal(v.Buf, wvecs[i].Buf) {
				t.Fatalf("streams=%d: extent %d corrupted", streams, i)
			}
		}
		f.Close()
	}
}

// TestSRBFSVectorEOFPrefix: a vectored read that runs past EOF returns the
// contiguous prefix in segment order plus io.EOF — the same contract as
// ReadAt, so the mpiio list-I/O path can rely on it.
func TestSRBFSVectorEOFPrefix(t *testing.T) {
	_, fs := newTestFS(t, 2)
	f, err := fs.Open("/veof", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	content := bytes.Repeat([]byte{7}, 2000)
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	vf := f.(adio.VectorIO)

	// Second segment comes up 500 short; third is never reached.
	vecs := []adio.Vec{
		{Off: 0, Buf: make([]byte, 300)},
		{Off: 1500, Buf: make([]byte, 1000)},
		{Off: 100, Buf: make([]byte, 10)},
	}
	n, err := vf.ReadAtVec(vecs)
	if err != io.EOF || n != 300+500 {
		t.Fatalf("ReadAtVec = %d, %v, want 800, io.EOF", n, err)
	}
	if !bytes.Equal(vecs[0].Buf, content[:300]) || !bytes.Equal(vecs[1].Buf[:500], content[1500:]) {
		t.Fatal("prefix bytes corrupted")
	}

	// Wholly past EOF: zero bytes, io.EOF.
	if n, err := vf.ReadAtVec([]adio.Vec{{Off: 100000, Buf: make([]byte, 10)}}); err != io.EOF || n != 0 {
		t.Fatalf("past-EOF ReadAtVec = %d, %v", n, err)
	}
}
