package core

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

func fastaLike(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = "ACGT"[rng.Intn(4)]
	}
	return out
}

func TestWriteReadCompressedSync(t *testing.T) {
	mem := adio.NewMemFS()
	f, _ := mem.Open("/c", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	src := fastaLike(300_000, 1)
	stats, err := WriteCompressed(f, 0, src, 64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 5 || stats.InputBytes != int64(len(src)) {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Ratio() < 1.2 {
		t.Fatalf("ratio = %.2f", stats.Ratio())
	}
	got, err := ReadCompressed(f, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("round trip mismatch")
	}
}

func TestWriteReadCompressedAsync(t *testing.T) {
	mem := adio.NewMemFS()
	f, _ := mem.Open("/c", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	eng := NewEngine(1)
	defer eng.Close()
	src := fastaLike(500_000, 2)
	if _, err := WriteCompressed(f, 0, src, 100_000, eng); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(f, 0, eng)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("async round trip mismatch")
	}
}

func TestWriteCompressedEmpty(t *testing.T) {
	mem := adio.NewMemFS()
	f, _ := mem.Open("/e", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	stats, err := WriteCompressed(f, 0, nil, 1024, nil)
	if err != nil || stats.Blocks != 0 {
		t.Fatalf("stats = %+v, %v", stats, err)
	}
	got, err := ReadCompressed(f, 0, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("read empty = %d bytes, %v", len(got), err)
	}
}

func TestWriteCompressedIncompressible(t *testing.T) {
	mem := adio.NewMemFS()
	f, _ := mem.Open("/r", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	src := make([]byte, 200_000)
	rand.New(rand.NewSource(3)).Read(src)
	stats, err := WriteCompressed(f, 0, src, 64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() > 1.01 {
		t.Fatalf("random data 'compressed' at %.3f", stats.Ratio())
	}
	got, err := ReadCompressed(f, 0, nil)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("incompressible round trip failed: %v", err)
	}
}

func TestWriteCompressedDefaultBlock(t *testing.T) {
	mem := adio.NewMemFS()
	f, _ := mem.Open("/d", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	src := fastaLike(DefaultCompressBlock+1234, 4)
	stats, err := WriteCompressed(f, 0, src, 0, nil)
	if err != nil || stats.Blocks != 2 {
		t.Fatalf("stats = %+v, %v", stats, err)
	}
}

func TestCompressedAsyncPipelinesOnWAN(t *testing.T) {
	// Section 7.3: with the async engine, compression of block k+1
	// overlaps the transmission of block k, so the wall time approaches
	// the transmission time alone. Sequential compress+send must be
	// measurably slower when compression time is non-negligible.
	if testing.Short() {
		t.Skip("timing test")
	}
	run := func(eng *Engine) time.Duration {
		prof := netsim.DAS2().Scaled(60)
		net0 := netsim.NewNetwork(prof, 1)
		srv := srb.NewMemServer(storage.DeviceSpec{})
		fs, _ := NewSRBFS(SRBFSConfig{Dial: func() (net.Conn, error) {
			c, s := net0.Dial(0)
			go srv.ServeConn(s)
			return c, nil
		}})
		f, err := fs.Open("/comp", adio.O_WRONLY|adio.O_CREATE, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		src := fastaLike(3<<20, 5)
		start := time.Now()
		if _, err := WriteCompressed(f, 0, src, 256<<10, eng); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	syncTime := run(nil)
	eng := NewEngine(1)
	defer eng.Close()
	asyncTime := run(eng)
	// Compression here is fast relative to the WAN, so the win is
	// modest but must exist; guard only against async being slower.
	if asyncTime > syncTime*11/10 {
		t.Fatalf("async %v slower than sync %v", asyncTime, syncTime)
	}
}

func TestCompressStatsRatio(t *testing.T) {
	s := CompressStats{InputBytes: 100, OutputBytes: 50}
	if s.Ratio() != 2 {
		t.Fatalf("ratio = %v", s.Ratio())
	}
	if (CompressStats{}).Ratio() != 1 {
		t.Fatal("empty ratio")
	}
}
