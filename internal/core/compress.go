package core

import (
	"fmt"
	"io"

	"semplar/internal/adio"
	"semplar/internal/lzo"
)

// DefaultCompressBlock is the pipelined compression unit: the paper's
// experiment compresses and transmits consecutive 1 MB blocks.
const DefaultCompressBlock = 1 << 20

// CompressStats describes one compressed transfer.
type CompressStats struct {
	InputBytes  int64
	OutputBytes int64
	Blocks      int
}

// Ratio is input/output (>= 1 means compression helped).
func (s CompressStats) Ratio() float64 {
	if s.OutputBytes == 0 {
		return 1
	}
	return float64(s.InputBytes) / float64(s.OutputBytes)
}

// WriteCompressed compresses src into framed LZO blocks of blockSize and
// writes them consecutively to f starting at off.
//
// With eng == nil the loop is fully synchronous: compress a block, transmit
// it, repeat — compression sits on the critical path. With an engine, the
// write of block k is submitted asynchronously and block k+1 is compressed
// while k is in flight, the pipelining the paper's loop structure and
// asynchronous-call placement achieve (Section 7.3).
func WriteCompressed(f adio.File, off int64, src []byte, blockSize int, eng *Engine) (CompressStats, error) {
	if blockSize <= 0 {
		blockSize = DefaultCompressBlock
	}
	var stats CompressStats
	var pending *Request
	tr := eng.Tracer()
	pos := off
	for start := 0; start < len(src) || (start == 0 && len(src) == 0); start += blockSize {
		if len(src) == 0 {
			break
		}
		end := start + blockSize
		if end > len(src) {
			end = len(src)
		}
		frame := lzo.EncodeBlock(src[start:end]) // compress (compute thread)
		if pending != nil {
			if _, err := pending.Wait(); err != nil {
				return stats, fmt.Errorf("core: compressed write: %w", err)
			}
		}
		writeAt := pos
		pos += int64(len(frame))
		stats.Blocks++
		stats.InputBytes += int64(end - start)
		stats.OutputBytes += int64(len(frame))
		tr.Count("lzo.compress_in", int64(end-start))
		tr.Count("lzo.compress_out", int64(len(frame)))
		if eng != nil {
			pending = eng.Submit(func() (int, error) {
				return f.WriteAt(frame, writeAt)
			})
		} else {
			if _, err := f.WriteAt(frame, writeAt); err != nil {
				return stats, fmt.Errorf("core: compressed write: %w", err)
			}
		}
	}
	if pending != nil {
		if _, err := pending.Wait(); err != nil {
			return stats, fmt.Errorf("core: compressed write: %w", err)
		}
	}
	return stats, nil
}

// ReadCompressed reads consecutive framed LZO blocks from f starting at
// off until end-of-file and returns the decompressed bytes. With an engine
// the read of block k+1 is prefetched while block k decompresses.
func ReadCompressed(f adio.File, off int64, eng *Engine) ([]byte, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	var out []byte
	tr := eng.Tracer()
	pos := off

	readFrame := func(at int64) ([]byte, error) {
		var hdr [lzo.BlockHeaderSize]byte
		if _, err := f.ReadAt(hdr[:], at); err != nil && err != io.EOF {
			return nil, err
		}
		// Decode just the lengths by round-tripping through DecodeBlock
		// on the full frame; first fetch the payload length from the
		// header (bytes 8..12, big endian).
		compLen := int(uint32(hdr[8])<<24 | uint32(hdr[9])<<16 | uint32(hdr[10])<<8 | uint32(hdr[11]))
		frame := make([]byte, lzo.BlockHeaderSize+compLen)
		copy(frame, hdr[:])
		if compLen > 0 {
			if _, err := f.ReadAt(frame[lzo.BlockHeaderSize:], at+lzo.BlockHeaderSize); err != nil && err != io.EOF {
				return nil, err
			}
		}
		return frame, nil
	}

	var pending *Request
	var pendingFrame []byte
	fetch := func(at int64) {
		pendingFrame = nil
		pending = eng.Submit(func() (int, error) {
			fr, err := readFrame(at)
			pendingFrame = fr
			return len(fr), err
		})
	}

	var frame []byte
	if eng != nil && pos < size {
		fetch(pos)
	}
	for pos < size {
		if eng != nil {
			if _, err := pending.Wait(); err != nil {
				return nil, err
			}
			frame = pendingFrame
		} else {
			frame, err = readFrame(pos)
			if err != nil {
				return nil, err
			}
		}
		next := pos + int64(len(frame))
		if eng != nil && next < size {
			fetch(next)
		}
		orig, _, err := lzo.DecodeBlock(frame)
		if err != nil {
			return nil, fmt.Errorf("core: compressed read at %d: %w", pos, err)
		}
		tr.Count("lzo.decompress_in", int64(len(frame)))
		tr.Count("lzo.decompress_out", int64(len(orig)))
		out = append(out, orig...)
		pos = next
	}
	return out, nil
}
