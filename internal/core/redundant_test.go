package core

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

func TestRedundantReadCorrect(t *testing.T) {
	_, fs := newTestFS(t, 3)
	f, err := fs.Open("/red", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src := bytes.Repeat([]byte("redundancy"), 500)
	if _, err := f.WriteAt(src, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(src))
	n, err := f.(*srbFile).ReadAtRedundant(got, 0)
	if err != nil || n != len(src) {
		t.Fatalf("redundant read = %d, %v", n, err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("mismatch")
	}
	// Short read semantics preserved.
	long := make([]byte, len(src)+100)
	n, err = f.(*srbFile).ReadAtRedundant(long, 0)
	if n != len(src) || err != io.EOF {
		t.Fatalf("short redundant read = %d, %v", n, err)
	}
}

func TestRedundantReadSingleStream(t *testing.T) {
	_, fs := newTestFS(t, 1)
	f, _ := fs.Open("/one", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	f.WriteAt([]byte("single"), 0)
	got := make([]byte, 6)
	if n, err := f.(*srbFile).ReadAtRedundant(got, 0); err != nil || n != 6 {
		t.Fatalf("= %d, %v", n, err)
	}
}

func TestRedundantReadSurvivesStalledStream(t *testing.T) {
	// One of the two streams is black-holed mid-read; the redundant
	// read must still complete via the other stream — the availability
	// benefit Section 4.1 describes.
	srv := srb.NewMemServer(storage.DeviceSpec{})
	var serverEnds, clientEnds []*netsim.Conn
	fs, _ := NewSRBFS(SRBFSConfig{Dial: func() (net.Conn, error) {
		c, s := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(s)
		serverEnds = append(serverEnds, s) // stall its sends later
		clientEnds = append(clientEnds, c)
		return c, nil
	}, Streams: 2})

	f, err := fs.Open("/avail", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A graceful Close would block forever on the stalled stream (its
	// pending call holds the connection); sever the transports instead,
	// as an application recovering from a black-holed path would.
	defer func() {
		for _, c := range clientEnds {
			c.Close()
		}
		f.Close()
	}()
	payload := bytes.Repeat([]byte{0xAB}, 128<<10)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	// Black-hole the server->client direction of stream 0: its read
	// response never arrives.
	serverEnds[0].FaultAfter(0, netsim.FaultStall)

	got := make([]byte, len(payload))
	done := make(chan error, 1)
	go func() {
		_, err := f.(*srbFile).ReadAtRedundant(got, 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("redundant read failed despite healthy stream: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("redundant read blocked on the stalled stream")
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("redundant read returned wrong bytes")
	}
}

func TestRedundantReadAllStreamsFail(t *testing.T) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	var serverEnds []*netsim.Conn
	fs, _ := NewSRBFS(SRBFSConfig{Dial: func() (net.Conn, error) {
		c, s := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(s)
		serverEnds = append(serverEnds, s)
		return c, nil
	}, Streams: 2})
	f, err := fs.Open("/dead", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.WriteAt(make([]byte, 1024), 0)
	for _, s := range serverEnds {
		s.Close()
	}
	if _, err := f.(*srbFile).ReadAtRedundant(make([]byte, 1024), 0); err == nil {
		t.Fatal("read succeeded with every stream dead")
	}
}

func TestRedundantReadLowerTailLatencyUnderJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// With heavy latency jitter, min-of-two beats one stream on average.
	prof := netsim.Loopback()
	prof.OneWay = 2 * time.Millisecond
	prof.LatencyJitter = 40 * time.Millisecond
	net0 := netsim.NewNetwork(prof, 1)
	srv := srb.NewMemServer(storage.DeviceSpec{})
	fs, _ := NewSRBFS(SRBFSConfig{Dial: func() (net.Conn, error) {
		c, s := net0.Dial(0)
		go srv.ServeConn(s)
		return c, nil
	}, Streams: 2})
	f, err := fs.Open("/jit", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.WriteAt(make([]byte, 4<<10), 0)

	buf := make([]byte, 4<<10)
	const rounds = 12
	var single, redundant time.Duration
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		single += time.Since(start)

		start = time.Now()
		if _, err := f.(*srbFile).ReadAtRedundant(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		redundant += time.Since(start)
	}
	// Redundant reads take the min of two jitter draws; allow a wide
	// margin but they must not be slower on average.
	if redundant > single*11/10 {
		t.Fatalf("redundant avg %v vs single-stream avg %v", redundant/rounds, single/rounds)
	}
}
