package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEngineBasicSubmitWait(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	req := e.Submit(func() (int, error) { return 42, nil })
	n, err := req.Wait()
	if n != 42 || err != nil {
		t.Fatalf("wait = %d, %v", n, err)
	}
	// Waiting again is allowed and returns the same result.
	n, err = req.Wait()
	if n != 42 || err != nil {
		t.Fatalf("second wait = %d, %v", n, err)
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	boom := errors.New("io failed")
	req := e.Submit(func() (int, error) { return 3, boom })
	n, err := req.Wait()
	if n != 3 || err != boom {
		t.Fatalf("wait = %d, %v", n, err)
	}
}

func TestEngineFIFOOrder(t *testing.T) {
	// A single I/O thread must service the queue in FIFO order.
	e := NewEngine(1)
	defer e.Close()
	var order []int
	var reqs []*Request
	for i := 0; i < 20; i++ {
		i := i
		reqs = append(reqs, e.Submit(func() (int, error) {
			order = append(order, i) // safe: single I/O thread
			return i, nil
		}))
	}
	for _, r := range reqs {
		r.Wait()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestEngineTest(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	release := make(chan struct{})
	req := e.Submit(func() (int, error) {
		<-release
		return 7, nil
	})
	if _, _, done := req.Test(); done {
		t.Fatal("Test reported done while blocked")
	}
	close(release)
	req.Wait()
	n, err, done := req.Test()
	if !done || n != 7 || err != nil {
		t.Fatalf("Test after completion = %d, %v, %v", n, err, done)
	}
}

func TestEngineLazySpawn(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	if got := e.Stats().Spawned; got != 0 {
		t.Fatalf("threads before first call = %d", got)
	}
	e.Submit(func() (int, error) { return 0, nil }).Wait()
	if got := e.Stats().Spawned; got != 1 {
		t.Fatalf("threads after first call = %d, want 1", got)
	}
	// Saturating the pool spawns more, up to the configured size.
	block := make(chan struct{})
	var reqs []*Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, e.Submit(func() (int, error) {
			<-block
			return 0, nil
		}))
	}
	time.Sleep(20 * time.Millisecond)
	if got := e.Stats().Spawned; got > 4 {
		t.Fatalf("spawned %d threads, configured 4", got)
	}
	close(block)
	for _, r := range reqs {
		r.Wait()
	}
}

func TestEngineOverlap(t *testing.T) {
	// The whole point: I/O in the background while the caller computes.
	e := NewEngine(1)
	defer e.Close()
	const ioTime = 80 * time.Millisecond
	start := time.Now()
	req := e.Submit(func() (int, error) {
		time.Sleep(ioTime) // remote I/O
		return 0, nil
	})
	time.Sleep(ioTime) // computation
	req.Wait()
	total := time.Since(start)
	if total > ioTime*3/2 {
		t.Fatalf("no overlap: total %v for two %v phases", total, ioTime)
	}
}

func TestEngineMultiThreadConcurrency(t *testing.T) {
	// With k threads, k tasks run concurrently.
	const k = 4
	e := NewEngine(k)
	defer e.Close()
	var inFlight, peak atomic.Int64
	var reqs []*Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, e.Submit(func() (int, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			inFlight.Add(-1)
			return 0, nil
		}))
	}
	for _, r := range reqs {
		r.Wait()
	}
	if p := peak.Load(); p < 2 || p > k {
		t.Fatalf("peak concurrency = %d, want in [2,%d]", p, k)
	}
}

func TestEngineDrain(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	var done atomic.Int64
	for i := 0; i < 10; i++ {
		e.Submit(func() (int, error) {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
			return 0, nil
		})
	}
	e.Drain()
	if done.Load() != 10 {
		t.Fatalf("drain returned with %d/10 done", done.Load())
	}
	st := e.Stats()
	if st.Submitted != 10 || st.Completed != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineClose(t *testing.T) {
	e := NewEngine(2)
	var done atomic.Int64
	for i := 0; i < 5; i++ {
		e.Submit(func() (int, error) {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
			return 0, nil
		})
	}
	e.Close()
	if done.Load() != 5 {
		t.Fatalf("close returned with %d/5 done", done.Load())
	}
	// Submissions after close fail fast.
	req := e.Submit(func() (int, error) { return 1, nil })
	if _, err := req.Wait(); err != ErrEngineClosed {
		t.Fatalf("submit after close = %v", err)
	}
	// Close is idempotent.
	e.Close()
}

func TestEngineDoneChannel(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	req := e.Submit(func() (int, error) { return 9, nil })
	select {
	case <-req.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done channel never closed")
	}
	if n, _ := req.Wait(); n != 9 {
		t.Fatal("result lost")
	}
}

func TestNewEngineClampsThreads(t *testing.T) {
	if NewEngine(0).Threads() != 1 || NewEngine(-3).Threads() != 1 {
		t.Fatal("thread clamp")
	}
	if NewEngine(7).Threads() != 7 {
		t.Fatal("thread count")
	}
}

func TestEngineSubmitCloseRace(t *testing.T) {
	// Submit and Close racing from many goroutines: every request must
	// still complete (with a result or ErrEngineClosed), no hang, no
	// race-detector report.
	for iter := 0; iter < 25; iter++ {
		e := NewEngine(4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					req := e.Submit(func() (int, error) { return 1, nil })
					if n, err := req.Wait(); err == nil && n != 1 {
						t.Errorf("bad result %d", n)
					} else if err != nil && !errors.Is(err, ErrEngineClosed) {
						t.Errorf("unexpected error: %v", err)
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
		wg.Wait()
		e.Close()
	}
}

func TestEnginePanickingOpFailsRequest(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	req := e.Submit(func() (int, error) { panic("disk on fire") })
	n, err := req.Wait()
	if err == nil || n != 0 {
		t.Fatalf("panicking op = %d, %v; want error", n, err)
	}
	// The pool survives: later submissions still run.
	req2 := e.Submit(func() (int, error) { return 7, nil })
	if n, err := req2.Wait(); n != 7 || err != nil {
		t.Fatalf("post-panic submit = %d, %v", n, err)
	}
}
