// Package datagen synthesizes the biological data the paper's benchmarks
// consume: GenBank-style human EST nucleotide sequences in FASTA format.
// The generator produces text with the statistical character of real EST
// data — a four-letter alphabet with locally repeated motifs and FASTA
// headers — so that both the k-mer search (MPI-BLAST) and the LZO
// compression experiment (Section 7.3) exercise realistic inputs.
package datagen

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Alphabet is the nucleotide alphabet.
const Alphabet = "ACGT"

// Sequence generates one nucleotide sequence of length n. Motif repetition
// (short tandem repeats are common in ESTs) makes the output compressible
// at roughly the ratio real FASTA text achieves.
func Sequence(n int, rng *rand.Rand) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		if len(out) > 16 && rng.Intn(4) == 0 {
			// Repeat a recent motif.
			mlen := 4 + rng.Intn(12)
			back := mlen + rng.Intn(64)
			if back > len(out) {
				back = len(out)
			}
			start := len(out) - back
			for i := 0; i < mlen && len(out) < n; i++ {
				out = append(out, out[start+i%back])
			}
			continue
		}
		out = append(out, Alphabet[rng.Intn(4)])
	}
	return out
}

// Database is a set of sequences with identifiers — the BLAST subject
// database (the paper's: 687,158 human ESTs, 256 MB; ours: scaled).
type Database struct {
	IDs  []string
	Seqs [][]byte
}

// Len returns the number of sequences.
func (db *Database) Len() int { return len(db.Seqs) }

// TotalBytes is the summed sequence length.
func (db *Database) TotalBytes() int64 {
	var n int64
	for _, s := range db.Seqs {
		n += int64(len(s))
	}
	return n
}

// NewDatabase builds count sequences with lengths in [minLen, maxLen].
func NewDatabase(count, minLen, maxLen int, seed int64) *Database {
	rng := rand.New(rand.NewSource(seed))
	db := &Database{
		IDs:  make([]string, count),
		Seqs: make([][]byte, count),
	}
	for i := 0; i < count; i++ {
		n := minLen
		if maxLen > minLen {
			n += rng.Intn(maxLen - minLen)
		}
		db.IDs[i] = fmt.Sprintf("gi|%07d|est", i+1)
		db.Seqs[i] = Sequence(n, rng)
	}
	return db
}

// Queries samples q query sequences from the database, mutating a few
// bases so that alignments are strong but not exact (as in the paper,
// where the query file is a subset of the database).
func (db *Database) Queries(q int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, q)
	for i := range out {
		src := db.Seqs[rng.Intn(len(db.Seqs))]
		qs := make([]byte, len(src))
		copy(qs, src)
		for m := 0; m < len(qs)/50+1; m++ {
			qs[rng.Intn(len(qs))] = Alphabet[rng.Intn(4)]
		}
		out[i] = qs
	}
	return out
}

// FASTA renders the database in FASTA format with 70-column sequence
// lines — the input of the compression experiment.
func (db *Database) FASTA() []byte {
	var b bytes.Buffer
	for i, seq := range db.Seqs {
		fmt.Fprintf(&b, ">%s synthetic human EST\n", db.IDs[i])
		for off := 0; off < len(seq); off += 70 {
			end := off + 70
			if end > len(seq) {
				end = len(seq)
			}
			b.Write(seq[off:end])
			b.WriteByte('\n')
		}
	}
	return b.Bytes()
}

// ESTText generates approximately n bytes of FASTA text directly (the
// 100 MB nucleotide file of Section 7.3, scaled).
func ESTText(n int, seed int64) []byte {
	// Average ~1.02 bytes of FASTA per sequence byte (headers+newlines).
	seqBytes := n * 100 / 104
	count := seqBytes/400 + 1
	db := NewDatabase(count, 350, 450, seed)
	text := db.FASTA()
	if len(text) > n {
		text = text[:n]
	}
	return text
}
