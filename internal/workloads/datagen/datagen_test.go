package datagen

import (
	"bytes"
	"math/rand"
	"testing"

	"semplar/internal/lzo"
)

func TestSequenceAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := Sequence(10000, rng)
	if len(seq) != 10000 {
		t.Fatalf("len = %d", len(seq))
	}
	counts := map[byte]int{}
	for _, b := range seq {
		counts[b]++
	}
	for _, c := range []byte(Alphabet) {
		if counts[c] == 0 {
			t.Fatalf("letter %c never generated", c)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("alphabet = %v", counts)
	}
}

func TestSequenceDeterministic(t *testing.T) {
	a := Sequence(1000, rand.New(rand.NewSource(7)))
	b := Sequence(1000, rand.New(rand.NewSource(7)))
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, different sequence")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase(50, 100, 200, 3)
	if db.Len() != 50 {
		t.Fatalf("len = %d", db.Len())
	}
	for i, s := range db.Seqs {
		if len(s) < 100 || len(s) >= 200 {
			t.Fatalf("seq %d len %d outside [100,200)", i, len(s))
		}
	}
	if db.TotalBytes() < 50*100 {
		t.Fatal("total bytes")
	}
	ids := map[string]bool{}
	for _, id := range db.IDs {
		if ids[id] {
			t.Fatalf("duplicate id %s", id)
		}
		ids[id] = true
	}
}

func TestQueriesResembleDatabase(t *testing.T) {
	db := NewDatabase(20, 200, 300, 4)
	qs := db.Queries(5, 9)
	if len(qs) != 5 {
		t.Fatalf("queries = %d", len(qs))
	}
	// Each query must be within a few mutations of some database
	// sequence (same length, low Hamming distance).
	for qi, q := range qs {
		best := len(q)
		for _, s := range db.Seqs {
			if len(s) != len(q) {
				continue
			}
			d := 0
			for i := range s {
				if s[i] != q[i] {
					d++
				}
			}
			if d < best {
				best = d
			}
		}
		if best > len(q)/10 {
			t.Fatalf("query %d is %d mutations from nearest subject", qi, best)
		}
	}
}

func TestFASTAFormat(t *testing.T) {
	db := NewDatabase(3, 100, 150, 5)
	text := db.FASTA()
	lines := bytes.Split(text, []byte{'\n'})
	headers := 0
	for _, l := range lines {
		if len(l) == 0 {
			continue
		}
		if l[0] == '>' {
			headers++
			continue
		}
		if len(l) > 70 {
			t.Fatalf("sequence line of %d cols", len(l))
		}
		for _, c := range l {
			if !bytes.ContainsRune([]byte(Alphabet), rune(c)) {
				t.Fatalf("bad char %c", c)
			}
		}
	}
	if headers != 3 {
		t.Fatalf("headers = %d", headers)
	}
}

func TestESTTextSizeAndCompressibility(t *testing.T) {
	text := ESTText(200_000, 6)
	if len(text) > 200_000 || len(text) < 150_000 {
		t.Fatalf("len = %d, want ~200k", len(text))
	}
	// The compression experiment depends on this class of data
	// shrinking meaningfully under LZO.
	if r := lzo.Ratio(text); r < 1.3 {
		t.Fatalf("EST text ratio = %.2f, want >= 1.3", r)
	}
}
