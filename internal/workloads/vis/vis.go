// Package vis models the visualization workload the paper's introduction
// motivates: tools that "read large amounts of data periodically for
// subsequent computation". Each rank repeatedly reads its slab of the next
// timestep frame from the remote store and renders it. The asynchronous
// variant prefetches frame k+1 with MPI_File_iread_at while frame k
// renders — double buffering over the WAN.
package vis

import (
	"fmt"
	"time"

	"semplar/internal/adio"
	"semplar/internal/mpi"
	"semplar/internal/mpiio"
	"semplar/internal/stats"
)

// Mode selects the read strategy.
type Mode int

// Modes.
const (
	// Sync blocks reading each frame before rendering it.
	Sync Mode = iota
	// Prefetch overlaps the read of frame k+1 with the rendering of
	// frame k using the asynchronous primitives.
	Prefetch
)

func (m Mode) String() string {
	if m == Prefetch {
		return "prefetch"
	}
	return "sync"
}

// Config parameterizes one run.
type Config struct {
	Frames     int           // timesteps
	FrameBytes int           // per-rank bytes per frame
	RenderPad  time.Duration // additional render time per frame
	Mode       Mode
	Path       string // dataset file (must exist and be large enough)
	Hints      adio.Hints
}

func (c *Config) setDefaults() {
	if c.Frames <= 0 {
		c.Frames = 8
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = 256 << 10
	}
	if c.Path == "" {
		c.Path = "srb:/dataset"
	}
}

// DatasetBytes returns the file size a run requires.
func (c Config) DatasetBytes(np int) int64 {
	cfg := c
	cfg.setDefaults()
	return int64(cfg.Frames) * int64(np) * int64(cfg.FrameBytes)
}

// WriteDataset populates the dataset file with a deterministic pattern so
// renders can verify what they read. Call from one rank (or outside MPI).
func WriteDataset(reg *adio.Registry, cfg Config, np int) error {
	cfg.setDefaults()
	f, err := mpiio.OpenLocal(reg, cfg.Path, adio.O_WRONLY|adio.O_CREATE|adio.O_TRUNC, cfg.Hints)
	if err != nil {
		return err
	}
	defer f.Close()
	slab := make([]byte, cfg.FrameBytes)
	for frame := 0; frame < cfg.Frames; frame++ {
		for rank := 0; rank < np; rank++ {
			fillSlab(slab, frame, rank)
			off := slabOffset(cfg, np, frame, rank)
			if _, err := f.WriteAt(slab, off); err != nil {
				return err
			}
		}
	}
	return nil
}

func slabOffset(cfg Config, np, frame, rank int) int64 {
	return (int64(frame)*int64(np) + int64(rank)) * int64(cfg.FrameBytes)
}

func fillSlab(p []byte, frame, rank int) {
	seed := byte(frame*31 + rank*7 + 1)
	for i := range p {
		p[i] = seed + byte(i)
	}
}

func checkSlab(p []byte, frame, rank int) error {
	seed := byte(frame*31 + rank*7 + 1)
	for i, b := range p {
		if b != seed+byte(i) {
			return fmt.Errorf("vis: frame %d rank %d corrupted at byte %d", frame, rank, i)
		}
	}
	return nil
}

// Result is the job-wide measurement (identical on all ranks).
type Result struct {
	Exec   time.Duration
	Phases stats.Phases // render (compute) vs blocking-read time
	Frames int
	Bytes  int64
}

// Run executes the visualization loop; all ranks must call it and the
// dataset must have been written first.
func Run(c *mpi.Comm, reg *adio.Registry, cfg Config) (Result, error) {
	cfg.setDefaults()
	np := c.Size()
	rank := c.Rank()

	f, err := mpiio.Open(c, reg, cfg.Path, adio.O_RDONLY, cfg.Hints)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()

	bufs := [2][]byte{
		make([]byte, cfg.FrameBytes),
		make([]byte, cfg.FrameBytes),
	}
	var computeTime, ioTime time.Duration
	res := Result{}

	c.Barrier()
	start := time.Now()
	switch cfg.Mode {
	case Sync:
		for frame := 0; frame < cfg.Frames; frame++ {
			t0 := time.Now()
			if _, err := f.ReadAt(bufs[0], slabOffset(cfg, np, frame, rank)); err != nil {
				return res, err
			}
			ioTime += time.Since(t0)
			t0 = time.Now()
			if err := render(bufs[0], frame, rank, cfg.RenderPad); err != nil {
				return res, err
			}
			computeTime += time.Since(t0)
			res.Frames++
			res.Bytes += int64(cfg.FrameBytes)
		}
	case Prefetch:
		// Double buffering: frame k renders while k+1 loads. The I/O
		// phase records only the time the compute thread blocks in
		// Wait — the rest of each transfer hides under rendering.
		pending := f.IReadAt(bufs[0], slabOffset(cfg, np, 0, rank))
		for frame := 0; frame < cfg.Frames; frame++ {
			cur := bufs[frame%2]
			tw := time.Now()
			if _, err := mpiio.Wait(pending); err != nil {
				return res, err
			}
			ioTime += time.Since(tw)
			if frame+1 < cfg.Frames {
				pending = f.IReadAt(bufs[(frame+1)%2], slabOffset(cfg, np, frame+1, rank))
			}
			tr := time.Now()
			if err := render(cur, frame, rank, cfg.RenderPad); err != nil {
				return res, err
			}
			computeTime += time.Since(tr)
			res.Frames++
			res.Bytes += int64(cfg.FrameBytes)
		}
	default:
		return res, fmt.Errorf("vis: unknown mode %d", cfg.Mode)
	}
	c.Barrier()
	res.Exec = time.Since(start)

	res.Exec = time.Duration(c.AllreduceFloat64(float64(res.Exec), mpi.OpMax))
	res.Phases = stats.Phases{
		Compute: time.Duration(c.AllreduceFloat64(float64(computeTime), mpi.OpMax)),
		IO:      time.Duration(c.AllreduceFloat64(float64(ioTime), mpi.OpMax)),
	}
	res.Bytes = int64(c.AllreduceFloat64(float64(res.Bytes), mpi.OpSum))
	return res, nil
}

// render verifies the slab contents (the real work a renderer would do
// with the bytes) and pads to the configured render time.
func render(p []byte, frame, rank int, pad time.Duration) error {
	if err := checkSlab(p, frame, rank); err != nil {
		return err
	}
	if pad > 0 {
		time.Sleep(pad)
	}
	return nil
}
