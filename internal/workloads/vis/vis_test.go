package vis

import (
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
)

func memReg() *adio.Registry {
	r := &adio.Registry{}
	r.Register(adio.NewMemFS())
	return r
}

func TestDatasetRoundTrip(t *testing.T) {
	reg := memReg()
	cfg := Config{Frames: 3, FrameBytes: 4096, Path: "mem:/ds"}
	const np = 2
	if err := WriteDataset(reg, cfg, np); err != nil {
		t.Fatal(err)
	}
	mem, _ := reg.Lookup("mem")
	f, err := mem.Open("/ds", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	f.Close()
	if sz != cfg.DatasetBytes(np) {
		t.Fatalf("dataset size = %d want %d", sz, cfg.DatasetBytes(np))
	}
}

func TestRunVerifiesContent(t *testing.T) {
	for _, mode := range []Mode{Sync, Prefetch} {
		reg := memReg()
		cfg := Config{Frames: 5, FrameBytes: 8192, Path: "mem:/v", Mode: mode}
		const np = 3
		if err := WriteDataset(reg, cfg, np); err != nil {
			t.Fatal(err)
		}
		var res Result
		err := mpi.Run(np, func(c *mpi.Comm) error {
			r, err := Run(c, reg, cfg)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Frames != 5 {
			t.Fatalf("mode %v: frames = %d", mode, res.Frames)
		}
		if res.Bytes != int64(np*5*8192) {
			t.Fatalf("mode %v: bytes = %d", mode, res.Bytes)
		}
	}
}

func TestRunDetectsCorruption(t *testing.T) {
	reg := memReg()
	cfg := Config{Frames: 2, FrameBytes: 1024, Path: "mem:/c"}
	if err := WriteDataset(reg, cfg, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte of frame 1.
	mem, _ := reg.Lookup("mem")
	f, _ := mem.Open("/c", adio.O_RDWR, nil)
	f.WriteAt([]byte{0xFF}, 1024+17)
	f.Close()
	err := mpi.Run(1, func(c *mpi.Comm) error {
		_, err := Run(c, reg, cfg)
		return err
	})
	if err == nil {
		t.Fatal("corrupted frame rendered without error")
	}
}

func TestPrefetchOverlapsOnTestbed(t *testing.T) {
	// On the WAN testbed with render time ~ transfer time, prefetch
	// must beat sync by a wide margin.
	spec := cluster.DAS2().Scaled(20)
	const np = 2
	cfg := Config{
		Frames:     6,
		FrameBytes: 256 << 10, // ~36 ms per frame at the scaled stream rate
		RenderPad:  30 * time.Millisecond,
		Path:       "srb:/frames",
	}
	run := func(mode Mode) time.Duration {
		tb := cluster.New(spec, np)
		// Stage the dataset through node 0's path.
		if err := WriteDataset(tb.Registry(0, core.SRBFSConfig{}), cfg, np); err != nil {
			t.Fatal(err)
		}
		c2 := cfg
		c2.Mode = mode
		var res Result
		err := mpi.RunOn(np, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			r, err := Run(c, reg, c2)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Exec
	}
	syncT := run(Sync)
	prefT := run(Prefetch)
	if prefT > syncT*9/10 {
		t.Fatalf("prefetch %v vs sync %v; want clear win", prefT, syncT)
	}
}

func TestModeStrings(t *testing.T) {
	if Sync.String() != "sync" || Prefetch.String() != "prefetch" {
		t.Fatal("mode strings")
	}
}
