package laplace

import (
	"math"
	"testing"

	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
)

// memRun executes the solver against the in-memory local FS (no WAN).
func memRun(t *testing.T, np int, cfg Config) Result {
	t.Helper()
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	if cfg.Path == "" {
		cfg.Path = "mem:/ckpt"
	}
	var res Result
	err := mpi.Run(np, func(c *mpi.Comm) error {
		r, err := Run(c, reg, cfg)
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSweepConvergesTowardBoundary(t *testing.T) {
	// Single rank, enough iterations: heat diffuses from the top edge,
	// residual shrinks monotonically (Jacobi on Laplace is a
	// contraction).
	res := memRun(t, 1, Config{N: 24, Iters: 200, CheckpointEvery: 1000, Mode: Sync})
	if res.Residual <= 0 || res.Residual > 1.0 {
		t.Fatalf("residual after 200 iters = %v", res.Residual)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The checkpoint written by np ranks must equal the one written by
	// one rank: the halo exchange is correct iff the grids agree.
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)

	run := func(np int, path string) []float64 {
		cfg := Config{N: 32, Iters: 12, CheckpointEvery: 12, Mode: Sync, Path: path}
		if err := mpi.Run(np, func(c *mpi.Comm) error {
			_, err := Run(c, reg, cfg)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		f, err := mem.Open(path[len("mem:"):], adio.O_RDONLY, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sz, _ := f.Size()
		buf := make([]byte, sz)
		f.ReadAt(buf, 0)
		return DecodeGrid(buf)
	}

	serial := run(1, "mem:/serial")
	for _, np := range []int{2, 3, 5} {
		parallel := run(np, "mem:/parallel")
		if len(parallel) != len(serial) {
			t.Fatalf("np=%d: size %d vs %d", np, len(parallel), len(serial))
		}
		for i := range serial {
			if math.Abs(serial[i]-parallel[i]) > 1e-12 {
				t.Fatalf("np=%d: cell %d differs: %v vs %v",
					np, i, serial[i], parallel[i])
			}
		}
	}
}

func TestAsyncMatchesSync(t *testing.T) {
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	run := func(mode Mode, pos WaitPos, path string) []float64 {
		cfg := Config{N: 20, Iters: 15, CheckpointEvery: 5, Mode: mode,
			WaitPos: pos, Path: path}
		if err := mpi.Run(3, func(c *mpi.Comm) error {
			_, err := Run(c, reg, cfg)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		f, _ := mem.Open(path[len("mem:"):], adio.O_RDONLY, nil)
		defer f.Close()
		sz, _ := f.Size()
		buf := make([]byte, sz)
		f.ReadAt(buf, 0)
		return DecodeGrid(buf)
	}
	syncGrid := run(Sync, Pos1, "mem:/s")
	for _, pos := range []WaitPos{Pos1, Pos2} {
		asyncGrid := run(Async, pos, "mem:/a")
		if len(asyncGrid) != len(syncGrid) {
			t.Fatal("size mismatch")
		}
		for i := range syncGrid {
			if syncGrid[i] != asyncGrid[i] {
				t.Fatalf("pos=%d cell %d: sync %v async %v", pos, i, syncGrid[i], asyncGrid[i])
			}
		}
	}
}

func TestCheckpointAccounting(t *testing.T) {
	res := memRun(t, 2, Config{N: 16, Iters: 10, CheckpointEvery: 3, Mode: Sync})
	if res.Checkpoints != 3 { // iters 3, 6, 9
		t.Fatalf("checkpoints = %d", res.Checkpoints)
	}
	want := int64(3 * 16 * 18 * 8) // per job: ckpts * N rows * width * 8
	if res.Bytes != want {
		t.Fatalf("bytes = %d want %d", res.Bytes, want)
	}
	if res.Exec <= 0 || res.Phases.Compute <= 0 || res.Phases.IO <= 0 {
		t.Fatalf("phases = %+v exec = %v", res.Phases, res.Exec)
	}
}

func TestModesOverTestbed(t *testing.T) {
	// All four modes produce a correct checkpoint over the simulated
	// WAN testbed.
	tb := cluster.New(cluster.TGNCSA().Scaled(400), 2)
	for _, mode := range []Mode{Sync, Async, TwoStreams, AsyncTwoStreams} {
		cfg := Config{N: 24, Iters: 6, CheckpointEvery: 3, Mode: mode,
			Path: "srb:/ck-" + mode.String()}
		err := mpi.RunOn(2, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			res, err := Run(c, reg, cfg)
			if err != nil {
				return err
			}
			if c.Rank() == 0 && res.Checkpoints != 2 {
				t.Errorf("mode %v: checkpoints = %d", mode, res.Checkpoints)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		// Verify the checkpoint on the server.
		e, err := tb.Server.Catalog().Lookup("/ck-" + mode.String())
		if err != nil {
			t.Fatalf("mode %v: checkpoint missing: %v", mode, err)
		}
		if e.Size != 24*26*8 {
			t.Fatalf("mode %v: checkpoint size %d", mode, e.Size)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if Sync.String() != "sync" || Async.String() != "async" ||
		TwoStreams.String() != "2streams" || AsyncTwoStreams.String() != "async+2streams" {
		t.Fatal("mode strings")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode string")
	}
}

func TestDefaults(t *testing.T) {
	var cfg Config
	cfg.setDefaults()
	if cfg.N == 0 || cfg.Iters == 0 || cfg.CheckpointEvery == 0 ||
		cfg.WaitPos != Pos1 || cfg.Streams != 2 || cfg.Path == "" {
		t.Fatalf("defaults = %+v", cfg)
	}
}
