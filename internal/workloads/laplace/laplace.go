// Package laplace reproduces the OSC 2D Laplace solver benchmark: a
// Jacobi iteration over a fixed-size grid, row-partitioned across ranks
// with halo exchange, writing a periodic checkpoint of the whole grid to a
// shared remote file with individual file pointers and non-collective
// calls (Figure 4). Variants cover the paper's synchronous baseline, the
// asynchronous overlap version (with the wait-placement knob of Section
// 7.1), and the double-connection version of Section 7.2.
package laplace

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"time"

	"semplar/internal/adio"
	"semplar/internal/mpi"
	"semplar/internal/mpiio"
	"semplar/internal/stats"
)

// Mode selects the I/O strategy.
type Mode int

// I/O strategies of Figures 4 and 7.
const (
	// Sync blocks in MPI_File_write at every checkpoint.
	Sync Mode = iota
	// Async issues MPI_File_iwrite and overlaps the transfer with the
	// following iterations (position of the wait set by WaitPos).
	Async
	// TwoStreams writes synchronously but through two TCP connections
	// per node (library-level striping).
	TwoStreams
	// AsyncTwoStreams combines overlap with the double connection —
	// the combination that exposed the I/O-bus contention.
	AsyncTwoStreams
)

func (m Mode) String() string {
	switch m {
	case Sync:
		return "sync"
	case Async:
		return "async"
	case TwoStreams:
		return "2streams"
	case AsyncTwoStreams:
		return "async+2streams"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// WaitPos places the MPIO_Wait of the pending checkpoint (Figure 4).
type WaitPos int

const (
	// Pos1 waits as late as possible — just before the next checkpoint
	// — so the transfer overlaps both computation and MPI
	// communication.
	Pos1 WaitPos = 1
	// Pos2 waits before the next halo exchange, so the transfer
	// overlaps only local computation, avoiding I/O-bus contention
	// with the interconnect (the Section 7.1 restructuring).
	Pos2 WaitPos = 2
)

// Config parameterizes one run.
type Config struct {
	N               int // interior grid dimension (paper: 3001)
	Iters           int // Jacobi iterations
	CheckpointEvery int // iterations between checkpoints
	SweepsPerIter   int // local sweeps per halo exchange (compute knob)
	// ExchangesPerIter repeats the halo exchange to scale the MPI
	// communication share of the "computation" phase — Section 7.1
	// notes most of that phase is spent in MPI send/receive, which is
	// what makes the I/O-bus contention visible.
	ExchangesPerIter int
	// ComputePad extends each iteration's computation phase by a fixed
	// duration. The harness uses it to model per-node CPU time on
	// hosts with fewer cores than simulated ranks, where real sweeps
	// would serialize in wall-clock time.
	ComputePad time.Duration
	Mode       Mode
	WaitPos    WaitPos // used by Async*; default Pos1
	Streams    int     // connections per node for *TwoStreams; default 2
	Path       string  // checkpoint file, e.g. "srb:/ckpt"
	Hints      adio.Hints
}

func (c *Config) setDefaults() {
	if c.N <= 0 {
		c.N = 128
	}
	if c.Iters <= 0 {
		c.Iters = 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5
	}
	if c.SweepsPerIter <= 0 {
		c.SweepsPerIter = 1
	}
	if c.ExchangesPerIter <= 0 {
		c.ExchangesPerIter = 1
	}
	if c.WaitPos == 0 {
		c.WaitPos = Pos1
	}
	if c.Streams <= 0 {
		c.Streams = 2
	}
	if c.Path == "" {
		c.Path = "srb:/laplace.ckpt"
	}
}

// Result is the per-run measurement, identical on every rank (reduced).
type Result struct {
	Exec        time.Duration
	Phases      stats.Phases // compute (incl. MPI comm) vs blocking-I/O time
	Checkpoints int
	Bytes       int64   // bytes written by this job
	Residual    float64 // final max |delta| (correctness signal)
}

// Run executes the solver on the calling rank; all ranks must call it.
func Run(c *mpi.Comm, reg *adio.Registry, cfg Config) (Result, error) {
	cfg.setDefaults()
	size := c.Size()
	rank := c.Rank()

	// Row-block decomposition of the interior rows [0, N).
	lo := rank * cfg.N / size
	hi := (rank + 1) * cfg.N / size
	rows := hi - lo
	width := cfg.N + 2 // including boundary columns

	// Local grid with one halo row above and below.
	cur := make([]float64, (rows+2)*width)
	next := make([]float64, (rows+2)*width)
	// Boundary condition: the global top edge is held at 100.
	if rank == 0 {
		for j := 0; j < width; j++ {
			cur[j] = 100
			next[j] = 100
		}
	}

	hints := adio.Hints{}
	for k, v := range cfg.Hints {
		hints[k] = v
	}
	streams := 1
	if cfg.Mode == TwoStreams || cfg.Mode == AsyncTwoStreams {
		streams = cfg.Streams
	}
	hints["streams"] = strconv.Itoa(streams)
	if _, ok := hints["stripe_size"]; !ok && streams > 1 {
		// Split each checkpoint write evenly across the streams.
		stripe := (rows*width*8 + streams - 1) / streams
		if stripe < 1 {
			stripe = 1
		}
		hints["stripe_size"] = strconv.Itoa(stripe)
	}

	flags := adio.O_RDWR | adio.O_CREATE
	f, err := mpiio.Open(c, reg, cfg.Path, flags, hints)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()

	async := cfg.Mode == Async || cfg.Mode == AsyncTwoStreams
	// Double buffering: an iwrite's buffer must stay untouched until the
	// request completes.
	ckptBuf := [2][]byte{
		make([]byte, rows*width*8),
		make([]byte, rows*width*8),
	}
	bufIdx := 0
	var pending *mpiio.Request

	res := Result{}
	var computeTime, ioTime time.Duration
	offset := int64(lo) * int64(width) * 8

	wait := func() error {
		if pending == nil {
			return nil
		}
		t0 := time.Now()
		_, werr := mpiio.Wait(pending)
		ioTime += time.Since(t0)
		pending = nil
		return werr
	}

	c.Barrier()
	start := time.Now()
	for iter := 1; iter <= cfg.Iters; iter++ {
		// Local computation.
		t0 := time.Now()
		var delta float64
		for s := 0; s < cfg.SweepsPerIter; s++ {
			delta = sweep(cur, next, rows, width)
			cur, next = next, cur
		}
		res.Residual = delta
		if cfg.ComputePad > 0 {
			time.Sleep(cfg.ComputePad)
		}
		computeTime += time.Since(t0)

		// Section 7.1 restructuring: wait here so the checkpoint
		// transfer never overlaps MPI communication.
		if async && cfg.WaitPos == Pos2 {
			if err := wait(); err != nil {
				return res, err
			}
		}

		// Halo exchange (MPI communication; the paper counts it as
		// part of the computation phase).
		t0 = time.Now()
		for e := 0; e < cfg.ExchangesPerIter; e++ {
			exchangeHalos(c, cur, rows, width, rank, size)
		}
		computeTime += time.Since(t0)

		// Periodic checkpoint.
		if iter%cfg.CheckpointEvery == 0 {
			if async {
				// Pos1: wait as late as possible, right before
				// reusing the request slot.
				if err := wait(); err != nil {
					return res, err
				}
				t0 = time.Now()
				buf := ckptBuf[bufIdx]
				bufIdx = 1 - bufIdx
				encodeRows(buf, cur, rows, width)
				pending = f.IWriteAt(buf, offset)
				ioTime += time.Since(t0) // issue cost only
			} else {
				t0 = time.Now()
				buf := ckptBuf[0]
				encodeRows(buf, cur, rows, width)
				if _, err := f.WriteAt(buf, offset); err != nil {
					return res, err
				}
				ioTime += time.Since(t0)
			}
			res.Checkpoints++
			res.Bytes += int64(rows * width * 8)
		}
	}
	if err := wait(); err != nil {
		return res, err
	}
	c.Barrier()
	res.Exec = time.Since(start)

	// Reduce to job-wide maxima so all ranks report the same numbers.
	res.Exec = maxDuration(c, res.Exec)
	res.Phases = stats.Phases{
		Compute: maxDuration(c, computeTime),
		IO:      maxDuration(c, ioTime),
	}
	res.Bytes = int64(c.AllreduceFloat64(float64(res.Bytes), mpi.OpSum))
	res.Residual = c.AllreduceFloat64(res.Residual, mpi.OpMax)
	return res, nil
}

func maxDuration(c *mpi.Comm, d time.Duration) time.Duration {
	return time.Duration(c.AllreduceFloat64(float64(d), mpi.OpMax))
}

// SweepProbe exposes one Jacobi sweep for calibration (the harness uses
// it to size the compute phase against a testbed's I/O time).
func SweepProbe(cur, next []float64, rows, width int) float64 {
	return sweep(cur, next, rows, width)
}

// sweep performs one Jacobi relaxation over the interior cells and
// returns the maximum cell delta.
func sweep(cur, next []float64, rows, width int) float64 {
	var maxDelta float64
	for i := 1; i <= rows; i++ {
		row := i * width
		up := row - width
		down := row + width
		for j := 1; j < width-1; j++ {
			v := 0.25 * (cur[up+j] + cur[down+j] + cur[row+j-1] + cur[row+j+1])
			if d := math.Abs(v - cur[row+j]); d > maxDelta {
				maxDelta = d
			}
			next[row+j] = v
		}
		// Preserve boundary columns.
		next[row] = cur[row]
		next[row+width-1] = cur[row+width-1]
	}
	// Preserve halo rows (refreshed by the next exchange).
	copy(next[:width], cur[:width])
	copy(next[(rows+1)*width:], cur[(rows+1)*width:])
	return maxDelta
}

// exchangeHalos swaps edge rows with the neighbor ranks.
func exchangeHalos(c *mpi.Comm, grid []float64, rows, width, rank, size int) {
	const tagUp, tagDown = 101, 102
	top := grid[width : 2*width]                // first owned row
	bottom := grid[rows*width : (rows+1)*width] // last owned row

	if rank > 0 && rank < size-1 {
		// Exchange with both neighbors concurrently.
		up := c.SendRecv(rank-1, tagUp, encodeFloat64s(top), rank-1, tagDown)
		decodeInto(grid[:width], up)
		down := c.SendRecv(rank+1, tagDown, encodeFloat64s(bottom), rank+1, tagUp)
		decodeInto(grid[(rows+1)*width:], down)
		return
	}
	if rank > 0 { // bottom rank: only an upper neighbor
		up := c.SendRecv(rank-1, tagUp, encodeFloat64s(top), rank-1, tagDown)
		decodeInto(grid[:width], up)
	}
	if rank < size-1 { // top rank: only a lower neighbor
		down := c.SendRecv(rank+1, tagDown, encodeFloat64s(bottom), rank+1, tagUp)
		decodeInto(grid[(rows+1)*width:], down)
	}
}

func encodeFloat64s(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func decodeInto(dst []float64, data []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
}

// encodeRows serializes the owned rows (excluding halos) into buf.
func encodeRows(buf []byte, grid []float64, rows, width int) {
	for i := 0; i < rows*width; i++ {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(grid[width+i]))
	}
}

// DecodeGrid decodes a checkpoint file image back into row-major floats
// (for verification).
func DecodeGrid(data []byte) []float64 {
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out
}
