package perf

import (
	"testing"

	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
)

func TestPerfLocal(t *testing.T) {
	reg := &adio.Registry{}
	reg.Register(adio.NewMemFS())
	cfg := Config{ArrayBytes: 64 << 10, Path: "mem:/perf", Verify: true}
	var res Result
	err := mpi.Run(4, func(c *mpi.Comm) error {
		r, err := Run(c, reg, cfg)
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 4*64<<10 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	if res.WriteMbps <= 0 || res.ReadMbps <= 0 {
		t.Fatalf("bandwidths = %v / %v", res.WriteMbps, res.ReadMbps)
	}
}

func TestPerfVerifyCatchesOverlap(t *testing.T) {
	// Ranks write disjoint regions; Verify proves the rank pattern
	// survives (would fail if offsets collided).
	reg := &adio.Registry{}
	reg.Register(adio.NewMemFS())
	err := mpi.Run(3, func(c *mpi.Comm) error {
		_, err := Run(c, reg, Config{ArrayBytes: 4096, Path: "mem:/v", Verify: true})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerfOverTestbedTwoStreams(t *testing.T) {
	tb := cluster.New(cluster.DAS2().Scaled(400), 2)
	for _, streams := range []int{1, 2} {
		cfg := Config{
			ArrayBytes: 128 << 10,
			Streams:    streams,
			Path:       "srb:/perf.dat",
			Verify:     true,
		}
		err := mpi.RunOn(2, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			res, err := Run(c, reg, cfg)
			if err != nil {
				return err
			}
			if c.Rank() == 0 && (res.WriteMbps <= 0 || res.ReadMbps <= 0) {
				t.Errorf("streams=%d: zero bandwidth %+v", streams, res)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("streams=%d: %v", streams, err)
		}
	}
}

func TestPerfSkipRead(t *testing.T) {
	reg := &adio.Registry{}
	reg.Register(adio.NewMemFS())
	err := mpi.Run(2, func(c *mpi.Comm) error {
		res, err := Run(c, reg, Config{ArrayBytes: 4096, Path: "mem:/w", SkipRead: true})
		if err != nil {
			return err
		}
		if res.ReadTime != 0 || res.ReadMbps != 0 {
			t.Errorf("read happened despite SkipRead: %+v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	var cfg Config
	cfg.setDefaults()
	if cfg.ArrayBytes == 0 || cfg.Streams != 1 || cfg.Path == "" {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg = Config{ArrayBytes: 100, Streams: 4}
	cfg.setDefaults()
	if cfg.StripeSize != 25 {
		t.Fatalf("stripe = %d", cfg.StripeSize)
	}
}
