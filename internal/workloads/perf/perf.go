// Package perf reproduces the ROMIO perf microbenchmark: every process
// writes a data array to a shared file at a fixed, rank-determined
// location with MPI_File_write_at, then reads it back, and the benchmark
// reports aggregate bandwidth. The multi-stream variant (Section 7.2)
// stripes each process's array over concurrent TCP connections via the
// SEMPLAR driver's streams hint.
package perf

import (
	"fmt"
	"strconv"
	"time"

	"semplar/internal/adio"
	"semplar/internal/mpi"
	"semplar/internal/mpiio"
	"semplar/internal/stats"
)

// Config parameterizes one perf run.
type Config struct {
	ArrayBytes int    // per-process array (paper: 32 MB)
	Streams    int    // TCP streams per node (1 or 2 in the paper)
	StripeSize int    // default: ArrayBytes/Streams (one big split write)
	Path       string // shared file
	Hints      adio.Hints
	Verify     bool // check the read-back pattern
	SkipRead   bool // write-only runs
}

func (c *Config) setDefaults() {
	if c.ArrayBytes <= 0 {
		c.ArrayBytes = 1 << 20
	}
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.StripeSize <= 0 {
		c.StripeSize = (c.ArrayBytes + c.Streams - 1) / c.Streams
	}
	if c.Path == "" {
		c.Path = "srb:/perf.dat"
	}
}

// Result reports aggregate bandwidths (all ranks see the same values).
type Result struct {
	WriteTime time.Duration
	ReadTime  time.Duration
	WriteMbps float64 // aggregate, megabits/sec (the paper's unit)
	ReadMbps  float64
	Bytes     int64 // aggregate bytes moved per direction
}

// Run executes perf; all ranks must call it.
func Run(c *mpi.Comm, reg *adio.Registry, cfg Config) (Result, error) {
	cfg.setDefaults()
	rank := c.Rank()

	hints := adio.Hints{}
	for k, v := range cfg.Hints {
		hints[k] = v
	}
	hints["streams"] = strconv.Itoa(cfg.Streams)
	hints["stripe_size"] = strconv.Itoa(cfg.StripeSize)

	f, err := mpiio.Open(c, reg, cfg.Path, adio.O_RDWR|adio.O_CREATE, hints)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()

	// Each process writes at a fixed location determined by its rank.
	data := make([]byte, cfg.ArrayBytes)
	for i := range data {
		data[i] = byte(rank + i*7)
	}
	offset := int64(rank) * int64(cfg.ArrayBytes)

	res := Result{Bytes: int64(cfg.ArrayBytes) * int64(c.Size())}

	c.Barrier()
	t0 := time.Now()
	if _, err := f.WriteAt(data, offset); err != nil {
		return res, fmt.Errorf("perf: rank %d write: %w", rank, err)
	}
	c.Barrier()
	res.WriteTime = time.Since(t0)

	if !cfg.SkipRead {
		got := make([]byte, cfg.ArrayBytes)
		c.Barrier()
		t0 = time.Now()
		if _, err := f.ReadAt(got, offset); err != nil {
			return res, fmt.Errorf("perf: rank %d read: %w", rank, err)
		}
		c.Barrier()
		res.ReadTime = time.Since(t0)

		if cfg.Verify {
			for i := range got {
				if got[i] != data[i] {
					return res, fmt.Errorf("perf: rank %d verify failed at byte %d", rank, i)
				}
			}
		}
	}

	// Agree on the slowest-rank times (the barriers make per-rank times
	// nearly equal already, but reduce for determinism).
	res.WriteTime = time.Duration(c.AllreduceFloat64(float64(res.WriteTime), mpi.OpMax))
	res.ReadTime = time.Duration(c.AllreduceFloat64(float64(res.ReadTime), mpi.OpMax))
	res.WriteMbps = stats.MbPerSec(res.Bytes, res.WriteTime)
	res.ReadMbps = stats.MbPerSec(res.Bytes, res.ReadTime)
	return res, nil
}
