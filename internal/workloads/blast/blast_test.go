package blast

import (
	"bytes"
	"strings"
	"testing"

	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/workloads/datagen"
)

func testDB(t *testing.T) *datagen.Database {
	t.Helper()
	return datagen.NewDatabase(40, 200, 400, 42)
}

func TestIndexFindsExactKmers(t *testing.T) {
	db := testDB(t)
	ix := NewIndex(db, 11)
	// Every 11-mer of sequence 0 must be findable at its position.
	seq := db.Seqs[0]
	var code uint32
	mask := uint32(1)<<22 - 1
	for i := 0; i < len(seq); i++ {
		code = (code<<2 | baseCode(seq[i])) & mask
		if i < 10 {
			continue
		}
		found := false
		for _, r := range ix.Lookup(code) {
			if r.seq == 0 && int(r.off) == i-10 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("k-mer at offset %d not indexed", i-10)
		}
	}
}

func TestIndexKClamp(t *testing.T) {
	db := testDB(t)
	if NewIndex(db, 0).K != 11 || NewIndex(db, 99).K != 11 {
		t.Fatal("k clamp")
	}
	if NewIndex(db, 8).K != 8 {
		t.Fatal("explicit k")
	}
}

func TestSearchFindsPlantedAlignment(t *testing.T) {
	db := testDB(t)
	ix := NewIndex(db, 11)
	// A query copied from a subject must hit that subject with a high
	// score covering most of its length.
	query := append([]byte(nil), db.Seqs[7]...)
	hits := Search(ix, db, query, 0, 8, 20)
	if len(hits) == 0 {
		t.Fatal("no hits for exact copy")
	}
	best := hits[0]
	if best.Subject != 7 {
		t.Fatalf("best hit subject = %d want 7", best.Subject)
	}
	if best.Length < len(query)*9/10 {
		t.Fatalf("best hit length = %d of %d", best.Length, len(query))
	}
	if best.Score < len(query)*8/10 {
		t.Fatalf("best hit score = %d", best.Score)
	}
}

func TestSearchToleratesMutations(t *testing.T) {
	db := testDB(t)
	ix := NewIndex(db, 11)
	query := append([]byte(nil), db.Seqs[3]...)
	// Mutate a few bases; the alignment should survive.
	for _, p := range []int{20, 90, 150} {
		if p < len(query) {
			query[p] = 'A' + 'C' - query[p]%2 // crude flip
		}
	}
	qs := db.Queries(1, 5)[0]
	_ = qs
	hits := Search(ix, db, query, 0, 8, 20)
	found := false
	for _, h := range hits {
		if h.Subject == 3 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("mutated query no longer hits its source")
	}
}

func TestSearchScoresSorted(t *testing.T) {
	db := testDB(t)
	ix := NewIndex(db, 11)
	hits := Search(ix, db, db.Queries(1, 8)[0], 0, 8, 20)
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
}

func TestSearchShortQuery(t *testing.T) {
	db := testDB(t)
	ix := NewIndex(db, 11)
	if hits := Search(ix, db, []byte("ACGT"), 0, 8, 20); hits != nil {
		t.Fatal("short query produced hits")
	}
}

func TestExtendExact(t *testing.T) {
	s := []byte("AAAACCCCGGGGTTTT")
	qs, ss, length, score := extend(s, s, 4, 4, 4, 8)
	if qs != 0 || ss != 0 || length != len(s) || score != len(s) {
		t.Fatalf("extend exact = qs%d ss%d len%d score%d", qs, ss, length, score)
	}
}

func TestExtendStopsAtMismatchRun(t *testing.T) {
	q := []byte("AAAAAAAATTTTTTTT")
	s := []byte("AAAAAAAACCCCCCCC")
	_, _, length, score := extend(q, s, 0, 0, 8, 4)
	if length > 10 {
		t.Fatalf("extension ran through mismatches: len=%d", length)
	}
	if score < 8-4 {
		t.Fatalf("score = %d", score)
	}
}

func TestFormatReportPadsToTarget(t *testing.T) {
	hits := []Hit{{Query: 1, Subject: 2, Score: 30, Length: 40}}
	rep := FormatReport(1, hits, 4096)
	if len(rep) != 4096 {
		t.Fatalf("report len = %d", len(rep))
	}
	if !strings.Contains(string(rep[:100]), "BLASTN query=1 hits=1") {
		t.Fatalf("header missing: %q", rep[:60])
	}
}

func TestRunMasterWorker(t *testing.T) {
	db := testDB(t)
	queries := db.Queries(9, 7)
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)

	for _, mode := range []Mode{Sync, Async} {
		cfg := Config{
			DB: db, Queries: queries, Mode: mode,
			ReportSize: 2048,
			PathPrefix: "mem:/" + mode.String() + "-",
		}
		var res Result
		err := mpi.Run(4, func(c *mpi.Comm) error {
			r, err := Run(c, reg, cfg)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Queries != 9 {
			t.Fatalf("mode %v: processed %d queries", mode, res.Queries)
		}
		if res.Hits == 0 {
			t.Fatalf("mode %v: no hits", mode)
		}
		if res.Bytes != 9*2048 {
			t.Fatalf("mode %v: bytes = %d", mode, res.Bytes)
		}
		// Each worker's output file exists and is a multiple of the
		// report size.
		var total int64
		for w := 1; w <= 3; w++ {
			f, err := mem.Open(strings.TrimPrefix(cfg.PathPrefix, "mem:")+
				string(rune('0'+w))+".out", adio.O_RDONLY, nil)
			if err != nil {
				t.Fatalf("mode %v: worker %d file: %v", mode, w, err)
			}
			sz, _ := f.Size()
			f.Close()
			if sz%2048 != 0 {
				t.Fatalf("mode %v: worker %d size %d", mode, w, sz)
			}
			total += sz
		}
		if total != 9*2048 {
			t.Fatalf("mode %v: total output %d", mode, total)
		}
	}
}

func TestRunNeedsWorkers(t *testing.T) {
	db := testDB(t)
	reg := &adio.Registry{}
	reg.Register(adio.NewMemFS())
	err := mpi.Run(1, func(c *mpi.Comm) error {
		_, err := Run(c, reg, Config{DB: db, Queries: db.Queries(1, 1)})
		if err == nil {
			t.Error("single-rank run accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunOverTestbed(t *testing.T) {
	db := datagen.NewDatabase(20, 150, 250, 1)
	queries := db.Queries(6, 2)
	tb := cluster.New(cluster.OSC().Scaled(400), 3)
	cfg := Config{DB: db, Queries: queries, Mode: Async,
		ReportSize: 4096, PathPrefix: "srb:/blast-"}
	err := mpi.RunOn(3, tb.Fabric(), func(c *mpi.Comm) error {
		reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
		_, err := Run(c, reg, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Outputs landed on the SRB server.
	ls, err := tb.Server.Catalog().List("/")
	if err != nil {
		t.Fatal(err)
	}
	outs := 0
	for _, e := range ls {
		if strings.HasPrefix(e.Path, "/blast-") && e.Size > 0 {
			outs++
		}
	}
	if outs != 2 { // two workers
		t.Fatalf("worker outputs on server = %d", outs)
	}
}

func TestReportDeterministic(t *testing.T) {
	db := testDB(t)
	ix := NewIndex(db, 11)
	q := db.Queries(1, 3)[0]
	h1 := Search(ix, db, q, 0, 8, 20)
	h2 := Search(ix, db, q, 0, 8, 20)
	r1 := FormatReport(0, h1, 1024)
	r2 := FormatReport(0, h2, 1024)
	if !bytes.Equal(r1, r2) {
		t.Fatal("search/report not deterministic")
	}
}
