// Package blast reproduces the OSU MPI-BLAST benchmark: a master/worker
// wrapper around a BLAST-style nucleotide search. The master owns the
// query file and hands sequences to workers on request; each worker
// searches the shared database (k-mer seed and ungapped X-drop extension)
// and appends a ~50 KB report per query to its own independent remote file
// using individual file pointers and non-collective calls (Figure 5).
package blast

import (
	"fmt"
	"sort"
	"time"

	"semplar/internal/adio"
	"semplar/internal/mpi"
	"semplar/internal/mpiio"
	"semplar/internal/stats"
	"semplar/internal/trace"
	"semplar/internal/workloads/datagen"
)

// Mode selects synchronous or asynchronous result writing.
type Mode int

// Modes.
const (
	// Sync blocks in MPI_File_write after every query.
	Sync Mode = iota
	// Async issues MPI_File_iwrite and overlaps the write of query k
	// with the search of query k+1.
	Async
)

func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// Hit is one alignment found by the search.
type Hit struct {
	Query   int
	Subject int
	QOff    int
	SOff    int
	Length  int
	Score   int
}

// Config parameterizes one MPI-BLAST run.
type Config struct {
	DB         *datagen.Database
	Index      *Index // prebuilt k-mer index of DB (built if nil)
	Queries    [][]byte
	K          int // k-mer size (default 11)
	XDrop      int // extension drop-off (default 8)
	MinScore   int // report threshold (default 20)
	ReportSize int // bytes of output per query (paper: ~50 KB)
	// ComputeRepeat repeats each query's search to scale the
	// computation phase (the harness calibrates it to the paper's
	// compute-to-I/O ratio of roughly 4:1).
	ComputeRepeat int
	// ComputePad extends each query's computation phase by a fixed
	// duration. The harness uses it to model the paper's per-node CPU
	// time on hosts with fewer cores than simulated ranks, where real
	// arithmetic would serialize in wall-clock time.
	ComputePad time.Duration
	Mode       Mode
	PathPrefix string // worker w writes <PathPrefix><w>.out
	Hints      adio.Hints
	// Tracer, when non-nil, records each worker's request lifecycle
	// (engine queue, wire ops) so a trace viewer shows the compute/I-O
	// overlap the benchmark is designed to exercise.
	Tracer *trace.Tracer
}

func (c *Config) setDefaults() {
	if c.K <= 0 {
		c.K = 11
	}
	if c.XDrop <= 0 {
		c.XDrop = 8
	}
	if c.MinScore <= 0 {
		c.MinScore = 20
	}
	if c.ReportSize <= 0 {
		c.ReportSize = 50 << 10
	}
	if c.ComputeRepeat <= 0 {
		c.ComputeRepeat = 1
	}
	if c.PathPrefix == "" {
		c.PathPrefix = "srb:/blast-"
	}
}

// Result is the job-wide measurement (identical on all ranks).
type Result struct {
	Exec    time.Duration
	Phases  stats.Phases
	Queries int
	Hits    int
	Bytes   int64
}

// Message tags of the master/worker protocol.
const (
	tagRequest = 11
	tagAssign  = 12
)

// Run executes the benchmark; rank 0 is the master, the rest are workers.
// It requires at least 2 ranks.
func Run(c *mpi.Comm, reg *adio.Registry, cfg Config) (Result, error) {
	cfg.setDefaults()
	if c.Size() < 2 {
		return Result{}, fmt.Errorf("blast: need >= 2 ranks (master + workers), got %d", c.Size())
	}
	if cfg.Index == nil {
		cfg.Index = NewIndex(cfg.DB, cfg.K)
	}

	var computeTime, ioTime time.Duration
	var hits, queries int
	var bytes int64

	c.Barrier()
	start := time.Now()
	if c.Rank() == 0 {
		runMaster(c, len(cfg.Queries))
	} else {
		var err error
		queries, hits, bytes, computeTime, ioTime, err = runWorker(c, reg, &cfg)
		if err != nil {
			return Result{}, err
		}
	}
	c.Barrier()

	res := Result{Exec: time.Since(start)}
	res.Exec = time.Duration(c.AllreduceFloat64(float64(res.Exec), mpi.OpMax))
	res.Phases = stats.Phases{
		Compute: time.Duration(c.AllreduceFloat64(float64(computeTime), mpi.OpMax)),
		IO:      time.Duration(c.AllreduceFloat64(float64(ioTime), mpi.OpMax)),
	}
	res.Queries = int(c.AllreduceFloat64(float64(queries), mpi.OpSum))
	res.Hits = int(c.AllreduceFloat64(float64(hits), mpi.OpSum))
	res.Bytes = int64(c.AllreduceFloat64(float64(bytes), mpi.OpSum))
	return res, nil
}

// runMaster serves query indices to workers until exhausted, then sends
// each worker a -1 sentinel.
func runMaster(c *mpi.Comm, nqueries int) {
	next := 0
	remaining := c.Size() - 1
	for remaining > 0 {
		_, src, _ := c.Recv(mpi.Any, tagRequest)
		if next < nqueries {
			c.SendInt(src, tagAssign, next)
			next++
		} else {
			c.SendInt(src, tagAssign, -1)
			remaining--
		}
	}
}

func runWorker(c *mpi.Comm, reg *adio.Registry, cfg *Config) (queries, hits int, bytes int64, computeTime, ioTime time.Duration, err error) {
	path := fmt.Sprintf("%s%d.out", cfg.PathPrefix, c.Rank())
	f, ferr := mpiio.OpenLocal(reg, path, adio.O_WRONLY|adio.O_CREATE|adio.O_TRUNC, cfg.Hints)
	if ferr == nil && cfg.Tracer != nil {
		f.SetTracer(cfg.Tracer)
	}
	if ferr != nil {
		err = ferr
		return
	}
	defer f.Close()

	var pending *mpiio.Request
	wait := func() error {
		if pending == nil {
			return nil
		}
		t0 := time.Now()
		_, werr := mpiio.Wait(pending)
		ioTime += time.Since(t0)
		pending = nil
		return werr
	}

	for {
		c.Send(0, tagRequest, nil)
		q, _ := c.RecvInt(0, tagAssign)
		if q < 0 {
			break
		}

		// Computation phase: search + report generation.
		t0 := time.Now()
		var found []Hit
		for r := 0; r < cfg.ComputeRepeat; r++ {
			found = Search(cfg.Index, cfg.DB, cfg.Queries[q], q, cfg.XDrop, cfg.MinScore)
		}
		report := FormatReport(q, found, cfg.ReportSize)
		if cfg.ComputePad > 0 {
			time.Sleep(cfg.ComputePad)
		}
		computeTime += time.Since(t0)
		hits += len(found)
		queries++
		bytes += int64(len(report))

		// I/O phase: write the report to this worker's file.
		switch cfg.Mode {
		case Sync:
			t0 = time.Now()
			if _, werr := f.Write(report); werr != nil {
				err = werr
				return
			}
			ioTime += time.Since(t0)
		case Async:
			// The write of the previous query's report has been
			// overlapping this query's search; reclaim it now.
			if werr := wait(); werr != nil {
				err = werr
				return
			}
			pending = f.IWrite(report)
		}
	}
	err = wait()
	return
}

// FormatReport renders hits as BLAST-like text and pads the report to
// approximately target bytes (BLAST emits ~50 KB per query: alignments,
// traceback art and statistics).
func FormatReport(query int, hits []Hit, target int) []byte {
	out := make([]byte, 0, target+256)
	out = append(out, []byte(fmt.Sprintf("BLASTN query=%d hits=%d\n", query, len(hits)))...)
	for _, h := range hits {
		out = append(out, []byte(fmt.Sprintf(
			" subject=%d qoff=%d soff=%d len=%d score=%d\n",
			h.Subject, h.QOff, h.SOff, h.Length, h.Score))...)
		if len(out) >= target {
			break
		}
	}
	// Pad with alignment-trace filler to reach the target size.
	const filler = "||||||||||| alignment trace |||||||||||\n"
	for len(out) < target {
		n := target - len(out)
		if n > len(filler) {
			n = len(filler)
		}
		out = append(out, filler[:n]...)
	}
	return out
}

// Index is a k-mer lookup table over the database, built once and shared
// read-only by all workers.
type Index struct {
	K   int
	pos map[uint32][]ref
}

type ref struct {
	seq int32
	off int32
}

// NewIndex builds the k-mer index (2 bits per base; K must be <= 16).
func NewIndex(db *datagen.Database, k int) *Index {
	if k <= 0 || k > 16 {
		k = 11
	}
	idx := &Index{K: k, pos: make(map[uint32][]ref)}
	for si, seq := range db.Seqs {
		var code uint32
		mask := uint32(1)<<(2*uint(k)) - 1
		valid := 0
		for i, b := range seq {
			code = (code<<2 | baseCode(b)) & mask
			valid++
			if valid >= k {
				idx.pos[code] = append(idx.pos[code], ref{seq: int32(si), off: int32(i - k + 1)})
			}
		}
	}
	return idx
}

// Lookup returns database positions of a k-mer code.
func (ix *Index) Lookup(code uint32) []ref { return ix.pos[code] }

func baseCode(b byte) uint32 {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	default:
		return 3
	}
}

// Search runs seed-and-extend of the query against the database: every
// query k-mer is looked up in the index and each seed is extended in both
// directions with an X-drop cutoff (match +1, mismatch -2). Overlapping
// hits on the same diagonal are deduplicated; results are sorted by
// descending score.
func Search(ix *Index, db *datagen.Database, query []byte, queryID, xdrop, minScore int) []Hit {
	k := ix.K
	if len(query) < k {
		return nil
	}
	seenDiag := make(map[int64]int) // (seq, diagonal) -> last covered qoff
	var hits []Hit

	var code uint32
	mask := uint32(1)<<(2*uint(k)) - 1
	valid := 0
	for i := 0; i < len(query); i++ {
		code = (code<<2 | baseCode(query[i])) & mask
		valid++
		if valid < k {
			continue
		}
		qoff := i - k + 1
		for _, r := range ix.Lookup(code) {
			seq := db.Seqs[r.seq]
			// Pack (subject, diagonal) into one key; the diagonal is
			// biased by 2^20 to stay non-negative.
			diagVal := int64(int(r.off) - qoff + (1 << 20))
			diag := int64(r.seq)<<24 | diagVal
			if last, ok := seenDiag[diag]; ok && qoff <= last {
				continue // already covered by a previous extension
			}
			qs, ss, length, score := extend(query, seq, qoff, int(r.off), k, xdrop)
			seenDiag[diag] = qs + length
			if score >= minScore {
				hits = append(hits, Hit{
					Query: queryID, Subject: int(r.seq),
					QOff: qs, SOff: ss, Length: length, Score: score,
				})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score })
	return hits
}

// extend grows an exact k-mer seed in both directions, stopping when the
// running score falls xdrop below the best seen (ungapped X-drop).
func extend(query, subject []byte, qoff, soff, k, xdrop int) (qs, ss, length, score int) {
	const (
		match    = 1
		mismatch = -2
	)
	score = k * match
	best := score
	// Right extension.
	qe, se := qoff+k, soff+k
	bq, bs := qe, se
	for qe < len(query) && se < len(subject) {
		if query[qe] == subject[se] {
			score += match
		} else {
			score += mismatch
		}
		qe++
		se++
		if score > best {
			best = score
			bq, bs = qe, se
		}
		if best-score >= xdrop {
			break
		}
	}
	qe, se = bq, bs
	score = best
	// Left extension.
	qs, ss = qoff, soff
	bq, bs = qs, ss
	for qs > 0 && ss > 0 {
		if query[qs-1] == subject[ss-1] {
			score += match
		} else {
			score += mismatch
		}
		qs--
		ss--
		if score > best {
			best = score
			bq, bs = qs, ss
		}
		if best-score >= xdrop {
			break
		}
	}
	qs, ss = bq, bs
	return qs, ss, qe - qs, best
}
