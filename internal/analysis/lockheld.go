package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// exprKey renders a mutex receiver expression as its identity key.
func exprKey(e ast.Expr) string { return types.ExprString(e) }

// lockheld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held. Blocking means: channel send/receive, select
// without a default, time.Sleep, a method named Wait (sync.Cond.Wait is
// exempt — it releases the mutex), and Read/Write-family calls whose
// receiver is an interface (io.Reader, net.Conn, ...) or a net/bufio type.
//
// The walk is intraprocedural and syntactic-sequential: a mutex is held
// from <expr>.Lock() until <expr>.Unlock() in the same function; a
// deferred unlock keeps it held until return. Branch bodies that end in
// return/break/continue do not leak their lock-state changes past the
// branch; fall-through branch states are unioned. Function literals are
// analyzed as separate functions with an empty lock set, because their
// bodies typically run on other goroutines (go, AfterFunc, callbacks).
//
// Deliberate serialization points (a connection mutex held across its own
// request/response round trip) are annotated //lint:allow lockheld.
type lockheld struct{}

func (lockheld) Name() string { return "lockheld" }
func (lockheld) Doc() string {
	return "mutexes must not be held across blocking operations (channel ops, select, interface I/O, Sleep, Wait)"
}

// heldSet maps a mutex key (the printed receiver expression, e.g. "c.mu")
// to the position of its Lock call.
type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h heldSet) keys() []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (lockheld) Run(pkg *Package) []Diagnostic {
	s := &lockScan{pkg: pkg}
	for _, f := range pkg.Files {
		funcScopes(f, func(sc *funcScope) {
			s.fn = sc.name
			s.stmts(sc.body.List, heldSet{})
		})
	}
	return s.diags
}

type lockScan struct {
	pkg   *Package
	fn    string
	diags []Diagnostic
}

// stmts walks a statement list sequentially, mutating held in place.
func (s *lockScan) stmts(list []ast.Stmt, held heldSet) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

// terminates reports whether a statement list ends by leaving the
// enclosing control flow (so its lock-state changes cannot reach the code
// after the branch).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// branch processes a nested statement list on a copy of held and returns
// the copy plus whether the list terminates.
func (s *lockScan) branch(list []ast.Stmt, held heldSet) (heldSet, bool) {
	c := held.clone()
	s.stmts(list, c)
	return c, terminates(list)
}

// merge folds the fall-through branch outcomes back into held: a mutex is
// considered held after the branch if any non-terminating path holds it.
func merge(held heldSet, outcomes []heldSet) {
	for k := range held {
		delete(held, k)
	}
	for _, o := range outcomes {
		for k, v := range o {
			held[k] = v
		}
	}
}

func (s *lockScan) stmt(st ast.Stmt, held heldSet) {
	switch t := st.(type) {
	case nil:
	case *ast.ExprStmt:
		if key, locking, ok := s.lockOp(t.X); ok {
			if locking {
				held[key] = t.Pos()
			} else {
				delete(held, key)
			}
			return
		}
		s.expr(t.X, held)
	case *ast.DeferStmt:
		// A deferred unlock releases at return, so the mutex stays held
		// for everything that follows; a deferred anything-else runs
		// outside this statement order. Either way there is nothing to
		// track here beyond literals queued for their own scan (handled
		// by funcScopes).
	case *ast.SendStmt:
		s.reportBlocked(t.Pos(), "channel send", held)
		s.expr(t.Chan, held)
		s.expr(t.Value, held)
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			s.expr(e, held)
		}
		for _, e := range t.Lhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			s.expr(e, held)
		}
	case *ast.IncDecStmt:
		s.expr(t.X, held)
	case *ast.GoStmt:
		// The spawned body runs concurrently (fresh scan via funcScopes);
		// only the call's operands are evaluated here.
		for _, a := range t.Call.Args {
			s.expr(a, held)
		}
	case *ast.LabeledStmt:
		s.stmt(t.Stmt, held)
	case *ast.BlockStmt:
		s.stmts(t.List, held)
	case *ast.IfStmt:
		s.stmt(t.Init, held)
		s.expr(t.Cond, held)
		var outcomes []heldSet
		thenHeld, thenTerm := s.branch(t.Body.List, held)
		if !thenTerm {
			outcomes = append(outcomes, thenHeld)
		}
		if t.Else != nil {
			elseHeld, elseTerm := s.branch([]ast.Stmt{t.Else}, held)
			if !elseTerm {
				outcomes = append(outcomes, elseHeld)
			}
		} else {
			outcomes = append(outcomes, held.clone())
		}
		if len(outcomes) > 0 {
			merge(held, outcomes)
		}
	case *ast.ForStmt:
		s.stmt(t.Init, held)
		s.expr(t.Cond, held)
		body, term := s.branch(t.Body.List, held)
		s.stmt(t.Post, body.clone())
		outcomes := []heldSet{held.clone()}
		if !term {
			outcomes = append(outcomes, body)
		}
		merge(held, outcomes)
	case *ast.RangeStmt:
		if isChanType(s.pkg, t.X) {
			s.reportBlocked(t.Pos(), "range over channel", held)
		}
		s.expr(t.X, held)
		body, term := s.branch(t.Body.List, held)
		outcomes := []heldSet{held.clone()}
		if !term {
			outcomes = append(outcomes, body)
		}
		merge(held, outcomes)
	case *ast.SwitchStmt:
		s.stmt(t.Init, held)
		s.expr(t.Tag, held)
		s.caseBodies(t.Body, held, true)
	case *ast.TypeSwitchStmt:
		s.stmt(t.Init, held)
		s.stmt(t.Assign, held)
		s.caseBodies(t.Body, held, true)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.reportBlocked(t.Pos(), "select", held)
		}
		s.caseBodies(t.Body, held, hasDefault)
	}
}

// caseBodies walks each clause of a switch/select body on its own copy of
// held and merges the fall-through outcomes. withFallthrough adds the
// pre-state as an outcome when no clause is guaranteed to run (no default
// in a switch).
func (s *lockScan) caseBodies(body *ast.BlockStmt, held heldSet, withPre bool) {
	var outcomes []heldSet
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			// The comm op itself (send/recv in the case) is not a separate
			// blocking point: select's readiness semantics cover it, and the
			// select statement was already reported when it lacks a default.
			list = cc.Body
		default:
			continue
		}
		out, term := s.branch(list, held)
		if !term {
			outcomes = append(outcomes, out)
		}
	}
	if withPre {
		outcomes = append(outcomes, held.clone())
	}
	if len(outcomes) > 0 {
		merge(held, outcomes)
	}
}

// expr scans an expression for blocking operations, without descending
// into function literals.
func (s *lockScan) expr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.reportBlocked(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if desc, ok := s.blockingCall(x); ok {
				s.reportBlocked(x.Pos(), desc, held)
			}
		}
		return true
	})
}

func (s *lockScan) reportBlocked(pos token.Pos, what string, held heldSet) {
	if len(held) == 0 {
		return
	}
	keys := held.keys()
	lockPos := s.pkg.Fset.Position(held[keys[0]])
	s.diags = append(s.diags, s.pkg.diag(pos, "lockheld",
		"%s blocks on %s while holding %s (locked at %s:%d)",
		s.fn, what, strings.Join(keys, ", "), filepath.Base(lockPos.Filename), lockPos.Line))
}

// lockOp recognizes <expr>.Lock/RLock/Unlock/RUnlock() on a sync mutex and
// returns the mutex key and whether it acquires.
func (s *lockScan) lockOp(e ast.Expr) (key string, locking, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var locks bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", false, false
	}
	if !isMutexType(s.pkg.Info.TypeOf(sel.X)) {
		return "", false, false
	}
	return exprKey(sel.X), locks, true
}

// blockingCall classifies a call as a blocking operation.
func (s *lockScan) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := s.pkg.calleeFunc(call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	recv := s.pkg.recvTypeOf(call)
	if recv == nil {
		// Package-level function.
		if pkgPath == "time" && name == "Sleep" {
			return "time.Sleep", true
		}
		if pkgPath == "io" {
			switch name {
			case "Copy", "CopyN", "CopyBuffer", "ReadFull", "ReadAll", "ReadAtLeast", "WriteString":
				return "io." + name, true
			}
		}
		return "", false
	}
	// Method call.
	if name == "Wait" {
		if isNamed(recv, "sync", "Cond") {
			return "", false // Cond.Wait releases the mutex while parked
		}
		return exprKey(callRecvExpr(call)) + ".Wait", true
	}
	switch name {
	case "Read", "Write", "ReadAt", "WriteAt", "ReadFrom", "WriteTo", "Flush",
		"ReadString", "ReadBytes", "ReadByte", "WriteByte", "WriteString",
		"ReadRune", "WriteRune", "Peek":
	default:
		return "", false
	}
	d := deref(recv)
	if _, isIface := d.Underlying().(*types.Interface); isIface {
		return "interface " + name, true
	}
	if n := namedOf(recv); n != nil && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Path() {
		case "net", "bufio":
			return n.Obj().Pkg().Path() + " " + name, true
		}
	}
	return "", false
}

func callRecvExpr(call *ast.CallExpr) ast.Expr {
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel == nil {
		return call.Fun
	}
	return sel.X
}

func isChanType(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
