package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the interprocedural substrate the PR-6 rules stand on:
// a package-level call graph plus one summary per function body recording
// the facts that must survive a call boundary — which locks it acquires
// (directly and transitively), which parameters it releases back to the
// buffer pool, which span parameters it Ends, and whether its return value
// is pool-owned. Summaries are computed once per package and cached on the
// Package, so the five rules that consume them share one pass.

// funcSummary is the per-function fact sheet. Function literals get
// summaries too (they hold lock facts for lockorder and goexit), but only
// declared functions are reachable through the call graph.
type funcSummary struct {
	fn   *types.Func    // nil for function literals
	decl *ast.FuncDecl  // nil for function literals
	body *ast.BlockStmt // the analyzed body
	name string         // display name ("(*Conn).call", "func literal")

	// calls are the statically resolved same-package call sites, in
	// document order. Calls through interfaces, function values and method
	// values are unresolvable without whole-program analysis and are
	// deliberately absent: every consumer treats a missing edge as
	// "unknown callee", never as "does nothing".
	calls []callSite

	// acquires maps each mutex this body locks (by field/var identity) to
	// its first acquisition site.
	acquires map[types.Object]lockSite
	// pairs records "inner acquired while outer held" orderings observed
	// inside this body.
	pairs []lockPair
	// heldCalls records same-package calls made while at least one lock is
	// held; lockorder extends the order graph through them.
	heldCalls []heldCall

	// returnsPooled / returnsSpan mark functions whose return value is a
	// getBuf-owned buffer (resp. a freshly begun trace span); callers
	// inherit the release obligation. Fixpoint-propagated.
	returnsPooled bool
	returnsSpan   bool
	// releasesParams / endsParams mark parameter indexes the function
	// putBufs (resp. Ends) on at least one path: passing a tracked value
	// there transfers ownership. Fixpoint-propagated.
	releasesParams map[int]bool
	endsParams     map[int]bool
}

type callSite struct {
	callee *types.Func
	call   *ast.CallExpr
}

type lockSite struct {
	pos  token.Pos
	name string // printed receiver expression, e.g. "c.mu"
}

type lockPair struct {
	outer, inner types.Object
	pos          token.Pos // where inner was acquired under outer
}

type heldCall struct {
	callee *types.Func
	held   []types.Object
	pos    token.Pos
}

// pkgSummaries is the cached interprocedural state for one package.
type pkgSummaries struct {
	pkg   *Package
	funcs map[*types.Func]*funcSummary
	order []*funcSummary // declared funcs then literals, in position order

	// getBuf/putBuf are the package's pool entry points when it defines
	// the bufpool convention, nil otherwise (pooluse is inert then).
	getBuf, putBuf *types.Func

	// lockNames assigns each lock object one canonical display name (the
	// lexically first acquisition's receiver expression).
	lockNames map[types.Object]string

	transMemo map[*types.Func]map[types.Object]lockSite
}

// summaries builds (once) and returns the package's interprocedural facts.
func (p *Package) summaries() *pkgSummaries {
	if p.summ == nil {
		p.summ = buildSummaries(p)
	}
	return p.summ
}

func buildSummaries(p *Package) *pkgSummaries {
	ps := &pkgSummaries{
		pkg:       p,
		funcs:     map[*types.Func]*funcSummary{},
		lockNames: map[types.Object]string{},
		transMemo: map[*types.Func]map[types.Object]lockSite{},
	}
	ps.getBuf = ps.poolFunc("getBuf")
	ps.putBuf = ps.poolFunc("putBuf")

	// Pass 1: one summary per function body.
	for _, f := range p.Files {
		funcScopes(f, func(sc *funcScope) {
			s := &funcSummary{
				body:           sc.body,
				name:           sc.name,
				acquires:       map[types.Object]lockSite{},
				releasesParams: map[int]bool{},
				endsParams:     map[int]bool{},
			}
			if decl, ok := sc.node.(*ast.FuncDecl); ok {
				fn, _ := p.Info.Defs[decl.Name].(*types.Func)
				if fn == nil {
					return
				}
				s.fn, s.decl = fn, decl
				ps.funcs[fn] = s
			}
			ps.order = append(ps.order, s)
		})
	}
	sort.SliceStable(ps.order, func(i, j int) bool {
		return ps.order[i].body.Pos() < ps.order[j].body.Pos()
	})

	// Pass 2: walk each body once collecting call sites and lock facts.
	for _, s := range ps.order {
		lt := &lockTracker{ps: ps, s: s}
		lt.stmts(s.body.List, map[types.Object]token.Pos{})
	}

	// Pass 3: fixpoints across the call graph.
	ps.propagate()
	return ps
}

// poolFunc finds the package-level bufpool entry point by name and shape.
func (ps *pkgSummaries) poolFunc(name string) *types.Func {
	obj := ps.pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return nil
	}
	switch name {
	case "getBuf":
		if sig.Results().Len() != 1 {
			return nil
		}
		if _, ok := sig.Results().At(0).Type().Underlying().(*types.Slice); !ok {
			return nil
		}
	case "putBuf":
		if _, ok := sig.Params().At(0).Type().Underlying().(*types.Slice); !ok {
			return nil
		}
	}
	return fn
}

// propagate runs the interprocedural fixpoints: pool ownership of returns,
// param releases and span Ends flow from callees to callers until stable.
// Recursion terminates because facts only ever flip false -> true.
func (ps *pkgSummaries) propagate() {
	for changed := true; changed; {
		changed = false
		for _, s := range ps.order {
			if s.fn == nil {
				continue // literals are not callable by name
			}
			if !s.returnsPooled && ps.getBuf != nil && ps.bodyReturns(s, ps.isPooledSource) {
				s.returnsPooled = true
				changed = true
			}
			if !s.returnsSpan && ps.bodyReturns(s, ps.isSpanSource) {
				s.returnsSpan = true
				changed = true
			}
			sig := s.fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				param := sig.Params().At(i)
				if ps.putBuf != nil && !s.releasesParams[i] && ps.bodyHandsOff(s, param, ps.releasedBy) {
					s.releasesParams[i] = true
					changed = true
				}
				if !s.endsParams[i] && ps.bodyHandsOff(s, param, ps.endedBy) {
					s.endsParams[i] = true
					changed = true
				}
			}
		}
	}
}

// isPooledSource reports whether call yields a pool-owned buffer: a direct
// getBuf or a same-package function known to return one.
func (ps *pkgSummaries) isPooledSource(call *ast.CallExpr) bool {
	fn := ps.pkg.calleeFunc(call)
	if fn == nil {
		return false
	}
	if fn == ps.getBuf {
		return true
	}
	cs := ps.funcs[fn]
	return cs != nil && cs.returnsPooled
}

// isSpanSource reports whether call yields a freshly started trace span: a
// Begin/BeginServer method returning a named Span, or a same-package
// function known to return one.
func (ps *pkgSummaries) isSpanSource(call *ast.CallExpr) bool {
	fn := ps.pkg.calleeFunc(call)
	if fn == nil {
		return false
	}
	if cs := ps.funcs[fn]; cs != nil && cs.returnsSpan {
		return true
	}
	if fn.Name() != "Begin" && fn.Name() != "BeginServer" {
		return false
	}
	return isSpanType(ps.pkg.Info.TypeOf(call))
}

// isSpanType reports whether t (through one pointer) is a named type
// called Span — the trace package's span and corpus stand-ins alike.
func isSpanType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj() != nil && n.Obj().Name() == "Span"
}

// spanEndTarget returns the receiver expression when call is
// <span>.End(...), nil otherwise.
func spanEndTarget(p *Package, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	if _, isMethod := p.Info.Selections[sel]; !isMethod {
		return nil
	}
	if !isSpanType(p.Info.TypeOf(sel.X)) {
		return nil
	}
	return sel.X
}

// releasedBy reports whether call releases v: putBuf(v) directly, or v
// passed at a parameter position the callee is known to release.
func (ps *pkgSummaries) releasedBy(call *ast.CallExpr, v *types.Var) bool {
	fn := ps.pkg.calleeFunc(call)
	if fn == nil {
		return false
	}
	if fn == ps.putBuf {
		return len(call.Args) == 1 && ps.argIs(call.Args[0], v)
	}
	cs := ps.funcs[fn]
	if cs == nil {
		return false
	}
	for i, arg := range call.Args {
		if cs.releasesParams[i] && ps.argIs(arg, v) {
			return true
		}
	}
	return false
}

// endedBy reports whether call Ends span v: v.End(...) directly, or v
// passed at a parameter position the callee is known to End.
func (ps *pkgSummaries) endedBy(call *ast.CallExpr, v *types.Var) bool {
	if tgt := spanEndTarget(ps.pkg, call); tgt != nil {
		return ps.argIs(tgt, v)
	}
	fn := ps.pkg.calleeFunc(call)
	if fn == nil {
		return false
	}
	cs := ps.funcs[fn]
	if cs == nil {
		return false
	}
	for i, arg := range call.Args {
		if cs.endsParams[i] && ps.argIs(arg, v) {
			return true
		}
	}
	return false
}

func (ps *pkgSummaries) argIs(arg ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	return ok && ps.pkg.Info.Uses[id] == v
}

// bodyReturns reports whether any return in s's own body (literals
// excluded) yields a value produced by a call matching src, either
// directly or through a local variable bound to one.
func (ps *pkgSummaries) bodyReturns(s *funcSummary, src func(*ast.CallExpr) bool) bool {
	// Locals bound (anywhere in the body) to a matching call.
	bound := map[types.Object]bool{}
	ownNodes(s.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !src(call) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := ps.pkg.Info.Defs[id]; obj != nil {
					bound[obj] = true
				} else if obj := ps.pkg.Info.Uses[id]; obj != nil {
					bound[obj] = true
				}
			}
		}
		return true
	})
	found := false
	ownNodes(s.body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && src(call) {
				found = true
			}
			if root := rootIdent(res); root != nil {
				if obj := ps.pkg.Info.Uses[root]; obj != nil && bound[obj] {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// bodyHandsOff reports whether s's own body contains a call that hands
// parameter v off according to via (release or End).
func (ps *pkgSummaries) bodyHandsOff(s *funcSummary, v *types.Var, via func(*ast.CallExpr, *types.Var) bool) bool {
	found := false
	ownNodes(s.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && via(call, v) {
			found = true
		}
		return true
	})
	return found
}

// transitiveAcquires returns every lock fn can take, directly or through
// same-package callees. Memoized; recursion is handled by seeding the memo
// before descending (a cycle contributes what is known so far, and the
// outer fixpoint structure of the DFS converges because lock sets only
// grow along the first complete traversal).
func (ps *pkgSummaries) transitiveAcquires(fn *types.Func) map[types.Object]lockSite {
	if got, ok := ps.transMemo[fn]; ok {
		return got
	}
	out := map[types.Object]lockSite{}
	ps.transMemo[fn] = out
	s := ps.funcs[fn]
	if s == nil {
		return out
	}
	for obj, site := range s.acquires {
		out[obj] = site
	}
	for _, cs := range s.calls {
		for obj, site := range ps.transitiveAcquires(cs.callee) {
			if _, ok := out[obj]; !ok {
				out[obj] = site
			}
		}
	}
	return out
}

// lockObject resolves a mutex receiver expression to its identity: the
// field or variable object, shared across all instances of the type. That
// is the right granularity for an acquisition-order graph; instance-level
// aliasing (two objects of the same type locked in address order) is out
// of scope and self-pairs are dropped by the rule.
func (p *Package) lockObject(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[x.Sel]
	}
	return nil
}

// lockTracker walks one function body collecting lock facts and call
// sites. It reuses lockheld's sequential model: branches run on cloned
// held-sets, fall-through outcomes are unioned, terminating branches do
// not leak state, deferred unlocks keep the mutex held to the end.
type lockTracker struct {
	ps *pkgSummaries
	s  *funcSummary
}

func lockClone(h map[types.Object]token.Pos) map[types.Object]token.Pos {
	c := make(map[types.Object]token.Pos, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (lt *lockTracker) stmts(list []ast.Stmt, held map[types.Object]token.Pos) {
	for _, st := range list {
		lt.stmt(st, held)
	}
}

func (lt *lockTracker) branch(list []ast.Stmt, held map[types.Object]token.Pos) (map[types.Object]token.Pos, bool) {
	c := lockClone(held)
	lt.stmts(list, c)
	return c, terminates(list)
}

func lockMerge(held map[types.Object]token.Pos, outcomes []map[types.Object]token.Pos) {
	for k := range held {
		delete(held, k)
	}
	for _, o := range outcomes {
		for k, v := range o {
			held[k] = v
		}
	}
}

func (lt *lockTracker) stmt(st ast.Stmt, held map[types.Object]token.Pos) {
	switch t := st.(type) {
	case nil:
	case *ast.ExprStmt:
		if lt.lockOp(t.X, held) {
			return
		}
		lt.expr(t.X, held)
	case *ast.DeferStmt:
		// Deferred unlocks keep the lock held to return; deferred calls
		// still run as part of this function, so they stay in the call
		// graph, but with an unknown held-set (empty here).
		if !lt.lockOp(t.Call, nil) {
			lt.expr(t.Call, nil)
		}
	case *ast.GoStmt:
		// The spawned body runs on another goroutine: its calls are not
		// this function's, and locks held here do not order against it.
		// Arguments are still evaluated synchronously.
		for _, a := range t.Call.Args {
			lt.expr(a, held)
		}
	case *ast.SendStmt:
		lt.expr(t.Chan, held)
		lt.expr(t.Value, held)
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			lt.expr(e, held)
		}
		for _, e := range t.Lhs {
			lt.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lt.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			lt.expr(e, held)
		}
	case *ast.IncDecStmt:
		lt.expr(t.X, held)
	case *ast.LabeledStmt:
		lt.stmt(t.Stmt, held)
	case *ast.BlockStmt:
		lt.stmts(t.List, held)
	case *ast.IfStmt:
		lt.stmt(t.Init, held)
		lt.expr(t.Cond, held)
		var outcomes []map[types.Object]token.Pos
		thenHeld, thenTerm := lt.branch(t.Body.List, held)
		if !thenTerm {
			outcomes = append(outcomes, thenHeld)
		}
		if t.Else != nil {
			elseHeld, elseTerm := lt.branch([]ast.Stmt{t.Else}, held)
			if !elseTerm {
				outcomes = append(outcomes, elseHeld)
			}
		} else {
			outcomes = append(outcomes, lockClone(held))
		}
		if len(outcomes) > 0 {
			lockMerge(held, outcomes)
		}
	case *ast.ForStmt:
		lt.stmt(t.Init, held)
		lt.expr(t.Cond, held)
		body, term := lt.branch(t.Body.List, held)
		lt.stmt(t.Post, lockClone(body))
		outcomes := []map[types.Object]token.Pos{lockClone(held)}
		if !term {
			outcomes = append(outcomes, body)
		}
		lockMerge(held, outcomes)
	case *ast.RangeStmt:
		lt.expr(t.X, held)
		body, term := lt.branch(t.Body.List, held)
		outcomes := []map[types.Object]token.Pos{lockClone(held)}
		if !term {
			outcomes = append(outcomes, body)
		}
		lockMerge(held, outcomes)
	case *ast.SwitchStmt:
		lt.stmt(t.Init, held)
		lt.expr(t.Tag, held)
		lt.caseBodies(t.Body, held)
	case *ast.TypeSwitchStmt:
		lt.stmt(t.Init, held)
		lt.stmt(t.Assign, held)
		lt.caseBodies(t.Body, held)
	case *ast.SelectStmt:
		lt.caseBodies(t.Body, held)
	}
}

func (lt *lockTracker) caseBodies(body *ast.BlockStmt, held map[types.Object]token.Pos) {
	outcomes := []map[types.Object]token.Pos{lockClone(held)}
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			list = cc.Body
		default:
			continue
		}
		out, term := lt.branch(list, held)
		if !term {
			outcomes = append(outcomes, out)
		}
	}
	lockMerge(held, outcomes)
}

// lockOp recognizes <expr>.Lock/RLock/Unlock/RUnlock() on a sync mutex,
// updates held, and records acquisition facts. held == nil means "apply
// nothing" (deferred unlock).
func (lt *lockTracker) lockOp(e ast.Expr, held map[types.Object]token.Pos) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var locks bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return false
	}
	p := lt.ps.pkg
	if !isMutexType(p.Info.TypeOf(sel.X)) {
		return false
	}
	obj := p.lockObject(sel.X)
	if obj == nil || held == nil {
		return true
	}
	if locks {
		name := exprKey(sel.X)
		if _, ok := lt.ps.lockNames[obj]; !ok {
			lt.ps.lockNames[obj] = name
		}
		for outer := range held {
			if outer != obj {
				lt.s.pairs = append(lt.s.pairs, lockPair{outer: outer, inner: obj, pos: call.Pos()})
			}
		}
		if _, ok := held[obj]; !ok {
			held[obj] = call.Pos()
		}
		if _, ok := lt.s.acquires[obj]; !ok {
			lt.s.acquires[obj] = lockSite{pos: call.Pos(), name: name}
		}
	} else {
		delete(held, obj)
	}
	return true
}

// expr scans an expression for same-package call sites, without
// descending into function literals (they get their own summaries).
func (lt *lockTracker) expr(e ast.Expr, held map[types.Object]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			lt.recordCall(call, held)
		}
		return true
	})
}

func (lt *lockTracker) recordCall(call *ast.CallExpr, held map[types.Object]token.Pos) {
	fn := lt.ps.pkg.calleeFunc(call)
	if fn == nil {
		return
	}
	if _, ok := lt.ps.funcs[fn]; !ok {
		return // not a declared same-package function
	}
	lt.s.calls = append(lt.s.calls, callSite{callee: fn, call: call})
	if len(held) > 0 {
		objs := make([]types.Object, 0, len(held))
		for obj := range held {
			objs = append(objs, obj)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
		lt.s.heldCalls = append(lt.s.heldCalls, heldCall{callee: fn, held: objs, pos: call.Pos()})
	}
}
