package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// flow.go is the path-sensitive resource-balance walker shared by pooluse
// and spanbalance. It tracks local variables bound to an acquired resource
// (a pooled buffer, a started span) through the same sequential branch
// model lockheld uses, and reports:
//
//   - leak: a variable still definitely Live at a return or at the end of
//     its binding block,
//   - double release: a release of a variable already definitely Released,
//   - use after release: reading a variable already definitely Released.
//
// "Definitely" is the operative word: when branches disagree (acquired or
// released on only some paths — the `if traced { sp = tr.Begin(...) }`
// idiom), the variable degrades to Maybe and the walker stays silent.
// Escapes end tracking: returning the value, storing it into a struct or
// slice, sending it on a channel, capturing it in a function literal, or
// passing it to a callee whose summary says it takes ownership. False
// negatives are accepted; false positives are not.

type ownState uint8

const (
	stLive     ownState = iota // definitely holding the resource
	stReleased                 // definitely released
	stMaybe                    // paths disagree; stay silent
)

type ownVal struct {
	state ownState
	def   token.Pos // acquisition site, for messages
}

type ownEnv map[*types.Var]ownVal

func (e ownEnv) clone() ownEnv {
	c := make(ownEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// ownHooks parameterize the walker per rule.
type ownHooks struct {
	rule string
	what string // noun for messages: "pooled buffer", "trace span"

	// isAcquire reports whether call yields a tracked resource, with a
	// display name for the source ("getBuf", "tr.Begin").
	isAcquire func(call *ast.CallExpr) (string, bool)
	// releaseTarget returns the expression call releases, or nil.
	releaseTarget func(call *ast.CallExpr) ast.Expr
	releaseName   string // "putBuf", "End"
	// transfersArg reports whether the callee takes over the release
	// obligation for argument i (from its interprocedural summary).
	transfersArg func(call *ast.CallExpr, i int) bool
	// reportEscapeStore: report stores of a live resource into a location
	// rooted at a parameter, receiver or package-level variable (it
	// outlives the call). Stores into locals stay silent transfers.
	reportEscapeStore bool
}

// ownScan walks one function body.
type ownScan struct {
	p     *Package
	h     *ownHooks
	fn    string
	diags *[]Diagnostic

	// outlives marks this function's parameters and receiver: roots whose
	// fields outlive the call, for the escape-store report.
	outlives map[*types.Var]bool
	// deferred marks variables released by a defer (live until return is
	// fine for them).
	deferred map[*types.Var]bool
	// defStack tracks which tracked variables were bound in each nested
	// statement list, for end-of-scope leak checks.
	defStack [][]*types.Var
}

// runOwnScan applies hooks to every function body in the package.
func runOwnScan(p *Package, h *ownHooks, diags *[]Diagnostic) {
	for _, f := range p.Files {
		funcScopes(f, func(sc *funcScope) {
			s := &ownScan{
				p:        p,
				h:        h,
				fn:       sc.name,
				diags:    diags,
				outlives: map[*types.Var]bool{},
				deferred: map[*types.Var]bool{},
			}
			var fields []*ast.FieldList
			switch fn := sc.node.(type) {
			case *ast.FuncDecl:
				fields = append(fields, fn.Recv, fn.Type.Params)
			case *ast.FuncLit:
				fields = append(fields, fn.Type.Params)
			}
			for _, fl := range fields {
				if fl == nil {
					continue
				}
				for _, field := range fl.List {
					for _, name := range field.Names {
						if v, ok := p.Info.Defs[name].(*types.Var); ok {
							s.outlives[v] = true
						}
					}
				}
			}
			s.stmts(sc.body.List, ownEnv{})
		})
	}
}

func (s *ownScan) report(pos token.Pos, format string, args ...interface{}) {
	*s.diags = append(*s.diags, s.p.diag(pos, s.h.rule, format, args...))
}

func (s *ownScan) site(pos token.Pos) string {
	p := s.p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func (s *ownScan) leak(v *types.Var, val ownVal, pos token.Pos) {
	s.report(pos, "%s: %s %s (acquired at %s) has no %s on this path",
		s.fn, s.h.what, v.Name(), s.site(val.def), s.h.releaseName)
}

// stmts walks a statement list sequentially. At the end of a
// non-terminating list, variables bound inside it that are still
// definitely Live leak: the binding goes out of scope here.
func (s *ownScan) stmts(list []ast.Stmt, env ownEnv) {
	s.defStack = append(s.defStack, nil)
	for _, st := range list {
		s.stmt(st, env)
	}
	defs := s.defStack[len(s.defStack)-1]
	s.defStack = s.defStack[:len(s.defStack)-1]
	ending := !terminates(list)
	for _, v := range defs {
		if val, ok := env[v]; ok {
			if ending && val.state == stLive && !s.deferred[v] {
				s.leak(v, val, val.def)
			}
			delete(env, v)
		}
	}
}

func (s *ownScan) defined(v *types.Var) {
	if len(s.defStack) > 0 {
		s.defStack[len(s.defStack)-1] = append(s.defStack[len(s.defStack)-1], v)
	}
}

func (s *ownScan) branch(list []ast.Stmt, env ownEnv) (ownEnv, bool) {
	c := env.clone()
	s.stmts(list, c)
	return c, terminates(list)
}

// mergeOwn folds fall-through branch outcomes into env. A variable keeps
// a definite state only when every outcome agrees; disagreement (or
// absence on some path) degrades to Maybe; absence on every path drops it.
func mergeOwn(env ownEnv, outcomes []ownEnv) {
	keys := map[*types.Var]bool{}
	for _, o := range outcomes {
		for k := range o {
			keys[k] = true
		}
	}
	for k := range env {
		delete(env, k)
	}
	for k := range keys {
		var vals []ownVal
		everywhere := true
		for _, o := range outcomes {
			if v, ok := o[k]; ok {
				vals = append(vals, v)
			} else {
				everywhere = false
			}
		}
		agreed := everywhere
		for _, v := range vals {
			if v.state != vals[0].state {
				agreed = false
			}
		}
		if agreed {
			env[k] = vals[0]
		} else {
			env[k] = ownVal{state: stMaybe, def: vals[0].def}
		}
	}
}

func (s *ownScan) stmt(st ast.Stmt, env ownEnv) {
	switch t := st.(type) {
	case nil:
	case *ast.ExprStmt:
		s.topCall(t.X, env)
	case *ast.AssignStmt:
		s.assign(t, env)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					s.bind(name, vs.Values[i], true, env)
				}
			}
		}
	case *ast.DeferStmt:
		s.deferStmt(t, env)
	case *ast.GoStmt:
		// The spawned call runs concurrently: arguments and captures
		// escape to another goroutine.
		if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
			s.captureEscape(lit, env)
		} else {
			s.scanExpr(t.Call.Fun, env, false)
		}
		for _, a := range t.Call.Args {
			s.scanExpr(a, env, true)
		}
	case *ast.SendStmt:
		s.scanExpr(t.Chan, env, false)
		s.scanExpr(t.Value, env, true)
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			s.scanExpr(e, env, true)
		}
		vars := make([]*types.Var, 0, len(env))
		for v := range env {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
		for _, v := range vars {
			if val := env[v]; val.state == stLive && !s.deferred[v] {
				s.leak(v, val, t.Pos())
			}
		}
	case *ast.IncDecStmt:
		s.scanExpr(t.X, env, false)
	case *ast.LabeledStmt:
		s.stmt(t.Stmt, env)
	case *ast.BlockStmt:
		s.stmts(t.List, env)
	case *ast.IfStmt:
		s.stmt(t.Init, env)
		s.scanExpr(t.Cond, env, false)
		var outcomes []ownEnv
		thenEnv, thenTerm := s.branch(t.Body.List, env)
		if !thenTerm {
			outcomes = append(outcomes, thenEnv)
		}
		if t.Else != nil {
			elseEnv, elseTerm := s.branch([]ast.Stmt{t.Else}, env)
			if !elseTerm {
				outcomes = append(outcomes, elseEnv)
			}
		} else {
			outcomes = append(outcomes, env.clone())
		}
		if len(outcomes) > 0 {
			mergeOwn(env, outcomes)
		}
	case *ast.ForStmt:
		s.stmt(t.Init, env)
		s.scanExpr(t.Cond, env, false)
		body, term := s.branch(t.Body.List, env)
		s.stmt(t.Post, body.clone())
		outcomes := []ownEnv{env.clone()}
		if !term {
			outcomes = append(outcomes, body)
		}
		mergeOwn(env, outcomes)
	case *ast.RangeStmt:
		s.scanExpr(t.X, env, false)
		body, term := s.branch(t.Body.List, env)
		outcomes := []ownEnv{env.clone()}
		if !term {
			outcomes = append(outcomes, body)
		}
		mergeOwn(env, outcomes)
	case *ast.SwitchStmt:
		s.stmt(t.Init, env)
		s.scanExpr(t.Tag, env, false)
		s.caseBodies(t.Body, env)
	case *ast.TypeSwitchStmt:
		s.stmt(t.Init, env)
		s.stmt(t.Assign, env)
		s.caseBodies(t.Body, env)
	case *ast.SelectStmt:
		s.caseBodies(t.Body, env)
	}
}

func (s *ownScan) caseBodies(body *ast.BlockStmt, env ownEnv) {
	outcomes := []ownEnv{env.clone()}
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				s.stmt(cc.Comm, env.clone())
			}
			list = cc.Body
		default:
			continue
		}
		out, term := s.branch(list, env)
		if !term {
			outcomes = append(outcomes, out)
		}
	}
	mergeOwn(env, outcomes)
}

// assign handles the binding forms. Pairwise when lengths match (a, b :=
// x, y); otherwise everything is scanned as plain uses.
func (s *ownScan) assign(t *ast.AssignStmt, env ownEnv) {
	if len(t.Lhs) == len(t.Rhs) {
		for i := range t.Lhs {
			s.bind(t.Lhs[i], t.Rhs[i], t.Tok == token.DEFINE, env)
		}
		return
	}
	for _, e := range t.Rhs {
		s.scanExpr(e, env, false)
	}
	for _, e := range t.Lhs {
		if _, ok := e.(*ast.Ident); !ok {
			s.scanExpr(e, env, false)
		}
	}
}

// bind processes one lhs = rhs pair.
func (s *ownScan) bind(lhs, rhs ast.Expr, define bool, env ownEnv) {
	call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
	acqName := ""
	isAcq := false
	if isCall {
		acqName, isAcq = s.h.isAcquire(call)
	}

	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			if isAcq {
				s.report(rhs.Pos(), "%s: result of %s (a %s) is discarded; it can never be released",
					s.fn, acqName, s.h.what)
				return
			}
			s.scanExpr(rhs, env, false)
			return
		}
		// In a := with mixed new/old names, only the new ones are Defs;
		// redeclared ones resolve through Uses like a plain assignment.
		v, declaredHere := s.p.Info.Defs[l].(*types.Var)
		if v == nil {
			v, _ = s.p.Info.Uses[l].(*types.Var)
			declaredHere = false
		}
		if isAcq {
			for _, a := range call.Args {
				s.scanExpr(a, env, false)
			}
			if v == nil {
				return
			}
			if old, ok := env[v]; ok && old.state == stLive {
				s.leak(v, old, rhs.Pos())
			}
			if declaredHere {
				// Scope-end leak checks apply only to variables bound in
				// the block; assignments to outer variables merge to
				// Maybe at the branch join instead.
				s.defined(v)
			}
			env[v] = ownVal{state: stLive, def: rhs.Pos()}
			return
		}
		// Rebinding a tracked variable.
		if v != nil {
			if old, tracked := env[v]; tracked {
				if root := flowRoot(rhs); root != nil && s.p.Info.Uses[root] == v {
					// b = b[:n] — same backing resource, state unchanged.
					s.scanExpr(rhs, env, false)
					return
				}
				if old.state == stLive && !s.deferred[v] {
					s.leak(v, old, lhs.Pos())
				}
				delete(env, v)
			}
		}
		// Aliasing a tracked value into another name ends tracking
		// (conservative: two names, one obligation).
		if root := ast.Unparen(rhs); root != nil {
			if id, ok := root.(*ast.Ident); ok {
				if rv, ok := s.p.Info.Uses[id].(*types.Var); ok {
					if val, tracked := env[rv]; tracked {
						if val.state == stReleased {
							s.useAfter(rv, id.Pos())
						}
						delete(env, rv)
						return
					}
				}
			}
		}
		s.scanExpr(rhs, env, false)
	default:
		// Store into a field, slot or dereference.
		if isAcq || s.trackedRoot(rhs, env) != nil {
			if s.h.reportEscapeStore {
				if root := rootIdent(lhs); root != nil {
					if rv, ok := s.p.Info.Uses[root].(*types.Var); ok && s.storeOutlives(rv) {
						s.report(lhs.Pos(), "%s: %s stored in %s, which outlives this call; release ownership explicitly or keep it local",
							s.fn, s.h.what, types.ExprString(lhs))
					}
				}
			}
			if isCall && isAcq {
				for _, a := range call.Args {
					s.scanExpr(a, env, false)
				}
			}
			if v := s.trackedRoot(rhs, env); v != nil {
				delete(env, v) // transferred into the stored location
			}
			s.scanExpr(lhs, env, false)
			return
		}
		s.scanExpr(rhs, env, false)
		s.scanExpr(lhs, env, false)
	}
}

// flowRoot is rootIdent extended through slice expressions: b[:n] is the
// same resource as b for ownership purposes.
func flowRoot(e ast.Expr) *ast.Ident {
	for {
		if se, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
			e = se.X
			continue
		}
		return rootIdent(e)
	}
}

// trackedRoot returns the tracked variable an expression is rooted in
// when the expression is a bare identifier or slice of one.
func (s *ownScan) trackedRoot(e ast.Expr, env ownEnv) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := s.p.Info.Uses[x].(*types.Var); ok {
			if _, tracked := env[v]; tracked {
				return v
			}
		}
	case *ast.SliceExpr:
		return s.trackedRoot(x.X, env)
	}
	return nil
}

// storeOutlives reports whether a store rooted at v outlives this call:
// v is a parameter/receiver or a package-level variable.
func (s *ownScan) storeOutlives(v *types.Var) bool {
	if s.outlives[v] {
		return true
	}
	return v.Parent() == s.p.Types.Scope()
}

func (s *ownScan) deferStmt(t *ast.DeferStmt, env ownEnv) {
	// defer putBuf(b) / defer sp.End(): released at return.
	if tgt := s.h.releaseTarget(t.Call); tgt != nil {
		if root := rootIdent(tgt); root != nil {
			if v, ok := s.p.Info.Uses[root].(*types.Var); ok {
				s.deferred[v] = true
				return
			}
		}
		return
	}
	// defer func() { ... putBuf(b) ... }(): the literal's releases count
	// at return; other captured tracked variables escape.
	if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tgt := s.h.releaseTarget(call); tgt != nil {
				if root := rootIdent(tgt); root != nil {
					if v, ok := s.p.Info.Uses[root].(*types.Var); ok {
						s.deferred[v] = true
					}
				}
			}
			return true
		})
		s.captureEscape(lit, env)
		return
	}
	// defer f(b): f runs at return; treat tracked arguments as handed off.
	for _, a := range t.Call.Args {
		if v := s.trackedRoot(a, env); v != nil {
			s.deferred[v] = true
			continue
		}
		s.scanExpr(a, env, false)
	}
}

// topCall handles an expression statement, where releases and discarded
// acquisitions happen.
func (s *ownScan) topCall(e ast.Expr, env ownEnv) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		s.scanExpr(e, env, false)
		return
	}
	if name, isAcq := s.h.isAcquire(call); isAcq {
		s.report(call.Pos(), "%s: result of %s (a %s) is discarded; it can never be released",
			s.fn, name, s.h.what)
		for _, a := range call.Args {
			s.scanExpr(a, env, false)
		}
		return
	}
	s.scanCall(call, env, false)
}

// scanExpr walks an expression. escaping means the value produced here
// flows somewhere that takes over the release obligation (return value,
// channel send, composite literal, address-of).
func (s *ownScan) scanExpr(e ast.Expr, env ownEnv, escaping bool) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		v, ok := s.p.Info.Uses[x].(*types.Var)
		if !ok {
			return
		}
		val, tracked := env[v]
		if !tracked {
			return
		}
		if escaping {
			delete(env, v)
			return
		}
		if val.state == stReleased {
			s.useAfter(v, x.Pos())
		}
	case *ast.CallExpr:
		s.scanCall(x, env, escaping)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				s.scanExpr(kv.Value, env, true)
				continue
			}
			s.scanExpr(elt, env, true)
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			s.scanExpr(x.X, env, true)
			return
		}
		s.scanExpr(x.X, env, false)
	case *ast.FuncLit:
		s.captureEscape(x, env)
	case *ast.SelectorExpr:
		s.scanExpr(x.X, env, false)
	case *ast.SliceExpr:
		// A slice shares its backing array: the escape context propagates.
		s.scanExpr(x.X, env, escaping)
		s.scanExpr(x.Low, env, false)
		s.scanExpr(x.High, env, false)
		s.scanExpr(x.Max, env, false)
	case *ast.IndexExpr:
		s.scanExpr(x.X, env, false)
		s.scanExpr(x.Index, env, false)
	case *ast.StarExpr:
		s.scanExpr(x.X, env, escaping)
	case *ast.ParenExpr:
		s.scanExpr(x.X, env, escaping)
	case *ast.BinaryExpr:
		s.scanExpr(x.X, env, false)
		s.scanExpr(x.Y, env, false)
	case *ast.TypeAssertExpr:
		s.scanExpr(x.X, env, escaping)
	case *ast.KeyValueExpr:
		s.scanExpr(x.Value, env, escaping)
	case *ast.Ellipsis:
		s.scanExpr(x.Elt, env, escaping)
	}
}

func (s *ownScan) useAfter(v *types.Var, pos token.Pos) {
	s.report(pos, "%s: use of %s %s after %s",
		s.fn, s.h.what, v.Name(), s.h.releaseName)
}

// scanCall processes a call in value position: releases, transfers and
// plain argument uses.
func (s *ownScan) scanCall(call *ast.CallExpr, env ownEnv, escaping bool) {
	if tgt := s.h.releaseTarget(call); tgt != nil {
		if root := rootIdent(tgt); root != nil {
			if v, ok := s.p.Info.Uses[root].(*types.Var); ok {
				if val, tracked := env[v]; tracked {
					if val.state == stReleased {
						s.report(call.Pos(), "%s: %s %s released twice (%s after %s)",
							s.fn, s.h.what, v.Name(), s.h.releaseName, s.h.releaseName)
					}
					env[v] = ownVal{state: stReleased, def: val.def}
				}
			}
		}
		// Scan the rest of the call, excluding the released expression.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.X != tgt {
			s.scanExpr(sel.X, env, false)
		}
		for _, a := range call.Args {
			if a != tgt {
				s.scanExpr(a, env, false)
			}
		}
		return
	}
	if _, isAcq := s.h.isAcquire(call); isAcq && escaping {
		// The fresh resource flows straight out (return t.Begin(...)):
		// ownership moves with it; the caller-side summary covers it.
		for _, a := range call.Args {
			s.scanExpr(a, env, false)
		}
		return
	}
	// Receiver and non-selector function expressions are plain uses.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		s.scanExpr(fun.X, env, false)
	case *ast.Ident:
	default:
		s.scanExpr(fun, env, false)
	}
	for i, a := range call.Args {
		if v := s.trackedRoot(a, env); v != nil && s.h.transfersArg != nil && s.h.transfersArg(call, i) {
			delete(env, v)
			continue
		}
		s.scanExpr(a, env, false)
	}
}

// captureEscape ends tracking for every variable a function literal
// captures: the literal may run at any time, on any goroutine.
func (s *ownScan) captureEscape(lit *ast.FuncLit, env ownEnv) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := s.p.Info.Uses[id].(*types.Var); ok {
				delete(env, v)
			}
		}
		return true
	})
}
