package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// guardedfield enforces "// guarded by <mu>" field annotations: every
// access to an annotated field must happen in a function that locks the
// named mutex. This mechanically catches the PR-1 class of race (a fault
// field read outside faultMu).
//
// Matching is deliberately coarse but predictable:
//
//   - An access is any selector expression resolving to the annotated
//     field. Construction sites are exempt when the selector is rooted in
//     a variable declared inside the same function (the value is not yet
//     shared), which covers the NewX constructor idiom without naming
//     heuristics.
//   - A function "locks the mutex" if its own body (not nested literals)
//     contains a call to <anything>.<mu>.Lock or RLock. Helpers that run
//     with the lock held by their caller carry a //lint:allow guardedfield
//     pragma stating that contract.
//   - Function literals are scoped separately from their enclosing
//     function: a closure handed to `go` or AfterFunc does not inherit the
//     caller's critical section.
type guardedfield struct{}

func (guardedfield) Name() string { return "guardedfield" }
func (guardedfield) Doc() string {
	return `fields annotated "// guarded by <mu>" may only be accessed with that mutex locked`
}

var guardedRe = regexp.MustCompile(`guarded by\s+([A-Za-z_][A-Za-z0-9_]*)`)

// guardedField is one annotated struct field.
type guardedField struct {
	structName string
	fieldName  string
	mu         string
}

func (guardedfield) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic

	// Pass 1: collect annotations, mapping the field's types.Var to its
	// mutex name, and validate that the named mutex is a sibling field.
	guarded := map[*types.Var]guardedField{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]ast.Expr{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = fld.Type
				}
			}
			for _, fld := range st.Fields.List {
				mu := annotationOf(fld)
				if mu == "" {
					continue
				}
				muType, ok := fieldNames[mu]
				if !ok {
					diags = append(diags, pkg.diag(fld.Pos(), "guardedfield",
						"field is marked guarded by %q but %s has no such field", mu, ts.Name.Name))
					continue
				}
				if !isMutexType(pkg.Info.TypeOf(muType)) {
					diags = append(diags, pkg.diag(fld.Pos(), "guardedfield",
						"field is marked guarded by %q but %s.%s is not a sync.Mutex/RWMutex", mu, ts.Name.Name, mu))
					continue
				}
				for _, name := range fld.Names {
					obj, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					guarded[obj] = guardedField{structName: ts.Name.Name, fieldName: name.Name, mu: mu}
				}
			}
			return false
		})
	}
	if len(guarded) == 0 {
		return diags
	}

	// Pass 2: check every access, function scope by function scope.
	for _, f := range pkg.Files {
		funcScopes(f, func(sc *funcScope) {
			locked := lockedMutexNames(sc.body)
			ownNodes(sc.body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pkg.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				fieldVar, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				g, isGuarded := guarded[fieldVar]
				if !isGuarded {
					return true
				}
				if locked[g.mu] {
					return true
				}
				if localRoot(pkg, sc, sel.X) {
					return true // value under construction, not shared yet
				}
				diags = append(diags, pkg.diag(sel.Sel.Pos(), "guardedfield",
					"%s accesses %s.%s without locking %s (field is guarded by %s)",
					sc.name, g.structName, g.fieldName, g.mu, g.mu))
				return true
			})
		})
	}
	return diags
}

// annotationOf extracts the guarded-by mutex name from a field's doc or
// trailing comment.
func annotationOf(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return strings.TrimSpace(m[1])
		}
	}
	return ""
}

// lockedMutexNames returns the set of mutex field names this function body
// locks directly (h.mu.Lock() -> "mu"), excluding nested literals.
func lockedMutexNames(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ownNodes(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			out[recv.Sel.Name] = true
		case *ast.Ident:
			out[recv.Name] = true
		case *ast.UnaryExpr:
			if inner, ok := ast.Unparen(recv.X).(*ast.SelectorExpr); ok {
				out[inner.Sel.Name] = true
			} else if id, ok := ast.Unparen(recv.X).(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// localRoot reports whether the access is rooted in a variable declared
// inside this very function body — i.e. a value still being constructed.
func localRoot(pkg *Package, sc *funcScope, base ast.Expr) bool {
	id := rootIdent(base)
	if id == nil {
		return false
	}
	obj, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	if obj.IsField() {
		return false
	}
	// Declared strictly inside the body brackets: parameters and receivers
	// sit in the signature, captured variables in an outer function.
	return obj.Pos() > sc.body.Lbrace && obj.Pos() < sc.body.Rbrace
}
