package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
)

// fileName returns the base name of the file containing pos.
func (p *Package) fileName(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if pt, ok := t.Underlying().(*types.Pointer); ok {
		return pt.Elem()
	}
	return t
}

// namedOf returns the named type behind t (through one pointer), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if pt, ok := t.Underlying().(*types.Pointer); ok {
		t = pt.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (through one pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isMutexType reports whether t (through one pointer) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// callee resolves the object a call invokes: a *types.Func for methods and
// declared functions, a *types.Var for calls through function-typed values,
// nil for builtins, conversions and indirect calls.
func (p *Package) callee(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[fun.Sel] // package-qualified function
	}
	return nil
}

// calleeFunc is callee narrowed to *types.Func.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	fn, _ := p.callee(call).(*types.Func)
	return fn
}

// recvTypeOf returns the static type of a method call's receiver
// expression, or nil when the call is not a selector method call.
func (p *Package) recvTypeOf(call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if _, ok := p.Info.Selections[sel]; !ok {
		return nil // package-qualified call, not a method
	}
	return p.Info.TypeOf(sel.X)
}

// returnsError reports whether the call's last result is the error type.
func (p *Package) returnsError(call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// rootIdent unwraps a selector/index/paren/star chain to its leftmost
// identifier: f.streams[i].gen -> f. Returns nil when the chain is rooted
// in a call or literal.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// constIntValue resolves e to an integer constant via the type checker,
// reporting ok=false for non-constant expressions.
func (p *Package) constIntValue(e ast.Expr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// funcScope identifies the innermost function (declaration or literal) a
// node belongs to; used to scope per-function facts like "locks mu".
type funcScope struct {
	node ast.Node       // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt // its body
	name string         // display name ("(*Conn).call", "func literal")
}

// funcScopes walks a file and calls visit for every function body with its
// scope. Nested literals get their own scope.
func funcScopes(f *ast.File, visit func(sc *funcScope)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(&funcScope{node: fn, body: fn.Body, name: funcDeclName(fn)})
			}
		case *ast.FuncLit:
			visit(&funcScope{node: fn, body: fn.Body, name: "func literal"})
		}
		return true
	})
}

func funcDeclName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := types.ExprString(fn.Recv.List[0].Type)
	return "(" + recv + ")." + fn.Name.Name
}

// ownNodes walks the nodes of body that belong to this function, without
// descending into nested function literals.
func ownNodes(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
}
