package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// goexit checks that every goroutine launched in the connection-lifecycle
// packages (any package with a client.go, server.go or engine.go — the
// demux reader, the read-ahead executor, the I/O thread pool) has a
// provable way to exit. Two escalating findings:
//
//   - a goroutine whose body (or a same-package function it calls)
//     contains an unconditional `for {}` with no return, break or panic
//     can never exit, full stop;
//   - a goroutine that loops forever with exits but no *exit key* — no
//     channel receive or select, no range over a channel, no Cond.Wait,
//     no conn/reader read that fails on close, no context, and no
//     shutdown flag read — has no event that would ever make it take
//     those exits.
//
// Unresolvable targets (method values, function-typed fields) are skipped:
// no edge means "unknown", never "fine" — but also never a guess.
type goexit struct{}

func (goexit) Name() string { return "goexit" }
func (goexit) Doc() string {
	return "every goroutine in client/server/engine packages needs a provable exit path (conn close, context, channel, or shutdown flag)"
}

// exitFacts summarize one function body for the goroutine exit analysis.
type exitFacts struct {
	hasLoop bool      // contains an unconditional for {}
	badLoop token.Pos // first for {} with no return/break/panic (NoPos if none)
	hasKey  bool      // contains an exit key (see rule doc)
}

func (f *exitFacts) union(o exitFacts) {
	f.hasLoop = f.hasLoop || o.hasLoop
	if !f.badLoop.IsValid() {
		f.badLoop = o.badLoop
	}
	f.hasKey = f.hasKey || o.hasKey
}

func (goexit) Run(pkg *Package) []Diagnostic {
	inScope := false
	for _, f := range pkg.Files {
		switch filepath.Base(pkg.Fset.Position(f.Pos()).Filename) {
		case "client.go", "server.go", "engine.go":
			inScope = true
		}
	}
	if !inScope {
		return nil
	}

	ps := pkg.summaries()
	g := &exitScan{pkg: pkg, ps: ps, memo: map[*types.Func]*exitFacts{}}

	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var facts exitFacts
			name := "func literal"
			if lit, isLit := gs.Call.Fun.(*ast.FuncLit); isLit {
				facts = g.bodyFacts(lit.Body)
				g.addTransitive(lit.Body, &facts, map[*types.Func]bool{})
			} else {
				fn := pkg.calleeFunc(gs.Call)
				if fn == nil {
					return true // unresolvable target: skip, don't guess
				}
				s := ps.funcs[fn]
				if s == nil {
					return true // other-package callee
				}
				name = fn.Name()
				facts = g.transitive(fn)
			}
			switch {
			case facts.badLoop.IsValid():
				lp := pkg.Fset.Position(facts.badLoop)
				diags = append(diags, pkg.diag(gs.Pos(), "goexit",
					"goroutine %s can never exit: unconditional loop at %s:%d has no return, break or panic",
					name, filepath.Base(lp.Filename), lp.Line))
			case facts.hasLoop && !facts.hasKey:
				diags = append(diags, pkg.diag(gs.Pos(), "goexit",
					"goroutine %s loops forever with no exit key: no conn/reader read, channel op, select, context or shutdown flag ever triggers its exits",
					name))
			}
			return true
		})
	}
	return diags
}

type exitScan struct {
	pkg  *Package
	ps   *pkgSummaries
	memo map[*types.Func]*exitFacts
}

// transitive folds bodyFacts over fn and every same-package function it
// (transitively) calls. The memo is seeded before descending so recursion
// terminates; a cycle contributes what is known so far.
func (g *exitScan) transitive(fn *types.Func) exitFacts {
	if got, ok := g.memo[fn]; ok {
		return *got
	}
	facts := &exitFacts{}
	g.memo[fn] = facts
	s := g.ps.funcs[fn]
	if s == nil {
		return *facts
	}
	facts.union(g.bodyFacts(s.body))
	for _, cs := range s.calls {
		facts.union(g.transitive(cs.callee))
	}
	return *facts
}

// addTransitive extends facts with the transitive facts of every
// same-package function a literal body calls.
func (g *exitScan) addTransitive(body *ast.BlockStmt, facts *exitFacts, seen map[*types.Func]bool) {
	ownNodes(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := g.pkg.calleeFunc(call)
		if fn == nil || seen[fn] {
			return true
		}
		seen[fn] = true
		if g.ps.funcs[fn] != nil {
			facts.union(g.transitive(fn))
		}
		return true
	})
}

// bodyFacts scans one body (nested literals excluded: they run on their
// own goroutines and get their own GoStmt checks).
func (g *exitScan) bodyFacts(body *ast.BlockStmt) exitFacts {
	var facts exitFacts
	ownNodes(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			if x.Cond == nil {
				facts.hasLoop = true
				if !loopCanExit(x) && !facts.badLoop.IsValid() {
					facts.badLoop = x.Pos()
				}
			}
		case *ast.SelectStmt:
			facts.hasKey = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				facts.hasKey = true
			}
		case *ast.RangeStmt:
			if isChanType(g.pkg, x.X) {
				facts.hasKey = true
			}
		case *ast.CallExpr:
			if g.keyedCall(x) {
				facts.hasKey = true
			}
		case *ast.Ident:
			if g.flagRead(g.pkg.Info.Uses[x]) {
				facts.hasKey = true
			}
		case *ast.SelectorExpr:
			if sel, ok := g.pkg.Info.Selections[x]; ok && g.flagRead(sel.Obj()) {
				facts.hasKey = true
			}
		}
		return true
	})
	return facts
}

// loopCanExit reports whether an unconditional for has any way out of its
// own body: a return, a panic, or a break that targets this loop.
func loopCanExit(loop *ast.ForStmt) bool {
	found := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch y := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
			case *ast.BranchStmt:
				// A labeled break/goto jumps somewhere; assume it leaves.
				if y.Tok == token.GOTO || y.Label != nil {
					found = true
				}
				if y.Tok == token.BREAK && breakable {
					found = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(y.Fun).(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if m != n {
					// An unlabeled break inside these targets them, not us.
					walk(m, false)
					return false
				}
			}
			return true
		})
	}
	walk(loop.Body, true)
	return found
}

// keyedCall reports whether a call plausibly wakes on connection close or
// cancellation: a read-family method on an interface/net/bufio receiver,
// sync.Cond.Wait, or any callee that takes a reader, conn or context.
func (g *exitScan) keyedCall(call *ast.CallExpr) bool {
	fn := g.pkg.calleeFunc(call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Wait" {
		if recv := g.pkg.recvTypeOf(call); recv != nil && isNamed(recv, "sync", "Cond") {
			return true
		}
	}
	if recv := g.pkg.recvTypeOf(call); recv != nil && readerish(recv) {
		switch fn.Name() {
		case "Read", "ReadByte", "ReadFull", "ReadAt", "Peek", "ReadString", "ReadBytes", "Accept", "Recv":
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if t := sig.Params().At(i).Type(); readerish(t) || isNamed(t, "context", "Context") {
			return true
		}
	}
	return false
}

// readerish recognizes types whose reads fail once the peer closes: any
// interface with a Read method (io.Reader, net.Conn), and net/bufio
// concrete types.
func readerish(t types.Type) bool {
	d := deref(t)
	if iface, ok := d.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Read" {
				return true
			}
		}
		// Embedded interfaces are flattened by NumMethods, so that covers
		// net.Conn and friends.
		return false
	}
	if n := namedOf(t); n != nil && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Path() {
		case "net", "bufio":
			return true
		}
	}
	return false
}

// flagRead recognizes a read of a boolean shutdown flag by name.
func (g *exitScan) flagRead(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Type() == nil {
		return false
	}
	if !types.Identical(v.Type(), types.Typ[types.Bool]) {
		return false
	}
	switch v.Name() {
	case "closed", "done", "stop", "stopped", "stopping", "quit", "shutdown", "draining":
		return true
	}
	return false
}
