package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The loader type-checks the whole module with only the standard library:
// packages inside the module are resolved by walking the source tree and
// checking them in dependency order; imports that leave the module (the
// standard library) are delegated to go/importer's source importer, which
// type-checks them from GOROOT/src. Disabling cgo keeps packages like net
// checkable from pure Go sources.

func init() {
	build.Default.CgoEnabled = false
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modImporter resolves imports during type checking: module-internal
// packages come from the already-checked set, everything else from the
// stdlib source importer.
type modImporter struct {
	modPath string
	std     types.ImporterFrom
	local   map[string]*types.Package
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *modImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	if m.modPath != "" && (path == m.modPath || strings.HasPrefix(path, m.modPath+"/")) {
		return nil, fmt.Errorf("analysis: module package %s not loaded (dependency cycle or walk gap)", path)
	}
	return m.std.ImportFrom(path, dir, mode)
}

// pkgSrc is one parsed-but-not-yet-checked package directory.
type pkgSrc struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // module-internal imports only
}

// LoadModule loads and type-checks every non-test package of the Go
// module rooted at root, in dependency order.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	m := moduleRe.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	modPath := string(m[1])

	fset := token.NewFileSet()
	srcs := map[string]*pkgSrc{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		src := srcs[importPath]
		if src == nil {
			src = &pkgSrc{path: importPath, dir: dir}
			srcs[importPath] = src
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		src.files = append(src.files, f)
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				src.imports = append(src.imports, ip)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	order, err := topoSort(srcs)
	if err != nil {
		return nil, err
	}

	imp := &modImporter{
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		local:   map[string]*types.Package{},
	}
	var out []*Package
	for _, src := range order {
		pkg, err := check(fset, src, imp)
		if err != nil {
			return nil, err
		}
		imp.local[src.path] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads a single directory as one standalone package under the
// given import path (used by the analyzer corpus tests). The package may
// import only the standard library.
func LoadDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	src := &pkgSrc{path: path, dir: dir}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		src.files = append(src.files, f)
	}
	if len(src.files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	imp := &modImporter{
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		local: map[string]*types.Package{},
	}
	return check(fset, src, imp)
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(srcs map[string]*pkgSrc) ([]*pkgSrc, error) {
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // done
	)
	state := map[string]int{}
	var order []*pkgSrc
	var visit func(path string, trail []string) error
	visit = func(path string, trail []string) error {
		src := srcs[path]
		if src == nil {
			return nil // import of a module path with no Go files; let the type checker complain
		}
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle: %s -> %s", strings.Join(trail, " -> "), path)
		}
		state[path] = gray
		deps := append([]string(nil), src.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep, append(trail, path)); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, src)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks one package and bundles the result.
func check(fset *token.FileSet, src *pkgSrc, imp types.Importer) (*Package, error) {
	// Files must be checked in a stable order or positions of
	// redeclaration errors would jump around between runs.
	sort.Slice(src.files, func(i, j int) bool {
		return fset.Position(src.files[i].Pos()).Filename < fset.Position(src.files[j].Pos()).Filename
	})
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := conf.Check(src.path, fset, src.files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more errors", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n\t%s", src.path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", src.path, err)
	}
	return &Package{
		Path:  src.path,
		Dir:   src.dir,
		Fset:  fset,
		Files: src.files,
		Types: tpkg,
		Info:  info,
	}, nil
}
