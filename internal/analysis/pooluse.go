package analysis

import (
	"go/ast"
)

// pooluse enforces the bufpool ownership discipline in packages that
// define the getBuf/putBuf convention: every pool-owned buffer (from
// getBuf or from a function whose summary says it returns one) must reach
// exactly one putBuf on every path. Leaks on error returns, double puts,
// uses after put, discarded getBuf results and stores into state that
// outlives the call are all reported. Ownership transfers end tracking:
// returning the buffer, storing it into a local struct, or passing it to
// a callee whose summary releases that parameter.
type pooluse struct{}

func (pooluse) Name() string { return "pooluse" }
func (pooluse) Doc() string {
	return "every getBuf must reach exactly one putBuf on every path (no leaks, double puts, use-after-put, or escapes into long-lived state)"
}

func (pooluse) Run(pkg *Package) []Diagnostic {
	ps := pkg.summaries()
	if ps.getBuf == nil || ps.putBuf == nil {
		return nil // package does not use the bufpool convention
	}
	var diags []Diagnostic
	hooks := &ownHooks{
		rule: "pooluse",
		what: "pooled buffer",
		isAcquire: func(call *ast.CallExpr) (string, bool) {
			if !ps.isPooledSource(call) {
				return "", false
			}
			fn := pkg.calleeFunc(call)
			if fn == ps.getBuf {
				return "getBuf", true
			}
			return fn.Name(), true
		},
		releaseTarget: func(call *ast.CallExpr) ast.Expr {
			if pkg.calleeFunc(call) == ps.putBuf && len(call.Args) == 1 {
				return call.Args[0]
			}
			return nil
		},
		releaseName: "putBuf",
		transfersArg: func(call *ast.CallExpr, i int) bool {
			fn := pkg.calleeFunc(call)
			if fn == nil {
				return false
			}
			cs := ps.funcs[fn]
			return cs != nil && cs.releasesParams[i]
		},
		reportEscapeStore: true,
	}
	runOwnScan(pkg, hooks, &diags)
	return diags
}
