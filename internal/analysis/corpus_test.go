package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestCorpus runs each analyzer over its seeded-violation corpus in
// testdata/<rule>/ and compares the diagnostics against the golden file.
// Run with -update after deliberately changing a rule or its corpus.
func TestCorpus(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name(), func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name())
			pkg, err := LoadDir(dir, "corpus/"+a.Name())
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			var b strings.Builder
			for _, d := range Run(pkg, []Analyzer{a}) {
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
			}
			got := b.String()

			golden := filepath.Join(dir, "golden.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/analysis -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s (re-run with -update after intentional changes)\n--- got ---\n%s--- want ---\n%s",
					golden, got, want)
			}
		})
	}
}

// TestCorpusViolationsCovered guards the corpus itself: every line marked
// "violation" must produce at least one diagnostic, so a silently weakened
// rule cannot pass by emitting nothing.
func TestCorpusViolationsCovered(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name(), func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name())
			pkg, err := LoadDir(dir, "corpus/"+a.Name())
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			diags := Run(pkg, []Analyzer{a})
			if len(diags) == 0 {
				t.Fatalf("corpus produced no diagnostics at all")
			}
			hit := map[string]bool{}
			for _, d := range diags {
				hit[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)] = true
			}
			for _, mark := range violationLines(t, dir) {
				if !hit[mark] {
					t.Errorf("corpus line %s is marked as a violation but produced no diagnostic", mark)
				}
			}
		})
	}
}

// violationLines scans the corpus sources for lines containing the word
// "violation" in a comment and returns their file:line keys.
func violationLines(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, "// violation") || strings.Contains(line, "<- violation") {
				out = append(out, fmt.Sprintf("%s:%d", e.Name(), i+1))
			}
		}
	}
	if len(out) == 0 {
		t.Fatalf("no violation markers found in %s", dir)
	}
	return out
}
