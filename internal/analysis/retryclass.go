package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// retryclass guards the error-classification tables in packages that
// define a `Retryable(error) bool` predicate (internal/srb and corpus
// stand-ins). Two invariants:
//
//   - every package-level `Err*` error value must be classified: the
//     Retryable body (or a table variable it references) must mention it.
//     A new error silently falling through to the default is exactly the
//     bug class the busy-status work fixed by hand.
//   - every package-level `status*` wire code must be mapped by both
//     statusToErr and errToStatus, so a new status cannot decode to a
//     catch-all on one side only.
type retryclass struct{}

func (retryclass) Name() string { return "retryclass" }
func (retryclass) Doc() string {
	return "every Err* value and status* wire code must be classified in the Retryable/status tables"
}

func (retryclass) Run(pkg *Package) []Diagnostic {
	retryable := findFuncDecl(pkg, "Retryable")
	if retryable == nil || !isErrorPredicate(pkg, retryable) {
		return nil // package does not define the classification convention
	}

	var diags []Diagnostic

	// Objects mentioned by Retryable, expanded one level through the
	// initializers of any package-level variables it references (the
	// retryTerminal/retryTransient tables).
	classified := referencedObjects(pkg, retryable.Body)
	for obj := range classified {
		v, ok := obj.(*types.Var)
		if !ok || v.Parent() != pkg.Types.Scope() {
			continue
		}
		if init := findVarInit(pkg, v); init != nil {
			for o := range referencedObjects(pkg, init) {
				classified[o] = true
			}
		}
	}

	scope := pkg.Types.Scope()
	names := scope.Names() // sorted
	errType := types.Universe.Lookup("error").Type()
	for _, nm := range names {
		if len(nm) < 4 || nm[:3] != "Err" {
			continue
		}
		v, ok := scope.Lookup(nm).(*types.Var)
		if !ok || !types.AssignableTo(v.Type(), errType) {
			continue
		}
		if !classified[v] {
			diags = append(diags, pkg.diag(v.Pos(), "retryclass",
				"%s is not classified by Retryable: add it to the retryable or terminal table", nm))
		}
	}

	// Wire status mapping, when the package has both mapping functions.
	toErr := findFuncDecl(pkg, "statusToErr")
	toStatus := findFuncDecl(pkg, "errToStatus")
	if toErr == nil || toStatus == nil {
		return diags
	}
	inToErr := referencedObjects(pkg, toErr.Body)
	inToStatus := referencedObjects(pkg, toStatus.Body)
	for _, nm := range names {
		if len(nm) < 7 || nm[:6] != "status" {
			continue
		}
		c, ok := scope.Lookup(nm).(*types.Const)
		if !ok {
			continue
		}
		var missing []string
		if !inToErr[c] {
			missing = append(missing, "statusToErr")
		}
		if !inToStatus[c] {
			missing = append(missing, "errToStatus")
		}
		sort.Strings(missing)
		for _, fn := range missing {
			diags = append(diags, pkg.diag(c.Pos(), "retryclass",
				"wire code %s is not mapped by %s: a new status must round-trip both directions", nm, fn))
		}
	}
	return diags
}

// isErrorPredicate reports whether fn has the func(error) bool shape.
func isErrorPredicate(pkg *Package, fn *ast.FuncDecl) bool {
	obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.Identical(sig.Params().At(0).Type(), errType) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// findFuncDecl locates a package-level function declaration by name.
func findFuncDecl(pkg *Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// findVarInit returns the initializer expression of a package-level var.
func findVarInit(pkg *Package, v *types.Var) ast.Expr {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pkg.Info.Defs[name] != v {
						continue
					}
					if i < len(vs.Values) {
						return vs.Values[i]
					}
					if len(vs.Values) == 1 {
						return vs.Values[0]
					}
				}
			}
		}
	}
	return nil
}

// referencedObjects collects every object an AST subtree mentions.
func referencedObjects(pkg *Package, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	if n == nil {
		return out
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}
