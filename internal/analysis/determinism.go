package analysis

import (
	"go/ast"
)

// determinism keeps simulated-clock packages reproducible. It applies to
// any package that contains a clock.go file (netsim is the one in this
// repository): wall-clock reads and sleeps must funnel through the
// helpers defined there, and randomness must come from an explicitly
// seeded *rand.Rand, never the global math/rand source.
//
// Concretely, outside clock.go it flags calls to time.Now, time.Sleep,
// time.Since, time.Until, time.After, time.AfterFunc, time.Tick,
// time.NewTimer and time.NewTicker; everywhere in the package it flags
// math/rand package-level draw functions (rand.Intn, rand.Int63n,
// rand.Float64, rand.Perm, rand.Shuffle, rand.Seed, ...). Constructing a
// seeded source — rand.New, rand.NewSource, rand.NewZipf — is the
// sanctioned pattern and stays legal.
type determinism struct{}

func (determinism) Name() string { return "determinism" }
func (determinism) Doc() string {
	return "simulated-clock packages must use the clock.go helpers and seeded randomness, not time.Now/global math/rand"
}

var determinismTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Seeded-source constructors are allowed; every other math/rand
// package-level function draws from shared global state.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func (determinism) Run(pkg *Package) []Diagnostic {
	hasClock := false
	for _, f := range pkg.Files {
		if pkg.fileName(f.Pos()) == "clock.go" {
			hasClock = true
			break
		}
	}
	if !hasClock {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		inClock := pkg.fileName(f.Pos()) == "clock.go"
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if _, isMethod := pkg.Info.Selections[sel]; isMethod {
				return true // methods on *rand.Rand / time.Time values are fine
			}
			switch obj.Pkg().Path() {
			case "time":
				if !inClock && determinismTimeFuncs[obj.Name()] {
					diags = append(diags, pkg.diag(call.Pos(), "determinism",
						"direct time.%s in a simulated-clock package; route it through clock.go", obj.Name()))
				}
			case "math/rand", "math/rand/v2":
				if !randAllowed[obj.Name()] {
					diags = append(diags, pkg.diag(call.Pos(), "determinism",
						"global math/rand draw rand.%s breaks reproducibility; use a seeded *rand.Rand", obj.Name()))
				}
			}
			return true
		})
	}
	return diags
}
