package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// The summary builder is the substrate five rules stand on, so its edge
// cases get direct tests: recursion must terminate, dynamic dispatch must
// yield no call edge (unknown callee, not "does nothing"), and the
// ownership fixpoints must flow through wrapper chains.

func loadSrc(t *testing.T, src string) *pkgSummaries {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "example.com/summtest")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return pkg.summaries()
}

func fnSummary(t *testing.T, ps *pkgSummaries, name string) *funcSummary {
	t.Helper()
	for fn, s := range ps.funcs {
		if fn.Name() == name {
			return s
		}
	}
	t.Fatalf("no summary for function %q", name)
	return nil
}

func TestSummaryBuilder(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		check func(t *testing.T, ps *pkgSummaries)
	}{
		{
			name: "self recursion terminates",
			src: `package p
import "sync"
var mu sync.Mutex
func rec(n int) {
	mu.Lock()
	mu.Unlock()
	if n > 0 {
		rec(n - 1)
	}
}
`,
			check: func(t *testing.T, ps *pkgSummaries) {
				s := fnSummary(t, ps, "rec")
				acq := ps.transitiveAcquires(s.fn)
				if len(acq) != 1 {
					t.Errorf("transitiveAcquires(rec) has %d locks, want 1", len(acq))
				}
			},
		},
		{
			name: "mutual recursion merges both lock sets",
			src: `package p
import "sync"
var muA, muB sync.Mutex
func ping(n int) {
	muA.Lock()
	muA.Unlock()
	if n > 0 {
		pong(n - 1)
	}
}
func pong(n int) {
	muB.Lock()
	muB.Unlock()
	ping(n)
}
`,
			check: func(t *testing.T, ps *pkgSummaries) {
				for _, name := range []string{"ping", "pong"} {
					s := fnSummary(t, ps, name)
					if acq := ps.transitiveAcquires(s.fn); len(acq) != 2 {
						t.Errorf("transitiveAcquires(%s) has %d locks, want 2 (both sides of the cycle)", name, len(acq))
					}
				}
			},
		},
		{
			name: "method values resolve to no call edge",
			src: `package p
import "sync"
type c struct{ mu sync.Mutex }
func (v *c) run() {
	v.mu.Lock()
	v.mu.Unlock()
}
func launch(v *c) {
	f := v.run
	f()
	go f()
}
`,
			check: func(t *testing.T, ps *pkgSummaries) {
				s := fnSummary(t, ps, "launch")
				if len(s.calls) != 0 {
					t.Errorf("launch has %d call edges, want 0: calls through method values are unresolvable", len(s.calls))
				}
				if acq := ps.transitiveAcquires(s.fn); len(acq) != 0 {
					t.Errorf("launch transitively acquires %d locks, want 0", len(acq))
				}
			},
		},
		{
			name: "interface dispatch attributes nothing",
			src: `package p
import "sync"
type worker interface{ work() }
type impl struct{ mu sync.Mutex }
func (i *impl) work() {
	i.mu.Lock()
	i.mu.Unlock()
}
func drive(w worker) {
	w.work()
}
`,
			check: func(t *testing.T, ps *pkgSummaries) {
				s := fnSummary(t, ps, "drive")
				if len(s.calls) != 0 {
					t.Errorf("drive has %d call edges, want 0: interface dispatch is unresolvable", len(s.calls))
				}
				if acq := ps.transitiveAcquires(s.fn); len(acq) != 0 {
					t.Errorf("drive transitively acquires %d locks, want 0", len(acq))
				}
			},
		},
		{
			name: "returnsPooled flows through wrapper chains",
			src: `package p
func getBuf(n int) []byte { return make([]byte, n) }
func putBuf(b []byte)     {}
func alloc() []byte  { return getBuf(8) }
func wrap() []byte   { return alloc() }
func rewrap() []byte { return wrap() }
func plain() []byte  { return make([]byte, 8) }
`,
			check: func(t *testing.T, ps *pkgSummaries) {
				for _, name := range []string{"alloc", "wrap", "rewrap"} {
					if !fnSummary(t, ps, name).returnsPooled {
						t.Errorf("%s.returnsPooled = false, want true", name)
					}
				}
				if fnSummary(t, ps, "plain").returnsPooled {
					t.Error("plain.returnsPooled = true, want false: make is not pool-owned")
				}
			},
		},
		{
			name: "releasesParams is transitive",
			src: `package p
func getBuf(n int) []byte { return make([]byte, n) }
func putBuf(b []byte)     {}
func rel(b []byte)  { putBuf(b) }
func rel2(b []byte) { rel(b) }
func keep(b []byte) { _ = b[0] }
`,
			check: func(t *testing.T, ps *pkgSummaries) {
				for _, name := range []string{"rel", "rel2"} {
					if !fnSummary(t, ps, name).releasesParams[0] {
						t.Errorf("%s.releasesParams[0] = false, want true", name)
					}
				}
				if fnSummary(t, ps, "keep").releasesParams[0] {
					t.Error("keep.releasesParams[0] = true, want false")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.check(t, loadSrc(t, tc.src))
		})
	}
}
