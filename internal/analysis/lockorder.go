package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// lockorder builds the package-wide mutex acquisition-order graph and
// reports cycles: if one code path takes A then B and another takes B
// then A, two goroutines can deadlock. Edges come from two sources:
//
//   - intraprocedural: B.Lock() reached while A is held (lockheld's
//     sequential held-set model, replayed over lock identities), and
//   - interprocedural: a call made while A is held, into a function whose
//     transitive summary acquires B.
//
// Locks are identified by their field or package-variable object, so
// "c.mu then c.wmu" orders the same way in every function regardless of
// receiver name. Self-edges (the same field locked on two instances) are
// instance-aliasing questions the graph cannot decide and are skipped.
type lockorder struct{}

func (lockorder) Name() string { return "lockorder" }
func (lockorder) Doc() string {
	return "the package-wide mutex acquisition graph must be cycle-free (a cycle is a potential deadlock)"
}

// lockEdge is one observed "outer held while inner acquired" ordering.
type lockEdge struct {
	pos   token.Pos // where the ordering was observed
	fn    string    // function it was observed in
	inner string    // display name of what was acquired (call chain included)
}

func (lockorder) Run(pkg *Package) []Diagnostic {
	ps := pkg.summaries()

	// Collect the edge set; keep the lexically first witness per edge.
	edges := map[types.Object]map[types.Object]lockEdge{}
	addEdge := func(outer, inner types.Object, e lockEdge) {
		if outer == inner {
			return
		}
		if edges[outer] == nil {
			edges[outer] = map[types.Object]lockEdge{}
		}
		if old, ok := edges[outer][inner]; !ok || e.pos < old.pos {
			edges[outer][inner] = e
		}
	}
	for _, s := range ps.order {
		for _, pr := range s.pairs {
			addEdge(pr.outer, pr.inner, lockEdge{
				pos:   pr.pos,
				fn:    s.name,
				inner: ps.lockNames[pr.inner],
			})
		}
		for _, hc := range s.heldCalls {
			for inner := range ps.transitiveAcquires(hc.callee) {
				for _, outer := range hc.held {
					addEdge(outer, inner, lockEdge{
						pos:   hc.pos,
						fn:    s.name,
						inner: fmt.Sprintf("%s (via %s)", ps.lockNames[inner], hc.callee.Name()),
					})
				}
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}

	// Deterministic node order: by display name, then by object position.
	nodeSet := map[types.Object]bool{}
	for outer, ins := range edges {
		nodeSet[outer] = true
		for inner := range ins {
			nodeSet[inner] = true
		}
	}
	nodes := make([]types.Object, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	name := func(o types.Object) string {
		if n := ps.lockNames[o]; n != "" {
			return n
		}
		return o.Name()
	}
	sort.Slice(nodes, func(i, j int) bool {
		if a, b := name(nodes[i]), name(nodes[j]); a != b {
			return a < b
		}
		return nodes[i].Pos() < nodes[j].Pos()
	})
	succ := func(o types.Object) []types.Object {
		out := make([]types.Object, 0, len(edges[o]))
		for inner := range edges[o] {
			out = append(out, inner)
		}
		sort.Slice(out, func(i, j int) bool {
			if a, b := name(out[i]), name(out[j]); a != b {
				return a < b
			}
			return out[i].Pos() < out[j].Pos()
		})
		return out
	}

	// DFS cycle detection; one report per distinct cycle node-set.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[types.Object]int{}
	var stack []types.Object
	var diags []Diagnostic
	reported := map[string]bool{}

	report := func(from, to types.Object) {
		// Reconstruct the cycle: to ... from -> to.
		start := 0
		for i, n := range stack {
			if n == to {
				start = i
				break
			}
		}
		cycle := append(append([]types.Object{}, stack[start:]...), to)
		names := make([]string, len(cycle))
		for i, n := range cycle {
			names[i] = name(n)
		}
		key := strings.Join(sortedCopy(names), "|")
		if reported[key] {
			return
		}
		reported[key] = true
		e := edges[from][to]
		// Cite the reverse ordering so the report is actionable.
		reverse := ""
		if len(cycle) == 3 { // two-lock cycle: to -> from -> to
			if re, ok := edges[to][from]; ok {
				rp := pkg.Fset.Position(re.pos)
				reverse = fmt.Sprintf("; reverse order in %s at %s:%d",
					re.fn, filepath.Base(rp.Filename), rp.Line)
			}
		}
		diags = append(diags, pkg.diag(e.pos, "lockorder",
			"lock order cycle %s: %s acquires %s while holding %s%s",
			strings.Join(names, " -> "), e.fn, e.inner, name(from), reverse))
	}

	var visit func(n types.Object)
	visit = func(n types.Object) {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range succ(n) {
			switch color[m] {
			case white:
				visit(m)
			case gray:
				report(n, m)
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
	return diags
}

func sortedCopy(s []string) []string {
	c := append([]string{}, s...)
	sort.Strings(c)
	return c
}
