// Corpus for the lockorder rule: the package-wide mutex acquisition
// graph must be cycle-free. Lines marked "violation" must each produce a
// diagnostic; note a cycle is reported exactly once, at the edge the
// (deterministic, name-ordered) DFS sees closing it.
package lockorder

import "sync"

// Direct two-lock cycle: a -> b in lockAB, b -> a in lockBA.
type pair struct {
	a, b sync.Mutex
}

func (p *pair) lockAB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	p.b.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // violation: reverses lockAB's a -> b order
	p.a.Unlock()
}

// Interprocedural cycle: down holds root while a callee takes leaf; up
// holds leaf while a callee takes root. The DFS reports the root -> leaf
// edge (the call site in down) when it closes the cycle.
type tree struct {
	root, leaf sync.Mutex
}

func (t *tree) down() {
	t.root.Lock()
	defer t.root.Unlock()
	t.lockLeaf() // violation: root -> leaf, reversed by up() via lockRoot()
}

func (t *tree) lockLeaf() {
	t.leaf.Lock()
	defer t.leaf.Unlock()
}

func (t *tree) up() {
	t.leaf.Lock()
	defer t.leaf.Unlock()
	t.lockRoot()
}

func (t *tree) lockRoot() {
	t.root.Lock()
	defer t.root.Unlock()
}

// Three-lock cycle built from consistent-looking pieces.
type ring struct {
	x, y, z sync.Mutex
}

func (r *ring) xy() {
	r.x.Lock()
	r.y.Lock()
	r.y.Unlock()
	r.x.Unlock()
}

func (r *ring) yz() {
	r.y.Lock()
	r.z.Lock()
	r.z.Unlock()
	r.y.Unlock()
}

func (r *ring) zx() {
	r.z.Lock()
	r.x.Lock() // violation: closes x -> y -> z -> x
	r.x.Unlock()
	r.z.Unlock()
}

// Consistent nesting is fine in any number of functions.
type clean struct {
	outer, inner sync.Mutex
}

func (c *clean) nested() {
	c.outer.Lock()
	defer c.outer.Unlock()
	c.inner.Lock() // ok: same order everywhere
	c.inner.Unlock()
}

func (c *clean) alsoNested() {
	c.outer.Lock()
	c.inner.Lock()
	c.inner.Unlock()
	c.outer.Unlock()
}

// Branch-local locking does not invent orderings: the then-branch
// releases before the else-lock can be confused with it.
func (c *clean) branches(which bool) {
	if which {
		c.outer.Lock()
		c.outer.Unlock()
	} else {
		c.inner.Lock()
		c.inner.Unlock()
	}
}
