// Corpus for the lockheld rule: blocking operations under a held mutex.
// Each "violation" comment marks a line the golden file expects a
// diagnostic for; everything else must stay clean.
package lockheldtest

import (
	"bufio"
	"net"
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
	c  net.Conn
}

func sendWhileLocked(b *box) {
	b.mu.Lock()
	b.ch <- 1 // violation: channel send under b.mu
	b.mu.Unlock()
}

func recvWhileLocked(b *box) int {
	b.mu.Lock()
	v := <-b.ch // violation: channel receive under b.mu
	b.mu.Unlock()
	return v
}

func sleepUnderDeferredUnlock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // violation: deferred unlock keeps b.mu held
}

func connWriteWhileLocked(b *box, p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.c.Write(p) // violation: interface Write under b.mu
}

func selectWhileLocked(b *box) {
	b.mu.Lock()
	select { // violation: select without default under b.mu
	case v := <-b.ch:
		_ = v
	case b.ch <- 0:
	}
	b.mu.Unlock()
}

func rangeChanWhileLocked(b *box) {
	b.mu.Lock()
	for v := range b.ch { // violation: range over channel under b.mu
		_ = v
	}
	b.mu.Unlock()
}

func allowedFlush(b *box, bw *bufio.Writer) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:allow lockheld -- deliberate serialization point, like (*srb.Conn).call
	return bw.Flush()
}

func okUnlockFirst(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1 // ok: released before the send
}

func okBothBranchesRelease(b *box) {
	b.mu.Lock()
	if cap(b.ch) == 0 {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	<-b.ch // ok: every path released the mutex
}

func okSelectWithDefault(b *box) {
	b.mu.Lock()
	select { // ok: default makes it non-blocking
	case b.ch <- 1:
	default:
	}
	b.mu.Unlock()
}

func okCondWait(b *box, cond *sync.Cond) {
	b.mu.Lock()
	cond.Wait() // ok: Cond.Wait releases the mutex while parked
	b.mu.Unlock()
}

func okGoroutineBody(b *box) {
	b.mu.Lock()
	go func() {
		b.ch <- 1 // ok: the literal runs on another goroutine, lock set is empty
	}()
	b.mu.Unlock()
}

func okOtherMutex(b *box, other *sync.Mutex) {
	other.Lock()
	other.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1 // ok: nothing held here
}
