// Corpus for the errdrop rule. The package is named storage so that calls
// to its own functions count as module write-path calls.
package storage

import "os"

// WriteBlock stands in for a write-path operation.
func WriteBlock(p []byte) error { _ = p; return nil }

// flushMeta is a lower-case write-path helper.
func flushMeta() error { return nil }

func bareCall() {
	WriteBlock(nil) // violation: discarded error
}

func blankAssign() {
	_ = WriteBlock(nil) // violation: blank-assigned error
}

func lowerCaseWritePath() {
	flushMeta() // ok: "flushMeta" is not Write*/write*/Close/...
}

func stdlibRemove() {
	os.Remove("scratch") // violation: os.Remove error discarded
}

func closeNotDeferred(f *os.File) {
	f.Close() // violation: explicit Close on a write path must be checked
}

func okDeferredClose(f *os.File) {
	defer f.Close() // ok: deferred cleanup close is idiomatic
}

func okHandled() error {
	return WriteBlock(nil) // ok: error propagated
}

func okChecked() {
	if err := WriteBlock(nil); err != nil {
		panic(err)
	}
}

func okAllowed() {
	//lint:allow errdrop -- best-effort cleanup, demonstrated for the corpus
	WriteBlock(nil) // ok: suppressed
}
