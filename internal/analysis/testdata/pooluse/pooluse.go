// Corpus for the pooluse rule: the bufpool ownership discipline. Lines
// marked "violation" must each produce a diagnostic.
package pooluse

import "errors"

var errFill = errors.New("fill failed")

// The pool convention the rule keys on.
func getBuf(n int) []byte { return make([]byte, n) }
func putBuf(b []byte)     { _ = b }

func fill(b []byte) error {
	if len(b) == 0 {
		return errFill
	}
	return nil
}

// wrapBuf returns a pooled buffer: callers inherit the putBuf obligation
// through the interprocedural summary.
func wrapBuf(n int) []byte {
	b := getBuf(n)
	return b // ok: ownership transfers to the caller
}

// releaseHelper releases its parameter: passing a buffer here is a put.
func releaseHelper(b []byte) {
	putBuf(b)
}

func leakOnError() error {
	b := getBuf(64)
	if err := fill(b); err != nil {
		return err // violation: the error path leaks b
	}
	putBuf(b)
	return nil
}

func doublePut() {
	b := getBuf(64)
	putBuf(b)
	putBuf(b) // violation: released twice
}

func useAfterPut() byte {
	b := getBuf(64)
	putBuf(b)
	return b[0] // violation: use after put
}

func discarded() {
	getBuf(64) // violation: result discarded, can never be released
}

type holder struct{ buf []byte }

func (h *holder) stash() {
	h.buf = getBuf(64) // violation: escapes into state that outlives the call
}

func interprocLeak(fail bool) error {
	b := wrapBuf(32)
	if fail {
		return errFill // violation: wrapBuf's buffer leaks on the error path
	}
	putBuf(b)
	return nil
}

func neverReleased() {
	b := getBuf(16) // violation: no putBuf on any path
	if err := fill(b); err != nil {
		return
	}
}

func viaHelper() {
	b := getBuf(8)
	releaseHelper(b) // ok: the callee releases it
}

func deferRelease() error {
	b := getBuf(64)
	defer putBuf(b)
	return fill(b) // ok: the deferred release covers every return
}

func deferLitRelease() error {
	b := getBuf(64)
	defer func() {
		putBuf(b)
	}()
	return fill(b) // ok: released inside the deferred literal
}

// The conditional acquire/release idiom stays silent: states merge to
// Maybe at the joins and only definite imbalances report.
func condBalanced(big bool) {
	var b []byte
	if big {
		b = getBuf(1024)
	}
	_ = fill(b)
	if big {
		putBuf(b) // ok
	}
}

type frame struct{ data []byte }

func escapeLocal() *frame {
	f := &frame{}
	f.data = getBuf(128)
	return f // ok: stored in a local struct the caller takes over
}

func send(fr *frame) { _ = fr }

func compositeTransfer() {
	b := getBuf(256)
	send(&frame{data: b}) // ok: ownership moved into the frame
}

func sliceRebind() {
	b := getBuf(512)
	b = b[:8] // ok: same backing buffer
	putBuf(b)
}
