// Corpus for the goexit rule. The file is named client.go so the package
// is in the rule's scope (connection-lifecycle packages). Lines marked
// "violation" must each produce a diagnostic; goexit reports at the `go`
// statement that launches the unexitable goroutine.
package goexit

import (
	"io"
	"sync"
)

func step() bool { return true }

func spinForever() {
	go func() { // violation: the loop below has no return, break or panic
		for {
			step()
		}
	}()
}

// worker has exits but nothing — no conn read, channel, context or flag —
// ever triggers them.
func worker() {
	for {
		if step() {
			return
		}
	}
}

func spawnWorker() {
	go worker() // violation: loops forever with no exit key
}

// Reader goroutines keyed on a connection read are fine: the read fails
// once the conn closes.
func readLoop(r io.Reader) {
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := r.Read(buf); err != nil {
				return
			}
		}
	}()
}

// Done-channel exits are fine: select is an exit key.
func withDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				step()
			}
		}
	}()
}

// Cond.Wait parks the goroutine and the closed flag routes it out.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
}

func (p *pool) run() {
	for {
		p.mu.Lock()
		for !p.closed {
			p.cond.Wait()
		}
		p.mu.Unlock()
		return
	}
}

func (p *pool) start() {
	go p.run() // ok: Cond.Wait plus the closed flag
}

// Range over a channel ends when the channel closes.
func consume(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Bounded goroutines (no unconditional loop) need no key.
func fireAndForget() {
	go step() // ok
}

// Transitive: the goroutine's own body is clean, but a callee spins.
func spinCallee() {
	for {
		step()
	}
}

func launchIndirect() {
	go indirect() // violation: indirect -> spinCallee can never exit
}

func indirect() {
	spinCallee()
}
