// Corpus for the retryclass rule: every Err* value must be classified by
// Retryable (directly or via a table variable it references) and every
// status* wire code must round-trip through both statusToErr and
// errToStatus. Lines marked "violation" must each produce a diagnostic.
package retryclass

import "errors"

var (
	ErrNotFound = errors.New("not found")
	ErrBusy     = errors.New("busy")
	ErrTimeout  = errors.New("timed out")
	ErrOrphan   = errors.New("orphan") // violation: in neither retry table
)

const (
	statusOK int32 = iota
	statusNotFound
	statusBusy
	statusStale // violation: mapped by neither statusToErr nor errToStatus
)

var retryTransient = []error{ErrBusy, ErrTimeout}

var retryTerminal = []error{ErrNotFound}

func Retryable(err error) bool {
	if err == nil {
		return false
	}
	for _, transient := range retryTransient {
		if errors.Is(err, transient) {
			return true
		}
	}
	for _, terminal := range retryTerminal {
		if errors.Is(err, terminal) {
			return false
		}
	}
	return true
}

func statusToErr(st int32) error {
	switch st {
	case statusOK:
		return nil
	case statusNotFound:
		return ErrNotFound
	case statusBusy:
		return ErrBusy
	}
	return ErrNotFound
}

func errToStatus(err error) int32 {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, ErrNotFound):
		return statusNotFound
	case errors.Is(err, ErrBusy):
		return statusBusy
	}
	return statusNotFound
}
