// Corpus for the guardedfield rule: "// guarded by <mu>" annotations.
package guardedtest

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by mu
}

type brokenAnnotations struct {
	mu   sync.Mutex
	gone int // guarded by missing   <- violation: no such sibling field
	data int // guarded by gone      <- violation: gone is not a mutex
}

func okLocked(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // ok: c.mu locked in this body
}

func okRLockOnPointer(c *counter) {
	(&c.mu).Lock()
	c.m++ // ok: lock through an address-of is still a lock of mu
	c.mu.Unlock()
}

func badUnlocked(c *counter) int {
	return c.n // violation: no lock in this function
}

func badWrite(c *counter) {
	c.m = 7 // violation: write without the lock
}

func okConstruction() *counter {
	c := &counter{}
	c.n = 1 // ok: c is local, not shared yet
	return c
}

func badClosure(c *counter) {
	c.mu.Lock()
	go func() {
		c.n++ // violation: the literal does not inherit the caller's lock
	}()
	c.mu.Unlock()
}

func okAllowedHelper(c *counter) int {
	//lint:allow guardedfield -- contract: only called with c.mu held
	return c.n // ok: suppressed by the pragma above
}
