// Corpus for the determinism rule. The presence of this clock.go file is
// what puts the package under the rule; wall-clock calls in here are the
// sanctioned funnel and stay legal.
package simtest

import "time"

func now() time.Time                  { return time.Now() }
func sleep(d time.Duration)           { time.Sleep(d) }
func since(t time.Time) time.Duration { return time.Since(t) }
