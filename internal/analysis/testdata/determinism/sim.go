package simtest

import (
	"math/rand"
	"time"
)

func step() time.Duration {
	start := time.Now()          // violation: direct time.Now outside clock.go
	time.Sleep(time.Millisecond) // violation: direct time.Sleep
	return time.Since(start)     // violation: direct time.Since
}

func globalDraw() int {
	return rand.Intn(10) // violation: global math/rand draw
}

func okFunnel() time.Duration {
	start := now()
	sleep(time.Millisecond)
	return since(start) // ok: everything through the clock.go helpers
}

func okSeeded() int {
	r := rand.New(rand.NewSource(1)) // ok: seeded-source constructors are allowed
	return r.Intn(10)                // ok: method on *rand.Rand
}

func okAllowed() int64 {
	//lint:allow determinism -- corpus demo of a justified exception
	return time.Now().UnixNano() // ok: suppressed
}
