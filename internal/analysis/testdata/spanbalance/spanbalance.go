// Corpus for the spanbalance rule: every Begin needs an End on all
// paths. Lines marked "violation" must each produce a diagnostic.
package spanbalance

import "errors"

var errBoom = errors.New("boom")

// Minimal stand-ins for the trace package: the rule keys on methods named
// Begin/BeginServer returning a named Span, and End on that Span.
type Span struct {
	id int64
}

func (s Span) End() int64 { return s.id }

type Tracer struct {
	enabled bool
}

func (t *Tracer) Enabled() bool { return t.enabled }

func (t *Tracer) Begin(cat, name string) Span { return Span{id: 1} }

func (t *Tracer) BeginServer(cat, name string) Span { return Span{id: 2} }

func (t *Tracer) Observe(name string, d int64) {}

// endHelper Ends its parameter: passing a span there transfers the
// obligation through the interprocedural summary.
func endHelper(sp Span) {
	sp.End()
}

// startOp returns a fresh span: callers inherit the End obligation.
func startOp(t *Tracer) Span {
	return t.Begin("op", "start")
}

func leakOnError(t *Tracer, fail bool) error {
	sp := t.Begin("wire", "call")
	if fail {
		return errBoom // violation: the error path never Ends sp
	}
	t.Observe("wire.call", sp.End())
	return nil
}

func doubleEnd(t *Tracer) {
	sp := t.Begin("wire", "call")
	sp.End()
	sp.End() // violation: Ended twice
}

func neverEnded(t *Tracer) {
	sp := t.BeginServer("server", "dispatch") // violation: no End on any path
	_ = sp
}

func discardedSpan(t *Tracer) {
	t.Begin("wire", "oops") // violation: span discarded, can never End
}

func viaWrapper(t *Tracer, fail bool) {
	sp := startOp(t)
	if fail {
		return // violation: the wrapper-started span leaks here
	}
	sp.End()
}

func viaHelper(t *Tracer) {
	sp := t.Begin("wire", "call")
	endHelper(sp) // ok: the callee Ends it
}

// The conditional-tracing idiom stays silent: the span is begun and Ended
// under the same guard, so its state is Maybe at every join and only
// definite imbalances report.
func conditional(t *Tracer, n int) int {
	var sp Span
	traced := t.Enabled()
	if traced {
		sp = t.Begin("wire", "cond")
	}
	n *= 2
	if traced {
		t.Observe("wire.cond", sp.End())
	}
	return n
}

type task struct {
	queued Span
}

// Field-resident spans belong to the struct's lifecycle, not to any one
// function: the store is a transfer, the later End a plain call.
func enqueue(t *Tracer, tk *task) {
	tk.queued = t.Begin("engine", "queued")
}

func finish(tk *task) int64 {
	return tk.queued.End()
}

func deferredEnd(t *Tracer) error {
	sp := t.Begin("wire", "call")
	defer sp.End()
	return errBoom // ok: the deferred End covers every return
}
