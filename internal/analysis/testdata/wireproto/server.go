package wiretest

import "encoding/binary"

// dispatch is the server switch; opNoServer is deliberately missing and
// opNoClient deliberately present.
func dispatch(op int) string {
	switch op {
	case opPing:
		return "ping"
	case opRead:
		return "read"
	case opNoClient:
		return "orphan"
	}
	return "unknown"
}

func decodeGood(hdrBytes []byte) (uint32, uint16) {
	var hdr [goodHdrSize]byte
	copy(hdr[:], hdrBytes)
	return binary.BigEndian.Uint32(hdr[0:]), binary.BigEndian.Uint16(hdr[4:])
}

// decodeBad reads [0:4] and [8:10] big-endian plus [10:12], which the
// encoder never writes.
func decodeBad(hdrBytes []byte) (uint32, uint16, uint16) {
	var hdr [badHdrSize]byte
	copy(hdr[:], hdrBytes)
	op := binary.BigEndian.Uint32(hdr[0:])
	n := binary.BigEndian.Uint16(hdr[8:])
	tail := binary.BigEndian.Uint16(hdr[10:])
	return op, n, tail
}
