package wiretest

import "encoding/binary"

// issue references the client-side opcodes.
func issue() []int {
	return []int{opPing, opRead, opNoServer}
}

// encodeGood and decodeGood agree byte for byte: [0:4] BE, [4:6] BE.
func encodeGood(op uint32, n uint16) []byte {
	var hdr [goodHdrSize]byte
	binary.BigEndian.PutUint32(hdr[0:], op)
	binary.BigEndian.PutUint16(hdr[4:], n)
	return hdr[:]
}

// encodeBad seeds three layout mistakes against decodeBad:
//   - [2:6] overlaps [0:4] and is never read by the decoder,
//   - [8:10] is written little-endian but read big-endian,
//   - the layout ends at byte 10, not badHdrSize (12).
func encodeBad(op, x uint32, n uint16) []byte {
	var hdr [badHdrSize]byte
	binary.BigEndian.PutUint32(hdr[0:], op)
	binary.BigEndian.PutUint32(hdr[2:], x)
	binary.LittleEndian.PutUint16(hdr[8:], n)
	return hdr[:]
}
