// Corpus for the wireproto rule: a miniature two-header protocol with
// seeded wiring and layout mistakes.
package wiretest

// Opcodes. opPing and opRead are wired on both sides; opNoServer is sent
// but never dispatched; opNoClient is dispatched but never sent.
const (
	opPing     = 1
	opRead     = 2
	opNoServer = 3 // violation: no server case
	opNoClient = 4 // violation: never issued by the client
)

// Header sizes.
const (
	goodHdrSize = 6
	badHdrSize  = 12
)
