package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// wireproto checks the SRB wire protocol for exhaustiveness and layout
// consistency, in any package that declares opcode constants in a file
// named proto.go:
//
//  1. Every opcode constant (an identifier matching ^op[A-Z]) must appear
//     in a case clause of the server dispatch switch (server.go) AND be
//     referenced by the client side (any other file). A new opcode wired
//     into only one side is caught at the constant's declaration.
//  2. Header encode/decode agreement: any function containing
//     `var hdr [N]byte` (N a named constant) is classified as an encoder
//     (binary.XxxEndian.PutUintM / hdr[i] = ... stores) or decoder
//     (binary.XxxEndian.UintM / hdr[i] loads). For each header constant
//     the encoder and decoder field layouts — the (offset, width,
//     endianness) sets — must be identical, encoder fields must not
//     overlap, and the layout must end exactly at N. Interior padding
//     (e.g. alignment bytes neither side touches) is permitted.
type wireproto struct{}

func (wireproto) Name() string { return "wireproto" }
func (wireproto) Doc() string {
	return "opcodes must be handled by both protocol sides; header encode/decode offsets must agree"
}

func (wireproto) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, checkOpcodes(pkg)...)
	diags = append(diags, checkHeaders(pkg)...)
	return diags
}

// --- opcode exhaustiveness ---

func checkOpcodes(pkg *Package) []Diagnostic {
	// Opcode constants declared in proto.go, in declaration order.
	type opConst struct {
		obj *types.Const
		pos token.Pos
	}
	var ops []opConst
	opSet := map[types.Object]bool{}
	for _, f := range pkg.Files {
		if pkg.fileName(f.Pos()) != "proto.go" {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !isOpcodeName(name.Name) {
						continue
					}
					if c, ok := pkg.Info.Defs[name].(*types.Const); ok {
						ops = append(ops, opConst{obj: c, pos: name.Pos()})
						opSet[c] = true
					}
				}
			}
		}
	}
	if len(ops) == 0 {
		return nil
	}

	handled := map[types.Object]bool{} // appears in a server.go case clause
	sent := map[types.Object]bool{}    // referenced anywhere else
	for _, f := range pkg.Files {
		name := pkg.fileName(f.Pos())
		if name == "proto.go" {
			continue
		}
		if name == "server.go" {
			ast.Inspect(f, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						if obj := pkg.Info.Uses[id]; obj != nil && opSet[obj] {
							handled[obj] = true
						}
					}
				}
				return true
			})
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pkg.Info.Uses[id]; obj != nil && opSet[obj] {
				sent[obj] = true
			}
			return true
		})
	}

	var diags []Diagnostic
	for _, op := range ops {
		if !handled[op.obj] {
			diags = append(diags, pkg.diag(op.pos, "wireproto",
				"opcode %s has no case in the server dispatch switch (server.go)", op.obj.Name()))
		}
		if !sent[op.obj] {
			diags = append(diags, pkg.diag(op.pos, "wireproto",
				"opcode %s is never issued by the client side", op.obj.Name()))
		}
	}
	return diags
}

func isOpcodeName(name string) bool {
	return len(name) > 2 && strings.HasPrefix(name, "op") &&
		name[2] >= 'A' && name[2] <= 'Z'
}

// --- header layout agreement ---

// fieldEntry is one fixed-offset header field touched by an encoder or
// decoder.
type fieldEntry struct {
	off    int64
	width  int64
	endian string // "BigEndian", "LittleEndian", or "" for single bytes
	pos    token.Pos
}

func (e fieldEntry) String() string {
	return fmt.Sprintf("[%d:%d]", e.off, e.off+e.width)
}

// headerUse is one function's view of one header buffer.
type headerUse struct {
	fn      string
	size    int64
	reads   []fieldEntry
	writes  []fieldEntry
	declPos token.Pos
}

func checkHeaders(pkg *Package) []Diagnostic {
	// Group header-using functions by the size constant of their buffer.
	groups := map[types.Object][]*headerUse{}
	var order []types.Object
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			uses := headerUsesIn(pkg, fd)
			for sizeConst, use := range uses {
				if _, seen := groups[sizeConst]; !seen {
					order = append(order, sizeConst)
				}
				groups[sizeConst] = append(groups[sizeConst], use)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Name() < order[j].Name() })

	var diags []Diagnostic
	for _, sizeConst := range order {
		uses := groups[sizeConst]
		var encoders, decoders []*headerUse
		for _, u := range uses {
			switch {
			case len(u.writes) > 0 && len(u.reads) == 0:
				encoders = append(encoders, u)
			case len(u.reads) > 0 && len(u.writes) == 0:
				decoders = append(decoders, u)
			}
		}
		// Validate each encoder's layout on its own: no overlap, ends at
		// the declared size.
		for _, enc := range encoders {
			diags = append(diags, checkLayout(pkg, enc, sizeConst)...)
		}
		// Cross-check every encoder/decoder pair over the same constant.
		for _, enc := range encoders {
			for _, dec := range decoders {
				diags = append(diags, compareLayouts(pkg, enc, dec)...)
			}
		}
	}
	return diags
}

// headerUsesIn finds `var <buf> [N]byte` declarations in fd where N is a
// named constant, and collects every fixed-offset load/store of each
// buffer.
func headerUsesIn(pkg *Package, fd *ast.FuncDecl) map[types.Object]*headerUse {
	// Buffer variables by object, with their size constant.
	bufs := map[*types.Var]types.Object{}
	sizes := map[*types.Var]int64{}
	decls := map[*types.Var]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		at, ok := vs.Type.(*ast.ArrayType)
		if !ok || at.Len == nil {
			return true
		}
		lenID, ok := ast.Unparen(at.Len).(*ast.Ident)
		if !ok {
			return true
		}
		sizeObj, ok := pkg.Info.Uses[lenID].(*types.Const)
		if !ok {
			return true
		}
		elem, ok := pkg.Info.TypeOf(at.Elt).(*types.Basic)
		if !ok || elem.Kind() != types.Byte && elem.Kind() != types.Uint8 {
			return true
		}
		size, ok := pkg.constIntValue(at.Len)
		if !ok {
			return true
		}
		for _, name := range vs.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				bufs[v] = sizeObj
				sizes[v] = size
				decls[v] = name.Pos()
			}
		}
		return true
	})
	if len(bufs) == 0 {
		return nil
	}

	out := map[types.Object]*headerUse{}
	useOf := func(v *types.Var) *headerUse {
		sizeObj := bufs[v]
		u := out[sizeObj]
		if u == nil {
			u = &headerUse{fn: funcDeclName(fd), size: sizes[v], declPos: decls[v]}
			out[sizeObj] = u
		}
		return u
	}
	bufVarOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || bufs[v] == nil {
			return nil
		}
		return v
	}

	// Index-assignment LHS positions, so stores and loads of single bytes
	// can be told apart.
	assignedIndexes := map[*ast.IndexExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				assignedIndexes[ix] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// binary.<Endian>.PutUintM(buf[off:], v) or
			// binary.<Endian>.UintM(buf[off:]).
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			endian, width, isPut, ok := binaryEndianCall(pkg, sel)
			if !ok || len(x.Args) == 0 {
				return true
			}
			slice, ok := ast.Unparen(x.Args[0]).(*ast.SliceExpr)
			if !ok {
				return true
			}
			v := bufVarOf(slice.X)
			if v == nil {
				return true
			}
			off := int64(0)
			if slice.Low != nil {
				c, ok := pkg.constIntValue(slice.Low)
				if !ok {
					return true
				}
				off = c
			}
			entry := fieldEntry{off: off, width: width, endian: endian, pos: x.Pos()}
			if isPut {
				useOf(v).writes = append(useOf(v).writes, entry)
			} else {
				useOf(v).reads = append(useOf(v).reads, entry)
			}
		case *ast.IndexExpr:
			v := bufVarOf(x.X)
			if v == nil {
				return true
			}
			off, ok := pkg.constIntValue(x.Index)
			if !ok {
				return true
			}
			entry := fieldEntry{off: off, width: 1, pos: x.Pos()}
			if assignedIndexes[x] {
				useOf(v).writes = append(useOf(v).writes, entry)
			} else {
				useOf(v).reads = append(useOf(v).reads, entry)
			}
		}
		return true
	})
	return out
}

// binaryEndianCall recognizes encoding/binary byte-order method calls and
// returns the endianness, field width and whether it is a store.
func binaryEndianCall(pkg *Package, sel *ast.SelectorExpr) (endian string, width int64, isPut, ok bool) {
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false, false
	}
	obj := pkg.Info.Uses[inner.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
		return "", 0, false, false
	}
	endian = inner.Sel.Name // BigEndian / LittleEndian / NativeEndian
	name := sel.Sel.Name
	isPut = strings.HasPrefix(name, "Put")
	switch strings.TrimPrefix(name, "Put") {
	case "Uint16":
		width = 2
	case "Uint32":
		width = 4
	case "Uint64":
		width = 8
	default:
		return "", 0, false, false
	}
	return endian, width, isPut, true
}

// checkLayout validates one encoder's field set: no overlapping fields,
// and the last field must end exactly at the declared header size.
func checkLayout(pkg *Package, enc *headerUse, sizeConst types.Object) []Diagnostic {
	var diags []Diagnostic
	entries := dedupe(enc.writes)
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1], entries[i]
		if cur.off < prev.off+prev.width {
			diags = append(diags, pkg.diag(cur.pos, "wireproto",
				"%s: header field %s overlaps field %s", enc.fn, cur, prev))
		}
	}
	if len(entries) > 0 {
		last := entries[len(entries)-1]
		if end := last.off + last.width; end != enc.size {
			diags = append(diags, pkg.diag(enc.declPos, "wireproto",
				"%s: header layout ends at byte %d but %s is %d", enc.fn, end, sizeConst.Name(), enc.size))
		}
	}
	return diags
}

// compareLayouts cross-checks an encoder and a decoder of the same header
// constant: both must touch exactly the same (offset, width) fields with
// the same byte order.
func compareLayouts(pkg *Package, enc, dec *headerUse) []Diagnostic {
	var diags []Diagnostic
	w := dedupe(enc.writes)
	r := dedupe(dec.reads)
	key := func(e fieldEntry) string { return fmt.Sprintf("%d:%d", e.off, e.width) }
	written := map[string]fieldEntry{}
	for _, e := range w {
		written[key(e)] = e
	}
	read := map[string]fieldEntry{}
	for _, e := range r {
		read[key(e)] = e
	}
	for _, e := range w {
		other, ok := read[key(e)]
		if !ok {
			diags = append(diags, pkg.diag(e.pos, "wireproto",
				"%s writes header field %s which %s never reads at that offset/width", enc.fn, e, dec.fn))
			continue
		}
		if e.endian != "" && other.endian != "" && e.endian != other.endian {
			diags = append(diags, pkg.diag(e.pos, "wireproto",
				"%s writes header field %s as %s but %s reads it as %s", enc.fn, e, e.endian, dec.fn, other.endian))
		}
	}
	for _, e := range r {
		if _, ok := written[key(e)]; !ok {
			diags = append(diags, pkg.diag(e.pos, "wireproto",
				"%s reads header field %s which %s never writes at that offset/width", dec.fn, e, enc.fn))
		}
	}
	return diags
}

// dedupe sorts entries by offset and collapses duplicates (a decoder may
// legitimately read the same byte twice, e.g. once to validate and once to
// report it).
func dedupe(entries []fieldEntry) []fieldEntry {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].off != entries[j].off {
			return entries[i].off < entries[j].off
		}
		return entries[i].width < entries[j].width
	})
	var out []fieldEntry
	for _, e := range entries {
		if len(out) > 0 && out[len(out)-1].off == e.off && out[len(out)-1].width == e.width {
			continue
		}
		out = append(out, e)
	}
	return out
}
