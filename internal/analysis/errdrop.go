package analysis

import (
	"go/ast"
	"strings"
)

// errdrop flags discarded error results of write-path calls — the calls
// whose failure means acknowledged data was not actually committed. A
// dropped write error on the SRB path silently corrupts a transfer, which
// is precisely what the replay/idempotence machinery exists to prevent.
//
// Scope: the callee must return an error in last position, be named like a
// write-path operation (Write*, write*, Flush, Sync, Truncate, Remove,
// RemoveAll, Unlink, Close) and live in a wire/storage package — stdlib
// io, net, bufio, os, or a module package named srb, storage, core, adio
// or mpiio. Both bare call statements and all-blank assignments (_ = ...)
// are findings. Deferred calls are exempt: defer f.Close() on a read path
// is idiomatic, and write paths are expected to Close explicitly and check.
type errdrop struct{}

func (errdrop) Name() string { return "errdrop" }
func (errdrop) Doc() string {
	return "error results of write-path io/net/srb/storage calls must not be discarded"
}

var errdropStdlib = map[string]bool{
	"io": true, "net": true, "bufio": true, "os": true,
}

var errdropModulePkgs = map[string]bool{
	"srb": true, "storage": true, "core": true, "adio": true, "mpiio": true,
}

func errdropNameMatches(name string) bool {
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "write") {
		return true
	}
	switch name {
	case "Flush", "Sync", "Truncate", "Remove", "RemoveAll", "Unlink", "Close":
		return true
	}
	return false
}

func (errdrop) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	check := func(call *ast.CallExpr, form string) {
		fn := pkg.calleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if !errdropNameMatches(fn.Name()) {
			return
		}
		path := fn.Pkg().Path()
		name := fn.Pkg().Name()
		if !errdropStdlib[path] && !errdropModulePkgs[name] {
			return
		}
		if !pkg.returnsError(call) {
			return
		}
		diags = append(diags, pkg.diag(call.Pos(), "errdrop",
			"%s of %s.%s on a write path; handle it or annotate a deliberate drop", form, name, fn.Name()))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.DeferStmt:
				return false // deferred cleanup closes are idiomatic
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
					check(call, "discarded error")
				}
				return false
			case *ast.AssignStmt:
				allBlank := true
				for _, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if allBlank && len(st.Rhs) == 1 {
					if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
						check(call, "blank-assigned error")
					}
					return false
				}
				return true
			}
			return true
		})
	}
	return diags
}
