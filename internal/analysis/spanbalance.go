package analysis

import (
	"go/ast"
	"go/types"
)

// spanbalance checks that every trace span started with Begin/BeginServer
// (or a function whose summary says it returns a fresh span) is Ended on
// every path. The conditional-tracing idiom
//
//	var sp trace.Span
//	if traced { sp = tr.Begin(...) }
//	...
//	if traced { tr.Observe(..., sp.End(...)) }
//
// stays silent: the walker only reports definite imbalances, and a span
// begun on only some paths degrades to Maybe at the join. Passing a span
// to a callee that Ends it (any path) transfers the obligation, as does
// storing it in a struct field — field-resident spans are tracked by
// whoever owns the struct.
type spanbalance struct{}

func (spanbalance) Name() string { return "spanbalance" }
func (spanbalance) Doc() string {
	return "every trace span Begin must have an End on all paths (definite leaks, double Ends and discarded spans)"
}

func (spanbalance) Run(pkg *Package) []Diagnostic {
	ps := pkg.summaries()
	var diags []Diagnostic
	hooks := &ownHooks{
		rule: "spanbalance",
		what: "trace span",
		isAcquire: func(call *ast.CallExpr) (string, bool) {
			if !ps.isSpanSource(call) {
				return "", false
			}
			return types.ExprString(call.Fun), true
		},
		releaseTarget: func(call *ast.CallExpr) ast.Expr {
			return spanEndTarget(pkg, call)
		},
		releaseName: "End",
		transfersArg: func(call *ast.CallExpr, i int) bool {
			fn := pkg.calleeFunc(call)
			if fn == nil {
				return false
			}
			cs := ps.funcs[fn]
			return cs != nil && cs.endsParams[i]
		},
		// Spans stored in fields (engine's task.queued) are owned by the
		// struct's lifecycle, not this function: no escape report.
		reportEscapeStore: false,
	}
	runOwnScan(pkg, hooks, &diags)
	return diags
}
