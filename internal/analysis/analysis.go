// Package analysis implements semplarvet, SEMPLAR's project-specific
// static analyzer suite. It is built purely on the standard library's
// go/parser, go/ast and go/types (no x/tools dependency, honoring the
// repository's stdlib-only rule) and encodes the concurrency and
// wire-protocol invariants that previously lived only in comments:
//
//   - lockheld: a mutex must not be held across blocking operations
//     (channel ops, select, interface/net/bufio I/O, time.Sleep, Wait).
//   - guardedfield: struct fields annotated "// guarded by <mu>" may only
//     be accessed by functions that lock that mutex.
//   - wireproto: every opcode declared in proto.go must appear in both the
//     client dispatch and the server handler switch, and header
//     encode/decode offsets must agree byte for byte.
//   - errdrop: error results of write-path io/net/srb/storage calls must
//     not be discarded.
//   - determinism: packages with a clock.go must route wall-clock and
//     randomness through it, keeping simulations reproducible.
//
// On top of those per-function rules sits a small interprocedural layer
// (summary.go): a package-level call graph with one summary per function
// — locks acquired, parameters released or Ended, pool-owned returns —
// propagated to a fixpoint. Five rules consume it:
//
//   - pooluse: every getBuf reaches exactly one putBuf on every path; no
//     use-after-put, double put, or escape into long-lived state.
//   - lockorder: the package-wide mutex acquisition graph (including
//     acquisitions made through calls) must be cycle-free.
//   - spanbalance: every trace span Begin has an End on all paths.
//   - retryclass: every Err* value and status* wire code is classified in
//     the Retryable/status tables.
//   - goexit: every goroutine in client/server/engine packages has a
//     provable exit path (conn close, channel, context, shutdown flag).
//
// Deliberate exceptions are annotated in the source with a
// "//lint:allow <rule>[,<rule>...] -- reason" pragma, which suppresses
// findings on the pragma's line and the line below it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package under analysis.
type Package struct {
	Path  string // import path
	Dir   string // source directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	summ *pkgSummaries // lazily built interprocedural summaries (see summary.go)
}

// Analyzer is one semplarvet rule.
type Analyzer interface {
	// Name is the rule name used in reports and //lint:allow pragmas.
	Name() string
	// Doc is a one-line description of the invariant enforced.
	Doc() string
	// Run reports the rule's findings in pkg.
	Run(pkg *Package) []Diagnostic
}

// Analyzers returns the full suite in report order.
func Analyzers() []Analyzer {
	return []Analyzer{
		lockheld{},
		guardedfield{},
		wireproto{},
		errdrop{},
		determinism{},
		pooluse{},
		lockorder{},
		spanbalance{},
		retryclass{},
		goexit{},
	}
}

// Run applies the analyzers to pkg, drops findings suppressed by
// //lint:allow pragmas and returns the rest sorted by position.
func Run(pkg *Package, analyzers []Analyzer) []Diagnostic {
	allowed := collectAllows(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(pkg) {
			if allowed.permits(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// allowRe matches the suppression pragma. Anything after " -- " is a
// free-form justification and is ignored by the machinery (but expected
// by reviewers).
var allowRe = regexp.MustCompile(`lint:allow\s+([A-Za-z0-9_,-]+)`)

// allowSet records which rules are suppressed on which file:line.
type allowSet map[string]map[string]bool

func (s allowSet) permits(d Diagnostic) bool {
	rules := s[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]
	return rules != nil && (rules[d.Rule] || rules["all"])
}

// collectAllows indexes every //lint:allow pragma in the package. A pragma
// suppresses matching findings on its own line (trailing comment) and on
// the following line (standalone comment above the flagged statement).
func collectAllows(pkg *Package) allowSet {
	out := allowSet{}
	add := func(file string, line int, rule string) {
		key := fmt.Sprintf("%s:%d", file, line)
		if out[key] == nil {
			out[key] = map[string]bool{}
		}
		out[key][rule] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, rule := range strings.Split(m[1], ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					add(pos.Filename, pos.Line, rule)
					add(pos.Filename, pos.Line+1, rule)
				}
			}
		}
	}
	return out
}

// diag builds a Diagnostic at pos.
func (p *Package) diag(pos token.Pos, rule, format string, args ...interface{}) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}
