package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteChrome writes the recorded events as Chrome trace-event JSON
// (the "JSON Array Format" wrapped in an object), loadable in
// about:tracing or https://ui.perfetto.dev. The output is deterministic:
// events appear in recording order, args keep their recorded order, and
// all fields are emitted by hand rather than through map-backed encoding
// — under a virtual clock the same workload produces identical bytes,
// which the golden-trace test relies on.
func (t *Tracer) WriteChrome(w io.Writer) error {
	// bufio.Writer errors are sticky and surface at the final Flush, so the
	// intermediate prints go unchecked through fmt.
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"traceEvents\":[\n")

	// Metadata: name the two process rows.
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"semplar-client\"}},\n", PidClient)
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"srb-server\"}}", PidServer)

	if t != nil {
		evs, _, _ := t.snapshot()
		for i := range evs {
			fmt.Fprint(bw, ",\n")
			writeEvent(bw, &evs[i])
		}
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

// writeEvent emits one event object with a fixed field order.
func writeEvent(bw *bufio.Writer, e *event) {
	fmt.Fprintf(bw, "{\"ph\":%q,\"pid\":%d,\"tid\":%d,\"ts\":%s",
		string(e.ph), e.pid, e.tid, micros(e.ts))
	if e.ph == 'X' {
		fmt.Fprintf(bw, ",\"dur\":%s", micros(e.dur))
	}
	if e.cat != "" {
		fmt.Fprintf(bw, ",\"cat\":%s", strconv.Quote(e.cat))
	}
	fmt.Fprintf(bw, ",\"name\":%s", strconv.Quote(e.name))
	if e.ph == 'i' {
		// Instant scope: thread.
		fmt.Fprint(bw, ",\"s\":\"t\"")
	}
	if len(e.args) > 0 {
		fmt.Fprint(bw, ",\"args\":{")
		for i, a := range e.args {
			if i > 0 {
				fmt.Fprint(bw, ",")
			}
			if a.IsStr {
				fmt.Fprintf(bw, "%s:%s", strconv.Quote(a.Key), strconv.Quote(a.Str))
			} else {
				fmt.Fprintf(bw, "%s:%d", strconv.Quote(a.Key), a.Int)
			}
		}
		fmt.Fprint(bw, "}")
	}
	fmt.Fprint(bw, "}")
}

// micros renders nanoseconds as the decimal microsecond value Chrome
// expects in ts/dur, with fixed sub-microsecond precision.
func micros(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// Summary renders counters, gauges and histograms as a human-readable
// table — the quick look that does not need a trace viewer.
func (t *Tracer) Summary() string {
	var b strings.Builder
	b.WriteString("== trace summary ==\n")
	if t == nil {
		b.WriteString("(tracing disabled)\n")
		return b.String()
	}
	evs, ctrs, hists := t.snapshot()
	fmt.Fprintf(&b, "events recorded: %d\n", len(evs))

	if len(ctrs) > 0 {
		b.WriteString("counters:\n")
		for _, c := range ctrs {
			kind := "count"
			if c.gauge {
				kind = "gauge"
			}
			fmt.Fprintf(&b, "  %-36s %-6s %12d\n", c.name, kind, c.val.Load())
		}
	}

	if len(hists) > 0 {
		names := make([]string, 0, len(hists))
		for name := range hists {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("latency histograms:\n")
		fmt.Fprintf(&b, "  %-36s %8s %12s %12s %12s %12s\n",
			"name", "count", "mean", "p50", "p99", "max")
		for _, name := range names {
			h := hists[name]
			fmt.Fprintf(&b, "  %-36s %8d %12s %12s %12s %12s\n",
				name, h.Count(),
				time.Duration(h.Mean()), time.Duration(h.Quantile(0.50)),
				time.Duration(h.Quantile(0.99)), time.Duration(h.Max()))
		}
	}
	return b.String()
}
