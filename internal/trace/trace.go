// Package trace is the repository's event-tracing and metrics subsystem:
// a stdlib-only, low-overhead recorder that gives every asynchronous
// request a lifecycle span (submit → queued → dispatched → wire → complete),
// tracks engine queue depth and in-flight operations as gauges, counts
// bytes/retries/reconnects, and aggregates latency histograms.
//
// The design follows the paper's own measurement needs: its argument is
// about where time goes (overlap efficiency, per-stream TCP throughput,
// compression cost), so the hot paths must be observable without being
// perturbed. Two properties make that workable:
//
//   - A nil *Tracer is a valid, free tracer. Every method nil-checks its
//     receiver and returns immediately, so uninstrumented runs pay only a
//     predictable-branch test (benchmarked in internal/core).
//   - The clock is injected. Production tracers read the wall clock;
//     tests inject a virtual clock whose reads advance a logical counter,
//     which — combined with the deterministic simulator — makes a scripted
//     workload's trace byte-for-byte reproducible (the golden-trace test).
//
// Traces export as Chrome trace-event JSON (load in about:tracing or
// Perfetto) via WriteChrome, and as a human-readable summary table via
// Summary.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock returns the current time in nanoseconds. The zero of the scale is
// arbitrary; only differences and ordering matter.
type Clock func() int64

// WallClock reads the host monotonic clock.
func WallClock() Clock {
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}

// NewVirtualClock returns a deterministic Clock: each read advances a
// logical counter by step nanoseconds, starting at step. Under a virtual
// clock, timestamps encode event order rather than wall time, which is
// what makes golden-trace comparisons exact.
func NewVirtualClock(step int64) Clock {
	if step <= 0 {
		step = 1000
	}
	var t atomic.Int64
	return func() int64 { return t.Add(step) }
}

// Arg is one key/value annotation on an event. Args are a slice, not a
// map, so export order is deterministic.
type Arg struct {
	Key string
	Str string
	Int int64
	// IsStr selects which value field is live.
	IsStr bool
}

// Int builds an integer-valued Arg.
func Int(key string, v int64) Arg { return Arg{Key: key, Int: v} }

// Str builds a string-valued Arg.
func Str(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// event is one recorded trace event in Chrome trace-event terms.
type event struct {
	ph   byte // 'X' complete, 'C' counter, 'i' instant
	cat  string
	name string
	pid  int64
	tid  int64
	ts   int64 // nanoseconds
	dur  int64 // nanoseconds, 'X' only
	args []Arg
}

// Process IDs used by the instrumentation, labeled via metadata events in
// the exported JSON.
const (
	PidClient = 1 // application / client library side
	PidServer = 2 // SRB server side
)

// counter is one named monotonic counter or gauge.
type counter struct {
	name  string
	gauge bool
	val   atomic.Int64
}

// Tracer records events, counters and histograms. All methods are safe
// for concurrent use and safe on a nil receiver (no-ops).
type Tracer struct {
	clock       Clock // immutable after New/NewWith
	metricsOnly bool  // immutable; drop span/instant events, keep counters
	seq         atomic.Int64

	mu     sync.Mutex
	events []event             // guarded by mu
	byName map[string]*counter // guarded by mu; registration only
	hists  map[string]*Hist    // guarded by mu; registration only
}

// New returns a Tracer on the wall clock.
func New() *Tracer { return NewWith(WallClock()) }

// NewMetricsOnly returns a wall-clock Tracer that keeps counters, gauges
// and histograms but discards span and instant events. Events accumulate
// without bound on a recording tracer, so this is the variant a
// long-running daemon attaches for a metrics endpoint: O(1) memory per
// metric name, no per-request growth.
func NewMetricsOnly() *Tracer {
	t := NewWith(WallClock())
	t.metricsOnly = true
	return t
}

// NewWith returns a Tracer reading timestamps from clock.
func NewWith(clock Clock) *Tracer {
	if clock == nil {
		clock = WallClock()
	}
	return &Tracer{
		clock:  clock,
		byName: make(map[string]*counter),
		hists:  make(map[string]*Hist),
	}
}

// Enabled reports whether events are being recorded. Instrumentation
// sites use it to guard argument construction on hot paths.
func (t *Tracer) Enabled() bool { return t != nil }

// NextID allocates a unique lane ID (trace "thread" id) for a request,
// connection or session. IDs are sequential, so a serialized workload
// numbers its lanes deterministically. A nil tracer returns 0.
func (t *Tracer) NextID() int64 {
	if t == nil {
		return 0
	}
	return t.seq.Add(1)
}

// now reads the tracer clock (0 on a nil tracer).
func (t *Tracer) now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Span is an in-progress operation created by Begin. The zero Span (and
// any Span from a nil tracer) is inert: End returns 0 and records nothing.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	pid   int64
	tid   int64
	start int64
}

// Begin opens a client-side span on lane tid. Nothing is recorded until
// End; a span abandoned without End costs nothing.
func (t *Tracer) Begin(cat, name string, tid int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, pid: PidClient, tid: tid, start: t.clock()}
}

// BeginServer opens a span attributed to the server process row.
func (t *Tracer) BeginServer(cat, name string, tid int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, pid: PidServer, tid: tid, start: t.clock()}
}

// End closes the span, records it as a complete ('X') event and returns
// its duration in nanoseconds (0 for an inert span).
func (s Span) End(args ...Arg) int64 {
	if s.t == nil {
		return 0
	}
	end := s.t.clock()
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	s.t.append(event{ph: 'X', cat: s.cat, name: s.name, pid: s.pid, tid: s.tid,
		ts: s.start, dur: dur, args: args})
	return dur
}

// Instant records a zero-duration marker event (reconnects, faults, ...).
func (t *Tracer) Instant(cat, name string, tid int64, args ...Arg) {
	if t == nil {
		return
	}
	t.append(event{ph: 'i', cat: cat, name: name, pid: PidClient, tid: tid,
		ts: t.clock(), args: args})
}

func (t *Tracer) append(e event) {
	if t.metricsOnly {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// lookup returns the named counter, creating it on first use.
func (t *Tracer) lookup(name string, gauge bool) *counter {
	t.mu.Lock()
	c := t.byName[name]
	if c == nil {
		c = &counter{name: name, gauge: gauge}
		t.byName[name] = c
	}
	t.mu.Unlock()
	return c
}

// Count adds delta to a silent monotonic counter: no event is recorded,
// only the aggregate (reported by Summary/Counter). Silent counters are
// safe to bump from any goroutine without perturbing event order, which
// is why byte counts on concurrent paths use them.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.lookup(name, false).val.Add(delta)
}

// Gauge adds delta to a named gauge and records a counter ('C') event
// with the new value, so the exported trace plots the gauge over time
// (queue depth, in-flight ops, open connections).
func (t *Tracer) Gauge(name string, delta int64) {
	if t == nil {
		return
	}
	v := t.lookup(name, true).val.Add(delta)
	t.append(event{ph: 'C', cat: "gauge", name: name, pid: PidClient,
		ts: t.clock(), args: []Arg{Int("value", v)}})
}

// Counter returns the current value of a counter or gauge (0 if never
// touched or the tracer is nil).
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	c := t.byName[name]
	t.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.val.Load()
}

// Counters returns a snapshot of every counter and gauge.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make(map[string]int64, len(t.byName))
	for name, c := range t.byName {
		out[name] = c.val.Load()
	}
	t.mu.Unlock()
	return out
}

// Observe adds one duration observation (nanoseconds) to the named
// latency histogram.
func (t *Tracer) Observe(name string, nanos int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.hists[name]
	if h == nil {
		h = &Hist{}
		t.hists[name] = h
	}
	t.mu.Unlock()
	h.Observe(nanos)
}

// Events reports how many events have been recorded.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// snapshot copies the internal state for export.
func (t *Tracer) snapshot() (evs []event, ctrs []*counter, hists map[string]*Hist) {
	t.mu.Lock()
	evs = make([]event, len(t.events))
	copy(evs, t.events)
	ctrs = make([]*counter, 0, len(t.byName))
	for _, c := range t.byName {
		ctrs = append(ctrs, c)
	}
	hists = make(map[string]*Hist, len(t.hists))
	for name, h := range t.hists {
		hists[name] = h
	}
	t.mu.Unlock()
	sort.Slice(ctrs, func(i, j int) bool { return ctrs[i].name < ctrs[j].name })
	return evs, ctrs, hists
}
