package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilTracerIsInert: every method must be a safe no-op on a nil
// *Tracer — that is the disabled fast path the whole stack relies on.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if id := tr.NextID(); id != 0 {
		t.Fatalf("nil NextID = %d, want 0", id)
	}
	sp := tr.Begin("cat", "name", 1)
	if d := sp.End(Int("n", 1)); d != 0 {
		t.Fatalf("nil span End = %d, want 0", d)
	}
	if d := tr.BeginServer("cat", "name", 1).End(); d != 0 {
		t.Fatalf("nil server span End = %d, want 0", d)
	}
	tr.Instant("cat", "name", 1)
	tr.Count("c", 5)
	tr.Gauge("g", 1)
	tr.Observe("h", 100)
	if v := tr.Counter("c"); v != 0 {
		t.Fatalf("nil Counter = %d, want 0", v)
	}
	if m := tr.Counters(); m != nil {
		t.Fatalf("nil Counters = %v, want nil", m)
	}
	if n := tr.Events(); n != 0 {
		t.Fatalf("nil Events = %d, want 0", n)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	if !strings.Contains(tr.Summary(), "disabled") {
		t.Fatalf("nil Summary missing disabled marker: %q", tr.Summary())
	}
}

func TestVirtualClockDeterminism(t *testing.T) {
	c1, c2 := NewVirtualClock(1000), NewVirtualClock(1000)
	for i := 1; i <= 5; i++ {
		v1, v2 := c1(), c2()
		if v1 != v2 || v1 != int64(i)*1000 {
			t.Fatalf("read %d: got %d/%d, want %d", i, v1, v2, i*1000)
		}
	}
	// A non-positive step falls back to a sane default rather than a
	// frozen clock.
	c := NewVirtualClock(0)
	if a, b := c(), c(); b <= a {
		t.Fatalf("default-step clock did not advance: %d then %d", a, b)
	}
}

func TestSpansCountersGauges(t *testing.T) {
	tr := NewWith(NewVirtualClock(1000))

	sp := tr.Begin("engine", "run", tr.NextID())
	if d := sp.End(Int("bytes", 42), Str("mode", "w")); d != 1000 {
		t.Fatalf("span duration = %d, want 1000", d)
	}
	tr.Instant("fault", "reconnect", 1)
	tr.Count("bytes", 10)
	tr.Count("bytes", 32)
	tr.Gauge("queue", 1)
	tr.Gauge("queue", 1)
	tr.Gauge("queue", -2)

	if v := tr.Counter("bytes"); v != 42 {
		t.Fatalf("bytes counter = %d, want 42", v)
	}
	if v := tr.Counter("queue"); v != 0 {
		t.Fatalf("queue gauge = %d, want 0", v)
	}
	if v := tr.Counter("missing"); v != 0 {
		t.Fatalf("missing counter = %d, want 0", v)
	}
	// span X + instant + 3 gauge events; silent counters record nothing.
	if n := tr.Events(); n != 5 {
		t.Fatalf("events = %d, want 5", n)
	}
	got := tr.Counters()
	if got["bytes"] != 42 || got["queue"] != 0 {
		t.Fatalf("Counters() = %v", got)
	}
}

// TestWriteChromeValidAndDeterministic pins the two export properties the
// golden test depends on: the output is valid JSON in trace-event shape,
// and identical workloads produce identical bytes.
func TestWriteChromeValidAndDeterministic(t *testing.T) {
	run := func() []byte {
		tr := NewWith(NewVirtualClock(1000))
		id := tr.NextID()
		tr.Gauge("engine.queue", 1)
		sp := tr.Begin("engine", "queued", id)
		sp.End()
		srv := tr.BeginServer("server", "write", tr.NextID())
		srv.End(Int("n", 7))
		tr.Instant("fault", "reconnect", id, Str("why", `dead "stream"`))
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different traces:\n%s\n---\n%s", a, b)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a)
	}
	// 2 metadata + 1 gauge + 2 X + 1 instant.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("traceEvents count = %d, want 6\n%s", len(doc.TraceEvents), a)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
	}
	if phases["M"] != 2 || phases["X"] != 2 || phases["C"] != 1 || phases["i"] != 1 {
		t.Fatalf("phase mix = %v", phases)
	}
}

func TestMicrosFormatting(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1234567, "1234.567"},
		{-1500, "-1.500"},
	}
	for _, c := range cases {
		if got := micros(c.ns); got != c.want {
			t.Errorf("micros(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestHist(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	for _, v := range []int64{100, 200, 400, 800, 100 * 1000} {
		h.Observe(v)
	}
	h.Observe(-5) // clamps to 0
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Max() != 100*1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if m := h.Mean(); m != (100+200+400+800+100*1000)/6 {
		t.Fatalf("mean = %d", m)
	}
	// p50 of {0,100,200,400,800,100000}: 3rd observation (200) lives in
	// bucket [128,256); the upper-bound estimate is 256.
	if q := h.Quantile(0.5); q != 256 {
		t.Fatalf("p50 = %d, want 256", q)
	}
	// The top quantile is clamped to the observed max.
	if q := h.Quantile(1.0); q != 100*1000 {
		t.Fatalf("p100 = %d, want 100000", q)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Everything huge lands in (and stays within) the last bucket.
	if got := bucketOf(1 << 62); got != histBuckets-1 {
		t.Errorf("bucketOf(2^62) = %d, want %d", got, histBuckets-1)
	}
}

func TestObserveAndSummary(t *testing.T) {
	tr := New()
	tr.Count("srbfs.stream0.write_bytes", 4096)
	tr.Gauge("engine.inflight", 1)
	tr.Gauge("engine.inflight", -1)
	tr.Observe("srb.client.op", int64(3*time.Millisecond))
	tr.Observe("srb.client.op", int64(5*time.Millisecond))

	s := tr.Summary()
	for _, want := range []string{
		"srbfs.stream0.write_bytes", "4096",
		"engine.inflight", "gauge",
		"srb.client.op", "latency histograms",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestWallClockMonotonic: wall-clock tracers must produce non-decreasing
// timestamps for sequential events.
func TestWallClockMonotonic(t *testing.T) {
	c := WallClock()
	a := c()
	time.Sleep(time.Millisecond)
	b := c()
	if b <= a {
		t.Fatalf("wall clock not advancing: %d then %d", a, b)
	}
}
