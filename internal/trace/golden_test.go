// Golden-trace test: a fixed scripted workload over the full stack —
// public semplar API, async engine, SRB wire protocol, simulated network,
// SRB server — must reproduce the committed Chrome trace byte for byte.
//
// Determinism rests on four legs: a virtual tracer clock (timestamps
// encode event order, not wall time), a zero-latency/zero-jitter netsim
// profile (no sleeps, no shaping), a strictly sequential workload (one
// stream, one I/O thread, a Wait after every async call), and the
// instrumentation's ordering discipline (completion events recorded
// before the waiter wakes; concurrent byte counts use silent counters).
// If this test fails after an instrumentation change, inspect the diff:
// an intentional event change means regenerating with -update; an
// unstable ordering means the new event must move under a lock or become
// a silent counter.
package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"semplar"
	"semplar/internal/cluster"
	"semplar/internal/netsim"
	"semplar/internal/storage"
	"semplar/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenSpec is an unshaped testbed: zero latency, zero jitter, no rate
// limiters, no device metering — nothing sleeps, so event order is fixed
// by program order alone.
func goldenSpec() cluster.Spec {
	return cluster.Spec{
		Name:    "golden",
		Profile: netsim.Profile{Name: "golden"},
		Device:  storage.DeviceSpec{},
	}
}

// runScripted executes the fixed workload and returns the exported trace.
func runScripted(t *testing.T) []byte {
	t.Helper()
	tr := trace.NewWith(trace.NewVirtualClock(1000))
	tb := cluster.New(goldenSpec(), 1)
	tb.SetTracer(tr)

	client, err := semplar.NewClient(tb.Dialer(0), semplar.Options{Tracer: tr})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	f, err := client.Open("/golden.dat", semplar.O_RDWR|semplar.O_CREATE|semplar.O_TRUNC)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}

	// Two async writes and an async read-back, each awaited before the
	// next call so exactly one request is ever in flight.
	if _, err := f.IWriteAt(payload, 0).Wait(); err != nil {
		t.Fatalf("IWriteAt #1: %v", err)
	}
	if _, err := f.IWriteAt(payload, int64(len(payload))).Wait(); err != nil {
		t.Fatalf("IWriteAt #2: %v", err)
	}
	rbuf := make([]byte, len(payload))
	if _, err := f.IReadAt(rbuf, 0).Wait(); err != nil {
		t.Fatalf("IReadAt: %v", err)
	}
	if !bytes.Equal(rbuf, payload) {
		t.Fatal("read-back mismatch")
	}
	// One blocking write exercises the mpiio-level span.
	if _, err := f.WriteAt(payload[:4096], 2*int64(len(payload))); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenTrace pins the end-to-end trace of the scripted workload.
// Regenerate intentionally-changed instrumentation with:
//
//	go test ./internal/trace/ -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	got := runScripted(t)

	// Two runs in the same process must agree before comparing against
	// the committed file; a same-process diff means the ordering
	// discipline broke, not the golden file.
	again := runScripted(t)
	if !bytes.Equal(got, again) {
		t.Fatalf("back-to-back runs disagree: trace is not deterministic\nrun1:\n%s\nrun2:\n%s", got, again)
	}

	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		t.Logf("golden file rewritten: %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverged from golden file (regenerate with -update if intended)\ngot %d bytes:\n%s\nwant %d bytes:\n%s",
			len(got), got, len(want), want)
	}
}
