package trace

import "sync/atomic"

// histBuckets is the number of power-of-two latency buckets. Bucket i
// holds observations in [2^i, 2^(i+1)) nanoseconds, except bucket 0 which
// also absorbs sub-nanosecond values and the last bucket which absorbs
// everything larger (~1.2 hours and up).
const histBuckets = 42

// Hist is a lock-free latency histogram over power-of-two nanosecond
// buckets — coarse, but enough to separate a queued microsecond from a
// WAN round trip, and cheap enough for per-operation recording.
type Hist struct {
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	bucket [histBuckets]atomic.Int64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(nanos int64) int {
	if nanos < 1 {
		return 0
	}
	b := 0
	for v := nanos; v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// Observe records one duration.
func (h *Hist) Observe(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	h.count.Add(1)
	h.sum.Add(nanos)
	for {
		old := h.max.Load()
		if nanos <= old || h.max.CompareAndSwap(old, nanos) {
			break
		}
	}
	h.bucket[bucketOf(nanos)].Add(1)
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Mean returns the average observation in nanoseconds.
func (h *Hist) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Max returns the largest observation in nanoseconds.
func (h *Hist) Max() int64 { return h.max.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// in nanoseconds: the top edge of the bucket containing the q-th
// observation. Good to within a factor of two, which is the resolution
// this histogram trades for being lock-free.
func (h *Hist) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.bucket[i].Load()
		if seen >= rank {
			// Upper edge of bucket i, clamped to the observed max.
			edge := int64(1) << uint(i+1)
			if m := h.max.Load(); edge > m {
				edge = m
			}
			return edge
		}
	}
	return h.max.Load()
}
