package mpiio

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"semplar/internal/mpi"
	"semplar/internal/trace"
)

// Collective I/O (MPI_File_write_at_all / read_at_all) using the two-phase
// strategy ROMIO made standard: ranks exchange their pieces over the
// (fast) interconnect so that a few aggregator ranks perform large,
// contiguous accesses over the (slow) remote filesystem. The paper lists
// studying asynchronous primitives under collective I/O as future work;
// here the data movement is implemented so the benchmarks can quantify the
// aggregation benefit on the WAN testbeds.
//
// Collectives are view-aware: each rank maps its logical transfer through
// its own handle's view into physical extents (viewExtents) before the
// exchange, so N ranks with interleaved strided views produce one dense
// physical region that the aggregators access with a handful of large
// contiguous ops — the redistribution schedule is
//
//	phase 1: rank r sends aggregator a the clip of r's extents (writes:
//	         offset+data frames; reads: offset ranges) to a's domain slice
//	         of the global [lo, hi) physical span;
//	phase 2: aggregator a coalesces what it received and performs the few
//	         large driver ops for its domain;
//	phase 3 (reads): aggregator a answers each rank with that rank's bytes,
//	         concatenated in range order and cut at the first short range,
//	         so every rank scatters its reply sequentially.

// collTagBase separates collective-I/O messages from application traffic.
// Each collective call gets a fresh tag block so consecutive collectives
// cannot steal each other's messages; all ranks must issue collectives in
// the same order (the standard MPI requirement).
const collTagBase = 1 << 20

// maxAggregators caps how many ranks perform file I/O in a collective
// access (ROMIO's cb_nodes hint).
const maxAggregators = 4

// extent is one contiguous byte range of the shared file.
type extent struct {
	off  int64
	data []byte
}

// viewExtents maps the logical transfer (p, off) through v into ascending
// physical extents. The data slices alias p — for reads they are the
// scatter destinations.
func viewExtents(v View, p []byte, off int64) []extent {
	if len(p) == 0 {
		return nil
	}
	if v.contiguous() || v.BlockLen == v.Stride {
		return []extent{{off: v.Disp + off, data: p}}
	}
	exts := make([]extent, 0, int64(len(p))/v.BlockLen+2)
	rest := p
	logical := off
	for len(rest) > 0 {
		within := logical % v.BlockLen
		take := v.BlockLen - within
		if take > int64(len(rest)) {
			take = int64(len(rest))
		}
		exts = append(exts, extent{off: v.physical(logical), data: rest[:take]})
		rest = rest[take:]
		logical += take
	}
	return exts
}

// extsBounds returns the local [lo, hi) physical span of exts, (0, 0) when
// the rank contributes nothing.
func extsBounds(exts []extent) (int64, int64) {
	lo, hi := int64(1<<62), int64(-1)
	for _, e := range exts {
		if e.off < lo {
			lo = e.off
		}
		if end := e.off + int64(len(e.data)); end > hi {
			hi = end
		}
	}
	if hi < 0 {
		return 0, 0
	}
	return lo, hi
}

// WriteAtAll is the collective write: every rank of comm must call it with
// its own buffer and offset. Each rank's transfer is mapped through its
// handle's view; the physical extents are shuffled so that up to
// maxAggregators ranks each write a few coalesced contiguous regions.
func (f *File) WriteAtAll(comm *mpi.Comm, p []byte, off int64) (int, error) {
	if comm == nil || comm.Size() == 1 {
		return f.WriteAt(p, off)
	}
	if err := f.check(); err != nil {
		return 0, err
	}
	if err := f.twoPhaseWrite(comm, viewExtents(f.CurrentView(), p, off)); err != nil {
		return 0, err
	}
	return len(p), nil
}

// FileExtent is one contiguous piece of a rank's collective contribution.
// Offsets are physical: views do not apply (a rank expressing view-mapped
// data uses WriteAtAll).
type FileExtent struct {
	Off  int64
	Data []byte
}

// WriteExtentsAll is the collective write for non-contiguous per-rank
// data (what MPI expresses with derived datatypes): each rank passes all
// of its extents in one call, they are shuffled to the aggregators over
// the interconnect, and each aggregator writes its domain as a few large
// coalesced accesses. For many small interleaved records over a WAN this
// collapses per-record round trips into a handful of large transfers.
func (f *File) WriteExtentsAll(comm *mpi.Comm, exts []FileExtent) (int, error) {
	total := 0
	for _, e := range exts {
		total += len(e.Data)
	}
	if comm == nil || comm.Size() == 1 {
		for _, e := range exts {
			n, err := f.inner.WriteAt(e.Data, e.Off)
			f.counters.recordPhys(false, n)
			if err != nil {
				return 0, err
			}
		}
		return total, nil
	}
	if err := f.check(); err != nil {
		return 0, err
	}
	phys := make([]extent, len(exts))
	for i, e := range exts {
		phys[i] = extent{off: e.Off, data: e.Data}
	}
	if err := f.twoPhaseWrite(comm, phys); err != nil {
		return 0, err
	}
	return total, nil
}

// twoPhaseWrite runs the exchange-then-write schedule over one rank's
// physical extents. All ranks of comm must call it with extents of the same
// collective operation.
func (f *File) twoPhaseWrite(comm *mpi.Comm, exts []extent) error {
	lo, hi := extsBounds(exts)
	lo = int64(comm.AllreduceFloat64(float64(lo), mpi.OpMin))
	hi = int64(comm.AllreduceFloat64(float64(hi), mpi.OpMax))

	aggs := aggregators(comm.Size())
	tag := f.nextCollTag() + 1
	sp := f.tracer.Begin("mpiio", "coll.exchange", f.lane)

	// Phase 1: one message per aggregator carrying every overlapping
	// extent, framed back to back.
	for a, aggRank := range aggs {
		alo, ahi := domainSlice(lo, hi, len(aggs), a)
		var msg []byte
		for _, e := range exts {
			piece := overlap(e.off, e.data, alo, ahi)
			if len(piece.data) == 0 {
				continue
			}
			msg = appendExtentFrame(msg, piece)
		}
		comm.Send(aggRank, tag, msg)
	}

	// Phase 2: aggregators decode, coalesce and write.
	var firstErr error
	if indexOf(aggs, comm.Rank()) >= 0 {
		var all []extent
		for i := 0; i < comm.Size(); i++ {
			data, _, _ := comm.Recv(mpi.Any, tag)
			all = append(all, decodeExtentFrames(data)...)
		}
		for _, e := range coalesce(all) {
			n, err := f.inner.WriteAt(e.data, e.off)
			f.counters.recordPhys(false, n)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mpiio: collective write at %d: %w", e.off, err)
			}
		}
	}
	sp.End(trace.Int("extents", int64(len(exts))))

	// Collective completion: agree on success.
	ok := 1.0
	if firstErr != nil {
		ok = 0
	}
	if comm.AllreduceFloat64(ok, mpi.OpMin) == 0 {
		if firstErr != nil {
			return firstErr
		}
		return fmt.Errorf("mpiio: collective write failed on another rank")
	}
	return nil
}

// appendExtentFrame appends [8B off][4B len][data] to msg.
func appendExtentFrame(msg []byte, e extent) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(e.off))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(e.data)))
	msg = append(msg, hdr[:]...)
	return append(msg, e.data...)
}

// decodeExtentFrames parses a back-to-back extent message.
func decodeExtentFrames(msg []byte) []extent {
	var out []extent
	for len(msg) >= 12 {
		off := int64(binary.BigEndian.Uint64(msg[0:]))
		n := int(binary.BigEndian.Uint32(msg[8:]))
		msg = msg[12:]
		if n > len(msg) {
			break // malformed tail; drop
		}
		out = append(out, extent{off: off, data: msg[:n]})
		msg = msg[n:]
	}
	return out
}

// rng is one half-open physical byte range [lo, hi) of a collective read
// request.
type rng struct {
	lo, hi int64
}

// appendRangeFrame appends [8B lo][8B hi] to msg.
func appendRangeFrame(msg []byte, r rng) []byte {
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(r.lo))
	binary.BigEndian.PutUint64(hdr[8:], uint64(r.hi))
	return append(msg, hdr[:]...)
}

// decodeRangeFrames parses a back-to-back range message, dropping empty and
// malformed entries.
func decodeRangeFrames(msg []byte) []rng {
	out := make([]rng, 0, len(msg)/16)
	for len(msg) >= 16 {
		r := rng{
			lo: int64(binary.BigEndian.Uint64(msg[0:])),
			hi: int64(binary.BigEndian.Uint64(msg[8:])),
		}
		msg = msg[16:]
		if r.hi > r.lo {
			out = append(out, r)
		}
	}
	return out
}

// coalesceRanges sorts ranges and merges overlapping/adjacent ones into the
// fewest maximal runs. Every input range lies wholly inside exactly one
// output run.
func coalesceRanges(rs []rng) []rng {
	sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
	var out []rng
	for _, r := range rs {
		if k := len(out) - 1; k >= 0 && r.lo <= out[k].hi {
			if r.hi > out[k].hi {
				out[k].hi = r.hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// ReadAtAll is the collective read: each rank's transfer is mapped through
// its handle's view, aggregators read the coalesced union of all ranks'
// physical ranges in a few large ops, and the pieces are redistributed over
// the interconnect. A transfer ending past EOF returns the contiguous
// logical prefix with io.EOF, like ReadAt.
func (f *File) ReadAtAll(comm *mpi.Comm, p []byte, off int64) (int, error) {
	if comm == nil || comm.Size() == 1 {
		return f.ReadAt(p, off)
	}
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.twoPhaseRead(comm, viewExtents(f.CurrentView(), p, off))
}

// twoPhaseRead runs the read-then-redistribute schedule over one rank's
// physical extents; the extent data slices are the scatter destinations.
func (f *File) twoPhaseRead(comm *mpi.Comm, exts []extent) (int, error) {
	lo, hi := extsBounds(exts)
	lo = int64(comm.AllreduceFloat64(float64(lo), mpi.OpMin))
	hi = int64(comm.AllreduceFloat64(float64(hi), mpi.OpMax))

	aggs := aggregators(comm.Size())
	base := f.nextCollTag()
	reqTag := base + 2
	dataTag := base + 3
	sp := f.tracer.Begin("mpiio", "coll.exchange", f.lane)

	// Phase 1: every rank tells every aggregator which ranges of that
	// aggregator's domain it needs (possibly none).
	for a, aggRank := range aggs {
		alo, ahi := domainSlice(lo, hi, len(aggs), a)
		var msg []byte
		for _, e := range exts {
			rlo, rhi := intersect(e.off, e.off+int64(len(e.data)), alo, ahi)
			if rhi > rlo {
				msg = appendRangeFrame(msg, rng{lo: rlo, hi: rhi})
			}
		}
		comm.Send(aggRank, reqTag, msg)
	}

	// Phase 2: aggregators read the coalesced union of all requested
	// ranges in a few large ops and answer each rank with its bytes,
	// concatenated in range order. A union run that comes up short (EOF)
	// shortens the replies drawing on it; each reply is cut at its first
	// short range so the requester's sequential scatter stays unambiguous.
	var firstErr error
	if indexOf(aggs, comm.Rank()) >= 0 {
		type want struct {
			src    int
			ranges []rng
		}
		wants := make([]want, 0, comm.Size())
		var all []rng
		for i := 0; i < comm.Size(); i++ {
			data, src, _ := comm.Recv(mpi.Any, reqTag)
			rs := decodeRangeFrames(data)
			wants = append(wants, want{src: src, ranges: rs})
			all = append(all, rs...)
		}
		union := coalesceRanges(all)
		bufs := make([][]byte, len(union))
		for i, u := range union {
			b := make([]byte, u.hi-u.lo)
			n, err := f.inner.ReadAt(b, u.lo)
			f.counters.recordPhys(true, n)
			if err != nil && err != io.EOF && firstErr == nil {
				firstErr = fmt.Errorf("mpiio: collective read at %d: %w", u.lo, err)
			}
			bufs[i] = b[:n]
		}
		for _, w := range wants {
			var reply []byte
			ui := 0
			for _, r := range w.ranges {
				for ui < len(union) && union[ui].hi < r.hi {
					ui++ // ranges and union runs both ascend
				}
				if ui == len(union) {
					break
				}
				at := r.lo - union[ui].lo
				have := int64(len(bufs[ui])) - at
				if have > r.hi-r.lo {
					have = r.hi - r.lo
				}
				if have > 0 {
					reply = append(reply, bufs[ui][at:at+have]...)
				}
				if have < r.hi-r.lo {
					break // short range: later bytes would misalign the scatter
				}
			}
			comm.Send(w.src, dataTag, reply)
		}
	}

	// Phase 3: collect our bytes from each aggregator and scatter them over
	// our extents in range order. Domains ascend and extents ascend, so the
	// pieces arrive in physical — and, the view map being monotonic,
	// logical — order, and the contiguous logical prefix accumulates until
	// the first short piece.
	total := 0
	eof := false
	for a, aggRank := range aggs {
		alo, ahi := domainSlice(lo, hi, len(aggs), a)
		data, _, _ := comm.Recv(aggRank, dataTag)
		got := 0
		for _, e := range exts {
			rlo, rhi := intersect(e.off, e.off+int64(len(e.data)), alo, ahi)
			if rhi <= rlo {
				continue
			}
			dst := e.data[rlo-e.off : rhi-e.off]
			n := copy(dst, data[got:])
			got += n
			if !eof {
				total += n
			}
			if n < len(dst) {
				eof = true
			}
		}
	}
	sp.End(trace.Int("extents", int64(len(exts))), trace.Int("n", int64(total)))

	// Collective completion: agree that no aggregator hit a hard error
	// (EOF is a result, not a failure).
	ok := 1.0
	if firstErr != nil {
		ok = 0
	}
	if comm.AllreduceFloat64(ok, mpi.OpMin) == 0 {
		if firstErr != nil {
			return total, firstErr
		}
		return total, fmt.Errorf("mpiio: collective read failed on another rank")
	}
	if eof {
		return total, io.EOF
	}
	return total, nil
}

// aggregators picks which ranks perform file I/O: evenly spaced, at most
// maxAggregators.
func aggregators(size int) []int {
	n := size
	if n > maxAggregators {
		n = maxAggregators
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i * size / n
	}
	return out
}

// domainSlice splits [lo, hi) into count near-equal slices and returns the
// i-th.
func domainSlice(lo, hi int64, count, i int) (int64, int64) {
	span := hi - lo
	return lo + span*int64(i)/int64(count), lo + span*int64(i+1)/int64(count)
}

// overlap returns the extent of (off, p) that falls inside [alo, ahi).
func overlap(off int64, p []byte, alo, ahi int64) extent {
	rlo, rhi := intersect(off, off+int64(len(p)), alo, ahi)
	if rhi <= rlo {
		return extent{}
	}
	return extent{off: rlo, data: p[rlo-off : rhi-off]}
}

func intersect(alo, ahi, blo, bhi int64) (int64, int64) {
	lo := alo
	if blo > lo {
		lo = blo
	}
	hi := ahi
	if bhi < hi {
		hi = bhi
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// coalesce sorts extents by offset and merges adjacent/overlapping ones so
// the aggregator issues the fewest, largest writes.
func coalesce(exts []extent) []extent {
	var nonEmpty []extent
	for _, e := range exts {
		if len(e.data) > 0 {
			nonEmpty = append(nonEmpty, e)
		}
	}
	sort.Slice(nonEmpty, func(i, j int) bool { return nonEmpty[i].off < nonEmpty[j].off })
	var out []extent
	for _, e := range nonEmpty {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if e.off <= last.off+int64(len(last.data)) {
				// Overlapping or adjacent: extend the last extent.
				end := e.off + int64(len(e.data))
				lastEnd := last.off + int64(len(last.data))
				if end > lastEnd {
					merged := make([]byte, end-last.off)
					copy(merged, last.data)
					copy(merged[e.off-last.off:], e.data)
					last.data = merged
				}
				continue
			}
		}
		cp := make([]byte, len(e.data))
		copy(cp, e.data)
		out = append(out, extent{off: e.off, data: cp})
	}
	return out
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
