package mpiio

import (
	"encoding/binary"
	"fmt"
	"sort"

	"semplar/internal/mpi"
)

// Collective I/O (MPI_File_write_at_all / read_at_all) using the two-phase
// strategy ROMIO made standard: ranks exchange their pieces over the
// (fast) interconnect so that a few aggregator ranks perform large,
// contiguous accesses over the (slow) remote filesystem. The paper lists
// studying asynchronous primitives under collective I/O as future work;
// here the data movement is implemented so the benchmarks can quantify the
// aggregation benefit on the WAN testbeds.

// collTagBase separates collective-I/O messages from application traffic.
// Each collective call gets a fresh tag block so consecutive collectives
// cannot steal each other's messages; all ranks must issue collectives in
// the same order (the standard MPI requirement).
const collTagBase = 1 << 20

// maxAggregators caps how many ranks perform file I/O in a collective
// access (ROMIO's cb_nodes hint).
const maxAggregators = 4

// extent is one contiguous byte range of the shared file.
type extent struct {
	off  int64
	data []byte
}

// WriteAtAll is the collective write: every rank of comm must call it with
// its own buffer and offset. Data is shuffled so that up to maxAggregators
// ranks each write one coalesced contiguous region.
func (f *File) WriteAtAll(comm *mpi.Comm, p []byte, off int64) (int, error) {
	if comm == nil || comm.Size() == 1 {
		return f.WriteAt(p, off)
	}
	if err := f.check(); err != nil {
		return 0, err
	}
	lo, hi := collDomain(comm, off, int64(len(p)))
	aggs := aggregators(comm.Size())
	tag := f.nextCollTag() + 1

	// Phase 1: ship each aggregator its slice of our buffer.
	for a, aggRank := range aggs {
		alo, ahi := domainSlice(lo, hi, len(aggs), a)
		piece := overlap(off, p, alo, ahi)
		msg := encodeExtent(piece)
		comm.Send(aggRank, tag, msg)
	}

	// Phase 2: aggregators collect, coalesce and write.
	var firstErr error
	if idx := indexOf(aggs, comm.Rank()); idx >= 0 {
		exts := make([]extent, 0, comm.Size())
		for i := 0; i < comm.Size(); i++ {
			data, _, _ := comm.Recv(mpi.Any, tag)
			if e, ok := decodeExtent(data); ok {
				exts = append(exts, e)
			}
		}
		for _, e := range coalesce(exts) {
			if _, err := f.inner.WriteAt(e.data, e.off); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mpiio: collective write at %d: %w", e.off, err)
			}
		}
	}

	// Collective completion: agree on success.
	ok := 1.0
	if firstErr != nil {
		ok = 0
	}
	if comm.AllreduceFloat64(ok, mpi.OpMin) == 0 {
		if firstErr != nil {
			return 0, firstErr
		}
		return 0, fmt.Errorf("mpiio: collective write failed on another rank")
	}
	return len(p), nil
}

// FileExtent is one contiguous piece of a rank's collective contribution.
type FileExtent struct {
	Off  int64
	Data []byte
}

// WriteExtentsAll is the collective write for non-contiguous per-rank
// data (what MPI expresses with derived datatypes): each rank passes all
// of its extents in one call, they are shuffled to the aggregators over
// the interconnect, and each aggregator writes its domain as a few large
// coalesced accesses. For many small interleaved records over a WAN this
// collapses per-record round trips into a handful of large transfers.
func (f *File) WriteExtentsAll(comm *mpi.Comm, exts []FileExtent) (int, error) {
	total := 0
	for _, e := range exts {
		total += len(e.Data)
	}
	if comm == nil || comm.Size() == 1 {
		for _, e := range exts {
			if _, err := f.WriteAt(e.Data, e.Off); err != nil {
				return 0, err
			}
		}
		return total, nil
	}
	if err := f.check(); err != nil {
		return 0, err
	}
	// Global domain over all extents of all ranks.
	lo, hi := int64(1<<62), int64(-1)
	for _, e := range exts {
		if e.Off < lo {
			lo = e.Off
		}
		if end := e.Off + int64(len(e.Data)); end > hi {
			hi = end
		}
	}
	if hi < 0 { // this rank contributes nothing
		lo, hi = 0, 0
	}
	lo = int64(comm.AllreduceFloat64(float64(lo), mpi.OpMin))
	hi = int64(comm.AllreduceFloat64(float64(hi), mpi.OpMax))

	aggs := aggregators(comm.Size())
	tag := f.nextCollTag() + 1

	// Phase 1: one message per aggregator carrying every overlapping
	// extent, framed back to back.
	for a, aggRank := range aggs {
		alo, ahi := domainSlice(lo, hi, len(aggs), a)
		var msg []byte
		for _, e := range exts {
			piece := overlap(e.Off, e.Data, alo, ahi)
			if len(piece.data) == 0 {
				continue
			}
			msg = appendExtentFrame(msg, piece)
		}
		comm.Send(aggRank, tag, msg)
	}

	// Phase 2: aggregators decode, coalesce and write.
	var firstErr error
	if indexOf(aggs, comm.Rank()) >= 0 {
		var all []extent
		for i := 0; i < comm.Size(); i++ {
			data, _, _ := comm.Recv(mpi.Any, tag)
			all = append(all, decodeExtentFrames(data)...)
		}
		for _, e := range coalesce(all) {
			if _, err := f.inner.WriteAt(e.data, e.off); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mpiio: collective write at %d: %w", e.off, err)
			}
		}
	}

	ok := 1.0
	if firstErr != nil {
		ok = 0
	}
	if comm.AllreduceFloat64(ok, mpi.OpMin) == 0 {
		if firstErr != nil {
			return 0, firstErr
		}
		return 0, fmt.Errorf("mpiio: collective write failed on another rank")
	}
	return total, nil
}

// appendExtentFrame appends [8B off][4B len][data] to msg.
func appendExtentFrame(msg []byte, e extent) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(e.off))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(e.data)))
	msg = append(msg, hdr[:]...)
	return append(msg, e.data...)
}

// decodeExtentFrames parses a back-to-back extent message.
func decodeExtentFrames(msg []byte) []extent {
	var out []extent
	for len(msg) >= 12 {
		off := int64(binary.BigEndian.Uint64(msg[0:]))
		n := int(binary.BigEndian.Uint32(msg[8:]))
		msg = msg[12:]
		if n > len(msg) {
			break // malformed tail; drop
		}
		out = append(out, extent{off: off, data: msg[:n]})
		msg = msg[n:]
	}
	return out
}

// ReadAtAll is the collective read: aggregators read coalesced regions and
// redistribute the pieces.
func (f *File) ReadAtAll(comm *mpi.Comm, p []byte, off int64) (int, error) {
	if comm == nil || comm.Size() == 1 {
		return f.ReadAt(p, off)
	}
	if err := f.check(); err != nil {
		return 0, err
	}
	lo, hi := collDomain(comm, off, int64(len(p)))
	aggs := aggregators(comm.Size())
	base := f.nextCollTag()
	reqTag := base + 2
	dataTag := base + 3

	// Phase 1: every rank tells every aggregator which sub-range of that
	// aggregator's domain it needs (possibly empty).
	for a, aggRank := range aggs {
		alo, ahi := domainSlice(lo, hi, len(aggs), a)
		rlo, rhi := intersect(off, off+int64(len(p)), alo, ahi)
		var req [16]byte
		binary.BigEndian.PutUint64(req[0:], uint64(rlo))
		binary.BigEndian.PutUint64(req[8:], uint64(rhi))
		comm.Send(aggRank, reqTag, req[:])
	}

	// Phase 2: aggregators read the union of requests in one pass and
	// serve each rank its piece.
	var firstErr error
	if indexOf(aggs, comm.Rank()) >= 0 {
		type want struct {
			src      int
			rlo, rhi int64
		}
		wants := make([]want, 0, comm.Size())
		ulo, uhi := int64(-1), int64(-1)
		for i := 0; i < comm.Size(); i++ {
			data, src, _ := comm.Recv(mpi.Any, reqTag)
			rlo := int64(binary.BigEndian.Uint64(data[0:]))
			rhi := int64(binary.BigEndian.Uint64(data[8:]))
			wants = append(wants, want{src, rlo, rhi})
			if rhi > rlo {
				if ulo < 0 || rlo < ulo {
					ulo = rlo
				}
				if rhi > uhi {
					uhi = rhi
				}
			}
		}
		var region []byte
		if uhi > ulo {
			region = make([]byte, uhi-ulo)
			if _, err := f.inner.ReadAt(region, ulo); err != nil && firstErr == nil {
				// Short reads inside the region surface as the
				// caller's own range check below.
				firstErr = nil
			}
		}
		for _, w := range wants {
			if w.rhi <= w.rlo {
				comm.Send(w.src, dataTag, nil)
				continue
			}
			comm.Send(w.src, dataTag, region[w.rlo-ulo:w.rhi-ulo])
		}
	}

	// Phase 3: collect our pieces from each aggregator.
	total := 0
	for a, aggRank := range aggs {
		alo, ahi := domainSlice(lo, hi, len(aggs), a)
		rlo, rhi := intersect(off, off+int64(len(p)), alo, ahi)
		data, _, _ := comm.Recv(aggRank, dataTag)
		if rhi > rlo {
			copy(p[rlo-off:rhi-off], data)
			total += len(data)
		}
	}
	if firstErr != nil {
		return total, firstErr
	}
	return total, nil
}

// collDomain computes the global [min, max) byte range of a collective
// access.
func collDomain(comm *mpi.Comm, off, length int64) (lo, hi int64) {
	lo = int64(comm.AllreduceFloat64(float64(off), mpi.OpMin))
	hi = int64(comm.AllreduceFloat64(float64(off+length), mpi.OpMax))
	return lo, hi
}

// aggregators picks which ranks perform file I/O: evenly spaced, at most
// maxAggregators.
func aggregators(size int) []int {
	n := size
	if n > maxAggregators {
		n = maxAggregators
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i * size / n
	}
	return out
}

// domainSlice splits [lo, hi) into count near-equal slices and returns the
// i-th.
func domainSlice(lo, hi int64, count, i int) (int64, int64) {
	span := hi - lo
	return lo + span*int64(i)/int64(count), lo + span*int64(i+1)/int64(count)
}

// overlap returns the extent of (off, p) that falls inside [alo, ahi).
func overlap(off int64, p []byte, alo, ahi int64) extent {
	rlo, rhi := intersect(off, off+int64(len(p)), alo, ahi)
	if rhi <= rlo {
		return extent{}
	}
	return extent{off: rlo, data: p[rlo-off : rhi-off]}
}

func intersect(alo, ahi, blo, bhi int64) (int64, int64) {
	lo := alo
	if blo > lo {
		lo = blo
	}
	hi := ahi
	if bhi < hi {
		hi = bhi
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// coalesce sorts extents by offset and merges adjacent/overlapping ones so
// the aggregator issues the fewest, largest writes.
func coalesce(exts []extent) []extent {
	var nonEmpty []extent
	for _, e := range exts {
		if len(e.data) > 0 {
			nonEmpty = append(nonEmpty, e)
		}
	}
	sort.Slice(nonEmpty, func(i, j int) bool { return nonEmpty[i].off < nonEmpty[j].off })
	var out []extent
	for _, e := range nonEmpty {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if e.off <= last.off+int64(len(last.data)) {
				// Overlapping or adjacent: extend the last extent.
				end := e.off + int64(len(e.data))
				lastEnd := last.off + int64(len(last.data))
				if end > lastEnd {
					merged := make([]byte, end-last.off)
					copy(merged, last.data)
					copy(merged[e.off-last.off:], e.data)
					last.data = merged
				}
				continue
			}
		}
		cp := make([]byte, len(e.data))
		copy(cp, e.data)
		out = append(out, extent{off: e.off, data: cp})
	}
	return out
}

// encodeExtent frames an extent as [8B off][data]; empty extents become a
// zero-length message.
func encodeExtent(e extent) []byte {
	if len(e.data) == 0 {
		return nil
	}
	out := make([]byte, 8+len(e.data))
	binary.BigEndian.PutUint64(out, uint64(e.off))
	copy(out[8:], e.data)
	return out
}

func decodeExtent(msg []byte) (extent, bool) {
	if len(msg) < 9 {
		return extent{}, false
	}
	return extent{
		off:  int64(binary.BigEndian.Uint64(msg)),
		data: msg[8:],
	}, true
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
