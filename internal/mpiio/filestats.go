package mpiio

import (
	"sync/atomic"
	"time"
)

// FileStats are cumulative per-handle I/O counters — the instrumentation
// the paper's measurements rely on (phase durations, bytes moved, blocking
// vs nonblocking call mix).
type FileStats struct {
	Reads        int64
	Writes       int64
	AsyncReads   int64
	AsyncWrites  int64
	BytesRead    int64
	BytesWritten int64
	// PhysBytesRead/PhysBytesWritten count bytes actually moved through
	// the driver, as opposed to the logical BytesRead/BytesWritten the
	// application asked for. Data sieving reads whole windows (including
	// the gaps between view frames) and rewrites them, so phys > logical
	// there; the gap is the read/write amplification the sieve_buf_size
	// hint trades against round trips.
	PhysBytesRead    int64
	PhysBytesWritten int64
	// BlockingTime is time spent inside blocking calls (Read/Write
	// variants and Waits issued through WaitFor).
	BlockingTime time.Duration
}

// fileCounters is the internal atomic mirror of FileStats.
type fileCounters struct {
	reads, writes                   atomic.Int64
	asyncReads, asyncWrites         atomic.Int64
	bytesRead, bytesWritten         atomic.Int64
	physBytesRead, physBytesWritten atomic.Int64
	blockingNanos                   atomic.Int64
}

func (c *fileCounters) snapshot() FileStats {
	return FileStats{
		Reads:            c.reads.Load(),
		Writes:           c.writes.Load(),
		AsyncReads:       c.asyncReads.Load(),
		AsyncWrites:      c.asyncWrites.Load(),
		BytesRead:        c.bytesRead.Load(),
		BytesWritten:     c.bytesWritten.Load(),
		PhysBytesRead:    c.physBytesRead.Load(),
		PhysBytesWritten: c.physBytesWritten.Load(),
		BlockingTime:     time.Duration(c.blockingNanos.Load()),
	}
}

// recordPhys accounts bytes moved through the driver.
func (c *fileCounters) recordPhys(read bool, n int) {
	if read {
		c.physBytesRead.Add(int64(n))
	} else {
		c.physBytesWritten.Add(int64(n))
	}
}

// recordBlocking accounts one blocking call.
func (c *fileCounters) recordBlocking(start time.Time, read bool, n int) {
	c.blockingNanos.Add(int64(time.Since(start)))
	if read {
		c.reads.Add(1)
		c.bytesRead.Add(int64(n))
	} else {
		c.writes.Add(1)
		c.bytesWritten.Add(int64(n))
	}
}

// recordAsync accounts one completed nonblocking operation.
func (c *fileCounters) recordAsync(read bool, n int) {
	if read {
		c.asyncReads.Add(1)
		c.bytesRead.Add(int64(n))
	} else {
		c.asyncWrites.Add(1)
		c.bytesWritten.Add(int64(n))
	}
}

// Stats returns a snapshot of the handle's I/O counters.
func (f *File) Stats() FileStats { return f.counters.snapshot() }
