package mpiio

import (
	"errors"
	"io"
	"testing"

	"semplar/internal/adio"
)

// shortFile is an adio.File whose WriteAt/ReadAt move at most cap bytes
// per call (optionally with an error), for exercising the file-pointer
// bookkeeping around partial operations.
type shortFile struct {
	data    []byte
	cap     int
	werr    error // returned alongside short writes
	lastOff int64
}

func (f *shortFile) clip(p []byte) []byte {
	if f.cap > 0 && len(p) > f.cap {
		return p[:f.cap]
	}
	return p
}

func (f *shortFile) WriteAt(p []byte, off int64) (int, error) {
	f.lastOff = off
	p = f.clip(p)
	need := int(off) + len(p)
	for len(f.data) < need {
		f.data = append(f.data, 0)
	}
	copy(f.data[off:], p)
	if f.cap > 0 {
		return len(p), f.werr
	}
	return len(p), nil
}

func (f *shortFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(f.clip(p), f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *shortFile) Size() (int64, error)    { return int64(len(f.data)), nil }
func (f *shortFile) Truncate(sz int64) error { f.data = f.data[:sz]; return nil }
func (f *shortFile) Sync() error             { return nil }
func (f *shortFile) Close() error            { return nil }

type shortDriver struct{ file *shortFile }

func (d *shortDriver) Name() string { return "short" }
func (d *shortDriver) Open(path string, flags int, hints adio.Hints) (adio.File, error) {
	return d.file, nil
}
func (d *shortDriver) Delete(path string) error { return nil }

func shortRegistry(file *shortFile) *adio.Registry {
	r := &adio.Registry{}
	r.Register(&shortDriver{file: file})
	return r
}

func TestWriteShortRollsBackFilePointer(t *testing.T) {
	inner := &shortFile{cap: 4, werr: io.ErrShortWrite}
	f, err := OpenLocal(shortRegistry(inner), "short:/f", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	n, err := f.Write([]byte("0123456789"))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write = %d, %v; want 4, ErrShortWrite", n, err)
	}
	// The file pointer must sit after the bytes actually written, not
	// after the bytes requested — otherwise the next write leaves a hole.
	if fp := f.Tell(); fp != 4 {
		t.Fatalf("fp after short write = %d, want 4", fp)
	}
	inner.cap = 0 // healthy again
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if inner.lastOff != 4 {
		t.Fatalf("follow-up write landed at %d, want 4 (no hole)", inner.lastOff)
	}
	if fp := f.Tell(); fp != 7 {
		t.Fatalf("fp = %d, want 7", fp)
	}
}

func TestIWriteShortRollsBackFilePointer(t *testing.T) {
	inner := &shortFile{cap: 4, werr: io.ErrShortWrite}
	f, err := OpenLocal(shortRegistry(inner), "short:/f", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	req := f.IWrite([]byte("0123456789"))
	if n, err := Wait(req); n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("async short write = %d, %v", n, err)
	}
	if fp := f.Tell(); fp != 4 {
		t.Fatalf("fp after async short write = %d, want 4", fp)
	}
}

func TestIWriteNoRollbackWhenPointerMovedOn(t *testing.T) {
	// Back-to-back nonblocking writes claim consecutive regions up
	// front. A short completion of the FIRST must not yank the pointer
	// back under the second's feet.
	inner := &shortFile{cap: 4, werr: io.ErrShortWrite}
	f, err := OpenLocal(shortRegistry(inner), "short:/f", adio.O_RDWR|adio.O_CREATE,
		adio.Hints{"io_threads": "1"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	r1 := f.IWrite([]byte("0123456789")) // will complete short at 4
	r2 := f.IWrite([]byte("abcde"))      // claimed [10, 15) already
	Wait(r1)
	Wait(r2)
	// r1's short completion must NOT yank the pointer back to 4 — r2
	// already claimed [10, 15). r2's own short completion (4 of 5) may
	// legitimately correct 15 to 14, since nothing claimed past it.
	if fp := f.Tell(); fp != 14 {
		t.Fatalf("fp = %d, want 14 (r1 must not roll back, r2 may)", fp)
	}
}

func TestWriteErrorRollsBackFully(t *testing.T) {
	boom := errors.New("device detached")
	inner := &shortFile{cap: 1, werr: boom}
	inner.cap = 1
	f, err := OpenLocal(shortRegistry(inner), "short:/f", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("xyz"))
	if err == nil {
		t.Fatal("write reported success through failing device")
	}
	if fp := f.Tell(); fp != int64(n) {
		t.Fatalf("fp = %d after %d-byte failed write", fp, n)
	}
}
