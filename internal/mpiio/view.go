package mpiio

import (
	"fmt"
	"io"

	"semplar/internal/adio"
)

// View is a simplified MPI_File_set_view: a byte displacement plus a
// strided filetype. The file appears to the rank as the concatenation of
// BlockLen-byte windows taken every Stride bytes starting at Disp — the
// classic pattern by which each rank of a row-partitioned array sees only
// its own interleaved records.
//
// The zero View is the identity (whole file, no displacement).
type View struct {
	// Disp is the displacement: logical offset 0 maps to physical Disp.
	Disp int64
	// BlockLen is the visible bytes per frame; 0 means contiguous.
	BlockLen int64
	// Stride is the physical distance between frame starts; must be
	// >= BlockLen when BlockLen > 0.
	Stride int64
}

// contiguous reports whether the view is a pure displacement.
func (v View) contiguous() bool { return v.BlockLen <= 0 }

// validate checks the view's invariants.
func (v View) validate() error {
	if v.Disp < 0 {
		return fmt.Errorf("mpiio: negative view displacement %d", v.Disp)
	}
	if v.BlockLen < 0 || v.Stride < 0 {
		return fmt.Errorf("mpiio: negative view extent")
	}
	if v.BlockLen > 0 && v.Stride < v.BlockLen {
		return fmt.Errorf("mpiio: view stride %d < block length %d", v.Stride, v.BlockLen)
	}
	return nil
}

// physical maps a logical offset to its physical file offset.
func (v View) physical(logical int64) int64 {
	if v.contiguous() {
		return v.Disp + logical
	}
	frame := logical / v.BlockLen
	within := logical % v.BlockLen
	return v.Disp + frame*v.Stride + within
}

// SetView installs a view on the handle and resets the individual file
// pointer, as MPI_File_set_view does. Collective accesses (WriteAtAll /
// ReadAtAll) honor the view: each rank's transfer is mapped through its own
// handle's view into physical extents before the two-phase exchange.
func (f *File) SetView(v View) error {
	if err := v.validate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.view = v
	f.fp = 0
	return nil
}

// CurrentView returns the handle's view.
func (f *File) CurrentView() View {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.view
}

// readPhys performs a read at a logical offset through the view.
func (f *File) readPhys(p []byte, off int64) (int, error) {
	return f.viewIO(p, off, false)
}

// writePhys performs a write at a logical offset through the view.
func (f *File) writePhys(p []byte, off int64) (int, error) {
	return f.viewIO(p, off, true)
}

// viewIO routes a logical transfer through the handle's view, picking the
// cheapest correct strategy:
//
//   - contiguous views (including the BlockLen == Stride degenerate, whose
//     frames tile with no gaps) become one driver op at Disp+off;
//   - sparse strided views go to list I/O when the driver supports
//     adio.VectorIO and density = BlockLen/Stride is below the
//     listio_density hint;
//   - other strided views spanning at least two frames are data-sieved;
//   - everything else (single-frame accesses, sieving disabled, windows too
//     big for the sieve buffer) falls back to the naive per-piece loop.
func (f *File) viewIO(p []byte, off int64, write bool) (int, error) {
	f.mu.Lock()
	v := f.view
	f.mu.Unlock()
	if v.contiguous() || v.BlockLen == v.Stride {
		var n int
		var err error
		if write {
			n, err = f.inner.WriteAt(p, v.Disp+off)
		} else {
			n, err = f.inner.ReadAt(p, v.Disp+off)
		}
		f.counters.recordPhys(!write, n)
		return n, err
	}
	if len(p) > 0 {
		spansFrames := (off+int64(len(p))-1)/v.BlockLen > off/v.BlockLen
		if spansFrames && f.sieve.listio && float64(v.BlockLen)/float64(v.Stride) < f.sieve.density {
			if vio, ok := f.inner.(adio.VectorIO); ok {
				return f.listIO(vio, v, p, off, write)
			}
		}
		if spansFrames && f.sieve.sieve {
			if write {
				return f.sievedWrite(v, p, off)
			}
			return f.sievedRead(v, p, off)
		}
	}
	return f.naiveViewIO(v, p, off, write)
}

// naiveViewIO splits the logical range on frame boundaries and pays one
// driver op per contiguous piece — the pre-sieving behavior, kept as the
// fallback and as the semantic reference the fast paths must match.
func (f *File) naiveViewIO(v View, p []byte, off int64, write bool) (int, error) {
	total := 0
	for len(p) > 0 {
		logical := off + int64(total)
		within := logical % v.BlockLen
		take := v.BlockLen - within
		if take > int64(len(p)) {
			take = int64(len(p))
		}
		phys := v.physical(logical)
		var n int
		var err error
		if write {
			n, err = f.inner.WriteAt(p[:take], phys)
		} else {
			n, err = f.inner.ReadAt(p[:take], phys)
		}
		f.counters.recordPhys(!write, n)
		total += n
		p = p[take:]
		if err != nil {
			if err == io.EOF && len(p) == 0 && int64(n) == take {
				// Exactly filled the final piece.
				return total, nil
			}
			return total, err
		}
		if int64(n) < take {
			return total, io.EOF
		}
	}
	return total, nil
}
