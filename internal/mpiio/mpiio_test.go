package mpiio

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

func memRegistry() *adio.Registry {
	r := &adio.Registry{}
	r.Register(adio.NewMemFS())
	return r
}

func srbRegistry(srv *srb.Server) *adio.Registry {
	r := &adio.Registry{}
	fs, _ := core.NewSRBFS(core.SRBFSConfig{Dial: func() (net.Conn, error) {
		c, s := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(s)
		return c, nil
	}})
	r.Register(fs)
	return r
}

func TestLocalOpenReadWrite(t *testing.T) {
	reg := memRegistry()
	f, err := OpenLocal(reg, "mem:/f", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := []byte("mpi-io layer")
	if n, err := f.WriteAt(data, 5); err != nil || n != len(data) {
		t.Fatalf("write = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	if sz, _ := f.Size(); sz != int64(5+len(data)) {
		t.Fatalf("size = %d", sz)
	}
	if err := f.SetSize(5); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 5 {
		t.Fatalf("size after SetSize = %d", sz)
	}
}

func TestFilePointerSemantics(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/fp", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	f.Write([]byte("aaaa"))
	f.Write([]byte("bbbb"))
	if f.Tell() != 8 {
		t.Fatalf("fp = %d", f.Tell())
	}
	if pos, err := f.Seek(2, 0); err != nil || pos != 2 {
		t.Fatalf("seek = %d, %v", pos, err)
	}
	buf := make([]byte, 4)
	f.Read(buf)
	if string(buf) != "aabb" {
		t.Fatalf("read %q", buf)
	}
	if pos, _ := f.Seek(-2, 1); pos != 4 {
		t.Fatalf("seek cur = %d", pos)
	}
	if pos, _ := f.Seek(0, 2); pos != 8 {
		t.Fatalf("seek end = %d", pos)
	}
	if _, err := f.Seek(-99, 0); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := f.Seek(0, 9); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestAsyncExplicitOffset(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/async", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	var reqs []*Request
	for i := 0; i < 10; i++ {
		data := bytes.Repeat([]byte{byte('0' + i)}, 100)
		reqs = append(reqs, f.IWriteAt(data, int64(i*100)))
	}
	if n, err := WaitAll(reqs); err != nil || n != 1000 {
		t.Fatalf("waitall = %d, %v", n, err)
	}
	got := make([]byte, 1000)
	rr := f.IReadAt(got, 0)
	if n, err := Wait(rr); err != nil || n != 1000 {
		t.Fatalf("iread = %d, %v", n, err)
	}
	for i := 0; i < 10; i++ {
		if got[i*100] != byte('0'+i) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestAsyncFilePointerAdvances(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/ifp", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	// Consecutive IWrites must target consecutive regions even though
	// neither has completed yet.
	r1 := f.IWrite([]byte("first-"))
	r2 := f.IWrite([]byte("second"))
	if _, err := WaitAll([]*Request{r1, r2}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	f.ReadAt(buf, 0)
	if string(buf) != "first-second" {
		t.Fatalf("got %q", buf)
	}
	if f.Tell() != 12 {
		t.Fatalf("fp = %d", f.Tell())
	}
}

func TestTestPolling(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/t", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	req := f.IWriteAt(make([]byte, 64), 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, done := Test(req); done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never completed")
		}
	}
}

func TestOpsAfterClose(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/c", adio.O_RDWR|adio.O_CREATE, nil)
	f.Close()
	if _, err := f.WriteAt([]byte("x"), 0); err != ErrClosed {
		t.Fatalf("WriteAt = %v", err)
	}
	if _, err := Wait(f.IWriteAt([]byte("x"), 0)); err != ErrClosed {
		t.Fatalf("IWriteAt = %v", err)
	}
	if _, err := Wait(f.IRead(make([]byte, 1))); err != ErrClosed {
		t.Fatalf("IRead = %v", err)
	}
	if err := f.Close(); err != ErrClosed {
		t.Fatalf("double close = %v", err)
	}
	if err := f.Sync(); err != ErrClosed {
		t.Fatalf("sync = %v", err)
	}
}

func TestIOThreadsHint(t *testing.T) {
	reg := memRegistry()
	f, err := OpenLocal(reg, "mem:/h", adio.O_RDWR|adio.O_CREATE,
		adio.Hints{"io_threads": "3"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Engine().Threads() != 3 {
		t.Fatalf("threads = %d", f.Engine().Threads())
	}
	if _, err := OpenLocal(reg, "mem:/h2", adio.O_CREATE, adio.Hints{"io_threads": "x"}); err == nil {
		t.Fatal("bad hint accepted")
	}
}

func TestCollectiveOpenAllSucceed(t *testing.T) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	reg := srbRegistry(srv)
	const ranks = 4
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "srb:/shared", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		stripe := bytes.Repeat([]byte{byte('a' + c.Rank())}, 512)
		if _, err := f.WriteAt(stripe, int64(c.Rank()*512)); err != nil {
			return err
		}
		c.Barrier()
		// Every rank verifies the full file.
		buf := make([]byte, ranks*512)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		for r := 0; r < ranks; r++ {
			if buf[r*512] != byte('a'+r) {
				return fmt.Errorf("rank %d sees corrupt stripe %d", c.Rank(), r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveOpenFailsEverywhere(t *testing.T) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	reg := srbRegistry(srv)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		// Rank 1 tries a path that cannot be created (missing parent);
		// all ranks must observe failure.
		path := "srb:/ok"
		if c.Rank() == 1 {
			path = "srb:/no/such/collection/f"
		}
		f, err := Open(c, reg, path, adio.O_RDWR|adio.O_CREATE, nil)
		if err == nil {
			f.Close()
			return fmt.Errorf("rank %d: open unexpectedly succeeded", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncOverlapWithCompute(t *testing.T) {
	// The paper's headline mechanism through the MPI-IO interface:
	// iwrite + compute + wait completes in ~max(io, compute) rather
	// than the sum.
	srv := srb.NewMemServer(storage.DeviceSpec{
		WriteRate: 10 * netsim.MBps, // 100ms for 1 MiB
	})
	reg := srbRegistry(srv)
	f, err := OpenLocal(reg, "srb:/overlap", adio.O_WRONLY|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	payload := make([]byte, 1<<20)
	start := time.Now()
	req := f.IWriteAt(payload, 0)
	time.Sleep(100 * time.Millisecond) // "compute"
	if _, err := Wait(req); err != nil {
		t.Fatal(err)
	}
	total := time.Since(start)
	if total > 170*time.Millisecond {
		t.Fatalf("no overlap: %v for 100ms IO + 100ms compute", total)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/mix", adio.O_RDWR|adio.O_CREATE,
		adio.Hints{"io_threads": "4"})
	defer f.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * 10000)
			data := bytes.Repeat([]byte{byte(g)}, 1000)
			var reqs []*Request
			for i := 0; i < 10; i++ {
				reqs = append(reqs, f.IWriteAt(data, base+int64(i*1000)))
			}
			if _, err := WaitAll(reqs); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	for g := 0; g < 8; g++ {
		f.ReadAt(buf, int64(g*10000))
		if buf[0] != byte(g) || buf[999] != byte(g) {
			t.Fatalf("region %d corrupted", g)
		}
	}
}

func TestErrorsSurfaceThroughRequests(t *testing.T) {
	srv := srb.NewMemServer(storage.DeviceSpec{})
	reg := srbRegistry(srv)
	f, err := OpenLocal(reg, "srb:/ro", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	f2, err := OpenLocal(reg, "srb:/ro", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := Wait(f2.IWriteAt([]byte("x"), 0)); !errors.Is(err, srb.ErrInvalid) {
		t.Fatalf("write to read-only = %v", err)
	}
}
