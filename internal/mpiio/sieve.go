package mpiio

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"semplar/internal/adio"
	"semplar/internal/trace"
)

// Data sieving and list I/O — the noncontiguous-access fast paths of
// Thakur/Gropp/Lusk's "Data Sieving and Collective I/O in ROMIO", grafted
// under the paper's async engine. A strided view turns every frame into a
// separate contiguous piece; the naive path (naiveViewIO) pays one driver
// round trip per piece, which over a WAN link is ruinous. Two alternatives:
//
//   - Data sieving: read one large contiguous window covering many frames,
//     then extract (reads) or scatter-and-rewrite (writes) the pieces in
//     memory. One round trip moves window bytes instead of piece bytes —
//     amplification traded for latency. Writes are read-modify-write over
//     the window, so gap bytes between frames survive verbatim.
//
//   - List I/O: ship the (offset, length) vector to the driver and let it
//     move exactly the requested bytes in few round trips (opReadv /
//     opWritev on SRBFS). No amplification, but the win depends on the
//     driver supporting adio.VectorIO.
//
// The dispatch heuristic is density = BlockLen/Stride: sparse views (density
// below the listio_density hint) would make a sieve window mostly holes, so
// they go to list I/O when the driver offers it; dense views sieve.
//
// Concurrency: sieved writes lock the window per handle (f.sieveMu), which
// serializes RMW cycles issued through one *File. Like ROMIO, correctness
// against OTHER writers is the application's problem: the RMW cycle rewrites
// every byte of the window, so a concurrent writer to unrelated bytes of the
// same window through a different handle can be silently undone. The
// documented contract is single writer per window-sized region.

// Sieve hint defaults (see adio.Hints for the key list).
const (
	defaultSieveBufSize  = 512 << 10
	defaultListIODensity = 0.25
)

// sieveConfig is the parsed form of the noncontiguous-access hints.
type sieveConfig struct {
	sieve   bool    // data sieving enabled
	bufSize int64   // sieve window bound, bytes
	listio  bool    // list I/O enabled
	density float64 // density threshold below which list I/O is preferred
}

// parseSieveHints reads the noncontiguous-access hints, applying defaults.
func parseSieveHints(hints adio.Hints) (sieveConfig, error) {
	cfg := sieveConfig{
		sieve:   true,
		bufSize: defaultSieveBufSize,
		listio:  true,
		density: defaultListIODensity,
	}
	switch v := hints.Get("sieve", "on"); v {
	case "on":
	case "off":
		cfg.sieve = false
	default:
		return cfg, fmt.Errorf("mpiio: bad sieve hint %q", v)
	}
	if v := hints.Get("sieve_buf_size", ""); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("mpiio: bad sieve_buf_size hint %q", v)
		}
		cfg.bufSize = n
	}
	switch v := hints.Get("listio", "on"); v {
	case "on":
	case "off":
		cfg.listio = false
	default:
		return cfg, fmt.Errorf("mpiio: bad listio hint %q", v)
	}
	if v := hints.Get("listio_density", ""); v != "" {
		d, err := strconv.ParseFloat(v, 64)
		if err != nil || d < 0 || d > 1 {
			return cfg, fmt.Errorf("mpiio: bad listio_density hint %q", v)
		}
		cfg.density = d
	}
	return cfg, nil
}

// Sieve window buffers are pooled in size classes, srb/bufpool-style: RMW
// cycles at WAN latency leave windows alive for a round trip, and without
// pooling each cycle pays a window-sized allocation. The default class
// ladder tops out above the default window so the common case always pools.
var sieveClasses = [...]int{64 << 10, defaultSieveBufSize, 2 << 20}

var sievePools = func() []*sync.Pool {
	pools := make([]*sync.Pool, len(sieveClasses))
	for i, size := range sieveClasses {
		size := size
		pools[i] = &sync.Pool{New: func() any {
			b := make([]byte, size)
			return &b
		}}
	}
	return pools
}()

// sieveBufGets/sieveBufPuts count pooled window hand-outs and returns. Every
// sieve window is released before its viewIO call returns — including every
// error path — so tests diff the counters around injected failures to pin
// pool balance.
var sieveBufGets, sieveBufPuts atomic.Int64

// getSieveBuf returns a window buffer of length n backed by pooled storage;
// oversized requests fall back to a plain allocation.
func getSieveBuf(n int) []byte {
	for i, size := range sieveClasses {
		if n <= size {
			b := *sievePools[i].Get().(*[]byte)
			sieveBufGets.Add(1)
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putSieveBuf returns a window buffer to its size-class pool. Buffers whose
// capacity is not exactly a pool class are ignored.
func putSieveBuf(b []byte) {
	c := cap(b)
	for i, size := range sieveClasses {
		if c == size {
			b = b[:size]
			sievePools[i].Put(&b)
			sieveBufPuts.Add(1)
			return
		}
	}
}

// sieveWindow describes one sieve window: a run of k frames (the last
// possibly partial) covering `take` logical bytes starting at `logical`,
// occupying [physStart, physStart+physLen) in the file.
//
// The window math: for a view (B = BlockLen, S = Stride), a logical offset L
// sits `within` = L mod B bytes into frame L/B. A window of k frames spans
// (k-1)*S + B - within physical bytes at most (less when the final frame is
// cut short by the transfer end), so the largest k the sieve buffer admits
// is 1 + (bufSize - (B - within)) / S. The physical end is the mapping of
// the window's last logical byte plus one — the window never overshoots the
// final piece, so sieved writes grow the file exactly as naive writes do.
type sieveWindow struct {
	logical   int64 // first logical byte
	take      int64 // logical bytes covered
	physStart int64
	physLen   int64
}

// nextWindow computes the sieve window starting at logical offset `logical`
// with `rem` logical bytes left to move. ok is false when the buffer cannot
// hold at least two frames — then sieving degenerates to the naive loop.
func nextWindow(v View, logical, rem, bufSize int64) (sieveWindow, bool) {
	within := logical % v.BlockLen
	framesNeeded := (within + rem + v.BlockLen - 1) / v.BlockLen
	headroom := bufSize - (v.BlockLen - within)
	if headroom < 0 {
		return sieveWindow{}, false
	}
	k := headroom/v.Stride + 1
	if k > framesNeeded {
		k = framesNeeded
	}
	if k < 2 {
		return sieveWindow{}, false
	}
	take := k*v.BlockLen - within
	if take > rem {
		take = rem
	}
	physStart := v.physical(logical)
	physLen := v.physical(logical+take-1) + 1 - physStart
	return sieveWindow{logical: logical, take: take, physStart: physStart, physLen: physLen}, true
}

// forEachPiece walks the contiguous pieces of a window in ascending order,
// calling fn with each piece's offset into the window buffer (bufOff), its
// offset into the logical transfer relative to the window start (lgOff), and
// its length. fn returns false to stop early.
func (w sieveWindow) forEachPiece(v View, fn func(bufOff, lgOff, n int64) bool) {
	var lg int64
	for lg < w.take {
		logical := w.logical + lg
		within := logical % v.BlockLen
		n := v.BlockLen - within
		if n > w.take-lg {
			n = w.take - lg
		}
		bufOff := v.physical(logical) - w.physStart
		if !fn(bufOff, lg, n) {
			return
		}
		lg += n
	}
}

// sievedRead moves a strided read through sieve windows: one large
// contiguous driver read per window, pieces extracted in memory. Short
// window reads behave like the naive path: a piece that comes up short ends
// the transfer with io.EOF and the contiguous logical prefix; holes past
// the driver's EOF inside the window read as absent, not zeros.
func (f *File) sievedRead(v View, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		w, ok := nextWindow(v, off+int64(total), int64(len(p)-total), f.sieve.bufSize)
		if !ok {
			n, err := f.naiveViewIO(v, p[total:], off+int64(total), false)
			return total + n, err
		}
		buf := getSieveBuf(int(w.physLen))
		sp := f.tracer.Begin("mpiio", "sieve.window", f.lane)
		n, rerr := f.inner.ReadAt(buf[:w.physLen], w.physStart)
		sp.End(trace.Int("phys", w.physLen), trace.Int("logical", w.take))
		f.counters.recordPhys(true, n)
		if rerr != nil && rerr != io.EOF {
			putSieveBuf(buf)
			return total, rerr
		}
		short := false
		w.forEachPiece(v, func(bufOff, lgOff, pn int64) bool {
			avail := int64(n) - bufOff
			if avail > pn {
				avail = pn
			}
			if avail < 0 {
				avail = 0
			}
			copy(p[total:], buf[bufOff:bufOff+avail])
			total += int(avail)
			if avail < pn {
				short = true
				return false
			}
			return true
		})
		putSieveBuf(buf)
		if short {
			return total, io.EOF
		}
	}
	return total, nil
}

// sievedWrite moves a strided write through read-modify-write sieve
// windows: read the window, scatter the new pieces over it, write it back
// whole. Gap bytes between frames ride along unchanged; gap bytes beyond
// the driver's EOF are zero-filled, exactly as naive per-piece writes would
// leave them. The per-handle window lock serializes RMW cycles so two
// strided writes through this handle cannot interleave their
// read-and-write-back halves.
func (f *File) sievedWrite(v View, p []byte, off int64) (int, error) {
	f.sieveMu.Lock()
	defer f.sieveMu.Unlock()
	total := 0
	for total < len(p) {
		w, ok := nextWindow(v, off+int64(total), int64(len(p)-total), f.sieve.bufSize)
		if !ok {
			n, err := f.naiveViewIO(v, p[total:], off+int64(total), true)
			return total + n, err
		}
		buf := getSieveBuf(int(w.physLen))
		sp := f.tracer.Begin("mpiio", "sieve.window", f.lane)
		//lint:allow lockheld -- f.sieveMu IS the RMW serialization point: the window must not change between its read and write-back
		n, rerr := f.inner.ReadAt(buf[:w.physLen], w.physStart)
		f.counters.recordPhys(true, n)
		if rerr != nil && rerr != io.EOF {
			putSieveBuf(buf)
			sp.End(trace.Int("phys", w.physLen), trace.Int("logical", int64(0)))
			return total, rerr
		}
		for i := int64(n); i < w.physLen; i++ {
			buf[i] = 0 // gap bytes past EOF read as zeros, like naive writes leave them
		}
		w.forEachPiece(v, func(bufOff, lgOff, pn int64) bool {
			copy(buf[bufOff:bufOff+pn], p[int64(total)+lgOff:])
			return true
		})
		//lint:allow lockheld -- f.sieveMu IS the RMW serialization point: the window must not change between its read and write-back
		wn, werr := f.inner.WriteAt(buf[:w.physLen], w.physStart)
		f.counters.recordPhys(false, wn)
		sp.End(trace.Int("phys", w.physLen), trace.Int("logical", w.take))
		putSieveBuf(buf)
		if werr != nil || int64(wn) < w.physLen {
			// Count the logical prefix confirmed on disk: pieces wholly
			// below physStart+wn.
			acc := int64(0)
			w.forEachPiece(v, func(bufOff, lgOff, pn int64) bool {
				got := int64(wn) - bufOff
				if got > pn {
					got = pn
				}
				if got < 0 {
					got = 0
				}
				acc += got
				return got == pn
			})
			total += int(acc)
			if werr == nil {
				werr = io.ErrShortWrite
			}
			return total, werr
		}
		total += int(w.take)
	}
	return total, nil
}

// listIO moves a strided transfer as one offset/length vector through the
// driver's VectorIO fast path: exactly the requested bytes, few round
// trips, no read-modify-write. Prefix-and-error semantics match viewIO.
func (f *File) listIO(vio adio.VectorIO, v View, p []byte, off int64, write bool) (int, error) {
	vecs := make([]adio.Vec, 0, len(p)/int(v.BlockLen)+2)
	rest := p
	logical := off
	for len(rest) > 0 {
		within := logical % v.BlockLen
		take := v.BlockLen - within
		if take > int64(len(rest)) {
			take = int64(len(rest))
		}
		vecs = append(vecs, adio.Vec{Off: v.physical(logical), Buf: rest[:take]})
		rest = rest[take:]
		logical += take
	}
	sp := f.tracer.Begin("mpiio", "listio", f.lane)
	var n int
	var err error
	if write {
		n, err = vio.WriteAtVec(vecs)
	} else {
		n, err = vio.ReadAtVec(vecs)
	}
	sp.End(trace.Int("n", int64(n)), trace.Int("segs", int64(len(vecs))))
	f.counters.recordPhys(!write, n) // list I/O moves exactly the logical bytes
	return n, err
}
