package mpiio

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"semplar/internal/adio"
	"semplar/internal/mpi"
)

func TestCollectiveHelpers(t *testing.T) {
	// aggregators: spaced, capped.
	if got := aggregators(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("aggregators(2) = %v", got)
	}
	if got := aggregators(16); len(got) != maxAggregators {
		t.Fatalf("aggregators(16) = %v", got)
	}

	// domainSlice covers [lo,hi) exactly.
	lo, hi := int64(100), int64(1000)
	var prev int64 = 100
	for i := 0; i < 4; i++ {
		slo, shi := domainSlice(lo, hi, 4, i)
		if slo != prev {
			t.Fatalf("slice %d starts at %d, want %d", i, slo, prev)
		}
		prev = shi
	}
	if prev != hi {
		t.Fatalf("slices end at %d, want %d", prev, hi)
	}

	// intersect.
	if l, h := intersect(0, 10, 5, 20); l != 5 || h != 10 {
		t.Fatalf("intersect = %d,%d", l, h)
	}
	if l, h := intersect(0, 10, 20, 30); h != l {
		t.Fatalf("disjoint intersect = %d,%d", l, h)
	}

	// coalesce merges adjacent and overlapping extents.
	exts := []extent{
		{off: 100, data: []byte("bb")},
		{off: 0, data: []byte("aa")},
		{off: 2, data: []byte("cc")},
		{off: 102, data: []byte("dd")},
		{off: 101, data: []byte("xy")},
	}
	merged := coalesce(exts)
	if len(merged) != 2 {
		t.Fatalf("coalesce -> %d extents", len(merged))
	}
	if merged[0].off != 0 || string(merged[0].data) != "aacc" {
		t.Fatalf("merged[0] = %+v", merged[0])
	}
	// Overlapping bytes resolve later-extent-wins: 100="bb", 101="xy",
	// 102="dd" -> b,x,d,d.
	if merged[1].off != 100 || string(merged[1].data) != "bxdd" {
		t.Fatalf("merged[1] = %d %q", merged[1].off, merged[1].data)
	}

	// extent frame round trip.
	msg := appendExtentFrame(nil, extent{off: 7, data: []byte("data!")})
	got := decodeExtentFrames(msg)
	if len(got) != 1 || got[0].off != 7 || string(got[0].data) != "data!" {
		t.Fatalf("extent frame round trip = %+v", got)
	}
	if got := decodeExtentFrames(nil); len(got) != 0 {
		t.Fatal("empty extent message decoded")
	}

	// range frame round trip; empty ranges are dropped on decode.
	rmsg := appendRangeFrame(appendRangeFrame(nil, rng{lo: 5, hi: 9}), rng{lo: 4, hi: 4})
	rs := decodeRangeFrames(rmsg)
	if len(rs) != 1 || rs[0] != (rng{lo: 5, hi: 9}) {
		t.Fatalf("range frames = %+v", rs)
	}

	// coalesceRanges merges overlapping and adjacent runs.
	runs := coalesceRanges([]rng{{lo: 10, hi: 20}, {lo: 0, hi: 5}, {lo: 5, hi: 8}, {lo: 15, hi: 25}})
	if len(runs) != 2 || runs[0] != (rng{lo: 0, hi: 8}) || runs[1] != (rng{lo: 10, hi: 25}) {
		t.Fatalf("coalesceRanges = %+v", runs)
	}
}

func TestWriteAtAllContiguous(t *testing.T) {
	for _, np := range []int{2, 4, 7} {
		mem := adio.NewMemFS()
		reg := &adio.Registry{}
		reg.Register(mem)
		const chunk = 4 << 10
		err := mpi.Run(np, func(c *mpi.Comm) error {
			f, err := Open(c, reg, "mem:/coll", adio.O_RDWR|adio.O_CREATE, nil)
			if err != nil {
				return err
			}
			defer f.Close()
			data := bytes.Repeat([]byte{byte('a' + c.Rank())}, chunk)
			n, err := f.WriteAtAll(c, data, int64(c.Rank()*chunk))
			if err != nil || n != chunk {
				return fmt.Errorf("rank %d: WriteAtAll = %d, %v", c.Rank(), n, err)
			}
			c.Barrier()
			// Verify through an ordinary read.
			buf := make([]byte, np*chunk)
			if _, err := f.ReadAt(buf, 0); err != nil {
				return err
			}
			for r := 0; r < np; r++ {
				if buf[r*chunk] != byte('a'+r) || buf[(r+1)*chunk-1] != byte('a'+r) {
					return fmt.Errorf("rank %d sees bad stripe %d", c.Rank(), r)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestWriteAtAllStrided(t *testing.T) {
	// Interleaved small records: rank r owns record i*np+r for all i —
	// the access pattern two-phase I/O exists for.
	const np = 4
	const rec = 512
	const recsPerRank = 8
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	err := mpi.Run(np, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/strided", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		// Each rank writes its records one collective call at a time.
		for i := 0; i < recsPerRank; i++ {
			data := bytes.Repeat([]byte{byte('0' + c.Rank())}, rec)
			off := int64((i*np + c.Rank()) * rec)
			if _, err := f.WriteAtAll(c, data, off); err != nil {
				return err
			}
		}
		c.Barrier()
		buf := make([]byte, np*recsPerRank*rec)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		for i := 0; i < np*recsPerRank; i++ {
			want := byte('0' + i%np)
			if buf[i*rec] != want {
				return fmt.Errorf("record %d = %c want %c", i, buf[i*rec], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadAtAll(t *testing.T) {
	for _, np := range []int{2, 5} {
		mem := adio.NewMemFS()
		reg := &adio.Registry{}
		reg.Register(mem)
		const chunk = 2048
		// Prepare the file.
		f0, _ := mem.Open("/r", adio.O_RDWR|adio.O_CREATE, nil)
		content := make([]byte, np*chunk)
		rand.New(rand.NewSource(9)).Read(content)
		f0.WriteAt(content, 0)
		f0.Close()

		err := mpi.Run(np, func(c *mpi.Comm) error {
			f, err := Open(c, reg, "mem:/r", adio.O_RDONLY, nil)
			if err != nil {
				return err
			}
			defer f.Close()
			buf := make([]byte, chunk)
			n, err := f.ReadAtAll(c, buf, int64(c.Rank()*chunk))
			if err != nil || n != chunk {
				return fmt.Errorf("rank %d: ReadAtAll = %d, %v", c.Rank(), n, err)
			}
			if !bytes.Equal(buf, content[c.Rank()*chunk:(c.Rank()+1)*chunk]) {
				return fmt.Errorf("rank %d: wrong bytes", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestCollectiveBackToBack(t *testing.T) {
	// Consecutive collectives must not steal each other's messages.
	const np = 3
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	err := mpi.Run(np, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/b2b", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		for round := 0; round < 5; round++ {
			data := bytes.Repeat([]byte{byte(round*np + c.Rank())}, 256)
			off := int64(round*np*256 + c.Rank()*256)
			if _, err := f.WriteAtAll(c, data, off); err != nil {
				return err
			}
			got := make([]byte, 256)
			if _, err := f.ReadAtAll(c, got, off); err != nil {
				return err
			}
			if got[0] != byte(round*np+c.Rank()) {
				return fmt.Errorf("round %d rank %d: cross-talk", round, c.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtAllSingleRank(t *testing.T) {
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/solo", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteAtAll(c, []byte("solo"), 0); err != nil {
			return err
		}
		buf := make([]byte, 4)
		if _, err := f.ReadAtAll(c, buf, 0); err != nil {
			return err
		}
		if string(buf) != "solo" {
			return fmt.Errorf("got %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtAllUnevenSizes(t *testing.T) {
	// Ranks contribute different amounts at irregular offsets.
	const np = 4
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	sizes := []int{100, 3000, 7, 1024}
	offs := []int64{0, 100, 3100, 3107}
	err := mpi.Run(np, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/uneven", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		data := bytes.Repeat([]byte{byte('A' + c.Rank())}, sizes[c.Rank()])
		if _, err := f.WriteAtAll(c, data, offs[c.Rank()]); err != nil {
			return err
		}
		c.Barrier()
		total := int(offs[np-1]) + sizes[np-1]
		buf := make([]byte, total)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		for r := 0; r < np; r++ {
			if buf[offs[r]] != byte('A'+r) || buf[int(offs[r])+sizes[r]-1] != byte('A'+r) {
				return fmt.Errorf("rank %d region corrupted", r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteExtentsAll(t *testing.T) {
	const np = 4
	const rec = 256
	const groups = 10
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	err := mpi.Run(np, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/extall", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		var exts []FileExtent
		want := 0
		for g := 0; g < groups; g++ {
			exts = append(exts, FileExtent{
				Off:  int64((g*np + c.Rank()) * rec),
				Data: bytes.Repeat([]byte{byte('a' + c.Rank())}, rec),
			})
			want += rec
		}
		n, err := f.WriteExtentsAll(c, exts)
		if err != nil || n != want {
			return fmt.Errorf("rank %d: WriteExtentsAll = %d, %v", c.Rank(), n, err)
		}
		c.Barrier()
		buf := make([]byte, np*groups*rec)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		for i := 0; i < np*groups; i++ {
			wantB := byte('a' + i%np)
			if buf[i*rec] != wantB || buf[(i+1)*rec-1] != wantB {
				return fmt.Errorf("record %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteExtentsAllSingleRank(t *testing.T) {
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/solo-ext", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := f.WriteExtentsAll(c, []FileExtent{
			{Off: 10, Data: []byte("one")},
			{Off: 20, Data: []byte("two")},
		})
		if err != nil || n != 6 {
			return fmt.Errorf("= %d, %v", n, err)
		}
		buf := make([]byte, 3)
		f.ReadAt(buf, 20)
		if string(buf) != "two" {
			return fmt.Errorf("got %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteExtentsAllEmptyContribution(t *testing.T) {
	// Some ranks contribute nothing; the collective must still complete.
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/sparse", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		var exts []FileExtent
		if c.Rank() == 1 {
			exts = []FileExtent{{Off: 0, Data: []byte("only rank one")}}
		}
		if _, err := f.WriteExtentsAll(c, exts); err != nil {
			return err
		}
		c.Barrier()
		buf := make([]byte, 13)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		if string(buf) != "only rank one" {
			return fmt.Errorf("got %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtentFrameCodec(t *testing.T) {
	var msg []byte
	msg = appendExtentFrame(msg, extent{off: 5, data: []byte("abc")})
	msg = appendExtentFrame(msg, extent{off: 99, data: []byte("defgh")})
	out := decodeExtentFrames(msg)
	if len(out) != 2 || out[0].off != 5 || string(out[1].data) != "defgh" {
		t.Fatalf("decoded %+v", out)
	}
	// Truncated tail is dropped, not panicked on.
	if got := decodeExtentFrames(msg[:len(msg)-2]); len(got) != 1 {
		t.Fatalf("truncated decode = %d extents", len(got))
	}
}
