package mpiio

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"semplar/internal/adio"
	"semplar/internal/mpi"
)

// TestCollectiveWithViews: each rank installs an interleaved strided view
// (rank r owns record i*np+r) and moves all its records in ONE collective
// call — the composition MPI_File_set_view + MPI_File_write_at_all that
// two-phase I/O exists for. Verifies the physical interleave and the
// view-mapped read-back.
func TestCollectiveWithViews(t *testing.T) {
	const np = 4
	const rec = 512
	const recsPerRank = 8
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	err := mpi.Run(np, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/viewcoll", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		v := View{Disp: int64(c.Rank() * rec), BlockLen: rec, Stride: np * rec}
		if err := f.SetView(v); err != nil {
			return err
		}
		data := bytes.Repeat([]byte{byte('0' + c.Rank())}, recsPerRank*rec)
		n, err := f.WriteAtAll(c, data, 0)
		if err != nil || n != len(data) {
			return fmt.Errorf("rank %d: WriteAtAll = %d, %v", c.Rank(), n, err)
		}
		c.Barrier()

		// Physical layout: record i holds byte '0'+i%np end to end.
		if err := f.SetView(View{}); err != nil {
			return err
		}
		buf := make([]byte, np*recsPerRank*rec)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		for i := 0; i < np*recsPerRank; i++ {
			want := byte('0' + i%np)
			if buf[i*rec] != want || buf[(i+1)*rec-1] != want {
				return fmt.Errorf("record %d corrupted", i)
			}
		}
		c.Barrier()

		// Collective read back through the view: each rank sees only its
		// own records, contiguously.
		if err := f.SetView(v); err != nil {
			return err
		}
		got := make([]byte, recsPerRank*rec)
		n, err = f.ReadAtAll(c, got, 0)
		if err != nil || n != len(got) {
			return fmt.Errorf("rank %d: ReadAtAll = %d, %v", c.Rank(), n, err)
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("rank %d: view read-back differs", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveViewUnevenTails: ranks transfer different lengths through
// their views, including a rank whose strided read runs past EOF — the
// collective completes with per-rank prefix-and-EOF semantics matching the
// independent path.
func TestCollectiveViewUnevenTails(t *testing.T) {
	const np = 3
	const rec = 128
	mem := adio.NewMemFS()
	reg := &adio.Registry{}
	reg.Register(mem)
	// 5 full record groups on disk.
	f0, _ := mem.Open("/tails", adio.O_RDWR|adio.O_CREATE, nil)
	content := make([]byte, 5*np*rec)
	for i := range content {
		content[i] = byte(i % 251)
	}
	f0.WriteAt(content, 0)
	f0.Close()

	err := mpi.Run(np, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/tails", adio.O_RDONLY, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		v := View{Disp: int64(c.Rank() * rec), BlockLen: rec, Stride: np * rec}
		if err := f.SetView(v); err != nil {
			return err
		}
		// Rank 0 asks for more records than exist; others stop in bounds.
		want := (4 + c.Rank()) * rec // rank 0: 4 recs (in bounds), rank 2: 6 recs (past EOF)
		buf := make([]byte, want)
		n, err := f.ReadAtAll(c, buf, 0)

		// Reference: same transfer through the independent (naive) path.
		nf, err2 := OpenLocal(reg, "mem:/tails", adio.O_RDONLY, naiveHints)
		if err2 != nil {
			return err2
		}
		defer nf.Close()
		nf.SetView(v)
		ref := make([]byte, want)
		wn, werr := nf.ReadAt(ref, 0)
		if n != wn || err != werr {
			return fmt.Errorf("rank %d: collective = (%d, %v), independent = (%d, %v)", c.Rank(), n, err, wn, werr)
		}
		if !bytes.Equal(buf[:n], ref[:wn]) {
			return fmt.Errorf("rank %d: collective bytes differ from independent", c.Rank())
		}
		if c.Rank() == np-1 && err != io.EOF {
			return fmt.Errorf("rank %d expected EOF, got %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
