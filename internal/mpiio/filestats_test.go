package mpiio

import (
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
)

func TestFileStatsBlocking(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/stats", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()

	f.WriteAt(make([]byte, 1000), 0)
	f.WriteAt(make([]byte, 500), 1000)
	f.ReadAt(make([]byte, 300), 0)
	f.Write(make([]byte, 200)) // pointer variant counts too
	f.Seek(0, 0)
	f.Read(make([]byte, 100))

	st := f.Stats()
	if st.Writes != 3 || st.BytesWritten != 1700 {
		t.Fatalf("writes = %d / %d bytes", st.Writes, st.BytesWritten)
	}
	if st.Reads != 2 || st.BytesRead != 400 {
		t.Fatalf("reads = %d / %d bytes", st.Reads, st.BytesRead)
	}
	if st.AsyncReads != 0 || st.AsyncWrites != 0 {
		t.Fatalf("async counters moved: %+v", st)
	}
}

func TestFileStatsAsync(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/astats", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()

	var reqs []*Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, f.IWriteAt(make([]byte, 256), int64(i*256)))
	}
	reqs = append(reqs, f.IReadAt(make([]byte, 512), 0))
	if _, err := WaitAll(reqs); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.AsyncWrites != 4 || st.BytesWritten != 1024 {
		t.Fatalf("async writes = %d / %d", st.AsyncWrites, st.BytesWritten)
	}
	if st.AsyncReads != 1 || st.BytesRead != 512 {
		t.Fatalf("async reads = %d / %d", st.AsyncReads, st.BytesRead)
	}
}

func TestFileStatsBlockingTime(t *testing.T) {
	// A metered server makes blocking time measurable; async calls must
	// not add to it.
	srv := srb.NewMemServer(storage.DeviceSpec{WriteRate: 10 * netsim.MBps})
	reg := srbRegistry(srv)
	f, err := OpenLocal(reg, "srb:/timed", adio.O_WRONLY|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	f.WriteAt(make([]byte, 1<<20), 0) // ~100 ms blocking
	st := f.Stats()
	if st.BlockingTime < 50*time.Millisecond {
		t.Fatalf("blocking time = %v", st.BlockingTime)
	}
	before := st.BlockingTime

	req := f.IWriteAt(make([]byte, 1<<20), 1<<20)
	if _, err := Wait(req); err != nil {
		t.Fatal(err)
	}
	after := f.Stats()
	if grew := after.BlockingTime - before; grew > 20*time.Millisecond {
		t.Fatalf("async write charged %v of blocking time", grew)
	}
	if after.AsyncWrites != 1 {
		t.Fatalf("async writes = %d", after.AsyncWrites)
	}
}
