// Package mpiio reproduces the ROMIO MPI-IO layer the paper extends:
// files opened collectively over an ADIO driver, individual file pointers,
// explicit-offset operations, and — the paper's addition — the
// asynchronous calls MPI_File_iread/iwrite with MPIO_Wait/MPIO_Test.
//
// As in SEMPLAR, the asynchronous calls are implemented over the
// corresponding synchronous functions: the compute thread enqueues the
// request on a FIFO I/O queue and returns immediately; dedicated I/O
// threads dequeue and execute (core.Engine). This keeps the asynchronous
// capability orthogonal to the driver's other optimizations.
package mpiio

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/trace"
)

// Request is the nonblocking-operation handle (MPIO_Request).
type Request = core.Request

// ErrClosed is returned for operations on a closed file.
var ErrClosed = errors.New("mpiio: file closed")

// File is an open MPI-IO file on one rank. Each rank holds its own handle
// (and, for SRBFS, its own TCP streams), mirroring SEMPLAR's
// connection-per-node design.
type File struct {
	comm  *mpi.Comm // nil outside an MPI job
	inner adio.File
	eng   *core.Engine

	mu     sync.Mutex
	fp     int64 // individual file pointer
	closed bool

	counters fileCounters
	view     View // logical-to-physical mapping (MPI_File_set_view)

	// sieve holds the parsed noncontiguous-access hints; immutable after
	// Open. sieveMu is the per-handle window lock serializing sieved
	// read-modify-write cycles (see sieve.go for the concurrency contract).
	sieve   sieveConfig
	sieveMu sync.Mutex

	// collSeq numbers collective calls so each gets a private tag
	// block; all ranks advance it identically by issuing collectives in
	// the same order.
	collSeq int

	// Tracing hookup; set once via SetTracer before I/O begins.
	tracer *trace.Tracer
	lane   int64 // this file's trace lane for blocking-call spans
}

// SetTracer attributes this file's activity to tr: blocking calls get
// "mpiio" spans on the file's own trace lane, and the async engine records
// the full request lifecycle (queued/run spans, queue-depth and in-flight
// gauges). Call it right after Open, before issuing I/O.
func (f *File) SetTracer(tr *trace.Tracer) {
	f.tracer = tr
	f.lane = tr.NextID()
	f.eng.SetTracer(tr)
}

// nextCollTag reserves a tag block for one collective call.
func (f *File) nextCollTag() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.collSeq++
	return collTagBase + f.collSeq*4
}

// Open opens path through the registry. Inside an MPI job it is
// collective: every rank must call it, and either all ranks succeed or all
// observe failure. Hints: "io_threads" sets the async engine pool size
// (default 1, the paper's single-I/O-thread configuration); "sieve",
// "sieve_buf_size", "listio" and "listio_density" tune noncontiguous
// access (see sieve.go and adio.Hints); driver hints such as "streams"
// pass through.
func Open(comm *mpi.Comm, reg *adio.Registry, path string, flags int, hints adio.Hints) (*File, error) {
	threads := 1
	if v := hints.Get("io_threads", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("mpiio: bad io_threads hint %q", v)
		}
		threads = n
	}
	scfg, err := parseSieveHints(hints)
	if err != nil {
		return nil, err
	}
	inner, err := reg.Open(path, flags, hints)

	if comm != nil {
		// Collective agreement: all-or-nothing open.
		ok := 1.0
		if err != nil {
			ok = 0
		}
		if comm.AllreduceFloat64(ok, mpi.OpMin) == 0 {
			if inner != nil {
				//lint:allow errdrop -- collective abort: another rank failed, local open is discarded
				inner.Close()
			}
			if err != nil {
				return nil, fmt.Errorf("mpiio: rank %d open %s: %w", comm.Rank(), path, err)
			}
			return nil, fmt.Errorf("mpiio: collective open of %s failed on another rank", path)
		}
	} else if err != nil {
		return nil, fmt.Errorf("mpiio: open %s: %w", path, err)
	}

	return &File{comm: comm, inner: inner, eng: core.NewEngine(threads), sieve: scfg}, nil
}

// OpenLocal opens a file outside an MPI job (comm == nil).
func OpenLocal(reg *adio.Registry, path string, flags int, hints adio.Hints) (*File, error) {
	return Open(nil, reg, path, flags, hints)
}

// Engine exposes the file's async engine (for instrumentation).
func (f *File) Engine() *core.Engine { return f.eng }

// FaultStats reports the driver's fault-recovery counters (reconnects,
// replayed ops, remaining budget); ok is false when the underlying driver
// does not track them.
func (f *File) FaultStats() (stats core.FaultStats, ok bool) {
	if fr, isFR := f.inner.(core.FaultReporter); isFR {
		return fr.FaultStats(), true
	}
	return core.FaultStats{}, false
}

func (f *File) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return nil
}

// ReadAt is MPI_File_read_at: blocking, explicit offset.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	start := time.Now()
	sp := f.tracer.Begin("mpiio", "read_at", f.lane)
	n, err := f.readPhys(p, off)
	sp.End(trace.Int("n", int64(n)))
	f.counters.recordBlocking(start, true, n)
	return n, err
}

// WriteAt is MPI_File_write_at: blocking, explicit offset.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	start := time.Now()
	sp := f.tracer.Begin("mpiio", "write_at", f.lane)
	n, err := f.writePhys(p, off)
	sp.End(trace.Int("n", int64(n)))
	f.counters.recordBlocking(start, false, n)
	return n, err
}

// Read is MPI_File_read: blocking at the individual file pointer.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrClosed
	}
	off := f.fp
	f.fp += int64(len(p)) // optimistic; corrected below on short read
	f.mu.Unlock()
	start := time.Now()
	n, err := f.readPhys(p, off)
	f.counters.recordBlocking(start, true, n)
	if n < len(p) {
		f.rollbackFP(off, len(p), n)
	}
	return n, err
}

// Write is MPI_File_write: blocking at the individual file pointer.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrClosed
	}
	off := f.fp
	f.fp += int64(len(p)) // optimistic; corrected below on short write
	f.mu.Unlock()
	start := time.Now()
	n, err := f.writePhys(p, off)
	f.counters.recordBlocking(start, false, n)
	if n < len(p) {
		f.rollbackFP(off, len(p), n)
	}
	return n, err
}

// rollbackFP corrects the optimistically-advanced file pointer after an
// operation at offset off moved only n of want bytes. The correction only
// applies while the pointer still sits where the operation left it — if a
// subsequent call already advanced it further, that call's offset was
// claimed and yanking the pointer back would corrupt its position.
func (f *File) rollbackFP(off int64, want, n int) {
	f.mu.Lock()
	if f.fp == off+int64(want) {
		f.fp = off + int64(n)
	}
	f.mu.Unlock()
}

// ReadAtRedundant issues the read on every TCP stream of the underlying
// handle and accepts the first completed result (the redundancy technique
// of Section 4.1). Falls back to a plain ReadAt when the driver has no
// redundant streams.
func (f *File) ReadAtRedundant(p []byte, off int64) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	if rr, ok := f.inner.(core.RedundantReader); ok && f.CurrentView().contiguous() {
		return rr.ReadAtRedundant(p, f.CurrentView().Disp+off)
	}
	return f.readPhys(p, off)
}

// IReadAtRedundant is the nonblocking form of ReadAtRedundant.
func (f *File) IReadAtRedundant(p []byte, off int64) *Request {
	if err := f.check(); err != nil {
		return failedRequest(err)
	}
	return f.eng.Submit(func() (int, error) { return f.ReadAtRedundant(p, off) })
}

// IReadAt is MPI_File_iread_at: nonblocking, explicit offset. The buffer
// must not be reused until the request completes.
func (f *File) IReadAt(p []byte, off int64) *Request {
	if err := f.check(); err != nil {
		return failedRequest(err)
	}
	return f.eng.Submit(func() (int, error) {
		n, err := f.readPhys(p, off)
		f.counters.recordAsync(true, n)
		return n, err
	})
}

// IWriteAt is MPI_File_iwrite_at: nonblocking, explicit offset.
func (f *File) IWriteAt(p []byte, off int64) *Request {
	if err := f.check(); err != nil {
		return failedRequest(err)
	}
	return f.eng.Submit(func() (int, error) {
		n, err := f.writePhys(p, off)
		f.counters.recordAsync(false, n)
		return n, err
	})
}

// IRead is MPI_File_iread: nonblocking at the individual file pointer,
// which advances immediately so back-to-back nonblocking calls target
// consecutive regions.
func (f *File) IRead(p []byte) *Request {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return failedRequest(ErrClosed)
	}
	off := f.fp
	f.fp += int64(len(p)) // optimistic; corrected on completion if short
	f.mu.Unlock()
	return f.eng.Submit(func() (int, error) {
		n, err := f.readPhys(p, off)
		f.counters.recordAsync(true, n)
		if n < len(p) {
			f.rollbackFP(off, len(p), n)
		}
		return n, err
	})
}

// IWrite is MPI_File_iwrite: nonblocking at the individual file pointer.
func (f *File) IWrite(p []byte) *Request {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return failedRequest(ErrClosed)
	}
	off := f.fp
	f.fp += int64(len(p)) // optimistic; corrected on completion if short
	f.mu.Unlock()
	return f.eng.Submit(func() (int, error) {
		n, err := f.writePhys(p, off)
		f.counters.recordAsync(false, n)
		if n < len(p) {
			f.rollbackFP(off, len(p), n)
		}
		return n, err
	})
}

func failedRequest(err error) *Request { return core.FailedRequest(err) }

// Seek repositions the individual file pointer and returns the new
// position.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case 0:
		base = 0
	case 1:
		base = f.fp
	case 2:
		sz, err := f.inner.Size()
		if err != nil {
			return 0, err
		}
		base = sz
	default:
		return 0, fmt.Errorf("mpiio: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("mpiio: negative file pointer")
	}
	f.fp = np
	return np, nil
}

// Tell returns the individual file pointer.
func (f *File) Tell() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fp
}

// Size is MPI_File_get_size.
func (f *File) Size() (int64, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.inner.Size()
}

// SetSize is MPI_File_set_size (truncate).
func (f *File) SetSize(size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

// Sync is MPI_File_sync: drains outstanding nonblocking operations, then
// flushes the driver.
func (f *File) Sync() error {
	if err := f.check(); err != nil {
		return err
	}
	f.eng.Drain()
	return f.inner.Sync()
}

// Close is MPI_File_close: drains the async engine, closes the handle and
// (inside an MPI job) synchronizes the ranks.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.closed = true
	f.mu.Unlock()
	f.eng.Close()
	err := f.inner.Close()
	if f.comm != nil {
		f.comm.Barrier()
	}
	return err
}

// Wait is MPIO_Wait.
func Wait(r *Request) (int, error) { return r.Wait() }

// Test is MPIO_Test.
func Test(r *Request) (n int, err error, done bool) { return r.Test() }

// WaitAll waits for every request, returning the first error and the total
// byte count.
func WaitAll(reqs []*Request) (int, error) {
	total := 0
	var first error
	for _, r := range reqs {
		n, err := r.Wait()
		total += n
		if err != nil && first == nil {
			first = err
		}
	}
	return total, first
}
