package mpiio

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"semplar/internal/adio"
	"semplar/internal/mpi"
)

func TestViewValidate(t *testing.T) {
	cases := []struct {
		v  View
		ok bool
	}{
		{View{}, true},
		{View{Disp: 100}, true},
		{View{BlockLen: 10, Stride: 40}, true},
		{View{BlockLen: 10, Stride: 10}, true},
		{View{Disp: -1}, false},
		{View{BlockLen: 10, Stride: 5}, false},
		{View{BlockLen: -2, Stride: 5}, false},
	}
	for i, c := range cases {
		if err := c.v.validate(); (err == nil) != c.ok {
			t.Errorf("case %d: validate(%+v) = %v", i, c.v, err)
		}
	}
}

func TestViewPhysicalMapping(t *testing.T) {
	v := View{Disp: 100, BlockLen: 10, Stride: 40}
	cases := map[int64]int64{
		0:  100,
		9:  109,
		10: 140, // second frame
		15: 145,
		25: 185, // third frame, 5 within
	}
	for logical, want := range cases {
		if got := v.physical(logical); got != want {
			t.Errorf("physical(%d) = %d, want %d", logical, got, want)
		}
	}
	c := View{Disp: 7}
	if c.physical(13) != 20 {
		t.Error("contiguous displacement")
	}
}

func TestDisplacementView(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/disp", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	if err := f.SetView(View{Disp: 1000}); err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("header-skipped"), 0)
	// Physically the bytes landed at offset 1000.
	f.SetView(View{})
	got := make([]byte, 14)
	if _, err := f.ReadAt(got, 1000); err != nil {
		t.Fatal(err)
	}
	if string(got) != "header-skipped" {
		t.Fatalf("got %q", got)
	}
}

func TestStridedViewWriteRead(t *testing.T) {
	// Two ranks interleave 8-byte records via views, then verify the
	// physical layout.
	reg := memRegistry()
	const rec = 8
	const nrec = 16
	err := mpi.Run(2, func(c *mpi.Comm) error {
		f, err := Open(c, reg, "mem:/interleaved", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		// Rank r sees records r, r+2, r+4, ...
		if err := f.SetView(View{Disp: int64(c.Rank() * rec), BlockLen: rec, Stride: 2 * rec}); err != nil {
			return err
		}
		data := bytes.Repeat([]byte{byte('A' + c.Rank())}, rec*nrec)
		if n, err := f.WriteAt(data, 0); err != nil || n != len(data) {
			return fmt.Errorf("rank %d: viewed write = %d, %v", c.Rank(), n, err)
		}
		c.Barrier()
		// Read back through the view: only own records.
		got := make([]byte, rec*nrec)
		if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
			return err
		}
		for i, b := range got {
			if b != byte('A'+c.Rank()) {
				return fmt.Errorf("rank %d: viewed byte %d = %c", c.Rank(), i, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Physical check: records alternate A,B,A,B...
	mem, _ := reg.Lookup("mem")
	pf, err := mem.Open("/interleaved", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	phys := make([]byte, 2*rec*nrec)
	if _, err := pf.ReadAt(phys, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for i := 0; i < 2*nrec; i++ {
		want := byte('A' + i%2)
		if phys[i*rec] != want || phys[(i+1)*rec-1] != want {
			t.Fatalf("physical record %d corrupted (got %c want %c)", i, phys[i*rec], want)
		}
	}
}

func TestViewedFilePointer(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/vfp", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	f.SetView(View{BlockLen: 4, Stride: 8})
	f.Write([]byte("aaaa")) // frame 0
	f.Write([]byte("bbbb")) // frame 1 -> physical offset 8
	f.SetView(View{})
	phys := make([]byte, 12)
	if _, err := f.ReadAt(phys, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(phys[0:4]) != "aaaa" || string(phys[8:12]) != "bbbb" {
		t.Fatalf("physical = %q", phys)
	}
	// The gap is untouched (zeros).
	if phys[4] != 0 || phys[7] != 0 {
		t.Fatalf("gap written: %q", phys[4:8])
	}
}

func TestSetViewResetsPointerAndChecksClosed(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/vr", adio.O_RDWR|adio.O_CREATE, nil)
	f.Write(make([]byte, 100))
	if f.Tell() != 100 {
		t.Fatal("fp")
	}
	if err := f.SetView(View{Disp: 10}); err != nil {
		t.Fatal(err)
	}
	if f.Tell() != 0 {
		t.Fatal("SetView must reset the file pointer")
	}
	if err := f.SetView(View{BlockLen: 8, Stride: 4}); err == nil {
		t.Fatal("invalid view accepted")
	}
	f.Close()
	if err := f.SetView(View{}); err != ErrClosed {
		t.Fatalf("SetView after close = %v", err)
	}
}

func TestViewedAsyncWrites(t *testing.T) {
	reg := memRegistry()
	f, _ := OpenLocal(reg, "mem:/va", adio.O_RDWR|adio.O_CREATE, nil)
	defer f.Close()
	f.SetView(View{Disp: 64})
	req := f.IWriteAt([]byte("through-view"), 0)
	if _, err := Wait(req); err != nil {
		t.Fatal(err)
	}
	f.SetView(View{})
	got := make([]byte, 12)
	if _, err := f.ReadAt(got, 64); err != nil {
		t.Fatal(err)
	}
	if string(got) != "through-view" {
		t.Fatalf("got %q", got)
	}
}
