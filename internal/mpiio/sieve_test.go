package mpiio

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"semplar/internal/adio"
)

// naiveHints disables every noncontiguous fast path, giving the semantic
// reference the sieved and list-I/O paths must match byte for byte.
var naiveHints = adio.Hints{"sieve": "off", "listio": "off"}

// prepFile creates path with the given physical content through a plain
// contiguous handle.
func prepFile(t *testing.T, reg *adio.Registry, path string, content []byte) {
	t.Helper()
	f, err := OpenLocal(reg, path, adio.O_RDWR|adio.O_CREATE|adio.O_TRUNC, naiveHints)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(content) == 0 {
		return
	}
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
}

// physContents reads the whole physical file through a plain handle.
func physContents(t *testing.T, reg *adio.Registry, path string) []byte {
	t.Helper()
	f, err := OpenLocal(reg, path, adio.O_RDONLY, naiveHints)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, sz)
	if sz > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	return buf
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*13)
	}
	return b
}

// TestSievedReadMatchesNaive: for a grid of views, file sizes, and transfer
// shapes, a sieved strided read returns exactly what the naive per-piece
// loop returns — same count, same error, same bytes — including windows
// that straddle EOF and the BlockLen == Stride degenerate.
func TestSievedReadMatchesNaive(t *testing.T) {
	cases := []struct {
		name     string
		view     View
		fileSize int
		off      int64
		readLen  int
		bufSize  string // sieve_buf_size hint; "" for default
	}{
		{"aligned multi-window", View{BlockLen: 16, Stride: 64}, 8192, 0, 1000, "256"},
		{"mid-block start", View{BlockLen: 16, Stride: 64}, 8192, 7, 500, "256"},
		{"disp offset", View{Disp: 100, BlockLen: 32, Stride: 100}, 8192, 3, 700, "512"},
		{"eof straddles window", View{BlockLen: 16, Stride: 64}, 300, 0, 1000, "256"},
		{"eof mid-piece", View{BlockLen: 16, Stride: 64}, 330, 0, 1000, "256"},
		{"exact fill to eof", View{BlockLen: 16, Stride: 64}, 64*9 + 16, 0, 160, "256"},
		{"wholly past eof", View{BlockLen: 16, Stride: 64}, 100, 512, 256, "256"},
		{"blocklen equals stride", View{BlockLen: 32, Stride: 32}, 4096, 5, 1000, "256"},
		{"window bigger than transfer", View{BlockLen: 16, Stride: 64}, 8192, 0, 40, "4096"},
		{"buffer too small to sieve", View{BlockLen: 128, Stride: 256}, 8192, 0, 1000, "64"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := memRegistry()
			prepFile(t, reg, "mem:/f", pattern(c.fileSize, 3))

			hints := adio.Hints{"listio": "off"}
			if c.bufSize != "" {
				hints["sieve_buf_size"] = c.bufSize
			}
			sieved, err := OpenLocal(reg, "mem:/f", adio.O_RDONLY, hints)
			if err != nil {
				t.Fatal(err)
			}
			defer sieved.Close()
			naive, err := OpenLocal(reg, "mem:/f", adio.O_RDONLY, naiveHints)
			if err != nil {
				t.Fatal(err)
			}
			defer naive.Close()
			if err := sieved.SetView(c.view); err != nil {
				t.Fatal(err)
			}
			if err := naive.SetView(c.view); err != nil {
				t.Fatal(err)
			}

			got := make([]byte, c.readLen)
			want := make([]byte, c.readLen)
			gn, gerr := sieved.ReadAt(got, c.off)
			wn, werr := naive.ReadAt(want, c.off)
			if gn != wn || !errors.Is(gerr, werr) && gerr != werr {
				t.Fatalf("sieved = (%d, %v), naive = (%d, %v)", gn, gerr, wn, werr)
			}
			if !bytes.Equal(got[:gn], want[:wn]) {
				t.Fatal("sieved bytes differ from naive bytes")
			}
		})
	}
}

// TestSievedWriteMatchesNaive: a sieved strided write leaves the physical
// file — gap bytes, zero-fill beyond old EOF, final size — identical to the
// naive per-piece loop writing the same data through the same view.
func TestSievedWriteMatchesNaive(t *testing.T) {
	cases := []struct {
		name     string
		view     View
		fileSize int // prefill; 0 writes into an empty file
		off      int64
		writeLen int
		bufSize  string
	}{
		{"rmw over prefilled gaps", View{BlockLen: 16, Stride: 64}, 8192, 0, 1000, "256"},
		{"mid-block start", View{BlockLen: 16, Stride: 64}, 8192, 9, 777, "256"},
		{"grow empty file", View{BlockLen: 16, Stride: 64}, 0, 0, 640, "256"},
		{"grow past eof mid-window", View{BlockLen: 16, Stride: 64}, 200, 0, 1000, "256"},
		{"disp offset", View{Disp: 55, BlockLen: 32, Stride: 96}, 4096, 2, 900, "512"},
		{"blocklen equals stride", View{BlockLen: 32, Stride: 32}, 2048, 7, 500, "256"},
		{"partial final frame", View{BlockLen: 16, Stride: 64}, 0, 0, 100, "256"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := memRegistry()
			prefill := pattern(c.fileSize, 7)
			prepFile(t, reg, "mem:/sv", prefill)
			prepFile(t, reg, "mem:/nv", prefill)

			hints := adio.Hints{"listio": "off", "sieve_buf_size": c.bufSize}
			sieved, err := OpenLocal(reg, "mem:/sv", adio.O_RDWR, hints)
			if err != nil {
				t.Fatal(err)
			}
			defer sieved.Close()
			naive, err := OpenLocal(reg, "mem:/nv", adio.O_RDWR, naiveHints)
			if err != nil {
				t.Fatal(err)
			}
			defer naive.Close()
			if err := sieved.SetView(c.view); err != nil {
				t.Fatal(err)
			}
			if err := naive.SetView(c.view); err != nil {
				t.Fatal(err)
			}

			data := pattern(c.writeLen, 101)
			gn, gerr := sieved.WriteAt(data, c.off)
			wn, werr := naive.WriteAt(data, c.off)
			if gn != wn || gerr != werr {
				t.Fatalf("sieved = (%d, %v), naive = (%d, %v)", gn, gerr, wn, werr)
			}
			sb := physContents(t, reg, "mem:/sv")
			nb := physContents(t, reg, "mem:/nv")
			if !bytes.Equal(sb, nb) {
				t.Fatalf("physical files differ: sieved %d bytes, naive %d bytes", len(sb), len(nb))
			}
		})
	}
}

// faultCtl injects a hard error on the Nth driver ReadAt/WriteAt (1-based;
// 0 disables injection). Shared by every handle the fault driver opens.
type faultCtl struct {
	failRead, failWrite int
	reads, writes       int
	err                 error
}

type faultFile struct {
	adio.File
	ctl *faultCtl
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f.ctl.reads++
	if f.ctl.failRead > 0 && f.ctl.reads >= f.ctl.failRead {
		return 0, f.ctl.err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	f.ctl.writes++
	if f.ctl.failWrite > 0 && f.ctl.writes >= f.ctl.failWrite {
		return 0, f.ctl.err
	}
	return f.File.WriteAt(p, off)
}

type faultDriver struct {
	mem adio.Driver
	ctl *faultCtl
}

func (d *faultDriver) Name() string { return "fault" }
func (d *faultDriver) Open(path string, flags int, hints adio.Hints) (adio.File, error) {
	f, err := d.mem.Open(path, flags, hints)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, ctl: d.ctl}, nil
}
func (d *faultDriver) Delete(path string) error { return d.mem.Delete(path) }

// TestSievePoolBalanceUnderErrors: every sieve window buffer is returned to
// the pool, on the success path and on every injected-failure path — a
// leaked window under WAN-latency RMW cycles would bleed the pool dry.
func TestSievePoolBalanceUnderErrors(t *testing.T) {
	boom := errors.New("injected device error")
	run := func(failRead, failWrite int, op func(f *File) error) {
		t.Helper()
		ctl := &faultCtl{failRead: failRead, failWrite: failWrite, err: boom}
		reg := &adio.Registry{}
		reg.Register(&faultDriver{mem: adio.NewMemFS(), ctl: ctl})
		f, err := OpenLocal(reg, "fault:/f", adio.O_RDWR|adio.O_CREATE,
			adio.Hints{"listio": "off", "sieve_buf_size": "256"})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.SetView(View{BlockLen: 16, Stride: 64}); err != nil {
			t.Fatal(err)
		}
		if err := op(f); err != nil && !errors.Is(err, boom) && err != io.EOF {
			t.Fatalf("unexpected error: %v", err)
		}
	}

	data := pattern(1000, 42)
	ops := []struct {
		name                string
		failRead, failWrite int
		op                  func(f *File) error
	}{
		{"read ok", 0, 0, func(f *File) error { _, err := f.ReadAt(make([]byte, 500), 0); return err }},
		{"read fails first window", 1, 0, func(f *File) error { _, err := f.ReadAt(make([]byte, 500), 0); return err }},
		{"read fails second window", 2, 0, func(f *File) error { _, err := f.ReadAt(make([]byte, 500), 0); return err }},
		{"write ok", 0, 0, func(f *File) error { _, err := f.WriteAt(data, 0); return err }},
		{"write rmw read fails", 1, 0, func(f *File) error { _, err := f.WriteAt(data, 0); return err }},
		{"write back fails", 0, 1, func(f *File) error { _, err := f.WriteAt(data, 0); return err }},
		{"write back fails later window", 0, 2, func(f *File) error { _, err := f.WriteAt(data, 0); return err }},
	}
	for _, o := range ops {
		t.Run(o.name, func(t *testing.T) {
			gets0, puts0 := sieveBufGets.Load(), sieveBufPuts.Load()
			// Seed the file so reads have something to sieve, then run the op.
			run(0, 0, func(f *File) error { _, err := f.WriteAt(data, 0); return err })
			run(o.failRead, o.failWrite, o.op)
			gets, puts := sieveBufGets.Load()-gets0, sieveBufPuts.Load()-puts0
			if gets != puts {
				t.Fatalf("sieve pool imbalance: %d gets, %d puts", gets, puts)
			}
			if gets == 0 {
				t.Fatal("op never took the sieved path")
			}
		})
	}
}

// TestListIOSparseView: a view sparse enough to clear the density threshold
// routes through the driver's VectorIO fast path with no read/write
// amplification, and matches the naive reference byte for byte.
func TestListIOSparseView(t *testing.T) {
	reg := memRegistry()
	prepFile(t, reg, "mem:/lv", pattern(16384, 9))
	prepFile(t, reg, "mem:/nv", pattern(16384, 9))

	// density 4/64 = 0.0625 < default threshold 0.25 → list I/O.
	sparse := View{BlockLen: 4, Stride: 64}
	lio, err := OpenLocal(reg, "mem:/lv", adio.O_RDWR, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lio.Close()
	naive, err := OpenLocal(reg, "mem:/nv", adio.O_RDWR, naiveHints)
	if err != nil {
		t.Fatal(err)
	}
	defer naive.Close()
	lio.SetView(sparse)
	naive.SetView(sparse)

	got := make([]byte, 600)
	want := make([]byte, 600)
	gn, gerr := lio.ReadAt(got, 3)
	wn, werr := naive.ReadAt(want, 3)
	if gn != wn || gerr != werr || !bytes.Equal(got, want) {
		t.Fatalf("list-I/O read = (%d, %v), naive = (%d, %v)", gn, gerr, wn, werr)
	}
	st := lio.Stats()
	if st.PhysBytesRead != st.BytesRead {
		t.Fatalf("list I/O amplified: phys %d, logical %d", st.PhysBytesRead, st.BytesRead)
	}

	data := pattern(600, 200)
	if _, err := lio.WriteAt(data, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := naive.WriteAt(data, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(physContents(t, reg, "mem:/lv"), physContents(t, reg, "mem:/nv")) {
		t.Fatal("list-I/O write left different physical bytes than naive")
	}
	if st := lio.Stats(); st.PhysBytesWritten != st.BytesWritten {
		t.Fatalf("list I/O write amplified: phys %d, logical %d", st.PhysBytesWritten, st.BytesWritten)
	}
}

// TestSieveAmplificationStats: sieved access moves window bytes through the
// driver while the application sees logical bytes — FileStats must expose
// both so the amplification is observable.
func TestSieveAmplificationStats(t *testing.T) {
	reg := memRegistry()
	prepFile(t, reg, "mem:/f", pattern(8192, 5))
	f, err := OpenLocal(reg, "mem:/f", adio.O_RDWR, adio.Hints{"listio": "off", "sieve_buf_size": "1024"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetView(View{BlockLen: 16, Stride: 64})

	if _, err := f.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.BytesRead != 512 {
		t.Fatalf("logical BytesRead = %d, want 512", st.BytesRead)
	}
	// 512 logical bytes at density 1/4 touch ~2048 physical bytes.
	if st.PhysBytesRead < 3*st.BytesRead {
		t.Fatalf("PhysBytesRead = %d, expected ~4x logical %d", st.PhysBytesRead, st.BytesRead)
	}
	if _, err := f.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	st = f.Stats()
	if st.PhysBytesWritten < 3*st.BytesWritten {
		t.Fatalf("PhysBytesWritten = %d, expected ~4x logical %d", st.PhysBytesWritten, st.BytesWritten)
	}
}

// TestRollbackFPShortSievedRead: a sieved Read() that comes up short at EOF
// rolls the file pointer back to the bytes actually delivered, exactly as
// the contiguous path does.
func TestRollbackFPShortSievedRead(t *testing.T) {
	reg := memRegistry()
	prepFile(t, reg, "mem:/f", pattern(300, 1))
	f, err := OpenLocal(reg, "mem:/f", adio.O_RDONLY, adio.Hints{"listio": "off", "sieve_buf_size": "256"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetView(View{BlockLen: 16, Stride: 64})

	naive, err := OpenLocal(reg, "mem:/f", adio.O_RDONLY, naiveHints)
	if err != nil {
		t.Fatal(err)
	}
	defer naive.Close()
	naive.SetView(View{BlockLen: 16, Stride: 64})
	wantN, wantErr := naive.Read(make([]byte, 1000))

	n, rerr := f.Read(make([]byte, 1000))
	if n != wantN || rerr != wantErr {
		t.Fatalf("sieved Read = (%d, %v), naive = (%d, %v)", n, rerr, wantN, wantErr)
	}
	if rerr != io.EOF {
		t.Fatalf("expected short read at EOF, got %v", rerr)
	}
	if f.Tell() != int64(n) {
		t.Fatalf("fp = %d after short sieved read of %d", f.Tell(), n)
	}
}

// TestSieveHintValidation: malformed noncontiguous-access hints fail Open.
func TestSieveHintValidation(t *testing.T) {
	bad := []adio.Hints{
		{"sieve": "maybe"},
		{"sieve_buf_size": "0"},
		{"sieve_buf_size": "-5"},
		{"sieve_buf_size": "many"},
		{"listio": "1"},
		{"listio_density": "2"},
		{"listio_density": "-0.1"},
		{"listio_density": "dense"},
	}
	for i, h := range bad {
		reg := memRegistry()
		if _, err := OpenLocal(reg, "mem:/f", adio.O_RDWR|adio.O_CREATE, h); err == nil {
			t.Errorf("case %d: hints %v accepted", i, h)
		}
	}
}

// TestNextWindowMath pins the window-sizing arithmetic: frame capacity,
// clamping to the transfer tail, and the no-overshoot guarantee for the
// physical extent.
func TestNextWindowMath(t *testing.T) {
	v := View{BlockLen: 16, Stride: 64}
	// bufSize 256: headroom 240, k = 240/64+1 = 4 frames, 64 logical bytes.
	w, ok := nextWindow(v, 0, 1<<20, 256)
	if !ok || w.take != 64 {
		t.Fatalf("window = %+v ok=%v, want take 64", w, ok)
	}
	if w.physLen != 3*64+16 {
		t.Fatalf("physLen = %d, want %d (no overshoot past final piece)", w.physLen, 3*64+16)
	}
	// Transfer smaller than capacity: take clamps, phys ends at last byte+1.
	w, ok = nextWindow(v, 0, 20, 256)
	if !ok || w.take != 20 || w.physLen != 64+4 {
		t.Fatalf("clamped window = %+v ok=%v, want take 20 physLen 68", w, ok)
	}
	// Buffer fits one frame only: not worth sieving.
	if _, ok := nextWindow(v, 0, 1000, 70); ok {
		t.Fatal("one-frame buffer should refuse to sieve")
	}
	// Mid-block start shifts the physical base.
	w, ok = nextWindow(v, 5, 1000, 256)
	if !ok || w.physStart != 5 {
		t.Fatalf("mid-block window = %+v ok=%v, want physStart 5", w, ok)
	}
}
