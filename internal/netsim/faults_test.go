package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestJitterDelaysDelivery(t *testing.T) {
	const base = 5 * time.Millisecond
	const spread = 40 * time.Millisecond
	a, b := Pipe(base, nil, nil)
	a.WithJitter(NewJitter(spread, 1))
	defer a.Close()
	defer b.Close()

	// Across several messages at least one must arrive later than the
	// base latency alone would allow.
	slow := 0
	for i := 0; i < 8; i++ {
		start := time.Now()
		go a.Write([]byte{1})
		buf := make([]byte, 1)
		if _, err := io.ReadFull(b, buf); err != nil {
			t.Fatal(err)
		}
		el := time.Since(start)
		if el < base {
			t.Fatalf("message %d arrived before the base latency: %v", i, el)
		}
		if el > base+spread/4 {
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("jitter never delayed a delivery")
	}
}

func TestJitterDeterministic(t *testing.T) {
	j1 := NewJitter(time.Second, 42)
	j2 := NewJitter(time.Second, 42)
	for i := 0; i < 10; i++ {
		if j1.delay() != j2.delay() {
			t.Fatal("same seed produced different jitter")
		}
	}
	var nilJ *Jitter
	if nilJ.delay() != 0 {
		t.Fatal("nil jitter must be zero")
	}
}

func TestFaultClose(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	defer b.Close()
	fired := a.FaultAfter(100<<10, FaultClose)

	var total int
	var err error
	buf := make([]byte, 32<<10)
	go io.Copy(io.Discard, b)
	for i := 0; i < 100; i++ {
		var n int
		n, err = a.Write(buf)
		total += n
		if err != nil {
			break
		}
	}
	if err != ErrClosed {
		t.Fatalf("write after fault = %v, want ErrClosed", err)
	}
	select {
	case <-fired:
	default:
		t.Fatal("fault channel not closed")
	}
	if total > 200<<10 {
		t.Fatalf("fault fired too late: %d bytes", total)
	}
}

func TestFaultCloseUnblocksPeer(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	a.FaultAfter(10, FaultClose)
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, b)
		done <- err
	}()
	a.Write(make([]byte, 64<<10))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("peer copy error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer read never terminated after fault")
	}
}

func TestFaultStall(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	defer a.Close()
	defer b.Close()
	a.FaultAfter(1<<10, FaultStall)

	// Writes keep "succeeding" (black hole) ...
	for i := 0; i < 4; i++ {
		if _, err := a.Write(make([]byte, 1<<10)); err != nil {
			t.Fatalf("stalled write errored: %v", err)
		}
	}
	// ... but no data beyond the budget arrives.
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 16<<10)
		n, _ := io.ReadFull(b, buf[:2<<10])
		got <- n
	}()
	select {
	case n := <-got:
		t.Fatalf("read returned %d bytes through a stalled path", n)
	case <-time.After(100 * time.Millisecond):
		// expected: reader is stuck until the owner closes
	}
	a.Close()
}

func TestNetworkJitterWiring(t *testing.T) {
	prof := Loopback()
	prof.LatencyJitter = 10 * time.Millisecond
	n := NewNetwork(prof, 1)
	c, s := n.Dial(0)
	defer c.Close()
	defer s.Close()
	if c.(*Conn).jitter == nil || s.(*Conn).jitter == nil {
		t.Fatal("network did not wire jitter into the connection")
	}
	p2 := prof.Scaled(10)
	if p2.LatencyJitter != time.Millisecond {
		t.Fatalf("jitter not scaled: %v", p2.LatencyJitter)
	}
}

func TestKillResetsBothEndpoints(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	// Data already in flight is discarded, not drained: that is the
	// difference between Kill (reset) and Close (orderly EOF).
	if _, err := a.Write(make([]byte, 4<<10)); err != nil {
		t.Fatal(err)
	}
	a.Kill()

	if _, err := b.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Fatalf("peer read after Kill = %v, want ErrReset", err)
	}
	if _, err := a.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Fatalf("local read after Kill = %v, want ErrReset", err)
	}
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("peer write after Kill succeeded")
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("local write after Kill succeeded")
	}
}

func TestKillUnblocksPendingRead(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	errc := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reader block
	a.Kill()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrReset) {
			t.Fatalf("blocked read woke with %v, want ErrReset", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Kill did not unblock a pending read")
	}
}

func TestFlakyDialer(t *testing.T) {
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		a, _ := Pipe(0, nil, nil)
		return a, nil
	}
	flaky := FlakyDialer(dial, 2)
	for i := 0; i < 2; i++ {
		if _, err := flaky(); !errors.Is(err, ErrDialFault) {
			t.Fatalf("attempt %d = %v, want ErrDialFault", i, err)
		}
	}
	if dials != 0 {
		t.Fatalf("inner dialer reached during injected failures (%d)", dials)
	}
	for i := 0; i < 3; i++ {
		c, err := flaky()
		if err != nil {
			t.Fatalf("post-failure attempt %d: %v", i, err)
		}
		c.Close()
	}
	if dials != 3 {
		t.Fatalf("inner dials = %d, want 3", dials)
	}
}
