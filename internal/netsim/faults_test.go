package netsim

import (
	"io"
	"testing"
	"time"
)

func TestJitterDelaysDelivery(t *testing.T) {
	const base = 5 * time.Millisecond
	const spread = 40 * time.Millisecond
	a, b := Pipe(base, nil, nil)
	a.WithJitter(NewJitter(spread, 1))
	defer a.Close()
	defer b.Close()

	// Across several messages at least one must arrive later than the
	// base latency alone would allow.
	slow := 0
	for i := 0; i < 8; i++ {
		start := time.Now()
		go a.Write([]byte{1})
		buf := make([]byte, 1)
		if _, err := io.ReadFull(b, buf); err != nil {
			t.Fatal(err)
		}
		el := time.Since(start)
		if el < base {
			t.Fatalf("message %d arrived before the base latency: %v", i, el)
		}
		if el > base+spread/4 {
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("jitter never delayed a delivery")
	}
}

func TestJitterDeterministic(t *testing.T) {
	j1 := NewJitter(time.Second, 42)
	j2 := NewJitter(time.Second, 42)
	for i := 0; i < 10; i++ {
		if j1.delay() != j2.delay() {
			t.Fatal("same seed produced different jitter")
		}
	}
	var nilJ *Jitter
	if nilJ.delay() != 0 {
		t.Fatal("nil jitter must be zero")
	}
}

func TestFaultClose(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	defer b.Close()
	fired := a.FaultAfter(100<<10, FaultClose)

	var total int
	var err error
	buf := make([]byte, 32<<10)
	go io.Copy(io.Discard, b)
	for i := 0; i < 100; i++ {
		var n int
		n, err = a.Write(buf)
		total += n
		if err != nil {
			break
		}
	}
	if err != ErrClosed {
		t.Fatalf("write after fault = %v, want ErrClosed", err)
	}
	select {
	case <-fired:
	default:
		t.Fatal("fault channel not closed")
	}
	if total > 200<<10 {
		t.Fatalf("fault fired too late: %d bytes", total)
	}
}

func TestFaultCloseUnblocksPeer(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	a.FaultAfter(10, FaultClose)
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, b)
		done <- err
	}()
	a.Write(make([]byte, 64<<10))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("peer copy error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer read never terminated after fault")
	}
}

func TestFaultStall(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	defer a.Close()
	defer b.Close()
	a.FaultAfter(1<<10, FaultStall)

	// Writes keep "succeeding" (black hole) ...
	for i := 0; i < 4; i++ {
		if _, err := a.Write(make([]byte, 1<<10)); err != nil {
			t.Fatalf("stalled write errored: %v", err)
		}
	}
	// ... but no data beyond the budget arrives.
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 16<<10)
		n, _ := io.ReadFull(b, buf[:2<<10])
		got <- n
	}()
	select {
	case n := <-got:
		t.Fatalf("read returned %d bytes through a stalled path", n)
	case <-time.After(100 * time.Millisecond):
		// expected: reader is stuck until the owner closes
	}
	a.Close()
}

func TestNetworkJitterWiring(t *testing.T) {
	prof := Loopback()
	prof.LatencyJitter = 10 * time.Millisecond
	n := NewNetwork(prof, 1)
	c, s := n.Dial(0)
	defer c.Close()
	defer s.Close()
	if c.(*Conn).jitter == nil || s.(*Conn).jitter == nil {
		t.Fatal("network did not wire jitter into the connection")
	}
	p2 := prof.Scaled(10)
	if p2.LatencyJitter != time.Millisecond {
		t.Fatalf("jitter not scaled: %v", p2.LatencyJitter)
	}
}
