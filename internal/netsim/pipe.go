package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"semplar/internal/trace"
)

// ErrClosed is returned for operations on a closed shaped connection.
var ErrClosed = errors.New("netsim: connection closed")

// chunkSize is the granularity at which writes are serialized through the
// limiters. Small enough that concurrent streams interleave fairly, large
// enough that per-chunk sleep overshoot stays negligible relative to the
// chunk's own serialization time.
const chunkSize = 64 << 10

// maxInflight bounds the bytes buffered between a sender and its peer's
// reader, standing in for the TCP send/receive buffers. Writers block once
// the peer falls this far behind, which is the flow control that keeps a
// fast producer from absorbing an entire file into memory.
const maxInflight = 4 << 20

type segment struct {
	data []byte
	at   time.Time // earliest delivery time (send completion + latency)
}

// halfPipe is the receive queue of one direction of a Conn.
type halfPipe struct {
	mu       sync.Mutex
	cond     *sync.Cond // signals segs/closed/rerr changes; immutable after newHalfPipe
	segs     []segment  // guarded by mu
	buffered int        // guarded by mu; bytes queued and not yet read
	closed   bool       // guarded by mu; write side closed: drain then EOF
	rerr     error      // guarded by mu; read side closed: fail immediately
}

func newHalfPipe() *halfPipe {
	h := &halfPipe{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *halfPipe) read(p []byte) (int, error) {
	h.mu.Lock()
	for {
		if h.rerr != nil {
			err := h.rerr // snapshot under mu: closeRead mutates rerr concurrently
			h.mu.Unlock()
			return 0, err
		}
		if len(h.segs) > 0 {
			arrived := now()
			if head := h.segs[0]; head.at.After(arrived) {
				// Head not yet "arrived": wait out the latency
				// without holding the lock.
				h.mu.Unlock()
				sleep(head.at.Sub(arrived))
				h.mu.Lock()
				continue
			}
			// Drain every segment that has already arrived, so a
			// large read pays at most one latency sleep.
			n := 0
			for n < len(p) && len(h.segs) > 0 && !h.segs[0].at.After(arrived) {
				seg := h.segs[0]
				c := copy(p[n:], seg.data)
				n += c
				if c == len(seg.data) {
					h.segs[0].data = nil
					h.segs = h.segs[1:]
				} else {
					h.segs[0].data = seg.data[c:]
				}
			}
			h.buffered -= n
			h.cond.Broadcast() // wake writers blocked on flow control
			h.mu.Unlock()
			return n, nil
		}
		if h.closed {
			h.mu.Unlock()
			return 0, io.EOF
		}
		h.cond.Wait()
	}
}

// push enqueues data for delivery at time at, blocking while the inflight
// window is full. It reports false if the receiving side has been closed.
func (h *halfPipe) push(data []byte, at time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.buffered >= maxInflight && h.rerr == nil && !h.closed {
		h.cond.Wait()
	}
	if h.rerr != nil || h.closed {
		return false
	}
	h.segs = append(h.segs, segment{data: data, at: at})
	h.buffered += len(data)
	h.cond.Broadcast()
	return true
}

func (h *halfPipe) closeWrite() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *halfPipe) closeRead(err error) {
	h.mu.Lock()
	h.rerr = err
	h.segs = nil
	h.buffered = 0
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Conn is one endpoint of a shaped duplex pipe. It implements net.Conn so
// the SRB client and server run unchanged over real TCP or the simulator.
type Conn struct {
	name    string
	recv    *halfPipe // data arriving at this endpoint
	peer    *halfPipe // data departing toward the other endpoint
	latency time.Duration
	lims    []Stage // serialization stages on the send path
	jitter  *Jitter // optional extra delivery delay

	// spike, when non-nil, points at a shared extra one-way latency in
	// nanoseconds added to every delivery (a routing flap / congestion
	// event injected by the chaos scheduler). Immutable after Dial; the
	// pointed-at value is atomic.
	spike *atomic.Int64

	faultMu     sync.Mutex
	faultArmed  bool          // guarded by faultMu
	faultBudget int           // guarded by faultMu
	faultMode   FaultMode     // guarded by faultMu
	faultFired  chan struct{} // guarded by faultMu
	stalled     bool          // guarded by faultMu

	closeOnce sync.Once
	onClose   func()

	// Trace hookup, set by Network.Dial before the conn is handed out.
	tr    *trace.Tracer
	txCtr string // silent counter name for bytes sent from this endpoint
}

var _ net.Conn = (*Conn)(nil)

// Pipe returns a connected pair of shaped endpoints. Data written on a
// flows to b after being serialized through aToB's limiters plus the
// one-way latency, and symmetrically for b.
func Pipe(latency time.Duration, aToB, bToA []Stage) (a, b *Conn) {
	ab := newHalfPipe() // data heading to b
	ba := newHalfPipe() // data heading to a
	a = &Conn{name: "a", recv: ba, peer: ab, latency: latency, lims: aToB}
	b = &Conn{name: "b", recv: ab, peer: ba, latency: latency, lims: bToA}
	return a, b
}

// Read reads delivered bytes, blocking until data arrives or the peer
// closes the connection.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return c.recv.read(p)
}

// Write shapes p through the send-path limiters in chunkSize pieces and
// schedules each piece for delivery one latency later.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > chunkSize {
			n = chunkSize
		}
		if wait := reserveAll(c.lims, n, now()); wait > 0 {
			sleep(wait)
		}
		proceed, stalled := c.consumeFaultBudget(n)
		if !proceed {
			if stalled {
				// Black hole: pretend the write succeeded.
				p = p[n:]
				total += n
				continue
			}
			return total, ErrClosed
		}
		data := make([]byte, n)
		copy(data, p[:n])
		oneWay := c.latency + c.jitter.delay()
		if c.spike != nil {
			oneWay += time.Duration(c.spike.Load())
		}
		if !c.peer.push(data, now().Add(oneWay)) {
			return total, ErrClosed
		}
		c.tr.Count(c.txCtr, int64(n))
		p = p[n:]
		total += n
	}
	return total, nil
}

// Close tears down both directions at this endpoint: the peer drains what
// was already sent and then sees EOF; local reads fail immediately.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.peer.closeWrite()
		c.recv.closeRead(ErrClosed)
		if c.onClose != nil {
			c.onClose()
		}
	})
	return nil
}

// OnClose registers a hook invoked once when the connection closes.
func (c *Conn) OnClose(fn func()) { c.onClose = fn }

type simAddr string

func (a simAddr) Network() string { return "netsim" }
func (a simAddr) String() string  { return string(a) }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return simAddr("sim:" + c.name) }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return simAddr("sim:peer") }

// SetDeadline is accepted but not enforced; the simulator's traffic always
// progresses, so deadlines are unnecessary for the protocols built on it.
func (c *Conn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn as a no-op.
func (c *Conn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn as a no-op.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }
