package netsim

import (
	"math/rand"
	"sort"
	"time"
)

// This file is the deterministic chaos scheduler: a seeded generator of
// fault timelines (connection kills, partitions, latency spikes, server
// kill/restart pairs) and a runner that injects them against an Injector.
// The same seed always yields the same schedule, so a chaos failure
// reproduces from its seed alone; the runner's real-time sleeps go
// through the clock funnel like everything else in the package.

// FaultKind identifies one kind of scheduled fault event.
type FaultKind uint8

// Fault kinds.
const (
	// FaultKillConns resets every live connection of one node (RST).
	FaultKillConns FaultKind = iota + 1
	// FaultPartition cuts one node off for Dur: established connections
	// reset, new dials fail until the window elapses.
	FaultPartition
	// FaultSpike sets the network-wide extra one-way latency to Extra
	// (zero Extra clears a previous spike).
	FaultSpike
	// FaultServerKill crashes the server: all connections reset and the
	// MCAT stops journaling (simulated process death).
	FaultServerKill
	// FaultServerRestart brings a fresh server up from the journal.
	FaultServerRestart
)

func (k FaultKind) String() string {
	switch k {
	case FaultKillConns:
		return "kill-conns"
	case FaultPartition:
		return "partition"
	case FaultSpike:
		return "latency-spike"
	case FaultServerKill:
		return "server-kill"
	case FaultServerRestart:
		return "server-restart"
	}
	return "fault(?)"
}

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	At    time.Duration // offset from schedule start
	Kind  FaultKind
	Node  int           // FaultKillConns, FaultPartition
	Dur   time.Duration // FaultPartition window
	Extra time.Duration // FaultSpike magnitude (0 = clear)
}

// Schedule is a fault timeline ordered by At.
type Schedule []FaultEvent

// Injector executes fault events against a system under test.
// *Network implements the connection-level verbs; a cluster testbed
// implements all five.
type Injector interface {
	KillConns(node int)
	Partition(node int, d time.Duration)
	LatencySpike(extra time.Duration)
	KillServer()
	RestartServer()
}

// ChaosConfig sizes a generated schedule. Counts of zero omit that fault
// class entirely.
type ChaosConfig struct {
	Nodes   int           // cluster size faults are drawn over (min 1)
	Horizon time.Duration // total span events are placed in (default 1s)

	ConnKills int // connection resets at uniform times on random nodes

	Partitions   int           // partition windows on random nodes
	PartitionDur time.Duration // length of each window (default Horizon/10)

	Spikes   int           // latency-spike windows (each gets a clear event)
	SpikeMax time.Duration // spike magnitude drawn from (0, SpikeMax]
	SpikeDur time.Duration // spike length (default Horizon/10)

	ServerKills    int           // server kill+restart pairs, evenly spread
	ServerDowntime time.Duration // gap between a kill and its restart (default Horizon/20)
}

// GenSchedule deterministically generates a fault schedule from a seed.
// Every FaultServerKill is followed by its FaultServerRestart (downtime
// windows never overlap another kill), so a schedule run to completion
// always leaves the server up.
func GenSchedule(seed int64, cfg ChaosConfig) Schedule {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = time.Second
	}
	if cfg.PartitionDur <= 0 {
		cfg.PartitionDur = cfg.Horizon / 10
	}
	if cfg.SpikeDur <= 0 {
		cfg.SpikeDur = cfg.Horizon / 10
	}
	if cfg.ServerDowntime <= 0 {
		cfg.ServerDowntime = cfg.Horizon / 20
	}

	var s Schedule
	uniform := func(span time.Duration) time.Duration {
		if span <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(span)))
	}
	for i := 0; i < cfg.ConnKills; i++ {
		s = append(s, FaultEvent{At: uniform(cfg.Horizon),
			Kind: FaultKillConns, Node: rng.Intn(cfg.Nodes)})
	}
	for i := 0; i < cfg.Partitions; i++ {
		s = append(s, FaultEvent{At: uniform(cfg.Horizon - cfg.PartitionDur),
			Kind: FaultPartition, Node: rng.Intn(cfg.Nodes), Dur: cfg.PartitionDur})
	}
	for i := 0; i < cfg.Spikes; i++ {
		at := uniform(cfg.Horizon - cfg.SpikeDur)
		extra := cfg.SpikeMax
		if extra > 0 {
			extra = time.Duration(1 + rng.Int63n(int64(cfg.SpikeMax)))
		}
		s = append(s, FaultEvent{At: at, Kind: FaultSpike, Extra: extra})
		s = append(s, FaultEvent{At: at + cfg.SpikeDur, Kind: FaultSpike, Extra: 0})
	}
	// Server kills get one slot each so a downtime window never swallows
	// the next kill; the restart always lands inside its own slot.
	for i := 0; i < cfg.ServerKills; i++ {
		slot := cfg.Horizon / time.Duration(cfg.ServerKills)
		lo := time.Duration(i) * slot
		span := slot - cfg.ServerDowntime
		if span <= 0 {
			span = slot / 2
		}
		at := lo + uniform(span)
		s = append(s, FaultEvent{At: at, Kind: FaultServerKill})
		s = append(s, FaultEvent{At: at + cfg.ServerDowntime, Kind: FaultServerRestart})
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}

// Run plays the schedule against inj in real (simulator) time, sleeping
// between events. It returns true when every event has fired, false when
// stop closed first. Callers that abort a run early are responsible for
// the system's final state (e.g. a server left killed); running to
// completion always restarts the server (see GenSchedule).
func (s Schedule) Run(stop <-chan struct{}, inj Injector) bool {
	start := now()
	for _, ev := range s {
		if !sleepOrStop(ev.At-now().Sub(start), stop) {
			return false
		}
		switch ev.Kind {
		case FaultKillConns:
			inj.KillConns(ev.Node)
		case FaultPartition:
			inj.Partition(ev.Node, ev.Dur)
		case FaultSpike:
			inj.LatencySpike(ev.Extra)
		case FaultServerKill:
			inj.KillServer()
		case FaultServerRestart:
			inj.RestartServer()
		}
	}
	return true
}
