package netsim

import (
	"math/rand"
	"sort"
	"time"
)

// This file is the deterministic chaos scheduler: a seeded generator of
// fault timelines (connection kills, partitions, latency spikes, server
// kill/restart pairs) and a runner that injects them against an Injector.
// The same seed always yields the same schedule, so a chaos failure
// reproduces from its seed alone; the runner's real-time sleeps go
// through the clock funnel like everything else in the package.

// FaultKind identifies one kind of scheduled fault event.
type FaultKind uint8

// Fault kinds.
const (
	// FaultKillConns resets every live connection of one node (RST).
	FaultKillConns FaultKind = iota + 1
	// FaultPartition cuts one node off for Dur: established connections
	// reset, new dials fail until the window elapses.
	FaultPartition
	// FaultSpike sets the network-wide extra one-way latency to Extra
	// (zero Extra clears a previous spike).
	FaultSpike
	// FaultServerKill crashes the server: all connections reset and the
	// MCAT stops journaling (simulated process death).
	FaultServerKill
	// FaultServerRestart brings a fresh server up from the journal.
	FaultServerRestart
	// FaultShardKill crashes one server shard of a federated fleet
	// (Node carries the shard index): only that shard's connections
	// reset, the rest of the fleet keeps serving.
	FaultShardKill
	// FaultShardRestart brings the shard (Node) back up from its journal.
	FaultShardRestart
	// FaultShardPartition cuts one shard (Node) off the network for Dur:
	// its connections reset and dials toward it fail until the window
	// elapses, but the shard process stays alive.
	FaultShardPartition
)

func (k FaultKind) String() string {
	switch k {
	case FaultKillConns:
		return "kill-conns"
	case FaultPartition:
		return "partition"
	case FaultSpike:
		return "latency-spike"
	case FaultServerKill:
		return "server-kill"
	case FaultServerRestart:
		return "server-restart"
	case FaultShardKill:
		return "shard-kill"
	case FaultShardRestart:
		return "shard-restart"
	case FaultShardPartition:
		return "shard-partition"
	}
	return "fault(?)"
}

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	At    time.Duration // offset from schedule start
	Kind  FaultKind
	Node  int           // FaultKillConns, FaultPartition; shard index for FaultShard*
	Dur   time.Duration // FaultPartition window
	Extra time.Duration // FaultSpike magnitude (0 = clear)
}

// Schedule is a fault timeline ordered by At.
type Schedule []FaultEvent

// Injector executes fault events against a system under test.
// *Network implements the connection-level verbs; a cluster testbed
// implements all five.
type Injector interface {
	KillConns(node int)
	Partition(node int, d time.Duration)
	LatencySpike(extra time.Duration)
	KillServer()
	RestartServer()
}

// ShardInjector is the federated extension of Injector: fault verbs scoped
// to one server shard of a fleet. The runner downgrades shard events to
// whole-server events on plain Injectors, so a single-server testbed can
// still run a schedule that was generated with shard faults.
type ShardInjector interface {
	Injector
	KillShard(shard int)
	RestartShard(shard int)
	PartitionShard(shard int, d time.Duration)
}

// ChaosConfig sizes a generated schedule. Counts of zero omit that fault
// class entirely.
type ChaosConfig struct {
	Nodes   int           // cluster size faults are drawn over (min 1)
	Horizon time.Duration // total span events are placed in (default 1s)

	ConnKills int // connection resets at uniform times on random nodes

	Partitions   int           // partition windows on random nodes
	PartitionDur time.Duration // length of each window (default Horizon/10)

	Spikes   int           // latency-spike windows (each gets a clear event)
	SpikeMax time.Duration // spike magnitude drawn from (0, SpikeMax]
	SpikeDur time.Duration // spike length (default Horizon/10)

	ServerKills    int           // server kill+restart pairs, evenly spread
	ServerDowntime time.Duration // gap between a kill and its restart (default Horizon/20)

	Shards        int           // federated fleet size shard faults are drawn over (min 1)
	ShardKills    int           // shard kill+restart pairs on random shards, evenly spread
	ShardDowntime time.Duration // gap between a shard kill and its restart (default Horizon/20)

	ShardPartitions   int           // shard partition windows on random shards
	ShardPartitionDur time.Duration // length of each window (default Horizon/10)
}

// GenSchedule deterministically generates a fault schedule from a seed.
// Every FaultServerKill is followed by its FaultServerRestart (downtime
// windows never overlap another kill), so a schedule run to completion
// always leaves the server up.
func GenSchedule(seed int64, cfg ChaosConfig) Schedule {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = time.Second
	}
	if cfg.PartitionDur <= 0 {
		cfg.PartitionDur = cfg.Horizon / 10
	}
	if cfg.SpikeDur <= 0 {
		cfg.SpikeDur = cfg.Horizon / 10
	}
	if cfg.ServerDowntime <= 0 {
		cfg.ServerDowntime = cfg.Horizon / 20
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.ShardDowntime <= 0 {
		cfg.ShardDowntime = cfg.Horizon / 20
	}
	if cfg.ShardPartitionDur <= 0 {
		cfg.ShardPartitionDur = cfg.Horizon / 10
	}

	var s Schedule
	uniform := func(span time.Duration) time.Duration {
		if span <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(span)))
	}
	for i := 0; i < cfg.ConnKills; i++ {
		s = append(s, FaultEvent{At: uniform(cfg.Horizon),
			Kind: FaultKillConns, Node: rng.Intn(cfg.Nodes)})
	}
	for i := 0; i < cfg.Partitions; i++ {
		s = append(s, FaultEvent{At: uniform(cfg.Horizon - cfg.PartitionDur),
			Kind: FaultPartition, Node: rng.Intn(cfg.Nodes), Dur: cfg.PartitionDur})
	}
	for i := 0; i < cfg.Spikes; i++ {
		at := uniform(cfg.Horizon - cfg.SpikeDur)
		extra := cfg.SpikeMax
		if extra > 0 {
			extra = time.Duration(1 + rng.Int63n(int64(cfg.SpikeMax)))
		}
		s = append(s, FaultEvent{At: at, Kind: FaultSpike, Extra: extra})
		s = append(s, FaultEvent{At: at + cfg.SpikeDur, Kind: FaultSpike, Extra: 0})
	}
	// Server kills get one slot each so a downtime window never swallows
	// the next kill; the restart always lands inside its own slot.
	for i := 0; i < cfg.ServerKills; i++ {
		slot := cfg.Horizon / time.Duration(cfg.ServerKills)
		lo := time.Duration(i) * slot
		span := slot - cfg.ServerDowntime
		if span <= 0 {
			span = slot / 2
		}
		at := lo + uniform(span)
		s = append(s, FaultEvent{At: at, Kind: FaultServerKill})
		s = append(s, FaultEvent{At: at + cfg.ServerDowntime, Kind: FaultServerRestart})
	}
	// Shard kills: same slotting discipline, plus a shard draw per kill.
	// This class draws from the rng strictly after every earlier class, so
	// adding shard faults to a config never perturbs the schedule an
	// existing seed produced for the established classes.
	for i := 0; i < cfg.ShardKills; i++ {
		slot := cfg.Horizon / time.Duration(cfg.ShardKills)
		lo := time.Duration(i) * slot
		span := slot - cfg.ShardDowntime
		if span <= 0 {
			span = slot / 2
		}
		at := lo + uniform(span)
		shard := rng.Intn(cfg.Shards)
		s = append(s, FaultEvent{At: at, Kind: FaultShardKill, Node: shard})
		s = append(s, FaultEvent{At: at + cfg.ShardDowntime, Kind: FaultShardRestart, Node: shard})
	}
	// Shard partitions draw strictly after shard kills, preserving every
	// earlier class's schedule for existing seeds (same discipline as
	// above). The window is self-clearing, so no paired restore event.
	for i := 0; i < cfg.ShardPartitions; i++ {
		s = append(s, FaultEvent{At: uniform(cfg.Horizon - cfg.ShardPartitionDur),
			Kind: FaultShardPartition, Node: rng.Intn(cfg.Shards), Dur: cfg.ShardPartitionDur})
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}

// Run plays the schedule against inj in real (simulator) time, sleeping
// between events. It returns true when every event has fired, false when
// stop closed first. Callers that abort a run early are responsible for
// the system's final state (e.g. a server left killed); running to
// completion always restarts the server (see GenSchedule).
func (s Schedule) Run(stop <-chan struct{}, inj Injector) bool {
	start := now()
	for _, ev := range s {
		if !sleepOrStop(ev.At-now().Sub(start), stop) {
			return false
		}
		switch ev.Kind {
		case FaultKillConns:
			inj.KillConns(ev.Node)
		case FaultPartition:
			inj.Partition(ev.Node, ev.Dur)
		case FaultSpike:
			inj.LatencySpike(ev.Extra)
		case FaultServerKill:
			inj.KillServer()
		case FaultServerRestart:
			inj.RestartServer()
		case FaultShardKill:
			if si, ok := inj.(ShardInjector); ok {
				si.KillShard(ev.Node)
			} else {
				inj.KillServer() // single-server downgrade
			}
		case FaultShardRestart:
			if si, ok := inj.(ShardInjector); ok {
				si.RestartShard(ev.Node)
			} else {
				inj.RestartServer()
			}
		case FaultShardPartition:
			if si, ok := inj.(ShardInjector); ok {
				si.PartitionShard(ev.Node, ev.Dur)
			} else {
				// Single-server downgrade: cutting the only shard off is a
				// momentary whole-server outage. A kill/restart pair resets
				// every established stream at the window's onset; redials
				// then succeed (the downgrade keeps the blip, not the
				// window, since plain Injectors have no dial-blocking verb).
				inj.KillServer()
				inj.RestartServer()
			}
		}
	}
	return true
}
