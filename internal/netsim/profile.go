package netsim

import "time"

// Byte-rate convenience units (bytes per second).
const (
	KBps = 1 << 10
	MBps = 1 << 20
	GBps = 1 << 30
)

// Profile parameterizes the network path between one client cluster and the
// SRB server, mirroring the three testbeds of Section 5.
type Profile struct {
	Name string

	// OneWay is the one-way WAN latency between cluster and server.
	OneWay time.Duration

	// LatencyJitter adds U(0, LatencyJitter) to each delivery. Distinct
	// streams draw independent samples, so redundant transfers on
	// multiple streams see different arrival times (Section 4.1).
	LatencyJitter time.Duration

	// Window is the TCP window per stream in bytes. Steady-state
	// throughput of a single stream is min(LinkRate, Window/RTT); the
	// 2006-era untuned default of 64 KiB is what makes one stream far
	// slower than the path and the split-TCP optimization worthwhile.
	Window int

	// LinkRate is the per-node Ethernet NIC rate toward the WAN.
	LinkRate float64

	// PathUpRate / PathDownRate are the shared wide-area capacities in
	// the client->server and server->client directions. Uplinks of the
	// era were the tighter of the two, which is what caps write gains
	// below read gains in Figure 8. Zero means unlimited.
	PathUpRate   float64
	PathDownRate float64

	// NATRate, when non-zero, is the aggregate capacity of a NAT host
	// all node connections must traverse (the OSC P4 configuration).
	NATRate float64

	// ServerNICRate is the aggregate capacity of the server's network
	// interfaces (orion.sdsc.edu had 6 data GigE ports).
	ServerNICRate float64

	// BusRate is the per-node I/O bus capacity shared by the MPI
	// interconnect and the Ethernet NIC. Zero disables bus contention.
	BusRate float64

	// BusPenalty is the fractional extra cost per byte while both bus
	// traffic classes are concurrently active (arbitration, interrupt
	// overhead). Zero means a default of 1.0 when BusRate is set.
	BusPenalty float64

	// ICRate and ICLatency describe the MPI interconnect (Myrinet on
	// DAS-2, Gigabit elsewhere): per-node injection rate and small
	// message latency.
	ICRate    float64
	ICLatency time.Duration
}

// RTT returns the round-trip time of the WAN path.
func (p Profile) RTT() time.Duration { return 2 * p.OneWay }

// StreamRate returns the steady-state throughput of one TCP stream:
// min(LinkRate, Window/RTT).
func (p Profile) StreamRate() float64 {
	if p.RTT() <= 0 {
		return p.LinkRate
	}
	wr := float64(p.Window) / p.RTT().Seconds()
	if p.LinkRate > 0 && p.LinkRate < wr {
		return p.LinkRate
	}
	return wr
}

// Scaled returns a profile whose time constants are divided by f and whose
// rates are multiplied by f. Every bandwidth ratio in the system — stream
// vs. path, path vs. device, interconnect vs. NIC — is preserved, so the
// shape of each experiment survives while wall-clock time shrinks by f.
func (p Profile) Scaled(f float64) Profile {
	if f <= 0 || f == 1 {
		return p
	}
	q := p
	q.OneWay = time.Duration(float64(p.OneWay) / f)
	q.LatencyJitter = time.Duration(float64(p.LatencyJitter) / f)
	q.ICLatency = time.Duration(float64(p.ICLatency) / f)
	q.LinkRate *= f
	q.PathUpRate *= f
	q.PathDownRate *= f
	q.NATRate *= f
	q.ServerNICRate *= f
	q.BusRate *= f
	q.ICRate *= f
	return q
}

// The three testbeds of Section 5, parameterized at "real" (unscaled)
// magnitudes. Harnesses normally run them through Scaled().

// DAS2 is the Vrije Universiteit cluster: ~182 ms RTT transoceanic path,
// 100 Mb/s node links, Myrinet interconnect. High latency, low bandwidth.
func DAS2() Profile {
	return Profile{
		Name:          "DAS-2",
		OneWay:        91 * time.Millisecond,
		Window:        64 << 10,
		LinkRate:      12.5 * MBps, // 100 Mb/s Fast Ethernet
		PathUpRate:    4 * MBps,    // transoceanic uplink share
		PathDownRate:  30 * MBps,
		ServerNICRate: 750 * MBps, // 6 x GigE on orion
		ICRate:        240 * MBps, // Myrinet
		ICLatency:     8 * time.Microsecond,
	}
}

// OSC is the Ohio Supercomputer Center P4 Xeon cluster: ~30 ms RTT to SDSC,
// nodes behind a NAT host that serializes all outside traffic.
func OSC() Profile {
	return Profile{
		Name:          "OSC",
		OneWay:        15 * time.Millisecond,
		Window:        64 << 10,
		LinkRate:      125 * MBps, // GigE
		PathUpRate:    40 * MBps,
		PathDownRate:  80 * MBps,
		NATRate:       12 * MBps, // shared NAT host
		ServerNICRate: 750 * MBps,
		ICRate:        125 * MBps,
		ICLatency:     20 * time.Microsecond,
	}
}

// TGNCSA is the NCSA TeraGrid cluster: ~30 ms RTT over the 40 Gb/s TeraGrid
// backbone, GigE node links.
func TGNCSA() Profile {
	return Profile{
		Name:          "TG-NCSA",
		OneWay:        15 * time.Millisecond,
		Window:        64 << 10,
		LinkRate:      125 * MBps,
		PathUpRate:    12 * MBps, // server-side ingest share
		PathDownRate:  30 * MBps,
		ServerNICRate: 750 * MBps,
		ICRate:        125 * MBps,
		ICLatency:     20 * time.Microsecond,
	}
}

// Profiles returns the three paper testbeds in presentation order.
func Profiles() []Profile { return []Profile{DAS2(), OSC(), TGNCSA()} }

// Loopback is an essentially unconstrained profile for functional tests.
func Loopback() Profile {
	return Profile{Name: "loopback", Window: 1 << 30}
}
