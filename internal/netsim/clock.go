package netsim

import "time"

// The simulator models elapsed time with the host clock: limiters compute
// how long a transfer would take and the pipes sleep it off. Every wall
// clock read and every sleep in the package funnels through this file so
// that (a) the determinism analyzer (semplarvet) can ban stray
// time.Now/time.Sleep elsewhere in the package, and (b) a future virtual
// clock only has to replace these two functions. Randomness is handled the
// same way: all jitter draws come from per-connection seeded *rand.Rand
// sources (see Jitter), never the global math/rand state.

// now returns the simulator's current time.
func now() time.Time { return time.Now() }

// sleep pauses the calling goroutine for d; d <= 0 is a no-op.
func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// sleepOrStop pauses for d but returns early, reporting false, when stop
// is closed. The chaos schedule runner uses it so a finished workload can
// cancel pending fault events without waiting out the whole horizon.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
