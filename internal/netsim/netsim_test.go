package netsim

import (
	"bytes"
	"io"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLimiterUnlimited(t *testing.T) {
	var nilLim *Limiter
	if d := nilLim.Reserve(1<<20, time.Now()); d != 0 {
		t.Fatalf("nil limiter reserved %v, want 0", d)
	}
	l := NewLimiter(0)
	if d := l.Reserve(1<<20, time.Now()); d != 0 {
		t.Fatalf("unlimited limiter reserved %v, want 0", d)
	}
}

func TestLimiterRate(t *testing.T) {
	l := NewLimiter(1 * MBps)
	now := time.Now()
	// 1 MiB at 1 MiB/s takes 1 s.
	d := l.Reserve(1<<20, now)
	if got, want := d.Seconds(), 1.0; math.Abs(got-want) > 0.01 {
		t.Fatalf("reserve of 1MiB at 1MiB/s = %v, want ~1s", d)
	}
	// A second reservation queues behind the first.
	d2 := l.Reserve(1<<19, now)
	if got, want := d2.Seconds(), 1.5; math.Abs(got-want) > 0.01 {
		t.Fatalf("second reserve = %v, want ~1.5s", d2)
	}
}

func TestLimiterIdleResets(t *testing.T) {
	l := NewLimiter(1 * MBps)
	now := time.Now()
	l.Reserve(1<<20, now)
	// After the virtual clock has passed, a new reservation starts fresh.
	later := now.Add(5 * time.Second)
	d := l.Reserve(1<<20, later)
	if got := d.Seconds(); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("reserve after idle = %v, want ~1s", d)
	}
}

func TestLimiterMonotonic(t *testing.T) {
	// Property: cumulative wait for k reservations of n bytes is
	// k*n/rate regardless of how the bytes are split.
	f := func(parts []uint16) bool {
		l := NewLimiter(64 * MBps)
		now := time.Now()
		total := 0
		var last time.Duration
		for _, p := range parts {
			n := int(p)%8192 + 1
			total += n
			last = l.Reserve(n, now)
		}
		want := float64(total) / (64 * MBps)
		return math.Abs(last.Seconds()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLimiterConcurrentSafety(t *testing.T) {
	l := NewLimiter(1 * GBps)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Reserve(1024, time.Now())
			}
		}()
	}
	wg.Wait()
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	defer a.Close()
	defer b.Close()
	msg := []byte("hello remote i/o")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestPipeLargeTransferIntegrity(t *testing.T) {
	a, b := Pipe(time.Millisecond, []Stage{NewLimiter(256 * MBps)}, nil)
	defer a.Close()
	defer b.Close()
	const n = 6 << 20 // larger than maxInflight to exercise flow control
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i * 31)
	}
	go func() {
		a.Write(src)
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("corrupted transfer: %d bytes vs %d", len(got), len(src))
	}
}

func TestPipeLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	a, b := Pipe(lat, nil, nil)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < lat {
		t.Fatalf("delivery after %v, want >= %v", el, lat)
	}
}

func TestPipeBandwidth(t *testing.T) {
	rate := 8.0 * MBps
	a, b := Pipe(0, []Stage{NewLimiter(rate)}, nil)
	defer a.Close()
	defer b.Close()
	const n = 2 << 20 // 2 MiB at 8 MiB/s -> ~250 ms
	go func() {
		a.Write(make([]byte, n))
		a.Close()
	}()
	start := time.Now()
	if _, err := io.Copy(io.Discard, b); err != nil {
		t.Fatal(err)
	}
	el := time.Since(start).Seconds()
	want := float64(n) / rate
	if el < want*0.8 || el > want*2.0 {
		t.Fatalf("transfer took %.3fs, want ~%.3fs", el, want)
	}
}

func TestPipeCloseUnblocksReader(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("read after peer close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestPipeWriteAfterPeerClose(t *testing.T) {
	a, b := Pipe(0, nil, nil)
	b.Close()
	// The push may succeed for buffered data, but eventually errors.
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		_, err = a.Write(make([]byte, 1024))
	}
	if err == nil {
		t.Fatal("write into closed peer never failed")
	}
}

func TestSharedLimiterContention(t *testing.T) {
	// Two streams sharing one path limiter should together take about
	// twice as long as one stream alone.
	shared := NewLimiter(16 * MBps)
	const n = 1 << 20
	run := func(streams int) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < streams; i++ {
			a, b := Pipe(0, []Stage{shared}, nil)
			wg.Add(1)
			go func() {
				defer wg.Done()
				io.Copy(io.Discard, b)
			}()
			go func(a *Conn) {
				a.Write(make([]byte, n))
				a.Close()
			}(a)
		}
		wg.Wait()
		return time.Since(start)
	}
	one := run(1)
	two := run(2)
	if two < one*3/2 {
		t.Fatalf("shared path: 2 streams took %v vs 1 stream %v; expected ~2x", two, one)
	}
}

func TestProfileStreamRate(t *testing.T) {
	p := DAS2()
	// 64 KiB / 182 ms ~ 360 KB/s, far below the 12.5 MB/s link.
	got := p.StreamRate()
	want := float64(p.Window) / p.RTT().Seconds()
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("StreamRate = %v want %v", got, want)
	}
	if got > p.LinkRate {
		t.Fatal("window-limited rate should be below link rate on DAS-2")
	}
	lb := Loopback()
	if lb.StreamRate() != lb.LinkRate && lb.RTT() != 0 {
		t.Fatal("loopback should be link-limited")
	}
}

func TestProfileScaledPreservesRatios(t *testing.T) {
	p := DAS2()
	s := p.Scaled(10)
	if got, want := s.RTT(), p.RTT()/10; got != want {
		t.Fatalf("scaled RTT = %v want %v", got, want)
	}
	// StreamRate/PathUpRate ratio must be preserved.
	r0 := p.StreamRate() / p.PathUpRate
	r1 := s.StreamRate() / s.PathUpRate
	if math.Abs(r0-r1)/r0 > 1e-9 {
		t.Fatalf("scaling changed stream/path ratio: %v vs %v", r0, r1)
	}
	if q := p.Scaled(1); q != p {
		t.Fatal("Scaled(1) should be identity")
	}
}

func TestNetworkDialCounts(t *testing.T) {
	n := NewNetwork(Loopback(), 4)
	c, s := n.Dial(2)
	if n.Conns() != 1 {
		t.Fatalf("conns = %d want 1", n.Conns())
	}
	c.Close()
	s.Close()
	if n.Conns() != 0 {
		t.Fatalf("conns after close = %d want 0", n.Conns())
	}
	if n.Nodes() != 4 {
		t.Fatalf("nodes = %d", n.Nodes())
	}
}

func TestNetworkStreamWindowCap(t *testing.T) {
	// A single stream over a scaled DAS-2 path must run at ~window/RTT,
	// and two streams together at ~2x.
	prof := DAS2().Scaled(20)
	n := NewNetwork(prof, 1)
	const payload = 2 << 20

	oneStream := measureUp(t, n, 1, payload)
	twoStream := measureUp(t, n, 2, payload)
	if twoStream < oneStream*1.5 {
		t.Fatalf("2 streams = %.0f B/s vs 1 stream %.0f B/s; want ~2x", twoStream, oneStream)
	}
}

// measureUp pushes payload bytes from node 0 to the server over k parallel
// connections and returns aggregate bytes/sec.
func measureUp(t *testing.T, n *Network, k, payload int) float64 {
	t.Helper()
	// Establish connections before starting the clock so handshake
	// RTTs do not pollute the bandwidth measurement.
	conns := make([]*Conn, k)
	for i := range conns {
		c, s := n.Dial(0)
		conns[i] = c.(*Conn)
		defer s.Close()
		go io.Copy(io.Discard, s)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for _, c := range conns {
		wg.Add(1)
		go func(c *Conn) {
			defer wg.Done()
			c.Write(make([]byte, payload/k))
			c.Close()
		}(c)
	}
	wg.Wait()
	return float64(payload) / time.Since(start).Seconds()
}

func TestBusContention(t *testing.T) {
	// With a finite bus, concurrent interconnect traffic slows a WAN
	// transfer from the same node.
	prof := Loopback()
	prof.BusRate = 8 * MBps
	prof.ICRate = 1 * GBps
	n := NewNetwork(prof, 2)

	transfer := func(withMPI bool) time.Duration {
		c, s := n.Dial(0)
		defer s.Close()
		done := make(chan struct{})
		go func() {
			io.Copy(io.Discard, s)
			close(done)
		}()
		stop := make(chan struct{})
		if withMPI {
			go func() {
				fab := n.Interconnect()
				for {
					select {
					case <-stop:
						return
					default:
						fab.Transfer(0, 1, 256<<10)
					}
				}
			}()
		}
		start := time.Now()
		c.Write(make([]byte, 1<<20))
		c.Close()
		<-done
		close(stop)
		return time.Since(start)
	}

	alone := transfer(false)
	contended := transfer(true)
	if contended < alone*5/4 {
		t.Fatalf("bus contention had no effect: alone=%v contended=%v", alone, contended)
	}
}

func TestNullFabric(t *testing.T) {
	start := time.Now()
	NullFabric{}.Transfer(0, 1, 1<<30)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("NullFabric should be instantaneous")
	}
}
