// Package netsim emulates the wide-area network paths used in the paper's
// evaluation: the transoceanic DAS-2 link, the NAT-fronted OSC P4 cluster
// and the NCSA TeraGrid backbone.
//
// The emulation is deliberately mechanistic rather than statistical: bytes
// really flow through shaped in-memory pipes, so the asynchronous engine
// under test overlaps real waiting with real computation. Three mechanisms
// from the paper are modeled explicitly:
//
//   - per-TCP-stream throughput is capped at window/RTT (the reason the
//     paper's split-TCP optimization pays off),
//   - shared capacities (WAN path up/down, NAT host, server NIC) are token
//     buckets drawn by every stream that crosses them,
//   - each node has an I/O bus shared by the MPI interconnect and the
//     Ethernet NIC, reproducing the bus-contention result of Section 7.1.
package netsim

import (
	"sync"
	"time"
)

// Limiter paces byte flow at a fixed rate using a virtual transmission
// clock: each reservation schedules its bytes after all previously reserved
// bytes, exactly like frames serialized onto a link. A nil Limiter or a
// rate <= 0 imposes no delay.
type Limiter struct {
	mu   sync.Mutex
	rate float64   // bytes per second; immutable after NewLimiter
	next time.Time // guarded by mu
}

// NewLimiter returns a limiter that serializes traffic at bytesPerSec.
// bytesPerSec <= 0 means unlimited.
func NewLimiter(bytesPerSec float64) *Limiter {
	return &Limiter{rate: bytesPerSec}
}

// Rate reports the configured rate in bytes per second (0 = unlimited).
func (l *Limiter) Rate() float64 {
	if l == nil {
		return 0
	}
	return l.rate
}

// Reserve accounts for n bytes and returns how long the caller must wait,
// measured from now, until the transmission of those bytes completes.
func (l *Limiter) Reserve(n int, now time.Time) time.Duration {
	if l == nil || l.rate <= 0 || n <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next.Before(now) {
		l.next = now
	}
	l.next = l.next.Add(time.Duration(float64(n) / l.rate * float64(time.Second)))
	return l.next.Sub(now)
}

// Wait reserves n bytes and sleeps until their transmission completes.
func (l *Limiter) Wait(n int) {
	if d := l.Reserve(n, now()); d > 0 {
		sleep(d)
	}
}

// Stage is one serialization point on a transfer path: a link, a shared
// bottleneck, or a bus port.
type Stage interface {
	// Reserve accounts for n bytes and returns the wait until their
	// transmission through this stage completes.
	Reserve(n int, now time.Time) time.Duration
}

// reserveAll reserves n bytes on every stage and returns the longest
// wait. Reserving on all of them (rather than only the slowest) keeps every
// account current, which is how serial store-and-forward stages behave.
func reserveAll(ls []Stage, n int, now time.Time) time.Duration {
	var wait time.Duration
	for _, l := range ls {
		if d := l.Reserve(n, now); d > wait {
			wait = d
		}
	}
	return wait
}

// Traffic classes crossing a node's I/O bus.
const (
	BusClassIO  = 0 // Ethernet NIC: remote I/O traffic
	BusClassMPI = 1 // interconnect NIC: MPI traffic
)

// busContentionWindow is how recently the other class must have been
// active for a transfer to be considered concurrent. It must exceed the
// chunk cadence of a window-limited stream, or a paced transfer looks
// idle between its own chunks.
const busContentionWindow = 50 * time.Millisecond

// Bus models a node's local I/O bus. Both the MPI interconnect NIC and the
// Ethernet NIC sit on it, so overlapping MPI communication with remote I/O
// contends here even when the two networks themselves are separate — the
// counter-intuitive effect discussed in Section 7.1 of the paper.
//
// Real buses degrade under concurrent masters (arbitration, interrupts),
// so when both classes are active within a short window each byte is
// charged (1+Penalty)x. With Penalty = 0 sharing is fair and overlapping
// never loses to serializing; the paper's observed behavior needs the
// arbitration cost.
type Bus struct {
	lim     *Limiter
	penalty float64

	mu         sync.Mutex
	lastActive [2]time.Time // guarded by mu
}

// NewBus returns a bus with the given capacity in bytes per second.
// bytesPerSec <= 0 disables contention (infinite bus).
func NewBus(bytesPerSec float64) *Bus {
	return NewBusPenalty(bytesPerSec, 1.0)
}

// NewBusPenalty returns a bus with an explicit arbitration penalty: the
// fractional extra cost per byte while both traffic classes are active.
func NewBusPenalty(bytesPerSec, penalty float64) *Bus {
	if bytesPerSec <= 0 {
		return &Bus{}
	}
	return &Bus{lim: NewLimiter(bytesPerSec), penalty: penalty}
}

// Infinite reports whether the bus imposes no constraint.
func (b *Bus) Infinite() bool { return b == nil || b.lim == nil }

// Stage returns the bus port for one traffic class, for inclusion in a
// transfer path. Returns nil when the bus is infinite.
func (b *Bus) Stage(class int) Stage {
	if b.Infinite() {
		return nil
	}
	return &busPort{bus: b, class: class}
}

// reserve charges n bytes for the given class, applying the arbitration
// penalty when the other class is concurrently active.
func (b *Bus) reserve(class, n int, now time.Time) time.Duration {
	if b.Infinite() {
		return 0
	}
	b.mu.Lock()
	b.lastActive[class] = now
	contended := now.Sub(b.lastActive[1-class]) < busContentionWindow
	b.mu.Unlock()
	if contended && b.penalty > 0 {
		n = int(float64(n) * (1 + b.penalty))
	}
	return b.lim.Reserve(n, now)
}

// Transfer draws n bytes of the given class through the bus, sleeping as
// needed.
func (b *Bus) Transfer(class, n int) {
	if d := b.reserve(class, n, now()); d > 0 {
		sleep(d)
	}
}

type busPort struct {
	bus   *Bus
	class int
}

func (p *busPort) Reserve(n int, now time.Time) time.Duration {
	return p.bus.reserve(p.class, n, now)
}
