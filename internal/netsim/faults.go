package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Jitter adds random variation to one-way latency: each delivery is
// delayed by OneWay + U(0, Spread). Jitter is what makes redundant
// striping (Section 4.1's "first stream to arrive wins") pay off — on a
// deterministic path every replica arrives simultaneously.
type Jitter struct {
	Spread time.Duration
	Seed   int64

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu
}

// NewJitter returns a jitter source with a deterministic seed.
func NewJitter(spread time.Duration, seed int64) *Jitter {
	return &Jitter{Spread: spread, Seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// delay draws one extra latency sample.
func (j *Jitter) delay() time.Duration {
	if j == nil || j.Spread <= 0 {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rng == nil {
		j.rng = rand.New(rand.NewSource(j.Seed))
	}
	return time.Duration(j.rng.Int63n(int64(j.Spread) + 1))
}

// WithJitter attaches a jitter source to a connection's send path; every
// chunk's delivery time gains an independent sample.
func (c *Conn) WithJitter(j *Jitter) *Conn {
	c.jitter = j
	return c
}

// FaultMode selects how a faulty connection fails.
type FaultMode int

// Fault modes.
const (
	// FaultClose severs the connection: the peer sees EOF, local
	// operations fail (a WAN drop / server crash).
	FaultClose FaultMode = iota
	// FaultStall stops delivering data without closing (a black-holed
	// path); reads block until the connection is closed by its owner.
	FaultStall
)

// FaultAfter arranges for the connection to fail after approximately n
// more bytes have been written on it. It returns a channel closed when the
// fault fires. Used by failure-injection tests up and down the stack.
func (c *Conn) FaultAfter(n int, mode FaultMode) <-chan struct{} {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	c.faultBudget = n
	c.faultMode = mode
	c.faultArmed = true
	c.faultFired = make(chan struct{})
	return c.faultFired
}

// ErrReset is the error surfaced by both endpoints of a killed connection,
// modeling a TCP RST: in-flight data is discarded rather than drained.
var ErrReset = errors.New("netsim: connection reset")

// Kill severs the connection immediately in both directions. Unlike Close
// (an orderly shutdown: the peer drains buffered data, then sees EOF),
// Kill models a mid-transfer connection death — pending segments are
// dropped and reads on BOTH endpoints fail at once with ErrReset. Safe to
// call from any goroutine while transfers are in flight, which is exactly
// how failure-injection tests use it.
func (c *Conn) Kill() {
	c.closeOnce.Do(func() {
		c.peer.closeRead(ErrReset)
		c.recv.closeRead(ErrReset)
		if c.onClose != nil {
			c.onClose()
		}
	})
}

// ErrDialFault is the transient error injected by FlakyDialer.
var ErrDialFault = errors.New("netsim: transient dial failure")

// FlakyDialer wraps a dial function so that its first failures attempts
// fail with ErrDialFault before it starts succeeding — a server that is
// briefly unreachable (restart, route flap). It is safe for concurrent
// use.
func FlakyDialer(dial func() (net.Conn, error), failures int) func() (net.Conn, error) {
	var mu sync.Mutex
	remaining := failures
	return func() (net.Conn, error) {
		mu.Lock()
		fail := remaining > 0
		if fail {
			remaining--
		}
		mu.Unlock()
		if fail {
			return nil, fmt.Errorf("%w (injected)", ErrDialFault)
		}
		return dial()
	}
}

// consumeFaultBudget accounts outgoing bytes and triggers the fault when
// the budget is exhausted. It reports whether the write may proceed and,
// when it may not, whether the connection is black-holed (stalled) rather
// than severed — returned explicitly so the caller never reads the fault
// fields outside faultMu.
func (c *Conn) consumeFaultBudget(n int) (proceed, stalled bool) {
	c.faultMu.Lock()
	if c.stalled {
		c.faultMu.Unlock()
		return false, true // black hole swallows everything from now on
	}
	if !c.faultArmed {
		c.faultMu.Unlock()
		return true, false
	}
	c.faultBudget -= n
	fire := c.faultBudget < 0
	var fired chan struct{}
	var mode FaultMode
	if fire {
		c.faultArmed = false
		fired = c.faultFired
		mode = c.faultMode
		if mode == FaultStall {
			c.stalled = true
		}
	}
	c.faultMu.Unlock()
	if !fire {
		return true, false
	}
	close(fired)
	if mode == FaultClose {
		c.Close()
	}
	return false, mode == FaultStall
}
