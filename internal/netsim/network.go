package netsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"semplar/internal/trace"
)

// Network instantiates a Profile for a cluster of nodes talking to one SRB
// server: the shared WAN path, the optional NAT host, the server NIC pool
// and one I/O bus per node. Every connection dialed through the network
// draws on the shared limiters, so concurrent streams contend exactly where
// the real testbeds did.
type Network struct {
	prof     Profile
	nodes    int
	pathUp   *Limiter
	pathDown *Limiter
	natUp    *Limiter
	natDown  *Limiter
	srvUp    *Limiter // toward server (ingress NIC)
	srvDown  *Limiter // from server (egress NIC)
	buses    []*Bus
	icByNode []*Limiter // MPI interconnect injection per node

	mu             sync.Mutex
	conns          int                // guarded by mu
	live           map[*Conn]connInfo // guarded by mu; client endpoint -> origin
	partUntil      map[int]time.Time  // guarded by mu; node -> partition end
	shardPartUntil map[int]time.Time  // guarded by mu; shard -> partition end
	jitterSeq      int64              // guarded by mu

	// spike is the extra one-way latency (nanoseconds) currently injected
	// on every connection; see SetLatencySpike.
	spike atomic.Int64

	tracer *trace.Tracer // guarded by mu; nil = tracing off
}

// connInfo tags one live connection with where it came from and which
// server shard it reaches, so faults can be scoped to either end: node
// faults (kills, partitions) select by node, shard crashes by shard.
type connInfo struct {
	node  int
	shard int
}

// SetTracer makes the network record an open-connection gauge and
// per-direction transmit byte counters for connections dialed afterwards.
func (n *Network) SetTracer(tr *trace.Tracer) {
	n.mu.Lock()
	n.tracer = tr
	n.mu.Unlock()
}

// NewNetwork builds the shared fabric for a cluster of the given size.
func NewNetwork(prof Profile, nodes int) *Network {
	if nodes < 1 {
		nodes = 1
	}
	n := &Network{prof: prof, nodes: nodes, live: make(map[*Conn]connInfo)}
	if prof.PathUpRate > 0 {
		n.pathUp = NewLimiter(prof.PathUpRate)
	}
	if prof.PathDownRate > 0 {
		n.pathDown = NewLimiter(prof.PathDownRate)
	}
	if prof.NATRate > 0 {
		n.natUp = NewLimiter(prof.NATRate)
		n.natDown = NewLimiter(prof.NATRate)
	}
	if prof.ServerNICRate > 0 {
		n.srvUp = NewLimiter(prof.ServerNICRate)
		n.srvDown = NewLimiter(prof.ServerNICRate)
	}
	penalty := prof.BusPenalty
	if penalty == 0 {
		penalty = 1.0
	}
	n.buses = make([]*Bus, nodes)
	n.icByNode = make([]*Limiter, nodes)
	for i := range n.buses {
		n.buses[i] = NewBusPenalty(prof.BusRate, penalty)
		if prof.ICRate > 0 {
			n.icByNode[i] = NewLimiter(prof.ICRate)
		}
	}
	return n
}

// Profile returns the profile the network was built from.
func (n *Network) Profile() Profile { return n.prof }

// Nodes returns the cluster size.
func (n *Network) Nodes() int { return n.nodes }

// Bus returns node i's I/O bus (never nil; may be infinite).
func (n *Network) Bus(node int) *Bus { return n.buses[n.clamp(node)] }

func (n *Network) clamp(node int) int {
	if node < 0 || node >= n.nodes {
		return 0
	}
	return node
}

// Conns reports how many shaped connections are currently open.
func (n *Network) Conns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conns
}

// Dial opens a new shaped connection from the given node to the server,
// charging one RTT of connection setup, and returns both endpoints. The
// caller hands the server end to the SRB server (srb.Server.ServeConn).
func (n *Network) Dial(node int) (client, server net.Conn) {
	return n.DialShard(node, 0)
}

// DialShard is Dial toward a specific server shard of a federated fleet:
// identical shaping (every shard sits behind the same WAN path in the
// simulation), but the connection is tagged so KillShardConns can reset
// exactly one shard's streams — a single server crashing out of N.
func (n *Network) DialShard(node, shard int) (client, server net.Conn) {
	node = n.clamp(node)
	if rtt := n.prof.RTT(); rtt > 0 {
		sleep(rtt) // TCP handshake
	}
	stream := n.prof.StreamRate()
	var upStream, downStream *Limiter
	if stream > 0 {
		upStream = NewLimiter(stream)
		downStream = NewLimiter(stream)
	}
	bus := n.buses[node].Stage(BusClassIO)
	up := compact(upStream, bus, n.natUp, n.pathUp, n.srvUp)
	down := compact(downStream, n.srvDown, n.pathDown, n.natDown, bus)
	c, s := Pipe(n.prof.OneWay, up, down)
	c.name = fmt.Sprintf("%s/node%d", n.prof.Name, node)
	c.spike = &n.spike
	s.spike = &n.spike
	n.mu.Lock()
	n.conns++
	n.live[c] = connInfo{node: node, shard: shard}
	tr := n.tracer
	if n.prof.LatencyJitter > 0 {
		// Independent per-direction jitter sources with deterministic
		// per-connection seeds.
		n.jitterSeq++
		c.WithJitter(NewJitter(n.prof.LatencyJitter, n.jitterSeq))
		s.WithJitter(NewJitter(n.prof.LatencyJitter, n.jitterSeq+1<<32))
	}
	n.mu.Unlock()
	if tr.Enabled() {
		tr.Gauge("netsim.conns", 1)
		// Transmit counters are silent (aggregate only): Write runs on
		// whatever goroutine owns the stream, so an event here would make
		// trace order racy.
		c.tr, c.txCtr = tr, "netsim.client_tx_bytes"
		s.tr, s.txCtr = tr, "netsim.server_tx_bytes"
	}
	c.OnClose(func() {
		n.mu.Lock()
		n.conns--
		delete(n.live, c)
		n.mu.Unlock()
		tr.Gauge("netsim.conns", -1)
	})
	return c, s
}

// ErrPartitioned is the transient dial error for a partitioned node.
var ErrPartitioned = errors.New("netsim: node partitioned")

// DialFault reports whether node may dial right now: nil normally, a
// transient ErrPartitioned while the node's partition window is open.
// Dialers consult it before Dial so a partition blocks new connections as
// well as resetting established ones.
func (n *Network) DialFault(node int) error {
	node = n.clamp(node)
	n.mu.Lock()
	until, ok := n.partUntil[node]
	n.mu.Unlock()
	if ok && now().Before(until) {
		return fmt.Errorf("%w: node %d", ErrPartitioned, node)
	}
	return nil
}

// KillConns resets (RST, not EOF) every live connection dialed from node.
func (n *Network) KillConns(node int) {
	node = n.clamp(node)
	var victims []*Conn
	n.mu.Lock()
	for c, info := range n.live {
		if info.node == node {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	// Kill outside the lock: it runs the OnClose hook, which re-locks mu.
	for _, c := range victims {
		c.Kill()
	}
}

// KillShardConns resets every live connection to one server shard,
// whichever node dialed it — the fault surface of a single shard process
// dying in a federated fleet.
func (n *Network) KillShardConns(shard int) {
	var victims []*Conn
	n.mu.Lock()
	for c, info := range n.live {
		if info.shard == shard {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Kill()
	}
}

// KillAll resets every live connection — the server-crash fault: from the
// clients' point of view every established stream dies at once.
func (n *Network) KillAll() {
	var victims []*Conn
	n.mu.Lock()
	for c := range n.live {
		victims = append(victims, c)
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Kill()
	}
}

// Partition cuts node off for the duration d: its established connections
// are reset now and DialFault fails until the window elapses.
func (n *Network) Partition(node int, d time.Duration) {
	node = n.clamp(node)
	n.mu.Lock()
	if n.partUntil == nil {
		n.partUntil = make(map[int]time.Time)
	}
	n.partUntil[node] = now().Add(d)
	n.mu.Unlock()
	n.KillConns(node)
}

// PartitionShard cuts one server shard off for the duration d: every
// established connection to that shard resets now and ShardDialFault
// fails until the window elapses — an asymmetric split between the
// client side of the fleet and a single server, while the shard process
// itself keeps running (unlike KillShard, its journal stays attached).
func (n *Network) PartitionShard(shard int, d time.Duration) {
	n.mu.Lock()
	if n.shardPartUntil == nil {
		n.shardPartUntil = make(map[int]time.Time)
	}
	n.shardPartUntil[shard] = now().Add(d)
	n.mu.Unlock()
	n.KillShardConns(shard)
}

// ShardDialFault reports whether shard is dialable right now: nil
// normally, a transient ErrPartitioned while the shard's partition
// window is open. Shard dialers consult it before Dial, mirroring
// DialFault on the node side.
func (n *Network) ShardDialFault(shard int) error {
	n.mu.Lock()
	until, ok := n.shardPartUntil[shard]
	n.mu.Unlock()
	if ok && now().Before(until) {
		return fmt.Errorf("%w: shard %d", ErrPartitioned, shard)
	}
	return nil
}

// SetLatencySpike adds extra one-way latency to every delivery on every
// connection (current and future) until cleared with 0 — a congestion
// event or routing flap on the shared WAN path.
func (n *Network) SetLatencySpike(extra time.Duration) {
	n.spike.Store(int64(extra))
}

// LatencySpike implements the chaos Injector verb for SetLatencySpike.
func (n *Network) LatencySpike(extra time.Duration) { n.SetLatencySpike(extra) }

func compact(ls ...interface{}) []Stage {
	var out []Stage
	for _, l := range ls {
		switch v := l.(type) {
		case nil:
		case *Limiter:
			if v != nil {
				out = append(out, v)
			}
		case Stage:
			if v != nil {
				out = append(out, v)
			}
		}
	}
	return out
}

// Fabric carries MPI traffic between ranks; it is the seam through which
// interconnect cost and bus contention reach the MPI runtime.
type Fabric interface {
	// Transfer accounts for nbytes moving from rank src to rank dst and
	// blocks for the modeled duration.
	Transfer(src, dst, nbytes int)
}

// Interconnect returns a Fabric that draws MPI traffic through each node's
// interconnect NIC and I/O bus. With Profile.BusRate set, MPI traffic and
// remote I/O traffic contend on the bus — the Section 7.1 effect.
func (n *Network) Interconnect() Fabric { return &icFabric{net: n} }

type icFabric struct{ net *Network }

func (f *icFabric) Transfer(src, dst, nbytes int) {
	n := f.net
	src, dst = n.clamp(src), n.clamp(dst)
	if src == dst {
		return // intra-node move through shared memory
	}
	if lat := n.prof.ICLatency; lat > 0 {
		sleep(lat)
	}
	if nbytes <= 0 {
		return
	}
	lims := compact(n.icByNode[src], n.icByNode[dst],
		n.buses[src].Stage(BusClassMPI), n.buses[dst].Stage(BusClassMPI))
	if wait := reserveAll(lims, nbytes, now()); wait > 0 {
		sleep(wait)
	}
}

// NullFabric is a Fabric with zero cost, for functional tests.
type NullFabric struct{}

// Transfer implements Fabric with no delay.
func (NullFabric) Transfer(src, dst, nbytes int) {}
