package netsim

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestGenScheduleDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Nodes:       4,
		Horizon:     time.Second,
		ConnKills:   5,
		Partitions:  2,
		Spikes:      2,
		SpikeMax:    10 * time.Millisecond,
		ServerKills: 2,
	}
	a := GenSchedule(42, cfg)
	b := GenSchedule(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	c := GenSchedule(43, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenScheduleShape(t *testing.T) {
	cfg := ChaosConfig{
		Nodes:       3,
		Horizon:     time.Second,
		ConnKills:   4,
		Partitions:  3,
		Spikes:      2,
		SpikeMax:    5 * time.Millisecond,
		ServerKills: 3,
	}
	s := GenSchedule(7, cfg)

	counts := map[FaultKind]int{}
	serverUp := true
	for i, ev := range s {
		counts[ev.Kind]++
		if i > 0 && ev.At < s[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v after %v", i, ev.At, s[i-1].At)
		}
		if ev.At < 0 || ev.At > cfg.Horizon {
			t.Fatalf("event %d outside horizon: %v", i, ev.At)
		}
		if ev.Node < 0 || ev.Node >= cfg.Nodes {
			t.Fatalf("event %d targets node %d of %d", i, ev.Node, cfg.Nodes)
		}
		switch ev.Kind {
		case FaultServerKill:
			if !serverUp {
				t.Fatalf("event %d kills an already-killed server", i)
			}
			serverUp = false
		case FaultServerRestart:
			if serverUp {
				t.Fatalf("event %d restarts a running server", i)
			}
			serverUp = true
		}
	}
	if !serverUp {
		t.Fatal("schedule ends with the server down")
	}
	if counts[FaultKillConns] != cfg.ConnKills {
		t.Errorf("conn kills = %d, want %d", counts[FaultKillConns], cfg.ConnKills)
	}
	if counts[FaultPartition] != cfg.Partitions {
		t.Errorf("partitions = %d, want %d", counts[FaultPartition], cfg.Partitions)
	}
	// Every spike window carries a set and a clear event.
	if counts[FaultSpike] != 2*cfg.Spikes {
		t.Errorf("spike events = %d, want %d", counts[FaultSpike], 2*cfg.Spikes)
	}
	if counts[FaultServerKill] != cfg.ServerKills ||
		counts[FaultServerRestart] != cfg.ServerKills {
		t.Errorf("server kill/restart = %d/%d, want %d each",
			counts[FaultServerKill], counts[FaultServerRestart], cfg.ServerKills)
	}
}

// recordingInjector logs every verb invocation.
type recordingInjector struct {
	mu    sync.Mutex
	verbs []string
}

func (r *recordingInjector) log(v string) {
	r.mu.Lock()
	r.verbs = append(r.verbs, v)
	r.mu.Unlock()
}

func (r *recordingInjector) KillConns(node int)           { r.log("kill-conns") }
func (r *recordingInjector) Partition(int, time.Duration) { r.log("partition") }
func (r *recordingInjector) LatencySpike(e time.Duration) { r.log("spike") }
func (r *recordingInjector) KillServer()                  { r.log("server-kill") }
func (r *recordingInjector) RestartServer()               { r.log("server-restart") }

func TestScheduleRunFiresEveryEvent(t *testing.T) {
	s := Schedule{
		{At: 0, Kind: FaultKillConns},
		{At: 5 * time.Millisecond, Kind: FaultSpike, Extra: time.Millisecond},
		{At: 10 * time.Millisecond, Kind: FaultServerKill},
		{At: 15 * time.Millisecond, Kind: FaultServerRestart},
		{At: 20 * time.Millisecond, Kind: FaultPartition, Dur: time.Millisecond},
	}
	inj := &recordingInjector{}
	stop := make(chan struct{})
	if !s.Run(stop, inj) {
		t.Fatal("Run reported early stop with no stop signal")
	}
	want := []string{"kill-conns", "spike", "server-kill", "server-restart", "partition"}
	if !reflect.DeepEqual(inj.verbs, want) {
		t.Fatalf("verbs = %v, want %v", inj.verbs, want)
	}
}

func TestScheduleRunStopsEarly(t *testing.T) {
	s := Schedule{
		{At: 0, Kind: FaultKillConns},
		{At: time.Hour, Kind: FaultServerKill}, // must never fire
	}
	inj := &recordingInjector{}
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- s.Run(stop, inj) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case completed := <-done:
		if completed {
			t.Fatal("stopped run reported completion")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run ignored stop")
	}
	if !reflect.DeepEqual(inj.verbs, []string{"kill-conns"}) {
		t.Fatalf("verbs = %v, want only kill-conns", inj.verbs)
	}
}

func TestKillConnsTargetsOneNode(t *testing.T) {
	n := NewNetwork(Loopback(), 2)
	c0, s0 := n.Dial(0)
	c1, _ := n.Dial(1)
	defer c0.Close()
	defer c1.Close()
	defer s0.Close()

	if n.Conns() != 2 {
		t.Fatalf("conns = %d, want 2", n.Conns())
	}
	n.KillConns(0)
	if _, err := c0.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Fatalf("node 0 conn after KillConns(0): %v, want ErrReset", err)
	}
	// Node 1's connection survives.
	go func() { c1.Write([]byte("x")) }()
	if n.Conns() != 1 {
		t.Fatalf("conns after kill = %d, want 1", n.Conns())
	}
}

func TestPartitionWindowBlocksDials(t *testing.T) {
	n := NewNetwork(Loopback(), 2)
	c0, _ := n.Dial(0)

	n.Partition(0, 30*time.Millisecond)
	// Established connections reset at once.
	if _, err := c0.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Fatalf("read during partition = %v, want ErrReset", err)
	}
	if err := n.DialFault(0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("DialFault during window = %v, want ErrPartitioned", err)
	}
	// Other nodes are unaffected.
	if err := n.DialFault(1); err != nil {
		t.Fatalf("DialFault on healthy node = %v", err)
	}
	// The window heals on its own.
	deadline := time.Now().Add(5 * time.Second)
	for n.DialFault(0) != nil {
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShardPartitionWindow(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	c0, _ := n.DialShard(0, 0)
	c1, _ := n.DialShard(0, 1)
	defer c0.Close()

	n.PartitionShard(1, 30*time.Millisecond)
	// Established connections to the partitioned shard reset at once...
	if _, err := c1.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Fatalf("shard-1 read during partition = %v, want ErrReset", err)
	}
	if err := n.ShardDialFault(1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("ShardDialFault during window = %v, want ErrPartitioned", err)
	}
	// ...while the rest of the fleet, reached from the same node, is
	// untouched: the fault is scoped to the shard, not the dialing node.
	if err := n.ShardDialFault(0); err != nil {
		t.Fatalf("ShardDialFault on healthy shard = %v", err)
	}
	if err := n.DialFault(0); err != nil {
		t.Fatalf("DialFault on dialing node = %v", err)
	}
	go func() { c0.Write([]byte("x")) }()
	if n.Conns() != 1 {
		t.Fatalf("conns after shard partition = %d, want 1", n.Conns())
	}
	// The window heals on its own.
	deadline := time.Now().Add(5 * time.Second)
	for n.ShardDialFault(1) != nil {
		if time.Now().After(deadline) {
			t.Fatal("shard partition never healed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLatencySpikeDelaysDelivery(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	c, s := n.Dial(0)
	defer c.Close()
	defer s.Close()

	echo := func() time.Duration {
		start := time.Now()
		go c.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := s.Read(buf); err != nil {
			t.Fatalf("read: %v", err)
		}
		return time.Since(start)
	}
	base := echo()
	n.SetLatencySpike(50 * time.Millisecond)
	spiked := echo()
	if spiked < 40*time.Millisecond {
		t.Fatalf("spiked delivery took %v (baseline %v), want >= 40ms", spiked, base)
	}
	n.SetLatencySpike(0)
	cleared := echo()
	if cleared > 30*time.Millisecond {
		t.Fatalf("cleared spike still delays delivery: %v", cleared)
	}
}
