package storage

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"semplar/internal/netsim"
)

func testStore(t *testing.T, s Store) {
	t.Helper()

	// Create / Exists / duplicate create.
	o, err := s.Create("obj1")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if !s.Exists("obj1") {
		t.Fatal("obj1 should exist")
	}
	if _, err := s.Create("obj1"); err != ErrExists {
		t.Fatalf("duplicate create = %v, want ErrExists", err)
	}

	// Write then read back at offsets.
	if _, err := o.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.WriteAt([]byte("world"), 10); err != nil {
		t.Fatal(err)
	}
	sz, err := o.Size()
	if err != nil || sz != 15 {
		t.Fatalf("size = %d, %v; want 15", sz, err)
	}
	buf := make([]byte, 5)
	if _, err := o.ReadAt(buf, 10); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
	// The hole between the two writes reads as zeros.
	hole := make([]byte, 5)
	if _, err := o.ReadAt(hole, 5); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 5)) {
		t.Fatalf("hole = %v, want zeros", hole)
	}

	// Read past EOF.
	if n, err := o.ReadAt(buf, 100); err != io.EOF || n != 0 {
		t.Fatalf("read past EOF = %d, %v", n, err)
	}
	// Short read at the tail returns what exists plus EOF.
	tail := make([]byte, 10)
	n, err := o.ReadAt(tail, 12)
	if n != 3 || err != io.EOF {
		t.Fatalf("tail read = %d, %v; want 3, EOF", n, err)
	}

	// Truncate shrinks and re-extends with zeros.
	if err := o.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if sz, _ := o.Size(); sz != 3 {
		t.Fatalf("size after shrink = %d", sz)
	}
	if err := o.Truncate(8); err != nil {
		t.Fatal(err)
	}
	grown := make([]byte, 5)
	if _, err := o.ReadAt(grown, 3); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(grown, make([]byte, 5)) {
		t.Fatalf("extended region = %v, want zeros", grown)
	}
	if err := o.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	// Open existing, remove, open missing.
	o2, err := s.Open("obj1")
	if err != nil {
		t.Fatal(err)
	}
	o2.Close()
	if err := s.Remove("obj1"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("obj1") {
		t.Fatal("obj1 should be gone")
	}
	if _, err := s.Open("obj1"); err != ErrNotFound {
		t.Fatalf("open removed = %v, want ErrNotFound", err)
	}
	if err := s.Remove("obj1"); err != ErrNotFound {
		t.Fatalf("remove removed = %v, want ErrNotFound", err)
	}

	// Keys.
	s.Create("a")
	s.Create("b")
	if got := len(s.Keys()); got != 2 {
		t.Fatalf("keys = %d, want 2", got)
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, fs)
}

func TestFileStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o, err := fs.Create("persistent/key with spaces")
	if err != nil {
		t.Fatal(err)
	}
	o.WriteAt([]byte("data survives"), 0)
	o.Close()

	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := fs2.Open("persistent/key with spaces")
	if err != nil {
		t.Fatalf("object lost after reopen: %v", err)
	}
	buf := make([]byte, 13)
	if _, err := o2.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "data survives" {
		t.Fatalf("got %q", buf)
	}
}

func TestMemObjectConcurrentWriters(t *testing.T) {
	s := NewMemStore()
	o, _ := s.Create("shared")
	const writers = 8
	const per = 4096
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte('A' + w)}, per)
			if _, err := o.WriteAt(data, int64(w*per)); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	sz, _ := o.Size()
	if sz != writers*per {
		t.Fatalf("size = %d, want %d", sz, writers*per)
	}
	for w := 0; w < writers; w++ {
		buf := make([]byte, per)
		if _, err := o.ReadAt(buf, int64(w*per)); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != byte('A'+w) {
				t.Fatalf("stripe %d corrupted", w)
			}
		}
	}
}

func TestMemObjectQuickWriteRead(t *testing.T) {
	f := func(chunks [][]byte) bool {
		s := NewMemStore()
		o, _ := s.Create("q")
		want := []byte{}
		off := int64(0)
		for _, c := range chunks {
			if len(c) > 1<<12 {
				c = c[:1<<12]
			}
			o.WriteAt(c, off)
			want = append(want, c...)
			off += int64(len(c))
		}
		sz, _ := o.Size()
		if sz != int64(len(want)) {
			return false
		}
		got := make([]byte, len(want))
		if len(got) > 0 {
			if _, err := o.ReadAt(got, 0); err != nil && err != io.EOF {
				return false
			}
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceMetersWrites(t *testing.T) {
	spec := DeviceSpec{Name: "slowdisk", WriteRate: 4 * netsim.MBps}
	dev := WithDevice(NewMemStore(), spec)
	o, err := dev.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 20 // 1 MiB at 4 MiB/s => ~250 ms
	start := time.Now()
	if _, err := o.WriteAt(make([]byte, n), 0); err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	if el < 200*time.Millisecond {
		t.Fatalf("metered write finished in %v, want >= ~250ms", el)
	}
	// Reads are not write-metered.
	start = time.Now()
	buf := make([]byte, n)
	if _, err := o.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("read took %v despite unlimited read rate", el)
	}
}

func TestDeviceScaled(t *testing.T) {
	spec := DeviceSpec{ReadRate: 10, WriteRate: 20, OpLatency: time.Second}
	s := spec.Scaled(10)
	if s.ReadRate != 100 || s.WriteRate != 200 || s.OpLatency != 100*time.Millisecond {
		t.Fatalf("scaled = %+v", s)
	}
	if spec.Scaled(1) != spec {
		t.Fatal("Scaled(1) must be identity")
	}
}

func TestDevicePassthrough(t *testing.T) {
	dev := WithDevice(NewMemStore(), DeviceSpec{})
	o, _ := dev.Create("x")
	o.WriteAt([]byte("abc"), 0)
	o.Close()
	if !dev.Exists("x") {
		t.Fatal("exists")
	}
	o2, err := dev.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := o2.Size(); sz != 3 {
		t.Fatalf("size %d", sz)
	}
	if err := o2.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if err := o2.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(dev.Keys()) != 1 {
		t.Fatal("keys")
	}
	if err := dev.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Open("x"); err != ErrNotFound {
		t.Fatal("open after remove")
	}
	if _, err := dev.Create("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Create("x"); err != ErrExists {
		t.Fatal("duplicate create through device")
	}
}

func TestMemStoreRandomizedTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewMemStore()
	o, _ := s.Create("r")
	ref := []byte{}
	for i := 0; i < 300; i++ {
		switch rng.Intn(3) {
		case 0: // write
			off := rng.Intn(5000)
			n := rng.Intn(500)
			data := make([]byte, n)
			rng.Read(data)
			o.WriteAt(data, int64(off))
			if off+n > len(ref) {
				grown := make([]byte, off+n)
				copy(grown, ref)
				ref = grown
			}
			copy(ref[off:off+n], data)
		case 1: // truncate
			sz := rng.Intn(6000)
			o.Truncate(int64(sz))
			if sz <= len(ref) {
				ref = ref[:sz]
			} else {
				grown := make([]byte, sz)
				copy(grown, ref)
				ref = grown
			}
		case 2: // verify
			sz, _ := o.Size()
			if sz != int64(len(ref)) {
				t.Fatalf("iter %d: size %d want %d", i, sz, len(ref))
			}
			if len(ref) > 0 {
				got := make([]byte, len(ref))
				if _, err := o.ReadAt(got, 0); err != nil && err != io.EOF {
					t.Fatal(err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("iter %d: content mismatch", i)
				}
			}
		}
	}
}
