// Package storage provides the physical storage backends behind the SRB
// server: an in-memory store for simulation and tests, and a disk-backed
// store for the standalone daemon. Both can be wrapped with a device model
// that meters read/write bandwidth and per-operation latency, standing in
// for orion.sdsc.edu's disk arrays and tape drives.
package storage

import (
	"errors"
	"io"
)

// Common errors returned by stores.
var (
	ErrNotFound = errors.New("storage: object not found")
	ErrExists   = errors.New("storage: object already exists")
)

// Object is an open physical object. Implementations must be safe for
// concurrent use: the SRB server services many client connections at once,
// possibly against the same object.
type Object interface {
	io.ReaderAt
	io.WriterAt
	// Size reports the current object length in bytes.
	Size() (int64, error)
	// Truncate sets the object length.
	Truncate(size int64) error
	// Sync flushes buffered data to the device.
	Sync() error
	// Close releases the handle. Objects may be opened multiple times.
	Close() error
}

// Store is a flat namespace of physical objects keyed by opaque IDs the
// metadata catalog assigns.
type Store interface {
	// Create makes a new empty object. It fails with ErrExists if the
	// key is already present.
	Create(key string) (Object, error)
	// Open returns an existing object or ErrNotFound.
	Open(key string) (Object, error)
	// Remove deletes an object. Open handles remain usable (POSIX-like
	// unlink semantics for the memory store; best effort on disk).
	Remove(key string) error
	// Exists reports whether the key is present.
	Exists(key string) bool
	// Keys lists all object keys (order unspecified).
	Keys() []string
}
