package storage

import (
	"sync"
)

// MemStore keeps all objects in memory. It is the backend used by the
// simulated testbeds; device characteristics are added with WithDevice.
type MemStore struct {
	mu   sync.RWMutex
	objs map[string]*memObject
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objs: make(map[string]*memObject)}
}

// Create implements Store.
func (s *MemStore) Create(key string) (Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objs[key]; ok {
		return nil, ErrExists
	}
	o := &memObject{}
	s.objs[key] = o
	return o, nil
}

// Open implements Store.
func (s *MemStore) Open(key string) (Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objs[key]
	if !ok {
		return nil, ErrNotFound
	}
	return o, nil
}

// Remove implements Store.
func (s *MemStore) Remove(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objs[key]; !ok {
		return ErrNotFound
	}
	delete(s.objs, key)
	return nil
}

// Exists implements Store.
func (s *MemStore) Exists(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objs[key]
	return ok
}

// Keys implements Store.
func (s *MemStore) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.objs))
	for k := range s.objs {
		keys = append(keys, k)
	}
	return keys
}

// TotalBytes reports the sum of all object sizes (for tests and stats).
func (s *MemStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, o := range s.objs {
		sz, _ := o.Size()
		total += sz
	}
	return total
}

// memObject is a growable byte array safe for concurrent access.
type memObject struct {
	mu   sync.RWMutex
	data []byte
}

func (o *memObject) ReadAt(p []byte, off int64) (int, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if off < 0 {
		return 0, errInvalidOffset
	}
	if off >= int64(len(o.data)) {
		return 0, errEOF
	}
	n := copy(p, o.data[off:])
	if n < len(p) {
		return n, errEOF
	}
	return n, nil
}

func (o *memObject) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errInvalidOffset
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(o.data)) {
		old := len(o.data)
		if end > int64(cap(o.data)) {
			grown := make([]byte, end, end+end/2)
			copy(grown, o.data)
			o.data = grown
		} else {
			// Reusing capacity: clear any hole between the old end
			// and the write offset, which may hold stale bytes from
			// a previous truncate.
			o.data = o.data[:end]
			if off > int64(old) {
				clearBytes(o.data[old:off])
			}
		}
	}
	copy(o.data[off:end], p)
	return len(p), nil
}

func (o *memObject) Size() (int64, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return int64(len(o.data)), nil
}

func (o *memObject) Truncate(size int64) error {
	if size < 0 {
		return errInvalidOffset
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case size <= int64(len(o.data)):
		o.data = o.data[:size]
	case size <= int64(cap(o.data)):
		old := len(o.data)
		o.data = o.data[:size]
		clearBytes(o.data[old:])
	default:
		grown := make([]byte, size)
		copy(grown, o.data)
		o.data = grown
	}
	return nil
}

func (o *memObject) Sync() error  { return nil }
func (o *memObject) Close() error { return nil }

func clearBytes(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
