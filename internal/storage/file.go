package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FileStore persists objects as files under a root directory. It backs the
// standalone srbd daemon; keys are hashed into a two-level directory fanout
// so arbitrary catalog keys map to safe file names.
type FileStore struct {
	root string
	mu   sync.Mutex
	keys map[string]string // key -> relative path
}

// NewFileStore creates (if needed) and opens a store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fs := &FileStore{root: dir, keys: make(map[string]string)}
	// Recover existing objects: layout is <root>/<aa>/<hash>.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || len(e.Name()) != 2 {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range sub {
			if f.IsDir() {
				continue
			}
			// The original key is stored alongside as <hash>.key.
			if strings.HasSuffix(f.Name(), ".key") {
				kb, err := os.ReadFile(filepath.Join(dir, e.Name(), f.Name()))
				if err == nil {
					rel := filepath.Join(e.Name(), strings.TrimSuffix(f.Name(), ".key"))
					fs.keys[string(kb)] = rel
				}
			}
		}
	}
	return fs, nil
}

func (fs *FileStore) pathFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:16])
	return filepath.Join(h[:2], h)
}

// Create implements Store.
func (fs *FileStore) Create(key string) (Object, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.keys[key]; ok {
		return nil, ErrExists
	}
	rel := fs.pathFor(key)
	abs := filepath.Join(fs.root, rel)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(abs, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, ErrExists
		}
		return nil, err
	}
	if err := os.WriteFile(abs+".key", []byte(key), 0o644); err != nil {
		//lint:allow errdrop -- cleanup on the WriteFile error path; that error is returned
		f.Close()
		return nil, err
	}
	fs.keys[key] = rel
	return &fileObject{f: f}, nil
}

// Open implements Store.
func (fs *FileStore) Open(key string) (Object, error) {
	fs.mu.Lock()
	rel, ok := fs.keys[key]
	fs.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	f, err := os.OpenFile(filepath.Join(fs.root, rel), os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	return &fileObject{f: f}, nil
}

// Remove implements Store.
func (fs *FileStore) Remove(key string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rel, ok := fs.keys[key]
	if !ok {
		return ErrNotFound
	}
	delete(fs.keys, key)
	abs := filepath.Join(fs.root, rel)
	//lint:allow errdrop -- best-effort sidecar removal; the data file's Remove error is what matters
	os.Remove(abs + ".key")
	return os.Remove(abs)
}

// Exists implements Store.
func (fs *FileStore) Exists(key string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.keys[key]
	return ok
}

// Keys implements Store.
func (fs *FileStore) Keys() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	keys := make([]string, 0, len(fs.keys))
	for k := range fs.keys {
		keys = append(keys, k)
	}
	return keys
}

type fileObject struct {
	f *os.File
}

func (o *fileObject) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o *fileObject) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }

func (o *fileObject) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (o *fileObject) Truncate(size int64) error { return o.f.Truncate(size) }
func (o *fileObject) Sync() error               { return o.f.Sync() }
func (o *fileObject) Close() error              { return o.f.Close() }
