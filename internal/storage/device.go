package storage

import (
	"errors"
	"io"
	"time"

	"semplar/internal/netsim"
)

var (
	errInvalidOffset = errors.New("storage: invalid offset")
	errEOF           = io.EOF
)

// DeviceSpec characterizes a storage device: sustained read and write
// bandwidth and a fixed per-operation latency (positioning/seek cost).
// Reads and writes draw from separate limiters: the SRB server answers
// reads largely from its cache/replica tier while writes must commit, which
// is the asymmetry behind Figure 8's read gain exceeding its write gain.
type DeviceSpec struct {
	Name      string
	ReadRate  float64 // bytes/sec, 0 = unlimited
	WriteRate float64 // bytes/sec, 0 = unlimited
	OpLatency time.Duration
}

// Scaled speeds the device up by f, matching netsim.Profile.Scaled.
func (d DeviceSpec) Scaled(f float64) DeviceSpec {
	if f <= 0 || f == 1 {
		return d
	}
	d.ReadRate *= f
	d.WriteRate *= f
	d.OpLatency = time.Duration(float64(d.OpLatency) / f)
	return d
}

// Device wraps a Store so that every object I/O is metered through the
// device's limiters. All objects in the store share the device, so
// concurrent client writes contend exactly as they would on one array.
type Device struct {
	inner Store
	spec  DeviceSpec
	rd    *netsim.Limiter
	wr    *netsim.Limiter
}

// WithDevice attaches a device model to a store.
func WithDevice(inner Store, spec DeviceSpec) *Device {
	d := &Device{inner: inner, spec: spec}
	if spec.ReadRate > 0 {
		d.rd = netsim.NewLimiter(spec.ReadRate)
	}
	if spec.WriteRate > 0 {
		d.wr = netsim.NewLimiter(spec.WriteRate)
	}
	return d
}

// Spec returns the device characteristics.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Create implements Store.
func (d *Device) Create(key string) (Object, error) {
	o, err := d.inner.Create(key)
	if err != nil {
		return nil, err
	}
	return &meteredObject{obj: o, dev: d}, nil
}

// Open implements Store.
func (d *Device) Open(key string) (Object, error) {
	o, err := d.inner.Open(key)
	if err != nil {
		return nil, err
	}
	return &meteredObject{obj: o, dev: d}, nil
}

// Remove implements Store.
func (d *Device) Remove(key string) error { return d.inner.Remove(key) }

// Exists implements Store.
func (d *Device) Exists(key string) bool { return d.inner.Exists(key) }

// Keys implements Store.
func (d *Device) Keys() []string { return d.inner.Keys() }

type meteredObject struct {
	obj Object
	dev *Device
}

func (m *meteredObject) ReadAt(p []byte, off int64) (int, error) {
	if m.dev.spec.OpLatency > 0 {
		time.Sleep(m.dev.spec.OpLatency)
	}
	n, err := m.obj.ReadAt(p, off)
	if n > 0 {
		m.dev.rd.Wait(n)
	}
	return n, err
}

func (m *meteredObject) WriteAt(p []byte, off int64) (int, error) {
	if m.dev.spec.OpLatency > 0 {
		time.Sleep(m.dev.spec.OpLatency)
	}
	// Charge the device before acknowledging: a committed write is not
	// complete until the array has absorbed it.
	m.dev.wr.Wait(len(p))
	return m.obj.WriteAt(p, off)
}

func (m *meteredObject) Size() (int64, error)      { return m.obj.Size() }
func (m *meteredObject) Truncate(size int64) error { return m.obj.Truncate(size) }
func (m *meteredObject) Sync() error               { return m.obj.Sync() }
func (m *meteredObject) Close() error              { return m.obj.Close() }
