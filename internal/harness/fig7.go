package harness

import (
	"fmt"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/stats"
	"semplar/internal/workloads/laplace"
)

type fig7Params struct {
	n, iters, ckptEvery int
}

func fig7Defaults(quick bool) fig7Params {
	if quick {
		return fig7Params{n: 200, iters: 6, ckptEvery: 3}
	}
	// Paper: 3001x3001 grid, ~250 MB checkpointed. Scaled: 360x360,
	// ~1 MB per checkpoint image.
	return fig7Params{n: 360, iters: 9, ckptEvery: 3}
}

// RunFig7 reproduces Figure 7: 2D Laplace solver execution time vs.
// processors — synchronous, asynchronous (overlap), maximum speedup, and
// the two-TCP-streams variant of Section 7.2.
func RunFig7(opt Options) (*Figure, error) {
	opt = opt.withDefaults([]int{1, 2, 4, 8})
	p := fig7Defaults(opt.Quick)

	fig := &Figure{
		ID:    "fig7",
		Title: "2D Laplace solver execution time (sync vs async vs max speedup vs 2 TCP streams)",
		Paper: "async improves avg exec by 7%/9%/6% (DAS-2/OSC/TG); 96-97% of max speedup; 2 streams: -38% (DAS-2), -23% (TG), NAT-limited on OSC",
	}

	for _, spec := range cluster.Specs() {
		scaled := spec.Scaled(opt.Scale)
		ckptBytes := float64(p.n) * float64(p.n+2) * 8

		syncS := &stats.Series{Label: "sync"}
		asyncS := &stats.Series{Label: "async"}
		maxS := &stats.Series{Label: "max-speedup"}
		twoS := &stats.Series{Label: "2streams"}

		var padMs float64
		for _, np := range opt.Procs {
			// Per-rank checkpoint I/O at this np, measured through
			// the real stack; the compute pad keeps the I/O:compute
			// ratio at the paper's ~9:1 (fixed grid: both phases
			// shrink as 1/np).
			ioPerCkpt, err := measureWriteCost(scaled, int(ckptBytes)/np, 2, np)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s np=%d calibration: %w", spec.Name, np, err)
			}
			pad := time.Duration(float64(ioPerCkpt)/9/float64(p.ckptEvery)) - time.Millisecond
			if pad < 0 {
				pad = 0
			}
			padMs = float64(pad.Milliseconds())
			base := laplace.Config{
				N: p.n, Iters: p.iters, CheckpointEvery: p.ckptEvery,
				ComputePad: pad, Path: "srb:/laplace.ckpt",
			}
			for _, mode := range []laplace.Mode{laplace.Sync, laplace.Async, laplace.TwoStreams} {
				cfg := base
				cfg.Mode = mode
				res, err := runLaplaceOnce(scaled, np, cfg, opt.Trials, 0)
				if err != nil {
					return nil, fmt.Errorf("fig7 %s np=%d %v: %w", spec.Name, np, mode, err)
				}
				secs := res.Exec.Seconds()
				switch mode {
				case laplace.Sync:
					syncS.Add(np, secs)
					maxS.Add(np, res.Phases.Expected().Seconds())
				case laplace.Async:
					asyncS.Add(np, secs)
				case laplace.TwoStreams:
					twoS.Add(np, secs)
				}
			}
		}

		fig.Clusters = append(fig.Clusters, ClusterResult{
			Cluster: spec.Name,
			XLabel:  "np", YLabel: "exec seconds",
			Series: []*stats.Series{syncS, asyncS, maxS, twoS},
			Metrics: map[string]float64{
				"async improvement %":   pct(1 - stats.MeanRatio(asyncS, syncS)),
				"2stream improvement %": pct(1 - stats.MeanRatio(twoS, syncS)),
				"overlap efficiency %":  overlapPct(maxS, asyncS),
				"compute pad ms":        padMs,
			},
		})
	}
	return fig, nil
}

func runLaplaceOnce(spec cluster.Spec, np int, cfg laplace.Config, trials int, busRate float64) (laplace.Result, error) {
	var out laplace.Result
	_, err := minTimed(trials, func() (time.Duration, error) {
		s := spec
		if busRate > 0 {
			s.Profile.BusRate = busRate
		}
		tb := cluster.New(s, np)
		var res laplace.Result
		err := mpi.RunOn(np, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			r, err := laplace.Run(c, reg, cfg)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			return 0, err
		}
		if out.Exec == 0 || res.Exec < out.Exec {
			out = res
		}
		return res.Exec, nil
	})
	return out, err
}
