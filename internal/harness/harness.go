// Package harness regenerates the paper's evaluation: one runner per
// figure (6-9) plus the Section 7.1 bus-contention ablation. Each runner
// brings up the simulated testbeds of Section 5, executes the workload
// variants across a processor sweep, and returns the same series the paper
// plots together with the headline metrics its text reports.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpiio"
	"semplar/internal/stats"
	"semplar/internal/trace"
)

// Options control the sweep sizes. The zero value gives the default
// "bench" configuration; Quick shrinks everything for CI-speed smoke runs.
type Options struct {
	// Scale accelerates the testbeds (latency /Scale, rates *Scale).
	// Default 10.
	Scale float64
	// Procs is the processor sweep. Defaults depend on the figure.
	Procs []int
	// Quick shrinks problem sizes and the sweep for fast smoke runs.
	Quick bool
	// Trials repeats each timed point; the minimum is kept (default 1).
	Trials int
	// Trace, when non-nil, records request lifecycles across the figure's
	// runs (engine queue, wire ops, server dispatch); export it afterwards
	// with WriteChrome or Summary. Tracing adds a little overhead per
	// request, so leave it nil for timing-sensitive comparisons.
	Trace *trace.Tracer
}

func (o Options) withDefaults(defProcs []int) Options {
	if o.Scale <= 0 {
		o.Scale = 10
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if len(o.Procs) == 0 {
		o.Procs = defProcs
		if o.Quick && len(defProcs) > 2 {
			o.Procs = defProcs[:2]
		}
	}
	return o
}

// ClusterResult holds one testbed's series for one figure.
type ClusterResult struct {
	Cluster string
	XLabel  string
	YLabel  string
	Series  []*stats.Series
	// Metrics are the headline numbers the paper's text quotes,
	// e.g. "async improvement %" or "read gain %".
	Metrics map[string]float64
}

// Figure is one reproduced figure.
type Figure struct {
	ID       string
	Title    string
	Paper    string // what the paper reports, for side-by-side reading
	Clusters []ClusterResult
}

// Render formats the figure as text tables.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	if f.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", f.Paper)
	}
	for _, cr := range f.Clusters {
		b.WriteByte('\n')
		b.WriteString(stats.Table(
			fmt.Sprintf("%s / %s", f.ID, cr.Cluster),
			cr.XLabel, cr.YLabel, cr.Series...))
		keys := make([]string, 0, len(cr.Metrics))
		for k := range cr.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-38s %8.1f\n", k, cr.Metrics[k])
		}
	}
	return b.String()
}

// CSV renders the figure's series as comma-separated records:
// figure,cluster,series,x,y — one row per data point, suitable for
// external plotting.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,cluster,series,x,y\n")
	for _, cr := range f.Clusters {
		for _, s := range cr.Series {
			for i, x := range s.X {
				fmt.Fprintf(&b, "%s,%s,%s,%d,%g\n", f.ID, cr.Cluster, s.Label, x, s.Y[i])
			}
		}
	}
	return b.String()
}

// Metric fetches a metric from the named cluster (0 if absent).
func (f *Figure) Metric(cluster, name string) float64 {
	for _, cr := range f.Clusters {
		if cr.Cluster == cluster {
			return cr.Metrics[name]
		}
	}
	return 0
}

// seriesOf finds a series by label in a cluster result.
func (cr *ClusterResult) seriesOf(label string) *stats.Series {
	for _, s := range cr.Series {
		if s.Label == label {
			return s
		}
	}
	return nil
}

// minDuration runs fn Trials times and keeps the fastest result, a
// standard way to cut scheduler noise from timing experiments.
func minTimed(trials int, fn func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < trials; i++ {
		settle()
		d, err := fn()
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// settle quiesces the host between timed runs: collect the previous run's
// garbage and let lingering teardown goroutines drain, so back-to-back
// experiments do not contaminate each other's timing (which matters on
// small CI hosts).
func settle() {
	runtime.GC()
	time.Sleep(30 * time.Millisecond)
}

// pct converts a ratio-minus-one to percent.
func pct(x float64) float64 { return x * 100 }

// measureWriteCost measures the real per-operation cost of writing size
// bytes to the SRB server over one stream on the given testbed, including
// protocol round trips and simulator scheduling overhead. nodes > 1
// replicates the workload's burst concurrency — simultaneous writers
// contend on the NAT/path exactly as the real checkpoints do. Harnesses
// use it to calibrate compute pads against actual I/O time rather than
// analytic estimates.
func measureWriteCost(spec cluster.Spec, size, ops, nodes int) (time.Duration, error) {
	if nodes < 1 {
		nodes = 1
	}
	tb := cluster.New(spec, nodes)
	files := make([]*mpiio.File, nodes)
	for node := range files {
		reg := tb.Registry(node, core.SRBFSConfig{})
		f, err := mpiio.OpenLocal(reg, fmt.Sprintf("srb:/calibrate-%d", node), adio.O_WRONLY|adio.O_CREATE, nil)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		files[node] = f
	}
	run := func() error {
		errs := make([]error, nodes)
		var wg sync.WaitGroup
		for node, f := range files {
			wg.Add(1)
			go func(node int, f *mpiio.File) {
				defer wg.Done()
				buf := make([]byte, size)
				for i := 0; i < ops; i++ {
					if _, err := f.WriteAt(buf, int64(i)*int64(size)); err != nil {
						errs[node] = err
						return
					}
				}
			}(node, f)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	// One warm-up round outside the measurement.
	if err := run(); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := run(); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(ops), nil
}
