package harness

import (
	"fmt"
	"time"

	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/mpiio"
	"semplar/internal/stats"
	"semplar/internal/workloads/datagen"
)

// RunFig9 reproduces Figure 9: the on-the-fly compression experiment.
// Every process holds a nucleotide EST text (the paper's 100 MB file,
// scaled) and writes it to its own remote file. The synchronous baseline
// writes the raw data with blocking calls; the asynchronous variant
// compresses 1 MB blocks with LZO and pipelines compression of block k+1
// with the transfer of block k. Bandwidth is application bytes over wall
// time, so compression shows up as effective-bandwidth gain.
func RunFig9(opt Options) (*Figure, error) {
	opt = opt.withDefaults([]int{2, 4, 8, 13})
	// Paper: 100 MB per process in 1 MB pipeline blocks. Blocks must
	// stay large relative to the RTT so the per-request round trip does
	// not dominate, as in the paper's regime.
	perProc := 2 << 20
	block := 1 << 20
	if opt.Quick {
		perProc = 1 << 20
		block = 512 << 10
	}
	// The paper's regime has compression roughly two orders of magnitude
	// faster than the WAN. LZO runs at ~200 MB/s, so this experiment
	// uses a lower acceleration than the others to keep the scaled WAN
	// well below compression speed.
	opt.Scale *= 0.4
	src := datagen.ESTText(perProc, 11)

	fig := &Figure{
		ID:    "fig9",
		Title: "on-the-fly compression: aggregate write bandwidth, sync (raw) vs async (LZO-pipelined)",
		Paper: "avg aggregate write bandwidth +83% (DAS-2), +84% (TG-NCSA); Tcomp ~ two orders below Txmit",
	}

	for _, spec := range []cluster.Spec{cluster.DAS2(), cluster.TGNCSA()} {
		scaled := spec.Scaled(opt.Scale)
		syncS := &stats.Series{Label: "sync-write"}
		asyncS := &stats.Series{Label: "async-compressed-write"}

		for _, np := range opt.Procs {
			for _, async := range []bool{false, true} {
				d, err := runCompressionOnce(scaled, np, src, block, async, opt.Trials)
				if err != nil {
					return nil, fmt.Errorf("fig9 %s np=%d async=%v: %w", spec.Name, np, async, err)
				}
				bw := stats.MbPerSec(int64(np)*int64(len(src)), d)
				if async {
					asyncS.Add(np, bw)
				} else {
					syncS.Add(np, bw)
				}
			}
		}

		fig.Clusters = append(fig.Clusters, ClusterResult{
			Cluster: spec.Name,
			XLabel:  "np", YLabel: "aggregate write Mb/s",
			Series: []*stats.Series{syncS, asyncS},
			Metrics: map[string]float64{
				"compression gain %": pct(stats.MeanRatio(asyncS, syncS) - 1),
			},
		})
	}
	return fig, nil
}

// runCompressionOnce measures the barrier-to-barrier write time of one
// round: every rank writes its EST text to an independent remote file.
func runCompressionOnce(spec cluster.Spec, np int, src []byte, block int, async bool, trials int) (time.Duration, error) {
	return minTimed(trials, func() (time.Duration, error) {
		tb := cluster.New(spec, np)
		var elapsed time.Duration
		err := mpi.RunOn(np, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			path := fmt.Sprintf("srb:/est-%d.out", c.Rank())
			f, err := mpiio.OpenLocal(reg, path, adio.O_WRONLY|adio.O_CREATE, nil)
			if err != nil {
				return err
			}
			defer f.Close()

			c.Barrier()
			start := time.Now()
			if async {
				// On-the-fly LZO compression pipelined with the
				// transfer through the async engine.
				if _, err := core.WriteCompressed(fileOf(f), 0, src, block, f.Engine()); err != nil {
					return err
				}
			} else {
				// Baseline: blocking write of the raw data.
				if _, err := f.WriteAt(src, 0); err != nil {
					return err
				}
			}
			c.Barrier()
			d := time.Duration(c.AllreduceFloat64(float64(time.Since(start)), mpi.OpMax))
			if c.Rank() == 0 {
				elapsed = d
			}
			return nil
		})
		return elapsed, err
	})
}

// fileOf adapts an mpiio.File to the adio.File interface WriteCompressed
// expects (explicit-offset subset).
func fileOf(f *mpiio.File) adio.File { return mpiioAdapter{f} }

type mpiioAdapter struct{ f *mpiio.File }

func (a mpiioAdapter) ReadAt(p []byte, off int64) (int, error)  { return a.f.ReadAt(p, off) }
func (a mpiioAdapter) WriteAt(p []byte, off int64) (int, error) { return a.f.WriteAt(p, off) }
func (a mpiioAdapter) Size() (int64, error)                     { return a.f.Size() }
func (a mpiioAdapter) Truncate(size int64) error                { return a.f.SetSize(size) }
func (a mpiioAdapter) Sync() error                              { return a.f.Sync() }
func (a mpiioAdapter) Close() error                             { return a.f.Close() }
