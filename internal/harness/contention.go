package harness

import (
	"fmt"

	"semplar/internal/cluster"
	"semplar/internal/stats"
	"semplar/internal/workloads/laplace"
)

// RunBusContention reproduces the counter-intuitive result of Section 7.1:
// combining overlap with the double connection yields no improvement over
// overlap alone, because the checkpoint transfer and the MPI traffic
// contend on the node's I/O bus — and moving the wait call from position 1
// to position 2 (so the transfer no longer overlaps MPI communication)
// restores the double-connection win.
func RunBusContention(opt Options) (*Figure, error) {
	opt = opt.withDefaults([]int{4})
	np := opt.Procs[0]
	if np < 2 {
		np = 4
	}

	spec := cluster.DAS2().Scaled(opt.Scale)
	// The node I/O bus: generous against either traffic class alone,
	// tight when the checkpoint transfer and the interconnect share it.
	// The arbitration penalty is what makes overlapping the two traffic
	// classes a net loss, as observed on the real nodes.
	busRate := 2.5 * spec.Profile.StreamRate()
	spec.Profile.BusPenalty = 3

	p := fig7Defaults(opt.Quick)
	base := laplace.Config{
		N: p.n, Iters: p.iters, CheckpointEvery: p.ckptEvery,
		// Communication-heavy configuration: "most of the computation
		// phase is actually spent executing the MPI send/receive
		// calls". Sized so the interconnect traffic and the checkpoint
		// transfer place comparable demand on the node bus.
		ExchangesPerIter: 8,
		SweepsPerIter:    1,
		Path:             "srb:/laplace.ckpt",
	}

	type variant struct {
		label string
		mode  laplace.Mode
		pos   laplace.WaitPos
		bus   float64
	}
	variants := []variant{
		{"async-1conn (bus)", laplace.Async, laplace.Pos1, busRate},
		{"async+2conn wait@1 (bus)", laplace.AsyncTwoStreams, laplace.Pos1, busRate},
		{"async+2conn wait@2 (bus)", laplace.AsyncTwoStreams, laplace.Pos2, busRate},
		{"async+2conn wait@1 (no bus)", laplace.AsyncTwoStreams, laplace.Pos1, 0},
	}

	cr := ClusterResult{
		Cluster: spec.Name,
		XLabel:  "np", YLabel: "exec seconds",
		Metrics: map[string]float64{},
	}
	exec := map[string]float64{}
	for _, v := range variants {
		cfg := base
		cfg.Mode = v.mode
		cfg.WaitPos = v.pos
		res, err := runLaplaceOnce(spec, np, cfg, opt.Trials, v.bus)
		if err != nil {
			return nil, fmt.Errorf("contention %s: %w", v.label, err)
		}
		s := &stats.Series{Label: v.label}
		s.Add(np, res.Exec.Seconds())
		cr.Series = append(cr.Series, s)
		exec[v.label] = res.Exec.Seconds()
	}

	// Headline ratios: with the bus contended, 2conn/wait@1 should be
	// ~the same as 1conn; wait@2 should recover most of the 2conn win.
	cr.Metrics["2conn wait@1 vs 1conn %"] = pct(exec["async+2conn wait@1 (bus)"]/exec["async-1conn (bus)"] - 1)
	cr.Metrics["2conn wait@2 vs wait@1 %"] = pct(1 - exec["async+2conn wait@2 (bus)"]/exec["async+2conn wait@1 (bus)"])
	cr.Metrics["bus cost on 2conn %"] = pct(exec["async+2conn wait@1 (bus)"]/exec["async+2conn wait@1 (no bus)"] - 1)

	return &Figure{
		ID:       "sec7.1-contention",
		Title:    "I/O-bus contention ablation (overlap + double connection)",
		Paper:    "overlap+double-connection ~= overlap alone under bus contention; moving wait 1->2 restores the double-connection gain",
		Clusters: []ClusterResult{cr},
	}, nil
}
