package harness

import (
	"fmt"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/stats"
	"semplar/internal/workloads/blast"
	"semplar/internal/workloads/datagen"
)

// Fig6 parameters (paper: 687,158-sequence 256 MB EST database, 2425-query
// 1 MB file, ~50 KB of output per sequence — scaled here).
type fig6Params struct {
	dbCount, dbMin, dbMax int
	queries               int
	reportSize            int
}

func fig6Defaults(quick bool) fig6Params {
	if quick {
		return fig6Params{dbCount: 30, dbMin: 200, dbMax: 300, queries: 12, reportSize: 16 << 10}
	}
	return fig6Params{dbCount: 60, dbMin: 250, dbMax: 350, queries: 40, reportSize: 32 << 10}
}

// RunFig6 reproduces Figure 6: MPI-BLAST execution time vs. number of
// processors on the three testbeds, synchronous vs. asynchronous I/O plus
// the maximum-speedup (perfect overlap) line.
func RunFig6(opt Options) (*Figure, error) {
	opt = opt.withDefaults([]int{2, 3, 5, 9})
	p := fig6Defaults(opt.Quick)

	db := datagen.NewDatabase(p.dbCount, p.dbMin, p.dbMax, 42)
	queries := db.Queries(p.queries, 7)
	index := blast.NewIndex(db, 11)

	fig := &Figure{
		ID:    "fig6",
		Title: "MPI-BLAST execution time (sync vs async vs maximum speedup)",
		Paper: "async improves avg exec time by 20% (DAS-2), 26% (OSC), 22% (TG-NCSA); 92-97% of max expected speedup",
	}

	for _, spec := range cluster.Specs() {
		scaled := spec.Scaled(opt.Scale)
		// Measure the real per-report write cost on this testbed and
		// pad the compute phase to the paper's ~4:1 compute-to-I/O
		// ratio.
		ioMeasured, err := measureWriteCost(scaled, p.reportSize, 6, 1)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s calibration: %w", spec.Name, err)
		}
		pad := 4 * ioMeasured

		syncS := &stats.Series{Label: "sync"}
		asyncS := &stats.Series{Label: "async"}
		maxS := &stats.Series{Label: "max-speedup"}
		var phasesAt []stats.Phases

		for _, np := range opt.Procs {
			if np < 2 {
				continue
			}
			for _, mode := range []blast.Mode{blast.Sync, blast.Async} {
				res, err := runBlastOnce(scaled, np, blast.Config{
					DB: db, Index: index, Queries: queries,
					ReportSize: p.reportSize, ComputePad: pad,
					Mode: mode, PathPrefix: "srb:/blast-",
					Tracer: opt.Trace,
				}, opt.Trials)
				if err != nil {
					return nil, fmt.Errorf("fig6 %s np=%d %v: %w", spec.Name, np, mode, err)
				}
				secs := res.Exec.Seconds()
				switch mode {
				case blast.Sync:
					syncS.Add(np, secs)
					maxS.Add(np, res.Phases.Expected().Seconds())
					phasesAt = append(phasesAt, res.Phases)
				case blast.Async:
					asyncS.Add(np, secs)
				}
			}
		}

		metrics := map[string]float64{
			"async improvement %":  pct(1 - stats.MeanRatio(asyncS, syncS)),
			"overlap efficiency %": overlapPct(maxS, asyncS),
			"compute pad ms":       float64(pad.Milliseconds()),
		}
		if len(phasesAt) > 0 {
			metrics["compute:io ratio"] = float64(phasesAt[0].Compute) / float64(phasesAt[0].IO+1)
		}
		fig.Clusters = append(fig.Clusters, ClusterResult{
			Cluster: spec.Name,
			XLabel:  "np", YLabel: "exec seconds",
			Series:  []*stats.Series{syncS, asyncS, maxS},
			Metrics: metrics,
		})
	}
	return fig, nil
}

func runBlastOnce(spec cluster.Spec, np int, cfg blast.Config, trials int) (blast.Result, error) {
	var out blast.Result
	_, err := minTimed(trials, func() (time.Duration, error) {
		tb := cluster.New(spec, np)
		tb.SetTracer(cfg.Tracer)
		var res blast.Result
		err := mpi.RunOn(np, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{Tracer: cfg.Tracer})
			r, err := blast.Run(c, reg, cfg)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			return 0, err
		}
		if out.Exec == 0 || res.Exec < out.Exec {
			out = res
		}
		return res.Exec, nil
	})
	return out, err
}

// overlapPct computes the mean achieved fraction of the maximum expected
// speedup across the sweep: expected/async per np, capped at 100%.
func overlapPct(expected, async *stats.Series) float64 {
	r := stats.MeanRatio(expected, async)
	if r > 1 {
		r = 1
	}
	return pct(r)
}
