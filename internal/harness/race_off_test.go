//go:build !race

package harness

// raceEnabled reports whether the race detector instruments this build.
// The quick figure tests assert performance ratios (compression gain,
// overlap speedup) that instrumentation overhead — roughly 5-10x on the
// compute side — distorts beyond their margins, so those assertions are
// skipped under -race while correctness checks still run.
const raceEnabled = false
