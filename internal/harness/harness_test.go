package harness

import (
	"strings"
	"testing"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/stats"
)

// quickOpts runs small, fast sweeps; assertions below are qualitative with
// wide margins so single-core scheduling noise cannot flip them.
func quickOpts() Options {
	// Two trials per point (minimum kept) stabilize the quick sweeps
	// against load from neighboring tests on small hosts.
	return Options{Scale: 20, Quick: true, Trials: 2}
}

func TestWithDefaults(t *testing.T) {
	o := Options{}.withDefaults([]int{1, 2, 4})
	if o.Scale != 10 || o.Trials != 1 || len(o.Procs) != 3 {
		t.Fatalf("defaults = %+v", o)
	}
	q := Options{Quick: true}.withDefaults([]int{1, 2, 4})
	if len(q.Procs) != 2 {
		t.Fatalf("quick procs = %v", q.Procs)
	}
	p := Options{Procs: []int{7}}.withDefaults([]int{1, 2})
	if len(p.Procs) != 1 || p.Procs[0] != 7 {
		t.Fatalf("explicit procs = %v", p.Procs)
	}
}

func TestFigureRenderAndMetric(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "test figure", Paper: "paper says things",
		Clusters: []ClusterResult{{
			Cluster: "DAS-2", XLabel: "np", YLabel: "s",
			Series:  []*stats.Series{{Label: "sync", X: []int{2}, Y: []float64{1.5}}},
			Metrics: map[string]float64{"gain %": 42},
		}},
	}
	out := fig.Render()
	for _, want := range []string{"figX", "test figure", "paper says", "DAS-2", "sync", "gain %", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if fig.Metric("DAS-2", "gain %") != 42 {
		t.Fatal("metric lookup")
	}
	if fig.Metric("nope", "gain %") != 0 {
		t.Fatal("missing cluster metric")
	}
	cr := &fig.Clusters[0]
	if cr.seriesOf("sync") == nil || cr.seriesOf("zzz") != nil {
		t.Fatal("seriesOf")
	}
}

func TestMinTimed(t *testing.T) {
	calls := 0
	d, err := minTimed(3, func() (time.Duration, error) {
		calls++
		return time.Duration(calls) * time.Second, nil
	})
	if err != nil || calls != 3 || d != time.Second {
		t.Fatalf("minTimed = %v, %v (calls %d)", d, err, calls)
	}
}

func TestMeasureWriteCost(t *testing.T) {
	spec := cluster.DAS2().Scaled(50)
	d, err := measureWriteCost(spec, 64<<10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("cost = %v", d)
	}
}

func TestFig6Quick(t *testing.T) {
	fig, err := RunFig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(fig.Clusters))
	}
	for _, cr := range fig.Clusters {
		syncS := cr.seriesOf("sync")
		asyncS := cr.seriesOf("async")
		maxS := cr.seriesOf("max-speedup")
		if syncS == nil || asyncS == nil || maxS == nil {
			t.Fatalf("%s: missing series", cr.Cluster)
		}
		// Async must beat sync on average; max-speedup bounds async.
		if r := stats.MeanRatio(asyncS, syncS); r > 0.98 {
			t.Errorf("%s: async/sync ratio %.2f, want < 0.98", cr.Cluster, r)
		}
		if eff := cr.Metrics["overlap efficiency %"]; eff < 55 {
			t.Errorf("%s: overlap efficiency %.1f%%, want > 55%%", cr.Cluster, eff)
		}
		// Execution time decreases with processors (shape of Fig. 6).
		if len(syncS.Y) >= 2 && syncS.Y[len(syncS.Y)-1] >= syncS.Y[0] {
			t.Errorf("%s: exec time did not decrease with np: %v", cr.Cluster, syncS.Y)
		}
	}
}

func TestFig7Quick(t *testing.T) {
	opt := quickOpts()
	opt.Procs = []int{2, 4}
	fig, err := RunFig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	das2 := fig.Clusters[0]
	if das2.Cluster != "DAS-2" {
		t.Fatalf("first cluster = %s", das2.Cluster)
	}
	// On the high-latency, window-limited path, two streams must beat
	// one substantially.
	if r := stats.MeanRatio(das2.seriesOf("2streams"), das2.seriesOf("sync")); r > 0.9 {
		t.Errorf("DAS-2: 2streams/sync = %.2f, want < 0.9", r)
	}
	// Async must win on the high-latency path where I/O phases are long
	// enough to overlap; on the quick-mode fast clusters the phases are
	// milliseconds, so only guard against gross regressions there.
	// The Laplace async win is single-digit percent (paper: 7%), so on a
	// noisy single-core host quick mode can land at parity; only a
	// clear regression fails.
	if r := stats.MeanRatio(das2.seriesOf("async"), das2.seriesOf("sync")); r > 1.1 {
		t.Errorf("DAS-2: async slower than sync (ratio %.2f)", r)
	}
	for _, cr := range fig.Clusters {
		if r := stats.MeanRatio(cr.seriesOf("async"), cr.seriesOf("sync")); r > 1.6 {
			t.Errorf("%s: async grossly slower than sync (ratio %.2f)", cr.Cluster, r)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	opt := quickOpts()
	opt.Procs = []int{2, 4}
	fig, err := RunFig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Clusters) != 2 {
		t.Fatalf("fig8 clusters = %d", len(fig.Clusters))
	}
	das2 := fig.Clusters[0]
	// The split-TCP mechanism: two streams read much faster than one.
	if g := das2.Metrics["read gain %"]; g < 30 {
		t.Errorf("DAS-2 read gain = %.1f%%, want > 30%%", g)
	}
	if g := das2.Metrics["write gain %"]; g < 10 {
		t.Errorf("DAS-2 write gain = %.1f%%, want > 10%%", g)
	}
}

func TestFig9Quick(t *testing.T) {
	opt := quickOpts()
	opt.Procs = []int{2, 4}
	fig, err := RunFig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		// Race instrumentation slows the LZO compressor far more than the
		// simulated network, so the pipeline loses its real-time edge; the
		// sweep above still exercises the machinery for data races.
		t.Skip("compression-gain margins not meaningful under -race")
	}
	for _, cr := range fig.Clusters {
		if g := cr.Metrics["compression gain %"]; g < 15 {
			t.Errorf("%s: compression gain %.1f%%, want > 15%%", cr.Cluster, g)
		}
	}
}

func TestBusContentionQuick(t *testing.T) {
	opt := quickOpts()
	opt.Procs = []int{4}
	fig, err := RunBusContention(opt)
	if err != nil {
		t.Fatal(err)
	}
	cr := fig.Clusters[0]
	// The bus must cost the overlapped double-connection run real time.
	if c := cr.Metrics["bus cost on 2conn %"]; c < 30 {
		t.Errorf("bus cost = %.1f%%, want > 30%%", c)
	}
	// Under contention, the double connection gives no big win over one
	// connection (the paper's counter-intuitive result).
	if d := cr.Metrics["2conn wait@1 vs 1conn %"]; d < -25 {
		t.Errorf("2conn still wins big under contention: %.1f%%", d)
	}
}

func TestFigureCSV(t *testing.T) {
	fig := &Figure{
		ID: "figZ",
		Clusters: []ClusterResult{{
			Cluster: "DAS-2",
			Series: []*stats.Series{
				{Label: "sync", X: []int{2, 4}, Y: []float64{1.5, 0.75}},
			},
		}},
	}
	csv := fig.CSV()
	want := "figure,cluster,series,x,y\nfigZ,DAS-2,sync,2,1.5\nfigZ,DAS-2,sync,4,0.75\n"
	if csv != want {
		t.Fatalf("csv = %q", csv)
	}
}
