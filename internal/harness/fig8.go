package harness

import (
	"fmt"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/stats"
	"semplar/internal/workloads/perf"
)

// RunFig8 reproduces Figure 8: ROMIO perf aggregate read/write bandwidth
// vs. processors with one and two concurrent TCP streams per node, on
// DAS-2 and TG-NCSA (the paper omits the NAT-fronted OSC here).
func RunFig8(opt Options) (*Figure, error) {
	opt = opt.withDefaults([]int{2, 4, 8, 12})
	arrayBytes := 1 << 20 // paper: 32 MB per process, scaled
	if opt.Quick {
		arrayBytes = 512 << 10
	}

	fig := &Figure{
		ID:    "fig8",
		Title: "perf aggregate I/O bandwidth, one vs two TCP streams per node",
		Paper: "DAS-2: read +96%, write +43%; TG-NCSA: read +75%, write +24%",
	}

	for _, spec := range []cluster.Spec{cluster.DAS2(), cluster.TGNCSA()} {
		scaled := spec.Scaled(opt.Scale)

		w1 := &stats.Series{Label: "write-1stream"}
		w2 := &stats.Series{Label: "write-2streams"}
		r1 := &stats.Series{Label: "read-1stream"}
		r2 := &stats.Series{Label: "read-2streams"}

		for _, np := range opt.Procs {
			for _, streams := range []int{1, 2} {
				res, err := runPerfOnce(scaled, np, perf.Config{
					ArrayBytes: arrayBytes,
					Streams:    streams,
					Path:       "srb:/perf.dat",
				}, opt.Trials)
				if err != nil {
					return nil, fmt.Errorf("fig8 %s np=%d k=%d: %w", spec.Name, np, streams, err)
				}
				if streams == 1 {
					w1.Add(np, res.WriteMbps)
					r1.Add(np, res.ReadMbps)
				} else {
					w2.Add(np, res.WriteMbps)
					r2.Add(np, res.ReadMbps)
				}
			}
		}

		fig.Clusters = append(fig.Clusters, ClusterResult{
			Cluster: spec.Name,
			XLabel:  "np", YLabel: "aggregate Mb/s",
			Series: []*stats.Series{w2, r2, w1, r1},
			Metrics: map[string]float64{
				"read gain %":  pct(stats.MeanRatio(r2, r1) - 1),
				"write gain %": pct(stats.MeanRatio(w2, w1) - 1),
			},
		})
	}
	return fig, nil
}

func runPerfOnce(spec cluster.Spec, np int, cfg perf.Config, trials int) (perf.Result, error) {
	var out perf.Result
	bestTotal := time.Duration(0)
	_, err := minTimed(trials, func() (time.Duration, error) {
		tb := cluster.New(spec, np)
		var res perf.Result
		err := mpi.RunOn(np, tb.Fabric(), func(c *mpi.Comm) error {
			reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
			r, err := perf.Run(c, reg, cfg)
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			return 0, err
		}
		total := res.WriteTime + res.ReadTime
		if bestTotal == 0 || total < bestTotal {
			bestTotal = total
			out = res
		}
		return total, nil
	})
	return out, err
}
