// Package adio reproduces ROMIO's Abstract-Device Interface for I/O: a
// small driver interface through which a portable MPI-IO layer reaches
// filesystem-specific implementations (UFS, an in-memory FS, and SEMPLAR's
// SRBFS). Drivers register by scheme name; paths of the form
// "scheme:/logical/path" route to the matching driver.
package adio

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Open flags, shared by all drivers (values mirror the SRB protocol).
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_ACCESS = 0x3
	O_CREATE = 0x4
	O_TRUNC  = 0x8
	O_EXCL   = 0x10
	O_APPEND = 0x20
)

// ErrUnknownDriver is returned when a path names an unregistered scheme.
var ErrUnknownDriver = errors.New("adio: unknown driver")

// Hints carries MPI_Info-style key/value tuning hints to the driver and to
// the MPI-IO layer above it. Keys understood today:
//
//	io_threads      mpiio: async engine worker count
//	streams         SRBFS: connections to stripe across
//	stripe_size     SRBFS/federation: stripe unit in bytes
//	sieve           mpiio: "on"/"off", data sieving for strided views (default on)
//	sieve_buf_size  mpiio: sieve window size in bytes (default 524288)
//	listio          mpiio: "on"/"off", vectored list I/O for sparse views (default on)
//	listio_density  mpiio: view density (BlockLen/Stride) below which list
//	                I/O is preferred over sieving when the driver supports
//	                VectorIO (default 0.25)
type Hints map[string]string

// Get returns the hint value or a default.
func (h Hints) Get(key, def string) string {
	if h == nil {
		return def
	}
	if v, ok := h[key]; ok {
		return v
	}
	return def
}

// File is the per-handle device interface: explicit-offset I/O only, as in
// ADIO; file pointers and nonblocking calls are layered above.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Vec is one segment of a vectored (list-I/O) transfer: len(Buf) bytes at
// absolute file offset Off.
type Vec struct {
	Off int64
	Buf []byte
}

// VectorIO is an optional fast path a driver's File may implement: many
// discontiguous extents move in few round trips (ROMIO's list I/O). The
// MPI-IO layer type-asserts for it when a strided view is too sparse for
// data sieving to pay off.
//
// Semantics mirror ReadAt/WriteAt applied per segment in slice order: the
// returned count is the contiguous prefix (in segment order) actually
// transferred, and a transfer that ends early reports io.EOF (reads) or
// io.ErrShortWrite (writes) alongside that prefix. Segments should be
// sorted by ascending offset and non-overlapping.
type VectorIO interface {
	ReadAtVec(segs []Vec) (int, error)
	WriteAtVec(segs []Vec) (int, error)
}

// Driver is one filesystem implementation.
type Driver interface {
	// Name is the scheme this driver serves (e.g. "ufs", "srb").
	Name() string
	// Open opens or creates the file at the driver-local path.
	Open(path string, flags int, hints Hints) (File, error)
	// Delete removes the file at the driver-local path.
	Delete(path string) error
}

// Registry maps scheme names to drivers. The zero value is ready to use;
// most callers use the package-level Default registry.
type Registry struct {
	mu      sync.RWMutex
	drivers map[string]Driver
}

// Register adds or replaces a driver.
func (r *Registry) Register(d Driver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.drivers == nil {
		r.drivers = make(map[string]Driver)
	}
	r.drivers[d.Name()] = d
}

// Lookup returns the driver for a scheme.
func (r *Registry) Lookup(scheme string) (Driver, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.drivers[scheme]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDriver, scheme)
	}
	return d, nil
}

// Drivers lists registered scheme names, sorted.
func (r *Registry) Drivers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.drivers))
	for name := range r.drivers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resolve splits "scheme:path" and returns the driver plus the local path.
// Paths without a scheme default to "ufs".
func (r *Registry) Resolve(path string) (Driver, string, error) {
	scheme, local := SplitPath(path)
	d, err := r.Lookup(scheme)
	if err != nil {
		return nil, "", err
	}
	return d, local, nil
}

// Open resolves the path and opens it on its driver.
func (r *Registry) Open(path string, flags int, hints Hints) (File, error) {
	d, local, err := r.Resolve(path)
	if err != nil {
		return nil, err
	}
	return d.Open(local, flags, hints)
}

// Delete resolves the path and deletes it on its driver.
func (r *Registry) Delete(path string) error {
	d, local, err := r.Resolve(path)
	if err != nil {
		return err
	}
	return d.Delete(local)
}

// SplitPath separates the scheme prefix from the driver-local path.
// "srb:/d/f" -> ("srb", "/d/f"); "/tmp/x" -> ("ufs", "/tmp/x").
func SplitPath(path string) (scheme, local string) {
	if i := strings.Index(path, ":"); i > 0 && !strings.Contains(path[:i], "/") {
		return path[:i], path[i+1:]
	}
	return "ufs", path
}

// Default is the process-wide registry, preloaded with the ufs driver.
var Default = func() *Registry {
	r := &Registry{}
	r.Register(UFSDriver{})
	return r
}()
