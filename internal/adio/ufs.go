package adio

import (
	"os"
)

// UFSDriver is the Unix-filesystem ADIO implementation backed by the host
// OS (ROMIO's ad_ufs).
type UFSDriver struct{}

// Name implements Driver.
func (UFSDriver) Name() string { return "ufs" }

// Open implements Driver.
func (UFSDriver) Open(path string, flags int, hints Hints) (File, error) {
	f, err := os.OpenFile(path, toOSFlags(flags), 0o644)
	if err != nil {
		return nil, err
	}
	return ufsFile{f}, nil
}

// Delete implements Driver.
func (UFSDriver) Delete(path string) error { return os.Remove(path) }

func toOSFlags(flags int) int {
	var out int
	switch flags & O_ACCESS {
	case O_RDONLY:
		out = os.O_RDONLY
	case O_WRONLY:
		out = os.O_WRONLY
	default:
		out = os.O_RDWR
	}
	if flags&O_CREATE != 0 {
		out |= os.O_CREATE
	}
	if flags&O_TRUNC != 0 {
		out |= os.O_TRUNC
	}
	if flags&O_EXCL != 0 {
		out |= os.O_EXCL
	}
	if flags&O_APPEND != 0 {
		out |= os.O_APPEND
	}
	return out
}

type ufsFile struct {
	f *os.File
}

func (u ufsFile) ReadAt(p []byte, off int64) (int, error)  { return u.f.ReadAt(p, off) }
func (u ufsFile) WriteAt(p []byte, off int64) (int, error) { return u.f.WriteAt(p, off) }

func (u ufsFile) Size() (int64, error) {
	st, err := u.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (u ufsFile) Truncate(size int64) error { return u.f.Truncate(size) }
func (u ufsFile) Sync() error               { return u.f.Sync() }
func (u ufsFile) Close() error              { return u.f.Close() }
