package adio

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func TestSplitPath(t *testing.T) {
	cases := []struct{ in, scheme, local string }{
		{"srb:/dir/file", "srb", "/dir/file"},
		{"mem:/x", "mem", "/x"},
		{"/tmp/plain", "ufs", "/tmp/plain"},
		{"relative/path", "ufs", "relative/path"},
		{"ufs:/explicit", "ufs", "/explicit"},
	}
	for _, c := range cases {
		s, l := SplitPath(c.in)
		if s != c.scheme || l != c.local {
			t.Errorf("SplitPath(%q) = %q,%q want %q,%q", c.in, s, l, c.scheme, c.local)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := &Registry{}
	r.Register(NewMemFS())
	if _, err := r.Lookup("mem"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrUnknownDriver) {
		t.Fatalf("lookup missing = %v", err)
	}
	if got := r.Drivers(); len(got) != 1 || got[0] != "mem" {
		t.Fatalf("drivers = %v", got)
	}
	if _, _, err := r.Resolve("gone:/x"); !errors.Is(err, ErrUnknownDriver) {
		t.Fatalf("resolve = %v", err)
	}
}

func TestHints(t *testing.T) {
	var h Hints
	if h.Get("k", "d") != "d" {
		t.Fatal("nil hints default")
	}
	h = Hints{"k": "v"}
	if h.Get("k", "d") != "v" || h.Get("other", "d") != "d" {
		t.Fatal("hint lookup")
	}
}

func driverFileRoundTrip(t *testing.T, r *Registry, path string) {
	t.Helper()
	f, err := r.Open(path, O_RDWR|O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("adio"), 1000)
	if n, err := f.WriteAt(data, 100); err != nil || n != len(data) {
		t.Fatalf("write = %d, %v", n, err)
	}
	if sz, err := f.Size(); err != nil || sz != int64(100+len(data)) {
		t.Fatalf("size = %d, %v", sz, err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 100); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := f.Truncate(50); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 50 {
		t.Fatalf("size after truncate = %d", sz)
	}
	if _, err := f.ReadAt(make([]byte, 10), 1000); err != io.EOF {
		t.Fatalf("read past EOF = %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open(path, O_RDONLY, nil); err == nil {
		t.Fatal("open after delete succeeded")
	}
}

func TestUFSDriver(t *testing.T) {
	r := &Registry{}
	r.Register(UFSDriver{})
	driverFileRoundTrip(t, r, filepath.Join(t.TempDir(), "f.bin"))
}

func TestMemFSDriver(t *testing.T) {
	r := &Registry{}
	r.Register(NewMemFS())
	driverFileRoundTrip(t, r, "mem:/f.bin")
}

func TestMemFSFlags(t *testing.T) {
	d := NewMemFS()
	if _, err := d.Open("/missing", O_RDONLY, nil); err == nil {
		t.Fatal("open missing without create")
	}
	f, err := d.Open("/f", O_WRONLY|O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("hello"), 0)
	f.Close()
	if _, err := d.Open("/f", O_WRONLY|O_CREATE|O_EXCL, nil); err == nil {
		t.Fatal("excl create over existing")
	}
	f2, err := d.Open("/f", O_RDWR|O_TRUNC, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := f2.Size(); sz != 0 {
		t.Fatalf("size after O_TRUNC = %d", sz)
	}
}

func TestDefaultRegistryHasUFS(t *testing.T) {
	if _, err := Default.Lookup("ufs"); err != nil {
		t.Fatal(err)
	}
}

func TestUFSFlagsMapping(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flags.bin")
	d := UFSDriver{}
	if _, err := d.Open(path, O_RDONLY, nil); err == nil {
		t.Fatal("open missing file")
	}
	f, err := d.Open(path, O_WRONLY|O_CREATE|O_EXCL, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("xyz"), 0)
	f.Close()
	if _, err := d.Open(path, O_WRONLY|O_CREATE|O_EXCL, nil); err == nil {
		t.Fatal("excl on existing file")
	}
}
