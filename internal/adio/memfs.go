package adio

import (
	"fmt"
	"io"

	"semplar/internal/storage"
)

// MemFSDriver is an in-process ADIO filesystem used by tests and examples
// that need a fast local baseline (the "local I/O" side of the paper's
// local-vs-remote gap).
type MemFSDriver struct {
	store *storage.MemStore
}

// NewMemFS returns an empty in-memory filesystem driver.
func NewMemFS() *MemFSDriver {
	return &MemFSDriver{store: storage.NewMemStore()}
}

// Name implements Driver.
func (*MemFSDriver) Name() string { return "mem" }

// Open implements Driver.
func (d *MemFSDriver) Open(path string, flags int, hints Hints) (File, error) {
	obj, err := d.store.Open(path)
	switch {
	case err == storage.ErrNotFound && flags&O_CREATE != 0:
		obj, err = d.store.Create(path)
		if err == storage.ErrExists { // lost a create race; reopen
			obj, err = d.store.Open(path)
		}
	case err == nil && flags&O_CREATE != 0 && flags&O_EXCL != 0:
		return nil, fmt.Errorf("memfs: %s: file exists", path)
	}
	if err != nil {
		return nil, fmt.Errorf("memfs: %s: %w", path, err)
	}
	if flags&O_TRUNC != 0 && flags&O_ACCESS != O_RDONLY {
		if err := obj.Truncate(0); err != nil {
			return nil, err
		}
	}
	return memFile{obj}, nil
}

// Delete implements Driver.
func (d *MemFSDriver) Delete(path string) error { return d.store.Remove(path) }

type memFile struct {
	obj storage.Object
}

func (m memFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := m.obj.ReadAt(p, off)
	if err == io.EOF && n == len(p) {
		err = nil
	}
	return n, err
}

func (m memFile) WriteAt(p []byte, off int64) (int, error) { return m.obj.WriteAt(p, off) }

// ReadAtVec implements VectorIO with a plain per-segment loop — memory is
// random-access, so the win here is exercising the list-I/O path in tests,
// not round trips.
func (m memFile) ReadAtVec(segs []Vec) (int, error) {
	total := 0
	for _, s := range segs {
		n, err := m.ReadAt(s.Buf, s.Off)
		total += n
		if err != nil {
			return total, err
		}
		if n < len(s.Buf) {
			return total, io.EOF
		}
	}
	return total, nil
}

// WriteAtVec implements VectorIO with a plain per-segment loop.
func (m memFile) WriteAtVec(segs []Vec) (int, error) {
	total := 0
	for _, s := range segs {
		n, err := m.obj.WriteAt(s.Buf, s.Off)
		total += n
		if err != nil {
			return total, err
		}
		if n < len(s.Buf) {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}
func (m memFile) Size() (int64, error)                     { return m.obj.Size() }
func (m memFile) Truncate(size int64) error                { return m.obj.Truncate(size) }
func (m memFile) Sync() error                              { return m.obj.Sync() }
func (m memFile) Close() error                             { return m.obj.Close() }
