package srb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestPipelinedCallsConcurrent hammers one connection from many goroutines:
// every call must come back with its own response (demux by tag), and under
// -race this doubles as the pipelining stress test.
func TestPipelinedCallsConcurrent(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/pipe", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const opsPer = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			blk := make([]byte, 64)
			for i := 0; i < opsPer; i++ {
				off := int64(w*opsPer+i) * 64
				for j := range blk {
					blk[j] = byte(w)
				}
				if _, err := f.WriteAt(blk, off); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				got := make([]byte, 64)
				if _, err := f.ReadAt(got, off); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if got[0] != byte(w) || got[63] != byte(w) {
					errs <- fmt.Errorf("worker %d read back %d at %d, want %d", w, got[0], off, w)
					return
				}
				if _, err := conn.Ping(); err != nil {
					errs <- fmt.Errorf("worker %d ping: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSeqWraparound drives the tag counter across the uint32 boundary:
// calls keep completing, and tag 0 is never issued.
func TestSeqWraparound(t *testing.T) {
	_, conn := startPair(t)
	conn.mu.Lock()
	conn.seq = ^uint32(0) - 3
	conn.mu.Unlock()
	for i := 0; i < 10; i++ {
		if _, err := conn.Ping(); err != nil {
			t.Fatalf("ping %d across wraparound: %v", i, err)
		}
	}
	conn.mu.Lock()
	seq := conn.seq
	conn.mu.Unlock()
	// 3 tags before the boundary, 0 skipped, 7 after: the counter must
	// have wrapped to a small nonzero value.
	if seq == 0 || seq > 10 {
		t.Fatalf("seq after wraparound = %d", seq)
	}
}

// TestSeqWraparoundSkipsInFlightTags checks the collision path: a tag still
// pending when the counter wraps onto it must be skipped, not reissued.
func TestSeqWraparoundSkipsInFlightTags(t *testing.T) {
	seqs := make(chan uint32, 4)
	cEnd, sEnd := net.Pipe()
	scriptedConn(sEnd, func(req *request) *response {
		seqs <- req.seq
		return &response{}
	})
	conn, err := NewConn(cEnd, "tester")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Park fake in-flight calls on tags 1 and 2 and point the counter at
	// the wrap boundary; the next call must land on tag 3.
	conn.mu.Lock()
	conn.pending[1] = &pendingCall{done: make(chan struct{})}
	conn.pending[2] = &pendingCall{done: make(chan struct{})}
	conn.seq = ^uint32(0)
	conn.mu.Unlock()

	if _, err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	if got := <-seqs; got != 3 {
		t.Fatalf("post-wrap tag = %d, want 3 (0 reserved, 1 and 2 in flight)", got)
	}
	conn.mu.Lock()
	delete(conn.pending, 1)
	delete(conn.pending, 2)
	conn.mu.Unlock()
}

// TestOutOfOrderResponses answers two pipelined calls in reverse order; the
// demux must route each response to the caller holding its tag.
func TestOutOfOrderResponses(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	firstSeen := make(chan struct{})
	go func() {
		br := bufio.NewReader(sEnd)
		bw := bufio.NewWriter(sEnd)
		req, err := readRequest(br) // handshake
		if err != nil {
			return
		}
		writeResponse(bw, &response{seq: req.seq, value: protoVer})
		bw.Flush()
		r1, err := readRequest(br)
		if err != nil {
			return
		}
		close(firstSeen)
		r2, err := readRequest(br)
		if err != nil {
			return
		}
		// Reverse order: the later request is answered first.
		writeResponse(bw, &response{seq: r2.seq, value: 222})
		writeResponse(bw, &response{seq: r1.seq, value: 111})
		bw.Flush()
	}()
	conn, err := NewConn(cEnd, "tester")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	type result struct {
		v   int64
		err error
	}
	aCh := make(chan result, 1)
	go func() {
		v, err := conn.Ping()
		aCh <- result{v, err}
	}()
	<-firstSeen // guarantee call A's frame was read before B sends
	bV, bErr := conn.Ping()
	a := <-aCh
	if a.err != nil || bErr != nil {
		t.Fatalf("pings failed: %v / %v", a.err, bErr)
	}
	if a.v != 111 || bV != 222 {
		t.Fatalf("demuxed values = %d, %d; want 111, 222", a.v, bV)
	}
}

// TestUnknownTagSeversConn: a response carrying a tag nothing is waiting
// for means the stream's framing cannot be trusted; the connection must die
// with ErrProtocol.
func TestUnknownTagSeversConn(t *testing.T) {
	// scriptedConn always echoes req.seq, so script the damage by hand.
	cEnd, sEnd := net.Pipe()
	go func() {
		br := bufio.NewReader(sEnd)
		bw := bufio.NewWriter(sEnd)
		req, err := readRequest(br)
		if err != nil {
			return
		}
		writeResponse(bw, &response{seq: req.seq, value: protoVer})
		bw.Flush()
		if req, err = readRequest(br); err != nil {
			return
		}
		writeResponse(bw, &response{seq: req.seq + 1000})
		bw.Flush()
	}()
	conn, err := NewConn(cEnd, "tester")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = conn.Ping()
	if !errors.Is(err, ErrProtocol) && !errors.Is(err, ErrTransport) {
		t.Fatalf("unknown-tag error = %v, want ErrProtocol (or the transport tear it caused)", err)
	}
	// The connection is sticky-dead now.
	if _, err := conn.Ping(); err == nil {
		t.Fatal("call on severed connection succeeded")
	}
}

// TestTimeoutClassificationNotSticky is the regression for the old
// Conn.timedOut flag: after one op times out, later calls on the severed
// connection must classify as transport failures, not timeouts.
func TestTimeoutClassificationNotSticky(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	scriptedConn(sEnd, func(req *request) *response {
		if req.op == opSeek {
			return nil // stall exactly this op
		}
		return &response{}
	})
	conn, err := NewConn(cEnd, "tester")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := conn.Open("/f", O_RDWR, "")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetOpTimeout(50 * time.Millisecond)

	_, err = f.Seek(0, SeekStart)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled op error = %v, want ErrTimeout", err)
	}
	_, err = conn.Ping()
	if err == nil {
		t.Fatal("call on watchdog-severed connection succeeded")
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("later call misclassified as timeout: %v", err)
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("later call error = %v, want ErrTransport", err)
	}
}

// TestWatchdogLosesRaceToResponse pins the claim semantics that fix the
// watchdog-after-response race: once a response has claimed the call, a
// late-firing timer must not complete it again (and therefore never severs
// the connection).
func TestWatchdogLosesRaceToResponse(t *testing.T) {
	pc := &pendingCall{done: make(chan struct{})}
	if !pc.complete(&response{value: 42}, nil) {
		t.Fatal("first completion rejected")
	}
	if pc.complete(nil, ErrTimeout) {
		t.Fatal("second completion (the watchdog) won a settled call")
	}
	if pc.err != nil || pc.resp.value != 42 {
		t.Fatalf("settled outcome overwritten: %v %v", pc.resp, pc.err)
	}
}

// TestPipelinedTimeoutFailsWholeConn: when the watchdog severs a conn with
// several calls in flight, the stalled call reports ErrTimeout and the
// collateral calls report a retryable transport error.
func TestPipelinedTimeoutFailsWholeConn(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	scriptedConn(sEnd, func(req *request) *response {
		return nil // stall everything
	})
	conn, err := NewConn(cEnd, "tester")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetOpTimeout(60 * time.Millisecond)

	const n = 4
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := conn.Ping()
			errCh <- err
		}()
	}
	timeouts, transports := 0, 0
	for i := 0; i < n; i++ {
		err := <-errCh
		switch {
		case err == nil:
			t.Fatal("stalled pipelined call succeeded")
		case !Retryable(err):
			t.Fatalf("in-flight op on severed conn not retryable: %v", err)
		case errors.Is(err, ErrTimeout):
			timeouts++
		case errors.Is(err, ErrTransport):
			transports++
		default:
			t.Fatalf("unclassified error: %v", err)
		}
	}
	// Each call has its own watchdog; every one that fired before the conn
	// died reports its own timeout, the rest are collateral transport
	// failures. At least the first timer to fire must classify as timeout.
	if timeouts == 0 {
		t.Fatalf("no ErrTimeout among pipelined failures (%d transport)", transports)
	}
}

// TestServerReadAheadBatch pushes a burst of raw frames in one write and
// checks every response comes back: the server's read-ahead loop must
// execute queued requests in order and flush all their responses.
func TestServerReadAheadBatch(t *testing.T) {
	srv, conn := startPair(t)
	f, err := conn.Open("/burst", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	const burst = 100
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blk := []byte{byte(i)}
			if _, err := f.WriteAt(blk, int64(i)); err != nil {
				t.Errorf("burst write %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got := make([]byte, burst)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d after burst", i, got[i])
		}
	}
	if reqs := srv.Stats().Requests; reqs < burst {
		t.Fatalf("server counted %d requests, want >= %d", reqs, burst)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteAtVec covers the vectored write path end to end: discontiguous
// segments land at their offsets, contiguous ones merge on the wire, and
// the acknowledged total covers every byte.
func TestWriteAtVec(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/vec", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	segs := []WriteSeg{
		{Off: 0, Data: bytes.Repeat([]byte{'a'}, 10)},
		{Off: 10, Data: bytes.Repeat([]byte{'b'}, 10)}, // contiguous with the first
		{Off: 100, Data: bytes.Repeat([]byte{'c'}, 5)}, // gap
	}
	n, err := f.WriteAtVec(segs)
	if err != nil || n != 25 {
		t.Fatalf("WriteAtVec = %d, %v", n, err)
	}
	got := make([]byte, 105)
	if _, err := f.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{'a'}, 10), bytes.Repeat([]byte{'b'}, 10)...)
	if !bytes.Equal(got[:20], want) {
		t.Fatalf("contiguous run = %q", got[:20])
	}
	if !bytes.Equal(got[100:105], bytes.Repeat([]byte{'c'}, 5)) {
		t.Fatalf("gapped segment = %q", got[100:105])
	}
	for i := 20; i < 100; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, got[i])
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWritevMalformedVectorIsStatusError: a corrupt vector payload must be
// answered with an ErrInvalid status — the wire frame parsed fine, so the
// connection survives.
func TestWritevMalformedVectorIsStatusError(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/badvec", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.call(&request{op: opWritev, handle: f.handle, data: []byte{0xff, 0xff}})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("malformed vector error = %v, want ErrInvalid", err)
	}
	// The connection took no damage.
	if _, err := conn.Ping(); err != nil {
		t.Fatalf("ping after malformed vector: %v", err)
	}
}
