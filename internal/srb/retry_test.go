package srb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"semplar/internal/netsim"
	"semplar/internal/storage"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		// Terminal: the server made a definitive statement.
		{ErrNotFound, false},
		{ErrExists, false},
		{ErrIsDir, false},
		{ErrNotDir, false},
		{ErrNotEmpty, false},
		{ErrPerm, false},
		{ErrInvalid, false},
		{ErrBadHandle, false},
		{ErrProtocol, false},
		{ErrIO, false},
		{fmt.Errorf("wrapped: %w", ErrNotFound), false},
		// Semantic results, not transport failures.
		{io.EOF, false},
		{io.ErrShortWrite, false},
		// Overload shedding: transient status errors. A rate-limited
		// tenant retries after the server's hint; busy servers likewise.
		{ErrServerBusy, true},
		{fmt.Errorf("wrapped: %w", ErrServerBusy), true},
		{ErrRateLimited, true},
		{fmt.Errorf("wrapped: %w", ErrRateLimited), true},
		{&RateLimitedError{RetryAfter: time.Second}, true},
		{fmt.Errorf("wrapped: %w", &RateLimitedError{RetryAfter: time.Second}), true},
		// Tenant-layer verdicts are terminal: retrying cannot mint
		// credentials or shrink stored bytes.
		{ErrAuthFailed, false},
		{fmt.Errorf("wrapped: %w", ErrAuthFailed), false},
		{ErrQuotaExceeded, false},
		{fmt.Errorf("wrapped: %w", ErrQuotaExceeded), false},
		// Transient: transport, timeout, closed conn, unknown net errors.
		{ErrTransport, true},
		{ErrTimeout, true},
		{ErrConnClosed, true},
		{fmt.Errorf("%w: broken pipe", ErrTransport), true},
		{netsim.ErrClosed, true},
		{netsim.ErrReset, true},
		{netsim.ErrDialFault, true},
		{errors.New("connection reset by peer"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	pol := RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Multiplier:  2,
	}
	// Without jitter the sequence is deterministic: 10, 20, 40, 80, 80.
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := pol.Backoff(i); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// With jitter every sample stays inside backoff * [1-j, 1+j].
	pol.Jitter = 0.5
	for i := 0; i < 100; i++ {
		got := pol.Backoff(1)
		if got < 10*time.Millisecond || got > 30*time.Millisecond {
			t.Fatalf("jittered Backoff(1) = %v outside [10ms, 30ms]", got)
		}
	}
}

func TestBackoffForHonorsRetryAfterFloor(t *testing.T) {
	pol := RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Multiplier:  2,
	}
	// No hint: identical to Backoff.
	if got := pol.BackoffFor(0, ErrServerBusy); got != 10*time.Millisecond {
		t.Fatalf("BackoffFor without hint = %v, want 10ms", got)
	}
	// A retry-after hint above the schedule becomes the floor.
	hinted := fmt.Errorf("op: %w", &RateLimitedError{RetryAfter: 250 * time.Millisecond})
	if got := pol.BackoffFor(0, hinted); got != 250*time.Millisecond {
		t.Fatalf("BackoffFor with 250ms hint = %v, want 250ms", got)
	}
	// A hint below the schedule defers to the (larger) backoff.
	small := &RateLimitedError{RetryAfter: time.Millisecond}
	if got := pol.BackoffFor(3, small); got != 80*time.Millisecond {
		t.Fatalf("BackoffFor(3) with 1ms hint = %v, want 80ms", got)
	}
	// Non-rate-limit errors never consult a hint.
	if got := pol.BackoffFor(1, ErrTransport); got != 20*time.Millisecond {
		t.Fatalf("BackoffFor transport = %v, want 20ms", got)
	}
}

func TestRetryPolicyEnabled(t *testing.T) {
	if (RetryPolicy{}).Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	if (RetryPolicy{MaxAttempts: 1}).Enabled() {
		t.Fatal("single-attempt policy reports enabled")
	}
	if !DefaultRetryPolicy().Enabled() {
		t.Fatal("default policy reports disabled")
	}
}

// scriptedConn runs a minimal in-process server over one end of a pipe:
// it answers the handshake and open itself and delegates every other
// request to fn. fn returning nil stops the server cold — a stalled
// (black-holed) backend.
func scriptedConn(c net.Conn, fn func(req *request) *response) {
	go func() {
		defer c.Close()
		br := bufio.NewReader(c)
		bw := bufio.NewWriter(c)
		for {
			req, err := readRequest(br)
			if err != nil {
				return
			}
			var resp *response
			switch req.op {
			case opConnect:
				resp = &response{value: protoVer}
			case opOpen:
				resp = &response{value: 7}
			default:
				resp = fn(req)
			}
			if resp == nil {
				// Stall: swallow the request, never answer. Keep
				// reading so the client's flush is not blocked.
				continue
			}
			resp.seq = req.seq
			if err := writeResponse(bw, resp); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()
}

func TestOpTimeoutOnStalledServer(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	scriptedConn(sEnd, func(req *request) *response { return nil })
	conn, err := NewConn(cEnd, "tester")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetOpTimeout(50 * time.Millisecond)

	start := time.Now()
	_, err = conn.Ping()
	if err == nil {
		t.Fatal("ping against stalled server succeeded")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled op error = %v, want ErrTimeout", err)
	}
	if !Retryable(err) {
		t.Fatal("timeout not classified retryable")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The connection is dead; later calls fail fast with the sticky error.
	if _, err := conn.Ping(); err == nil {
		t.Fatal("call on timed-out connection succeeded")
	}
}

func TestTransportErrorsWrapped(t *testing.T) {
	_, conn := startPair(t)
	// Sever the transport out from under the client, then call.
	conn.c.Close()
	_, err := conn.Ping()
	if err == nil {
		t.Fatal("ping over severed transport succeeded")
	}
	if !errors.Is(err, ErrTransport) && !errors.Is(err, ErrConnClosed) {
		t.Fatalf("severed transport error = %v, want ErrTransport", err)
	}
	if !Retryable(err) {
		t.Fatalf("transport error %v not retryable", err)
	}
	// A transport EOF must NOT satisfy errors.Is(err, io.EOF): that
	// identity is reserved for the semantic end-of-file result.
	if errors.Is(err, io.EOF) {
		t.Fatalf("transport error %v aliases io.EOF", err)
	}
}

func TestWriteZeroByteAckSurfacesShortWrite(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	scriptedConn(sEnd, func(req *request) *response {
		if req.op == opWrite {
			return &response{value: 0} // "success", zero bytes written
		}
		return &response{}
	})
	conn, err := NewConn(cEnd, "tester")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := conn.Open("/zero", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var n int
	var werr error
	go func() {
		n, werr = f.Write([]byte("progressless"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Write looped forever on zero-byte ack")
	}
	if werr == nil || !errors.Is(werr, io.ErrShortWrite) {
		t.Fatalf("Write = %d, %v; want io.ErrShortWrite", n, werr)
	}
}

func TestDialRetrySurvivesTransientFailures(t *testing.T) {
	srv := NewMemServer(storage.DeviceSpec{})
	dial := func() (net.Conn, error) {
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		return cEnd, nil
	}
	pol := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}

	conn, err := DialRetry(netsim.FlakyDialer(dial, 2), "tester", pol)
	if err != nil {
		t.Fatalf("dial with 2 transient failures: %v", err)
	}
	if _, err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// More failures than attempts: the last transient error surfaces.
	_, err = DialRetry(netsim.FlakyDialer(dial, 10), "tester", pol)
	if err == nil {
		t.Fatal("dial with persistent failures succeeded")
	}
	if !errors.Is(err, netsim.ErrDialFault) {
		t.Fatalf("dial error = %v, want ErrDialFault", err)
	}
}

func TestConnCallVsCloseRace(t *testing.T) {
	// Hammer call/Close concurrently; under -race this guards the
	// connection's locking discipline. Errors are expected once Close
	// lands — they just must be clean, never a hang or a panic.
	for iter := 0; iter < 20; iter++ {
		srv := NewMemServer(storage.DeviceSpec{})
		conn := connectTo(t, srv)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if _, err := conn.Ping(); err != nil {
						if !errors.Is(err, ErrConnClosed) && !Retryable(err) {
							t.Errorf("ping error: %v", err)
						}
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn.Close()
		}()
		wg.Wait()
	}
}
