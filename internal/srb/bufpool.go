package srb

import (
	"sync"
	"sync/atomic"
)

// Payload buffer pooling. Every request and response that carries data used
// to pay one make([]byte, dataLen) on the read side of the wire — at small
// op sizes under pipelining that allocation (and the GC pressure behind it)
// dominates the per-op cost. Buffers are pooled in a few power-of-two size
// classes; getBuf hands out the smallest class that fits and putBuf returns
// a buffer to its class by capacity.
//
// Ownership discipline: a buffer obtained from getBuf is owned by exactly
// one party at a time and may be released at most once, only after the last
// read of its contents. The wire parsers allocate from the pool; the hot
// paths (the server's per-request loop, the client's ReadAt/Read copy-out)
// release. Paths that retain decoded data (List, Stat, GetAttr — all of
// which copy into strings) simply never release, and the GC reclaims the
// buffer as it always did.
//
// putBuf accepts any buffer whose capacity matches a class exactly, so a
// non-pooled allocation that happens to be class-sized is recycled too —
// harmless, since the caller asserts nothing else references it.

// bufClasses are the pooled capacities, ascending. The largest is MaxChunk:
// no wire payload exceeds it.
var bufClasses = [...]int{4 << 10, 64 << 10, 1 << 20, MaxChunk}

var bufPools = func() []*sync.Pool {
	pools := make([]*sync.Pool, len(bufClasses))
	for i, size := range bufClasses {
		size := size
		pools[i] = &sync.Pool{New: func() any {
			b := make([]byte, size)
			return &b
		}}
	}
	return pools
}()

// bufPoolGets/bufPoolPuts count pooled hand-outs and returns. On an idle
// system the two converge (transient imbalance is fine: buffers legally
// parked in in-flight requests, or retained for the GC by the metadata
// paths); tests diff them around leak-prone error paths, where every get
// must be matched.
var bufPoolGets, bufPoolPuts atomic.Int64

// getBuf returns a buffer of length n backed by pooled storage. n larger
// than MaxChunk (which the protocol bounds reject anyway) falls back to a
// plain allocation.
func getBuf(n int) []byte {
	for i, size := range bufClasses {
		if n <= size {
			b := *bufPools[i].Get().(*[]byte)
			bufPoolGets.Add(1)
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putBuf returns a buffer to its size-class pool. Buffers whose capacity is
// not exactly a pool class (nil included) are ignored. The caller must not
// touch b afterwards.
func putBuf(b []byte) {
	c := cap(b)
	for i, size := range bufClasses {
		if c == size {
			b = b[:size]
			bufPools[i].Put(&b)
			bufPoolPuts.Add(1)
			return
		}
	}
}
