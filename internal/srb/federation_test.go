package srb_test

// The federation suite: replica semantics promoted from one server's
// resource pairs (replica_test.go) to a fleet of servers behind an MCAT
// placer. It exercises the full stack — cluster.Testbed shards,
// mcat.Placer placement, core.FedFS routing — through the public API
// only, which is why it lives in an external test package.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/netsim"
	"semplar/internal/srb"
)

func fastSpec() cluster.Spec {
	return cluster.Spec{Name: "fed-fast", Profile: netsim.Loopback()}
}

// fedEnv couples a federated testbed with a FedFS client on node 0.
type fedEnv struct {
	tb *cluster.Testbed
	fs *core.FedFS
}

func newFedEnv(t *testing.T, shards, replicas int, cfg core.FedConfig) *fedEnv {
	t.Helper()
	tb := cluster.NewFederated(fastSpec(), 1, shards, replicas)
	for i := 0; i < shards; i++ {
		if err := tb.ActiveShard(i).MkdirAll("/fed"); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Endpoints = tb.FedEndpoints(0)
	cfg.Placer = tb.Placer()
	fs, err := core.NewFedFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fedEnv{tb: tb, fs: fs}
}

func shardIndex(t *testing.T, name string) int {
	t.Helper()
	i, err := strconv.Atoi(name[1:])
	if err != nil {
		t.Fatalf("shard name %q", name)
	}
	return i
}

// slotImage extracts the dense byte image slot holds for content striped
// at the given stripe size and width — what every replica of the slot
// must store bit-identically.
func slotImage(content []byte, stripe, width, slot int) []byte {
	var out []byte
	for b := slot * stripe; b < len(content); b += stripe * width {
		end := b + stripe
		if end > len(content) {
			end = len(content)
		}
		out = append(out, content[b:end]...)
	}
	return out
}

// shardSlotBytes reads the physical bytes of one slot file directly off a
// shard's store (which survives shard restarts), bypassing the protocol.
func shardSlotBytes(t *testing.T, tb *cluster.Testbed, shard string, slotPath string) []byte {
	t.Helper()
	idx := shardIndex(t, shard)
	srv := tb.ActiveShard(idx)
	if srv == nil {
		t.Fatalf("shard %s is down", shard)
	}
	e, err := srv.Catalog().Lookup(slotPath)
	if err != nil {
		t.Fatalf("%s on %s: %v", slotPath, shard, err)
	}
	obj, err := tb.ShardStore(idx).Open(e.PhysicalKey)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, e.Size)
	if _, err := obj.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

// requireConverged asserts every server of every slot's replica set holds
// the exact slot image for content.
func requireConverged(t *testing.T, tb *cluster.Testbed, path string, content []byte, stripe int) {
	t.Helper()
	slots, ok := tb.Placer().Lookup(path)
	if !ok {
		t.Fatalf("no placement for %s", path)
	}
	for slot, servers := range slots {
		want := slotImage(content, stripe, len(slots), slot)
		for _, server := range servers {
			got := shardSlotBytes(t, tb, server, core.SlotPath(path, slot))
			if !bytes.Equal(got, want) {
				t.Fatalf("slot %d on %s diverged: %d bytes vs %d expected",
					slot, server, len(got), len(want))
			}
		}
	}
}

// TestFederationPlacement pins the placement function across fleet
// shapes: distinct servers per replica set, width and replication clamped
// to the fleet, primaries rotating so no two slots share one.
func TestFederationPlacement(t *testing.T) {
	cases := []struct {
		name      string
		shards    int
		replicas  int
		width     int
		wantSlots int
		wantRepl  int
	}{
		{"3-servers-2-replicas", 3, 2, 3, 3, 2},
		{"5-servers-3-replicas", 5, 3, 5, 5, 3},
		{"width-below-fleet", 4, 2, 2, 2, 2},
		{"width-clamped-to-fleet", 2, 1, 6, 2, 1},
		{"replication-clamped-to-fleet", 2, 5, 2, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := cluster.NewFederated(fastSpec(), 1, tc.shards, tc.replicas)
			p := tb.Placer()
			slots, err := p.Place("/fed/file", tc.width)
			if err != nil {
				t.Fatal(err)
			}
			if len(slots) != tc.wantSlots {
				t.Fatalf("slots = %d, want %d", len(slots), tc.wantSlots)
			}
			primaries := map[string]int{}
			for slot, rs := range slots {
				if len(rs) != tc.wantRepl {
					t.Fatalf("slot %d replica set %v, want %d servers", slot, rs, tc.wantRepl)
				}
				seen := map[string]bool{}
				for _, s := range rs {
					if seen[s] {
						t.Fatalf("slot %d repeats %s: %v", slot, s, rs)
					}
					seen[s] = true
				}
				primaries[rs.Primary()]++
			}
			for s, n := range primaries {
				if n > 1 {
					t.Fatalf("%s is primary of %d slots", s, n)
				}
			}
			// Placement is stable: asking again, even with a different
			// width, returns the committed answer.
			again, err := p.Place("/fed/file", 1)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(again) != fmt.Sprint(slots) {
				t.Fatalf("placement drifted: %v then %v", slots, again)
			}
		})
	}
}

// TestFederationReadFailoverOrder verifies reads honor the replica
// order: the primary serves while it is up (observable by tampering with
// its physical copy), and the first replica takes over when the
// primary's shard dies.
func TestFederationReadFailoverOrder(t *testing.T) {
	const stripe = 4096
	env := newFedEnv(t, 3, 2, core.FedConfig{Width: 1, StripeSize: stripe})
	content := make([]byte, stripe)
	rand.New(rand.NewSource(20)).Read(content)

	f, err := env.fs.Open("/fed/order", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	slots, _ := env.tb.Placer().Lookup("/fed/order")
	primary, replica := slots[0][0], slots[0][1]

	// Tamper with the primary's physical copy: a healthy read must show
	// the tampered byte, proving the primary is preferred over the
	// (clean) replica.
	pIdx := shardIndex(t, primary)
	e, err := env.tb.ActiveShard(pIdx).Catalog().Lookup(core.SlotPath("/fed/order", 0))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := env.tb.ShardStore(pIdx).Open(e.PhysicalKey)
	if err != nil {
		t.Fatal(err)
	}
	tampered := content[0] ^ 0xff
	if _, err := obj.WriteAt([]byte{tampered}, 0); err != nil {
		t.Fatal(err)
	}

	r1, err := env.fs.Open("/fed/order", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if _, err := r1.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	r1.Close()
	if got[0] != tampered {
		t.Fatalf("healthy read byte = %#x, want primary's %#x", got[0], tampered)
	}

	// Kill the primary's shard: a fresh read must fail over to the first
	// replica and see the clean byte.
	env.tb.KillShard(pIdx)
	r2, err := env.fs.Open("/fed/order", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("failover read via %s: %v", replica, err)
	}
	if got[0] != content[0] {
		t.Fatalf("failover read byte = %#x, want replica's %#x", got[0], content[0])
	}
	env.tb.RestartShard(pIdx)
}

// TestFederationReplication is the sync-vs-async table: with one replica
// shard dead, synchronous replication refuses the write (reporting the
// contiguous prefix confirmed on every replica), while asynchronous
// replication acknowledges on the primary, leaves an observable
// divergence window, and catches the replica up after its shard restarts
// once Sync drains the backlog.
func TestFederationReplication(t *testing.T) {
	const stripe = 2048
	cases := []struct {
		name  string
		async bool
		retry srb.RetryPolicy
	}{
		// Sync: fail fast so the dead replica surfaces as a write error.
		{"sync-dead-replica-blocks-write", false, srb.RetryPolicy{}},
		// Async: generous retries so the queued replica writes ride out
		// the shard's downtime and land after the restart.
		{"async-diverges-then-catches-up", true,
			srb.RetryPolicy{MaxAttempts: 60, BaseBackoff: 2 * time.Millisecond,
				MaxBackoff: 20 * time.Millisecond, Multiplier: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Width 2 over 3 shards leaves one server that is a replica
			// but nobody's primary — the victim, so primaries stay up in
			// both modes.
			env := newFedEnv(t, 3, 2, core.FedConfig{
				Width: 2, StripeSize: stripe, Async: tc.async, Retry: tc.retry})
			path := "/fed/repl"
			slots, err := env.tb.Placer().Place(path, 2)
			if err != nil {
				t.Fatal(err)
			}
			victim := slots[1][1]
			if victim == slots[0].Primary() || victim == slots[1].Primary() {
				t.Fatalf("victim %s is a primary: %v", victim, slots)
			}
			firstHit := -1
			for slot, rs := range slots {
				for _, s := range rs {
					if s == victim {
						firstHit = slot
						break
					}
				}
				if firstHit >= 0 {
					break
				}
			}
			vIdx := shardIndex(t, victim)
			env.tb.KillShard(vIdx)

			content := make([]byte, 4*stripe)
			rand.New(rand.NewSource(21)).Read(content)
			f, err := env.fs.Open(path, adio.O_RDWR|adio.O_CREATE, nil)
			if err != nil {
				t.Fatal(err)
			}
			n, werr := f.WriteAt(content, 0)

			if !tc.async {
				// Sync: the write must not claim success, and the count
				// is the contiguous prefix confirmed on every replica.
				if werr == nil {
					t.Fatalf("sync write with dead replica succeeded (n=%d)", n)
				}
				if want := firstHit * stripe; n != want {
					t.Fatalf("confirmed prefix = %d, want %d", n, want)
				}
				f.Close()
				// After the shard returns, a rewrite converges everywhere.
				// O_CREATE matters: the victim never materialized its slot
				// file, so the repair write must be allowed to create it.
				env.tb.RestartShard(vIdx)
				f2, err := env.fs.Open(path, adio.O_RDWR|adio.O_CREATE, nil)
				if err != nil {
					t.Fatal(err)
				}
				if n, err := f2.WriteAt(content, 0); err != nil || n != len(content) {
					t.Fatalf("rewrite = %d, %v", n, err)
				}
				if err := f2.Sync(); err != nil {
					t.Fatal(err)
				}
				if err := f2.Close(); err != nil {
					t.Fatal(err)
				}
				requireConverged(t, env.tb, path, content, stripe)
				return
			}

			// Async: the primary ack is enough.
			if werr != nil || n != len(content) {
				t.Fatalf("async write = %d, %v; want full ack", n, werr)
			}
			// Divergence window: the victim's store has no slot file yet
			// while the primaries already hold their images.
			if keys := env.tb.ShardStore(vIdx).Keys(); len(keys) != 0 {
				t.Fatalf("victim store has %v during divergence window", keys)
			}
			for slot := range slots {
				want := slotImage(content, stripe, len(slots), slot)
				got := shardSlotBytes(t, env.tb, slots[slot].Primary(), core.SlotPath(path, slot))
				if !bytes.Equal(got, want) {
					t.Fatalf("primary of slot %d incomplete during window", slot)
				}
			}
			// Restart the shard; Sync drains the replica backlog, whose
			// retries ride out the downtime — catch-up after restart.
			env.tb.RestartShard(vIdx)
			if err := f.Sync(); err != nil {
				t.Fatalf("sync after restart: %v", err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			requireConverged(t, env.tb, path, content, stripe)
		})
	}
}

// TestFederationOpenWithoutPlacementFails pins Delete's contract for
// never-placed paths: the placer, not the servers, answers.
func TestFederationOpenWithoutPlacementFails(t *testing.T) {
	env := newFedEnv(t, 2, 1, core.FedConfig{})
	if err := env.fs.Delete("/fed/never-created"); !errors.Is(err, srb.ErrNotFound) {
		t.Fatalf("delete of unplaced path = %v", err)
	}
}
