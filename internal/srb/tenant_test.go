package srb

import (
	"bufio"
	"errors"
	"io"
	"testing"
	"time"

	"semplar/internal/netsim"
	"semplar/internal/storage"
	"semplar/internal/tenant"
)

// tenantServer builds a memory server with a tenant registry on the given
// clock, registering each tenant under a per-tenant key derived from its ID.
func tenantServer(now func() time.Time, tenants map[string]tenant.Limits) (*Server, *tenant.Registry) {
	srv := NewMemServer(storage.DeviceSpec{})
	var reg *tenant.Registry
	if now != nil {
		reg = tenant.NewRegistryClock(now)
	} else {
		reg = tenant.NewRegistry()
	}
	for id, lim := range tenants {
		reg.Register(id, tenantKey(id), lim)
	}
	srv.SetTenants(reg)
	return srv, reg
}

func tenantKey(id string) []byte { return []byte("key-for-" + id) }

// connectAuth dials srv over a simulated pipe presenting cred.
func connectAuth(t *testing.T, srv *Server, cred Credentials) (*Conn, error) {
	t.Helper()
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(sEnd)
	return NewConnAuth(cEnd, "tester", cred)
}

func TestAuthHandshakeSuccess(t *testing.T) {
	srv, _ := tenantServer(nil, map[string]tenant.Limits{"acme": {}})
	conn, err := connectAuth(t, srv, Credentials{TenantID: "acme", Key: tenantKey("acme")})
	if err != nil {
		t.Fatalf("authenticated handshake: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	// Files created on an authenticated session are owned by the tenant
	// and accounted against its usage.
	f, err := conn.Open("/owned", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("twelve bytes"), 0); err != nil {
		t.Fatal(err)
	}
	if got := srv.Catalog().Usage("acme"); got != 12 {
		t.Fatalf("tenant usage = %d, want 12", got)
	}
}

func TestAuthRefusalPaths(t *testing.T) {
	cases := []struct {
		name string
		cred Credentials
	}{
		{"anonymous", Credentials{}},
		{"unknown tenant", Credentials{TenantID: "ghost", Key: tenantKey("ghost")}},
		{"wrong key", Credentials{TenantID: "acme", Key: []byte("not the key")}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			srv, _ := tenantServer(nil, map[string]tenant.Limits{"acme": {}})
			conn, err := connectAuth(t, srv, c.cred)
			if err == nil {
				conn.Close()
				t.Fatal("handshake accepted")
			}
			if !errors.Is(err, ErrAuthFailed) {
				t.Fatalf("handshake error = %v, want ErrAuthFailed", err)
			}
			if Retryable(err) {
				t.Fatal("auth failure classified retryable")
			}
			if st := srv.Stats(); st.AuthFailed != 1 {
				t.Fatalf("AuthFailed = %d, want 1", st.AuthFailed)
			}
			// The refused connection is torn down server-side: no conns,
			// no handles left behind.
			waitStats(t, srv, "refused conn teardown", func(st ServerStats) bool {
				return st.ActiveConns == 0 && st.OpenHandles == 0
			})
		})
	}
}

func TestMalformedAuthBlobRefusedWithoutDesync(t *testing.T) {
	// Handcraft connect requests with broken auth blobs. Each must be
	// answered with a clean statusAuthFailed response (never a stream
	// desync) and then hung up on.
	blobs := [][]byte{
		{0xff},                      // not even a length prefix
		{0, 0, 0, 9, 'a'},           // tenant-ID length beyond the blob
		append(encodeAuth("acme", make([]byte, tenant.ProofSize)), 0xEE), // trailing garbage
		encodeAuth("acme", nil)[:6], // truncated proof length field
	}
	for i, blob := range blobs {
		srv, _ := tenantServer(nil, map[string]tenant.Limits{"acme": {}})
		cEnd, sEnd := netsim.Pipe(0, nil, nil)
		go srv.ServeConn(sEnd)
		bw := bufio.NewWriter(cEnd)
		if err := writeRequest(bw, &request{op: opConnect, seq: 1, path: "tester", data: blob}); err != nil {
			t.Fatalf("blob %d: write: %v", i, err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("blob %d: flush: %v", i, err)
		}
		resp, err := readResponse(bufio.NewReader(cEnd))
		if err != nil {
			t.Fatalf("blob %d: response: %v", i, err)
		}
		if resp.status != statusAuthFailed {
			t.Fatalf("blob %d: status = %d, want statusAuthFailed", i, resp.status)
		}
		// The server hangs up after refusing: the next read sees EOF, not
		// a half-parsed stream.
		if _, err := readResponse(bufio.NewReader(cEnd)); !errors.Is(err, io.EOF) && !errors.Is(err, netsim.ErrClosed) {
			t.Fatalf("blob %d: post-refusal read = %v, want EOF", i, err)
		}
		cEnd.Close()
		waitStats(t, srv, "refused conn teardown", func(st ServerStats) bool {
			return st.ActiveConns == 0
		})
	}
}

func TestOpsRequireAuthenticatedSession(t *testing.T) {
	// A session that skips the handshake entirely must not reach dispatch.
	srv, _ := tenantServer(nil, map[string]tenant.Limits{"acme": {}})
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(sEnd)
	bw := bufio.NewWriter(cEnd)
	if err := writeRequest(bw, &request{op: opPing, seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := readResponse(bufio.NewReader(cEnd))
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != statusAuthFailed {
		t.Fatalf("unauthenticated op status = %d, want statusAuthFailed", resp.status)
	}
	cEnd.Close()
}

func TestAnonymousServerStillAcceptsAnonymousConns(t *testing.T) {
	// Without a registry the legacy handshake keeps working, creds and all.
	srv := NewMemServer(storage.DeviceSpec{})
	conn, err := connectAuth(t, srv, Credentials{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestRateLimitShedAndRetryAfter(t *testing.T) {
	// A frozen virtual clock makes admission fully deterministic: the
	// tenant gets exactly its burst, then sheds until the clock moves.
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	srv, reg := tenantServer(clock, map[string]tenant.Limits{
		"meter": {OpsPerSec: 10, Burst: 0.1}, // depth 1: one op per frozen instant
	})
	conn, err := connectAuth(t, srv, Credentials{TenantID: "meter", Key: tenantKey("meter")})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The connect itself is not charged; the first op drains the bucket.
	if _, err := conn.Ping(); err != nil {
		t.Fatalf("first op: %v", err)
	}
	_, err = conn.Ping()
	if err == nil {
		t.Fatal("second op admitted with an empty bucket")
	}
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("shed error = %v, want ErrRateLimited", err)
	}
	if !Retryable(err) {
		t.Fatal("rate-limit shed not classified retryable")
	}
	var rl *RateLimitedError
	if !errors.As(err, &rl) || rl.RetryAfter <= 0 {
		t.Fatalf("shed error carries no retry-after hint: %v", err)
	}
	if st := srv.Stats(); st.RateLimited != 1 {
		t.Fatalf("RateLimited = %d, want 1", st.RateLimited)
	}
	if ts := reg.StatsAll()["meter"]; ts.ShedOps != 1 || ts.Admitted != 1 {
		t.Fatalf("tenant stats = %+v, want 1 shed, 1 admitted", ts)
	}

	// Advancing the virtual clock by the hint refills the bucket.
	now = now.Add(rl.RetryAfter)
	if _, err := conn.Ping(); err != nil {
		t.Fatalf("op after retry-after: %v", err)
	}
}

func TestQuotaExceededTerminal(t *testing.T) {
	srv, _ := tenantServer(nil, map[string]tenant.Limits{
		"boxed": {QuotaBytes: 16},
	})
	conn, err := connectAuth(t, srv, Credentials{TenantID: "boxed", Key: tenantKey("boxed")})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := conn.Open("/boxedfile", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 12), 0); err != nil {
		t.Fatalf("write within quota: %v", err)
	}
	// Growing past the quota is refused before any byte is stored.
	_, err = f.WriteAt(make([]byte, 12), 12)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota write = %v, want ErrQuotaExceeded", err)
	}
	if Retryable(err) {
		t.Fatal("quota exhaustion classified retryable")
	}
	if got := srv.Catalog().Usage("boxed"); got != 12 {
		t.Fatalf("usage after refused write = %d, want 12", got)
	}
	// Truncate-up is the same growth path.
	if err := f.Truncate(64); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota truncate = %v, want ErrQuotaExceeded", err)
	}
	// Rewrites in place and shrinking stay admissible...
	if _, err := f.WriteAt(make([]byte, 12), 0); err != nil {
		t.Fatalf("in-place rewrite: %v", err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	// ...and freed bytes come back to the tenant.
	if _, err := f.WriteAt(make([]byte, 12), 0); err != nil {
		t.Fatalf("write after shrink: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Unlink("/boxedfile"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Catalog().Usage("boxed"); got != 0 {
		t.Fatalf("usage after unlink = %d, want 0", got)
	}
}

func TestFairShareIsolation(t *testing.T) {
	// One throttled tenant shedding hard must not take an unlimited
	// neighbor down with it — per-tenant buckets, not a global gate.
	now := time.Unix(2_000_000, 0)
	clock := func() time.Time { return now }
	srv, reg := tenantServer(clock, map[string]tenant.Limits{
		"greedy": {OpsPerSec: 1, Burst: 1},
		"polite": {},
	})
	greedy, err := connectAuth(t, srv, Credentials{TenantID: "greedy", Key: tenantKey("greedy")})
	if err != nil {
		t.Fatal(err)
	}
	defer greedy.Close()
	polite, err := connectAuth(t, srv, Credentials{TenantID: "polite", Key: tenantKey("polite")})
	if err != nil {
		t.Fatal(err)
	}
	defer polite.Close()

	var sheds int
	for i := 0; i < 20; i++ {
		if _, err := greedy.Ping(); errors.Is(err, ErrRateLimited) {
			sheds++
		}
		if _, err := polite.Ping(); err != nil {
			t.Fatalf("well-behaved tenant op %d: %v", i, err)
		}
	}
	if sheds == 0 {
		t.Fatal("flooding tenant was never shed")
	}
	stats := reg.StatsAll()
	if stats["polite"].ShedOps != 0 {
		t.Fatalf("well-behaved tenant shed %d ops", stats["polite"].ShedOps)
	}
	if stats["greedy"].ShedOps == 0 {
		t.Fatal("abuser sheds not visible in per-tenant stats")
	}
}
