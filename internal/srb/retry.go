package srb

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"time"
)

// ErrTimeout marks an operation that exceeded its per-operation deadline.
// The connection it fired on is dead (the watchdog severs it to unblock the
// reader), so the error is retryable — on a fresh connection.
var ErrTimeout = errors.New("srb: operation timed out")

// ErrTransport wraps any failure of the wire itself — a broken TCP stream,
// a connection reset, an unexpected EOF mid-response. Transport errors are
// sticky on their connection and retryable on a new one, in contrast to
// server status errors (ErrNotFound, ErrPerm, ...) which are terminal.
var ErrTransport = errors.New("srb: transport failure")

// RetryPolicy describes how the client reacts to transient failures:
// how many times one logical operation may be attempted, how long to back
// off between attempts (exponential with jitter, so reconnect storms from
// many streams decorrelate), and the per-operation deadline.
//
// The zero value disables retries and deadlines — the historical
// fail-fast behavior. Use DefaultRetryPolicy for production-style
// settings.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries for one operation,
	// including the first. Values below 2 mean "no retries".
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 5ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each backoff randomized, in [0, 1]:
	// the sleep is drawn from backoff * [1-Jitter, 1+Jitter].
	Jitter float64
	// OpTimeout is the per-operation deadline on a connection; when it
	// fires the connection is severed and the call fails with
	// ErrTimeout. Zero means no deadline.
	OpTimeout time.Duration
}

// DefaultRetryPolicy returns the recommended production policy: four
// attempts, 10ms initial backoff doubling to a 2s cap with 20% jitter, and
// a 30s per-operation deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
		OpTimeout:   30 * time.Second,
	}
}

// Enabled reports whether the policy allows any retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Backoff returns the sleep before retry number retry (0-based), following
// exponential growth with jitter.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	cap := p.MaxBackoff
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := float64(base) * math.Pow(mult, float64(retry))
	if d > float64(cap) {
		d = float64(cap)
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		d *= 1 - j + 2*j*rand.Float64()
	}
	return time.Duration(d)
}

// BackoffFor returns the sleep before retry number retry (0-based) after
// err. It is Backoff raised to any server-supplied retry-after floor: when
// err carries a *RateLimitedError hint, sleeping less than the hint would
// only buy another shed, so the hint wins over a smaller exponential step
// (but never shortens a larger one).
func (p RetryPolicy) BackoffFor(retry int, err error) time.Duration {
	d := p.Backoff(retry)
	var rl *RateLimitedError
	if errors.As(err, &rl) && rl.RetryAfter > d {
		d = rl.RetryAfter
	}
	return d
}

// retryTransient is the explicit list of errors whose operation can be
// reissued:
//
//   - ErrServerBusy: overload shedding; the server refused the request
//     without starting it, so a backed-off replay is always safe — and,
//     unlike transport errors, it does not require a fresh connection.
//   - ErrTimeout: the per-operation deadline fired and the watchdog
//     severed the connection; retryable on a fresh one.
//   - ErrTransport: the wire itself failed mid-exchange; sticky on its
//     connection, retryable on a new one.
//   - ErrConnClosed / ErrServerClosed: the call raced a deliberate local
//     Close or a server drain; the operation never completed and a replay
//     elsewhere is safe.
//   - ErrRateLimited: per-tenant fair-share shedding; like ErrServerBusy
//     the request was refused before it started, so replay is safe. The
//     response's retry-after hint is honored as a backoff floor by
//     RetryPolicy.BackoffFor.
var retryTransient = []error{
	ErrServerBusy,
	ErrRateLimited,
	ErrTimeout,
	ErrTransport,
	ErrConnClosed,
	ErrServerClosed,
}

// retryTerminal is the explicit list of errors where replay cannot help:
// definitive server statements (ENOENT, EEXIST, permission, protocol
// violations), semantic short reads (io.EOF is a result, not a failure —
// transport EOFs are wrapped in ErrTransport and never reach this
// comparison), and short writes the server acknowledged without error
// (e.g. a full device), where blind replay would likely loop.
// ErrAuthFailed is terminal because the server hangs up after sending it
// and the same credentials will fail the same way; ErrQuotaExceeded because
// replaying a write cannot shrink the tenant's stored bytes.
var retryTerminal = []error{
	ErrNotFound, ErrExists, ErrIsDir, ErrNotDir, ErrBadHandle,
	ErrInvalid, ErrNotEmpty, ErrPerm, ErrIO, ErrProtocol,
	ErrAuthFailed, ErrQuotaExceeded,
	io.EOF, io.ErrShortWrite,
}

// Retryable classifies an error from the client stack: true for transient
// failures whose operation can safely be reissued (see retryTransient),
// false for terminal ones (see retryTerminal).
//
// Unknown errors — raw net errors from a dialer, simulator failures —
// default to retryable: the reconnect budget bounds the damage, and
// misclassifying a transient fault as terminal loses a recoverable
// request. Every srb error constant must appear in one of the two tables;
// the retryclass lint rule enforces that, so a newly added error cannot
// silently inherit the default.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	for _, transient := range retryTransient {
		if errors.Is(err, transient) {
			return true
		}
	}
	for _, terminal := range retryTerminal {
		if errors.Is(err, terminal) {
			return false
		}
	}
	return true
}

// DialRetry dials and handshakes an anonymous connection, retrying
// transient failures (unreachable server, broken handshake) under the
// policy. The returned connection has the policy's per-operation deadline
// installed.
func DialRetry(dial func() (net.Conn, error), user string, pol RetryPolicy) (*Conn, error) {
	return DialRetryAuth(dial, user, Credentials{}, pol)
}

// DialRetryAuth is DialRetry with tenant credentials. An auth refusal is
// terminal and returned immediately — re-dialing with the same bad key
// would only hammer the server.
func DialRetryAuth(dial func() (net.Conn, error), user string, cred Credentials, pol RetryPolicy) (*Conn, error) {
	attempts := pol.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(pol.BackoffFor(i-1, lastErr))
		}
		raw, err := dial()
		if err == nil {
			var conn *Conn
			conn, err = NewConnAuth(raw, user, cred)
			if err == nil {
				conn.SetOpTimeout(pol.OpTimeout)
				return conn, nil
			}
		}
		if !Retryable(err) {
			return nil, err
		}
		lastErr = err
	}
	if attempts > 1 {
		return nil, fmt.Errorf("srb: dial failed after %d attempts: %w", attempts, lastErr)
	}
	return nil, lastErr
}
