package srb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"semplar/internal/netsim"
	"semplar/internal/storage"
)

// startPair wires a fresh server and client over an unshaped simulated
// pipe.
func startPair(t *testing.T) (*Server, *Conn) {
	t.Helper()
	srv := NewMemServer(storage.DeviceSpec{})
	conn := connectTo(t, srv)
	return srv, conn
}

func connectTo(t *testing.T, srv *Server) *Conn {
	t.Helper()
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(sEnd)
	conn, err := NewConn(cEnd, "tester")
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestHandshakeAndPing(t *testing.T) {
	_, conn := startPair(t)
	ts, err := conn.Ping()
	if err != nil || ts == 0 {
		t.Fatalf("ping = %d, %v", ts, err)
	}
}

func TestCreateWriteRead(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/data", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("remote i/o over SRB")
	if n, err := f.WriteAt(msg, 0); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(msg) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if sz, err := f.Size(); err != nil || sz != int64(len(msg)) {
		t.Fatalf("size = %d, %v", sz, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed handle is rejected.
	if _, err := f.ReadAt(got, 0); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("read on closed handle = %v", err)
	}
}

func TestReadPastEOF(t *testing.T) {
	_, conn := startPair(t)
	f, _ := conn.Open("/f", O_RDWR|O_CREATE, "")
	f.WriteAt([]byte("12345"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 5 || err != io.EOF {
		t.Fatalf("short read = %d, %v; want 5, EOF", n, err)
	}
	n, err = f.ReadAt(buf, 100)
	if n != 0 || err != io.EOF {
		t.Fatalf("past-EOF read = %d, %v", n, err)
	}
}

func TestFilePointerAndSeek(t *testing.T) {
	_, conn := startPair(t)
	f, _ := conn.Open("/fp", O_RDWR|O_CREATE, "")
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(0, SeekStart); err != nil || pos != 0 {
		t.Fatalf("seek = %d, %v", pos, err)
	}
	buf := make([]byte, 11)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello world" {
		t.Fatalf("got %q", buf)
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Fatalf("read at EOF = %v", err)
	}
	if pos, err := f.Seek(-5, SeekEnd); err != nil || pos != 6 {
		t.Fatalf("seek end = %d, %v", pos, err)
	}
	small := make([]byte, 5)
	f.Read(small)
	if string(small) != "world" {
		t.Fatalf("got %q", small)
	}
	if _, err := f.Seek(-100, SeekCurrent); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative seek = %v", err)
	}
}

func TestOpenFlags(t *testing.T) {
	_, conn := startPair(t)
	if _, err := conn.Open("/missing", O_RDONLY, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open missing = %v", err)
	}
	f, err := conn.Open("/f", O_WRONLY|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("data"), 0)
	// Reading a write-only handle fails.
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInvalid) {
		t.Fatalf("read on wronly = %v", err)
	}
	f.Close()

	// O_EXCL on an existing file.
	if _, err := conn.Open("/f", O_RDWR|O_CREATE|O_EXCL, ""); !errors.Is(err, ErrExists) {
		t.Fatalf("excl = %v", err)
	}

	// O_TRUNC clears content.
	f2, err := conn.Open("/f", O_RDWR|O_TRUNC, "")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := f2.Size(); sz != 0 {
		t.Fatalf("size after trunc = %d", sz)
	}
	// Write on read-only handle fails.
	f2.WriteAt([]byte("x"), 0)
	f2.Close()
	f3, _ := conn.Open("/f", O_RDONLY, "")
	if _, err := f3.WriteAt([]byte("y"), 0); !errors.Is(err, ErrInvalid) {
		t.Fatalf("write on rdonly = %v", err)
	}

	// O_APPEND positions writes at EOF.
	f4, _ := conn.Open("/f", O_WRONLY|O_APPEND, "")
	f4.Write([]byte("-more"))
	f4.Close()
	f5, _ := conn.Open("/f", O_RDONLY, "")
	buf := make([]byte, 6)
	f5.ReadAt(buf, 0)
	if string(buf) != "x-more" {
		t.Fatalf("append result %q", buf)
	}
}

func TestCollectionsOverWire(t *testing.T) {
	_, conn := startPair(t)
	if err := conn.Mkdir("/proj"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Mkdir("/proj"); !errors.Is(err, ErrExists) {
		t.Fatalf("dup mkdir = %v", err)
	}
	for i := 0; i < 3; i++ {
		f, err := conn.Open(fmt.Sprintf("/proj/f%d", i), O_WRONLY|O_CREATE, "")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(bytes.Repeat([]byte{'x'}, i*10), 0)
		f.Close()
	}
	ls, err := conn.List("/proj")
	if err != nil || len(ls) != 3 {
		t.Fatalf("list = %d entries, %v", len(ls), err)
	}
	if ls[1].Path != "/proj/f1" || ls[1].Size != 10 || ls[1].IsDir {
		t.Fatalf("entry = %+v", ls[1])
	}
	st, err := conn.Stat("/proj")
	if err != nil || !st.IsDir {
		t.Fatalf("stat dir = %+v, %v", st, err)
	}
	if err := conn.Rmdir("/proj"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir nonempty = %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := conn.Unlink(fmt.Sprintf("/proj/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Rmdir("/proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Stat("/proj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat removed = %v", err)
	}
}

func TestAttrsAndRename(t *testing.T) {
	_, conn := startPair(t)
	f, _ := conn.Open("/f", O_WRONLY|O_CREATE, "")
	f.Close()
	if err := conn.SetAttr("/f", "experiment", "fig8"); err != nil {
		t.Fatal(err)
	}
	v, err := conn.GetAttr("/f", "experiment")
	if err != nil || v != "fig8" {
		t.Fatalf("attr = %q, %v", v, err)
	}
	if _, err := conn.GetAttr("/f", "none"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing attr = %v", err)
	}
	if err := conn.Rename("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Stat("/g"); err != nil {
		t.Fatal(err)
	}
}

func TestResourcesOverWire(t *testing.T) {
	srv := NewMemServer(storage.DeviceSpec{})
	srv.AddResource("disk2", "disk", storage.NewMemStore())
	conn := connectTo(t, srv)
	rs, err := conn.Resources()
	if err != nil {
		t.Fatal(err)
	}
	if rs["mem"] != "memory" || rs["disk2"] != "disk" {
		t.Fatalf("resources = %v", rs)
	}
}

func TestUnlinkRemovesPhysical(t *testing.T) {
	srv, conn := startPair(t)
	f, _ := conn.Open("/f", O_WRONLY|O_CREATE, "")
	f.WriteAt([]byte("bytes"), 0)
	f.Close()
	if err := conn.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	// Physical store must be empty again.
	st := srv.resources["mem"]
	if keys := st.Keys(); len(keys) != 0 {
		t.Fatalf("physical objects remain: %v", keys)
	}
}

func TestLargeTransferChunking(t *testing.T) {
	_, conn := startPair(t)
	f, _ := conn.Open("/big", O_RDWR|O_CREATE, "")
	src := make([]byte, MaxChunk+MaxChunk/2+123)
	rand.New(rand.NewSource(2)).Read(src)
	if n, err := f.WriteAt(src, 0); err != nil || n != len(src) {
		t.Fatalf("write = %d, %v", n, err)
	}
	got := make([]byte, len(src))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(src) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("large transfer corrupted")
	}
}

func TestSharedFileStripedWriters(t *testing.T) {
	// Each "node" opens its own connection and writes its stripe of a
	// shared file — the SEMPLAR access pattern.
	srv := NewMemServer(storage.DeviceSpec{})
	const nodes = 6
	const stripe = 8 << 10
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cEnd, sEnd := netsim.Pipe(0, nil, nil)
			go srv.ServeConn(sEnd)
			conn, err := NewConn(cEnd, fmt.Sprintf("rank%d", r))
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			defer conn.Close()
			f, err := conn.Open("/shared", O_RDWR|O_CREATE, "")
			if err != nil {
				t.Errorf("rank %d open: %v", r, err)
				return
			}
			defer f.Close()
			data := bytes.Repeat([]byte{byte('A' + r)}, stripe)
			if _, err := f.WriteAt(data, int64(r*stripe)); err != nil {
				t.Errorf("rank %d write: %v", r, err)
			}
		}(r)
	}
	wg.Wait()

	conn := connectTo(t, srv)
	f, err := conn.Open("/shared", O_RDONLY, "")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != nodes*stripe {
		t.Fatalf("size = %d want %d", sz, nodes*stripe)
	}
	for r := 0; r < nodes; r++ {
		buf := make([]byte, stripe)
		if _, err := f.ReadAt(buf, int64(r*stripe)); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != byte('A'+r) {
				t.Fatalf("stripe %d corrupted (got %c)", r, b)
			}
		}
	}
}

func TestServerStats(t *testing.T) {
	srv, conn := startPair(t)
	f, _ := conn.Open("/f", O_RDWR|O_CREATE, "")
	f.WriteAt(make([]byte, 1000), 0)
	f.ReadAt(make([]byte, 500), 0)
	st := srv.Stats()
	if st.Connections != 1 || st.BytesWritten != 1000 || st.BytesRead != 500 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Requests < 3 {
		t.Fatalf("requests = %d", st.Requests)
	}
}

func TestOverTCP(t *testing.T) {
	srv := NewMemServer(storage.DeviceSpec{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	conn, err := Dial(l.Addr().String(), "tcpuser")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := conn.Open("/tcp-file", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abc"), 50000)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("tcp round trip corrupted")
	}
}

func TestCallAfterClose(t *testing.T) {
	_, conn := startPair(t)
	conn.Close()
	if _, err := conn.Ping(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("ping after close = %v", err)
	}
}

func TestConcurrentCallsOneConn(t *testing.T) {
	// Calls on one connection serialize but must not interleave
	// corruptly.
	_, conn := startPair(t)
	f, _ := conn.Open("/c", O_RDWR|O_CREATE, "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte('0' + i)}, 1024)
			if _, err := f.WriteAt(data, int64(i)*1024); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		buf := make([]byte, 1024)
		if _, err := f.ReadAt(buf, int64(i)*1024); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if buf[0] != byte('0'+i) || buf[1023] != byte('0'+i) {
			t.Fatalf("slot %d corrupted", i)
		}
	}
}

func TestTruncateOverWire(t *testing.T) {
	_, conn := startPair(t)
	f, _ := conn.Open("/t", O_RDWR|O_CREATE, "")
	f.WriteAt(make([]byte, 100), 0)
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 10 {
		t.Fatalf("size = %d", sz)
	}
	st, _ := conn.Stat("/t")
	if st.Size != 10 {
		t.Fatalf("catalog size = %d", st.Size)
	}
}

func TestFstatUnlinkedHandle(t *testing.T) {
	// Stat through a handle whose catalog entry was unlinked: POSIX
	// semantics keep the open object usable.
	_, conn := startPair(t)
	f, _ := conn.Open("/ephemeral", O_RDWR|O_CREATE, "")
	defer f.Close()
	f.WriteAt([]byte("still here"), 0)
	if err := conn.Unlink("/ephemeral"); err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatalf("fstat after unlink: %v", err)
	}
	if fi.Size != 10 {
		t.Fatalf("size = %d", fi.Size)
	}
	// Data is still readable through the handle.
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "still here" {
		t.Fatalf("got %q", buf)
	}
}

func TestFilePath(t *testing.T) {
	_, conn := startPair(t)
	f, _ := conn.Open("/named", O_WRONLY|O_CREATE, "")
	defer f.Close()
	if f.Path() != "/named" {
		t.Fatalf("path = %q", f.Path())
	}
}

func TestServerMkdirAll(t *testing.T) {
	srv, conn := startPair(t)
	if err := srv.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	st, err := conn.Stat("/a/b/c")
	if err != nil || !st.IsDir {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	// Idempotent.
	if err := srv.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
}

func TestSyncThroughWire(t *testing.T) {
	_, conn := startPair(t)
	f, _ := conn.Open("/s", O_RDWR|O_CREATE, "")
	defer f.Close()
	f.WriteAt([]byte("flush me"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sync on a closed handle fails with ErrBadHandle.
	f2, _ := conn.Open("/s2", O_RDWR|O_CREATE, "")
	f2.Close()
	if err := f2.Sync(); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("sync closed = %v", err)
	}
}

func TestHandshakeAgainstGarbage(t *testing.T) {
	// A client connecting to something that is not an SRB server must
	// fail the handshake, not hang or panic.
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go func() {
		// "Server" sends garbage then closes.
		sEnd.Write([]byte("HTTP/1.1 200 OK\r\n\r\n notsrb notsrb notsrb"))
		sEnd.Close()
	}()
	if _, err := NewConn(cEnd, "x"); err == nil {
		t.Fatal("handshake against garbage succeeded")
	}
}

func TestResponseSeqMismatch(t *testing.T) {
	// A server replying with the wrong sequence number poisons the
	// connection.
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go func() {
		br := bufio.NewReader(sEnd)
		bw := bufio.NewWriter(sEnd)
		for {
			req, err := readRequest(br)
			if err != nil {
				return
			}
			writeResponse(bw, &response{seq: req.seq + 7, value: protoVer})
			bw.Flush()
		}
	}()
	if _, err := NewConn(cEnd, "x"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("seq mismatch = %v", err)
	}
}

func TestStatusErrorMapping(t *testing.T) {
	// Every status code round-trips err -> status -> err.
	errs := []error{ErrNotFound, ErrExists, ErrIsDir, ErrNotDir,
		ErrBadHandle, ErrInvalid, ErrNotEmpty, ErrPerm, ErrServerBusy,
		ErrAuthFailed, ErrRateLimited, ErrQuotaExceeded}
	for _, e := range errs {
		st, msg := errToStatus(e)
		back := statusToErr(st, msg, 0)
		if !errors.Is(back, e) {
			t.Errorf("%v -> %d -> %v", e, st, back)
		}
	}
	if st, msg := errToStatus(errors.New("weird io thing")); st != statusIO || msg == "" {
		t.Errorf("opaque error -> %d %q", st, msg)
	}
	if statusToErr(statusOK, "", 0) != nil {
		t.Error("ok status mapped to error")
	}
	if err := statusToErr(statusIO, "disk on fire", 0); err == nil ||
		!strings.Contains(err.Error(), "disk on fire") {
		t.Errorf("message lost: %v", err)
	}
	// statusRateLimited decodes the value field as a retry-after hint.
	err := statusToErr(statusRateLimited, "", int64(250*time.Millisecond))
	var rl *RateLimitedError
	if !errors.As(err, &rl) || rl.RetryAfter != 250*time.Millisecond {
		t.Errorf("rate-limited hint lost: %v", err)
	}
	if !errors.Is(err, ErrRateLimited) {
		t.Errorf("RateLimitedError does not unwrap to ErrRateLimited: %v", err)
	}
}
