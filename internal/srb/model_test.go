package srb

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"semplar/internal/storage"
)

// modelFile is the reference implementation: a plain byte slice with
// POSIX write/truncate semantics.
type modelFile struct {
	data []byte
}

func (m *modelFile) writeAt(p []byte, off int64) {
	end := off + int64(len(p))
	if end > int64(len(m.data)) {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:end], p)
}

func (m *modelFile) truncate(size int64) {
	if size <= int64(len(m.data)) {
		m.data = m.data[:size]
		return
	}
	grown := make([]byte, size)
	copy(grown, m.data)
	m.data = grown
}

// TestModelRandomOps drives a random sequence of operations against a real
// server over the wire and an in-memory model, checking full-file
// equivalence throughout. This is the protocol's conformance test.
func TestModelRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			srv := NewMemServer(storage.DeviceSpec{})
			conn := connectTo(t, srv)
			f, err := conn.Open("/model", O_RDWR|O_CREATE, "")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			model := &modelFile{}

			check := func(step int) {
				sz, err := f.Size()
				if err != nil {
					t.Fatalf("step %d: size: %v", step, err)
				}
				if sz != int64(len(model.data)) {
					t.Fatalf("step %d: size %d, model %d", step, sz, len(model.data))
				}
				if sz == 0 {
					return
				}
				got := make([]byte, sz)
				if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
					t.Fatalf("step %d: read: %v", step, err)
				}
				if !bytes.Equal(got, model.data) {
					t.Fatalf("step %d: content diverged", step)
				}
			}

			for step := 0; step < 120; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // random write
					off := int64(rng.Intn(20000))
					n := rng.Intn(4000) + 1
					buf := make([]byte, n)
					rng.Read(buf)
					if _, err := f.WriteAt(buf, off); err != nil {
						t.Fatalf("step %d: write: %v", step, err)
					}
					model.writeAt(buf, off)
				case 5, 6: // random read of an arbitrary window
					off := int64(rng.Intn(25000))
					n := rng.Intn(4000) + 1
					got := make([]byte, n)
					rn, err := f.ReadAt(got, off)
					if err != nil && err != io.EOF {
						t.Fatalf("step %d: read: %v", step, err)
					}
					var want []byte
					if off < int64(len(model.data)) {
						end := off + int64(n)
						if end > int64(len(model.data)) {
							end = int64(len(model.data))
						}
						want = model.data[off:end]
					}
					if rn != len(want) || !bytes.Equal(got[:rn], want) {
						t.Fatalf("step %d: read window mismatch (%d vs %d bytes)",
							step, rn, len(want))
					}
				case 7: // truncate
					size := int64(rng.Intn(22000))
					if err := f.Truncate(size); err != nil {
						t.Fatalf("step %d: truncate: %v", step, err)
					}
					model.truncate(size)
				case 8: // seek + pointer write
					off := int64(rng.Intn(20000))
					if _, err := f.Seek(off, SeekStart); err != nil {
						t.Fatalf("step %d: seek: %v", step, err)
					}
					buf := make([]byte, rng.Intn(1000)+1)
					rng.Read(buf)
					if _, err := f.Write(buf); err != nil {
						t.Fatalf("step %d: pointer write: %v", step, err)
					}
					model.writeAt(buf, off)
				case 9: // full verification
					check(step)
				}
			}
			check(-1)
		})
	}
}

// TestModelMultiConn runs the random-ops model across several connections
// to the same file, serialized by a coin flip, verifying that handle state
// (positions) is per-session while data is shared.
func TestModelMultiConn(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	srv := NewMemServer(storage.DeviceSpec{})
	conns := make([]*Conn, 3)
	files := make([]*File, 3)
	for i := range conns {
		conns[i] = connectTo(t, srv)
		f, err := conns[i].Open("/shared-model", O_RDWR|O_CREATE, "")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		files[i] = f
	}
	model := &modelFile{}
	for step := 0; step < 100; step++ {
		f := files[rng.Intn(len(files))]
		off := int64(rng.Intn(10000))
		buf := make([]byte, rng.Intn(2000)+1)
		rng.Read(buf)
		if _, err := f.WriteAt(buf, off); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		model.writeAt(buf, off)
	}
	got := make([]byte, len(model.data))
	if _, err := files[0].ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model.data) {
		t.Fatal("multi-connection writes diverged from model")
	}
}
