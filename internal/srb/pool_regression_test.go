package srb

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"semplar/internal/storage"
)

// Regression tests for buffer-pool balance on the server's error paths,
// found by the pooluse lint rule: a failed ReadAt and a failed response
// write each used to strand a pooled buffer. The tests diff the global
// get/put counters around the leak-prone path; without the putBuf calls
// on those paths the deltas never converge.

// failObj is a storage.Object whose data-plane operations always fail.
type failObj struct{}

var errMedia = errors.New("simulated media error")

func (failObj) ReadAt(p []byte, off int64) (int, error)  { return 0, errMedia }
func (failObj) WriteAt(p []byte, off int64) (int, error) { return 0, errMedia }
func (failObj) Size() (int64, error)                     { return 0, nil }
func (failObj) Truncate(int64) error                     { return nil }
func (failObj) Sync() error                              { return nil }
func (failObj) Close() error                             { return nil }

var _ storage.Object = failObj{}

func poolDeltas(gets0, puts0 int64) (int64, int64) {
	return bufPoolGets.Load() - gets0, bufPoolPuts.Load() - puts0
}

// waitPoolBalanced polls until every pooled get since the snapshot has a
// matching put (background goroutines may still be releasing), or fails.
func waitPoolBalanced(t *testing.T, gets0, puts0, minGets int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		gets, puts := poolDeltas(gets0, puts0)
		if gets >= minGets && gets == puts {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool imbalance: %d gets, %d puts since snapshot (want >= %d gets, equal)", gets, puts, minGets)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReadErrorRecyclesBuffer drives session.read against an object whose
// ReadAt fails: the pooled buffer allocated for the payload must be
// recycled before the error response returns.
func TestReadErrorRecyclesBuffer(t *testing.T) {
	srv := NewMemServer(storage.DeviceSpec{})
	sess := &session{
		srv:   srv,
		files: map[int32]*openFile{1: {obj: failObj{}, path: "/bad", flags: O_RDWR}},
	}
	gets0, puts0 := bufPoolGets.Load(), bufPoolPuts.Load()
	resp := sess.read(&request{op: opRead, handle: 1, length: 4096, offset: 0})
	if resp.status == statusOK {
		t.Fatalf("read against failObj succeeded: %+v", resp)
	}
	if len(resp.data) != 0 {
		t.Fatalf("error response carries %d bytes of data", len(resp.data))
	}
	gets, puts := poolDeltas(gets0, puts0)
	if gets < 1 || puts < gets {
		t.Fatalf("pool gets/puts = %d/%d after failed read; the error path must recycle its buffer", gets, puts)
	}
}

// budgetConn is a net.Conn that serves a pre-encoded request stream and
// fails writes once a byte budget is exhausted — deterministically killing
// the response for a large read while letting the small earlier responses
// through. Read blocks after the script so the server's reader goroutine
// parks like a real idle connection until Close unblocks it.
type budgetConn struct {
	mu        sync.Mutex
	script    *bytes.Reader
	wrote     int
	failAfter int
	closed    chan struct{}
	closeOnce sync.Once
}

func newBudgetConn(script []byte, failAfter int) *budgetConn {
	return &budgetConn{
		script:    bytes.NewReader(script),
		failAfter: failAfter,
		closed:    make(chan struct{}),
	}
}

func (c *budgetConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	n, _ := c.script.Read(p)
	c.mu.Unlock()
	if n > 0 {
		return n, nil
	}
	<-c.closed
	return 0, errors.New("scripted conn closed")
}

func (c *budgetConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wrote+len(p) > c.failAfter {
		return 0, errors.New("scripted write failure")
	}
	c.wrote += len(p)
	return len(p), nil
}

func (c *budgetConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

type budgetAddr struct{}

func (budgetAddr) Network() string { return "scripted" }
func (budgetAddr) String() string  { return "scripted" }

func (c *budgetConn) LocalAddr() net.Addr                { return budgetAddr{} }
func (c *budgetConn) RemoteAddr() net.Addr               { return budgetAddr{} }
func (c *budgetConn) SetDeadline(t time.Time) error      { return nil }
func (c *budgetConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *budgetConn) SetWriteDeadline(t time.Time) error { return nil }

// TestServeConnWriteFailureRecyclesResponse scripts open + write + a 128 KiB
// read, then fails the transport before the read response fits through it.
// The response payload is pooled; ServeConn must recycle it even though
// writeResponse errored mid-frame.
func TestServeConnWriteFailureRecyclesResponse(t *testing.T) {
	const chunk = 128 << 10

	var script bytes.Buffer
	reqs := []*request{
		{op: opOpen, seq: 1, path: "/f", flags: O_RDWR | O_CREATE},
		{op: opWrite, seq: 2, handle: 1, offset: 0, data: make([]byte, chunk)},
		{op: opRead, seq: 3, handle: 1, offset: 0, length: chunk},
	}
	for _, r := range reqs {
		if err := writeRequest(&script, r); err != nil {
			t.Fatalf("encode request %d: %v", r.seq, err)
		}
	}

	// 1 KiB lets the open and write acks flush but is far below the 64 KiB
	// bufio chunking of the read response, so that write fails mid-frame.
	conn := newBudgetConn(script.Bytes(), 1<<10)
	srv := NewMemServer(storage.DeviceSpec{})
	gets0, puts0 := bufPoolGets.Load(), bufPoolPuts.Load()

	srv.ServeConn(conn) // synchronous: returns when the write failure kills the conn

	// The write-request payload and the read-response payload are both
	// pooled; the reader goroutine may still be recycling an orphan, so
	// poll for convergence.
	waitPoolBalanced(t, gets0, puts0, 2)
}

// TestRetryTablesMatchBehavior pins Retryable's answer to membership in
// the explicit classification tables the retryclass lint rule checks, so
// the tables cannot drift from behavior.
func TestRetryTablesMatchBehavior(t *testing.T) {
	for _, err := range retryTransient {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, but it is in retryTransient", err)
		}
	}
	for _, err := range retryTerminal {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, but it is in retryTerminal", err)
		}
	}
	if Retryable(nil) {
		t.Error("Retryable(nil) = true")
	}
	if !Retryable(errors.New("never seen before")) {
		t.Error("unknown errors must default to retryable")
	}
}
