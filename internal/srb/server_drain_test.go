package srb

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"semplar/internal/netsim"
	"semplar/internal/storage"
)

// slowServer returns a server whose storage charges opLat per object I/O,
// so a write in flight holds the dispatch path open long enough for the
// test to race drain/shed machinery against it.
func slowServer(opLat time.Duration) *Server {
	return NewMemServer(storage.DeviceSpec{OpLatency: opLat})
}

// waitStats polls until pred(Stats()) holds or the deadline passes.
func waitStats(t *testing.T, srv *Server, what string, pred func(ServerStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred(srv.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats = %+v", what, srv.Stats())
}

func TestServeReturnsErrServerClosed(t *testing.T) {
	srv := NewMemServer(storage.DeviceSpec{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	// The listener works before shutdown.
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewConn(raw, "tester")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}

	// Serving again on a drained server refuses immediately.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := srv.Serve(l2); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after Shutdown = %v, want ErrServerClosed", err)
	}
}

func TestShutdownDrainsInflight(t *testing.T) {
	srv := slowServer(100 * time.Millisecond)
	conn := connectTo(t, srv)
	f, err := conn.Open("/drain", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}

	wrote := make(chan error, 1)
	go func() {
		_, werr := f.WriteAt([]byte("survives the drain"), 0)
		wrote <- werr
	}()
	// Wait until the write is actually dispatching: once the inflight
	// gauge ticks, beginOp has marked the connection busy, so the drain
	// sweep is guaranteed to see it as in flight rather than idle.
	waitStats(t, srv, "write in flight", func(ServerStats) bool {
		return srv.inflight.Load() >= 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-wrote; err != nil {
		t.Fatalf("in-flight write lost to drain: %v", err)
	}
	st := srv.Stats()
	if st.Drained < 1 {
		t.Fatalf("Drained = %d, want >= 1", st.Drained)
	}
	if st.OpenHandles != 0 {
		t.Fatalf("OpenHandles = %d after drain, want 0", st.OpenHandles)
	}
	if st.ActiveConns != 0 {
		t.Fatalf("ActiveConns = %d after drain, want 0", st.ActiveConns)
	}
}

func TestShutdownShedsNewConns(t *testing.T) {
	srv := slowServer(200 * time.Millisecond)
	conn := connectTo(t, srv)
	f, err := conn.Open("/busy", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	// A slow write holds the drain open while we probe it.
	wrote := make(chan error, 1)
	go func() {
		_, werr := f.WriteAt([]byte("hold the door"), 0)
		wrote <- werr
	}()
	waitStats(t, srv, "write in flight", func(ServerStats) bool {
		return srv.inflight.Load() >= 1
	})

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	waitStats(t, srv, "drain to begin", func(ServerStats) bool {
		return srv.isDraining()
	})

	// A connection arriving during the drain is refused: its handshake is
	// answered with ErrServerBusy and the conn is closed.
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(sEnd)
	_, lateErr := NewConn(cEnd, "latecomer")
	if !errors.Is(lateErr, ErrServerBusy) {
		t.Fatalf("handshake during drain = %v, want ErrServerBusy", lateErr)
	}
	if !Retryable(lateErr) {
		t.Fatalf("drain-shed error %v not retryable", lateErr)
	}

	if err := <-wrote; err != nil {
		t.Fatalf("in-flight write lost: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := srv.Stats()
	if st.Shed < 1 {
		t.Fatalf("Shed = %d, want >= 1", st.Shed)
	}
	if st.OpenHandles != 0 {
		t.Fatalf("OpenHandles = %d, want 0", st.OpenHandles)
	}
}

func TestShutdownDeadlineForcesClose(t *testing.T) {
	srv := slowServer(300 * time.Millisecond)
	conn := connectTo(t, srv)
	f, err := conn.Open("/stuck", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	wrote := make(chan error, 1)
	go func() {
		_, werr := f.WriteAt([]byte("too slow for the deadline"), 0)
		wrote <- werr
	}()
	waitStats(t, srv, "write in flight", func(ServerStats) bool {
		return srv.inflight.Load() >= 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline = %v, want DeadlineExceeded", err)
	}
	<-wrote // outcome unspecified; it must simply not hang
	// The forced teardown still releases every handle.
	waitStats(t, srv, "handles released", func(st ServerStats) bool {
		return st.OpenHandles == 0 && st.ActiveConns == 0
	})
}

func TestConnCapSheds(t *testing.T) {
	srv := NewMemServer(storage.DeviceSpec{})
	srv.SetLimits(Limits{MaxConns: 1})

	conn := connectTo(t, srv)
	if _, err := conn.Ping(); err != nil {
		t.Fatal(err)
	}

	// The second connection is over the cap: its handshake is answered
	// with ErrServerBusy and the conn closed — a transient dial failure.
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(sEnd)
	_, err := NewConn(cEnd, "overflow")
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("over-cap handshake = %v, want ErrServerBusy", err)
	}
	if !Retryable(err) {
		t.Fatal("over-cap shed not classified retryable")
	}
	if st := srv.Stats(); st.Shed < 1 {
		t.Fatalf("Shed = %d, want >= 1", st.Shed)
	}

	// The first connection is unaffected.
	if _, err := conn.Ping(); err != nil {
		t.Fatalf("established conn after shed: %v", err)
	}

	// Once it leaves, a new connection is admitted.
	conn.Close()
	waitStats(t, srv, "conn slot free", func(st ServerStats) bool {
		return st.ActiveConns == 0
	})
	conn2 := connectTo(t, srv)
	if _, err := conn2.Ping(); err != nil {
		t.Fatalf("conn after slot freed: %v", err)
	}
}

func TestInflightCapSheds(t *testing.T) {
	srv := slowServer(150 * time.Millisecond)
	srv.SetLimits(Limits{MaxInflight: 1})
	conn1 := connectTo(t, srv)
	conn2 := connectTo(t, srv)

	f, err := conn1.Open("/hog", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	wrote := make(chan error, 1)
	go func() {
		_, werr := f.WriteAt([]byte("occupies the only slot"), 0)
		wrote <- werr
	}()
	waitStats(t, srv, "write in flight", func(ServerStats) bool {
		return srv.inflight.Load() >= 1
	})

	// Over the in-flight cap: busy as a status error, connection kept.
	if _, err := conn2.Ping(); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("ping over inflight cap = %v, want ErrServerBusy", err)
	}
	if st := srv.Stats(); st.Shed < 1 {
		t.Fatalf("Shed = %d, want >= 1", st.Shed)
	}

	if err := <-wrote; err != nil {
		t.Fatalf("slot-holding write: %v", err)
	}
	// The same connection works once the slot frees — busy is not sticky.
	if _, err := conn2.Ping(); err != nil {
		t.Fatalf("ping after slot freed on same conn: %v", err)
	}
}

func TestKilledConnMidWriteReleasesHandles(t *testing.T) {
	srv := slowServer(100 * time.Millisecond)
	cEnd, sEnd := netsim.Pipe(0, nil, nil)
	go srv.ServeConn(sEnd)
	conn, err := NewConn(cEnd, "victim")
	if err != nil {
		t.Fatal(err)
	}

	// Two open handles; one has a write in flight when the conn dies.
	f1, err := conn.Open("/k1", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Open("/k2", O_RDWR|O_CREATE, ""); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.OpenHandles != 2 {
		t.Fatalf("OpenHandles = %d, want 2", st.OpenHandles)
	}

	wrote := make(chan struct{})
	go func() {
		f1.WriteAt([]byte("never acknowledged"), 0)
		close(wrote)
	}()
	waitStats(t, srv, "write in flight", func(ServerStats) bool {
		return srv.inflight.Load() >= 1
	})
	cEnd.Kill()
	<-wrote

	// The server notices the reset when its next read fails and tears the
	// session down, releasing both handles.
	waitStats(t, srv, "session teardown", func(st ServerStats) bool {
		return st.ActiveConns == 0 && st.OpenHandles == 0
	})
}
