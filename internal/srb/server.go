package srb

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"semplar/internal/mcat"
	"semplar/internal/storage"
	"semplar/internal/tenant"
	"semplar/internal/trace"
)

// ErrServerClosed is returned by Serve after Shutdown begins: the listener
// stopped because the server was asked to, not because it failed
// (net/http.ErrServerClosed style).
var ErrServerClosed = errors.New("srb: server closed")

// ServerStats counts server activity; all fields are read with Snapshot.
type ServerStats struct {
	Connections   int64
	Requests      int64
	BytesRead     int64 // data served to clients
	BytesWritten  int64 // data committed from clients
	ActiveConns   int64
	ProtocolError int64
	OpenHandles   int64 // file handles currently open across all sessions
	Shed          int64 // requests refused with ErrServerBusy (overload or drain)
	Drained       int64 // in-flight ops completed during Shutdown before their conn closed
	RateLimited   int64 // requests refused with ErrRateLimited (per-tenant fair-share shed)
	AuthFailed    int64 // handshakes refused with ErrAuthFailed
}

// Limits bounds server admission. Zero values mean unlimited. Past a
// limit the server sheds work with ErrServerBusy instead of queueing it,
// relying on the client's retry/backoff to spread the load out in time.
// Set via SetLimits before serving.
type Limits struct {
	// MaxConns caps concurrently served connections. A connection over
	// the cap has its first request answered with ErrServerBusy and is
	// closed, which surfaces as a transient dial error client-side.
	MaxConns int
	// MaxInflight caps requests executing at once across all
	// connections. A request over the cap is answered with ErrServerBusy
	// but the connection stays open: busy is a status error, not a
	// transport error, so the client retries on the same connection.
	MaxInflight int
}

// connState is the server's drain-time view of one connection. busy flips
// around each dispatch under Server.connMu so Shutdown can tell idle
// connections (closed immediately) from ones mid-request (left to finish
// their op and exit on their own).
type connState struct {
	conn net.Conn
	busy bool // protected by Server.connMu
}

// Server is the SRB daemon: it owns an MCAT catalog and one or more storage
// resources and services any number of concurrent client connections, each
// handled by its own goroutine (the SUN Fire 15000 of the simulation).
type Server struct {
	cat        *mcat.Catalog
	mu         sync.RWMutex
	resources  map[string]storage.Store
	defaultRes string

	handleSeq int64

	limits   Limits       // immutable after first Serve/ServeConn; see SetLimits
	inflight atomic.Int64 // requests currently dispatching

	connMu    sync.Mutex
	listeners map[net.Listener]struct{} // guarded by connMu
	conns     map[net.Conn]*connState   // guarded by connMu
	draining  bool                      // guarded by connMu
	drainDone chan struct{}             // guarded by connMu; closed when the last conn exits

	stats ServerStats

	tracer  atomic.Pointer[trace.Tracer]
	tenants atomic.Pointer[tenant.Registry]
}

// SetLimits configures admission control. Call it before serving: the
// limits are read without synchronization on the request path.
func (s *Server) SetLimits(l Limits) { s.limits = l }

// SetTenants attaches a tenant registry, making authentication mandatory:
// every connect must carry a valid tenant proof or the connection is
// refused with a terminal auth failure. Tenant storage quotas are pushed
// into the catalog, keyed by tenant ID (register all tenants before
// calling). A registry outlives any one Server — sharing it across
// restarts keeps bucket state and per-tenant counters continuous, so an
// abusive tenant cannot reset its bucket by crashing the server. nil
// restores anonymous operation.
func (s *Server) SetTenants(reg *tenant.Registry) {
	s.tenants.Store(reg)
	if reg == nil {
		return
	}
	for _, id := range reg.Names() {
		if t, ok := reg.Lookup(id); ok {
			s.cat.SetQuota(id, t.Limits().QuotaBytes)
		}
	}
}

// Tenants returns the attached tenant registry (nil when anonymous).
func (s *Server) Tenants() *tenant.Registry { return s.tenants.Load() }

// SetTracer records every dispatched request as a span on the server
// process row of tr (one trace lane per connection) and feeds the
// srb.server.dispatch latency histogram. Safe to call at any time; nil
// disables tracing for connections accepted afterwards.
func (s *Server) SetTracer(tr *trace.Tracer) {
	s.tracer.Store(tr)
}

// NewServer returns a server with a fresh catalog and no resources; add at
// least one with AddResource before serving.
func NewServer() *Server {
	return &Server{
		cat:       mcat.New(),
		resources: make(map[string]storage.Store),
	}
}

// NewMemServer is a convenience: a server with one in-memory resource named
// "mem", optionally metered by the device spec.
func NewMemServer(spec storage.DeviceSpec) *Server {
	s := NewServer()
	var st storage.Store = storage.NewMemStore()
	if spec.ReadRate > 0 || spec.WriteRate > 0 || spec.OpLatency > 0 {
		st = storage.WithDevice(st, spec)
	}
	s.AddResource("mem", "memory", st)
	return s
}

// AddResource registers a storage resource. The first added becomes the
// default resource for new files.
func (s *Server) AddResource(name, kind string, st storage.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resources[name] = st
	s.cat.RegisterResource(mcat.ResourceInfo{Name: name, Kind: kind, Host: "srbd"})
	if s.defaultRes == "" {
		s.defaultRes = name
	}
}

// Catalog exposes the MCAT (used by tests and tools).
func (s *Server) Catalog() *mcat.Catalog { return s.cat }

// Resource returns the storage store registered under name, or nil if no
// such resource exists. Federation tests use it to inspect (and corrupt)
// one server's physical objects without going through the protocol.
func (s *Server) Resource(name string) storage.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resources[name]
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Connections:   atomic.LoadInt64(&s.stats.Connections),
		Requests:      atomic.LoadInt64(&s.stats.Requests),
		BytesRead:     atomic.LoadInt64(&s.stats.BytesRead),
		BytesWritten:  atomic.LoadInt64(&s.stats.BytesWritten),
		ActiveConns:   atomic.LoadInt64(&s.stats.ActiveConns),
		ProtocolError: atomic.LoadInt64(&s.stats.ProtocolError),
		OpenHandles:   atomic.LoadInt64(&s.stats.OpenHandles),
		Shed:          atomic.LoadInt64(&s.stats.Shed),
		Drained:       atomic.LoadInt64(&s.stats.Drained),
		RateLimited:   atomic.LoadInt64(&s.stats.RateLimited),
		AuthFailed:    atomic.LoadInt64(&s.stats.AuthFailed),
	}
}

// Serve accepts connections from l until it is closed, spawning a goroutine
// per connection. It returns ErrServerClosed if the listener stopped
// because of Shutdown, and the listener's own error otherwise.
func (s *Server) Serve(l net.Listener) error {
	if !s.trackListener(l) {
		return ErrServerClosed
	}
	defer s.untrackListener(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isDraining() {
				return ErrServerClosed
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Shutdown drains the server net/http-style: it stops accepting (Serve
// returns ErrServerClosed), closes idle connections, sheds any request
// that has not started dispatching with ErrServerBusy, and waits for
// in-flight operations to finish — each busy connection completes its
// current op, gets its response, and closes. If ctx expires first, the
// remaining connections are closed abruptly and ctx.Err() is returned.
// Shutdown may be called concurrently and more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.connMu.Lock()
	s.draining = true
	if s.drainDone == nil {
		s.drainDone = make(chan struct{})
		if len(s.conns) == 0 {
			close(s.drainDone)
		}
	}
	done := s.drainDone
	for l := range s.listeners {
		//lint:allow errdrop -- listener teardown during drain; Serve reports ErrServerClosed
		l.Close()
	}
	s.listeners = nil
	// Close idle connections now; busy ones finish their in-flight op,
	// receive their response, and exit (ServeConn checks draining after
	// every response).
	for _, cs := range s.conns {
		if !cs.busy {
			//lint:allow errdrop -- closing an idle conn during drain; the peer sees EOF
			cs.conn.Close()
		}
	}
	s.connMu.Unlock()

	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.connMu.Lock()
		for _, cs := range s.conns {
			//lint:allow errdrop -- forced teardown past the drain deadline
			cs.conn.Close()
		}
		s.connMu.Unlock()
		return ctx.Err()
	}
}

// trackListener registers a serving listener; it refuses once draining.
func (s *Server) trackListener(l net.Listener) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining {
		return false
	}
	if s.listeners == nil {
		s.listeners = make(map[net.Listener]struct{})
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) untrackListener(l net.Listener) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.listeners, l)
}

func (s *Server) isDraining() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.draining
}

// trackConn admits a connection, refusing when draining or over MaxConns.
func (s *Server) trackConn(conn net.Conn) (*connState, bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining {
		return nil, false
	}
	if s.limits.MaxConns > 0 && len(s.conns) >= s.limits.MaxConns {
		return nil, false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]*connState)
	}
	cs := &connState{conn: conn}
	s.conns[conn] = cs
	return cs, true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, conn)
	// The last connection out completes the drain. drainDone cannot have
	// been closed already: Shutdown only closes it when no connections
	// were tracked, and no new ones are admitted while draining.
	if s.draining && len(s.conns) == 0 && s.drainDone != nil {
		close(s.drainDone)
	}
}

// beginOp marks cs busy for the drain sweep; it refuses (false) once
// draining so the request is shed rather than started.
func (s *Server) beginOp(cs *connState) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining {
		return false
	}
	cs.busy = true
	return true
}

// endOp clears busy and reports whether the server began draining while
// the op ran (the connection should close after its response is flushed).
func (s *Server) endOp(cs *connState) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	cs.busy = false
	return s.draining
}

// acquireOp admits one request under the MaxInflight cap.
func (s *Server) acquireOp() bool {
	max := int64(s.limits.MaxInflight)
	if max <= 0 {
		s.inflight.Add(1)
		return true
	}
	for {
		cur := s.inflight.Load()
		if cur >= max {
			return false
		}
		if s.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (s *Server) releaseOp() { s.inflight.Add(-1) }

// countShed records one refused request. The trace counter is silent and
// only touched on the fault path, so fault-free golden traces are stable.
func (s *Server) countShed() {
	atomic.AddInt64(&s.stats.Shed, 1)
	s.tracer.Load().Count("srb.server.shed_ops", 1)
}

func (s *Server) countDrained() {
	atomic.AddInt64(&s.stats.Drained, 1)
	s.tracer.Load().Count("srb.server.drained_ops", 1)
}

// countRateLimited records one request refused by a tenant bucket. Distinct
// from countShed so global overload and per-tenant fair-share shedding are
// separable in stats and traces.
func (s *Server) countRateLimited() {
	atomic.AddInt64(&s.stats.RateLimited, 1)
	s.tracer.Load().Count("srb.server.rate_limited_ops", 1)
}

func (s *Server) countAuthFailed() {
	atomic.AddInt64(&s.stats.AuthFailed, 1)
	s.tracer.Load().Count("srb.server.auth_failed", 1)
}

// rateLimitedResp builds the fair-share shed reply: a retryable status
// whose value field carries the bucket's retry-after hint in nanoseconds
// (errResp cannot be used — errToStatus has no channel for the hint).
func rateLimitedResp(retryAfter time.Duration) *response {
	return &response{status: statusRateLimited, value: int64(retryAfter)}
}

// admitTenant charges req against the session tenant's token buckets.
// Anonymous sessions (no registry attached) are unlimited. The charge is
// one op plus the request's byte cost: payload bytes carried in (writes)
// plus bytes requested back (reads), so a tenant's byte bucket meters both
// directions of its data flow.
func (s *Server) admitTenant(sess *session, req *request) (bool, *response) {
	t := sess.tenant
	if t == nil {
		return true, nil
	}
	reg := s.tenants.Load()
	if reg == nil {
		return true, nil
	}
	cost := int64(len(req.data))
	if req.length > 0 {
		cost += req.length
	}
	ok, wait := t.Admit(cost, reg.Now())
	if ok {
		return true, nil
	}
	s.countRateLimited()
	return false, rateLimitedResp(wait)
}

// shedConn answers exactly one request with ErrServerBusy and hangs up:
// the admission-refused path for connections over MaxConns or arriving
// during drain. The client sees the busy error on its dial handshake;
// Retryable classifies it as transient, so DialRetry backs off and tries
// again (against the restarted or less-loaded server).
func (s *Server) shedConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 4<<10)
	bw := bufio.NewWriterSize(conn, 4<<10)
	req, err := readRequest(br)
	if err != nil {
		return
	}
	s.countShed()
	putBuf(req.data) // parser-pooled payload; the request is refused unread
	resp := errResp(ErrServerBusy)
	resp.seq = req.seq
	if err := writeResponse(bw, resp); err != nil {
		return
	}
	//lint:allow errdrop -- the refused conn closes right after; the flush error has no consumer
	bw.Flush()
}

// ServeConn services one client connection until EOF, protocol error,
// drain or admission refusal. It may be called directly with simulated
// connections.
func (s *Server) ServeConn(conn net.Conn) {
	atomic.AddInt64(&s.stats.Connections, 1)
	atomic.AddInt64(&s.stats.ActiveConns, 1)
	defer atomic.AddInt64(&s.stats.ActiveConns, -1)
	defer conn.Close()

	cs, admitted := s.trackConn(conn)
	if !admitted {
		s.shedConn(conn)
		return
	}
	defer s.untrackConn(conn)

	sess := &session{
		srv:   s,
		files: make(map[int32]*openFile),
	}
	defer sess.closeAll()

	tr := s.tracer.Load()
	lane := tr.NextID() // this connection's trace lane on the server row

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	// Read-ahead: a reader goroutine parses frames off the wire while this
	// goroutine executes them in arrival order, so frame parsing of request
	// N+1 overlaps the dispatch of request N and a pipelining client never
	// stalls on the server's turnaround. The queue is bounded: a client
	// that outruns dispatch by more than its depth backpressures into the
	// transport, exactly as before.
	reqCh := make(chan *request, readAheadDepth)
	done := make(chan struct{})
	defer close(done)
	var readErr error // written by the reader before close(reqCh)
	go func() {
		defer close(reqCh)
		for {
			req, err := readRequest(br)
			if err != nil {
				readErr = err
				return
			}
			select {
			case reqCh <- req:
			case <-done:
				putBuf(req.data) // executor is gone; recycle the orphan
				return
			}
		}
	}()

	// Drain bookkeeping runs at burst granularity: busy is set per request
	// (beginOp) but cleared (endOp) only at idle points, after the batched
	// flush put every response of the burst on the wire. The old guarantee
	// — the drain sweep can never close a conn between dispatch completion
	// and the client receiving its reply — holds unchanged, because a conn
	// is "idle" only when it has no request queued and no response
	// buffered.
	for req := range reqCh {
		atomic.AddInt64(&s.stats.Requests, 1)
		if !s.beginOp(cs) {
			// Draining: shed the request and hang up; the client's retry
			// lands on whatever replaces this server.
			s.countShed()
			putBuf(req.data)
			resp := errResp(ErrServerBusy)
			resp.seq = req.seq
			if writeResponse(bw, resp) == nil {
				//lint:allow errdrop -- the conn closes right after; the flush error has no consumer
				bw.Flush()
			}
			return
		}
		var resp *response
		if !s.acquireOp() {
			// Over the in-flight cap: refuse without starting the op but
			// keep the connection — busy is a status error, not a transport
			// error, so the client retries on this same connection after
			// backing off.
			s.countShed()
			resp = errResp(ErrServerBusy)
		} else if ok, rlResp := s.admitTenant(sess, req); !ok {
			// Over the session tenant's token bucket: refuse without
			// starting the op, carrying the bucket's retry-after hint. The
			// connection stays open — rate-limited is a status error the
			// client backs off on, exactly like the global busy shed.
			resp = rlResp
			s.releaseOp()
		} else {
			// The dispatch span closes before the response is written, so its
			// events land while the client is still blocked on the reply —
			// server events nest deterministically inside the client's wire
			// span under a virtual clock.
			sp := tr.BeginServer("server", opName(req.op), lane)
			resp = sess.dispatch(req)
			if tr.Enabled() {
				tr.Observe("srb.server.dispatch", sp.End())
			}
			s.releaseOp()
		}
		resp.seq = req.seq
		putBuf(req.data) // dispatch copied what it kept; recycle the payload
		// Whether or not the write succeeds, the response bytes are dead
		// after this point (copied into the buffered writer, or the conn
		// is unusable); recycle before bailing out on error.
		err := writeResponse(bw, resp)
		putBuf(resp.data)
		if err != nil {
			return
		}
		if resp.status == statusAuthFailed {
			// Terminal refusal: flush the response and hang up. The client
			// sees ErrAuthFailed on its handshake (or first op) and never
			// retries these credentials.
			//lint:allow errdrop -- the refused conn closes right after; the flush error has no consumer
			bw.Flush()
			return
		}
		if len(reqCh) > 0 {
			// More requests already parsed: batch this response with the
			// next ones and keep the conn marked busy, amortizing flushes
			// across the burst.
			continue
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if s.endOp(cs) {
			s.countDrained()
			return
		}
	}
	// Reads severed by Shutdown's idle-conn sweep are expected, not
	// protocol violations.
	if readErr != io.EOF && !s.isDraining() {
		atomic.AddInt64(&s.stats.ProtocolError, 1)
	}
}

// readAheadDepth bounds how many parsed-but-unexecuted requests one
// connection may queue server-side.
const readAheadDepth = 32

type openFile struct {
	obj    storage.Object
	path   string
	flags  uint32
	pos    int64
	append bool
}

type session struct {
	srv    *Server
	files  map[int32]*openFile
	user   string
	tenant *tenant.Tenant // non-nil once an authenticated connect succeeds
}

// owner is the catalog ownership label for files this session creates.
func (ss *session) owner() string {
	if ss.tenant != nil {
		return ss.tenant.ID
	}
	return ""
}

// closeAll releases every handle the client left open — the abrupt-
// disconnect path. Handles closed normally were already removed from the
// map by close(), so each object is closed exactly once either way.
func (ss *session) closeAll() {
	for _, f := range ss.files {
		//lint:allow errdrop -- session teardown after disconnect; no client left to report to
		f.obj.Close()
		atomic.AddInt64(&ss.srv.stats.OpenHandles, -1)
	}
	ss.files = nil
}

func (ss *session) dispatch(req *request) *response {
	// With a tenant registry attached, nothing but the connect handshake is
	// served to an unauthenticated session — a client skipping the
	// handshake gets the same terminal refusal a bad proof gets.
	if req.op != opConnect && ss.tenant == nil && ss.srv.tenants.Load() != nil {
		ss.srv.countAuthFailed()
		return &response{status: statusAuthFailed, msg: "authentication required"}
	}
	switch req.op {
	case opConnect:
		return ss.connect(req)
	case opPing:
		return &response{value: time.Now().UnixNano()}
	case opOpen:
		return ss.open(req)
	case opClose:
		return ss.close(req)
	case opRead:
		return ss.read(req)
	case opWrite:
		return ss.write(req)
	case opWritev:
		return ss.writev(req)
	case opReadv:
		return ss.readv(req)
	case opSeek:
		return ss.seek(req)
	case opStat:
		return ss.stat(req)
	case opFstat:
		return ss.fstat(req)
	case opTruncate:
		return ss.truncate(req)
	case opSync:
		return ss.sync(req)
	case opMkdir:
		return errResp(ss.srv.mkdir(req.path))
	case opRmdir:
		return errResp(mapCatErr(ss.srv.cat.Rmdir(req.path)))
	case opUnlink:
		return errResp(ss.srv.unlink(req.path))
	case opList:
		return ss.list(req)
	case opSetAttr:
		return ss.setAttr(req)
	case opGetAttr:
		return ss.getAttr(req)
	case opResources:
		return ss.listResources()
	case opRename:
		return ss.rename(req)
	case opReplicate:
		return ss.replicate(req)
	case opChecksum:
		return ss.checksum(req)
	default:
		return errResp(fmt.Errorf("%w: unknown opcode %d", ErrInvalid, req.op))
	}
}

// connect serves the handshake. Anonymous servers (no registry) keep the
// legacy behavior: any connect succeeds, auth blobs are ignored. With a
// registry attached, the connect data must decode to a (tenant ID, proof)
// pair that verifies; every failure mode — missing blob, malformed blob,
// unknown tenant, bad proof — returns the same terminal status with a
// generic message, so the handshake cannot be used to probe which tenant
// IDs exist. ServeConn hangs up after writing a statusAuthFailed response.
func (ss *session) connect(req *request) *response {
	ss.user = req.path
	reg := ss.srv.tenants.Load()
	if reg == nil {
		return &response{value: protoVer, msg: "SRB-Go/1 ready"}
	}
	refuse := func() *response {
		ss.srv.countAuthFailed()
		return &response{status: statusAuthFailed, msg: "invalid tenant credentials"}
	}
	if len(req.data) == 0 {
		return refuse()
	}
	id, proof, err := decodeAuth(req.data)
	if err != nil {
		return refuse()
	}
	t, err := reg.Authenticate(id, req.path, proof)
	if err != nil {
		return refuse()
	}
	ss.tenant = t
	return &response{value: protoVer, msg: "SRB-Go/1 ready"}
}

func errResp(err error) *response {
	st, msg := errToStatus(err)
	return &response{status: st, msg: msg}
}

func mapCatErr(err error) error {
	switch err {
	case nil:
		return nil
	case mcat.ErrNotFound:
		return ErrNotFound
	case mcat.ErrExists:
		return ErrExists
	case mcat.ErrIsDir:
		return ErrIsDir
	case mcat.ErrNotDir:
		return ErrNotDir
	case mcat.ErrNotEmpty:
		return ErrNotEmpty
	case mcat.ErrBadPath, mcat.ErrNoResource:
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	default:
		if errors.Is(err, mcat.ErrQuotaExceeded) {
			return fmt.Errorf("%w: %v", ErrQuotaExceeded, err)
		}
		return err
	}
}

func (s *Server) store(resource string) (storage.Store, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.resources[resource]
	if !ok {
		return nil, fmt.Errorf("%w: resource %q", ErrInvalid, resource)
	}
	return st, nil
}

func (s *Server) mkdir(p string) error {
	return mapCatErr(s.cat.Mkdir(p))
}

func (s *Server) unlink(p string) error {
	e, err := s.cat.Lookup(p)
	if err != nil {
		return mapCatErr(err)
	}
	if e.Type == mcat.TypeCollection {
		return ErrIsDir
	}
	if err := s.cat.Remove(p); err != nil {
		return mapCatErr(err)
	}
	if st, err := s.store(e.Resource); err == nil {
		//lint:allow errdrop -- catalog entry is already gone; physical removal is best-effort GC
		st.Remove(e.PhysicalKey)
	}
	for _, r := range e.Replicas {
		if st, err := s.store(r.Resource); err == nil {
			//lint:allow errdrop -- replica GC is best-effort once the catalog entry is gone
			st.Remove(r.PhysicalKey)
		}
	}
	return nil
}

func (ss *session) open(req *request) *response {
	s := ss.srv
	flags := req.flags
	resource := s.defaultRes
	// The request data may carry a resource hint.
	if len(req.data) > 0 {
		resource = string(req.data)
	}

	e, err := s.cat.Lookup(req.path)
	switch {
	case err == nil:
		if e.Type == mcat.TypeCollection {
			return errResp(ErrIsDir)
		}
		if flags&O_EXCL != 0 && flags&O_CREATE != 0 {
			return errResp(ErrExists)
		}
	case err == mcat.ErrNotFound && flags&O_CREATE != 0:
		e, err = s.cat.CreateFileAs(req.path, resource, ss.owner())
		if err != nil {
			return errResp(mapCatErr(err))
		}
		st, serr := s.store(e.Resource)
		if serr != nil {
			return errResp(serr)
		}
		if _, cerr := st.Create(e.PhysicalKey); cerr != nil && cerr != storage.ErrExists {
			return errResp(fmt.Errorf("%w: %v", ErrIO, cerr))
		}
	default:
		return errResp(mapCatErr(err))
	}

	obj, err := s.openPhysical(e)
	if err != nil {
		return errResp(err)
	}
	if flags&O_TRUNC != 0 && flags&O_ACCESS != O_RDONLY {
		if err := obj.Truncate(0); err != nil {
			//lint:allow errdrop -- cleanup on the truncate error path; that error is returned
			obj.Close()
			return errResp(fmt.Errorf("%w: %v", ErrIO, err))
		}
		s.cat.SetSize(req.path, 0)
	}
	h := int32(atomic.AddInt64(&s.handleSeq, 1))
	of := &openFile{obj: obj, path: req.path, flags: flags, append: flags&O_APPEND != 0}
	if of.append {
		if sz, err := obj.Size(); err == nil {
			of.pos = sz
		}
	}
	ss.files[h] = of
	atomic.AddInt64(&s.stats.OpenHandles, 1)
	return &response{value: int64(h)}
}

func (ss *session) lookupHandle(h int32) (*openFile, *response) {
	f, ok := ss.files[h]
	if !ok {
		return nil, errResp(ErrBadHandle)
	}
	return f, nil
}

func (ss *session) close(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	delete(ss.files, req.handle)
	atomic.AddInt64(&ss.srv.stats.OpenHandles, -1)
	if err := f.obj.Close(); err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrIO, err))
	}
	return &response{}
}

// read serves both explicit-offset reads (offset >= 0) and file-pointer
// reads (offset < 0).
func (ss *session) read(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	if f.flags&O_ACCESS == O_WRONLY {
		return errResp(fmt.Errorf("%w: file not open for reading", ErrInvalid))
	}
	n := req.length
	if n < 0 || n > MaxChunk {
		return errResp(fmt.Errorf("%w: read length %d", ErrInvalid, n))
	}
	off := req.offset
	usePointer := off < 0
	if usePointer {
		off = f.pos
	}
	buf := getBuf(int(n))
	rn, err := f.obj.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		putBuf(buf) // the error response carries no data; recycle now
		return errResp(fmt.Errorf("%w: %v", ErrIO, err))
	}
	if usePointer {
		f.pos = off + int64(rn)
	}
	atomic.AddInt64(&ss.srv.stats.BytesRead, int64(rn))
	return &response{value: int64(rn), data: buf[:rn]}
}

func (ss *session) write(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	if f.flags&O_ACCESS == O_RDONLY {
		return errResp(fmt.Errorf("%w: file not open for writing", ErrInvalid))
	}
	off := req.offset
	usePointer := off < 0
	if usePointer {
		off = f.pos
	}
	if f.append {
		if sz, err := f.obj.Size(); err == nil {
			off = sz
		}
	}
	// Quota pre-check before the bytes reach storage: a refused write must
	// leave no stored-but-unaccounted data behind.
	if err := ss.srv.cat.CheckGrow(f.path, off+int64(len(req.data))); err != nil {
		return errResp(mapCatErr(err))
	}
	n, err := f.obj.WriteAt(req.data, off)
	if err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrIO, err))
	}
	if usePointer || f.append {
		f.pos = off + int64(n)
	}
	ss.srv.cat.GrowSize(f.path, off+int64(n))
	atomic.AddInt64(&ss.srv.stats.BytesWritten, int64(n))
	return &response{value: int64(n)}
}

// writev applies a vectored write: several absolute-offset segments in one
// request. Malformed vector framing is an ErrInvalid status reply — the
// wire frame itself parsed fine, so the connection survives. Each segment
// is an idempotent WriteAt, so a replay after a mid-vector transport
// failure is safe.
func (ss *session) writev(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	if f.flags&O_ACCESS == O_RDONLY {
		return errResp(fmt.Errorf("%w: file not open for writing", ErrInvalid))
	}
	segs, err := decodeWritev(req.data)
	if err != nil {
		return errResp(err)
	}
	var maxEnd int64
	for _, sg := range segs {
		if end := sg.off + int64(len(sg.data)); end > maxEnd {
			maxEnd = end
		}
	}
	// One pre-check for the vector's furthest extent: all-or-nothing
	// against quota, before any segment reaches storage.
	if err := ss.srv.cat.CheckGrow(f.path, maxEnd); err != nil {
		return errResp(mapCatErr(err))
	}
	var total int64
	for _, sg := range segs {
		n, werr := f.obj.WriteAt(sg.data, sg.off)
		if n > 0 {
			ss.srv.cat.GrowSize(f.path, sg.off+int64(n))
			total += int64(n)
		}
		if werr != nil {
			return errResp(fmt.Errorf("%w: %v", ErrIO, werr))
		}
		if n < len(sg.data) {
			// Short write without an error (e.g. a full device): report
			// the acknowledged total and stop; blindly continuing would
			// punch a hole.
			break
		}
	}
	atomic.AddInt64(&ss.srv.stats.BytesWritten, total)
	return &response{value: total}
}

// readv serves a vectored read: several absolute-offset ranges gathered into
// one reply. Ranges are filled front to back; the first range that comes up
// short (EOF) ends the reply, so the client's sequential scatter is
// unambiguous. Malformed vector framing is an ErrInvalid status reply — the
// wire frame itself parsed fine, so the connection survives.
func (ss *session) readv(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	if f.flags&O_ACCESS == O_WRONLY {
		return errResp(fmt.Errorf("%w: file not open for reading", ErrInvalid))
	}
	segs, err := decodeReadv(req.data)
	if err != nil {
		return errResp(err)
	}
	var want int
	for _, sg := range segs {
		want += sg.n
	}
	buf := getBuf(want)
	total := 0
	for _, sg := range segs {
		rn, rerr := f.obj.ReadAt(buf[total:total+sg.n], sg.off)
		total += rn
		if rerr != nil && rerr != io.EOF {
			putBuf(buf) // the error response carries no data; recycle now
			return errResp(fmt.Errorf("%w: %v", ErrIO, rerr))
		}
		if rn < sg.n {
			break
		}
	}
	atomic.AddInt64(&ss.srv.stats.BytesRead, int64(total))
	return &response{value: int64(total), data: buf[:total]}
}

func (ss *session) seek(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	var base int64
	switch req.flags {
	case SeekStart:
		base = 0
	case SeekCurrent:
		base = f.pos
	case SeekEnd:
		sz, err := f.obj.Size()
		if err != nil {
			return errResp(fmt.Errorf("%w: %v", ErrIO, err))
		}
		base = sz
	default:
		return errResp(fmt.Errorf("%w: bad whence %d", ErrInvalid, req.flags))
	}
	np := base + req.offset
	if np < 0 {
		return errResp(fmt.Errorf("%w: negative seek", ErrInvalid))
	}
	f.pos = np
	return &response{value: np}
}

func (ss *session) entryInfo(e *mcat.Entry) *FileInfo {
	return &FileInfo{
		Path:     e.Path,
		IsDir:    e.Type == mcat.TypeCollection,
		Size:     e.Size,
		Modified: e.Modified.UnixNano(),
		Resource: e.Resource,
	}
}

func (ss *session) stat(req *request) *response {
	e, err := ss.srv.cat.Lookup(req.path)
	if err != nil {
		return errResp(mapCatErr(err))
	}
	return &response{data: encodeFileInfo(ss.entryInfo(e))}
}

func (ss *session) fstat(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	e, err := ss.srv.cat.Lookup(f.path)
	if err != nil {
		// Unlinked while open: report from the object itself.
		sz, serr := f.obj.Size()
		if serr != nil {
			return errResp(fmt.Errorf("%w: %v", ErrIO, serr))
		}
		return &response{data: encodeFileInfo(&FileInfo{Path: f.path, Size: sz})}
	}
	info := ss.entryInfo(e)
	// Size in the catalog may lag behind unsynced object bytes for files
	// opened by other sessions; trust the object.
	if sz, serr := f.obj.Size(); serr == nil && sz > info.Size {
		info.Size = sz
	}
	return &response{data: encodeFileInfo(info)}
}

func (ss *session) truncate(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	// Truncating up materializes a hole the catalog accounts as stored
	// bytes, so it passes the same quota gate as a write.
	if err := ss.srv.cat.CheckGrow(f.path, req.length); err != nil {
		return errResp(mapCatErr(err))
	}
	if err := f.obj.Truncate(req.length); err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrIO, err))
	}
	ss.srv.cat.SetSize(f.path, req.length)
	return &response{}
}

func (ss *session) sync(req *request) *response {
	f, er := ss.lookupHandle(req.handle)
	if er != nil {
		return er
	}
	if err := f.obj.Sync(); err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrIO, err))
	}
	return &response{}
}

func (ss *session) list(req *request) *response {
	entries, err := ss.srv.cat.List(req.path)
	if err != nil {
		return errResp(mapCatErr(err))
	}
	var buf []byte
	for _, e := range entries {
		buf = append(buf, encodeFileInfo(ss.entryInfo(e))...)
	}
	return &response{value: int64(len(entries)), data: buf}
}

func (ss *session) setAttr(req *request) *response {
	// data = key\x00value
	key, val, ok := splitKV(req.data)
	if !ok {
		return errResp(fmt.Errorf("%w: malformed attribute", ErrInvalid))
	}
	return errResp(mapCatErr(ss.srv.cat.SetAttr(req.path, key, val)))
}

func (ss *session) getAttr(req *request) *response {
	key := string(req.data)
	v, err := ss.srv.cat.GetAttr(req.path, key)
	if err != nil {
		return errResp(mapCatErr(err))
	}
	return &response{data: []byte(v)}
}

func (ss *session) listResources() *response {
	var buf []byte
	rs := ss.srv.cat.Resources()
	for _, r := range rs {
		buf = appendString(buf, r.Name)
		buf = appendString(buf, r.Kind)
	}
	return &response{value: int64(len(rs)), data: buf}
}

func (ss *session) rename(req *request) *response {
	newPath := string(req.data)
	if err := ss.srv.cat.Rename(req.path, newPath); err != nil {
		return errResp(mapCatErr(err))
	}
	return &response{}
}

// openPhysical opens an entry's primary object, failing over to replicas
// when the primary copy is unavailable (a degraded resource).
func (s *Server) openPhysical(e *mcat.Entry) (storage.Object, error) {
	copies := append([]mcat.Replica{{Resource: e.Resource, PhysicalKey: e.PhysicalKey}},
		e.Replicas...)
	var lastErr error
	for _, r := range copies {
		st, err := s.store(r.Resource)
		if err != nil {
			lastErr = err
			continue
		}
		obj, err := st.Open(r.PhysicalKey)
		if err == nil {
			return obj, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: no usable copy: %v", ErrIO, lastErr)
}

// replicate copies a data object to another resource and records the
// replica in the catalog. The copy is point-in-time; subsequent writes go
// to the primary only.
func (ss *session) replicate(req *request) *response {
	s := ss.srv
	target := string(req.data)
	e, err := s.cat.Lookup(req.path)
	if err != nil {
		return errResp(mapCatErr(err))
	}
	if e.Type == mcat.TypeCollection {
		return errResp(ErrIsDir)
	}
	if target == e.Resource {
		return errResp(fmt.Errorf("%w: replica on primary resource", ErrInvalid))
	}
	dstStore, err := s.store(target)
	if err != nil {
		return errResp(err)
	}
	src, err := s.openPhysical(e)
	if err != nil {
		return errResp(err)
	}
	defer src.Close()

	key := e.PhysicalKey + "@" + target
	dst, err := dstStore.Create(key)
	if err == storage.ErrExists {
		return errResp(fmt.Errorf("%w: replica already present on %s", ErrExists, target))
	}
	if err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrIO, err))
	}
	defer dst.Close()

	size, err := src.Size()
	if err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrIO, err))
	}
	buf := make([]byte, 1<<20)
	for off := int64(0); off < size; {
		n, rerr := src.ReadAt(buf, off)
		if n > 0 {
			if _, werr := dst.WriteAt(buf[:n], off); werr != nil {
				return errResp(fmt.Errorf("%w: %v", ErrIO, werr))
			}
			off += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return errResp(fmt.Errorf("%w: %v", ErrIO, rerr))
		}
	}
	if err := s.cat.AddReplica(req.path, mcat.Replica{Resource: target, PhysicalKey: key}); err != nil {
		return errResp(mapCatErr(err))
	}
	return &response{value: size}
}

// checksum computes the SHA-256 of a data object server-side (the
// Schksum facility: end-to-end integrity without shipping the bytes) and
// records it as the "checksum" attribute.
func (ss *session) checksum(req *request) *response {
	s := ss.srv
	e, err := s.cat.Lookup(req.path)
	if err != nil {
		return errResp(mapCatErr(err))
	}
	if e.Type == mcat.TypeCollection {
		return errResp(ErrIsDir)
	}
	obj, err := s.openPhysical(e)
	if err != nil {
		return errResp(err)
	}
	defer obj.Close()
	size, err := obj.Size()
	if err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrIO, err))
	}
	h := sha256.New()
	buf := make([]byte, 1<<20)
	for off := int64(0); off < size; {
		n, rerr := obj.ReadAt(buf, off)
		if n > 0 {
			//lint:allow errdrop -- hash.Hash.Write is documented to never return an error
			h.Write(buf[:n])
			off += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return errResp(fmt.Errorf("%w: %v", ErrIO, rerr))
		}
	}
	sum := hex.EncodeToString(h.Sum(nil))
	s.cat.SetAttr(req.path, "checksum", sum)
	return &response{value: size, data: []byte(sum)}
}

func splitKV(b []byte) (key, val string, ok bool) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), string(b[i+1:]), true
		}
	}
	return "", "", false
}

// MkdirAll is a server-side helper used by testbed setup.
func (s *Server) MkdirAll(p string) error {
	return mapCatErr(s.cat.MkdirAll(path.Clean(p)))
}
