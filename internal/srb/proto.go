// Package srb implements a Storage Resource Broker: a data management
// server exporting a logical remote filesystem (SRBFS) whose I/O interface
// is semantically equivalent to the POSIX file API, plus the client side of
// its wire protocol. It reproduces the substrate SEMPLAR was built on.
//
// Like the real SRB, a connection services one request at a time; parallel
// transfers are obtained by opening multiple connections — which is exactly
// the property the paper's asynchronous multi-stream optimization exploits.
package srb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Protocol constants.
const (
	reqMagic  = 0x5242 // "RB"
	respMagic = 0x5243
	protoVer  = 1

	reqHeaderSize  = 40
	respHeaderSize = 28

	// MaxChunk bounds the payload of one request/response; larger
	// transfers are split by the client.
	MaxChunk = 4 << 20

	// maxPathLen bounds the path field of a request. Enforced by the
	// client before sending (ErrInvalid, the connection stays healthy)
	// and by the server's parser (ErrProtocol — by then it is framing
	// damage).
	maxPathLen = 4096

	// maxMsgLen bounds the status-message field of a response. The
	// server truncates longer messages in writeResponse, so an oversized
	// msgLen on the client side is always framing damage, never an
	// honest but long error string.
	maxMsgLen = 4096
)

// Opcodes.
const (
	opConnect uint8 = iota + 1
	opPing
	opOpen
	opClose
	opRead
	opWrite
	opSeek
	opStat
	opFstat
	opTruncate
	opSync
	opMkdir
	opRmdir
	opUnlink
	opList
	opSetAttr
	opGetAttr
	opResources
	opRename
	opReplicate
	opChecksum
	opWritev
	opReadv
)

// opName renders an opcode for traces and diagnostics.
func opName(op uint8) string {
	switch op {
	case opConnect:
		return "connect"
	case opPing:
		return "ping"
	case opOpen:
		return "open"
	case opClose:
		return "close"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opSeek:
		return "seek"
	case opStat:
		return "stat"
	case opFstat:
		return "fstat"
	case opTruncate:
		return "truncate"
	case opSync:
		return "sync"
	case opMkdir:
		return "mkdir"
	case opRmdir:
		return "rmdir"
	case opUnlink:
		return "unlink"
	case opList:
		return "list"
	case opSetAttr:
		return "setattr"
	case opGetAttr:
		return "getattr"
	case opResources:
		return "resources"
	case opRename:
		return "rename"
	case opReplicate:
		return "replicate"
	case opChecksum:
		return "checksum"
	case opWritev:
		return "writev"
	case opReadv:
		return "readv"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// Open flags (SRBFS-level, independent of the host OS).
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_ACCESS = 0x3 // access-mode mask
	O_CREATE = 0x4
	O_TRUNC  = 0x8
	O_EXCL   = 0x10
	O_APPEND = 0x20
)

// Seek whence values (match io.Seek*).
const (
	SeekStart   = 0
	SeekCurrent = 1
	SeekEnd     = 2
)

// Status codes carried in responses.
const (
	statusOK int32 = iota
	statusNotFound
	statusExists
	statusIsDir
	statusNotDir
	statusBadHandle
	statusInvalid
	statusNotEmpty
	statusIO
	statusPerm
	statusBusy
	statusAuthFailed
	statusRateLimited
	statusQuotaExceeded
)

// Errors corresponding to the wire status codes.
var (
	ErrNotFound  = errors.New("srb: no such file or collection")
	ErrExists    = errors.New("srb: file exists")
	ErrIsDir     = errors.New("srb: is a collection")
	ErrNotDir    = errors.New("srb: not a collection")
	ErrBadHandle = errors.New("srb: bad file handle")
	ErrInvalid   = errors.New("srb: invalid argument")
	ErrNotEmpty  = errors.New("srb: collection not empty")
	ErrIO        = errors.New("srb: i/o error")
	ErrPerm      = errors.New("srb: permission denied")
	ErrProtocol  = errors.New("srb: protocol error")

	// ErrServerBusy is the overload-shedding reply: the server is healthy
	// but at its connection or in-flight-op limit (or draining for
	// shutdown) and refused the request without starting it. Unlike every
	// other status error it is transient — srb.Retryable classifies it as
	// retryable, so the client's backoff absorbs shed load transparently.
	ErrServerBusy = errors.New("srb: server busy")

	// ErrAuthFailed is the terminal handshake refusal: the connect did not
	// carry a valid tenant proof (missing, unknown tenant, or bad key).
	// The server closes the connection after sending it, so retrying on
	// the same credentials can never succeed.
	ErrAuthFailed = errors.New("srb: authentication failed")

	// ErrRateLimited is the per-tenant fair-share shed: the tenant is over
	// its token bucket, the request was refused without being started, and
	// the response carries a retry-after hint. Transient — like
	// ErrServerBusy, but scoped to one tenant so other tenants keep
	// flowing. Wrapped as *RateLimitedError when a hint is present.
	ErrRateLimited = errors.New("srb: tenant rate limited")

	// ErrQuotaExceeded is the terminal storage-quota refusal: the write
	// would push the tenant's stored bytes over its quota. Retrying cannot
	// help until the tenant deletes data, so it is classified terminal.
	ErrQuotaExceeded = errors.New("srb: tenant quota exceeded")
)

// RateLimitedError carries the server's retry-after hint alongside
// ErrRateLimited. errors.Is(err, ErrRateLimited) matches it via Unwrap;
// RetryPolicy.BackoffFor uses errors.As to honor the hint as a backoff
// floor.
type RateLimitedError struct {
	// RetryAfter is the server's estimate of when the refused request
	// would fit the tenant's bucket again.
	RetryAfter time.Duration
	msg        string
}

func (e *RateLimitedError) Error() string {
	s := ErrRateLimited.Error()
	if e.msg != "" {
		s += ": " + e.msg
	}
	if e.RetryAfter > 0 {
		s += fmt.Sprintf(" (retry after %v)", e.RetryAfter)
	}
	return s
}

func (e *RateLimitedError) Unwrap() error { return ErrRateLimited }

// statusToErr converts a wire status to an error. value is the response's
// value field, which statusRateLimited reuses as a retry-after hint in
// nanoseconds; every other status ignores it.
func statusToErr(st int32, msg string, value int64) error {
	var base error
	switch st {
	case statusOK:
		return nil
	case statusNotFound:
		base = ErrNotFound
	case statusExists:
		base = ErrExists
	case statusIsDir:
		base = ErrIsDir
	case statusNotDir:
		base = ErrNotDir
	case statusBadHandle:
		base = ErrBadHandle
	case statusInvalid:
		base = ErrInvalid
	case statusNotEmpty:
		base = ErrNotEmpty
	case statusIO:
		base = ErrIO
	case statusPerm:
		base = ErrPerm
	case statusBusy:
		base = ErrServerBusy
	case statusAuthFailed:
		base = ErrAuthFailed
	case statusRateLimited:
		var after time.Duration
		if value > 0 {
			after = time.Duration(value)
		}
		return &RateLimitedError{RetryAfter: after, msg: msg}
	case statusQuotaExceeded:
		base = ErrQuotaExceeded
	default:
		// Unknown codes (a newer server) degrade to the generic I/O
		// error. Known codes must be mapped explicitly above — the
		// retryclass lint rule rejects any status relying on this arm.
		base = ErrIO
	}
	if msg != "" {
		return fmt.Errorf("%w: %s", base, msg)
	}
	return base
}

func errToStatus(err error) (int32, string) {
	switch {
	case err == nil:
		return statusOK, ""
	case errors.Is(err, ErrNotFound):
		return statusNotFound, ""
	case errors.Is(err, ErrExists):
		return statusExists, ""
	case errors.Is(err, ErrIsDir):
		return statusIsDir, ""
	case errors.Is(err, ErrNotDir):
		return statusNotDir, ""
	case errors.Is(err, ErrBadHandle):
		return statusBadHandle, ""
	case errors.Is(err, ErrInvalid):
		return statusInvalid, ""
	case errors.Is(err, ErrNotEmpty):
		return statusNotEmpty, ""
	case errors.Is(err, ErrPerm):
		return statusPerm, ""
	case errors.Is(err, ErrServerBusy):
		return statusBusy, ""
	case errors.Is(err, ErrAuthFailed):
		return statusAuthFailed, ""
	case errors.Is(err, ErrRateLimited):
		// The retry-after hint travels in the response value field, which
		// the server's shed path sets directly (see rateLimitedResp);
		// this mapping covers errors bubbled up from inner layers.
		return statusRateLimited, ""
	case errors.Is(err, ErrQuotaExceeded):
		return statusQuotaExceeded, ""
	default:
		return statusIO, err.Error()
	}
}

// request is the wire form of one client call.
//
//	magic   uint16
//	version uint8
//	opcode  uint8
//	seq     uint32
//	handle  int32
//	flags   uint32
//	offset  int64
//	length  int64
//	pathLen uint32
//	dataLen uint32
//	path    [pathLen]byte
//	data    [dataLen]byte
type request struct {
	op     uint8
	seq    uint32
	handle int32
	flags  uint32
	offset int64
	length int64
	path   string
	data   []byte
}

func writeRequest(w io.Writer, r *request) error {
	if len(r.data) > MaxChunk {
		return fmt.Errorf("%w: request payload %d exceeds max %d", ErrInvalid, len(r.data), MaxChunk)
	}
	if len(r.path) > maxPathLen {
		// Symmetric with the data-length check: the peer's parser would
		// reject this as ErrProtocol and sever the connection, so refuse
		// before a byte hits the wire and keep the connection healthy.
		return fmt.Errorf("%w: path length %d exceeds max %d", ErrInvalid, len(r.path), maxPathLen)
	}
	var hdr [reqHeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:], reqMagic)
	hdr[2] = protoVer
	hdr[3] = r.op
	binary.BigEndian.PutUint32(hdr[4:], r.seq)
	binary.BigEndian.PutUint32(hdr[8:], uint32(r.handle))
	binary.BigEndian.PutUint32(hdr[12:], r.flags)
	binary.BigEndian.PutUint64(hdr[16:], uint64(r.offset))
	binary.BigEndian.PutUint64(hdr[24:], uint64(r.length))
	binary.BigEndian.PutUint32(hdr[32:], uint32(len(r.path)))
	binary.BigEndian.PutUint32(hdr[36:], uint32(len(r.data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(r.path) > 0 {
		if _, err := io.WriteString(w, r.path); err != nil {
			return err
		}
	}
	if len(r.data) > 0 {
		if _, err := w.Write(r.data); err != nil {
			return err
		}
	}
	return nil
}

func readRequest(r io.Reader) (*request, error) {
	var hdr [reqHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:]) != reqMagic {
		return nil, fmt.Errorf("%w: bad request magic", ErrProtocol)
	}
	if hdr[2] != protoVer {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrProtocol, hdr[2])
	}
	req := &request{
		op:     hdr[3],
		seq:    binary.BigEndian.Uint32(hdr[4:]),
		handle: int32(binary.BigEndian.Uint32(hdr[8:])),
		flags:  binary.BigEndian.Uint32(hdr[12:]),
		offset: int64(binary.BigEndian.Uint64(hdr[16:])),
		length: int64(binary.BigEndian.Uint64(hdr[24:])),
	}
	pathLen := binary.BigEndian.Uint32(hdr[32:])
	dataLen := binary.BigEndian.Uint32(hdr[36:])
	if pathLen > maxPathLen || dataLen > MaxChunk {
		return nil, fmt.Errorf("%w: oversized request (path %d, data %d)", ErrProtocol, pathLen, dataLen)
	}
	if pathLen > 0 {
		pb := getBuf(int(pathLen))
		if _, err := io.ReadFull(r, pb); err != nil {
			putBuf(pb)
			return nil, err
		}
		req.path = string(pb)
		putBuf(pb)
	}
	if dataLen > 0 {
		// Pooled: the server's request loop releases req.data once the
		// response is written (dispatch never retains payload bytes).
		req.data = getBuf(int(dataLen))
		if _, err := io.ReadFull(r, req.data); err != nil {
			putBuf(req.data)
			return nil, err
		}
	}
	return req, nil
}

// response is the wire form of one server reply.
//
//	magic   uint16
//	_       uint16 (pad)
//	seq     uint32
//	status  int32
//	value   int64
//	msgLen  uint32
//	dataLen uint32
//	msg     [msgLen]byte
//	data    [dataLen]byte
type response struct {
	seq    uint32
	status int32
	value  int64
	msg    string
	data   []byte
}

func writeResponse(w io.Writer, resp *response) error {
	msg := resp.msg
	if len(msg) > maxMsgLen {
		// An err.Error() of any length can land here (statusIO carries
		// the text); the peer's parser rejects msgLen > maxMsgLen as
		// ErrProtocol, which would turn a benign status reply into a
		// sticky transport kill. Truncate instead of poisoning the
		// connection.
		msg = msg[:maxMsgLen]
	}
	var hdr [respHeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:], respMagic)
	binary.BigEndian.PutUint32(hdr[4:], resp.seq)
	binary.BigEndian.PutUint32(hdr[8:], uint32(resp.status))
	binary.BigEndian.PutUint64(hdr[12:], uint64(resp.value))
	binary.BigEndian.PutUint32(hdr[20:], uint32(len(msg)))
	binary.BigEndian.PutUint32(hdr[24:], uint32(len(resp.data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(msg) > 0 {
		if _, err := io.WriteString(w, msg); err != nil {
			return err
		}
	}
	if len(resp.data) > 0 {
		if _, err := w.Write(resp.data); err != nil {
			return err
		}
	}
	return nil
}

func readResponse(r io.Reader) (*response, error) {
	var hdr [respHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:]) != respMagic {
		return nil, fmt.Errorf("%w: bad response magic", ErrProtocol)
	}
	resp := &response{
		seq:    binary.BigEndian.Uint32(hdr[4:]),
		status: int32(binary.BigEndian.Uint32(hdr[8:])),
		value:  int64(binary.BigEndian.Uint64(hdr[12:])),
	}
	msgLen := binary.BigEndian.Uint32(hdr[20:])
	dataLen := binary.BigEndian.Uint32(hdr[24:])
	if msgLen > maxMsgLen || dataLen > MaxChunk {
		return nil, fmt.Errorf("%w: oversized response", ErrProtocol)
	}
	if msgLen > 0 {
		mb := getBuf(int(msgLen))
		if _, err := io.ReadFull(r, mb); err != nil {
			putBuf(mb)
			return nil, err
		}
		resp.msg = string(mb)
		putBuf(mb)
	}
	if dataLen > 0 {
		// Pooled: the client's data hot paths (ReadAt/Read) release after
		// copying out; metadata paths copy into strings and leave the
		// buffer to the GC.
		resp.data = getBuf(int(dataLen))
		if _, err := io.ReadFull(r, resp.data); err != nil {
			putBuf(resp.data)
			return nil, err
		}
	}
	return resp, nil
}

// FileInfo is the stat result for a logical path.
type FileInfo struct {
	Path     string
	IsDir    bool
	Size     int64
	Modified int64 // unix nanos
	Resource string
}

func encodeFileInfo(fi *FileInfo) []byte {
	buf := make([]byte, 0, 32+len(fi.Path)+len(fi.Resource))
	var tmp [8]byte
	flag := byte(0)
	if fi.IsDir {
		flag = 1
	}
	buf = append(buf, flag)
	binary.BigEndian.PutUint64(tmp[:], uint64(fi.Size))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(fi.Modified))
	buf = append(buf, tmp[:]...)
	buf = appendString(buf, fi.Path)
	buf = appendString(buf, fi.Resource)
	return buf
}

func decodeFileInfo(b []byte) (*FileInfo, []byte, error) {
	if len(b) < 17 {
		return nil, nil, ErrProtocol
	}
	if b[0] > 1 {
		// The encoder only ever emits 0 or 1; anything else is framing
		// damage, not a deliberate flag.
		return nil, nil, ErrProtocol
	}
	fi := &FileInfo{IsDir: b[0] == 1}
	fi.Size = int64(binary.BigEndian.Uint64(b[1:]))
	fi.Modified = int64(binary.BigEndian.Uint64(b[9:]))
	var err error
	b = b[17:]
	if fi.Path, b, err = takeString(b); err != nil {
		return nil, nil, err
	}
	if fi.Resource, b, err = takeString(b); err != nil {
		return nil, nil, err
	}
	return fi, b, nil
}

// Vectored-write framing. An opWritev request carries several (offset, data)
// segments for one handle in a single round trip:
//
//	count uint32
//	count × { off int64, segLen uint32 }
//	concatenated payload bytes, in segment order
//
// The segment table is up front so the server can validate the whole vector
// before touching storage. Callers budget frames so the encoded form stays
// within MaxChunk (writevHdrSize + per-segment writevSegSize + payload).
const (
	writevHdrSize = 4  // count
	writevSegSize = 12 // off i64 + segLen u32
)

// writeSeg is one segment of a vectored write.
type writeSeg struct {
	off  int64
	data []byte
}

// encodeWritev packs segments into an opWritev request payload, coalescing
// table entries for segments that are contiguous on disk: the payload bytes
// concatenate either way, so adjacent stripes collapse into one run for
// free. The buffer is pooled; the caller releases it with putBuf once the
// frame is on the wire.
func encodeWritev(segs []writeSeg) []byte {
	type run struct {
		off int64
		n   int
	}
	runs := make([]run, 0, len(segs))
	size := writevHdrSize
	for _, s := range segs {
		size += len(s.data)
		if k := len(runs) - 1; k >= 0 && runs[k].off+int64(runs[k].n) == s.off {
			runs[k].n += len(s.data)
			continue
		}
		runs = append(runs, run{off: s.off, n: len(s.data)})
	}
	size += len(runs) * writevSegSize
	buf := getBuf(size)
	binary.BigEndian.PutUint32(buf[0:], uint32(len(runs)))
	p := writevHdrSize
	for _, r := range runs {
		binary.BigEndian.PutUint64(buf[p:], uint64(r.off))
		binary.BigEndian.PutUint32(buf[p+8:], uint32(r.n))
		p += writevSegSize
	}
	for _, s := range segs {
		p += copy(buf[p:], s.data)
	}
	return buf
}

// decodeWritev unpacks an opWritev payload. The frame already passed the
// wire parser's bounds, so malformed vector framing here is an argument
// error (ErrInvalid status reply) rather than connection damage. Returned
// segments alias b; callers must copy before b is released.
func decodeWritev(b []byte) ([]writeSeg, error) {
	if len(b) < writevHdrSize {
		return nil, fmt.Errorf("%w: writev frame too short", ErrInvalid)
	}
	count := binary.BigEndian.Uint32(b)
	if count == 0 {
		return nil, fmt.Errorf("%w: empty writev vector", ErrInvalid)
	}
	if int(count) > (len(b)-writevHdrSize)/writevSegSize {
		return nil, fmt.Errorf("%w: writev segment table truncated", ErrInvalid)
	}
	segs := make([]writeSeg, count)
	p := writevHdrSize
	var total int
	for i := range segs {
		segs[i].off = int64(binary.BigEndian.Uint64(b[p:]))
		segLen := binary.BigEndian.Uint32(b[p+8:])
		if segLen > MaxChunk {
			return nil, fmt.Errorf("%w: writev segment oversized", ErrInvalid)
		}
		if segs[i].off < 0 {
			return nil, fmt.Errorf("%w: negative writev offset", ErrInvalid)
		}
		total += int(segLen)
		p += writevSegSize
	}
	if len(b)-p != total {
		return nil, fmt.Errorf("%w: writev payload length mismatch", ErrInvalid)
	}
	for i := range segs {
		segLen := int(binary.BigEndian.Uint32(b[writevHdrSize+i*writevSegSize+8:]))
		segs[i].data = b[p : p+segLen]
		p += segLen
	}
	return segs, nil
}

// Vectored-read framing (list I/O). An opReadv request carries a vector of
// (offset, length) ranges for one handle:
//
//	count uint32
//	count × { off int64, rangeLen uint32 }
//
// The response concatenates the bytes of each range in request order. The
// server fills ranges front to back and stops at the first range that comes
// up short (EOF), so the client can scatter the reply unambiguously: every
// range before the short one is full, everything after it is absent. Callers
// budget frames so the total requested bytes stay within MaxChunk (the
// response must fit one chunk).
const (
	readvHdrSize = 4  // count
	readvSegSize = 12 // off i64 + rangeLen u32
)

// readSeg is one range of a vectored read.
type readSeg struct {
	off int64
	n   int
}

// encodeReadv packs ranges into an opReadv request payload, coalescing table
// entries for ranges that are contiguous on disk — the reply bytes
// concatenate either way, so adjacent stripes collapse into one run for
// free. The buffer is pooled; the caller releases it with putBuf once the
// frame is on the wire.
func encodeReadv(segs []readSeg) []byte {
	runs := make([]readSeg, 0, len(segs))
	for _, s := range segs {
		if k := len(runs) - 1; k >= 0 && runs[k].off+int64(runs[k].n) == s.off {
			runs[k].n += s.n
			continue
		}
		runs = append(runs, s)
	}
	buf := getBuf(readvHdrSize + len(runs)*readvSegSize)
	binary.BigEndian.PutUint32(buf[0:], uint32(len(runs)))
	p := readvHdrSize
	for _, r := range runs {
		binary.BigEndian.PutUint64(buf[p:], uint64(r.off))
		binary.BigEndian.PutUint32(buf[p+8:], uint32(r.n))
		p += readvSegSize
	}
	return buf
}

// decodeReadv unpacks an opReadv payload. The frame already passed the wire
// parser's bounds, so malformed vector framing here is an argument error
// (ErrInvalid status reply) rather than connection damage.
func decodeReadv(b []byte) ([]readSeg, error) {
	if len(b) < readvHdrSize {
		return nil, fmt.Errorf("%w: readv frame too short", ErrInvalid)
	}
	count := binary.BigEndian.Uint32(b)
	if count == 0 {
		return nil, fmt.Errorf("%w: empty readv vector", ErrInvalid)
	}
	if len(b)-readvHdrSize != int(count)*readvSegSize {
		return nil, fmt.Errorf("%w: readv range table length mismatch", ErrInvalid)
	}
	segs := make([]readSeg, count)
	p := readvHdrSize
	var total int64
	for i := range segs {
		segs[i].off = int64(binary.BigEndian.Uint64(b[p:]))
		rangeLen := binary.BigEndian.Uint32(b[p+8:])
		if segs[i].off < 0 {
			return nil, fmt.Errorf("%w: negative readv offset", ErrInvalid)
		}
		if rangeLen == 0 {
			return nil, fmt.Errorf("%w: empty readv range", ErrInvalid)
		}
		segs[i].n = int(rangeLen)
		total += int64(rangeLen)
		p += readvSegSize
	}
	if total > MaxChunk {
		return nil, fmt.Errorf("%w: readv reply would exceed MaxChunk", ErrInvalid)
	}
	return segs, nil
}

func appendString(buf []byte, s string) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, ErrProtocol
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return "", nil, ErrProtocol
	}
	return string(b[:n]), b[n:], nil
}

// Authenticated-handshake blob, carried in opConnect's data field (legacy
// anonymous connects send no data, so the layout of the fixed request
// header is unchanged):
//
//	tenantLen uint32
//	tenantID  [tenantLen]byte
//	proofLen  uint32
//	proof     [proofLen]byte   // HMAC-SHA256 over (tenantID, user)
//
// Both fields are length-framed inside an already length-framed request
// body, so a malformed blob can fail decoding but can never desync the
// stream — the server reads exactly dataLen bytes either way.
const (
	// maxTenantLen bounds the tenant ID field of an auth blob.
	maxTenantLen = 256
	// maxProofLen bounds the key-proof field; large enough for any HMAC
	// the registry might use (SHA-256 today = 32 bytes).
	maxProofLen = 64
)

// encodeAuth serializes a connect auth blob.
func encodeAuth(tenantID string, proof []byte) []byte {
	buf := make([]byte, 0, 8+len(tenantID)+len(proof))
	buf = appendString(buf, tenantID)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(proof)))
	buf = append(buf, tmp[:]...)
	return append(buf, proof...)
}

// decodeAuth parses a connect auth blob. Errors wrap ErrProtocol (framing)
// or ErrInvalid (bounds); the caller converts either into a terminal auth
// failure on the wire.
func decodeAuth(b []byte) (tenantID string, proof []byte, err error) {
	tenantID, rest, err := takeString(b)
	if err != nil {
		return "", nil, fmt.Errorf("%w: auth blob tenant id", ErrProtocol)
	}
	if len(tenantID) == 0 || len(tenantID) > maxTenantLen {
		return "", nil, fmt.Errorf("%w: auth tenant id length %d", ErrInvalid, len(tenantID))
	}
	if len(rest) < 4 {
		return "", nil, fmt.Errorf("%w: auth blob truncated before proof", ErrProtocol)
	}
	n := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if n > maxProofLen {
		return "", nil, fmt.Errorf("%w: auth proof length %d exceeds max %d", ErrInvalid, n, maxProofLen)
	}
	if uint32(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: auth proof truncated", ErrProtocol)
	}
	if uint32(len(rest)) > n {
		return "", nil, fmt.Errorf("%w: %d trailing bytes after auth proof", ErrProtocol, uint32(len(rest))-n)
	}
	// Copy: the request data buffer is pooled and recycled after dispatch.
	return tenantID, append([]byte(nil), rest[:n]...), nil
}
