package srb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// sampleRequestBytes encodes a representative request for seeding.
func sampleRequestBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := writeRequest(&buf, &request{
		op:     opWrite,
		seq:    7,
		handle: 3,
		flags:  O_RDWR | O_CREATE,
		offset: 1 << 20,
		length: 5,
		path:   "/col/a.dat",
		data:   []byte("hello"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sampleResponseBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := writeResponse(&buf, &response{
		seq:    7,
		status: statusIO,
		value:  42,
		msg:    "disk on fire",
		data:   []byte{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadRequest feeds arbitrary bytes to the server-side request parser.
// It must never panic or over-allocate; any accepted request must satisfy
// the protocol bounds and survive an encode/re-parse round trip untouched.
func FuzzReadRequest(f *testing.F) {
	valid := sampleRequestBytes(f)
	f.Add(valid)
	f.Add(valid[:reqHeaderSize-1]) // truncated header

	badMagic := bytes.Clone(valid)
	badMagic[0] = 0xFF
	f.Add(badMagic)

	badVersion := bytes.Clone(valid)
	badVersion[2] = 9
	f.Add(badVersion)

	hugePath := bytes.Clone(valid)
	binary.BigEndian.PutUint32(hugePath[32:], 1<<31)
	f.Add(hugePath)

	hugeData := bytes.Clone(valid)
	binary.BigEndian.PutUint32(hugeData[36:], MaxChunk+1)
	f.Add(hugeData)

	// A setattr payload whose key smuggles a NUL: the frame parses fine,
	// but the key\0value split would land in the wrong place. The client
	// rejects such keys before encoding; this seed keeps the parser honest
	// about frames a non-conforming client could still send.
	var nulKey bytes.Buffer
	if err := writeRequest(&nulKey, &request{
		op: opSetAttr, seq: 8, path: "/col/a.dat",
		data: []byte("bad\x00key\x00value"),
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(nulKey.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(req.path) > 4096 {
			t.Fatalf("accepted path of %d bytes, limit is 4096", len(req.path))
		}
		if len(req.data) > MaxChunk {
			t.Fatalf("accepted payload of %d bytes, MaxChunk is %d", len(req.data), MaxChunk)
		}
		var buf bytes.Buffer
		if err := writeRequest(&buf, req); err != nil {
			t.Fatalf("re-encoding an accepted request failed: %v", err)
		}
		again, err := readRequest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing a re-encoded request failed: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("request round trip changed the value:\n first: %+v\nsecond: %+v", req, again)
		}
	})
}

// FuzzReadResponse is the client-side mirror of FuzzReadRequest.
func FuzzReadResponse(f *testing.F) {
	valid := sampleResponseBytes(f)
	f.Add(valid)
	f.Add(valid[:respHeaderSize-1]) // truncated header

	badMagic := bytes.Clone(valid)
	badMagic[0] = 0xFF
	f.Add(badMagic)

	hugeMsg := bytes.Clone(valid)
	binary.BigEndian.PutUint32(hugeMsg[20:], 1<<31)
	f.Add(hugeMsg)

	hugeData := bytes.Clone(valid)
	binary.BigEndian.PutUint32(hugeData[24:], MaxChunk+1)
	f.Add(hugeData)

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := readResponse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(resp.msg) > 4096 {
			t.Fatalf("accepted message of %d bytes, limit is 4096", len(resp.msg))
		}
		if len(resp.data) > MaxChunk {
			t.Fatalf("accepted payload of %d bytes, MaxChunk is %d", len(resp.data), MaxChunk)
		}
		var buf bytes.Buffer
		if err := writeResponse(&buf, resp); err != nil {
			t.Fatalf("re-encoding an accepted response failed: %v", err)
		}
		again, err := readResponse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing a re-encoded response failed: %v", err)
		}
		if !reflect.DeepEqual(resp, again) {
			t.Fatalf("response round trip changed the value:\n first: %+v\nsecond: %+v", resp, again)
		}
	})
}

// FuzzDecodeFileInfo covers the variable-length stat payload: decoding
// must never panic, and the accepted prefix must re-encode identically.
func FuzzDecodeFileInfo(f *testing.F) {
	f.Add(encodeFileInfo(&FileInfo{Path: "/a", IsDir: true, Size: 9, Modified: 123, Resource: "disk"}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		fi, rest, err := decodeFileInfo(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		if got := encodeFileInfo(fi); !bytes.Equal(got, consumed) {
			t.Fatalf("re-encoding decoded FileInfo %+v differs from the consumed input", fi)
		}
	})
}

// FuzzWritevRoundTrip drives the vectored-write codec with arbitrary
// segment layouts. encodeWritev merges contiguous runs, so equality is
// checked on the flattened offset→byte content, not the segment list.
func FuzzWritevRoundTrip(f *testing.F) {
	f.Add([]byte{0, 4, 4, 4, 100, 2})
	f.Add([]byte{10, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, layout []byte) {
		// Interpret the fuzz input as (offset, length) byte pairs.
		var segs []writeSeg
		next := byte(1)
		for i := 0; i+1 < len(layout) && len(segs) < 64; i += 2 {
			n := int(layout[i+1]) + 1
			data := make([]byte, n)
			for j := range data {
				data[j] = next
				next++
			}
			segs = append(segs, writeSeg{off: int64(layout[i]), data: data})
		}
		if len(segs) == 0 {
			return
		}
		payload := encodeWritev(segs)
		defer putBuf(payload)
		got, err := decodeWritev(payload)
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		flatten := func(segs []writeSeg) map[int64]byte {
			m := make(map[int64]byte)
			for _, s := range segs {
				for j, b := range s.data {
					m[s.off+int64(j)] = b
				}
			}
			return m
		}
		want, have := flatten(segs), flatten(got)
		if len(want) != len(have) {
			t.Fatalf("flattened content covers %d offsets, want %d", len(have), len(want))
		}
		for off, b := range want {
			if have[off] != b {
				t.Fatalf("byte at offset %d = %d, want %d", off, have[off], b)
			}
		}
	})
}

// FuzzDecodeWritev feeds raw bytes to the vector parser: it must never
// panic, and every accepted vector must satisfy the protocol bounds.
func FuzzDecodeWritev(f *testing.F) {
	good := encodeWritev([]writeSeg{{off: 0, data: []byte("abc")}, {off: 9, data: []byte("z")}})
	f.Add(bytes.Clone(good))
	putBuf(good)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		segs, err := decodeWritev(data)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("decode error %v is not ErrInvalid", err)
			}
			return
		}
		total := 0
		for _, s := range segs {
			if s.off < 0 {
				t.Fatalf("accepted negative offset %d", s.off)
			}
			if len(s.data) > MaxChunk {
				t.Fatalf("accepted %d-byte segment, MaxChunk is %d", len(s.data), MaxChunk)
			}
			total += len(s.data)
		}
		// In production the whole frame is capped at MaxChunk by
		// readRequest; here only internal consistency can be checked.
		if total > len(data) {
			t.Fatalf("segments claim %d bytes from a %d-byte frame", total, len(data))
		}
	})
}

// FuzzReadvRoundTrip drives the vectored-read codec with arbitrary range
// layouts. encodeReadv merges contiguous runs, so equality is checked on
// the flattened offset coverage (as a multiset), not the range list.
func FuzzReadvRoundTrip(f *testing.F) {
	f.Add([]byte{0, 4, 4, 4, 100, 2})
	f.Add([]byte{10, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, layout []byte) {
		// Interpret the fuzz input as (offset, length) byte pairs.
		var segs []readSeg
		for i := 0; i+1 < len(layout) && len(segs) < 64; i += 2 {
			segs = append(segs, readSeg{off: int64(layout[i]), n: int(layout[i+1]) + 1})
		}
		if len(segs) == 0 {
			return
		}
		payload := encodeReadv(segs)
		defer putBuf(payload)
		got, err := decodeReadv(payload)
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		flatten := func(segs []readSeg) []int64 {
			var offs []int64
			for _, s := range segs {
				for j := int64(0); j < int64(s.n); j++ {
					offs = append(offs, s.off+j)
				}
			}
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			return offs
		}
		want, have := flatten(segs), flatten(got)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("flattened coverage changed: %d offsets in, %d out", len(want), len(have))
		}
	})
}

// FuzzDecodeReadv feeds raw bytes to the vector parser: it must never
// panic, every rejection must classify as ErrInvalid, and every accepted
// vector must satisfy the protocol bounds.
func FuzzDecodeReadv(f *testing.F) {
	good := encodeReadv([]readSeg{{off: 0, n: 3}, {off: 9, n: 1}})
	f.Add(bytes.Clone(good))
	putBuf(good)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		segs, err := decodeReadv(data)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("decode error %v is not ErrInvalid", err)
			}
			return
		}
		total := 0
		for _, s := range segs {
			if s.off < 0 {
				t.Fatalf("accepted negative offset %d", s.off)
			}
			if s.n < 1 {
				t.Fatalf("accepted empty range")
			}
			total += s.n
		}
		if total > MaxChunk {
			t.Fatalf("accepted a vector requesting %d bytes, MaxChunk is %d", total, MaxChunk)
		}
	})
}

// TestReadRequestMalformed pins the error classification for the seeded
// malformed inputs: framing damage is ErrProtocol, truncation is an I/O
// error — the server uses this split to decide logging vs disconnect.
func TestReadRequestMalformed(t *testing.T) {
	valid := sampleRequestBytes(t)

	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(valid)
		f(b)
		return b
	}
	cases := []struct {
		name    string
		input   []byte
		wantErr error
		proto   bool
	}{
		{"truncated header", valid[:reqHeaderSize-1], io.ErrUnexpectedEOF, false},
		{"empty", nil, io.EOF, false},
		{"bad magic", mutate(func(b []byte) { b[0] = 0xFF }), ErrProtocol, true},
		{"bad version", mutate(func(b []byte) { b[2] = 9 }), ErrProtocol, true},
		{"oversized pathLen", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[32:], 1<<31) }), ErrProtocol, true},
		{"oversized dataLen", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[36:], MaxChunk+1) }), ErrProtocol, true},
		{"truncated body", valid[:len(valid)-1], io.ErrUnexpectedEOF, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readRequest(bytes.NewReader(tc.input))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want %v", err, tc.wantErr)
			}
			if tc.proto && !strings.Contains(err.Error(), "srb: protocol error") {
				t.Fatalf("protocol damage should report ErrProtocol, got %v", err)
			}
		})
	}

	t.Run("valid", func(t *testing.T) {
		req, err := readRequest(bytes.NewReader(valid))
		if err != nil {
			t.Fatal(err)
		}
		if req.op != opWrite || req.path != "/col/a.dat" || string(req.data) != "hello" {
			t.Fatalf("parsed request mismatch: %+v", req)
		}
	})
}

// FuzzDecodeAuth feeds arbitrary bytes to the connect-handshake auth-blob
// parser. It must never panic; any accepted blob must satisfy the tenant
// bounds and survive an encode/re-parse round trip. Because the blob is
// length-framed inside the (already length-framed) connect body, a
// malformed blob must yield a status error, never a stream desync — that
// property is the parser returning an error instead of misreading.
func FuzzDecodeAuth(f *testing.F) {
	valid := encodeAuth("acme", bytes.Repeat([]byte{0xAB}, 32))
	f.Add(valid)
	f.Add(valid[:3])                        // truncated tenant length
	f.Add(valid[:7])                        // truncated proof length
	f.Add(append(bytes.Clone(valid), 0xEE)) // trailing garbage
	f.Add(encodeAuth("", nil))              // empty tenant ID
	f.Add(encodeAuth(strings.Repeat("x", maxTenantLen+1), nil))
	f.Add(encodeAuth("t", make([]byte, maxProofLen+1)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 9, 'a'}) // tenant length beyond the blob

	f.Fuzz(func(t *testing.T, data []byte) {
		id, proof, err := decodeAuth(data)
		if err != nil {
			if !errors.Is(err, ErrProtocol) && !errors.Is(err, ErrInvalid) {
				t.Fatalf("decodeAuth error %v is neither ErrProtocol nor ErrInvalid", err)
			}
			return
		}
		if id == "" || len(id) > maxTenantLen {
			t.Fatalf("accepted tenant ID of %d bytes", len(id))
		}
		if len(proof) > maxProofLen {
			t.Fatalf("accepted proof of %d bytes", len(proof))
		}
		again := encodeAuth(id, proof)
		id2, proof2, err := decodeAuth(again)
		if err != nil {
			t.Fatalf("re-parsing a re-encoded auth blob failed: %v", err)
		}
		if id2 != id || !bytes.Equal(proof2, proof) {
			t.Fatalf("auth round trip changed the value: (%q, %x) -> (%q, %x)", id, proof, id2, proof2)
		}
	})
}

// FuzzAuthRoundTrip drives the encoder with arbitrary credentials and
// checks the decoder returns them exactly (within protocol bounds).
func FuzzAuthRoundTrip(f *testing.F) {
	f.Add("acme", []byte{1, 2, 3})
	f.Add("t", []byte{})
	f.Add(strings.Repeat("x", maxTenantLen), bytes.Repeat([]byte{9}, maxProofLen))

	f.Fuzz(func(t *testing.T, id string, proof []byte) {
		if id == "" || len(id) > maxTenantLen || len(proof) > maxProofLen {
			return // out of contract for the encoder
		}
		gotID, gotProof, err := decodeAuth(encodeAuth(id, proof))
		if err != nil {
			t.Fatalf("decodeAuth(encodeAuth(%q, %x)) = %v", id, proof, err)
		}
		if gotID != id || !bytes.Equal(gotProof, proof) {
			t.Fatalf("round trip changed the value: (%q, %x) -> (%q, %x)", id, proof, gotID, gotProof)
		}
	})
}
