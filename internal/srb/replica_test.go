package srb

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"math/rand"
	"testing"

	"semplar/internal/storage"
)

// twoResourceServer builds a server with "mem" (default) and "backup"
// resources, returning the backup store for direct inspection.
func twoResourceServer(t *testing.T) (*Server, *storage.MemStore, *Conn) {
	t.Helper()
	srv := NewMemServer(storage.DeviceSpec{})
	backup := storage.NewMemStore()
	srv.AddResource("backup", "disk", backup)
	conn := connectTo(t, srv)
	return srv, backup, conn
}

func TestReplicateCopiesData(t *testing.T) {
	_, backup, conn := twoResourceServer(t)
	f, _ := conn.Open("/data", O_RDWR|O_CREATE, "")
	payload := make([]byte, 3<<20) // multiple copy-loop iterations
	rand.New(rand.NewSource(4)).Read(payload)
	f.WriteAt(payload, 0)
	f.Close()

	n, err := conn.Replicate("/data", "backup")
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("replicate = %d, %v", n, err)
	}
	// The backup store holds a bit-identical copy.
	keys := backup.Keys()
	if len(keys) != 1 {
		t.Fatalf("backup keys = %v", keys)
	}
	obj, err := backup.Open(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := obj.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("replica differs from primary")
	}
}

func TestReplicateErrors(t *testing.T) {
	_, _, conn := twoResourceServer(t)
	f, _ := conn.Open("/f", O_WRONLY|O_CREATE, "")
	f.WriteAt([]byte("x"), 0)
	f.Close()

	if _, err := conn.Replicate("/missing", "backup"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing = %v", err)
	}
	if _, err := conn.Replicate("/f", "mem"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("primary resource = %v", err)
	}
	if _, err := conn.Replicate("/f", "nosuch"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown resource = %v", err)
	}
	if _, err := conn.Replicate("/f", "backup"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Replicate("/f", "backup"); !errors.Is(err, ErrExists) {
		t.Fatalf("double replicate = %v", err)
	}
	conn.Mkdir("/coll")
	if _, err := conn.Replicate("/coll", "backup"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("replicate collection = %v", err)
	}
}

func TestReadFailsOverToReplica(t *testing.T) {
	srv, _, conn := twoResourceServer(t)
	f, _ := conn.Open("/critical", O_RDWR|O_CREATE, "")
	f.WriteAt([]byte("precious bytes"), 0)
	f.Close()
	if _, err := conn.Replicate("/critical", "backup"); err != nil {
		t.Fatal(err)
	}

	// Degrade the primary: delete the physical object out from under
	// the catalog.
	e, err := srv.Catalog().Lookup("/critical")
	if err != nil {
		t.Fatal(err)
	}
	srv.resources["mem"].Remove(e.PhysicalKey)

	// Opening still works via the replica.
	f2, err := conn.Open("/critical", O_RDONLY, "")
	if err != nil {
		t.Fatalf("open after primary loss: %v", err)
	}
	defer f2.Close()
	got := make([]byte, 14)
	if _, err := f2.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "precious bytes" {
		t.Fatalf("failover read = %q", got)
	}
}

func TestOpenFailsWithNoCopies(t *testing.T) {
	srv, _, conn := twoResourceServer(t)
	f, _ := conn.Open("/gone", O_WRONLY|O_CREATE, "")
	f.WriteAt([]byte("z"), 0)
	f.Close()
	e, _ := srv.Catalog().Lookup("/gone")
	srv.resources["mem"].Remove(e.PhysicalKey)
	if _, err := conn.Open("/gone", O_RDONLY, ""); !errors.Is(err, ErrIO) {
		t.Fatalf("open with no copies = %v", err)
	}
}

func TestUnlinkRemovesReplicas(t *testing.T) {
	_, backup, conn := twoResourceServer(t)
	f, _ := conn.Open("/r", O_WRONLY|O_CREATE, "")
	f.WriteAt(make([]byte, 1000), 0)
	f.Close()
	conn.Replicate("/r", "backup")
	if len(backup.Keys()) != 1 {
		t.Fatal("replica missing before unlink")
	}
	if err := conn.Unlink("/r"); err != nil {
		t.Fatal(err)
	}
	if len(backup.Keys()) != 0 {
		t.Fatalf("replica survived unlink: %v", backup.Keys())
	}
}

func TestChecksum(t *testing.T) {
	_, _, conn := twoResourceServer(t)
	f, _ := conn.Open("/sum", O_RDWR|O_CREATE, "")
	payload := bytes.Repeat([]byte("integrity"), 100000) // several hash blocks
	f.WriteAt(payload, 0)
	f.Close()

	sum, size, err := conn.Checksum("/sum")
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Fatalf("size = %d", size)
	}
	want := sha256.Sum256(payload)
	if sum != hex.EncodeToString(want[:]) {
		t.Fatalf("server checksum %s != local %x", sum, want)
	}
	// Recorded as an attribute.
	attr, err := conn.GetAttr("/sum", "checksum")
	if err != nil || attr != sum {
		t.Fatalf("attr = %q, %v", attr, err)
	}
	// Changing the file changes the checksum.
	f2, _ := conn.Open("/sum", O_WRONLY, "")
	f2.WriteAt([]byte{0}, 5)
	f2.Close()
	sum2, _, err := conn.Checksum("/sum")
	if err != nil || sum2 == sum {
		t.Fatalf("checksum unchanged after modification (%v)", err)
	}
	// Errors.
	if _, _, err := conn.Checksum("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing = %v", err)
	}
	conn.Mkdir("/dir")
	if _, _, err := conn.Checksum("/dir"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("collection = %v", err)
	}
}
