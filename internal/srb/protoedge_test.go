package srb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// TestLongErrorMessageTruncatedOnWire is the regression for the framing
// asymmetry where writeResponse emitted err.Error() of any length while
// readResponse rejected msgLen > maxMsgLen: one verbose server error would
// poison the stream for every later response. The writer must truncate.
func TestLongErrorMessageTruncatedOnWire(t *testing.T) {
	long := strings.Repeat("e", maxMsgLen+1234)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeResponse(bw, &response{seq: 9, status: statusIO, msg: long}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := readResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("reader rejected writer's own frame: %v", err)
	}
	if len(resp.msg) != maxMsgLen {
		t.Fatalf("msg length on wire = %d, want truncation to %d", len(resp.msg), maxMsgLen)
	}
	if resp.msg != long[:maxMsgLen] {
		t.Fatal("truncated msg is not a prefix of the original")
	}
}

// TestLongErrorMessageEndToEnd drives the same asymmetry through a live
// server: a status error whose message exceeds maxMsgLen must come back as
// a readable status error, and the connection must stay usable.
func TestLongErrorMessageEndToEnd(t *testing.T) {
	_, conn := startPair(t)
	// A deep, long path produces a long ErrNotFound message via the
	// server's error formatting; any status reply works for the check.
	deep := "/" + strings.Repeat("d", 2000) + "/" + strings.Repeat("e", 2000) + "/x"
	if _, err := conn.Stat(deep); err == nil {
		t.Fatal("stat of missing path succeeded")
	}
	if _, err := conn.Ping(); err != nil {
		t.Fatalf("connection unusable after status error: %v", err)
	}
}

// TestOversizedPathRejectedClientSide is the regression for the mirrored
// request-side asymmetry: writeRequest used to emit arbitrarily long paths
// that readRequest rejected, killing the connection. The client must fail
// the call with ErrInvalid before anything reaches the wire.
func TestOversizedPathRejectedClientSide(t *testing.T) {
	_, conn := startPair(t)
	long := "/" + strings.Repeat("p", maxPathLen)
	if _, err := conn.Stat(long); !errors.Is(err, ErrInvalid) {
		t.Fatalf("oversized path error = %v, want ErrInvalid", err)
	}
	if err := conn.Mkdir(long); !errors.Is(err, ErrInvalid) {
		t.Fatalf("oversized mkdir error = %v, want ErrInvalid", err)
	}
	// The frame never went out; the connection is still healthy.
	if _, err := conn.Ping(); err != nil {
		t.Fatalf("ping after rejected path: %v", err)
	}
}

// TestSetAttrNulKeyRejected: attribute frames carry key\0value, so a key
// containing NUL would silently shift the split point and corrupt both
// halves. The client must reject it up front.
func TestSetAttrNulKeyRejected(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/attrfile", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := conn.SetAttr("/attrfile", "bad\x00key", "v"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("NUL key error = %v, want ErrInvalid", err)
	}
	// NUL in the value is legal — only the key delimits.
	if err := conn.SetAttr("/attrfile", "ok", "va\x00lue"); err != nil {
		t.Fatalf("NUL in value rejected: %v", err)
	}
	got, err := conn.GetAttr("/attrfile", "ok")
	if err != nil || got != "va\x00lue" {
		t.Fatalf("GetAttr = %q, %v", got, err)
	}
}

func TestEncodeWritevMergesContiguousRuns(t *testing.T) {
	segs := []writeSeg{
		{off: 0, data: []byte("aaaa")},
		{off: 4, data: []byte("bbbb")}, // contiguous: merges into run 1
		{off: 100, data: []byte("cc")}, // gap: new run
		{off: 102, data: []byte("dd")}, // contiguous again
		{off: 90, data: []byte("ee")},  // backward jump: new run
	}
	payload := encodeWritev(segs)
	defer putBuf(payload)
	got, err := decodeWritev(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := []writeSeg{
		{off: 0, data: []byte("aaaabbbb")},
		{off: 100, data: []byte("ccdd")},
		{off: 90, data: []byte("ee")},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d runs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].off != want[i].off || !bytes.Equal(got[i].data, want[i].data) {
			t.Fatalf("run %d = {%d, %q}, want {%d, %q}",
				i, got[i].off, got[i].data, want[i].off, want[i].data)
		}
	}
}

func TestDecodeWritevMalformed(t *testing.T) {
	// A frame claiming one 4-byte segment but carrying only 2 payload bytes.
	short := make([]byte, writevHdrSize+writevSegSize+2)
	binary.BigEndian.PutUint32(short[0:], 1)
	binary.BigEndian.PutUint64(short[writevHdrSize:], 0)
	binary.BigEndian.PutUint32(short[writevHdrSize+8:], 4)

	// A segment with a negative offset.
	negOff := make([]byte, writevHdrSize+writevSegSize+1)
	binary.BigEndian.PutUint32(negOff[0:], 1)
	binary.BigEndian.PutUint64(negOff[writevHdrSize:], ^uint64(0))
	binary.BigEndian.PutUint32(negOff[writevHdrSize+8:], 1)

	// A count far larger than the frame could hold.
	hugeCount := make([]byte, writevHdrSize)
	binary.BigEndian.PutUint32(hugeCount[0:], 1<<30)

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty frame", nil},
		{"truncated header", []byte{0, 0}},
		{"zero segments", []byte{0, 0, 0, 0}},
		{"count overflows frame", hugeCount},
		{"payload shorter than table claims", short},
		{"negative offset", negOff},
	}
	for _, c := range cases {
		if _, err := decodeWritev(c.b); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}

// TestWritevRoundTripUnmerged: runs that are not contiguous survive the
// codec byte-for-byte in order.
func TestWritevRoundTripUnmerged(t *testing.T) {
	segs := []writeSeg{
		{off: 1 << 40, data: bytes.Repeat([]byte{7}, 3000)},
		{off: 5, data: []byte{1}},
		{off: 0, data: []byte{2, 3}},
	}
	payload := encodeWritev(segs)
	defer putBuf(payload)
	got, err := decodeWritev(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d runs, want 3", len(got))
	}
	for i := range segs {
		if got[i].off != segs[i].off || !bytes.Equal(got[i].data, segs[i].data) {
			t.Fatalf("run %d mismatch", i)
		}
	}
}
