package srb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestDecodeReadvMalformed pins the argument-error classification of the
// vectored-read parser: every malformed vector is an ErrInvalid status
// reply, never connection damage.
func TestDecodeReadvMalformed(t *testing.T) {
	// A frame whose table is shorter than the count claims.
	truncTable := make([]byte, readvHdrSize+readvSegSize-1)
	binary.BigEndian.PutUint32(truncTable[0:], 1)

	// A range with a negative offset.
	negOff := make([]byte, readvHdrSize+readvSegSize)
	binary.BigEndian.PutUint32(negOff[0:], 1)
	binary.BigEndian.PutUint64(negOff[readvHdrSize:], ^uint64(0))
	binary.BigEndian.PutUint32(negOff[readvHdrSize+8:], 1)

	// A zero-length range.
	emptyRange := make([]byte, readvHdrSize+readvSegSize)
	binary.BigEndian.PutUint32(emptyRange[0:], 1)

	// A count far larger than the frame could hold.
	hugeCount := make([]byte, readvHdrSize)
	binary.BigEndian.PutUint32(hugeCount[0:], 1<<30)

	// Trailing garbage after a well-formed table.
	trailing := encodeReadv([]readSeg{{off: 0, n: 1}})
	trailing = append(bytes.Clone(trailing), 0xFF)

	// Two ranges that together request more than MaxChunk of reply.
	overChunk := make([]byte, readvHdrSize+2*readvSegSize)
	binary.BigEndian.PutUint32(overChunk[0:], 2)
	binary.BigEndian.PutUint64(overChunk[readvHdrSize:], 0)
	binary.BigEndian.PutUint32(overChunk[readvHdrSize+8:], MaxChunk)
	binary.BigEndian.PutUint64(overChunk[readvHdrSize+readvSegSize:], 1<<30)
	binary.BigEndian.PutUint32(overChunk[readvHdrSize+readvSegSize+8:], 1)

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty frame", nil},
		{"truncated header", []byte{0, 0}},
		{"zero ranges", []byte{0, 0, 0, 0}},
		{"count overflows frame", hugeCount},
		{"table truncated", truncTable},
		{"negative offset", negOff},
		{"empty range", emptyRange},
		{"trailing garbage", trailing},
		{"reply exceeds MaxChunk", overChunk},
	}
	for _, c := range cases {
		if _, err := decodeReadv(c.b); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}

// TestReadvRoundTripUnmerged: ranges that are not contiguous survive the
// codec in order; adjacent ranges merge into one run.
func TestReadvRoundTripUnmerged(t *testing.T) {
	segs := []readSeg{
		{off: 1 << 40, n: 3000},
		{off: 5, n: 1},
		{off: 6, n: 2}, // contiguous with the previous: merges
		{off: 0, n: 2},
	}
	payload := encodeReadv(segs)
	defer putBuf(payload)
	got, err := decodeReadv(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := []readSeg{{off: 1 << 40, n: 3000}, {off: 5, n: 3}, {off: 0, n: 2}}
	if len(got) != len(want) {
		t.Fatalf("decoded %d runs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestReadvMalformedOverWire: a hand-built malformed vector drawing an
// ErrInvalid status reply must leave the connection usable.
func TestReadvMalformedOverWire(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/rv.dat", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := conn.call(&request{op: opReadv, handle: f.handle, data: []byte{0, 0, 0, 0}})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty vector: resp=%+v err=%v, want ErrInvalid", resp, err)
	}
	if _, err := conn.Ping(); err != nil {
		t.Fatalf("connection damaged by malformed vector: %v", err)
	}
}

// TestReadAtVec covers the vectored-read client path end to end: scattered
// ranges gather in one round trip, EOF cuts the reply at the first short
// range, and write-only handles are rejected.
func TestReadAtVec(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/rv.dat", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 10000)
	for i := range content {
		content[i] = byte(i % 251)
	}
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}

	t.Run("scattered", func(t *testing.T) {
		segs := []ReadSeg{
			{Off: 0, Buf: make([]byte, 100)},
			{Off: 4000, Buf: make([]byte, 256)},
			{Off: 9900, Buf: make([]byte, 100)}, // exactly to EOF
		}
		n, err := f.ReadAtVec(segs)
		if err != nil || n != 456 {
			t.Fatalf("ReadAtVec = %d, %v", n, err)
		}
		for _, s := range segs {
			if !bytes.Equal(s.Buf, content[s.Off:s.Off+int64(len(s.Buf))]) {
				t.Fatalf("range at %d corrupted", s.Off)
			}
		}
	})

	t.Run("empty ranges skipped", func(t *testing.T) {
		segs := []ReadSeg{
			{Off: 10, Buf: nil},
			{Off: 20, Buf: make([]byte, 5)},
		}
		n, err := f.ReadAtVec(segs)
		if err != nil || n != 5 {
			t.Fatalf("ReadAtVec = %d, %v", n, err)
		}
	})

	t.Run("eof mid-vector", func(t *testing.T) {
		segs := []ReadSeg{
			{Off: 9000, Buf: make([]byte, 500)},
			{Off: 9800, Buf: make([]byte, 500)}, // 300 short of its want
			{Off: 0, Buf: make([]byte, 10)},     // never reached
		}
		n, err := f.ReadAtVec(segs)
		if err != io.EOF || n != 700 {
			t.Fatalf("ReadAtVec = %d, %v, want 700, io.EOF", n, err)
		}
		if !bytes.Equal(segs[1].Buf[:200], content[9800:]) {
			t.Fatal("partial range bytes wrong")
		}
		for _, b := range segs[2].Buf {
			if b != 0 {
				t.Fatal("range after the short one was filled")
			}
		}
	})

	t.Run("wholly past eof", func(t *testing.T) {
		n, err := f.ReadAtVec([]ReadSeg{{Off: 50000, Buf: make([]byte, 10)}})
		if err != io.EOF || n != 0 {
			t.Fatalf("ReadAtVec past EOF = %d, %v", n, err)
		}
	})

	t.Run("negative offset", func(t *testing.T) {
		_, err := f.ReadAtVec([]ReadSeg{{Off: -1, Buf: make([]byte, 1)}})
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("negative offset err = %v", err)
		}
	})

	t.Run("write-only handle", func(t *testing.T) {
		wf, err := conn.Open("/wr.dat", O_WRONLY|O_CREATE, "")
		if err != nil {
			t.Fatal(err)
		}
		_, err = wf.ReadAtVec([]ReadSeg{{Off: 0, Buf: make([]byte, 1)}})
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("write-only readv err = %v", err)
		}
	})
}

// TestReadAtVecLargeRange: a single range larger than MaxChunk splits
// across frames and reassembles intact.
func TestReadAtVecLargeRange(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/big.dat", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, MaxChunk+4096)
	for i := range content {
		content[i] = byte(i * 7 % 253)
	}
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(content))
	n, err := f.ReadAtVec([]ReadSeg{{Off: 0, Buf: buf}})
	if err != nil || n != len(content) {
		t.Fatalf("ReadAtVec = %d, %v", n, err)
	}
	if !bytes.Equal(buf, content) {
		t.Fatal("large range corrupted across frame split")
	}
}

// TestReadvPoolBalance: the readv client and server paths release every
// pooled buffer they take, including on the EOF and error paths.
func TestReadvPoolBalance(t *testing.T) {
	_, conn := startPair(t)
	f, err := conn.Open("/pb.dat", O_RDWR|O_CREATE, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{9}, 1000), 0); err != nil {
		t.Fatal(err)
	}
	// Settle in-flight pool traffic from setup before diffing.
	gets0, puts0 := bufPoolGets.Load(), bufPoolPuts.Load()
	for i := 0; i < 10; i++ {
		if _, err := f.ReadAtVec([]ReadSeg{{Off: 0, Buf: make([]byte, 100)}, {Off: 500, Buf: make([]byte, 100)}}); err != nil {
			t.Fatal(err)
		}
		if n, err := f.ReadAtVec([]ReadSeg{{Off: 900, Buf: make([]byte, 500)}}); err != io.EOF || n != 100 {
			t.Fatalf("eof read = %d, %v", n, err)
		}
		if _, err := f.ReadAtVec([]ReadSeg{{Off: -3, Buf: make([]byte, 10)}}); !errors.Is(err, ErrInvalid) {
			t.Fatalf("invalid read err = %v", err)
		}
	}
	gets, puts := bufPoolGets.Load()-gets0, bufPoolPuts.Load()-puts0
	if gets != puts {
		t.Fatalf("pool imbalance across readv paths: %d gets, %d puts", gets, puts)
	}
}
