package srb

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"semplar/internal/trace"
)

// Conn is a client connection to an SRB server. One request is outstanding
// at a time per connection (as in the real SRB); the library obtains
// parallelism by opening several connections, which is the lever the
// paper's multi-stream optimization pulls.
type Conn struct {
	mu      sync.Mutex
	c       net.Conn      // immutable after NewConn
	br      *bufio.Reader // guarded by mu
	bw      *bufio.Writer // guarded by mu
	seq     uint32        // guarded by mu
	err     error         // guarded by mu; sticky transport error
	timeout time.Duration // guarded by mu; per-operation deadline (0 = none)
	user    string        // immutable after NewConn

	timedOut atomic.Bool // the op-deadline watchdog severed the conn

	tr   *trace.Tracer // guarded by mu; nil = tracing off
	lane int64         // guarded by mu; this connection's trace lane
}

// NewConn performs the connect handshake over an established transport.
func NewConn(c net.Conn, user string) (*Conn, error) {
	conn := &Conn{
		c:    c,
		br:   bufio.NewReaderSize(c, 64<<10),
		bw:   bufio.NewWriterSize(c, 64<<10),
		user: user,
	}
	resp, err := conn.call(&request{op: opConnect, path: user})
	if err != nil {
		//lint:allow errdrop -- discarding the transport on a failed handshake; the handshake error is returned
		c.Close()
		return nil, err
	}
	if resp.value != protoVer {
		//lint:allow errdrop -- discarding the transport on a version mismatch; ErrProtocol is returned
		c.Close()
		return nil, fmt.Errorf("%w: server protocol %d", ErrProtocol, resp.value)
	}
	return conn, nil
}

// Dial connects to a server over TCP and performs the handshake.
func Dial(addr, user string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c, user)
}

// ErrConnClosed is returned for calls on a closed client connection.
var ErrConnClosed = fmt.Errorf("srb: connection closed")

// Close terminates the connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = ErrConnClosed
	}
	return c.c.Close()
}

// SetTracer attributes this connection's wire traffic to tr: every
// request/response round trip becomes a "wire" span on the connection's
// own trace lane and feeds the srb.client.op latency histogram. A nil
// tracer (the default) disables tracing for the connection.
func (c *Conn) SetTracer(tr *trace.Tracer) {
	c.mu.Lock()
	c.tr = tr
	c.lane = tr.NextID()
	c.mu.Unlock()
}

// SetOpTimeout installs a per-operation deadline: any call that does not
// complete within d fails with an error wrapping ErrTimeout and the
// connection is severed (the only portable way to unblock a reader stuck
// on a black-holed stream). Zero disables the deadline.
func (c *Conn) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// transportErr wraps a wire-level failure so callers can classify it:
// timeouts become ErrTimeout, everything else ErrTransport. The inner
// error is folded into the message (not the chain) so a transport EOF is
// never confused with a semantic end-of-file.
func (c *Conn) transportErr(err error) error {
	if c.timedOut.Load() {
		//lint:allow guardedfield -- transportErr is only called from call, which holds c.mu
		return fmt.Errorf("%w after %v: %v", ErrTimeout, c.timeout, err)
	}
	return fmt.Errorf("%w: %v", ErrTransport, err)
}

// call sends one request and reads its response, serializing concurrent
// callers. Returned errors distinguish transport failures (sticky) from
// server status errors.
func (c *Conn) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	if tr := c.tr; tr.Enabled() {
		// The span covers send + server turnaround + receive — the full
		// wire cost of the synchronous call. It ends in a defer registered
		// after the mu.Unlock defer, so the event is still recorded under
		// c.mu and trace order matches call order on this connection.
		sp := tr.Begin("wire", opName(req.op), c.lane)
		defer func() {
			tr.Observe("srb.client.op", sp.End())
		}()
	}
	if c.timeout > 0 {
		// Watchdog: a stalled server or black-holed path would block
		// readResponse forever; severing the transport bounds the op.
		timer := time.AfterFunc(c.timeout, func() {
			c.timedOut.Store(true)
			//lint:allow errdrop -- watchdog severs a stalled transport; nothing can use the result
			c.c.Close()
		})
		defer timer.Stop()
	}
	c.seq++
	req.seq = c.seq
	if err := writeRequest(c.bw, req); err != nil {
		c.err = c.transportErr(err)
		return nil, c.err
	}
	//lint:allow lockheld -- c.mu IS the wire-serialization point: one request/response at a time
	if err := c.bw.Flush(); err != nil {
		c.err = c.transportErr(err)
		return nil, c.err
	}
	resp, err := readResponse(c.br)
	if err != nil {
		c.err = c.transportErr(err)
		return nil, c.err
	}
	if resp.seq != req.seq {
		c.err = fmt.Errorf("%w: response seq %d for request %d", ErrProtocol, resp.seq, req.seq)
		return nil, c.err
	}
	if resp.status != statusOK {
		return nil, statusToErr(resp.status, resp.msg)
	}
	return resp, nil
}

// Ping round-trips a no-op request and returns the server's clock.
func (c *Conn) Ping() (int64, error) {
	resp, err := c.call(&request{op: opPing})
	if err != nil {
		return 0, err
	}
	return resp.value, nil
}

// Open opens or creates a logical file. resource may be empty to use the
// server default.
func (c *Conn) Open(path string, flags int, resource string) (*File, error) {
	req := &request{op: opOpen, path: path, flags: uint32(flags)}
	if resource != "" {
		req.data = []byte(resource)
	}
	resp, err := c.call(req)
	if err != nil {
		return nil, err
	}
	return &File{conn: c, handle: int32(resp.value), path: path}, nil
}

// Stat queries a logical path.
func (c *Conn) Stat(path string) (*FileInfo, error) {
	resp, err := c.call(&request{op: opStat, path: path})
	if err != nil {
		return nil, err
	}
	fi, _, err := decodeFileInfo(resp.data)
	return fi, err
}

// Mkdir creates a collection.
func (c *Conn) Mkdir(path string) error {
	_, err := c.call(&request{op: opMkdir, path: path})
	return err
}

// Rmdir removes an empty collection.
func (c *Conn) Rmdir(path string) error {
	_, err := c.call(&request{op: opRmdir, path: path})
	return err
}

// Unlink removes a logical file and its physical object.
func (c *Conn) Unlink(path string) error {
	_, err := c.call(&request{op: opUnlink, path: path})
	return err
}

// List returns the entries of a collection.
func (c *Conn) List(path string) ([]*FileInfo, error) {
	resp, err := c.call(&request{op: opList, path: path})
	if err != nil {
		return nil, err
	}
	out := make([]*FileInfo, 0, resp.value)
	data := resp.data
	for len(data) > 0 {
		fi, rest, err := decodeFileInfo(data)
		if err != nil {
			return nil, err
		}
		out = append(out, fi)
		data = rest
	}
	return out, nil
}

// SetAttr attaches a metadata attribute to a path.
func (c *Conn) SetAttr(path, key, value string) error {
	data := make([]byte, 0, len(key)+len(value)+1)
	data = append(data, key...)
	data = append(data, 0)
	data = append(data, value...)
	_, err := c.call(&request{op: opSetAttr, path: path, data: data})
	return err
}

// GetAttr reads a metadata attribute.
func (c *Conn) GetAttr(path, key string) (string, error) {
	resp, err := c.call(&request{op: opGetAttr, path: path, data: []byte(key)})
	if err != nil {
		return "", err
	}
	return string(resp.data), nil
}

// Rename moves a logical file.
func (c *Conn) Rename(oldPath, newPath string) error {
	_, err := c.call(&request{op: opRename, path: oldPath, data: []byte(newPath)})
	return err
}

// Replicate copies a data object onto another storage resource and
// registers the replica in the catalog; reads fail over to replicas when
// the primary copy is unavailable. Returns the replicated byte count.
func (c *Conn) Replicate(path, resource string) (int64, error) {
	resp, err := c.call(&request{op: opReplicate, path: path, data: []byte(resource)})
	if err != nil {
		return 0, err
	}
	return resp.value, nil
}

// Checksum asks the server to compute the SHA-256 of a data object
// (hex-encoded) without transferring the bytes, recording it as the
// "checksum" attribute. Returns the digest and the object size.
func (c *Conn) Checksum(path string) (string, int64, error) {
	resp, err := c.call(&request{op: opChecksum, path: path})
	if err != nil {
		return "", 0, err
	}
	return string(resp.data), resp.value, nil
}

// Resources lists the server's storage resources as name/kind pairs.
func (c *Conn) Resources() (map[string]string, error) {
	resp, err := c.call(&request{op: opResources})
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	b := resp.data
	for len(b) > 0 {
		var name, kind string
		if name, b, err = takeString(b); err != nil {
			return nil, err
		}
		if kind, b, err = takeString(b); err != nil {
			return nil, err
		}
		out[name] = kind
	}
	return out, nil
}

// File is an open remote file handle. Methods are safe for concurrent use;
// requests serialize on the underlying connection.
type File struct {
	conn   *Conn
	handle int32
	path   string

	posMu sync.Mutex
	// pos shadows the server-side file pointer for Read/Write; explicit
	// offset calls do not touch it.
}

// Path returns the logical path the file was opened with.
func (f *File) Path() string { return f.path }

// Close releases the remote handle.
func (f *File) Close() error {
	_, err := f.conn.call(&request{op: opClose, handle: f.handle})
	return err
}

// ReadAt reads len(p) bytes at an explicit offset, splitting large reads
// into protocol chunks. It returns io.EOF after reading past end of file.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		resp, err := f.conn.call(&request{
			op: opRead, handle: f.handle,
			offset: off + int64(total), length: int64(n),
		})
		if err != nil {
			return total, err
		}
		copy(p[total:], resp.data)
		total += len(resp.data)
		if len(resp.data) < n {
			return total, io.EOF
		}
	}
	return total, nil
}

// WriteAt writes p at an explicit offset, splitting into protocol chunks.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		resp, err := f.conn.call(&request{
			op: opWrite, handle: f.handle,
			offset: off + int64(total), data: p[total : total+n],
		})
		if err != nil {
			return total, err
		}
		total += int(resp.value)
		if int(resp.value) < n {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// Read reads from the server-side file pointer.
func (f *File) Read(p []byte) (int, error) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		resp, err := f.conn.call(&request{
			op: opRead, handle: f.handle, offset: -1, length: int64(n),
		})
		if err != nil {
			return total, err
		}
		copy(p[total:], resp.data)
		total += len(resp.data)
		if len(resp.data) < n {
			if total == 0 {
				return 0, io.EOF
			}
			return total, nil
		}
	}
	return total, nil
}

// Write appends at the server-side file pointer.
func (f *File) Write(p []byte) (int, error) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		resp, err := f.conn.call(&request{
			op: opWrite, handle: f.handle, offset: -1, data: p[total : total+n],
		})
		if err != nil {
			return total, err
		}
		total += int(resp.value)
		if int(resp.value) < n {
			// A server acking fewer bytes than sent (e.g. a full
			// device) must surface, not spin this loop forever.
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// Seek repositions the server-side file pointer.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	resp, err := f.conn.call(&request{
		op: opSeek, handle: f.handle, offset: offset, flags: uint32(whence),
	})
	if err != nil {
		return 0, err
	}
	return resp.value, nil
}

// Stat queries the open file.
func (f *File) Stat() (*FileInfo, error) {
	resp, err := f.conn.call(&request{op: opFstat, handle: f.handle})
	if err != nil {
		return nil, err
	}
	fi, _, err := decodeFileInfo(resp.data)
	return fi, err
}

// Size is a convenience around Stat.
func (f *File) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size, nil
}

// Truncate sets the file length.
func (f *File) Truncate(size int64) error {
	_, err := f.conn.call(&request{op: opTruncate, handle: f.handle, length: size})
	return err
}

// Sync flushes the file on the server.
func (f *File) Sync() error {
	_, err := f.conn.call(&request{op: opSync, handle: f.handle})
	return err
}
