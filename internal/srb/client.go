package srb

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semplar/internal/tenant"
	"semplar/internal/trace"
)

// Conn is a client connection to an SRB server. Calls are pipelined: any
// number of tagged requests may be in flight at once on one connection. A
// sender serializes frames onto the wire under wmu while a demux goroutine
// (readLoop) matches responses to waiting callers by the seq tag, so the
// per-op latency of a batch of calls collapses to roughly one round trip —
// the property the paper's asynchronous primitives need from the transport.
// Multiple connections still multiply bandwidth, as in the real SRB; a
// single connection now multiplies latency tolerance.
type Conn struct {
	c    net.Conn // immutable after NewConn
	user string   // immutable after NewConn

	mu      sync.Mutex
	seq     uint32                  // guarded by mu
	pending map[uint32]*pendingCall // guarded by mu
	err     error                   // guarded by mu; sticky, first failure wins
	timeout time.Duration           // guarded by mu; per-operation deadline (0 = none)
	tr      *trace.Tracer           // guarded by mu; nil = tracing off
	lane    int64                   // guarded by mu; this connection's trace lane

	wmu sync.Mutex
	bw  *bufio.Writer // guarded by wmu

	br *bufio.Reader // owned by readLoop after NewConn
}

// pendingCall is one in-flight request awaiting its response.
//
// Completion is a race between three parties — the demux loop (response
// arrived), the op-deadline watchdog (timer fired), and fail (transport
// died) — resolved by the claimed CAS: exactly one winner writes resp/err
// and closes done. The losers' outcomes are discarded, which is precisely
// the fix for the old watchdog bug where a timer firing after the response
// was already read still severed a healthy connection.
type pendingCall struct {
	done    chan struct{}
	claimed atomic.Bool
	resp    *response // written only by the claimed winner, before close(done)
	err     error     // written only by the claimed winner, before close(done)
}

// complete delivers the call's outcome if no other party has; it reports
// whether this caller won the claim.
func (pc *pendingCall) complete(resp *response, err error) bool {
	if !pc.claimed.CompareAndSwap(false, true) {
		return false
	}
	pc.resp = resp
	pc.err = err
	close(pc.done)
	return true
}

// Credentials identifies a tenant to a multi-tenant server. The key never
// crosses the wire: the connect handshake carries an HMAC proof computed
// over (tenant ID, user) under it. The zero value is anonymous — accepted
// by servers without a tenant registry, refused (statusAuthFailed) by
// servers with one.
type Credentials struct {
	TenantID string
	Key      []byte
}

// Anonymous reports whether the credentials are the zero "no tenant" value.
func (cr Credentials) Anonymous() bool { return cr.TenantID == "" }

// NewConn performs the connect handshake over an established transport,
// anonymously (no tenant credentials).
func NewConn(c net.Conn, user string) (*Conn, error) {
	return NewConnAuth(c, user, Credentials{})
}

// NewConnAuth performs the connect handshake over an established transport,
// presenting tenant credentials when cred is non-anonymous. An auth refusal
// surfaces as terminal ErrAuthFailed and the transport is closed (the
// server hangs up after refusing anyway).
func NewConnAuth(c net.Conn, user string, cred Credentials) (*Conn, error) {
	conn := &Conn{
		c:       c,
		user:    user,
		br:      bufio.NewReaderSize(c, 64<<10),
		bw:      bufio.NewWriterSize(c, 64<<10),
		pending: make(map[uint32]*pendingCall),
	}
	go conn.readLoop()
	connect := &request{op: opConnect, path: user}
	if !cred.Anonymous() {
		connect.data = encodeAuth(cred.TenantID, tenant.Proof(cred.Key, cred.TenantID, user))
	}
	resp, err := conn.call(connect)
	if err != nil {
		//lint:allow errdrop -- discarding the transport on a failed handshake; the handshake error is returned
		c.Close()
		return nil, err
	}
	if resp.value != protoVer {
		//lint:allow errdrop -- discarding the transport on a version mismatch; ErrProtocol is returned
		c.Close()
		return nil, fmt.Errorf("%w: server protocol %d", ErrProtocol, resp.value)
	}
	return conn, nil
}

// Dial connects to a server over TCP and performs the handshake.
func Dial(addr, user string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c, user)
}

// ErrConnClosed is returned for calls on a closed client connection.
var ErrConnClosed = fmt.Errorf("srb: connection closed")

// Close terminates the connection. In-flight calls fail with ErrConnClosed
// (or the earlier sticky error if the connection had already failed). fail
// closes the transport exactly once (first failure wins), so Close after an
// earlier failure must not close again: real TCP conns error on a double
// close, and that spurious error would mask a clean shutdown.
func (c *Conn) Close() error {
	c.fail(ErrConnClosed)
	return nil
}

// SetTracer attributes this connection's wire traffic to tr: every
// request/response round trip becomes a "wire" span on the connection's
// own trace lane, tagged with its seq, and feeds the srb.client.op latency
// histogram. A nil tracer (the default) disables tracing.
func (c *Conn) SetTracer(tr *trace.Tracer) {
	c.mu.Lock()
	c.tr = tr
	c.lane = tr.NextID()
	c.mu.Unlock()
}

// SetOpTimeout installs a per-operation deadline: any call that does not
// complete within d fails with an error wrapping ErrTimeout and the
// connection is severed (the only portable way to unblock a reader stuck
// on a black-holed stream). Zero disables the deadline.
func (c *Conn) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// fail severs the connection with a classified error. The first failure
// wins: it becomes the sticky error returned by every later call, and every
// in-flight call orphaned by the failure completes with it. Classification
// happens here at the failure site — a timeout is ErrTimeout on the call
// that timed out, and collateral damage is ErrTransport — so one timed-out
// op can no longer mislabel every subsequent transport error on the
// connection (the old sticky-timedOut bug).
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		//lint:allow errdrop -- severing a failed transport; the classified error is already propagating
		c.c.Close()
	}
	err = c.err
	orphans := c.pending
	c.pending = make(map[uint32]*pendingCall)
	c.mu.Unlock()
	for _, pc := range orphans {
		pc.complete(nil, err)
	}
}

// readLoop is the demux half of pipelining. It owns br: it reads responses
// in arrival order and completes the pending call carrying the matching
// tag, in whatever order the tags come back. It exits when the transport
// fails, failing every in-flight call with a classifiable transport error.
func (c *Conn) readLoop() {
	for {
		resp, err := readResponse(c.br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrTransport, err))
			return
		}
		c.mu.Lock()
		pc := c.pending[resp.seq]
		delete(c.pending, resp.seq)
		c.mu.Unlock()
		if pc == nil {
			// A tag nothing is waiting for. Either the server invented a
			// response or this conn's framing drifted; the stream cannot
			// be trusted past this point. (A late answer to a timed-out
			// call also lands here, but the watchdog already severed the
			// conn then, so this fail is a no-op.)
			c.fail(fmt.Errorf("%w: response for unknown seq %d", ErrProtocol, resp.seq))
			return
		}
		pc.complete(resp, nil)
	}
}

// validateRequest applies the wire bounds client-side, before a frame is
// built: an oversized argument fails its one call with ErrInvalid and the
// connection stays healthy. Without this, the peer's parser would reject
// the frame as ErrProtocol — severing the connection the client itself
// poisoned. Symmetric checks remain in writeRequest as parser-side defense.
func validateRequest(req *request) error {
	if len(req.path) > maxPathLen {
		return fmt.Errorf("%w: path length %d exceeds max %d", ErrInvalid, len(req.path), maxPathLen)
	}
	if len(req.data) > MaxChunk {
		return fmt.Errorf("%w: request payload %d exceeds max %d", ErrInvalid, len(req.data), MaxChunk)
	}
	return nil
}

// register assigns the request's tag and parks a pendingCall for the demux
// loop, snapshotting the tracer and deadline under mu.
func (c *Conn) register(req *request) (*pendingCall, *trace.Tracer, int64, time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, nil, 0, 0, c.err
	}
	for {
		c.seq++
		if c.seq == 0 {
			// Wraparound: skip tag 0 so "no tag" stays unambiguous in
			// diagnostics.
			continue
		}
		if _, inFlight := c.pending[c.seq]; !inFlight {
			break
		}
	}
	req.seq = c.seq
	pc := &pendingCall{done: make(chan struct{})}
	c.pending[req.seq] = pc
	return pc, c.tr, c.lane, c.timeout, nil
}

// call sends one tagged request and waits for its response. Concurrent
// callers pipeline: each holds wmu only for its own frame, then blocks on
// its own pendingCall while others use the wire. Returned errors
// distinguish transport failures (sticky, retryable on a fresh connection)
// from server status errors (terminal).
func (c *Conn) call(req *request) (*response, error) {
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	pc, tr, lane, timeout, err := c.register(req)
	if err != nil {
		return nil, err
	}
	var sp trace.Span
	traced := tr.Enabled()
	if traced {
		// The span covers send + server turnaround + receive — the full
		// wire cost of this call. Under pipelining, spans of concurrent
		// calls overlap on the connection lane; the seq arg recorded at
		// End disambiguates them.
		sp = tr.Begin("wire", opName(req.op), lane)
	}
	if timeout > 0 {
		// Watchdog, armed before the send so a write stalled on a
		// black-holed stream is bounded too. Claim-then-sever: if the
		// response wins the race, the CAS loses and the healthy
		// connection survives — the watchdog only kills a connection
		// whose call it actually failed.
		timer := time.AfterFunc(timeout, func() {
			if pc.complete(nil, fmt.Errorf("%w after %v (%s seq %d)", ErrTimeout, timeout, opName(req.op), req.seq)) {
				c.fail(fmt.Errorf("%w: connection severed by op-deadline watchdog", ErrTransport))
			}
		})
		defer timer.Stop()
	}
	c.wmu.Lock()
	//lint:allow lockheld -- c.wmu IS the frame-serialization point: one request frame at a time
	err = writeRequest(c.bw, req)
	if err == nil {
		//lint:allow lockheld -- flushed under the same write lock, still one frame at a time
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		// The stream may be torn mid-frame; nothing after this frame can
		// be trusted, so the whole connection fails.
		c.fail(fmt.Errorf("%w: %v", ErrTransport, err))
	}
	<-pc.done
	if traced {
		tr.Observe("srb.client.op", sp.End(trace.Int("seq", int64(req.seq))))
	}
	if pc.err != nil {
		return nil, pc.err
	}
	if pc.resp.status != statusOK {
		return nil, statusToErr(pc.resp.status, pc.resp.msg, pc.resp.value)
	}
	return pc.resp, nil
}

// Ping round-trips a no-op request and returns the server's clock.
func (c *Conn) Ping() (int64, error) {
	resp, err := c.call(&request{op: opPing})
	if err != nil {
		return 0, err
	}
	return resp.value, nil
}

// Open opens or creates a logical file. resource may be empty to use the
// server default.
func (c *Conn) Open(path string, flags int, resource string) (*File, error) {
	req := &request{op: opOpen, path: path, flags: uint32(flags)}
	if resource != "" {
		req.data = []byte(resource)
	}
	resp, err := c.call(req)
	if err != nil {
		return nil, err
	}
	return &File{conn: c, handle: int32(resp.value), path: path}, nil
}

// Stat queries a logical path.
func (c *Conn) Stat(path string) (*FileInfo, error) {
	resp, err := c.call(&request{op: opStat, path: path})
	if err != nil {
		return nil, err
	}
	fi, _, err := decodeFileInfo(resp.data)
	return fi, err
}

// Mkdir creates a collection.
func (c *Conn) Mkdir(path string) error {
	_, err := c.call(&request{op: opMkdir, path: path})
	return err
}

// Rmdir removes an empty collection.
func (c *Conn) Rmdir(path string) error {
	_, err := c.call(&request{op: opRmdir, path: path})
	return err
}

// Unlink removes a logical file and its physical object.
func (c *Conn) Unlink(path string) error {
	_, err := c.call(&request{op: opUnlink, path: path})
	return err
}

// List returns the entries of a collection.
func (c *Conn) List(path string) ([]*FileInfo, error) {
	resp, err := c.call(&request{op: opList, path: path})
	if err != nil {
		return nil, err
	}
	out := make([]*FileInfo, 0, resp.value)
	data := resp.data
	for len(data) > 0 {
		fi, rest, err := decodeFileInfo(data)
		if err != nil {
			return nil, err
		}
		out = append(out, fi)
		data = rest
	}
	return out, nil
}

// SetAttr attaches a metadata attribute to a path.
func (c *Conn) SetAttr(path, key, value string) error {
	if strings.IndexByte(key, 0) >= 0 {
		// The wire form is key\0value: a NUL inside the key would shift
		// the server's split and silently store a corrupted pair.
		return fmt.Errorf("%w: attribute key contains NUL byte", ErrInvalid)
	}
	data := make([]byte, 0, len(key)+len(value)+1)
	data = append(data, key...)
	data = append(data, 0)
	data = append(data, value...)
	_, err := c.call(&request{op: opSetAttr, path: path, data: data})
	return err
}

// GetAttr reads a metadata attribute.
func (c *Conn) GetAttr(path, key string) (string, error) {
	resp, err := c.call(&request{op: opGetAttr, path: path, data: []byte(key)})
	if err != nil {
		return "", err
	}
	return string(resp.data), nil
}

// Rename moves a logical file.
func (c *Conn) Rename(oldPath, newPath string) error {
	_, err := c.call(&request{op: opRename, path: oldPath, data: []byte(newPath)})
	return err
}

// Replicate copies a data object onto another storage resource and
// registers the replica in the catalog; reads fail over to replicas when
// the primary copy is unavailable. Returns the replicated byte count.
func (c *Conn) Replicate(path, resource string) (int64, error) {
	resp, err := c.call(&request{op: opReplicate, path: path, data: []byte(resource)})
	if err != nil {
		return 0, err
	}
	return resp.value, nil
}

// Checksum asks the server to compute the SHA-256 of a data object
// (hex-encoded) without transferring the bytes, recording it as the
// "checksum" attribute. Returns the digest and the object size.
func (c *Conn) Checksum(path string) (string, int64, error) {
	resp, err := c.call(&request{op: opChecksum, path: path})
	if err != nil {
		return "", 0, err
	}
	return string(resp.data), resp.value, nil
}

// Resources lists the server's storage resources as name/kind pairs.
func (c *Conn) Resources() (map[string]string, error) {
	resp, err := c.call(&request{op: opResources})
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	b := resp.data
	for len(b) > 0 {
		var name, kind string
		if name, b, err = takeString(b); err != nil {
			return nil, err
		}
		if kind, b, err = takeString(b); err != nil {
			return nil, err
		}
		out[name] = kind
	}
	return out, nil
}

// File is an open remote file handle. Methods are safe for concurrent use;
// concurrent requests pipeline on the underlying connection.
type File struct {
	conn   *Conn
	handle int32
	path   string

	posMu sync.Mutex
	// pos shadows the server-side file pointer for Read/Write; explicit
	// offset calls do not touch it.
}

// Path returns the logical path the file was opened with.
func (f *File) Path() string { return f.path }

// Close releases the remote handle.
func (f *File) Close() error {
	_, err := f.conn.call(&request{op: opClose, handle: f.handle})
	return err
}

// ReadAt reads len(p) bytes at an explicit offset, splitting large reads
// into protocol chunks. It returns io.EOF after reading past end of file.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		resp, err := f.conn.call(&request{
			op: opRead, handle: f.handle,
			offset: off + int64(total), length: int64(n),
		})
		if err != nil {
			return total, err
		}
		got := copy(p[total:], resp.data)
		putBuf(resp.data) // hot path: payload copied out, recycle the buffer
		total += got
		if got < n {
			return total, io.EOF
		}
	}
	return total, nil
}

// WriteAt writes p at an explicit offset, splitting into protocol chunks.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		resp, err := f.conn.call(&request{
			op: opWrite, handle: f.handle,
			offset: off + int64(total), data: p[total : total+n],
		})
		if err != nil {
			return total, err
		}
		total += int(resp.value)
		if int(resp.value) < n {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// WriteSeg is one segment of a vectored write: Data destined for absolute
// offset Off. Segments should be sorted by ascending offset and
// non-overlapping; adjacent contiguous segments are merged on the wire.
type WriteSeg struct {
	Off  int64
	Data []byte
}

// WriteAtVec writes all segments using vectored opWritev frames: many
// discontiguous extents per round trip instead of one RPC per extent,
// which is what makes fine-grained striped writes affordable over a
// high-latency link. Segments are packed greedily into frames bounded by
// MaxChunk. Returns the total byte count acknowledged by the server; a
// frame acknowledged short surfaces io.ErrShortWrite, like WriteAt.
//
// The operation is idempotent (each segment is an absolute-offset write),
// so a transport failure mid-vector may be replayed on a fresh connection.
func (f *File) WriteAtVec(segs []WriteSeg) (int, error) {
	total := 0
	frame := make([]writeSeg, 0, len(segs))
	frameBytes := 0
	flush := func() (int, error) {
		if len(frame) == 0 {
			return 0, nil
		}
		payload := encodeWritev(frame)
		want := frameBytes
		frame = frame[:0]
		frameBytes = 0
		resp, err := f.conn.call(&request{op: opWritev, handle: f.handle, data: payload})
		putBuf(payload) // frame is on the wire (or dead); recycle
		if err != nil {
			return 0, err
		}
		if int(resp.value) < want {
			return int(resp.value), io.ErrShortWrite
		}
		return int(resp.value), nil
	}
	for _, s := range segs {
		if len(s.Data) == 0 {
			continue
		}
		if s.Off < 0 {
			return total, fmt.Errorf("%w: negative write offset", ErrInvalid)
		}
		rest := s.Data
		off := s.Off
		for len(rest) > 0 {
			// Room left in the current frame for payload, worst-case
			// assuming this segment needs its own table entry.
			room := MaxChunk - writevHdrSize - (len(frame)+1)*writevSegSize - frameBytes
			if room <= 0 {
				n, err := flush()
				total += n
				if err != nil {
					return total, err
				}
				continue
			}
			chunk := rest
			if len(chunk) > room {
				chunk = chunk[:room]
			}
			frame = append(frame, writeSeg{off: off, data: chunk})
			frameBytes += len(chunk)
			off += int64(len(chunk))
			rest = rest[len(chunk):]
		}
	}
	n, err := flush()
	total += n
	return total, err
}

// ReadSeg is one range of a vectored read: len(Buf) bytes wanted from
// absolute offset Off. Ranges should be sorted by ascending offset and
// non-overlapping; adjacent contiguous ranges are merged on the wire.
type ReadSeg struct {
	Off int64
	Buf []byte
}

// ReadAtVec reads all ranges using vectored opReadv frames: many
// discontiguous extents per round trip instead of one RPC per extent — the
// list-I/O half of the noncontiguous fast path. Ranges are packed greedily
// into frames bounded by MaxChunk of reply payload. The server fills ranges
// front to back and stops at the first short one, so the reply scatters
// sequentially; a short reply surfaces io.EOF with the contiguous prefix
// count, like ReadAt.
func (f *File) ReadAtVec(segs []ReadSeg) (int, error) {
	total := 0
	frame := make([]readSeg, 0, len(segs))
	dsts := make([][]byte, 0, len(segs))
	frameBytes := 0
	flush := func() (int, error) {
		if len(frame) == 0 {
			return 0, nil
		}
		payload := encodeReadv(frame)
		want := frameBytes
		out := dsts
		frame = frame[:0]
		dsts = dsts[:0]
		frameBytes = 0
		resp, err := f.conn.call(&request{op: opReadv, handle: f.handle, data: payload})
		putBuf(payload) // frame is on the wire (or dead); recycle
		if err != nil {
			return 0, err
		}
		got := 0
		for _, d := range out {
			if got == len(resp.data) {
				break
			}
			got += copy(d, resp.data[got:])
		}
		putBuf(resp.data) // payload scattered out, recycle the buffer
		if got < want {
			return got, io.EOF
		}
		return got, nil
	}
	for _, s := range segs {
		if len(s.Buf) == 0 {
			continue
		}
		if s.Off < 0 {
			return total, fmt.Errorf("%w: negative read offset", ErrInvalid)
		}
		rest := s.Buf
		off := s.Off
		for len(rest) > 0 {
			// Room left in the current frame, bounded by both the reply
			// payload (frameBytes of data) and the request frame (the range
			// table), worst-case assuming this range needs its own entry.
			room := MaxChunk - frameBytes
			if tr := (MaxChunk - readvHdrSize - (len(frame)+1)*readvSegSize); tr < room {
				room = tr
			}
			if room <= 0 {
				n, err := flush()
				total += n
				if err != nil {
					return total, err
				}
				continue
			}
			chunk := rest
			if len(chunk) > room {
				chunk = chunk[:room]
			}
			frame = append(frame, readSeg{off: off, n: len(chunk)})
			dsts = append(dsts, chunk)
			frameBytes += len(chunk)
			off += int64(len(chunk))
			rest = rest[len(chunk):]
		}
	}
	n, err := flush()
	total += n
	return total, err
}

// Read reads from the server-side file pointer.
func (f *File) Read(p []byte) (int, error) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		resp, err := f.conn.call(&request{
			op: opRead, handle: f.handle, offset: -1, length: int64(n),
		})
		if err != nil {
			return total, err
		}
		got := copy(p[total:], resp.data)
		putBuf(resp.data) // hot path: payload copied out, recycle the buffer
		total += got
		if got < n {
			if total == 0 {
				return 0, io.EOF
			}
			return total, nil
		}
	}
	return total, nil
}

// Write appends at the server-side file pointer.
func (f *File) Write(p []byte) (int, error) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		resp, err := f.conn.call(&request{
			op: opWrite, handle: f.handle, offset: -1, data: p[total : total+n],
		})
		if err != nil {
			return total, err
		}
		total += int(resp.value)
		if int(resp.value) < n {
			// A server acking fewer bytes than sent (e.g. a full
			// device) must surface, not spin this loop forever.
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// Seek repositions the server-side file pointer.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	resp, err := f.conn.call(&request{
		op: opSeek, handle: f.handle, offset: offset, flags: uint32(whence),
	})
	if err != nil {
		return 0, err
	}
	return resp.value, nil
}

// Stat queries the open file.
func (f *File) Stat() (*FileInfo, error) {
	resp, err := f.conn.call(&request{op: opFstat, handle: f.handle})
	if err != nil {
		return nil, err
	}
	fi, _, err := decodeFileInfo(resp.data)
	return fi, err
}

// Size is a convenience around Stat.
func (f *File) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size, nil
}

// Truncate sets the file length.
func (f *File) Truncate(size int64) error {
	_, err := f.conn.call(&request{op: opTruncate, handle: f.handle, length: size})
	return err
}

// Sync flushes the file on the server.
func (f *File) Sync() error {
	_, err := f.conn.call(&request{op: opSync, handle: f.handle})
	return err
}
