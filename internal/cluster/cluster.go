// Package cluster assembles complete simulated testbeds: a client cluster
// (netsim network + per-node buses + MPI fabric) connected to an SRB
// server with a metered storage device — one package-level constructor per
// testbed of Section 5.
package cluster

import (
	"errors"
	"net"
	"sync"
	"time"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/mcat"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
	"semplar/internal/trace"
)

// Spec describes one testbed: the WAN profile of the client cluster and
// the storage device behind the SRB server.
type Spec struct {
	Name    string
	Profile netsim.Profile
	Device  storage.DeviceSpec
}

// Scaled accelerates the whole testbed by f (see netsim.Profile.Scaled).
func (s Spec) Scaled(f float64) Spec {
	s.Profile = s.Profile.Scaled(f)
	s.Device = s.Device.Scaled(f)
	return s
}

// orionDevice models the SRB server's storage tier: reads are served
// mostly from cache/disk arrays, writes must commit, so the write rate is
// the tighter one — the asymmetry behind Figure 8's read gain exceeding
// its write gain.
func orionDevice() storage.DeviceSpec {
	return storage.DeviceSpec{
		Name:      "orion-array",
		ReadRate:  200 * netsim.MBps,
		WriteRate: 60 * netsim.MBps,
	}
}

// DAS2 is the Vrije Universiteit testbed.
func DAS2() Spec { return Spec{Name: "DAS-2", Profile: netsim.DAS2(), Device: orionDevice()} }

// OSC is the Ohio Supercomputer Center P4 testbed (NAT-fronted).
func OSC() Spec { return Spec{Name: "OSC", Profile: netsim.OSC(), Device: orionDevice()} }

// TGNCSA is the NCSA TeraGrid testbed.
func TGNCSA() Spec { return Spec{Name: "TG-NCSA", Profile: netsim.TGNCSA(), Device: orionDevice()} }

// Specs returns the three paper testbeds in presentation order.
func Specs() []Spec { return []Spec{DAS2(), OSC(), TGNCSA()} }

// ErrServerDown is the transient dial error while the testbed's server is
// killed and not yet restarted. srb.Retryable classifies it retryable, so
// clients ride out a crash window with their normal backoff.
var ErrServerDown = errors.New("cluster: server down")

// Testbed is a running simulated deployment: one SRB server, one client
// cluster, and per-node ADIO registries whose "srb" driver dials through
// that node's shaped path.
//
// The server is a crashable fault domain: KillServer models a process
// death (connections reset, journaling stops), RestartServer brings up a
// fresh server over the same storage, rebuilding the MCAT from the
// journal. The Server field always points at the current generation; code
// that must survive restarts uses ActiveServer.
type Testbed struct {
	Spec Spec
	Net  *netsim.Network
	// Server is the current server generation. Read it directly only in
	// single-threaded test setup/teardown; concurrent code must use
	// ActiveServer (the field is rewritten by RestartServer).
	Server *srb.Server

	store   storage.Store
	journal *mcat.MemJournal

	mu     sync.Mutex
	srv    *srb.Server // guarded by mu; nil while killed
	limits srb.Limits  // guarded by mu; applied to every generation
	tracer *trace.Tracer
}

// New brings up a testbed with the given number of client nodes.
func New(spec Spec, nodes int) *Testbed {
	var st storage.Store = storage.NewMemStore()
	d := spec.Device
	if d.ReadRate > 0 || d.WriteRate > 0 || d.OpLatency > 0 {
		st = storage.WithDevice(st, d)
	}
	tb := &Testbed{
		Spec:    spec,
		Net:     netsim.NewNetwork(spec.Profile, nodes),
		store:   st,
		journal: mcat.NewMemJournal(),
	}
	tb.srv = tb.newServer(tb.limits, tb.tracer)
	tb.Server = tb.srv
	return tb
}

// newServer builds one server generation over the shared store, replays
// the journal into its catalog and attaches the journal for subsequent
// mutations. Resources are re-registered (not journaled), mirroring a
// real daemon's startup order: config, replay, serve. The mu-guarded
// limits/tracer are passed in by the caller rather than read here.
func (tb *Testbed) newServer(limits srb.Limits, tr *trace.Tracer) *srb.Server {
	srv := srb.NewServer()
	srv.AddResource("mem", "memory", tb.store)
	srv.Catalog().Replay(tb.journal.Records())
	srv.Catalog().SetJournal(tb.journal)
	srv.SetLimits(limits)
	if tr != nil {
		srv.SetTracer(tr)
	}
	return srv
}

// SetTracer wires tr into the testbed's fabric-level instrumentation:
// the simulated network's connection gauge and transmit counters, and the
// SRB server's dispatch spans. Client-side tracing rides in on the
// SRBFSConfig.Tracer passed to Registry. Call before dialing.
func (tb *Testbed) SetTracer(tr *trace.Tracer) {
	tb.Net.SetTracer(tr)
	tb.mu.Lock()
	tb.tracer = tr
	srv := tb.srv
	tb.mu.Unlock()
	if srv != nil {
		srv.SetTracer(tr)
	}
}

// SetServerLimits applies admission-control limits to the current server
// and every future generation. Call before serving traffic.
func (tb *Testbed) SetServerLimits(l srb.Limits) {
	tb.mu.Lock()
	tb.limits = l
	srv := tb.srv
	tb.mu.Unlock()
	if srv != nil {
		srv.SetLimits(l)
	}
}

// ActiveServer returns the current server generation, or nil while the
// server is killed.
func (tb *Testbed) ActiveServer() *srb.Server {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.srv
}

// KillServer crashes the server: its catalog is detached from the journal
// (a dead process writes no more metadata), every established connection
// is reset, and dials fail with ErrServerDown until RestartServer. The
// in-memory object store survives, standing in for the disk array: bytes
// that reached storage before the crash are still there — data whose
// metadata was journaled is fully recovered, and the client replay path
// reconciles the rest.
func (tb *Testbed) KillServer() {
	tb.mu.Lock()
	srv := tb.srv
	tb.srv = nil
	tb.mu.Unlock()
	if srv == nil {
		return // already dead
	}
	srv.Catalog().SetJournal(nil)
	tb.Net.KillAll()
}

// RestartServer brings a fresh server generation up from the journal. It
// is a no-op if the server is already running. Clients reconnect through
// their existing retry/reopen flow; nothing client-side knows a restart
// happened.
func (tb *Testbed) RestartServer() {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.srv != nil {
		return
	}
	tb.srv = tb.newServer(tb.limits, tb.tracer)
	tb.Server = tb.srv
}

// KillConns implements the chaos Injector verb: reset one node's
// connections without touching the server.
func (tb *Testbed) KillConns(node int) { tb.Net.KillConns(node) }

// Partition implements the chaos Injector verb: cut one node off for d.
func (tb *Testbed) Partition(node int, d time.Duration) { tb.Net.Partition(node, d) }

// LatencySpike implements the chaos Injector verb: network-wide extra
// one-way latency (0 clears).
func (tb *Testbed) LatencySpike(extra time.Duration) { tb.Net.SetLatencySpike(extra) }

var _ netsim.Injector = (*Testbed)(nil)

// Dialer returns a core.DialFunc bound to one client node: every call
// opens a fresh shaped connection from that node to the current server
// generation, failing transiently while the node is partitioned or the
// server is down.
func (tb *Testbed) Dialer(node int) core.DialFunc {
	return func() (net.Conn, error) {
		if err := tb.Net.DialFault(node); err != nil {
			return nil, err
		}
		srv := tb.ActiveServer()
		if srv == nil {
			return nil, ErrServerDown
		}
		c, s := tb.Net.Dial(node)
		go srv.ServeConn(s)
		return c, nil
	}
}

// Registry returns an ADIO registry for one node, with the SEMPLAR "srb"
// driver (configured with cfg basics) and a private "mem" local FS.
func (tb *Testbed) Registry(node int, cfg core.SRBFSConfig) *adio.Registry {
	cfg.Dial = tb.Dialer(node)
	fs, err := core.NewSRBFS(cfg)
	if err != nil {
		// Only possible with a nil Dial, which we just set.
		panic(err)
	}
	reg := &adio.Registry{}
	reg.Register(fs)
	reg.Register(adio.NewMemFS())
	return reg
}

// Fabric is the MPI interconnect of the client cluster.
func (tb *Testbed) Fabric() netsim.Fabric { return tb.Net.Interconnect() }

// Journal exposes the shared MCAT journal (tests inspect it).
func (tb *Testbed) Journal() *mcat.MemJournal { return tb.journal }
